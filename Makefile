# Developer entry points. The simulator is plain `go build`/`go test`;
# these targets just bundle the flags the project treats as standard.

.PHONY: all build test tier1 race bench results

all: build

build:
	go build ./...

test:
	go test ./...

# tier1 is the gate every PR must keep green: build, the full test suite,
# vet, and the race detector over the packages that run worker pools
# (experiments fan-out) or are exercised by them (the noc kernel).
tier1:
	go build ./...
	go test ./...
	go vet ./...
	go test -race -timeout 30m ./internal/experiments ./internal/noc

race:
	go test -race ./...

# bench records micro-benchmark medians (5 runs, -benchmem) into
# BENCH_noc.json; see scripts/bench.sh.
bench:
	scripts/bench.sh

results:
	go run ./cmd/experiments -exp all -scale quick
