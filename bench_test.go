// Package heteronoc's root benchmark harness: one benchmark per paper
// table/figure (regenerating the artifact at a reduced scale per
// iteration) plus microbenchmarks of the simulator core. Run the full
// regeneration with cmd/experiments -scale full; these benches exist to
// exercise every experiment path under `go test -bench` and to track
// simulator performance.
package heteronoc

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"heteronoc/internal/cmp"
	"heteronoc/internal/core"
	"heteronoc/internal/dse"
	"heteronoc/internal/experiments"
	"heteronoc/internal/fault"
	"heteronoc/internal/noc"
	"heteronoc/internal/obs"
	"heteronoc/internal/routing"
	"heteronoc/internal/runcache"
	"heteronoc/internal/topology"
	"heteronoc/internal/trace"
	"heteronoc/internal/traffic"
)

// newBenchRng returns the deterministic source used by the benchmarks.
func newBenchRng() *rand.Rand { return rand.New(rand.NewSource(1)) }

// benchScale keeps per-iteration work bounded.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Name:             "bench",
		WarmupPackets:    100,
		MeasurePackets:   1500,
		SweepPoints:      3,
		CMPWarmupEntries: 8000,
		CMPCycles:        2000,
		DSEPackets:       200,
		DSECandidates:    4,
	}
}

func runExp(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A process-unique Scale.Name per iteration defeats both the
		// appStudy report cache and the runcache memoization (including
		// across -count repetitions, which share the process), so every
		// iteration measures a real regeneration, never a cache lookup.
		sc.Name = fmt.Sprintf("bench-%s-%d", id, benchRunSeq.Add(1))
		if _, err := r.Run(context.Background(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRunSeq makes every runExp iteration's Scale.Name unique for the
// lifetime of the test process.
var benchRunSeq atomic.Int64

func BenchmarkFig1MeshUtilization(b *testing.B) { runExp(b, "fig1") }
func BenchmarkFig2OtherTopologies(b *testing.B) { runExp(b, "fig2") }
func BenchmarkTable1RouterModel(b *testing.B)   { runExp(b, "table1") }
func BenchmarkFig7URSweep(b *testing.B)         { runExp(b, "fig7") }
func BenchmarkFig8Breakdowns(b *testing.B)      { runExp(b, "fig8") }
func BenchmarkFig9NNSweep(b *testing.B)         { runExp(b, "fig9") }
func BenchmarkFig10Torus(b *testing.B)          { runExp(b, "fig10") }
func BenchmarkFig11Apps(b *testing.B)           { runExp(b, "fig11") }
func BenchmarkFig12IPC(b *testing.B)            { runExp(b, "fig12") }
func BenchmarkFig13MemCtrl(b *testing.B)        { runExp(b, "fig13") }
func BenchmarkFig14AsymCMP(b *testing.B)        { runExp(b, "fig14") }
func BenchmarkDSE4x4(b *testing.B)              { runExp(b, "dse") }

// BenchmarkNetworkCycle measures raw simulator speed: cycles/sec of the
// baseline 8x8 mesh under moderate uniform-random load.
func BenchmarkNetworkCycle(b *testing.B) {
	l := core.NewBaseline(8, 8)
	net, err := l.Network()
	if err != nil {
		b.Fatal(err)
	}
	gen := traffic.UniformRandom{N: 64}
	proc := traffic.Bernoulli{P: 0.03}
	rng := newBenchRng()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < 64; t++ {
			if proc.Fire(t, net.Cycle(), rng) {
				net.Inject(&noc.Packet{Src: t, Dst: gen.Dst(t, rng), NumFlits: 6})
			}
		}
		if err := net.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkCycleNoAttr is BenchmarkNetworkCycle with the always-on
// attribution counter path disabled. The delta against BenchmarkNetworkCycle
// is the cost of causal latency attribution; scripts/bench.sh records it as
// attribution_overhead_pct with a ≤5% budget.
func BenchmarkNetworkCycleNoAttr(b *testing.B) {
	l := core.NewBaseline(8, 8)
	net, err := l.Network()
	if err != nil {
		b.Fatal(err)
	}
	net.SetAttribution(false)
	gen := traffic.UniformRandom{N: 64}
	proc := traffic.Bernoulli{P: 0.03}
	rng := newBenchRng()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < 64; t++ {
			if proc.Fire(t, net.Cycle(), rng) {
				net.Inject(&noc.Packet{Src: t, Dst: gen.Dst(t, rng), NumFlits: 6})
			}
		}
		if err := net.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeteroNetworkCycle is the same for Diagonal+BL (wide links,
// split-datapath allocator).
func BenchmarkHeteroNetworkCycle(b *testing.B) {
	l := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	net, err := l.Network()
	if err != nil {
		b.Fatal(err)
	}
	gen := traffic.UniformRandom{N: 64}
	proc := traffic.Bernoulli{P: 0.03}
	rng := newBenchRng()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < 64; t++ {
			if proc.Fire(t, net.Cycle(), rng) {
				net.Inject(&noc.Packet{Src: t, Dst: gen.Dst(t, rng), NumFlits: 6})
			}
		}
		if err := net.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchNetworkCycleScaled is BenchmarkNetworkCycle generalized to a w-wide
// square mesh. The injection rate is bisection-scaled (0.03 at 8x8, then
// x8/w) so every size runs at a comparable fraction of its own saturation
// load instead of drowning the big meshes. It reports ns/router alongside
// ns/op so the per-router cycle cost — the number that should stay flat if
// the engine scales linearly — is visible directly in the bench output.
func benchNetworkCycleScaled(b *testing.B, w int) {
	l := core.NewBaseline(w, w)
	net, err := l.Network()
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	n := w * w
	gen := traffic.UniformRandom{N: n}
	proc := traffic.Bernoulli{P: 0.03 * 8 / float64(w)}
	rng := newBenchRng()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < n; t++ {
			if proc.Fire(t, net.Cycle(), rng) {
				net.Inject(&noc.Packet{Src: t, Dst: gen.Dst(t, rng), NumFlits: 6})
			}
		}
		if err := net.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/router")
}

// BenchmarkNetworkCycle16x16 and -32x32 track the cycle cost at 256 and
// 1024 routers; scripts/bench.sh surfaces the 32x32 per-router cost as
// cycle_ns_per_router_32x32.
func BenchmarkNetworkCycle16x16(b *testing.B) { benchNetworkCycleScaled(b, 16) }
func BenchmarkNetworkCycle32x32(b *testing.B) { benchNetworkCycleScaled(b, 32) }

// BenchmarkNetworkCycleTraced is BenchmarkNetworkCycle with a full-detail
// flit tracer installed (macro + VC/SA/credit events into per-router
// rings). The delta against BenchmarkNetworkCycle is the cost of tracing a
// run; scripts/bench.sh records it as tracer_overhead_pct.
func BenchmarkNetworkCycleTraced(b *testing.B) {
	l := core.NewBaseline(8, 8)
	net, err := l.Network()
	if err != nil {
		b.Fatal(err)
	}
	net.SetTracer(noc.NewNetworkFlitTracer(net, noc.FlitTracerConfig{}))
	gen := traffic.UniformRandom{N: 64}
	proc := traffic.Bernoulli{P: 0.03}
	rng := newBenchRng()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < 64; t++ {
			if proc.Fire(t, net.Cycle(), rng) {
				net.Inject(&noc.Packet{Src: t, Dst: gen.Dst(t, rng), NumFlits: 6})
			}
		}
		if err := net.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkCycleSampled is BenchmarkNetworkCycle with the metrics
// registry populated and a per-router time-series sampler attached at the
// default stride — the steady-state cost of leaving observability on
// (pull-based metrics cost nothing between scrapes; the sampler adds one
// per-cycle hook plus a sample every 1000 cycles). scripts/bench.sh
// records the delta as metrics_overhead_pct.
func BenchmarkNetworkCycleSampled(b *testing.B) {
	l := core.NewBaseline(8, 8)
	net, err := l.Network()
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	net.RegisterMetrics(reg)
	noc.NewSampler(net, noc.SampleConfig{PerRouter: true}).Attach()
	gen := traffic.UniformRandom{N: 64}
	proc := traffic.Bernoulli{P: 0.03}
	rng := newBenchRng()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < 64; t++ {
			if proc.Fire(t, net.Cycle(), rng) {
				net.Inject(&noc.Packet{Src: t, Dst: gen.Dst(t, rng), NumFlits: 6})
			}
		}
		if err := net.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := obs.ValidatePrometheusText(string(reg.Exposition())); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCMPCycle measures full-system (64 cores + coherence + NoC +
// DRAM) cycles/sec.
func BenchmarkCMPCycle(b *testing.B) {
	p, err := trace.ProfileByName("SPECjbb")
	if err != nil {
		b.Fatal(err)
	}
	trs := make([]trace.Reader, 64)
	for i := range trs {
		trs[i] = trace.NewGenerator(p, i, 128)
	}
	s, err := cmp.New(cmp.Config{Layout: core.NewBaseline(8, 8), Traces: trs})
	if err != nil {
		b.Fatal(err)
	}
	s.Warmup(8000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableRouteBuild measures zig-zag table construction (64
// Dijkstra passes with big-router discounts).
func BenchmarkTableRouteBuild(b *testing.B) {
	m := topology.NewMesh(8, 8)
	l := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	big := l.BigSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routing.NewTableXY(m, routing.TableXYConfig{Flagged: []int{0, 7, 56, 63}, Big: big})
	}
}

// BenchmarkFaultTableRebuild measures a from-scratch rebuild of all routes
// over a faulted 8x8 mesh — the worst-case latency a Rebuild call charges
// the simulation. The two fault sets are not nested, so every transition
// resurrects a link and defeats the incremental path: each iteration is a
// genuine full rebuild.
func BenchmarkFaultTableRebuild(b *testing.B) {
	m := topology.NewMesh(8, 8)
	l := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	ft := routing.NewFaultTable(m, routing.FaultTableConfig{Big: l.BigSet()})
	lsA := topology.NewLinkState(m)
	lsA.FailLink(m.RouterAt(3, 3), topology.PortEast)
	lsA.FailLink(m.RouterAt(4, 4), topology.PortNorth)
	lsA.FailRouter(m.RouterAt(1, 6))
	lsB := topology.NewLinkState(m)
	lsB.FailLink(m.RouterAt(5, 2), topology.PortSouth)
	lsB.FailLink(m.RouterAt(2, 5), topology.PortWest)
	lsB.FailRouter(m.RouterAt(6, 1))
	states := [2]*topology.LinkState{lsA, lsB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Rebuild(states[i&1])
	}
}

// BenchmarkFaultTableIncremental isolates the incremental path: absorbing
// one additional link death into an already-built 8x8 table. The rollback
// to the base fault set between iterations is untimed.
func BenchmarkFaultTableIncremental(b *testing.B) {
	m := topology.NewMesh(8, 8)
	l := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	ft := routing.NewFaultTable(m, routing.FaultTableConfig{Big: l.BigSet()})
	base := topology.NewLinkState(m)
	base.FailLink(m.RouterAt(3, 3), topology.PortEast)
	plus := base.Clone()
	plus.FailLink(m.RouterAt(5, 2), topology.PortSouth)
	ft.Rebuild(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Rebuild(plus) // one new dead link over the stored DAG state
		b.StopTimer()
		ft.Rebuild(base) // untimed rollback (full rebuild)
		b.StartTimer()
	}
}

// BenchmarkTableBuild1024 measures the full route construction for a
// 32x32 mesh (1024 routers, 1024 destinations): the table the scale
// experiments build once per topology. The acceptance bar is sub-quadratic
// scaling — faster than 16 sequential 8x8 Dijkstra builds of the heap era.
func BenchmarkTableBuild1024(b *testing.B) {
	m := topology.NewMesh(32, 32)
	l := core.NewLayout(core.PlacementDiagonal, 32, 32, true)
	big := l.BigSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routing.NewFaultTable(m, routing.FaultTableConfig{Big: big})
	}
}

// BenchmarkFaultSweep regenerates the graceful-degradation experiment
// (0..8 failed links, baseline vs Diagonal+BL, reliability layer +
// saturation probes) at the reduced bench scale; scripts/bench.sh records
// its runtime so fault-stack performance regressions show up in
// BENCH_noc.json like kernel regressions do.
func BenchmarkFaultSweep(b *testing.B) { runExp(b, "degradation") }

// BenchmarkReliableCycle measures the per-cycle overhead of the NI
// retransmission layer on a fault-armed network under moderate load.
func BenchmarkReliableCycle(b *testing.B) {
	m := topology.NewMesh(8, 8)
	net, err := core.NewBaseline(8, 8).NetworkWith(
		routing.NewFaultTable(m, routing.FaultTableConfig{}))
	if err != nil {
		b.Fatal(err)
	}
	if err := net.SetFaultPlan(&fault.Plan{}); err != nil {
		b.Fatal(err)
	}
	rel := noc.NewReliable(net, noc.ReliableConfig{})
	gen := traffic.UniformRandom{N: 64}
	proc := traffic.Bernoulli{P: 0.03}
	rng := newBenchRng()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < 64; t++ {
			if proc.Fire(t, net.Cycle(), rng) {
				if _, err := rel.Send(t, gen.Dst(t, rng), 6, 0, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := rel.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRestore measures deserializing a mid-run 8x8 network
// checkpoint into a fresh simulator — the fixed cost every cache-served
// warm start pays instead of re-simulating the prefix. scripts/bench.sh
// records it as "ckpt_restore_ns_per_op" in BENCH_noc.json.
func BenchmarkCheckpointRestore(b *testing.B) {
	l := core.NewBaseline(8, 8)
	net, err := l.Network()
	if err != nil {
		b.Fatal(err)
	}
	gen := traffic.UniformRandom{N: 64}
	proc := traffic.Bernoulli{P: 0.03}
	rng := newBenchRng()
	for c := 0; c < 2000; c++ {
		for t := 0; t < 64; t++ {
			if proc.Fire(t, net.Cycle(), rng) {
				net.Inject(&noc.Packet{Src: t, Dst: gen.Dst(t, rng), NumFlits: 6})
			}
		}
		if err := net.Step(); err != nil {
			b.Fatal(err)
		}
	}
	snap, err := net.Snapshot(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh, err := l.Network()
		if err != nil {
			b.Fatal(err)
		}
		if err := fresh.RestoreSnapshot(snap, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmRestore measures restoring a shared CMP warm checkpoint
// versus the warmup replay it replaces (BenchmarkCMPWarmup below); the
// ratio is the per-run saving the warmup-sharing path buys each figure.
func BenchmarkWarmRestore(b *testing.B) {
	p, err := trace.ProfileByName("SPECjbb")
	if err != nil {
		b.Fatal(err)
	}
	mkTraces := func() []trace.Reader {
		trs := make([]trace.Reader, 64)
		for i := range trs {
			trs[i] = trace.NewGenerator(p, i, 128)
		}
		return trs
	}
	warm, err := cmp.New(cmp.Config{Layout: core.NewBaseline(8, 8), Traces: mkTraces()})
	if err != nil {
		b.Fatal(err)
	}
	warm.Warmup(8000)
	snap, err := warm.WarmSnapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := cmp.New(cmp.Config{Layout: core.NewBaseline(8, 8), Traces: mkTraces()})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.RestoreWarmSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// traceDecodeEntries is the trace length decoded per iteration by
// BenchmarkTraceDecode; scripts/bench.sh divides it by ns/op to surface
// the decode throughput as trace_decode_entries_per_sec.
const traceDecodeEntries = 1 << 16

// BenchmarkTraceDecode measures trace replay three ways: the flat HNTR
// v1 stream decoded entry-at-a-time (the old pipeline), and a chunked
// HNTR2 trace through Next and through the bulk NextBatch path. The
// flat/batch ratio is what the chunked pipeline buys every file-backed
// warmup.
func BenchmarkTraceDecode(b *testing.B) {
	p, err := trace.ProfileByName("SPECjbb")
	if err != nil {
		b.Fatal(err)
	}
	var flat bytes.Buffer
	if err := trace.Record(&flat, trace.NewGenerator(p, 0, 128), traceDecodeEntries); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.RecordChunked(&buf, trace.NewGenerator(p, 0, 128), traceDecodeEntries, 0); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	open := func() *trace.ChunkReader {
		r, err := trace.NewChunkReader(bytes.NewReader(data), int64(len(data)), false)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	b.Run("flat-next", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := trace.NewFileReader(bytes.NewReader(flat.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < traceDecodeEntries; j++ {
				r.Next()
			}
			if r.Err() != nil {
				b.Fatal(r.Err())
			}
		}
	})
	b.Run("next", func(b *testing.B) {
		r := open()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.SeekTo(0); err != nil {
				b.Fatal(err)
			}
			for j := 0; j < traceDecodeEntries; j++ {
				r.Next()
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		r := open()
		out := make([]trace.Entry, 1024)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.SeekTo(0); err != nil {
				b.Fatal(err)
			}
			for r.NextBatch(out) > 0 {
			}
		}
	})
	b.Run("batch-prefetch", func(b *testing.B) {
		r, err := trace.NewChunkReader(bytes.NewReader(data), int64(len(data)), true)
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		out := make([]trace.Entry, trace.DefaultChunkEntries)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.SeekTo(0); err != nil {
				b.Fatal(err)
			}
			for r.NextBatch(out) > 0 {
			}
		}
	})
}

// BenchmarkWarmRestoreSeek is BenchmarkWarmRestore on file-backed chunked
// traces: restore repositions every reader with one SeekTo instead of the
// O(warmup) Next() replay, so this number stays flat as warmup depth
// grows. Surfaced by scripts/bench.sh as warm_restore_seek_ns_per_op.
func BenchmarkWarmRestoreSeek(b *testing.B) {
	p, err := trace.ProfileByName("SPECjbb")
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	readers := make([]trace.Reader, 64)
	for i := range readers {
		path := filepath.Join(dir, fmt.Sprintf("core%d.trc2", i))
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := trace.RecordChunked(f, trace.NewGenerator(p, i, 128), 10000, 0); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		cf, err := trace.OpenChunked(path, false)
		if err != nil {
			b.Fatal(err)
		}
		defer cf.Close()
		readers[i] = cf
	}
	warm, err := cmp.New(cmp.Config{Layout: core.NewBaseline(8, 8), Traces: readers})
	if err != nil {
		b.Fatal(err)
	}
	warm.Warmup(8000)
	snap, err := warm.WarmSnapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The chunked readers are position-addressable, so reusing them is
		// sound: restore lands each one at the warmup boundary by seek, no
		// matter where the previous iteration left it.
		s, err := cmp.New(cmp.Config{Layout: core.NewBaseline(8, 8), Traces: readers})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.RestoreWarmSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCMPWarmup is the direct-warmup baseline for BenchmarkWarmRestore.
func BenchmarkCMPWarmup(b *testing.B) {
	p, err := trace.ProfileByName("SPECjbb")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trs := make([]trace.Reader, 64)
		for t := range trs {
			trs[t] = trace.NewGenerator(p, t, 128)
		}
		s, err := cmp.New(cmp.Config{Layout: core.NewBaseline(8, 8), Traces: trs})
		if err != nil {
			b.Fatal(err)
		}
		s.Warmup(8000)
	}
}

// BenchmarkDSEGeneration measures the multi-objective search at its unit
// of work: one small 4x4 search (initial population plus one bred
// generation) per iteration. The seed is fixed, so the first iteration
// pays for real probes and every later one is answered by runcache — the
// reported cache_hit_ratio is the cross-run dedup rate the search design
// banks on, and evals/s is the effective evaluation throughput including
// those cache answers.
func BenchmarkDSEGeneration(b *testing.B) {
	runcache.Reset()
	cfg := dse.SearchConfig{
		Eval: dse.EvalConfig{
			W: 4, H: 4, LinkRedist: true,
			InjectionRate: 0.05, Packets: 300, Seed: 3,
		},
		MinBig: 4, MaxBig: 4,
		PopSize: 8, Generations: 1,
		Seed: 17,
	}
	execs0 := runcache.Execs()
	totalEvals := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dse.Search(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Front) == 0 {
			b.Fatal("empty front")
		}
		totalEvals += res.Evals
	}
	b.StopTimer()
	execs := runcache.Execs() - execs0
	if totalEvals > 0 {
		b.ReportMetric(float64(totalEvals)/b.Elapsed().Seconds(), "evals/s")
		b.ReportMetric(float64(totalEvals-int(execs))/float64(totalEvals), "cache_hit_ratio")
	}
}
