// Replaytrace demonstrates the trace file path end to end: record a
// synthetic workload to disk (standing in for a real Simics-style memory
// trace), then replay the files through the full CMP simulator on two
// network designs. Anything that implements trace.Reader — including
// parsers for your own trace formats — can be plugged in the same way.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"heteronoc/internal/cmp"
	"heteronoc/internal/core"
	"heteronoc/internal/trace"
)

func main() {
	dir, err := os.MkdirTemp("", "heteronoc-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Record: 64 per-core trace files of the SAP profile.
	p, err := trace.ProfileByName("SAP")
	if err != nil {
		log.Fatal(err)
	}
	const entries = 60000
	fmt.Printf("recording %d entries x 64 cores to %s\n", entries, dir)
	for c := 0; c < 64; c++ {
		f, err := os.Create(path(dir, c))
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.Record(f, trace.NewGenerator(p, c, 128), entries); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	// 2. Replay through the CMP on both networks.
	for _, l := range []core.Layout{
		core.NewBaseline(8, 8),
		core.NewLayout(core.PlacementDiagonal, 8, 8, true),
	} {
		trs := make([]trace.Reader, 64)
		files := make([]*os.File, 64)
		for c := 0; c < 64; c++ {
			f, err := os.Open(path(dir, c))
			if err != nil {
				log.Fatal(err)
			}
			files[c] = f
			r, err := trace.NewFileReader(f)
			if err != nil {
				log.Fatal(err)
			}
			trs[c] = r
		}
		s, err := cmp.New(cmp.Config{Layout: l, Traces: trs})
		if err != nil {
			log.Fatal(err)
		}
		s.Warmup(30000)
		if err := s.Run(15000); err != nil {
			log.Fatal(err)
		}
		rep := s.Snapshot()
		fmt.Printf("\n=== %s ===\n%s", l.Name, rep)
		for _, f := range files {
			f.Close()
		}
	}
}

func path(dir string, core int) string {
	return filepath.Join(dir, fmt.Sprintf("sap-core%02d.trc", core))
}
