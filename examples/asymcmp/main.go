// Asymcmp runs the Section 7 case study: an asymmetric CMP (4 large
// out-of-order cores at the mesh corners, 60 small in-order cores) on
// three network configurations, including table-based routing that steers
// the latency-critical large-core traffic through the big routers on the
// diagonals (with escape VCs for deadlock freedom).
package main

import (
	"fmt"
	"log"

	"heteronoc/internal/cmp"
	"heteronoc/internal/core"
	"heteronoc/internal/routing"
	"heteronoc/internal/trace"
)

var largeTiles = []int{0, 7, 56, 63}

func isLarge(t int) bool {
	for _, l := range largeTiles {
		if t == l {
			return true
		}
	}
	return false
}

func build(l core.Layout, table bool) *cmp.System {
	libq, err := trace.ProfileByName("libquantum")
	if err != nil {
		log.Fatal(err)
	}
	jbb, err := trace.ProfileByName("SPECjbb")
	if err != nil {
		log.Fatal(err)
	}
	trs := make([]trace.Reader, 64)
	cores := make([]cmp.CoreConfig, 64)
	for i := 0; i < 64; i++ {
		if isLarge(i) {
			trs[i] = trace.NewGeneratorAt(libq, i, 128, 1<<26)
			cores[i] = cmp.LargeCore()
		} else {
			trs[i] = trace.NewGenerator(jbb, i, 128)
			cores[i] = cmp.SmallCore()
		}
	}
	var alg routing.Algorithm
	if table {
		alg = routing.NewTableXY(l.Mesh, routing.TableXYConfig{
			Flagged: largeTiles,
			Big:     l.BigSet(),
		})
	}
	s, err := cmp.New(cmp.Config{Layout: l, Traces: trs, Cores: cores, Routing: alg})
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func main() {
	configs := []struct {
		name  string
		l     core.Layout
		table bool
	}{
		{"HomoNoC-XY", core.NewBaseline(8, 8), false},
		{"HeteroNoC-XY", core.NewLayout(core.PlacementDiagonal, 8, 8, true), false},
		{"HeteroNoC-Table+XY", core.NewLayout(core.PlacementDiagonal, 8, 8, true), true},
	}
	fmt.Println("4x libquantum on large corner cores + 60x SPECjbb threads (Section 7)")
	fmt.Println()
	fmt.Printf("%-20s %12s %12s\n", "config", "libq IPC", "jbb IPC")
	for _, c := range configs {
		s := build(c.l, c.table)
		s.Warmup(30000)
		if err := s.Run(15000); err != nil {
			log.Fatal(err)
		}
		var libqIPC, jbbIPC float64
		for _, t := range s.Tiles {
			if isLarge(t.ID) {
				libqIPC += t.Core.IPC() / 4
			} else {
				jbbIPC += t.Core.IPC() / 60
			}
		}
		fmt.Printf("%-20s %12.3f %12.3f\n", c.name, libqIPC, jbbIPC)
	}
	fmt.Println("\nTable-based routing expedites libquantum through the big routers")
	fmt.Println("while freeing the small routers for SPECjbb traffic.")
}
