// Customlayout shows the programmable side of the library: define a
// heterogeneous layout from a JSON spec, check the paper's Section 2
// resource constraints against it, measure it, and then let the simulated
// annealer search for a better placement with the same budget.
package main

import (
	"fmt"
	"log"

	"heteronoc/internal/core"
	"heteronoc/internal/dse"
	"heteronoc/internal/traffic"
)

const spec = `{
  "name": "knights",
  "width": 8, "height": 8,
  "big": [10, 13, 17, 22, 41, 46, 50, 53, 26, 29, 34, 37, 19, 20, 43, 44],
  "linkRedist": true
}`

func measure(l core.Layout) float64 {
	net, err := l.Network()
	if err != nil {
		log.Fatal(err)
	}
	res, err := traffic.Run(net, traffic.RunConfig{
		Pattern:        traffic.UniformRandom{N: 64},
		Process:        traffic.Bernoulli{P: 0.048},
		DataFlits:      l.DataPacketFlits(),
		WarmupPackets:  500,
		MeasurePackets: 10000,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.AvgLatency
}

func main() {
	l, err := core.ParseLayoutJSON([]byte(spec))
	if err != nil {
		log.Fatal(err)
	}
	res := l.Accounting()
	fmt.Printf("layout %q: %d big routers, buffer bits %d, bisection %d bits\n",
		l.Name, len(core.SpecOf(l).Big), res.BufferBits, res.BisectionBits)
	fmt.Printf("Section 2 power guideline holds: %v\n\n", l.PowerInequalityHolds())

	custom := measure(l)
	diag := measure(core.NewLayout(core.PlacementDiagonal, 8, 8, true))
	fmt.Printf("UR @0.048: %-10s %.1f cycles\n", l.Name, custom)
	fmt.Printf("UR @0.048: %-10s %.1f cycles\n\n", "Diagonal+BL", diag)

	fmt.Println("annealing 40 steps over the 8x8 placement space...")
	ann, err := dse.Anneal(dse.AnnealConfig{
		Eval: dse.EvalConfig{
			W: 8, H: 8, BigCount: 16, LinkRedist: true,
			InjectionRate: 0.048, Packets: 2000, Seed: 7,
		},
		Steps: 40,
		Seed:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best found: %.1f cycles at %v\n", ann.Best.AvgLatency, ann.Best.Big)
	best := core.NewCustom("annealed", 8, 8, ann.Best.Big, true)
	data, err := core.LayoutJSON(best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspec of the annealed layout:\n%s\n", data)
}
