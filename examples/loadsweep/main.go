// Loadsweep reproduces a Figure 7(a)-style load-latency study: it sweeps
// the injection rate on the baseline and on the three +BL HeteroNoC
// placements and draws the latency curves as an ASCII chart.
package main

import (
	"fmt"
	"log"
	"strings"

	"heteronoc/internal/core"
	"heteronoc/internal/traffic"
)

func main() {
	layouts := []core.Layout{
		core.NewBaseline(8, 8),
		core.NewLayout(core.PlacementCenter, 8, 8, true),
		core.NewLayout(core.PlacementRow25, 8, 8, true),
		core.NewLayout(core.PlacementDiagonal, 8, 8, true),
	}
	rates := []float64{0.008, 0.016, 0.024, 0.032, 0.040, 0.048, 0.056, 0.064}
	marks := []byte{'B', 'C', 'R', 'D'}

	curves := make([][]float64, len(layouts))
	for i, l := range layouts {
		for _, rate := range rates {
			net, err := l.Network()
			if err != nil {
				log.Fatal(err)
			}
			res, err := traffic.Run(net, traffic.RunConfig{
				Pattern:        traffic.UniformRandom{N: 64},
				Process:        traffic.Bernoulli{P: rate},
				DataFlits:      l.DataPacketFlits(),
				WarmupPackets:  500,
				MeasurePackets: 8000,
				Seed:           42,
				MaxCycles:      60000,
			})
			if err != nil {
				log.Fatal(err)
			}
			curves[i] = append(curves[i], res.AvgLatency/l.FreqGHz())
		}
		fmt.Printf("%c = %-12s", marks[i], l.Name)
	}
	fmt.Print("\n\n")

	// ASCII chart: latency (ns) vs injection rate.
	const height = 18
	maxLat := 0.0
	for _, c := range curves {
		for _, v := range c {
			if v > maxLat {
				maxLat = v
			}
		}
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", len(rates)*7))
	}
	for i, c := range curves {
		for x, v := range c {
			y := height - 1 - int(v/maxLat*float64(height-1))
			col := x*7 + i
			grid[y][col] = marks[i]
		}
	}
	fmt.Printf("latency (ns), max %.1f\n", maxLat)
	for _, row := range grid {
		fmt.Printf("| %s\n", row)
	}
	fmt.Printf("+%s\n  ", strings.Repeat("-", len(rates)*7))
	for _, r := range rates {
		fmt.Printf("%-7.3f", r)
	}
	fmt.Print("\n  injection rate (packets/node/cycle)\n")

	fmt.Println("\nnumeric values (ns):")
	fmt.Printf("%-8s", "rate")
	for _, l := range layouts {
		fmt.Printf("%14s", l.Name)
	}
	fmt.Println()
	for x, r := range rates {
		fmt.Printf("%-8.3f", r)
		for i := range layouts {
			fmt.Printf("%14.1f", curves[i][x])
		}
		fmt.Println()
	}
}
