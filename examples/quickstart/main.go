// Quickstart: build the paper's homogeneous baseline and the best
// HeteroNoC design (big routers on the diagonals, buffers and links
// redistributed), run the same uniform-random load through both, and
// compare latency and power — the headline comparison of the paper in
// ~40 lines of API use.
package main

import (
	"fmt"
	"log"

	"heteronoc/internal/core"
	"heteronoc/internal/power"
	"heteronoc/internal/traffic"
)

func measure(l core.Layout, rate float64) (latencyNS, watts float64) {
	net, err := l.Network()
	if err != nil {
		log.Fatal(err)
	}
	res, err := traffic.Run(net, traffic.RunConfig{
		Pattern:        traffic.UniformRandom{N: l.Mesh.NumTerminals()},
		Process:        traffic.Bernoulli{P: rate},
		DataFlits:      l.DataPacketFlits(), // 1024-bit cache-line packets
		WarmupPackets:  1000,
		MeasurePackets: 20000,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}
	pw := power.Network(power.NewModel(), l, res.Activity)
	return res.AvgLatency / l.FreqGHz(), pw.Total()
}

func main() {
	const rate = 0.048 // packets/node/cycle, a moderately high UR load

	baseline := core.NewBaseline(8, 8)
	hetero := core.NewLayout(core.PlacementDiagonal, 8, 8, true) // Diagonal+BL

	baseLat, basePw := measure(baseline, rate)
	hetLat, hetPw := measure(hetero, rate)

	fmt.Printf("uniform random @ %.3f packets/node/cycle\n\n", rate)
	fmt.Printf("%-14s %10s %10s\n", "network", "latency", "power")
	fmt.Printf("%-14s %8.1fns %8.1fW\n", baseline.Name, baseLat, basePw)
	fmt.Printf("%-14s %8.1fns %8.1fW\n", hetero.Name, hetLat, hetPw)
	fmt.Printf("\nHeteroNoC: %.1f%% lower latency, %.1f%% lower power,\n",
		100*(baseLat-hetLat)/baseLat, 100*(basePw-hetPw)/basePw)
	fmt.Printf("with 33%% fewer buffer bits (%d vs %d).\n",
		hetero.Accounting().BufferBits, baseline.Accounting().BufferBits)
}
