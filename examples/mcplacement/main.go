// Mcplacement runs the Section 6 case study: memory-controller placement
// co-evaluated with HeteroNoC. It executes a commercial workload (TPC-C)
// on three configurations and prints miss round-trip latency and the
// request-latency jitter at the controllers, reproducing the trend of
// Figure 13.
package main

import (
	"fmt"
	"log"

	"heteronoc/internal/cmp"
	"heteronoc/internal/cmp/mem"
	"heteronoc/internal/core"
	"heteronoc/internal/trace"
)

func run(name string, l core.Layout, placement mem.Placement) {
	w, h := l.Mesh.Dims()
	p, err := trace.ProfileByName("TPC-C")
	if err != nil {
		log.Fatal(err)
	}
	trs := make([]trace.Reader, 64)
	for i := range trs {
		trs[i] = trace.NewGenerator(p, i, 128)
	}
	s, err := cmp.New(cmp.Config{
		Layout:  l,
		Traces:  trs,
		MCTiles: mem.Tiles(placement, w, h),
	})
	if err != nil {
		log.Fatal(err)
	}
	s.Warmup(30000)
	if err := s.Run(15000); err != nil {
		log.Fatal(err)
	}
	rtt := s.MissRTT()
	mc := s.MCReqLatency
	fmt.Printf("%-22s round-trip %7.1f cycles | request-to-MC %6.1f +- %5.2f (CoV %.3f)\n",
		name, rtt.Mean(), mc.Mean(), mc.StdDev(), mc.CoV())
}

func main() {
	fmt.Println("TPC-C on 64 cores, 16 controllers (Section 6)")
	fmt.Println()
	base := core.NewBaseline(8, 8)
	het := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	run("Diamond_homoNoC", base, mem.PlacementDiamond)
	run("Diamond_heteroNoC", het, mem.PlacementDiamond)
	run("Diagonal_heteroNoC", het, mem.PlacementDiagonal)
	fmt.Println("\nDiagonal placement attaches every controller to a big router:")
	fmt.Println("latency and jitter drop together (paper: CoV 0.66 -> 0.46).")
}
