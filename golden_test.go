package heteronoc

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"heteronoc/internal/core"
	"heteronoc/internal/noc"
	"heteronoc/internal/traffic"
)

// updateGolden regenerates testdata/golden_kernel.json from the current
// kernel instead of comparing against it:
//
//	go test -run TestGoldenDeterminism -update-golden
//
// Only do this when a change is *supposed* to alter simulated behavior;
// performance work must keep these fingerprints bit-identical.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden kernel fingerprints")

const goldenPath = "testdata/golden_kernel.json"

// goldenCase fixes one simulated scenario completely: layout, traffic,
// seed and cycle count. The fingerprint hashes the full Stats (including
// the per-packet latency histogram and per-class aggregates) plus every
// per-router activity counter, so any behavioral divergence — a packet
// delivered one cycle later, one extra arbiter operation — changes it.
type goldenCase struct {
	name   string
	layout core.Layout
	rate   float64
	flits  int
	cycles int
	seed   int64
}

func goldenCases() []goldenCase {
	return []goldenCase{
		// The homogeneous baseline at a light and a near-saturation load.
		{"baseline8x8_ur_low", core.NewBaseline(8, 8), 0.02, 6, 6000, 1},
		{"baseline8x8_ur_high", core.NewBaseline(8, 8), 0.06, 6, 6000, 2},
		// Diagonal+BL exercises wide links, flit combining and the
		// split-datapath allocator.
		{"diagonalBL_ur_low", core.NewLayout(core.PlacementDiagonal, 8, 8, true), 0.02, 8, 6000, 3},
		{"diagonalBL_ur_high", core.NewLayout(core.PlacementDiagonal, 8, 8, true), 0.06, 8, 6000, 4},
		// Nearest-neighbor keeps most of the mesh idle, the active-set
		// scheduler's best case — and its most delicate one.
		{"diagonalBL_nn", core.NewLayout(core.PlacementDiagonal, 8, 8, true), 0.10, 8, 6000, 5},
		// A 256-router mesh pins the scaled engine (SoA active sets,
		// work-stealing shards) at a size the paper never reaches. The
		// rate is bisection-scaled to a moderate relative load.
		{"baseline16x16_ur", core.NewBaseline(16, 16), 0.015, 6, 4000, 6},
	}
}

// runGolden drives one scenario for its fixed cycle count and returns the
// network fingerprint.
func runGolden(t *testing.T, c goldenCase) uint64 {
	return runGoldenSharded(t, c, 0)
}

// runGoldenSharded is runGolden with intra-cycle sharding on the given
// worker count (0 = plain sequential kernel).
func runGoldenSharded(t *testing.T, c goldenCase, workers int) uint64 {
	t.Helper()
	net, err := c.layout.Network()
	if err != nil {
		t.Fatal(err)
	}
	if workers > 0 {
		net.SetShardWorkers(workers)
		defer net.Close()
	}
	n := c.layout.Mesh.NumTerminals()
	var pattern traffic.Pattern = traffic.UniformRandom{N: n}
	if c.name == "diagonalBL_nn" {
		pattern = traffic.NearestNeighbor{Grid: c.layout.Mesh}
	}
	proc := traffic.Bernoulli{P: c.rate}
	rng := rand.New(rand.NewSource(c.seed))
	for i := 0; i < c.cycles; i++ {
		for term := 0; term < n; term++ {
			if proc.Fire(term, net.Cycle(), rng) {
				net.Inject(&noc.Packet{Src: term, Dst: pattern.Dst(term, rng), NumFlits: c.flits})
			}
		}
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("%s: invariants violated after %d cycles: %v", c.name, c.cycles, err)
	}
	return net.Fingerprint()
}

// TestGoldenDeterminism is the regression gate for kernel optimizations:
// fixed seeds must produce bit-identical statistics (latency, throughput,
// combining, per-router activity) across any rewrite of the cycle kernel.
func TestGoldenDeterminism(t *testing.T) {
	got := map[string]string{}
	for _, c := range goldenCases() {
		got[c.name] = fmt.Sprintf("%016x", runGolden(t, c))
	}
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden fingerprint recorded (run -update-golden)", name)
			continue
		}
		if g != w {
			t.Errorf("%s: fingerprint %s, golden %s — simulated behavior changed", name, g, w)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("golden case %s no longer exists", name)
		}
	}
}

// TestGoldenSharded pins the tentpole guarantee of the sharded kernel: with
// intra-cycle sharding enabled at any worker count, every golden scenario
// must fingerprint bit-identically to the recorded sequential run. Run
// under -race this also proves the shard spans really are disjoint.
func TestGoldenSharded(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	workerCounts := []int{1, 2, 3, runtime.GOMAXPROCS(0)}
	for _, c := range goldenCases() {
		for _, w := range workerCounts {
			got := fmt.Sprintf("%016x", runGoldenSharded(t, c, w))
			if got != want[c.name] {
				t.Errorf("%s with %d shard workers: fingerprint %s, golden %s — sharding changed simulated behavior",
					c.name, w, got, want[c.name])
			}
		}
	}
}

// TestGoldenRerunStable guards the harness itself: two back-to-back runs of
// the same scenario in one process must agree, proving the fingerprint does
// not depend on residual global state.
func TestGoldenRerunStable(t *testing.T) {
	c := goldenCases()[0]
	a := runGolden(t, c)
	b := runGolden(t, c)
	if a != b {
		t.Fatalf("same scenario fingerprinted %016x then %016x", a, b)
	}
}
