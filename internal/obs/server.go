package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// ServerConfig wires the introspection endpoints. All fields are optional;
// endpoints whose source is nil respond 404.
type ServerConfig struct {
	// Metrics sources the /metrics payload (Prometheus text format). Use
	// Registry.Exposition for concurrency-safe registries (atomic-backed
	// metrics), or Snapshot.Metrics when gauges read single-threaded
	// simulator state.
	Metrics func() []byte
	// TimeSeries sources the /timeseries payload (TimeSeries JSON).
	TimeSeries func() []byte
	// Progress returns a monotonically non-decreasing counter (typically
	// the simulation cycle) for the /healthz stall watchdog.
	Progress func() int64
	// StallDump renders diagnostic state (e.g. Network.StalledDump) once
	// the watchdog declares a stall. It is only invoked while progress is
	// frozen.
	StallDump func() string
	// StallAfter is how long progress may stay frozen before /healthz
	// reports stalled (default 10s).
	StallAfter time.Duration
}

// Server is the opt-in introspection HTTP server: /metrics, /timeseries,
// /healthz and the net/http/pprof suite under /debug/pprof/. Start it with
// StartServer("...:6060", cfg); Close releases the listener.
type Server struct {
	cfg ServerConfig
	ln  net.Listener
	srv *http.Server

	mu         sync.Mutex
	lastCycle  int64
	lastChange time.Time
	everPolled bool
	done       chan struct{}
}

// StartServer listens on addr and serves the introspection endpoints in a
// background goroutine. It returns once the listener is bound, so Addr is
// immediately valid (use ":0" to pick a free port in tests).
func StartServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = 10 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{cfg: cfg, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/timeseries", s.handleTimeSeries)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Bounded I/O so a slow or hostile client cannot pin a connection:
	// header/read/write/idle timeouts all have ceilings. The write
	// timeout is sized for the biggest payload served here (a pprof
	// profile capture, default 30s of sampling).
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	go s.srv.Serve(ln)
	if cfg.Progress != nil {
		go s.watch()
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	close(s.done)
	return s.srv.Close()
}

// watch polls Progress so a stall is detected even when nobody hits
// /healthz between cycles.
func (s *Server) watch() {
	interval := s.cfg.StallAfter / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.poll()
		}
	}
}

// poll refreshes the watchdog state from Progress.
func (s *Server) poll() (cycle int64, stalledFor time.Duration) {
	now := time.Now()
	cycle = s.cfg.Progress()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.everPolled || cycle != s.lastCycle {
		s.lastCycle = cycle
		s.lastChange = now
		s.everPolled = true
		return cycle, 0
	}
	return cycle, now.Sub(s.lastChange)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Metrics == nil {
		http.NotFound(w, nil)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(s.cfg.Metrics())
}

func (s *Server) handleTimeSeries(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.TimeSeries == nil {
		http.NotFound(w, nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.cfg.TimeSeries())
}

// healthzPayload is the /healthz response body.
type healthzPayload struct {
	Status     string  `json:"status"` // "ok" | "stalled" | "unknown"
	Cycle      int64   `json:"cycle"`
	StalledSec float64 `json:"stalled_sec,omitempty"`
	Dump       string  `json:"dump,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.cfg.Progress == nil {
		json.NewEncoder(w).Encode(healthzPayload{Status: "unknown"})
		return
	}
	cycle, stalledFor := s.poll()
	p := healthzPayload{Status: "ok", Cycle: cycle}
	if stalledFor >= s.cfg.StallAfter {
		p.Status = "stalled"
		p.StalledSec = stalledFor.Seconds()
		if s.cfg.StallDump != nil {
			p.Dump = s.cfg.StallDump()
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(p)
}

// Snapshot decouples a single-threaded simulation from concurrent HTTP
// reads: the simulator calls Update from its own loop (e.g. every sampler
// window), rendering the registry and time series into byte buffers under
// a lock; the server sources read the latest buffers. The simulator never
// shares mutable state with the HTTP goroutine.
type Snapshot struct {
	mu         sync.Mutex
	metrics    []byte
	timeseries []byte
	cycle      int64
}

// Update re-renders the exposition artifacts. reg and ts may be nil.
func (sn *Snapshot) Update(cycle int64, reg *Registry, ts *TimeSeries) {
	var metrics, series []byte
	if reg != nil {
		metrics = reg.Exposition()
	}
	if ts != nil {
		var buf jsonBuffer
		_ = ts.WriteJSON(&buf)
		series = buf.b
	}
	sn.mu.Lock()
	sn.cycle = cycle
	if metrics != nil {
		sn.metrics = metrics
	}
	if series != nil {
		sn.timeseries = series
	}
	sn.mu.Unlock()
}

// Metrics returns the latest rendered /metrics payload.
func (sn *Snapshot) Metrics() []byte {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.metrics
}

// TimeSeries returns the latest rendered /timeseries payload.
func (sn *Snapshot) TimeSeries() []byte {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.timeseries
}

// Cycle returns the last cycle passed to Update (the watchdog progress
// source for snapshot-backed servers).
func (sn *Snapshot) Cycle() int64 {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.cycle
}

// jsonBuffer is a minimal io.Writer over a byte slice.
type jsonBuffer struct{ b []byte }

func (j *jsonBuffer) Write(p []byte) (int, error) {
	j.b = append(j.b, p...)
	return len(p), nil
}
