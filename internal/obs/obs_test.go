package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTimeSeriesRoundTrip(t *testing.T) {
	ts := NewTimeSeries("inflight", "util_r0")
	ts.Append(1000, []float64{3, 0.5})
	ts.Append(2000, []float64{7, 0.25})
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTimeSeriesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Columns[1] != "util_r0" || got.Rows[1][0] != 7 || got.Cycles[0] != 1000 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestTimeSeriesCSV(t *testing.T) {
	ts := NewTimeSeries("a", "b")
	ts.Append(10, []float64{1, 2.5})
	var buf bytes.Buffer
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "cycle,a,b\n10,1,2.5\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestTimeSeriesAppendChecksWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad row width")
		}
	}()
	NewTimeSeries("a").Append(0, []float64{1, 2})
}

func TestChromeTraceWriteAndValidate(t *testing.T) {
	events := []ChromeEvent{
		ProcessName(0, "router 0"),
		ThreadName(0, 1, "port 1"),
		{Name: "inject", Ph: "i", TS: 5, PID: 0, TID: 1, S: "t", Args: map[string]any{"packet": 1}},
		{Name: "inflight", Ph: "C", TS: 5, PID: 0, Args: map[string]any{"flits": 4}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("validated %d events, want 4", n)
	}
	// Top-level shape Perfetto expects.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatal("no traceEvents array")
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":     "]][[",
		"no events":    `{"foo": 1}`,
		"missing name": `{"traceEvents":[{"ph":"i","ts":1}]}`,
		"bad phase":    `{"traceEvents":[{"name":"x","ph":"zz","ts":1}]}`,
		"negative ts":  `{"traceEvents":[{"name":"x","ph":"i","ts":-5}]}`,
	} {
		if _, err := ValidateChromeTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestManifestDeterministicModuloWallTime(t *testing.T) {
	build := func(wall float64) *Manifest {
		return &Manifest{
			Tool:         "experiments",
			ConfigHash:   "abc123",
			Scale:        "quick",
			Experiments:  []string{"fig1", "fig7"},
			Seeds:        []int64{42, 1},
			Fingerprints: map[string]string{"fig1": "a", "fig7": "b"},
			RuncacheHits: 3, RuncacheMisses: 9,
			WallTimeSec: wall,
		}
	}
	a, b := build(1.5), build(99.9)
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatalf("canonical forms differ:\n%s\nvs\n%s", a.Canonical(), b.Canonical())
	}
	if a.Hash() != b.Hash() {
		t.Fatal("hashes differ")
	}
	c := build(1.5)
	c.Fingerprints["fig7"] = "CHANGED"
	if bytes.Equal(a.Canonical(), c.Canonical()) {
		t.Fatal("changed fingerprint not reflected in canonical form")
	}
}

func TestManifestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.manifest.json")
	m := &Manifest{Tool: "noxsim", ConfigHash: "ff", Layout: "Diagonal+BL", WallTimeSec: 2}
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "noxsim" || got.Layout != "Diagonal+BL" || got.WallTimeSec != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterGauge("answer", "", nil, func() float64 { return 42 })
	ts := NewTimeSeries("x")
	ts.Append(100, []float64{1})
	var sn Snapshot
	sn.Update(100, reg, ts)
	srv, err := StartServer("127.0.0.1:0", ServerConfig{
		Metrics:    sn.Metrics,
		TimeSeries: sn.TimeSeries,
		Progress:   sn.Cycle,
		StallDump:  func() string { return "router 3 wedged" },
		StallAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "answer 42") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/timeseries"); code != 200 || !strings.Contains(body, `"cycles":[100]`) {
		t.Fatalf("/timeseries: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	// Progress frozen at 100: the watchdog must flip to stalled and attach
	// the dump.
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, body := get("/healthz")
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "router 3 wedged") {
				t.Fatalf("stalled response missing dump: %q", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never reported stalled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Progress resumes: healthz recovers.
	sn.Update(200, reg, ts)
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("healthz did not recover after progress: %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof endpoint: %d", code)
	}
}
