package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeEvent is one entry of the Chrome trace-event format ("JSON Object
// Format"), the interchange format Perfetto and chrome://tracing load
// directly. Only the fields the flit tracer emits are modeled:
//
//   - Ph "i": instant event (flit life-cycle points),
//   - Ph "C": counter event (per-window occupancy curves),
//   - Ph "M": metadata (process/thread naming, so routers and ports get
//     readable track names in the UI).
//
// See https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds; the simulator maps 1 cycle -> 1 us
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope ("t" thread)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceDoc is the top-level trace container. displayTimeUnit tells
// the viewer to render microsecond ticks; since the exporters map one
// simulated cycle to one microsecond, the UI's time axis reads in cycles.
type chromeTraceDoc struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders events as a complete Chrome trace JSON document.
func WriteChromeTrace(w io.Writer, events []ChromeEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTraceDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ProcessName builds the metadata event naming process pid in the viewer.
func ProcessName(pid int, name string) ChromeEvent {
	return ChromeEvent{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": name}}
}

// ThreadName builds the metadata event naming thread (pid, tid).
func ThreadName(pid, tid int, name string) ChromeEvent {
	return ChromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid, Args: map[string]any{"name": name}}
}

// ValidateChromeTrace structurally checks a Chrome trace JSON document:
// the top-level object must carry a traceEvents array, and every event
// needs a name, a known phase and a non-negative timestamp (metadata
// events excepted). It returns the event count. The obs-smoke CI job runs
// exported traces through this before declaring them Perfetto-loadable.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("obs: bad chrome trace JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("obs: chrome trace has no traceEvents array")
	}
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return 0, fmt.Errorf("obs: chrome trace event %d has no name", i)
		}
		switch e.Ph {
		case "i", "I", "C", "M", "B", "E", "X", "b", "e", "n", "s", "t", "f":
		default:
			return 0, fmt.Errorf("obs: chrome trace event %d has unknown phase %q", i, e.Ph)
		}
		if e.Ph != "M" {
			if e.TS == nil {
				return 0, fmt.Errorf("obs: chrome trace event %d (%s) has no ts", i, e.Name)
			}
			if *e.TS < 0 {
				return 0, fmt.Errorf("obs: chrome trace event %d (%s) has negative ts", i, e.Name)
			}
		}
	}
	return len(doc.TraceEvents), nil
}
