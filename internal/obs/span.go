package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one timed phase of a request's life: request → admission queue →
// cache probe per tier → run phases → checkpoint suspend/resume. Spans form
// a tree under one root per request; start offsets are microseconds
// relative to the root so a span tree is self-contained. The tree *shape*
// is deterministic for a given request path (durations are wall clock), so
// span trees are diagnostics, never identity: manifests exclude them from
// Canonical().
//
// All methods are nil-safe — instrumented code calls Child/End/SetAttr
// unconditionally and a nil span (no recorder installed) makes them no-ops.
type Span struct {
	Name string `json:"name"`
	// StartUS is the span's start offset in microseconds from the root
	// span's start.
	StartUS int64 `json:"start_us"`
	// DurUS is the span's duration in microseconds (0 until End).
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Span           `json:"children,omitempty"`

	root      *Span // tree root; root.mu guards the whole tree
	mu        sync.Mutex
	wallStart time.Time
	ended     bool
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	s := &Span{Name: name, wallStart: time.Now()}
	s.root = s
	return s
}

// Child starts a nested span under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &Span{
		Name:      name,
		StartUS:   now.Sub(s.root.wallStart).Microseconds(),
		root:      s.root,
		wallStart: now,
	}
	s.root.mu.Lock()
	s.Children = append(s.Children, c)
	s.root.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Set-once: later Ends are
// no-ops, so cleanup paths can End defensively without stretching a span
// that already closed.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.wallStart).Microseconds()
	s.root.mu.Lock()
	if !s.ended {
		s.ended = true
		s.DurUS = d
	}
	s.root.mu.Unlock()
}

// SetAttr attaches a key/value annotation.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.root.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[k] = v
	s.root.mu.Unlock()
}

// Timing flattens the subtree into phase durations in milliseconds, keyed
// by dotted path ("run.execute"); same-named siblings accumulate. The
// span's own duration reports as "total". This is the decomposition a
// Response carries back to nocload.
func (s *Span) Timing() map[string]float64 {
	if s == nil {
		return nil
	}
	s.root.mu.Lock()
	defer s.root.mu.Unlock()
	out := map[string]float64{"total": float64(s.DurUS) / 1000}
	var walk func(sp *Span, prefix string)
	walk = func(sp *Span, prefix string) {
		for _, c := range sp.Children {
			key := c.Name
			if prefix != "" {
				key = prefix + "." + c.Name
			}
			out[key] += float64(c.DurUS) / 1000
			walk(c, key)
		}
	}
	walk(s, "")
	return out
}

// Clone deep-copies the span tree under the tree lock, safe to serialize
// while the original keeps growing.
func (s *Span) Clone() *Span {
	if s == nil {
		return nil
	}
	s.root.mu.Lock()
	defer s.root.mu.Unlock()
	return s.cloneLocked()
}

func (s *Span) cloneLocked() *Span {
	c := &Span{Name: s.Name, StartUS: s.StartUS, DurUS: s.DurUS}
	c.root = c
	if s.Attrs != nil {
		c.Attrs = make(map[string]string, len(s.Attrs))
		for k, v := range s.Attrs {
			c.Attrs[k] = v
		}
	}
	for _, ch := range s.Children {
		cc := ch.cloneLocked()
		cc.root = c.root
		c.Children = append(c.Children, cc)
	}
	return c
}

type spanCtxKey struct{}

// ContextWithSpan threads a span through a request context.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom extracts the span from a context; nil when none is attached,
// which downstream instrumentation treats as "spans off".
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SpanLog keeps the most recent completed root spans in a bounded ring —
// the backing store of a /spans endpoint.
type SpanLog struct {
	mu    sync.Mutex
	cap   int
	spans []*Span // oldest first
}

// NewSpanLog builds a log retaining up to capacity root spans (zero means
// 256).
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &SpanLog{cap: capacity}
}

// Add records a completed root span, evicting the oldest past capacity.
func (l *SpanLog) Add(s *Span) {
	if l == nil || s == nil {
		return
	}
	l.mu.Lock()
	l.spans = append(l.spans, s)
	if len(l.spans) > l.cap {
		l.spans = append(l.spans[:0], l.spans[len(l.spans)-l.cap:]...)
	}
	l.mu.Unlock()
}

// Snapshot returns deep clones of the retained spans, oldest first.
func (l *SpanLog) Snapshot() []*Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	live := append([]*Span(nil), l.spans...)
	l.mu.Unlock()
	out := make([]*Span, len(live))
	for i, s := range live {
		out[i] = s.Clone()
	}
	return out
}

// WriteJSON renders {"spans":[...]} of the retained spans.
func (l *SpanLog) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(struct {
		Spans []*Span `json:"spans"`
	}{l.Snapshot()})
}
