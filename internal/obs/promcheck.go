package obs

import (
	"fmt"
	"regexp"
	"strings"
)

// promSample matches one sample line of the text exposition format.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

// ValidatePrometheusText structurally checks a text exposition: every line
// must be a comment or a well-formed sample, and every sample's family
// must be declared by a preceding # TYPE comment (histogram _bucket/_sum/
// _count suffixes resolve to their family). It returns the sample count.
// The obs-smoke CI job runs /metrics payloads through this.
func ValidatePrometheusText(text string) (int, error) {
	declared := map[string]bool{}
	n := 0
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return 0, fmt.Errorf("obs: bad TYPE line: %q", line)
			}
			declared[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !promSample.MatchString(line) {
			return 0, fmt.Errorf("obs: malformed exposition line: %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suffix); ok && declared[cut] {
				base = cut
			}
		}
		if !declared[base] {
			return 0, fmt.Errorf("obs: sample %q has no TYPE declaration", name)
		}
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("obs: exposition has no samples")
	}
	return n, nil
}
