package obs

import (
	"strings"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	var hits int64 = 41
	r.RegisterCounter("cache_hits_total", "cache hits", nil, func() float64 { return float64(hits) })
	r.RegisterGauge("link_utilization", "mean link busy fraction",
		[]Label{L("router", "3")}, func() float64 { return 0.25 })
	r.RegisterGauge("link_utilization", "mean link busy fraction",
		[]Label{L("router", "4")}, func() float64 { return 0.5 })
	hits++
	out := string(r.Exposition())
	for _, want := range []string{
		"# HELP cache_hits_total cache hits",
		"# TYPE cache_hits_total counter",
		"cache_hits_total 42",
		"# TYPE link_utilization gauge",
		`link_utilization{router="3"} 0.25`,
		`link_utilization{router="4"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	r.RegisterHistogram("latency_cycles", "packet latency", nil,
		[]float64{1, 2, 4}, func() HistSnapshot {
			return HistSnapshot{Buckets: []uint64{3, 0, 2}, Overflow: 1, Sum: 21, Count: 6}
		})
	out := string(r.Exposition())
	for _, want := range []string{
		`latency_cycles_bucket{le="1"} 3`,
		`latency_cycles_bucket{le="2"} 3`,
		`latency_cycles_bucket{le="4"} 5`,
		`latency_cycles_bucket{le="+Inf"} 6`,
		"latency_cycles_sum 21",
		"latency_cycles_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("a_total", "a", nil, func() float64 { return 1 })
	r.RegisterGauge("b", "b with \"quotes\"", []Label{L("x", `v"1\n`)}, func() float64 { return -2.5 })
	r.RegisterHistogram("h", "h", nil, []float64{1, 10}, func() HistSnapshot {
		return HistSnapshot{Buckets: []uint64{1, 2}, Overflow: 0, Sum: 12, Count: 3}
	})
	if _, err := ValidatePrometheusText(string(r.Exposition())); err != nil {
		t.Fatal(err)
	}
}

func TestValidatePrometheusTextRejectsGarbage(t *testing.T) {
	for name, text := range map[string]string{
		"empty":          "",
		"undeclared":     "foo 1\n",
		"malformed":      "# TYPE foo gauge\nfoo{ 1\n",
		"bad TYPE":       "# TYPE foo\nfoo 1\n",
		"no sample line": "# TYPE foo gauge\n",
	} {
		if _, err := ValidatePrometheusText(text); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPushInstrumentsGateOnEnabled(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("pushed_total", "pushed")
	g := r.NewGauge("level", "level")
	c.Inc()
	g.Set(7)
	r.SetEnabled(false)
	c.Add(100)
	g.Set(100)
	if c.Value() != 1 {
		t.Errorf("disabled counter recorded: %d", c.Value())
	}
	if g.Value() != 7 {
		t.Errorf("disabled gauge recorded: %g", g.Value())
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 2 {
		t.Errorf("re-enabled counter = %d", c.Value())
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	r := NewRegistry()
	r.RegisterGauge("ok", "", nil, func() float64 { return 0 })
	for name, fn := range map[string]func(){
		"invalid name":     func() { r.RegisterGauge("bad name", "", nil, func() float64 { return 0 }) },
		"duplicate series": func() { r.RegisterGauge("ok", "", nil, func() float64 { return 0 }) },
		"kind mismatch":    func() { r.RegisterCounter("ok", "", []Label{L("a", "b")}, func() float64 { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
