package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Manifest records the complete provenance of one experiment run: what was
// asked for (config hash, experiment ids, scale, seeds, layouts), what the
// run produced (per-experiment result fingerprints), how the run-cache
// behaved, and how long it took. A manifest is written next to every
// cmd/experiments result file, so any artifact can be traced back to the
// exact recipe that produced it.
//
// Everything except WallTimeSec and the disk-tier counters (which depend
// on what earlier processes cached) is deterministic: two identical runs
// of a deterministic simulator produce byte-identical manifests modulo
// those fields — a property pinned by TestManifestDeterministic. Canonical
// renders that identity form (nondeterministic fields zeroed).
type Manifest struct {
	// Tool names the producing command ("experiments", "noxsim", ...).
	Tool string `json:"tool"`
	// ConfigHash addresses the full input recipe (experiment ids + every
	// scale parameter + seeds); see experiments.ConfigHash.
	ConfigHash string `json:"config_hash"`
	// Scale is the scale preset name ("quick", "full").
	Scale string `json:"scale,omitempty"`
	// Experiments lists the experiment ids that ran, in run order.
	Experiments []string `json:"experiments,omitempty"`
	// Seeds lists the RNG seeds the run used.
	Seeds []int64 `json:"seeds,omitempty"`
	// Layout names the network layout for single-run tools.
	Layout string `json:"layout,omitempty"`
	// Fingerprints maps experiment id -> result fingerprint (a hash of the
	// experiment's full metric map; see experiments.Report.Fingerprint).
	Fingerprints map[string]string `json:"fingerprints,omitempty"`
	// RuncacheHits/RuncacheMisses are the process-global run-cache counters
	// at the end of the run. Deterministic: the same recipe produces the
	// same probe sequence, hence the same hit pattern.
	RuncacheHits   int64 `json:"runcache_hits"`
	RuncacheMisses int64 `json:"runcache_misses"`
	// DiskHits/DiskMisses/DiskEvictions are the persistent disk-tier
	// counters. Like wall time they depend on what earlier processes left
	// in the cache directory, so Canonical zeroes them.
	DiskHits      int64 `json:"runcache_disk_hits,omitempty"`
	DiskMisses    int64 `json:"runcache_disk_misses,omitempty"`
	DiskEvictions int64 `json:"runcache_disk_evictions,omitempty"`
	// WallTimeSec is elapsed wall time, nondeterministic by nature.
	WallTimeSec float64 `json:"wall_time_sec"`
	// Spans is the run's phase span tree (diagnostics). Span durations are
	// wall clock, so Canonical excludes spans entirely: manifest identity
	// never depends on timing.
	Spans []*Span `json:"spans,omitempty"`
}

// Canonical renders the deterministic identity form: indented JSON with
// wall time zeroed. Two runs of the same recipe produce byte-identical
// canonical forms.
func (m *Manifest) Canonical() []byte {
	c := *m
	c.WallTimeSec = 0
	c.DiskHits, c.DiskMisses, c.DiskEvictions = 0, 0, 0
	c.Spans = nil
	// Deep-copy and sort the slices JSON would otherwise render in caller
	// order; run order is part of the recipe, so Experiments stays as-is,
	// but Seeds are a set.
	c.Seeds = append([]int64(nil), m.Seeds...)
	sort.Slice(c.Seeds, func(i, j int) bool { return c.Seeds[i] < c.Seeds[j] })
	data, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		// Manifest contains only marshalable fields; reaching this is a
		// programming error.
		panic(fmt.Sprintf("obs: manifest marshal: %v", err))
	}
	return append(data, '\n')
}

// Hash returns a 64-bit FNV-1a hash of the canonical form, usable as a
// compact run identity.
func (m *Manifest) Hash() string {
	return fmt.Sprintf("%016x", HashBytes(m.Canonical()))
}

// WriteFile writes the manifest (full form, including wall time) to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: manifest marshal: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest parses a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: bad manifest %s: %w", path, err)
	}
	return &m, nil
}

// HashBytes is 64-bit FNV-1a over a byte slice — the registry-independent
// content hash used for config hashes and result fingerprints.
func HashBytes(data []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// HashStrings folds a sequence of strings (with separators, so ["ab","c"]
// and ["a","bc"] differ) into a 64-bit content hash.
func HashStrings(parts ...string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, p := range parts {
		for _, b := range []byte(p) {
			h ^= uint64(b)
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	return h
}
