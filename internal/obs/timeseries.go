package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TimeSeries is a cycle-indexed table of sampled metrics: one row per
// sample window, one column per series. The samplers (internal/noc) append
// a row every stride cycles; the exporters feed heat-map animation and the
// /timeseries introspection endpoint.
type TimeSeries struct {
	Columns []string
	Cycles  []int64
	Rows    [][]float64
}

// NewTimeSeries creates a series with the given column names.
func NewTimeSeries(columns ...string) *TimeSeries {
	return &TimeSeries{Columns: columns}
}

// Append adds one sample row. The row is copied; len(row) must equal the
// column count. Cycles must be non-decreasing: a decreasing cycle panics
// (it would corrupt the window index), and a sample landing exactly on the
// previous sample's cycle — a window edge — deterministically replaces
// that row rather than producing two rows for one window.
func (ts *TimeSeries) Append(cycle int64, row []float64) {
	if len(row) != len(ts.Columns) {
		panic(fmt.Sprintf("obs: timeseries row has %d values for %d columns", len(row), len(ts.Columns)))
	}
	if n := len(ts.Cycles); n > 0 {
		switch last := ts.Cycles[n-1]; {
		case cycle < last:
			panic(fmt.Sprintf("obs: timeseries cycle %d appended after %d", cycle, last))
		case cycle == last:
			ts.Rows[n-1] = append(ts.Rows[n-1][:0], row...)
			return
		}
	}
	ts.Cycles = append(ts.Cycles, cycle)
	ts.Rows = append(ts.Rows, append([]float64(nil), row...))
}

// WindowAt returns the index of the sample window containing cycle under
// the half-open convention (prev, cur]: window i spans (Cycles[i-1],
// Cycles[i]], and window 0 everything up to and including Cycles[0]. A
// cycle landing exactly on a window edge therefore always belongs to the
// window it closes, never the one it opens. Returns -1 for cycles past the
// last sample.
func (ts *TimeSeries) WindowAt(cycle int64) int {
	i := sort.Search(len(ts.Cycles), func(i int) bool { return ts.Cycles[i] >= cycle })
	if i == len(ts.Cycles) {
		return -1
	}
	return i
}

// Len returns the number of sample rows.
func (ts *TimeSeries) Len() int { return len(ts.Rows) }

// Clone returns a deep copy, safe to hand to another goroutine while the
// sampler keeps appending to the original.
func (ts *TimeSeries) Clone() *TimeSeries {
	out := &TimeSeries{
		Columns: append([]string(nil), ts.Columns...),
		Cycles:  append([]int64(nil), ts.Cycles...),
		Rows:    make([][]float64, len(ts.Rows)),
	}
	for i, r := range ts.Rows {
		out.Rows[i] = append([]float64(nil), r...)
	}
	return out
}

// timeSeriesJSON is the stable wire form of a TimeSeries.
type timeSeriesJSON struct {
	Columns []string    `json:"columns"`
	Cycles  []int64     `json:"cycles"`
	Rows    [][]float64 `json:"rows"`
}

// WriteJSON renders {"columns":[...],"cycles":[...],"rows":[[...]]}.
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(timeSeriesJSON{
		Columns: ts.Columns,
		Cycles:  ts.Cycles,
		Rows:    ts.Rows,
	})
}

// ReadTimeSeriesJSON parses the WriteJSON form.
func ReadTimeSeriesJSON(r io.Reader) (*TimeSeries, error) {
	var raw timeSeriesJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("obs: bad timeseries JSON: %w", err)
	}
	ts := &TimeSeries{Columns: raw.Columns, Cycles: raw.Cycles, Rows: raw.Rows}
	for i, row := range ts.Rows {
		if len(row) != len(ts.Columns) {
			return nil, fmt.Errorf("obs: timeseries row %d has %d values for %d columns", i, len(row), len(ts.Columns))
		}
	}
	if len(ts.Cycles) != len(ts.Rows) {
		return nil, fmt.Errorf("obs: timeseries has %d cycles for %d rows", len(ts.Cycles), len(ts.Rows))
	}
	return ts, nil
}

// WriteCSV renders the table with a "cycle" first column and one header
// row.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"cycle"}, ts.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i, row := range ts.Rows {
		rec[0] = fmt.Sprintf("%d", ts.Cycles[i])
		for j, v := range row {
			rec[j+1] = fmt.Sprintf("%g", v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
