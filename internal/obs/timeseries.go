package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// TimeSeries is a cycle-indexed table of sampled metrics: one row per
// sample window, one column per series. The samplers (internal/noc) append
// a row every stride cycles; the exporters feed heat-map animation and the
// /timeseries introspection endpoint.
type TimeSeries struct {
	Columns []string
	Cycles  []int64
	Rows    [][]float64
}

// NewTimeSeries creates a series with the given column names.
func NewTimeSeries(columns ...string) *TimeSeries {
	return &TimeSeries{Columns: columns}
}

// Append adds one sample row. The row is copied; len(row) must equal the
// column count.
func (ts *TimeSeries) Append(cycle int64, row []float64) {
	if len(row) != len(ts.Columns) {
		panic(fmt.Sprintf("obs: timeseries row has %d values for %d columns", len(row), len(ts.Columns)))
	}
	ts.Cycles = append(ts.Cycles, cycle)
	ts.Rows = append(ts.Rows, append([]float64(nil), row...))
}

// Len returns the number of sample rows.
func (ts *TimeSeries) Len() int { return len(ts.Rows) }

// Clone returns a deep copy, safe to hand to another goroutine while the
// sampler keeps appending to the original.
func (ts *TimeSeries) Clone() *TimeSeries {
	out := &TimeSeries{
		Columns: append([]string(nil), ts.Columns...),
		Cycles:  append([]int64(nil), ts.Cycles...),
		Rows:    make([][]float64, len(ts.Rows)),
	}
	for i, r := range ts.Rows {
		out.Rows[i] = append([]float64(nil), r...)
	}
	return out
}

// timeSeriesJSON is the stable wire form of a TimeSeries.
type timeSeriesJSON struct {
	Columns []string    `json:"columns"`
	Cycles  []int64     `json:"cycles"`
	Rows    [][]float64 `json:"rows"`
}

// WriteJSON renders {"columns":[...],"cycles":[...],"rows":[[...]]}.
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(timeSeriesJSON{
		Columns: ts.Columns,
		Cycles:  ts.Cycles,
		Rows:    ts.Rows,
	})
}

// ReadTimeSeriesJSON parses the WriteJSON form.
func ReadTimeSeriesJSON(r io.Reader) (*TimeSeries, error) {
	var raw timeSeriesJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("obs: bad timeseries JSON: %w", err)
	}
	ts := &TimeSeries{Columns: raw.Columns, Cycles: raw.Cycles, Rows: raw.Rows}
	for i, row := range ts.Rows {
		if len(row) != len(ts.Columns) {
			return nil, fmt.Errorf("obs: timeseries row %d has %d values for %d columns", i, len(row), len(ts.Columns))
		}
	}
	if len(ts.Cycles) != len(ts.Rows) {
		return nil, fmt.Errorf("obs: timeseries has %d cycles for %d rows", len(ts.Cycles), len(ts.Rows))
	}
	return ts, nil
}

// WriteCSV renders the table with a "cycle" first column and one header
// row.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"cycle"}, ts.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i, row := range ts.Rows {
		rec[0] = fmt.Sprintf("%d", ts.Cycles[i])
		for j, v := range row {
			rec[j+1] = fmt.Sprintf("%g", v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
