// Package obs is the simulator's unified observability layer: a typed
// metrics registry with Prometheus text exposition, cycle-windowed time
// series for heat-map animation, a Chrome trace-event (Perfetto) encoder,
// an opt-in HTTP introspection server and the run manifest written next to
// experiment results.
//
// The registry is pull-based: producers register closures that read
// counters they already maintain (noc router activity, runcache hit/miss,
// shard-pool balance), so registration adds zero work to simulation hot
// paths — cost is only paid when an exposition is actually rendered. The
// few push-style instruments (Counter, Gauge) gate their writes on the
// registry's enabled flag, one atomic load when disabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family for the exposition format.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one key=value dimension of a series.
type Label struct{ Key, Value string }

// L is shorthand for building a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// HistSnapshot is one histogram observation set: Buckets[i] counts samples
// <= Bounds[i] of the registered family (non-cumulative, raw per-bucket
// counts); samples above the last bound are counted in Overflow.
type HistSnapshot struct {
	Buckets  []uint64
	Overflow uint64
	Sum      float64
	Count    uint64
}

// series is one labeled instance of a family.
type series struct {
	labels []Label
	read   func() float64
	hist   func() HistSnapshot
}

// family groups all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histogram bucket upper bounds
	series []series
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. Registration methods panic on invalid names or duplicate
// (name, labels) series — both are programmer errors at wiring time.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
	enabled  atomic.Bool
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{byName: map[string]*family{}}
	r.enabled.Store(true)
	return r
}

// SetEnabled toggles push-style instruments (Counter.Add, Gauge.Set)
// created from this registry. Pull-based closures are unaffected: they run
// only during exposition.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether push-style recording is active.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// validName matches the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// key renders a canonical series identity for duplicate detection.
func seriesKey(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x00" + l.Value
	}
	return strings.Join(parts, "\x01")
}

// register adds one series, creating the family on first use.
func (r *Registry) register(name, help string, kind Kind, bounds []float64, labels []Label, read func() float64, hist func() HistSnapshot) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: metric %s has invalid label key %q", name, l.Key))
		}
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, kind, f.kind))
	}
	id := seriesKey(sorted)
	for _, s := range f.series {
		if seriesKey(s.labels) == id {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, id))
		}
	}
	f.series = append(f.series, series{labels: sorted, read: read, hist: hist})
}

// RegisterCounter registers a monotonically non-decreasing value read by fn
// at exposition time.
func (r *Registry) RegisterCounter(name, help string, labels []Label, fn func() float64) {
	r.register(name, help, KindCounter, nil, labels, fn, nil)
}

// RegisterGauge registers a point-in-time value read by fn at exposition
// time.
func (r *Registry) RegisterGauge(name, help string, labels []Label, fn func() float64) {
	r.register(name, help, KindGauge, nil, labels, fn, nil)
}

// RegisterHistogram registers a histogram family with the given bucket
// upper bounds (ascending). fn returns the raw per-bucket counts at
// exposition time; the exposition renders the cumulative Prometheus form
// with a terminal +Inf bucket.
func (r *Registry) RegisterHistogram(name, help string, labels []Label, bounds []float64, fn func() HistSnapshot) {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %s has no buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
		}
	}
	r.register(name, help, KindHistogram, bounds, labels, nil, fn)
}

// Counter is a push-style monotonic counter for paths without an existing
// counter to scrape. Add is gated on the owning registry's enabled flag.
type Counter struct {
	v   atomic.Int64
	reg *Registry
}

// NewCounter creates and registers a push-style counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{reg: r}
	r.RegisterCounter(name, help, labels, func() float64 { return float64(c.v.Load()) })
	return c
}

// Add increments the counter by n (no-op when the registry is disabled).
func (c *Counter) Add(n int64) {
	if c.reg.enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a push-style point-in-time value.
type Gauge struct {
	bits atomic.Uint64
	reg  *Registry
}

// NewGauge creates and registers a push-style gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{reg: r}
	r.RegisterGauge(name, help, labels, g.Value)
	return g
}

// Set stores v (no-op when the registry is disabled).
func (g *Gauge) Set(v float64) {
	if g.reg.enabled.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// renderLabels renders {k="v",...} (empty string for no labels), with extra
// appended after the series labels.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, escapeLabel(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a sample value in the exposition format.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv(v)
}

// strconv formats without the exponent forms %g would pick for integers.
func strconv(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families appear in registration order; series in
// their registration order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if f.kind == KindHistogram {
				if err := writeHistogram(w, f, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), formatValue(s.read())); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, f *family, s series) error {
	snap := s.hist()
	var cum uint64
	for i, bound := range f.bounds {
		if i < len(snap.Buckets) {
			cum += snap.Buckets[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			renderLabels(s.labels, L("le", formatValue(bound))), cum); err != nil {
			return err
		}
	}
	cum += snap.Overflow
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
		renderLabels(s.labels, L("le", "+Inf")), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(s.labels), formatValue(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels), snap.Count)
	return err
}

// Exposition renders the registry to a byte slice.
func (r *Registry) Exposition() []byte {
	var b strings.Builder
	_ = r.WritePrometheus(&b) // strings.Builder cannot fail
	return []byte(b.String())
}
