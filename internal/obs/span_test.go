package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanTreeAndTiming(t *testing.T) {
	root := NewSpan("request")
	q := root.Child("queue")
	q.End()
	run := root.Child("run")
	run.SetAttr("layout", "Diagonal+BL")
	ck := run.Child("cache.disk")
	ck.End()
	ex := run.Child("execute")
	ex.End()
	run.End()
	root.End()

	timing := root.Timing()
	for _, key := range []string{"total", "queue", "run", "run.cache.disk", "run.execute"} {
		if _, ok := timing[key]; !ok {
			t.Errorf("timing missing %q: %v", key, timing)
		}
	}
	if len(root.Children) != 2 || len(run.Children) != 2 {
		t.Fatalf("tree shape wrong: %d/%d children", len(root.Children), len(run.Children))
	}
	if run.Attrs["layout"] != "Diagonal+BL" {
		t.Errorf("attr lost: %v", run.Attrs)
	}

	c := root.Clone()
	if c == root || c.Children[1] == run {
		t.Fatal("clone aliases original")
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"cache.disk"`) {
		t.Errorf("serialized span missing child: %s", data)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	c := s.Child("x") // all no-ops; must not panic
	c.SetAttr("k", "v")
	c.End()
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	if got := s.Timing(); got != nil {
		t.Fatalf("nil span timing = %v", got)
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if SpanFrom(ctx) != nil {
		t.Fatal("nil span attached to context")
	}
}

func TestSpanContext(t *testing.T) {
	root := NewSpan("request")
	ctx := ContextWithSpan(context.Background(), root)
	got := SpanFrom(ctx)
	if got != root {
		t.Fatalf("SpanFrom = %v, want root", got)
	}
	if SpanFrom(context.Background()) != nil {
		t.Fatal("empty context returned a span")
	}
}

func TestSpanLogBoundedAndJSON(t *testing.T) {
	l := NewSpanLog(2)
	for _, name := range []string{"a", "b", "c"} {
		s := NewSpan(name)
		s.End()
		l.Add(s)
	}
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].Name != "b" || snap[1].Name != "c" {
		t.Fatalf("log kept %v", snap)
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []*Span `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Spans) != 2 {
		t.Fatalf("JSON carries %d spans, want 2", len(doc.Spans))
	}
}

func TestTimeSeriesWindowEdgeDeterministic(t *testing.T) {
	ts := NewTimeSeries("v")
	ts.Append(100, []float64{1})
	ts.Append(200, []float64{2})
	// A sample landing exactly on the last window edge replaces that row —
	// one row per window, deterministically — instead of duplicating the
	// edge cycle.
	ts.Append(200, []float64{3})
	if ts.Len() != 2 {
		t.Fatalf("len = %d, want 2", ts.Len())
	}
	if ts.Rows[1][0] != 3 {
		t.Fatalf("edge sample not replaced: %v", ts.Rows)
	}

	// Half-open windows (prev, cur]: the edge cycle belongs to the window
	// it closes, never the one it opens.
	for _, tc := range []struct {
		cycle int64
		want  int
	}{{50, 0}, {100, 0}, {101, 1}, {200, 1}, {201, -1}} {
		if got := ts.WindowAt(tc.cycle); got != tc.want {
			t.Errorf("WindowAt(%d) = %d, want %d", tc.cycle, got, tc.want)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("decreasing cycle did not panic")
		}
	}()
	ts.Append(150, []float64{4})
}

func TestManifestCanonicalExcludesSpans(t *testing.T) {
	m := Manifest{Tool: "experiments", ConfigHash: "abc", RuncacheHits: 3}
	base := m.Canonical()
	s := NewSpan("run")
	s.Child("fig8").End()
	s.End()
	m.Spans = []*Span{s}
	m.WallTimeSec = 12.5
	withSpans := m.Canonical()
	if !bytes.Equal(base, withSpans) {
		t.Fatalf("spans leaked into canonical form:\n%s\nvs\n%s", base, withSpans)
	}
	if m.Hash() != (&Manifest{Tool: "experiments", ConfigHash: "abc", RuncacheHits: 3}).Hash() {
		t.Fatal("span-carrying manifest hash diverged")
	}
	// The full (non-canonical) file form still carries the spans.
	full, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(full), `"spans"`) {
		t.Errorf("full manifest dropped spans: %s", full)
	}
}
