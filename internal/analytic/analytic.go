// Package analytic provides a closed-form latency model for the mesh
// networks in this repository, used to cross-validate the cycle-accurate
// simulator: zero-load latency from the pipeline geometry, and a low-load
// contention estimate from per-channel M/D/1 waiting times under
// deterministic X-Y routing. The simulator and the model are developed
// independently, so agreement at low load is strong evidence against
// systematic timing bugs (and the model doubles as a quick what-if tool
// that runs in microseconds instead of seconds).
package analytic

import (
	"heteronoc/internal/core"
	"heteronoc/internal/topology"
)

// HopCycles is the simulator's per-hop pipeline cost: two router stages
// plus one link stage.
const HopCycles = 3

// MeshModel is the analytical view of one layout under uniform random
// traffic with X-Y routing.
type MeshModel struct {
	Layout core.Layout
	// DataFlits is the packet length in flits.
	DataFlits int

	mesh *topology.Mesh
	// chanLoad[r][p] is the expected flits/cycle crossing output port p of
	// router r per unit injection rate (packets/node/cycle).
	chanLoad map[[2]int]float64
	avgHops  float64
}

// NewMeshModel precomputes per-channel loads by walking every (src, dst)
// pair's X-Y path once.
func NewMeshModel(l core.Layout, dataFlits int) *MeshModel {
	m := &MeshModel{Layout: l, DataFlits: dataFlits, mesh: l.Mesh, chanLoad: map[[2]int]float64{}}
	n := l.Mesh.NumTerminals()
	pairs := 0
	totalHops := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			pairs++
			totalHops += m.walk(src, dst)
		}
	}
	// Normalize: each source emits `rate` packets/cycle spread uniformly
	// over n-1 destinations; walk() accumulated one unit per pair.
	for k := range m.chanLoad {
		m.chanLoad[k] *= float64(dataFlits) / float64(n-1)
	}
	m.avgHops = float64(totalHops) / float64(pairs)
	return m
}

// walk accumulates one unit of load along the X-Y path and returns its hop
// count.
func (m *MeshModel) walk(src, dst int) int {
	r, _ := m.mesh.TerminalRouter(src)
	dstR, _ := m.mesh.TerminalRouter(dst)
	hops := 0
	for r != dstR {
		cx, cy := m.mesh.Coord(r)
		dx, dy := m.mesh.Coord(dstR)
		var port int
		switch {
		case cx < dx:
			port = topology.PortEast
		case cx > dx:
			port = topology.PortWest
		case cy < dy:
			port = topology.PortSouth
		default:
			port = topology.PortNorth
		}
		m.chanLoad[[2]int{r, port}]++
		link, _ := m.mesh.Neighbor(r, port)
		r = link.Router
		hops++
	}
	return hops
}

// AvgHops returns the uniform-random mean hop count (router-to-router).
func (m *MeshModel) AvgHops() float64 { return m.avgHops }

// MeanHops is the closed-form uniform-random mean hop count on a w x h
// mesh (or torus if wrap), over ordered src != dst pairs — the same
// quantity MeshModel.AvgHops measures by walking every pair, but in O(1),
// for any N x M including non-square. Per dimension, the mean distance of
// two independent uniform coordinates is (w^2-1)/(3w) on a line and w/4
// (even w) or (w^2-1)/(4w) (odd w) on a ring; summing dimensions counts
// all n^2 ordered pairs, so rescale by n/(n-1) to exclude the n
// zero-distance self pairs.
func MeanHops(w, h int, wrap bool) float64 {
	dim := func(k int) float64 {
		if wrap {
			if k%2 == 0 {
				return float64(k) / 4
			}
			return float64(k*k-1) / float64(4*k)
		}
		return float64(k*k-1) / float64(3*k)
	}
	n := float64(w * h)
	return (dim(w) + dim(h)) * n / (n - 1)
}

// slots returns the flit bandwidth of a channel under the layout.
func (m *MeshModel) slots(r, p int) float64 {
	if !m.Layout.IsHetero() || !m.Layout.LinkRedist {
		return 1
	}
	wide := m.Layout.Class[r] == core.ClassBig
	if link, ok := m.mesh.Neighbor(r, p); ok {
		wide = wide || m.Layout.Class[link.Router] == core.ClassBig
	}
	if wide {
		return 2
	}
	return 1
}

// MaxChannelUtil returns the utilization of the most-loaded channel at
// injection rate lambda — the analytical saturation bound is the rate
// where this reaches 1.
func (m *MeshModel) MaxChannelUtil(lambda float64) float64 {
	max := 0.0
	for k, load := range m.chanLoad {
		u := lambda * load / m.slots(k[0], k[1])
		if u > max {
			max = u
		}
	}
	return max
}

// SaturationRate returns the injection rate (packets/node/cycle) at which
// the hottest channel saturates.
func (m *MeshModel) SaturationRate() float64 {
	u := m.MaxChannelUtil(1)
	if u == 0 {
		return 0
	}
	return 1 / u
}

// ZeroLoadCycles is the contention-free packet latency: injection
// alignment, NI hop, per-hop pipeline, and flit serialization (the
// narrowest channel is assumed narrow — conservative for mixed paths).
func (m *MeshModel) ZeroLoadCycles() float64 {
	return 1 + 1 + HopCycles*(m.avgHops+1) + float64(m.DataFlits-1)
}

// LatencyCycles estimates average packet latency at rate lambda: zero-load
// plus per-hop M/D/1 queueing, E[W] = rho * S / (2 (1 - rho)), with the
// service time S of one packet on the channel. Valid well below
// saturation; it diverges (like the real network) at the bound.
func (m *MeshModel) LatencyCycles(lambda float64) float64 {
	if len(m.chanLoad) == 0 {
		return m.ZeroLoadCycles()
	}
	// Average waiting across the channels weighted by traversal frequency:
	// each packet crosses avgHops channels, so accumulate load-weighted
	// waiting over total traffic.
	var totalWait, totalTraffic float64
	for k, load := range m.chanLoad {
		s := m.slots(k[0], k[1])
		rho := lambda * load / s
		if rho >= 1 {
			rho = 0.999 // clamp: past saturation the estimate is meaningless
		}
		service := float64(m.DataFlits) / s
		wait := rho * service / (2 * (1 - rho))
		totalWait += wait * load // load ∝ traversal frequency
		totalTraffic += load
	}
	perHopWait := totalWait / totalTraffic
	return m.ZeroLoadCycles() + perHopWait*m.avgHops
}
