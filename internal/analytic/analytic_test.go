package analytic

import (
	"math"
	"testing"

	"heteronoc/internal/core"
	"heteronoc/internal/topology"
	"heteronoc/internal/traffic"
)

func TestAvgHopsMatchesTheory(t *testing.T) {
	m := NewMeshModel(core.NewBaseline(8, 8), 6)
	// UR mean Manhattan distance on an 8x8 mesh is 2*(n²-1)/(3n) = 5.25
	// over all pairs including self; excluding self-pairs it scales by
	// n²/(n²-1): 5.25 * 64/63 = 5.3333.
	want := 2.0 * 63 / 24 * 64 / 63
	if math.Abs(m.AvgHops()-want) > 0.01 {
		t.Errorf("avg hops %.3f, want %.3f", m.AvgHops(), want)
	}
}

func TestMeanHopsClosedForm(t *testing.T) {
	// The closed form must agree with MeshModel's exhaustive pair walk on
	// meshes of any shape, square or not.
	for _, tc := range []struct{ w, h int }{{2, 2}, {4, 8}, {8, 4}, {8, 8}, {16, 16}, {3, 5}} {
		model := NewMeshModel(core.NewBaseline(tc.w, tc.h), 6)
		want := MeanHops(tc.w, tc.h, false)
		if math.Abs(model.AvgHops()-want) > 1e-9 {
			t.Errorf("%dx%d mesh: walked %.6f, closed form %.6f", tc.w, tc.h, model.AvgHops(), want)
		}
	}
	// And with a brute-force HopsXY average on the torus, where wraparound
	// changes the per-dimension mean (w/4 even, (w^2-1)/4w odd).
	for _, tc := range []struct{ w, h int }{{4, 4}, {4, 8}, {5, 3}, {8, 8}} {
		tor := topology.NewTorus(tc.w, tc.h)
		n := tc.w * tc.h
		sum, pairs := 0, 0
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				sum += tor.HopsXY(s, d)
				pairs++
			}
		}
		got := float64(sum) / float64(pairs)
		want := MeanHops(tc.w, tc.h, true)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%dx%d torus: brute force %.6f, closed form %.6f", tc.w, tc.h, got, want)
		}
	}
}

func TestSaturationBoundBaseline(t *testing.T) {
	m := NewMeshModel(core.NewBaseline(8, 8), 6)
	// The hottest X-Y channels on an 8x8 mesh under UR carry 2*lambda
	// packets/cycle (center column links): saturation at 1/(2*6) = 0.0833.
	got := m.SaturationRate()
	if math.Abs(got-1.0/12) > 0.002 {
		t.Errorf("saturation rate %.4f, want ~0.0833", got)
	}
}

func TestHeteroAnalyticCapacityNotBelowBaseline(t *testing.T) {
	// The analytic model independently reproduces a key finding of the
	// simulation (EXPERIMENTS.md): widening the hot center moves the
	// bottleneck to the narrow links just outside it, so pure channel
	// capacity stays roughly par — HeteroNoC's wins come from latency and
	// allocation, not raw bisection capacity.
	base := NewMeshModel(core.NewBaseline(8, 8), 6)
	het := NewMeshModel(core.NewLayout(core.PlacementCenter, 8, 8, true), 6)
	if het.SaturationRate() < base.SaturationRate()-1e-9 {
		t.Errorf("hetero analytic capacity %.4f below baseline %.4f",
			het.SaturationRate(), base.SaturationRate())
	}
	// But the center channels themselves must be far less utilized.
	lam := base.SaturationRate() * 0.9
	if het.MaxChannelUtil(lam) > base.MaxChannelUtil(lam)+1e-9 {
		t.Errorf("hetero max channel util %.3f above baseline %.3f",
			het.MaxChannelUtil(lam), base.MaxChannelUtil(lam))
	}
}

func TestModelMatchesSimulatorAtLowLoad(t *testing.T) {
	// The analytical latency must track the simulator within ~15% at low
	// and moderate loads — a cross-validation of two independent
	// implementations of the same geometry.
	l := core.NewBaseline(8, 8)
	model := NewMeshModel(l, 6)
	for _, rate := range []float64{0.008, 0.02, 0.032} {
		net, err := l.Network()
		if err != nil {
			t.Fatal(err)
		}
		res, err := traffic.Run(net, traffic.RunConfig{
			Pattern:        traffic.UniformRandom{N: 64},
			Process:        traffic.Bernoulli{P: rate},
			DataFlits:      6,
			WarmupPackets:  300,
			MeasurePackets: 6000,
			Seed:           13,
		})
		if err != nil {
			t.Fatal(err)
		}
		pred := model.LatencyCycles(rate)
		ratio := pred / res.AvgLatency
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("rate %.3f: model %.1f vs simulator %.1f cycles (ratio %.2f)",
				rate, pred, res.AvgLatency, ratio)
		}
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	m := NewMeshModel(core.NewBaseline(8, 8), 6)
	prev := 0.0
	for _, rate := range []float64{0.005, 0.02, 0.04, 0.06, 0.08} {
		lat := m.LatencyCycles(rate)
		if lat <= prev {
			t.Fatalf("latency not monotone at rate %.3f", rate)
		}
		prev = lat
	}
}

func TestZeroLoadConsistency(t *testing.T) {
	m := NewMeshModel(core.NewBaseline(8, 8), 6)
	if z := m.ZeroLoadCycles(); math.Abs(z-m.LatencyCycles(0)) > 1e-9 {
		t.Errorf("LatencyCycles(0)=%v != ZeroLoad %v", m.LatencyCycles(0), z)
	}
}
