// Package fault defines deterministic fault-injection plans for the NoC
// simulator: permanent (fail-stop) link and router failures and transient
// link faults that drop or corrupt flits for a bounded window. A Plan
// schedules events at exact cycles, so a seeded run that consumes it is
// exactly reproducible; the simulator applies due events at the start of
// each cycle before any flit moves.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"heteronoc/internal/topology"
)

// Kind classifies a fault event.
type Kind uint8

const (
	// LinkFail permanently fails both directions of a network link. Flits
	// on the wire are lost; the routers on each side refuse to allocate
	// the dead ports from then on.
	LinkFail Kind = iota
	// RouterFail permanently fails a router: every network link touching
	// it dies and its buffered flits are lost. The attached terminal can
	// no longer inject or eject.
	RouterFail
	// Transient opens a window of Duration cycles on one link direction
	// during which every flit crossing it is dropped (or corrupted and
	// then dropped by the checksum check when Corrupt is set). The link
	// itself stays up.
	Transient
)

func (k Kind) String() string {
	switch k {
	case LinkFail:
		return "link-fail"
	case RouterFail:
		return "router-fail"
	case Transient:
		return "transient"
	}
	return "?"
}

// Event is one scheduled fault.
type Event struct {
	// Cycle is when the fault strikes; it takes effect before any flit
	// moves in that cycle.
	Cycle int64
	Kind  Kind
	// Router and Port identify the failing link by its upstream side
	// (LinkFail, Transient) or the failing router (RouterFail, Port
	// ignored).
	Router int
	Port   int
	// Duration is the transient window length in cycles (Transient only).
	Duration int64
	// Corrupt makes a transient fault flip header bits instead of
	// dropping flits outright; the corruption is caught by the flit
	// checksum at the receiving router and the flit is dropped there.
	Corrupt bool
}

func (e Event) String() string {
	switch e.Kind {
	case RouterFail:
		return fmt.Sprintf("@%d router-fail r%d", e.Cycle, e.Router)
	case Transient:
		mode := "drop"
		if e.Corrupt {
			mode = "corrupt"
		}
		return fmt.Sprintf("@%d transient %s r%d.p%d for %d", e.Cycle, mode, e.Router, e.Port, e.Duration)
	}
	return fmt.Sprintf("@%d link-fail r%d.p%d", e.Cycle, e.Router, e.Port)
}

// Plan is an ordered fault schedule. The zero value is an empty plan;
// events may be added in any order and are applied in (cycle, insertion)
// order.
type Plan struct {
	events []Event
	sorted bool
}

// FailLink schedules a permanent link failure.
func (p *Plan) FailLink(cycle int64, router, port int) *Plan {
	return p.add(Event{Cycle: cycle, Kind: LinkFail, Router: router, Port: port})
}

// FailRouter schedules a permanent router failure.
func (p *Plan) FailRouter(cycle int64, router int) *Plan {
	return p.add(Event{Cycle: cycle, Kind: RouterFail, Router: router})
}

// AddTransient schedules a transient drop/corrupt window on one link
// direction.
func (p *Plan) AddTransient(cycle int64, router, port int, duration int64, corrupt bool) *Plan {
	return p.add(Event{Cycle: cycle, Kind: Transient, Router: router, Port: port, Duration: duration, Corrupt: corrupt})
}

func (p *Plan) add(e Event) *Plan {
	if e.Cycle < 1 {
		e.Cycle = 1
	}
	p.events = append(p.events, e)
	p.sorted = false
	return p
}

// Events returns the schedule sorted by cycle (stable for equal cycles).
func (p *Plan) Events() []Event {
	if !p.sorted {
		sort.SliceStable(p.events, func(i, j int) bool { return p.events[i].Cycle < p.events[j].Cycle })
		p.sorted = true
	}
	return p.events
}

// Len returns the number of scheduled events.
func (p *Plan) Len() int { return len(p.events) }

// Validate checks every event against a topology: link events must name a
// live network port, router events an in-range router.
func (p *Plan) Validate(t topology.Topology) error {
	for _, e := range p.events {
		if e.Router < 0 || e.Router >= t.NumRouters() {
			return fmt.Errorf("fault: event %v names router %d of %d", e, e.Router, t.NumRouters())
		}
		if e.Kind == RouterFail {
			continue
		}
		if e.Port < 0 || e.Port >= t.Radix(e.Router) {
			return fmt.Errorf("fault: event %v names port %d of radix %d", e, e.Port, t.Radix(e.Router))
		}
		if _, ok := t.Neighbor(e.Router, e.Port); !ok {
			return fmt.Errorf("fault: event %v targets a non-network port", e)
		}
		if e.Kind == Transient && e.Duration < 1 {
			return fmt.Errorf("fault: event %v has non-positive duration", e)
		}
	}
	return nil
}

// GenConfig parameterizes random plan generation.
type GenConfig struct {
	// Links is the number of distinct permanent link failures.
	Links int
	// Routers is the number of distinct permanent router failures.
	Routers int
	// Transients is the number of transient windows; roughly half are
	// corrupting, the rest drop flits silently.
	Transients int
	// TransientLen is the window length in cycles (default 32).
	TransientLen int64
	// MaxCycle bounds the strike cycles: events land uniformly in
	// [1, MaxCycle] (default 1000).
	MaxCycle int64
	// KeepConnected rejects permanent-failure sets that disconnect the
	// live-router graph, resampling up to a bounded number of times. The
	// final plan may still disconnect if no connected sample is found.
	KeepConnected bool
}

// Generate draws a random plan from a seeded source. Identical seeds and
// configurations produce identical plans.
func Generate(t topology.Topology, seed int64, cfg GenConfig) *Plan {
	rng := rand.New(rand.NewSource(seed))
	if cfg.MaxCycle < 1 {
		cfg.MaxCycle = 1000
	}
	if cfg.TransientLen < 1 {
		cfg.TransientLen = 32
	}
	links := allLinks(t)
	attempts := 1
	if cfg.KeepConnected {
		attempts = 64
	}
	var plan *Plan
	for try := 0; try < attempts; try++ {
		plan = &Plan{}
		ls := topology.NewLinkState(t)
		// Permanent link failures: distinct canonical links.
		perm := rng.Perm(len(links))
		n := cfg.Links
		if n > len(links) {
			n = len(links)
		}
		for i := 0; i < n; i++ {
			l := links[perm[i]]
			plan.FailLink(1+rng.Int63n(cfg.MaxCycle), l[0], l[1])
			ls.FailLink(l[0], l[1])
		}
		// Permanent router failures: distinct routers.
		rperm := rng.Perm(t.NumRouters())
		rn := cfg.Routers
		if rn > t.NumRouters() {
			rn = t.NumRouters()
		}
		for i := 0; i < rn; i++ {
			plan.FailRouter(1+rng.Int63n(cfg.MaxCycle), rperm[i])
			ls.FailRouter(rperm[i])
		}
		// Transient windows may hit any link, including already-sampled
		// ones (a transient on a link that later dies is legal).
		for i := 0; i < cfg.Transients; i++ {
			l := links[rng.Intn(len(links))]
			r, p := l[0], l[1]
			if rng.Intn(2) == 1 {
				// Hit the reverse direction half the time.
				if link, ok := t.Neighbor(r, p); ok {
					r, p = link.Router, link.Port
				}
			}
			plan.AddTransient(1+rng.Int63n(cfg.MaxCycle), r, p, cfg.TransientLen, rng.Intn(2) == 0)
		}
		if !cfg.KeepConnected || ls.Connected() {
			break
		}
	}
	return plan
}

// allLinks enumerates the network links of a topology in canonical
// (router, port) form — the direction with the smaller (router, port)
// tuple — in deterministic order.
func allLinks(t topology.Topology) [][2]int {
	var out [][2]int
	for r := 0; r < t.NumRouters(); r++ {
		for p := 0; p < t.Radix(r); p++ {
			link, ok := t.Neighbor(r, p)
			if !ok {
				continue
			}
			if link.Router > r || (link.Router == r && link.Port > p) {
				out = append(out, [2]int{r, p})
			}
		}
	}
	return out
}
