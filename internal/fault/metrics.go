package fault

import "heteronoc/internal/obs"

// RegisterMetrics registers the plan's composition in reg: one
// fault_plan_events gauge per fault kind plus the total. Plans are static
// once a run starts, so these read as constants; the live strike progress
// (events applied so far) is exposed by the consuming network as
// noc_fault_events_applied.
func (p *Plan) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.RegisterGauge("fault_plan_size", "scheduled fault events", labels,
		func() float64 { return float64(len(p.events)) })
	for _, k := range []Kind{LinkFail, RouterFail, Transient} {
		k := k
		kl := append(append([]obs.Label(nil), labels...), obs.L("kind", k.String()))
		reg.RegisterGauge("fault_plan_events", "scheduled fault events by kind", kl,
			func() float64 {
				n := 0
				for _, e := range p.events {
					if e.Kind == k {
						n++
					}
				}
				return float64(n)
			})
	}
}
