package fault

import (
	"reflect"
	"strings"
	"testing"

	"heteronoc/internal/topology"
)

func TestPlanOrderingAndClamping(t *testing.T) {
	p := (&Plan{}).
		FailLink(100, 1, topology.PortEast).
		FailRouter(10, 2).
		AddTransient(0, 3, topology.PortSouth, 8, true) // cycle clamps to 1
	ev := p.Events()
	if len(ev) != 3 {
		t.Fatalf("plan has %d events, want 3", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Cycle < ev[i-1].Cycle {
			t.Fatalf("events out of order: %v", ev)
		}
	}
	if ev[0].Cycle != 1 || ev[0].Kind != Transient {
		t.Errorf("pre-cycle-1 event not clamped to cycle 1: %v", ev[0])
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
}

func TestPlanOrderingIsStableForEqualCycles(t *testing.T) {
	p := &Plan{}
	for r := 0; r < 5; r++ {
		p.FailRouter(7, r)
	}
	for i, e := range p.Events() {
		if e.Router != i {
			t.Fatalf("equal-cycle events reordered: %v", p.Events())
		}
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cases := []struct {
		name string
		plan *Plan
	}{
		{"router out of range", (&Plan{}).FailRouter(1, 16)},
		{"negative router", (&Plan{}).FailRouter(1, -1)},
		{"port out of range", (&Plan{}).FailLink(1, 0, 99)},
		{"non-network port", (&Plan{}).FailLink(1, 0, topology.PortLocal)},
		{"edge port", (&Plan{}).FailLink(1, 0, topology.PortWest)},
		{"zero-duration transient", (&Plan{}).add(Event{Cycle: 1, Kind: Transient, Router: 0, Port: topology.PortEast})},
	}
	for _, c := range cases {
		if err := c.plan.Validate(m); err == nil {
			t.Errorf("%s: Validate accepted the plan", c.name)
		}
	}
	good := (&Plan{}).
		FailLink(1, 0, topology.PortEast).
		FailRouter(2, 15).
		AddTransient(3, 5, topology.PortNorth, 16, false)
	if err := good.Validate(m); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	m := topology.NewMesh(8, 8)
	cfg := GenConfig{Links: 6, Routers: 2, Transients: 4, MaxCycle: 500, KeepConnected: true}
	a := Generate(m, 31, cfg).Events()
	b := Generate(m, 31, cfg).Events()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
	c := Generate(m, 32, cfg).Events()
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
}

func TestGenerateDrawsDistinctLinks(t *testing.T) {
	m := topology.NewMesh(8, 8)
	p := Generate(m, 5, GenConfig{Links: 10, MaxCycle: 100})
	if err := p.Validate(m); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	seen := map[[2]int]bool{}
	links := 0
	for _, e := range p.Events() {
		if e.Kind != LinkFail {
			continue
		}
		links++
		if seen[[2]int{e.Router, e.Port}] {
			t.Errorf("duplicate link failure %v", e)
		}
		seen[[2]int{e.Router, e.Port}] = true
	}
	if links != 10 {
		t.Errorf("generated %d link failures, want 10", links)
	}
}

func TestGenerateKeepConnected(t *testing.T) {
	m := topology.NewMesh(8, 8)
	for seed := int64(0); seed < 20; seed++ {
		p := Generate(m, seed, GenConfig{Links: 8, Routers: 1, MaxCycle: 1, KeepConnected: true})
		ls := topology.NewLinkState(m)
		for _, e := range p.Events() {
			switch e.Kind {
			case LinkFail:
				ls.FailLink(e.Router, e.Port)
			case RouterFail:
				ls.FailRouter(e.Router)
			}
		}
		if !ls.Connected() {
			t.Errorf("seed %d: KeepConnected plan disconnects the mesh", seed)
		}
	}
}

func TestEventStrings(t *testing.T) {
	p := (&Plan{}).
		FailLink(4, 1, topology.PortEast).
		FailRouter(5, 2).
		AddTransient(6, 3, topology.PortSouth, 16, true).
		AddTransient(7, 3, topology.PortSouth, 16, false)
	ev := p.Events()
	for i, want := range []string{"link-fail", "router-fail", "corrupt", "drop"} {
		if got := ev[i].String(); !strings.Contains(got, want) {
			t.Errorf("event %d string %q missing %q", i, got, want)
		}
	}
}
