// Package power is an Orion-style analytical power model for the network
// routers, calibrated against the paper's Table 1 synthesis numbers
// (65 nm, Synopsys): 0.67 W baseline, 0.30 W small, 1.19 W big at the 50%
// activity point. Power is decomposed the way Figures 8(b)/11(d) report
// it — buffers, crossbar, arbiters+logic, links — with component scaling
// laws:
//
//	buffers  : leakage ∝ VCs·depth·buffer-width, dynamic ∝ buffer-width · read/write rate
//	crossbar : leakage ∝ datapath-width², dynamic ∝ width² · traversal rate
//	arbiters : leakage ∝ VCs, dynamic ∝ VCs · arbitration rate
//	links    : leakage ∝ link-width, dynamic ∝ link-width · flit rate
//
// Dynamic power scales with the operating clock. A per-class residual scale
// makes the three Table 1 totals exact at the calibration point while
// preserving the component ratios, so both the absolute table and the
// breakdown figures are reproducible.
package power

import (
	"heteronoc/internal/core"
	"heteronoc/internal/noc"
)

// Calibration constants: the baseline router's component split at the 50%
// activity point (fractions follow the paper's breakdown discussion:
// buffers ~35% of router power, crossbar the next largest share).
const (
	calActivity  = 0.5  // flits per port per cycle
	calPorts     = 5.0  // mesh router radix
	leakShare    = 0.30 // leakage fraction of each component at calibration
	fracBuffers  = 0.35
	fracXbar     = 0.30
	fracArbiters = 0.12
	fracLinks    = 0.23
)

// Breakdown is a router or network power decomposition in Watts.
type Breakdown struct {
	Buffers  float64
	Xbar     float64
	Arbiters float64
	Links    float64
}

// Total returns the summed power.
func (b Breakdown) Total() float64 { return b.Buffers + b.Xbar + b.Arbiters + b.Links }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Buffers += o.Buffers
	b.Xbar += o.Xbar
	b.Arbiters += o.Arbiters
	b.Links += o.Links
}

// RouterParams describes one router to the model.
type RouterParams struct {
	VCs      int
	Depth    int
	BufBits  int // buffer (flit) width
	XbarBits int // crossbar datapath width
	LinkBits int // outgoing link width
	// CalPowerW, when nonzero, rescales the model so that this router
	// reports exactly CalPowerW at the calibration point (Table 1 targets).
	CalPowerW  float64
	CalFreqGHz float64
}

// Model evaluates router power from simulated activity.
type Model struct {
	kBufLeak, kBufDyn   float64
	kXbarLeak, kXbarDyn float64
	kArbLeak, kArbDyn   float64
	kLinkLeak, kLinkDyn float64
}

// baselineParams is the Table 1 homogeneous router.
func baselineParams() RouterParams {
	s := core.Specs()[core.ClassBaseline]
	return RouterParams{
		VCs: s.VCs, Depth: s.BufDepth,
		BufBits: s.BufferBits, XbarBits: s.DatapathBits, LinkBits: s.DatapathBits,
		CalFreqGHz: s.FreqGHz,
	}
}

// NewModel builds the calibrated model.
func NewModel() *Model {
	m := &Model{}
	p := baselineParams()
	target := core.Specs()[core.ClassBaseline].PowerW
	f := p.CalFreqGHz
	// Calibration event rates (events per cycle) for a 5-port router at 50%
	// per-port activity.
	rRW := 2 * calActivity * calPorts // one read and one write per flit
	rX := calActivity * calPorts
	rA := 2 * calActivity * calPorts // ~two arbitration operations per flit
	rL := calActivity * calPorts

	m.kBufLeak = leakShare * fracBuffers * target / float64(p.VCs*p.Depth*p.BufBits)
	m.kBufDyn = (1 - leakShare) * fracBuffers * target / (float64(p.BufBits) * rRW * f)
	w2 := float64(p.XbarBits) * float64(p.XbarBits)
	m.kXbarLeak = leakShare * fracXbar * target / w2
	m.kXbarDyn = (1 - leakShare) * fracXbar * target / (w2 * rX * f)
	m.kArbLeak = leakShare * fracArbiters * target / float64(p.VCs)
	m.kArbDyn = (1 - leakShare) * fracArbiters * target / (float64(p.VCs) * rA * f)
	m.kLinkLeak = leakShare * fracLinks * target / float64(p.LinkBits)
	m.kLinkDyn = (1 - leakShare) * fracLinks * target / (float64(p.LinkBits) * rL * f)
	return m
}

// eval computes the unscaled breakdown for given event rates (per cycle)
// and clock.
func (m *Model) eval(p RouterParams, rRW, rX, rA, rL, fGHz float64) Breakdown {
	return Breakdown{
		Buffers:  m.kBufLeak*float64(p.VCs*p.Depth*p.BufBits) + m.kBufDyn*float64(p.BufBits)*rRW*fGHz,
		Xbar:     m.kXbarLeak*float64(p.XbarBits)*float64(p.XbarBits) + m.kXbarDyn*float64(p.XbarBits)*float64(p.XbarBits)*rX*fGHz,
		Arbiters: m.kArbLeak*float64(p.VCs) + m.kArbDyn*float64(p.VCs)*rA*fGHz,
		Links:    m.kLinkLeak*float64(p.LinkBits) + m.kLinkDyn*float64(p.LinkBits)*rL*fGHz,
	}
}

// calScale returns the residual factor that pins the router's calibration
// total to CalPowerW.
func (m *Model) calScale(p RouterParams) float64 {
	if p.CalPowerW == 0 {
		return 1
	}
	rRW := 2 * calActivity * calPorts
	rX := calActivity * calPorts
	rA := 2 * calActivity * calPorts
	rL := calActivity * calPorts
	raw := m.eval(p, rRW, rX, rA, rL, p.CalFreqGHz).Total()
	if raw == 0 {
		return 1
	}
	return p.CalPowerW / raw
}

// Router evaluates one router's power from simulated activity over the
// measurement window at the network clock fGHz.
func (m *Model) Router(p RouterParams, a noc.RouterActivity, fGHz float64) Breakdown {
	if a.Cycles == 0 {
		a.Cycles = 1
	}
	cyc := float64(a.Cycles)
	rRW := float64(a.BufReads+a.BufWrites) / cyc
	rX := float64(a.XbarFlits) / cyc
	rA := float64(a.ArbOps) / cyc
	rL := float64(a.LinkFlits) / cyc
	b := m.eval(p, rRW, rX, rA, rL, fGHz)
	s := m.calScale(p)
	b.Buffers *= s
	b.Xbar *= s
	b.Arbiters *= s
	b.Links *= s
	return b
}

// CalibrationPower returns the router's power at the Table 1 calibration
// point (50% activity, class frequency); used to verify the model against
// the published numbers.
func (m *Model) CalibrationPower(p RouterParams) float64 {
	rRW := 2 * calActivity * calPorts
	rX := calActivity * calPorts
	rA := 2 * calActivity * calPorts
	rL := calActivity * calPorts
	return m.eval(p, rRW, rX, rA, rL, p.CalFreqGHz).Total() * m.calScale(p)
}

// ParamsFor derives the model parameters of router r under a layout,
// honoring the +B/+BL width differences: buffer-only redistribution keeps
// the 192-bit datapath everywhere (and therefore no Table 1 rescaling,
// since those routers were never synthesized in the paper), while +BL uses
// the published small/big design points.
func ParamsFor(l core.Layout, r int) RouterParams {
	specs := core.Specs()
	s := specs[l.Class[r]]
	p := RouterParams{VCs: s.VCs, Depth: s.BufDepth, CalFreqGHz: s.FreqGHz}
	switch {
	case !l.IsHetero():
		p.BufBits, p.XbarBits, p.LinkBits = 192, 192, 192
		p.CalPowerW = s.PowerW
	case l.LinkRedist:
		p.BufBits = s.BufferBits
		p.XbarBits = s.DatapathBits
		p.LinkBits = s.DatapathBits
		p.CalPowerW = s.PowerW
	default: // +B: baseline widths, hetero VC counts
		p.BufBits, p.XbarBits, p.LinkBits = 192, 192, 192
	}
	return p
}

// Network sums router power over a layout given per-router activity at the
// layout's operating frequency.
func Network(m *Model, l core.Layout, act []noc.RouterActivity) Breakdown {
	var total Breakdown
	f := l.FreqGHz()
	for r := range act {
		total.Add(m.Router(ParamsFor(l, r), act[r], f))
	}
	return total
}
