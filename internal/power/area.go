package power

import "heteronoc/internal/core"

// Area returns the total router area of a layout in mm², summing the
// per-class synthesis numbers of Table 2 (core.ClassSpec.AreaMM2). It is
// the area objective of the design-space search: a placement with more
// big routers buys latency with silicon, and the search's area budget is
// expressed against this total.
func Area(l core.Layout) float64 {
	specs := core.Specs()
	nb, ns, nbig := l.Counts()
	return float64(nb)*specs[core.ClassBaseline].AreaMM2 +
		float64(ns)*specs[core.ClassSmall].AreaMM2 +
		float64(nbig)*specs[core.ClassBig].AreaMM2
}
