package power

import (
	"math"
	"testing"

	"heteronoc/internal/core"
	"heteronoc/internal/noc"
	"heteronoc/internal/traffic"
)

func TestCalibrationMatchesTable1(t *testing.T) {
	m := NewModel()
	specs := core.Specs()
	base := NewBaselineParamsForTest()
	if got := m.CalibrationPower(base); math.Abs(got-0.67) > 1e-9 {
		t.Errorf("baseline calibration power %.4f, want 0.67", got)
	}
	bl := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	var smallR, bigR int = -1, -1
	for r, c := range bl.Class {
		if c == core.ClassSmall && smallR < 0 {
			smallR = r
		}
		if c == core.ClassBig && bigR < 0 {
			bigR = r
		}
	}
	if got := m.CalibrationPower(ParamsFor(bl, smallR)); math.Abs(got-specs[core.ClassSmall].PowerW) > 1e-9 {
		t.Errorf("small calibration power %.4f, want %.2f", got, specs[core.ClassSmall].PowerW)
	}
	if got := m.CalibrationPower(ParamsFor(bl, bigR)); math.Abs(got-specs[core.ClassBig].PowerW) > 1e-9 {
		t.Errorf("big calibration power %.4f, want %.2f", got, specs[core.ClassBig].PowerW)
	}
}

// NewBaselineParamsForTest exposes the baseline parameters.
func NewBaselineParamsForTest() RouterParams {
	l := core.NewBaseline(8, 8)
	return ParamsFor(l, 0)
}

func TestBufferShareAtCalibration(t *testing.T) {
	m := NewModel()
	p := NewBaselineParamsForTest()
	a := noc.RouterActivity{
		Cycles: 1000, BufReads: 2500, BufWrites: 2500,
		XbarFlits: 2500, ArbOps: 5000, LinkFlits: 2500,
	}
	b := m.Router(p, a, 2.20)
	if math.Abs(b.Total()-0.67) > 1e-9 {
		t.Fatalf("router at calibration activity = %.4f W, want 0.67", b.Total())
	}
	if share := b.Buffers / b.Total(); math.Abs(share-0.35) > 0.01 {
		t.Errorf("buffer share %.3f, want ~0.35 (paper: buffers ~35%% of router power)", share)
	}
}

func TestPowerGrowsWithActivity(t *testing.T) {
	m := NewModel()
	p := NewBaselineParamsForTest()
	idle := m.Router(p, noc.RouterActivity{Cycles: 1000}, 2.20)
	busy := m.Router(p, noc.RouterActivity{
		Cycles: 1000, BufReads: 4000, BufWrites: 4000, XbarFlits: 4000, ArbOps: 8000, LinkFlits: 4000,
	}, 2.20)
	if idle.Total() <= 0 {
		t.Error("idle router must still leak")
	}
	if busy.Total() <= idle.Total() {
		t.Error("power must grow with activity")
	}
	// Idle power is pure leakage: 30% of the calibration total.
	if want := 0.30 * 0.67; math.Abs(idle.Total()-want) > 1e-9 {
		t.Errorf("idle power %.4f, want %.4f", idle.Total(), want)
	}
}

func TestDynamicScalesWithFrequency(t *testing.T) {
	m := NewModel()
	p := NewBaselineParamsForTest()
	a := noc.RouterActivity{Cycles: 1000, BufReads: 2000, BufWrites: 2000, XbarFlits: 2000, ArbOps: 4000, LinkFlits: 2000}
	slow := m.Router(p, a, 1.0)
	fast := m.Router(p, a, 2.0)
	leak := m.Router(p, noc.RouterActivity{Cycles: 1000}, 2.0).Total()
	// (fast - leak) must be exactly twice (slow - leak).
	if math.Abs((fast.Total()-leak)-2*(slow.Total()-leak)) > 1e-9 {
		t.Error("dynamic power does not scale linearly with frequency")
	}
}

func TestHeteroNetworkPowerBelowBaseline(t *testing.T) {
	// End to end: run UR traffic on baseline and Diagonal+BL, expect the
	// heterogeneous network to consume noticeably less power (paper: ~22-28%
	// reduction) with buffers contributing the largest cut.
	run := func(l core.Layout) Breakdown {
		net, err := l.Network()
		if err != nil {
			t.Fatal(err)
		}
		res, err := traffic.Run(net, traffic.RunConfig{
			Pattern:        traffic.UniformRandom{N: 64},
			Process:        traffic.Bernoulli{P: 0.02},
			DataFlits:      l.DataPacketFlits(),
			WarmupPackets:  300,
			MeasurePackets: 4000,
			Seed:           5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return Network(NewModel(), l, res.Activity)
	}
	base := run(core.NewBaseline(8, 8))
	het := run(core.NewLayout(core.PlacementDiagonal, 8, 8, true))
	red := 1 - het.Total()/base.Total()
	if red < 0.10 {
		t.Errorf("hetero power reduction %.1f%%, want >10%% (paper ~22-28%%)", 100*red)
	}
	bufRed := 1 - het.Buffers/base.Buffers
	if bufRed < 0.20 {
		t.Errorf("buffer power reduction %.1f%%, want >20%% (paper ~33%%)", 100*bufRed)
	}
}

func TestPlusBPowerRoughlyNeutral(t *testing.T) {
	// Buffer-only redistribution must not change network power much
	// (paper: "+B does not reduce the overall power significantly").
	run := func(l core.Layout) float64 {
		net, err := l.Network()
		if err != nil {
			t.Fatal(err)
		}
		res, err := traffic.Run(net, traffic.RunConfig{
			Pattern:        traffic.UniformRandom{N: 64},
			Process:        traffic.Bernoulli{P: 0.02},
			DataFlits:      l.DataPacketFlits(),
			WarmupPackets:  300,
			MeasurePackets: 3000,
			Seed:           5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return Network(NewModel(), l, res.Activity).Total()
	}
	base := run(core.NewBaseline(8, 8))
	plusB := run(core.NewLayout(core.PlacementDiagonal, 8, 8, false))
	ratio := plusB / base
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("+B power ratio %.3f, want near 1.0", ratio)
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{Buffers: 1, Xbar: 2, Arbiters: 3, Links: 4}
	b := Breakdown{Buffers: 10, Xbar: 20, Arbiters: 30, Links: 40}
	a.Add(b)
	if a.Total() != 110 {
		t.Errorf("total %v, want 110", a.Total())
	}
}
