package power

import (
	"testing"

	"heteronoc/internal/core"
	"heteronoc/internal/noc"
)

func TestParamsForPlusBKeepsBaselineWidths(t *testing.T) {
	l := core.NewLayout(core.PlacementDiagonal, 8, 8, false) // +B
	for r := 0; r < 64; r++ {
		p := ParamsFor(l, r)
		if p.BufBits != 192 || p.XbarBits != 192 || p.LinkBits != 192 {
			t.Fatalf("router %d: +B widths %+v, want all 192", r, p)
		}
		if p.CalPowerW != 0 {
			t.Fatalf("router %d: +B routers must not rescale to Table 1 (never synthesized)", r)
		}
	}
	// VC counts still differ per class.
	bigSeen, smallSeen := false, false
	for r := 0; r < 64; r++ {
		switch ParamsFor(l, r).VCs {
		case 6:
			bigSeen = true
		case 2:
			smallSeen = true
		}
	}
	if !bigSeen || !smallSeen {
		t.Error("+B layout lost its VC heterogeneity")
	}
}

func TestParamsForPlusBLUsesPublishedPoints(t *testing.T) {
	l := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	specs := core.Specs()
	for r := 0; r < 64; r++ {
		p := ParamsFor(l, r)
		switch l.Class[r] {
		case core.ClassSmall:
			if p.XbarBits != 128 || p.CalPowerW != specs[core.ClassSmall].PowerW {
				t.Fatalf("small router %d params %+v", r, p)
			}
		case core.ClassBig:
			if p.XbarBits != 256 || p.BufBits != 128 || p.CalPowerW != specs[core.ClassBig].PowerW {
				t.Fatalf("big router %d params %+v", r, p)
			}
		}
	}
}

func TestNetworkPowerMonotoneInActivity(t *testing.T) {
	m := NewModel()
	l := core.NewBaseline(8, 8)
	mk := func(scale int64) []noc.RouterActivity {
		act := make([]noc.RouterActivity, 64)
		for i := range act {
			act[i] = noc.RouterActivity{
				Cycles: 1000, BufReads: 500 * scale, BufWrites: 500 * scale,
				XbarFlits: 500 * scale, ArbOps: 1000 * scale, LinkFlits: 500 * scale,
			}
		}
		return act
	}
	low := Network(m, l, mk(1)).Total()
	high := Network(m, l, mk(3)).Total()
	if high <= low {
		t.Errorf("power not monotone: %.2f -> %.2f", low, high)
	}
}

func TestAllLayoutsProducePositivePower(t *testing.T) {
	m := NewModel()
	idle := make([]noc.RouterActivity, 64)
	for i := range idle {
		idle[i] = noc.RouterActivity{Cycles: 100}
	}
	for _, l := range core.AllLayouts(8, 8) {
		pb := Network(m, l, idle)
		if pb.Total() <= 0 {
			t.Errorf("%s: idle power %.3f", l.Name, pb.Total())
		}
		if pb.Buffers <= 0 || pb.Xbar <= 0 || pb.Arbiters <= 0 || pb.Links <= 0 {
			t.Errorf("%s: component missing in %+v", l.Name, pb)
		}
	}
}

func TestHeteroIdlePowerBelowBaseline(t *testing.T) {
	// Leakage alone: 48 small + 16 big routers must leak less than 64
	// baseline routers (narrower buffers and datapaths at most nodes).
	m := NewModel()
	idle := make([]noc.RouterActivity, 64)
	for i := range idle {
		idle[i] = noc.RouterActivity{Cycles: 100}
	}
	base := Network(m, core.NewBaseline(8, 8), idle).Total()
	het := Network(m, core.NewLayout(core.PlacementDiagonal, 8, 8, true), idle).Total()
	if het >= base {
		t.Errorf("hetero idle power %.2f not below baseline %.2f", het, base)
	}
}
