package cmp

import (
	"fmt"
	"strings"

	"heteronoc/internal/stats"
)

// Report is a human-readable snapshot of the whole system's counters:
// cache behavior, coherence activity, network load and DRAM service. The
// examples and tools print it after a run.
type Report struct {
	Cycles int64
	AvgIPC float64

	L1HitRate   float64
	L1MPKI      float64 // L1 misses per kilo-instruction
	Upgrades    int64
	Invals      int64
	L2HitRate   float64
	Recalls     int64
	MemReads    int64
	MemWrites   int64
	DRAMRowHits float64 // fraction of DRAM accesses hitting an open row

	NetPackets   int64
	NetAvgLatNS  float64
	MissRTT      stats.Summary
	MCReqLatency stats.Summary
}

// Snapshot aggregates the current counters.
func (s *System) Snapshot() Report {
	r := Report{AvgIPC: s.AvgIPC(), MissRTT: s.MissRTT(), MCReqLatency: s.MCReqLatency}
	var l1h, l1m, l1c, insts int64
	var l2h, l2m int64
	for _, t := range s.Tiles {
		l1h += t.L1.Hits
		l1m += t.L1.Misses
		l1c += t.L1.Coalesces
		r.Upgrades += t.L1.Upgrades
		r.Invals += t.L1.Invalidations
		l2h += t.Home.L2Hits
		l2m += t.Home.L2Misses
		r.Recalls += t.Home.Recalls
		r.MemReads += t.Home.MemReads
		r.MemWrites += t.Home.MemWrites
		insts += t.Core.Insts
		if t.Core.Cycles > r.Cycles {
			r.Cycles = t.Core.Cycles
		}
	}
	if tot := l1h + l1m + l1c; tot > 0 {
		r.L1HitRate = float64(l1h) / float64(tot)
	}
	if insts > 0 {
		r.L1MPKI = 1000 * float64(l1m) / float64(insts)
	}
	if tot := l2h + l2m; tot > 0 {
		r.L2HitRate = float64(l2h) / float64(tot)
	}
	var dramTotal, dramHits int64
	for _, mc := range s.MCs {
		dramTotal += mc.Completed
		dramHits += mc.RowHits
	}
	if dramTotal > 0 {
		r.DRAMRowHits = float64(dramHits) / float64(dramTotal)
	}
	ns := s.NetStats()
	r.NetPackets = ns.PacketsReceived
	r.NetAvgLatNS = ns.AvgLatency() / s.cfg.Layout.FreqGHz()
	return r
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles          %d\n", r.Cycles)
	fmt.Fprintf(&b, "avg IPC         %.3f\n", r.AvgIPC)
	fmt.Fprintf(&b, "L1              hit %.1f%%, %.1f MPKI, %d upgrades, %d invalidations\n",
		100*r.L1HitRate, r.L1MPKI, r.Upgrades, r.Invals)
	fmt.Fprintf(&b, "L2              hit %.1f%%, %d recalls\n", 100*r.L2HitRate, r.Recalls)
	fmt.Fprintf(&b, "DRAM            %d reads, %d writes, %.1f%% row hits\n",
		r.MemReads, r.MemWrites, 100*r.DRAMRowHits)
	fmt.Fprintf(&b, "network         %d packets, %.1f ns avg\n", r.NetPackets, r.NetAvgLatNS)
	rtt := r.MissRTT
	fmt.Fprintf(&b, "miss round trip %.1f cycles (std dev %.1f, n=%d)\n", rtt.Mean(), rtt.StdDev(), rtt.N())
	return b.String()
}
