package cmp

import (
	"testing"

	"heteronoc/internal/cmp/cache"
	"heteronoc/internal/core"
	"heteronoc/internal/trace"
)

// benchTraces builds per-core trace readers for a benchmark.
func benchTraces(t *testing.T, name string, n int) []trace.Reader {
	t.Helper()
	p, err := trace.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]trace.Reader, n)
	for i := range out {
		out[i] = trace.NewGenerator(p, i, 128)
	}
	return out
}

func newSystem(t *testing.T, l core.Layout, bench string) *System {
	t.Helper()
	s, err := New(Config{
		Layout: l,
		Traces: benchTraces(t, bench, l.Mesh.NumTerminals()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSystemRunsAndCommits(t *testing.T) {
	s := newSystem(t, core.NewBaseline(8, 8), "SPECjbb")
	if err := s.Run(4000); err != nil {
		t.Fatal(err)
	}
	if s.AvgIPC() <= 0 {
		t.Fatal("no instructions committed")
	}
	var insts int64
	for _, tile := range s.Tiles {
		insts += tile.Core.Insts
		if tile.Core.Cycles != 4000 {
			t.Fatalf("core %d ran %d cycles", tile.ID, tile.Core.Cycles)
		}
	}
	if insts == 0 {
		t.Fatal("zero total instructions")
	}
	if s.NetStats().PacketsInjected == 0 {
		t.Error("no network traffic generated")
	}
	rtt := s.MissRTT()
	if rtt.N() == 0 {
		t.Error("no miss round trips measured")
	}
}

func TestSystemOnHeteroNoC(t *testing.T) {
	s := newSystem(t, core.NewLayout(core.PlacementDiagonal, 8, 8, true), "SAP")
	if err := s.Run(4000); err != nil {
		t.Fatal(err)
	}
	if s.AvgIPC() <= 0 {
		t.Fatal("no progress on HeteroNoC")
	}
}

func TestCoherenceInvariantUnderFullSystem(t *testing.T) {
	s := newSystem(t, core.NewBaseline(8, 8), "TPC-C")
	for step := 0; step < 8; step++ {
		if err := s.Run(500); err != nil {
			t.Fatal(err)
		}
		// Single-writer invariant across all L1s on a sample of lines.
		type holder struct{ owners, holders int }
		lines := map[uint64]*holder{}
		for _, tile := range s.Tiles {
			for line := uint64(0); line < 64; line++ {
				if st, ok := tile.L1.HasLine(line); ok {
					h := lines[line]
					if h == nil {
						h = &holder{}
						lines[line] = h
					}
					h.holders++
					if st == cache.Exclusive || st == cache.Modified {
						h.owners++
					}
				}
			}
		}
		for line, h := range lines {
			if h.owners > 1 {
				t.Fatalf("line %#x has %d owners", line, h.owners)
			}
			if h.owners == 1 && h.holders > 1 {
				t.Fatalf("line %#x owned with %d holders", line, h.holders)
			}
		}
	}
}

func TestMemoryControllersSeeTraffic(t *testing.T) {
	s := newSystem(t, core.NewBaseline(8, 8), "canneal")
	if err := s.Run(6000); err != nil {
		t.Fatal(err)
	}
	var reads int64
	for _, mc := range s.MCs {
		reads += mc.Reads
	}
	if reads == 0 {
		t.Fatal("no DRAM reads (footprint should exceed L2)")
	}
	mcl := s.MCReqLatency
	if mcl.N() == 0 {
		t.Error("no MC request latencies sampled")
	}
}

func TestMCPlacementConfigurable(t *testing.T) {
	l := core.NewBaseline(8, 8)
	s, err := New(Config{
		Layout:  l,
		Traces:  benchTraces(t, "canneal", 64),
		MCTiles: []int{27, 28, 35, 36},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(4000); err != nil {
		t.Fatal(err)
	}
	for _, tl := range []int{27, 28, 35, 36} {
		if s.MCs[tl] == nil {
			t.Fatalf("no controller at tile %d", tl)
		}
	}
}

func TestSmallCoreSlowerThanLarge(t *testing.T) {
	l := core.NewBaseline(8, 8)
	run := func(cc CoreConfig) float64 {
		s, err := New(Config{
			Layout: l,
			Traces: benchTraces(t, "SPECjbb", 64),
			Cores:  []CoreConfig{cc},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(4000); err != nil {
			t.Fatal(err)
		}
		return s.AvgIPC()
	}
	large := run(LargeCore())
	small := run(SmallCore())
	if small >= large {
		t.Errorf("small-core IPC %.3f not below large-core %.3f", small, large)
	}
}

func TestDeterministicIPC(t *testing.T) {
	run := func() float64 {
		s := newSystem(t, core.NewBaseline(8, 8), "dedup")
		if err := s.Run(2500); err != nil {
			t.Fatal(err)
		}
		return s.AvgIPC()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic IPC: %v vs %v", a, b)
	}
}

func TestMixedCoreConfigValidation(t *testing.T) {
	l := core.NewBaseline(8, 8)
	_, err := New(Config{
		Layout: l,
		Traces: benchTraces(t, "SAP", 64),
		Cores:  make([]CoreConfig, 3),
	})
	if err == nil {
		t.Error("bad core config count accepted")
	}
	_, err = New(Config{Layout: l, Traces: nil})
	if err == nil {
		t.Error("missing traces accepted")
	}
}
