package cmp

// Warm-state checkpointing (NOCCKPT01 kind "cmp-warm"). A CMP system is
// serialized at the one boundary where its complete architectural state
// is closed over plain data: immediately after Warmup, before the first
// timing Step. At that point every protocol transaction has settled
// (warmup delivery is synchronous), no message is in flight, the network
// and memory controllers are untouched, and the cores have not issued —
// so the whole system state is the cache/directory contents, the LRU
// bookkeeping, the prefetch counters warmup does not reset, and the trace
// positions. Mid-run snapshots are refused: in-flight MSHRs and home
// transactions hold completion closures that cannot be serialized.
//
// Restoring into a freshly built System loads the cache state and lands
// the trace readers on their post-warmup position. Version 2 checkpoints
// carry each reader's own O(1) position snapshot (trace.Stateful — RNG
// register for generators, entry index for chunked file readers), so
// restore cost is independent of warmup length; readers without state
// support, and version 1 checkpoints (which predate reader state), fall
// back to replaying the recorded entry count through Next(), which the
// deterministic readers reproduce exactly. Either way the restored
// system is bit-identical to one that ran Warmup itself — the figure
// pipeline relies on this to share one warmup across every layout
// variant of a benchmark.

import (
	"fmt"

	"heteronoc/internal/ckpt"
	"heteronoc/internal/trace"
)

const (
	// KindWarmSystem labels a post-warmup cmp.System checkpoint.
	KindWarmSystem = "cmp-warm"

	// Version 2 appends per-reader position state; version 1 (replay-only)
	// checkpoints are still restorable.
	warmSnapshotVersion = 2
)

// WarmSnapshot serializes the post-warmup state of the system. It fails
// if the system has started timing simulation or any controller is
// mid-transaction.
func (s *System) WarmSnapshot() ([]byte, error) {
	return s.warmSnapshot(warmSnapshotVersion)
}

// warmSnapshot encodes at a specific schema version — tests use it to
// produce version-1 checkpoints and pin the compatibility path.
func (s *System) warmSnapshot(version uint64) ([]byte, error) {
	if s.now != 0 {
		return nil, fmt.Errorf("cmp: WarmSnapshot after %d timing cycles; only post-warmup snapshots are supported", s.now)
	}
	if len(s.delayQ) != 0 || len(s.seqOut) != 0 || len(s.seqIn) != 0 || len(s.parked) != 0 {
		return nil, fmt.Errorf("cmp: WarmSnapshot with in-flight messages")
	}
	for _, tile := range s.Tiles {
		if !tile.L1.Quiescent() || !tile.Home.Quiescent() {
			return nil, fmt.Errorf("cmp: WarmSnapshot with tile %d mid-transaction", tile.ID)
		}
	}
	w := ckpt.NewWriter(ckpt.Header{
		Kind:    KindWarmSystem,
		Version: version,
	})
	w.Int(len(s.Tiles))
	w.Int(s.cfg.LineBytes)
	w.Bool(s.cfg.Prefetch)
	w.Int(s.warmedEntries)
	for _, tile := range s.Tiles {
		if err := tile.L1.EncodeState(w); err != nil {
			return nil, err
		}
		if err := tile.Home.EncodeState(w); err != nil {
			return nil, err
		}
	}
	// v2: one position blob per reader. Empty means "no state support,
	// replay on restore", so mixed reader sets degrade per reader, not
	// per checkpoint.
	if version >= 2 {
		for _, tile := range s.Tiles {
			if st, ok := s.cfg.Traces[tile.ID].(trace.Stateful); ok {
				w.Bytes(st.SaveState())
			} else {
				w.Bytes(nil)
			}
		}
	}
	return w.Finish(), nil
}

// RestoreWarmSnapshot loads a WarmSnapshot into a freshly built System
// (same tile count, line size and cache geometry; the layout and memory
// placement may differ — warmup state does not depend on them). The
// system's trace readers are advanced by the warmup's consumption so the
// measured phase reads the exact entries it would have after a direct
// Warmup call. Equivalent to Warmup(entriesPerCore), bit for bit.
func (s *System) RestoreWarmSnapshot(data []byte) error {
	r, err := ckpt.NewReader(data)
	if err != nil {
		return err
	}
	h := r.Header()
	if h.Kind != KindWarmSystem {
		return fmt.Errorf("cmp: checkpoint kind %q, want %q", h.Kind, KindWarmSystem)
	}
	if h.Version != 1 && h.Version != warmSnapshotVersion {
		return fmt.Errorf("cmp: checkpoint version %d, want <=%d", h.Version, warmSnapshotVersion)
	}
	if s.now != 0 || s.warmedEntries != 0 {
		return fmt.Errorf("cmp: RestoreWarmSnapshot target must be freshly constructed")
	}
	if n := r.Int(); n != len(s.Tiles) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("cmp: checkpoint has %d tiles, target has %d", n, len(s.Tiles))
	}
	if lb := r.Int(); lb != s.cfg.LineBytes {
		return fmt.Errorf("cmp: checkpoint line size %d, target %d", lb, s.cfg.LineBytes)
	}
	if pf := r.Bool(); pf != s.cfg.Prefetch {
		return fmt.Errorf("cmp: checkpoint prefetch=%t, target %t", pf, s.cfg.Prefetch)
	}
	entries := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if entries < 0 {
		return fmt.Errorf("cmp: negative warmup entry count %d", entries)
	}
	for _, tile := range s.Tiles {
		if err := tile.L1.DecodeState(r); err != nil {
			return err
		}
		if err := tile.Home.DecodeState(r); err != nil {
			return err
		}
	}
	var readerState [][]byte
	if h.Version >= 2 {
		readerState = make([][]byte, len(s.Tiles))
		for i := range s.Tiles {
			readerState[i] = r.Bytes()
		}
	}
	if err := r.Done(); err != nil {
		return err
	}
	// Land the trace readers on the post-warmup position: O(1) state
	// restore when the checkpoint carries a blob and the reader supports
	// it, otherwise replay the recorded entry count through Next() (the
	// readers are deterministic, so N reads reproduce the position
	// exactly; interleaving across cores does not matter because readers
	// are per-core).
	for _, tile := range s.Tiles {
		tr := s.cfg.Traces[tile.ID]
		if readerState != nil && len(readerState[tile.ID]) > 0 {
			if st, ok := tr.(trace.Stateful); ok {
				if err := st.RestoreState(readerState[tile.ID]); err != nil {
					return fmt.Errorf("cmp: reader %d: %w", tile.ID, err)
				}
				continue
			}
		}
		for k := 0; k < entries; k++ {
			tr.Next()
		}
	}
	s.warmedEntries = entries
	return nil
}
