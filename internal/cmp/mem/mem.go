// Package mem models the memory controllers and DRAM of the CMP system:
// each controller owns a request queue and a set of parallel banks with a
// fixed access latency (400 core cycles, Table 2), and tracks the
// queuing/service statistics used by the memory-controller placement study
// (Section 6).
package mem

// Request is one DRAM access.
type Request struct {
	Line    uint64
	Home    int  // tile to answer
	Write   bool // write-backs produce no response
	Arrived int64
	// done is the completion time once scheduled.
	done int64
	// pooled marks a controller-owned request (EnqueueLine); it returns to
	// the free list one Tick after completion. Caller-owned requests
	// (Enqueue) are never recycled.
	pooled bool
}

// Controller is one memory controller with an FR-FCFS scheduler over
// open-row banks: a request to a bank whose row buffer already holds the
// right row is serviced faster (RowHitLatency) and preferred over older
// row-miss requests to the same bank — the standard first-ready
// first-come-first-served policy.
type Controller struct {
	// Terminal is the tile the controller is attached to.
	Terminal int
	// Latency is the row-miss DRAM access time in core cycles (Table 2's
	// 400-cycle access).
	Latency int64
	// RowHitLatency is the access time when the row buffer hits.
	RowHitLatency int64
	// Banks is the number of requests serviced in parallel.
	Banks int
	// RowLines is the number of consecutive cache lines per DRAM row.
	RowLines uint64

	bankFree []int64  // cycle each bank frees up
	openRow  []uint64 // row latched in each bank's row buffer
	rowValid []bool
	queue    []*Request
	inFlight reqHeap

	// out is the reused Tick result slice; its previous contents are
	// recycled at the next Tick (the caller consumes results synchronously
	// before stepping the controller again). free is the Request pool.
	out  []*Request
	free []*Request

	// Statistics.
	Reads, Writes    int64
	RowHits          int64
	TotalQueueDelay  int64
	TotalServiceTime int64
	Completed        int64
}

// NewController builds a controller attached to a terminal.
func NewController(terminal int) *Controller {
	c := &Controller{Terminal: terminal, Latency: 400, RowHitLatency: 200, Banks: 8, RowLines: 64}
	c.bankFree = make([]int64, c.Banks)
	c.openRow = make([]uint64, c.Banks)
	c.rowValid = make([]bool, c.Banks)
	return c
}

// bankOf statically maps a line to a bank; rowOf gives its DRAM row.
func (c *Controller) bankOf(line uint64) int   { return int((line / c.RowLines) % uint64(c.Banks)) }
func (c *Controller) rowOf(line uint64) uint64 { return line / c.RowLines / uint64(c.Banks) }

// EnqueueLine accepts an access without the caller allocating a Request:
// the controller draws one from its pool and recycles it after completion.
func (c *Controller) EnqueueLine(line uint64, home int, write bool, now int64) {
	var r *Request
	if n := len(c.free); n > 0 {
		r = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		r = &Request{}
	}
	*r = Request{Line: line, Home: home, Write: write, pooled: true}
	c.Enqueue(r, now)
}

// Enqueue accepts a request at time now.
func (c *Controller) Enqueue(r *Request, now int64) {
	r.Arrived = now
	if r.Write {
		c.Writes++
	} else {
		c.Reads++
	}
	c.queue = append(c.queue, r)
	c.schedule(now)
}

// schedule assigns queued requests to free banks under FR-FCFS: per free
// bank, the oldest row-buffer-hitting request wins; if none hits, the
// oldest request for that bank is served and re-opens the row.
func (c *Controller) schedule(now int64) {
	if len(c.queue) == 0 {
		return
	}
	for {
		moved := false
		for bank := 0; bank < c.Banks; bank++ {
			if c.bankFree[bank] > now {
				continue
			}
			// First ready: oldest row hit for this bank, else oldest
			// request for this bank.
			pick := -1
			for i, r := range c.queue {
				if c.bankOf(r.Line) != bank {
					continue
				}
				if c.rowValid[bank] && c.rowOf(r.Line) == c.openRow[bank] {
					pick = i
					break // queue is FIFO: first hit is the oldest hit
				}
				if pick < 0 {
					pick = i
				}
			}
			if pick < 0 {
				continue
			}
			r := c.queue[pick]
			c.queue = append(c.queue[:pick], c.queue[pick+1:]...)
			lat := c.Latency
			if c.rowValid[bank] && c.rowOf(r.Line) == c.openRow[bank] {
				lat = c.RowHitLatency
				c.RowHits++
			}
			c.openRow[bank] = c.rowOf(r.Line)
			c.rowValid[bank] = true
			r.done = now + lat
			c.bankFree[bank] = r.done
			c.TotalQueueDelay += now - r.Arrived
			c.inFlight.push(r)
			moved = true
		}
		if !moved {
			return
		}
	}
}

// Tick returns the requests that completed by cycle now. Write-backs
// complete silently (they are popped but carry Write=true so the caller
// can skip the response). The returned slice is reused on the next Tick;
// consume it before stepping the controller again.
func (c *Controller) Tick(now int64) []*Request {
	for _, r := range c.out {
		if r.pooled {
			c.free = append(c.free, r)
		}
	}
	c.out = c.out[:0]
	c.schedule(now)
	for len(c.inFlight) > 0 && c.inFlight[0].done <= now {
		r := c.inFlight.pop()
		c.Completed++
		c.TotalServiceTime += r.done - r.Arrived
		c.out = append(c.out, r)
	}
	return c.out
}

// QueueLen returns the number of requests waiting for a bank.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Busy reports whether any request is queued or in flight.
func (c *Controller) Busy() bool { return len(c.queue) > 0 || len(c.inFlight) > 0 }

// AvgServiceTime returns the mean arrival-to-done time in cycles.
func (c *Controller) AvgServiceTime() float64 {
	if c.Completed == 0 {
		return 0
	}
	return float64(c.TotalServiceTime) / float64(c.Completed)
}

// reqHeap is a typed min-heap on Request.done, replicating container/heap's
// sift algorithm so completion ties keep popping in the established order
// without boxing a *Request per push.
type reqHeap []*Request

func (h *reqHeap) push(r *Request) {
	*h = append(*h, r)
	h.up(len(*h) - 1)
}

func (h *reqHeap) pop() *Request {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	h.down(0, n)
	r := a[n]
	a[n] = nil
	*h = a[:n]
	return r
}

func (h reqHeap) up(j int) {
	for {
		i := (j - 1) / 2
		if i == j || h[i].done <= h[j].done {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h reqHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].done < h[j1].done {
			j = j2
		}
		if h[i].done <= h[j].done {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// Placement computes the memory-controller tile sets studied in Section 6
// on a W x H mesh (Abts et al. layouts).
type Placement string

const (
	// PlacementCorners is the Table 2 baseline: 4 controllers at the mesh
	// corners.
	PlacementCorners Placement = "corners"
	// PlacementDiamond distributes 16 controllers in the diamond pattern.
	PlacementDiamond Placement = "diamond"
	// PlacementDiagonal puts 16 controllers on the two diagonals
	// (co-located with the HeteroNoC big routers).
	PlacementDiagonal Placement = "diagonal"
)

// Tiles returns the tile IDs hosting controllers for a placement on a
// W x H router grid (row-major IDs).
func Tiles(p Placement, w, h int) []int {
	at := func(x, y int) int { return y*w + x }
	switch p {
	case PlacementCorners:
		return []int{at(0, 0), at(w-1, 0), at(0, h-1), at(w-1, h-1)}
	case PlacementDiagonal:
		var out []int
		seen := map[int]bool{}
		for i := 0; i < w && i < h; i++ {
			for _, t := range []int{at(i, i), at(w-1-i, i)} {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
		return out
	case PlacementDiamond:
		// A diamond ring of controllers: all tiles whose Manhattan distance
		// from the mesh center falls in the band (r-1, r], with r half the
		// short edge so the ring stays inscribed on non-square meshes
		// (Abts et al.'s X pattern rotated 45 degrees). For 8x8 r=4 and
		// this yields 16 tiles.
		var out []int
		seen := map[int]bool{}
		cx, cy := float64(w-1)/2, float64(h-1)/2
		r := float64(min(w, h)) / 2
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				d := abs64(float64(x)-cx) + abs64(float64(y)-cy)
				if d > r-1 && d <= r && !seen[at(x, y)] {
					seen[at(x, y)] = true
					out = append(out, at(x, y))
				}
			}
		}
		return out
	}
	return nil
}

func abs64(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// bankFreeReset re-sizes the per-bank state after a test changes Banks.
func (c *Controller) bankFreeReset() {
	c.bankFree = make([]int64, c.Banks)
	c.openRow = make([]uint64, c.Banks)
	c.rowValid = make([]bool, c.Banks)
}
