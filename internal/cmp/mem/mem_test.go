package mem

import (
	"sort"
	"testing"
)

func TestSingleRequestLatency(t *testing.T) {
	c := NewController(0)
	c.Enqueue(&Request{Line: 1, Home: 2}, 100)
	if got := c.Tick(499); len(got) != 0 {
		t.Fatal("completed before latency elapsed")
	}
	got := c.Tick(500)
	if len(got) != 1 || got[0].Line != 1 {
		t.Fatalf("Tick(500) = %v", got)
	}
	if c.AvgServiceTime() != 400 {
		t.Errorf("service time %v, want 400", c.AvgServiceTime())
	}
}

func TestBankParallelism(t *testing.T) {
	c := NewController(0)
	// One request per bank: line i*RowLines maps to bank i.
	for i := 0; i < c.Banks; i++ {
		c.Enqueue(&Request{Line: uint64(i) * c.RowLines}, 0)
	}
	if got := c.Tick(400); len(got) != c.Banks {
		t.Fatalf("%d banks should finish %d requests together, got %d", c.Banks, c.Banks, len(got))
	}
}

func TestQueueingBeyondBanks(t *testing.T) {
	c := NewController(0)
	n := c.Banks + 2
	// n requests spread across banks: banks 0 and 1 get two requests to
	// DIFFERENT rows (forcing row misses, no FR-FCFS reordering benefit).
	for i := 0; i < n; i++ {
		bank := uint64(i % c.Banks)
		row := uint64(i/c.Banks) * c.RowLines * uint64(c.Banks) * 7
		c.Enqueue(&Request{Line: bank*c.RowLines + row}, 0)
	}
	if c.QueueLen() != 2 {
		t.Fatalf("queue length %d, want 2", c.QueueLen())
	}
	first := c.Tick(400)
	if len(first) != c.Banks {
		t.Fatalf("first batch %d, want %d", len(first), c.Banks)
	}
	second := c.Tick(800)
	if len(second) != 2 {
		t.Fatalf("second batch %d, want 2", len(second))
	}
	if c.Busy() {
		t.Error("controller still busy")
	}
	if c.TotalQueueDelay != 800 { // two requests waited 400 each
		t.Errorf("queue delay %d, want 800", c.TotalQueueDelay)
	}
}

func TestRowBufferHitFaster(t *testing.T) {
	c := NewController(0)
	c.Enqueue(&Request{Line: 0}, 0) // opens row 0 of bank 0
	if got := c.Tick(400); len(got) != 1 {
		t.Fatal("first access did not complete at the row-miss latency")
	}
	c.Enqueue(&Request{Line: 1}, 400) // same row: hit
	if got := c.Tick(400 + c.RowHitLatency); len(got) != 1 {
		t.Fatalf("row hit did not complete at the hit latency")
	}
	if c.RowHits != 1 {
		t.Errorf("row hits %d, want 1", c.RowHits)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	c := NewController(0)
	c.Banks = 1
	c.bankFreeReset()
	c.Enqueue(&Request{Line: 0}, 0) // opens row 0, busy until 400
	// While the bank is busy, queue a row-miss request (other row) and
	// then a row hit. When the bank frees, the scheduler must pick the
	// hit even though it arrived later.
	missLine := c.RowLines * uint64(c.Banks) * 3 // different row, bank 0
	c.Enqueue(&Request{Line: missLine}, 399)
	c.Enqueue(&Request{Line: 2}, 399) // row 0: hit
	c.Tick(400)                       // completes the opener, schedules the hit
	done := c.Tick(400 + c.RowHitLatency)
	if len(done) != 1 || done[0].Line != 2 {
		t.Fatalf("FR-FCFS served %v first, want the row hit (line 2)", done)
	}
}

func TestWriteCounted(t *testing.T) {
	c := NewController(0)
	c.Enqueue(&Request{Line: 1, Write: true}, 0)
	c.Enqueue(&Request{Line: 2}, 0)
	if c.Writes != 1 || c.Reads != 1 {
		t.Errorf("reads/writes = %d/%d", c.Reads, c.Writes)
	}
}

func TestPlacements(t *testing.T) {
	corners := Tiles(PlacementCorners, 8, 8)
	if len(corners) != 4 {
		t.Fatalf("corners: %v", corners)
	}
	want := map[int]bool{0: true, 7: true, 56: true, 63: true}
	for _, c := range corners {
		if !want[c] {
			t.Errorf("unexpected corner tile %d", c)
		}
	}
	diag := Tiles(PlacementDiagonal, 8, 8)
	if len(diag) != 16 {
		t.Fatalf("diagonal count %d, want 16", len(diag))
	}
	diamond := Tiles(PlacementDiamond, 8, 8)
	if len(diamond) != 16 {
		t.Fatalf("diamond count %d, want 16: %v", len(diamond), diamond)
	}
	// Diamond and diagonal must differ and both avoid duplicates.
	uniq := func(xs []int) bool {
		s := append([]int(nil), xs...)
		sort.Ints(s)
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				return false
			}
		}
		return true
	}
	if !uniq(diag) || !uniq(diamond) {
		t.Error("duplicate controller tiles")
	}
}

func TestPlacementsNonSquare(t *testing.T) {
	for _, tc := range []struct{ w, h int }{{4, 8}, {8, 4}, {16, 16}, {32, 32}, {2, 2}} {
		n := tc.w * tc.h
		for _, p := range []Placement{PlacementCorners, PlacementDiagonal, PlacementDiamond} {
			tiles := Tiles(p, tc.w, tc.h)
			if len(tiles) == 0 {
				t.Errorf("%s %dx%d: no tiles", p, tc.w, tc.h)
			}
			seen := map[int]bool{}
			for _, tl := range tiles {
				if tl < 0 || tl >= n {
					t.Errorf("%s %dx%d: tile %d out of range [0,%d)", p, tc.w, tc.h, tl, n)
				}
				if seen[tl] {
					t.Errorf("%s %dx%d: duplicate tile %d", p, tc.w, tc.h, tl)
				}
				seen[tl] = true
			}
		}
		// The diamond ring must stay inscribed: every tile within
		// min(w,h)/2 of the center in Manhattan distance.
		r := float64(min(tc.w, tc.h)) / 2
		cx, cy := float64(tc.w-1)/2, float64(tc.h-1)/2
		for _, tl := range Tiles(PlacementDiamond, tc.w, tc.h) {
			x, y := float64(tl%tc.w), float64(tl/tc.w)
			if d := abs64(x-cx) + abs64(y-cy); d > r {
				t.Errorf("diamond %dx%d: tile %d at distance %.1f > %.1f", tc.w, tc.h, tl, d, r)
			}
		}
	}
	// 16x16 diamond keeps the paper's two-per-row/column structure at scale.
	diamond := Tiles(PlacementDiamond, 16, 16)
	if len(diamond) != 32 {
		t.Errorf("16x16 diamond count %d, want 32", len(diamond))
	}
}

func TestDiamondRowColumnCoverage(t *testing.T) {
	// The paper places two controllers per row/column of the mesh.
	diamond := Tiles(PlacementDiamond, 8, 8)
	rows := map[int]int{}
	cols := map[int]int{}
	for _, tl := range diamond {
		rows[tl/8]++
		cols[tl%8]++
	}
	for r, n := range rows {
		if n != 2 {
			t.Errorf("row %d has %d controllers, want 2", r, n)
		}
	}
	for c, n := range cols {
		if n != 2 {
			t.Errorf("column %d has %d controllers, want 2", c, n)
		}
	}
}
