package cmp

import (
	"strings"
	"testing"

	"heteronoc/internal/cmp/coherence"
	"heteronoc/internal/core"
)

// collectingDispatch records the order messages reach dispatch by swapping
// in a probe via the public surfaces: we drive deliverOrdered directly.
func newIdleSystem(t *testing.T) *System {
	t.Helper()
	s, err := New(Config{
		Layout: core.NewBaseline(8, 8),
		Traces: benchTraces(t, "vips", 64),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReorderBufferReordersPerPair(t *testing.T) {
	s := newIdleSystem(t)
	// Deliver seq 1 before seq 0 for the pair (3, 5): the first must park,
	// then both dispatch in order when seq 0 arrives. WBAck is a safe
	// no-op message to observe (it only touches the wb map).
	// Use WBAck messages: harmless to an empty L1.
	m0 := coherence.Msg{Type: coherence.WBAck, Line: 1, Src: 3, Dst: 5, Seq: 0}
	m1 := coherence.Msg{Type: coherence.WBAck, Line: 2, Src: 3, Dst: 5, Seq: 1}
	s.deliverOrdered(m1)
	if len(s.parked[pairKey{3, 5}]) != 1 {
		t.Fatal("early message not parked")
	}
	s.deliverOrdered(m0)
	if len(s.parked[pairKey{3, 5}]) != 0 {
		t.Fatal("parked message not drained")
	}
	if s.seqIn[pairKey{3, 5}] != 2 {
		t.Fatalf("in-sequence counter %d, want 2", s.seqIn[pairKey{3, 5}])
	}
}

func TestReorderBufferIndependentPairs(t *testing.T) {
	s := newIdleSystem(t)
	// Ordering is per pair: pair (1,2) at seq 0 must dispatch even while
	// pair (3,2) is waiting for its seq 0.
	s.deliverOrdered(coherence.Msg{Type: coherence.WBAck, Src: 3, Dst: 2, Seq: 1})
	s.deliverOrdered(coherence.Msg{Type: coherence.WBAck, Src: 1, Dst: 2, Seq: 0})
	if s.seqIn[pairKey{1, 2}] != 1 {
		t.Error("independent pair blocked")
	}
	if s.seqIn[pairKey{3, 2}] != 0 {
		t.Error("out-of-order message consumed early")
	}
}

func TestSendAssignsMonotonicSeqs(t *testing.T) {
	s := newIdleSystem(t)
	for i := 0; i < 5; i++ {
		s.Send(coherence.Msg{Type: coherence.WBAck, Src: 7, Dst: 9}, 0)
	}
	if got := s.seqOut[pairKey{7, 9}]; got != 5 {
		t.Fatalf("seqOut = %d, want 5", got)
	}
	// Messages sit in the delay queue until their time matures.
	if len(s.delayQ) != 5 {
		t.Fatalf("delay queue %d, want 5", len(s.delayQ))
	}
}

func TestDataFlitsByMessageClass(t *testing.T) {
	s := newIdleSystem(t)
	if got := s.dataFlits(coherence.Msg{Type: coherence.GetS}); got != 1 {
		t.Errorf("GetS flits = %d, want 1 (address packet)", got)
	}
	if got := s.dataFlits(coherence.Msg{Type: coherence.Data}); got != 6 {
		t.Errorf("Data flits = %d, want 6 (cache-line packet)", got)
	}
	if got := s.dataFlits(coherence.Msg{Type: coherence.MemWrite}); got != 6 {
		t.Errorf("MemWrite flits = %d, want 6", got)
	}
	if got := s.dataFlits(coherence.Msg{Type: coherence.InvAck}); got != 1 {
		t.Errorf("InvAck flits = %d, want 1", got)
	}
}

func TestLocalMessagesBypassNetwork(t *testing.T) {
	s := newIdleSystem(t)
	// A same-tile message must never enter the NoC. Drive the transport
	// directly (stepping the whole system would let the cores generate
	// their own traffic and hide the check).
	s.Send(coherence.Msg{Type: coherence.WBAck, Src: 4, Dst: 4}, 0)
	for i := 0; i < 10; i++ {
		s.now++
		s.flush()
	}
	if len(s.delayQ) != 0 {
		t.Error("local message stuck in the delay queue")
	}
	if got := s.NetStats().PacketsInjected; got != 0 {
		t.Errorf("local message entered the network (%d packets)", got)
	}
	if s.seqIn[pairKey{4, 4}] != 1 {
		t.Error("local message was not dispatched")
	}
}

func TestWarmupLeavesHierarchyConsistent(t *testing.T) {
	s := newIdleSystem(t)
	s.Warmup(8000)
	// After warmup: no in-flight warm messages, caches populated, stats
	// clean, and the timing simulation starts healthy.
	if len(s.warmQ) != 0 {
		t.Fatal("warm queue not drained")
	}
	occ := 0
	for _, tile := range s.Tiles {
		occ += tile.Home.L2().Occupancy()
		if tile.L1.Outstanding() != 0 {
			t.Fatal("outstanding MSHRs after warmup")
		}
	}
	if occ == 0 {
		t.Fatal("warmup populated nothing")
	}
	if s.NetStats().PacketsInjected != 0 {
		t.Error("warmup leaked packets into the network")
	}
	if err := s.Run(300); err != nil {
		t.Fatal(err)
	}
	if s.AvgIPC() <= 0 {
		t.Error("no progress after warmup")
	}
}

func TestWarmupImprovesHitRate(t *testing.T) {
	run := func(warm int) float64 {
		s := newIdleSystem(t)
		if warm > 0 {
			s.Warmup(warm)
		}
		if err := s.Run(2500); err != nil {
			t.Fatal(err)
		}
		var hits, total int64
		for _, tile := range s.Tiles {
			hits += tile.Home.L2Hits
			total += tile.Home.L2Hits + tile.Home.L2Misses
		}
		if total == 0 {
			return 0
		}
		return float64(hits) / float64(total)
	}
	cold, warm := run(0), run(20000)
	if warm <= cold {
		t.Errorf("warmup did not improve L2 hit rate: cold %.3f warm %.3f", cold, warm)
	}
}

func TestSnapshotReport(t *testing.T) {
	s := newIdleSystem(t)
	s.Warmup(10000)
	if err := s.Run(1500); err != nil {
		t.Fatal(err)
	}
	r := s.Snapshot()
	if r.AvgIPC <= 0 || r.Cycles != 1500 {
		t.Fatalf("report basics wrong: %+v", r)
	}
	if r.L1HitRate <= 0 || r.L1HitRate > 1 {
		t.Errorf("L1 hit rate %v", r.L1HitRate)
	}
	if r.L2HitRate <= 0 || r.L2HitRate > 1 {
		t.Errorf("L2 hit rate %v", r.L2HitRate)
	}
	if r.NetPackets <= 0 {
		t.Error("no network packets in report")
	}
	out := r.String()
	for _, want := range []string{"avg IPC", "L1", "DRAM", "network", "miss round trip"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
