package cmp

import (
	"bytes"
	"testing"

	"heteronoc/internal/core"
)

// runFingerprint summarizes the observable outcome of a measured run.
func runFingerprint(t *testing.T, s *System, cycles int64) []uint64 {
	t.Helper()
	if err := s.Run(cycles); err != nil {
		t.Fatal(err)
	}
	var insts int64
	for _, tile := range s.Tiles {
		insts += tile.Core.Insts
	}
	ns := s.NetStats()
	return []uint64{
		uint64(insts), ns.Fingerprint(),
		uint64(ns.PacketsInjected), uint64(ns.PacketsReceived),
	}
}

// TestWarmSnapshotEquivalentToDirectWarmup is the warmup-sharing
// invariant: restore(WarmSnapshot(warmed)) then Run must be bit-identical
// to Warmup then Run.
func TestWarmSnapshotEquivalentToDirectWarmup(t *testing.T) {
	const entries, cycles = 400, 2000
	l := core.NewBaseline(8, 8)

	direct := newSystem(t, l, "SPECjbb")
	direct.Warmup(entries)
	snap, err := direct.WarmSnapshot()
	if err != nil {
		t.Fatalf("WarmSnapshot: %v", err)
	}
	want := runFingerprint(t, direct, cycles)

	restored := newSystem(t, l, "SPECjbb")
	if err := restored.RestoreWarmSnapshot(snap); err != nil {
		t.Fatalf("RestoreWarmSnapshot: %v", err)
	}

	// The restored system re-serializes to the identical bytes: the warm
	// state survived the round trip exactly.
	snap2, err := restored.WarmSnapshot()
	if err != nil {
		t.Fatalf("re-snapshot: %v", err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Error("restored warm state re-serializes differently")
	}

	got := runFingerprint(t, restored, cycles)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored run diverged: metric %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// TestWarmSnapshotSharedAcrossLayouts pins the property the figure
// pipeline exploits: warm state is independent of the layout and memory
// placement, so one benchmark's warm checkpoint taken on the baseline
// layout restores into a hetero layout and reproduces exactly the run
// that layout's own warmup would have produced.
func TestWarmSnapshotSharedAcrossLayouts(t *testing.T) {
	const entries, cycles = 400, 2000
	hetero := core.NewLayout(core.PlacementDiagonal, 8, 8, true)

	// Warm on the baseline layout...
	base := newSystem(t, core.NewBaseline(8, 8), "TPC-C")
	base.Warmup(entries)
	snap, err := base.WarmSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// ...and on the target layout directly.
	direct := newSystem(t, hetero, "TPC-C")
	direct.Warmup(entries)
	directSnap, err := direct.WarmSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, directSnap) {
		t.Fatal("warm state differs across layouts; sharing is unsound")
	}
	want := runFingerprint(t, direct, cycles)

	restored := newSystem(t, hetero, "TPC-C")
	if err := restored.RestoreWarmSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	got := runFingerprint(t, restored, cycles)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cross-layout restore diverged: metric %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// TestWarmSnapshotRefusesMidRunState pins the quiescence restriction.
func TestWarmSnapshotRefusesMidRunState(t *testing.T) {
	s := newSystem(t, core.NewBaseline(8, 8), "SAP")
	s.Warmup(50)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WarmSnapshot(); err == nil {
		t.Fatal("WarmSnapshot accepted a mid-run system")
	}

	warmed := newSystem(t, core.NewBaseline(8, 8), "SAP")
	warmed.Warmup(50)
	snap, err := warmed.WarmSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Restore refuses an already-warmed target (trace readers would skew).
	if err := warmed.RestoreWarmSnapshot(snap); err == nil {
		t.Fatal("RestoreWarmSnapshot accepted an already-warmed target")
	}

	// Restore refuses a smaller system.
	small := newSystem(t, core.NewBaseline(4, 4), "SAP")
	if err := small.RestoreWarmSnapshot(snap); err == nil {
		t.Fatal("RestoreWarmSnapshot accepted a 16-tile target for a 64-tile checkpoint")
	}

	// Corruption is caught.
	bad := append([]byte(nil), snap...)
	bad[len(bad)/2] ^= 1
	fresh := newSystem(t, core.NewBaseline(8, 8), "SAP")
	if err := fresh.RestoreWarmSnapshot(bad); err == nil {
		t.Fatal("RestoreWarmSnapshot accepted a corrupted checkpoint")
	}
}
