package cmp

import (
	"context"
	"fmt"

	"heteronoc/internal/cmp/cache"
	"heteronoc/internal/cmp/coherence"
	"heteronoc/internal/cmp/mem"
	"heteronoc/internal/core"
	"heteronoc/internal/noc"
	"heteronoc/internal/reqstat"
	"heteronoc/internal/routing"
	"heteronoc/internal/stats"
	"heteronoc/internal/suspend"
	"heteronoc/internal/trace"
)

// Config assembles a CMP system.
type Config struct {
	// Layout selects the network (baseline or a HeteroNoC design).
	Layout core.Layout
	// Routing optionally overrides the layout's default algorithm
	// (table-based routing in the asymmetric-CMP study).
	Routing routing.Algorithm
	// MCTiles hosts one memory controller per listed tile (default: the
	// Table 2 corner placement).
	MCTiles []int
	// Cores configures each core; a single entry broadcasts (default:
	// Table 2 out-of-order cores).
	Cores []CoreConfig
	// Traces supplies each core's instruction stream.
	Traces []trace.Reader
	// LineBytes is the cache line size (Table 2: 128B).
	LineBytes int
	// CoreFreqGHz is the core clock (2.2); the network runs at the
	// layout's frequency, stepped fractionally against the core clock.
	CoreFreqGHz float64
	// Prefetch enables the L1 next-line stream prefetcher on every core.
	Prefetch bool
}

// Tile is one node: core, private L1, and the local L2 bank + directory.
type Tile struct {
	ID   int
	Core *Core
	L1   *coherence.L1
	Home *coherence.Home
}

// System is a running CMP simulation.
type System struct {
	cfg   Config
	Net   *noc.Network
	Tiles []*Tile
	MCs   map[int]*mem.Controller
	// mcOrder fixes the controller visit order (map iteration order is
	// randomized per run; ticking controllers in it would make same-cycle
	// memory responses inject in a run-dependent order).
	mcOrder []int

	now      int64
	netAccum float64
	netRatio float64

	delayQ evtHeap

	// Per-(src,dst) sequence state: the NI reorder buffer delivers each
	// pair's messages in send order even though the wormhole network (and
	// the local/remote path split) can reorder them in flight. The MESI
	// protocol relies on this ordering (see coherence.Msg.Seq).
	seqOut map[pairKey]int64
	seqIn  map[pairKey]int64
	parked map[pairKey]map[int64]coherence.Msg

	// MCReqLatency samples the one-way core-to-controller network latency
	// of memory requests (Figure 13(b)).
	MCReqLatency stats.Summary

	// warmup switches the transport to instantaneous functional delivery
	// (cache warmup before timing measurement). warmQ drains via warmHead
	// so the backing array is reused instead of re-sliced away.
	warmup   bool
	warmQ    []coherence.Msg
	warmHead int

	// msgPool recycles packet envelopes between flush and receive.
	msgPool []*netMsg

	// warmedEntries records how many trace entries per core Warmup (or a
	// restored warm checkpoint) consumed, so WarmSnapshot can replay the
	// readers to the same position on restore.
	warmedEntries int
}

type evt struct {
	at int64
	m  coherence.Msg
	// local marks a message that already took its tile-internal hop and
	// is ready for direct dispatch.
	local bool
}

// evtHeap is a typed min-heap on evt.at. It reproduces container/heap's
// sift algorithm exactly (append+up on push, swap-to-end+down on pop) so
// same-cycle ties pop in the order the interface-based heap established —
// but without boxing an evt into an interface value on every Send.
type evtHeap []evt

func (h *evtHeap) push(e evt) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *evtHeap) pop() evt {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	h.down(0, n)
	e := a[n]
	*h = a[:n]
	return e
}

func (h evtHeap) up(j int) {
	for {
		i := (j - 1) / 2
		if i == j || h[i].at <= h[j].at {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h evtHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].at < h[j1].at {
			j = j2
		}
		if h[i].at <= h[j].at {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// netMsg is a pooled packet envelope: the noc.Packet and its payload
// message live in one reusable allocation. flush takes one from the pool
// when injecting; receive returns it once the message has been copied out.
type netMsg struct {
	pkt noc.Packet
	msg coherence.Msg
}

func (s *System) getNetMsg() *netMsg {
	if n := len(s.msgPool); n > 0 {
		nm := s.msgPool[n-1]
		s.msgPool = s.msgPool[:n-1]
		return nm
	}
	return &netMsg{}
}

func (s *System) putNetMsg(nm *netMsg) {
	s.msgPool = append(s.msgPool, nm)
}

// New builds a CMP system.
func New(cfg Config) (*System, error) {
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 128
	}
	if cfg.CoreFreqGHz == 0 {
		cfg.CoreFreqGHz = 2.20
	}
	n := cfg.Layout.Mesh.NumTerminals()
	if cfg.MCTiles == nil {
		w, h := cfg.Layout.Mesh.Dims()
		cfg.MCTiles = mem.Tiles(mem.PlacementCorners, w, h)
	}
	switch len(cfg.Cores) {
	case n:
	case 1:
		cc := cfg.Cores[0]
		cfg.Cores = make([]CoreConfig, n)
		for i := range cfg.Cores {
			cfg.Cores[i] = cc
		}
	case 0:
		cfg.Cores = make([]CoreConfig, n)
		for i := range cfg.Cores {
			cfg.Cores[i] = LargeCore()
		}
	default:
		return nil, fmt.Errorf("cmp: %d core configs for %d tiles", len(cfg.Cores), n)
	}
	if len(cfg.Traces) != n {
		return nil, fmt.Errorf("cmp: %d traces for %d tiles", len(cfg.Traces), n)
	}

	s := &System{
		cfg:    cfg,
		MCs:    make(map[int]*mem.Controller),
		seqOut: make(map[pairKey]int64),
		seqIn:  make(map[pairKey]int64),
		parked: make(map[pairKey]map[int64]coherence.Msg),
	}
	alg := cfg.Routing
	var net *noc.Network
	var err error
	if alg != nil {
		net, err = cfg.Layout.NetworkWith(alg)
	} else {
		net, err = cfg.Layout.Network()
	}
	if err != nil {
		return nil, err
	}
	s.Net = net
	s.netRatio = cfg.Layout.FreqGHz() / cfg.CoreFreqGHz
	net.SetOnPacket(s.receive)

	homeFor := func(line uint64) int { return int(line % uint64(n)) }
	for _, t := range cfg.MCTiles {
		if s.MCs[t] == nil {
			s.MCs[t] = mem.NewController(t)
			s.mcOrder = append(s.mcOrder, t)
		}
	}
	mcTiles := cfg.MCTiles
	mcFor := func(line uint64) int {
		// Low-order address bits above the cache line select the
		// controller (Section 6).
		return mcTiles[int(line/uint64(n))%len(mcTiles)]
	}

	s.Tiles = make([]*Tile, n)
	for i := 0; i < n; i++ {
		l1c := cache.New(cache.Config{SizeBytes: 32 * 1024, Ways: 4, LineBytes: cfg.LineBytes})
		l2c := cache.New(cache.Config{
			SizeBytes: 1 << 20, Ways: 16, LineBytes: cfg.LineBytes,
			IndexShiftBits: bankShift(n),
		})
		tile := &Tile{ID: i}
		tile.L1 = coherence.NewL1(i, l1c, s, homeFor)
		tile.L1.PrefetchNextLine = cfg.Prefetch
		tile.Home = coherence.NewHome(i, l2c, s, mcFor)
		lineOf := func(addr uint64) uint64 { return addr / uint64(cfg.LineBytes) }
		tile.Core = NewCore(i, cfg.Cores[i], cfg.Traces[i], tile.L1, &s.now, lineOf)
		s.Tiles[i] = tile
	}
	return s, nil
}

// bankShift returns log2(n) rounded up: the low line-address bits consumed
// by bank selection, skipped when indexing within a bank.
func bankShift(n int) uint {
	s := uint(0)
	for 1<<s < n {
		s++
	}
	return s
}

// Now returns the current core cycle.
func (s *System) Now() int64 { return s.now }

// LineBytes returns the configured cache line size (after defaulting).
func (s *System) LineBytes() int { return s.cfg.LineBytes }

// PrefetchEnabled reports whether the L1 next-line prefetcher is on.
func (s *System) PrefetchEnabled() bool { return s.cfg.Prefetch }

type pairKey struct{ src, dst int }

// Send implements coherence.Transport: messages queue for their processing
// delay, then either deliver locally (same tile) or enter the network.
func (s *System) Send(m coherence.Msg, after int64) {
	m.SentAt = s.now
	if s.warmup {
		s.warmQ = append(s.warmQ, m)
		return
	}
	k := pairKey{m.Src, m.Dst}
	m.Seq = s.seqOut[k]
	s.seqOut[k]++
	s.delayQ.push(evt{at: s.now + after, m: m})
}

// dataFlits returns the flit count for a message.
func (s *System) dataFlits(m coherence.Msg) int {
	if m.Type.IsData() {
		return s.cfg.Layout.DataPacketFlits()
	}
	return 1
}

// localHopDelay approximates the tile-internal path (NI + bank port) taken
// when a message's source and destination share a tile.
const localHopDelay = 2

// flush moves matured delayed messages onward: same-tile traffic takes a
// short local hop and dispatches directly, everything else enters the
// network. An injection refusal (dead terminal or severed destination under
// a fault plan) is surfaced rather than panicking: the coherence protocol
// has no drop semantics, so losing a message silently would wedge it.
func (s *System) flush() error {
	for len(s.delayQ) > 0 && s.delayQ[0].at <= s.now {
		e := s.delayQ.pop()
		switch {
		case e.local:
			s.deliverOrdered(e.m)
		case e.m.Src == e.m.Dst:
			s.delayQ.push(evt{at: s.now + localHopDelay, m: e.m, local: true})
		default:
			nm := s.getNetMsg()
			nm.msg = e.m
			nm.pkt = noc.Packet{
				Src:      e.m.Src,
				Dst:      e.m.Dst,
				NumFlits: s.dataFlits(e.m),
				Class:    int(e.m.Type),
				Payload:  nm,
			}
			if err := s.Net.TryInject(&nm.pkt); err != nil {
				s.putNetMsg(nm)
				return fmt.Errorf("cmp: injecting %v %d->%d: %w", e.m.Type, e.m.Src, e.m.Dst, err)
			}
		}
	}
	return nil
}

// receive handles a packet delivered by the network. The envelope is
// recycled immediately: once the message is copied out, nothing else
// references the packet (CMP runs never arm fault plans, so the network
// holds no dangling duplicates).
func (s *System) receive(p *noc.Packet) {
	nm := p.Payload.(*netMsg)
	m := nm.msg
	s.putNetMsg(nm)
	s.deliverOrdered(m)
}

// deliverOrdered is the NI reorder buffer: it releases each (src,dst)
// pair's messages in sequence order, parking early arrivals.
func (s *System) deliverOrdered(m coherence.Msg) {
	k := pairKey{m.Src, m.Dst}
	if m.Seq != s.seqIn[k] {
		pk := s.parked[k]
		if pk == nil {
			pk = make(map[int64]coherence.Msg)
			s.parked[k] = pk
		}
		pk[m.Seq] = m
		return
	}
	s.dispatch(m)
	s.seqIn[k]++
	for {
		pk := s.parked[k]
		next, ok := pk[s.seqIn[k]]
		if !ok {
			break
		}
		delete(pk, s.seqIn[k])
		s.dispatch(next)
		s.seqIn[k]++
	}
}

// dispatch routes a protocol message to its handler.
func (s *System) dispatch(m coherence.Msg) {
	switch m.Type {
	case coherence.MemRead, coherence.MemWrite:
		mc := s.MCs[m.Dst]
		if mc == nil {
			panic(fmt.Sprintf("cmp: message %v to tile %d which has no memory controller", m.Type, m.Dst))
		}
		s.MCReqLatency.Add(float64(s.now - m.SentAt))
		mc.EnqueueLine(m.Line, m.Src, m.Type == coherence.MemWrite, s.now)
	case coherence.GetS, coherence.GetM, coherence.PutM, coherence.InvAck,
		coherence.FwdAckData, coherence.FwdNoData, coherence.MemData:
		s.Tiles[m.Dst].Home.Handle(m)
	default:
		s.Tiles[m.Dst].L1.Handle(m)
	}
}

// Warmup functionally streams entriesPerCore trace records per core
// through the cache hierarchy with an instantaneous transport, populating
// L1s, L2 banks and the directory before timing measurement begins — the
// standard answer to the multi-million-cycle cold-start a 400-cycle DRAM
// would otherwise impose. Trace generators keep their state, so timing
// simulation continues the same streams.
func (s *System) Warmup(entriesPerCore int) {
	s.warmup = true
	lineBytes := uint64(s.cfg.LineBytes)
	for i := 0; i < entriesPerCore; i++ {
		for _, tile := range s.Tiles {
			e := s.cfg.Traces[tile.ID].Next()
			tile.L1.Access(e.Addr/lineBytes, e.Write, func() {})
			s.drainWarm()
		}
	}
	s.warmup = false
	s.warmedEntries += entriesPerCore
	s.ResetStats()
}

// drainWarm delivers warmup messages synchronously; memory requests are
// answered on the spot.
func (s *System) drainWarm() {
	for s.warmHead < len(s.warmQ) {
		m := s.warmQ[s.warmHead]
		s.warmHead++
		switch m.Type {
		case coherence.MemRead:
			s.warmQ = append(s.warmQ, coherence.Msg{
				Type: coherence.MemData, Line: m.Line, Src: m.Dst, Dst: m.Src,
			})
		case coherence.MemWrite:
			// Functional write-back: nothing to do.
		case coherence.GetS, coherence.GetM, coherence.PutM, coherence.InvAck,
			coherence.FwdAckData, coherence.FwdNoData, coherence.MemData:
			s.Tiles[m.Dst].Home.Handle(m)
		default:
			s.Tiles[m.Dst].L1.Handle(m)
		}
	}
	s.warmQ = s.warmQ[:0]
	s.warmHead = 0
}

// ResetStats clears all measurement state (after warmup).
func (s *System) ResetStats() {
	s.Net.ResetStats()
	s.MCReqLatency = stats.Summary{}
	for _, tile := range s.Tiles {
		tile.L1.Hits, tile.L1.Misses, tile.L1.Coalesces, tile.L1.Blocks = 0, 0, 0, 0
		tile.L1.Upgrades, tile.L1.Invalidations = 0, 0
		tile.Home.L2Hits, tile.Home.L2Misses, tile.Home.Recalls = 0, 0, 0
		tile.Home.MemReads, tile.Home.MemWrites = 0, 0
		tile.Core.Insts, tile.Core.Cycles, tile.Core.StallCycles = 0, 0, 0
		tile.Core.MissRTT = stats.Summary{}
	}
	for _, mc := range s.MCs {
		mc.Reads, mc.Writes, mc.TotalQueueDelay, mc.TotalServiceTime, mc.Completed = 0, 0, 0, 0, 0
	}
}

// Step advances the system by one core cycle.
func (s *System) Step() error {
	s.now++
	if err := s.flush(); err != nil {
		return err
	}
	// Memory controllers, in fixed order so same-cycle responses always
	// inject identically (determinism gate).
	for _, t := range s.mcOrder {
		mc := s.MCs[t]
		for _, r := range mc.Tick(s.now) {
			if r.Write {
				continue
			}
			s.Send(coherence.Msg{Type: coherence.MemData, Line: r.Line, Src: t, Dst: r.Home}, 0)
		}
	}
	// Network at its own clock.
	s.netAccum += s.netRatio
	for s.netAccum >= 1 {
		s.netAccum--
		if err := s.Net.Step(); err != nil {
			return err
		}
	}
	// Cores.
	for _, tile := range s.Tiles {
		tile.Core.Step()
	}
	return nil
}

// Run advances the system for the given number of core cycles.
func (s *System) Run(cycles int64) error {
	return s.RunCtx(context.Background(), cycles)
}

// RunCtx is Run with cooperative cancellation: the context is consulted
// every traffic.CancelBatch-equivalent batch of core cycles (256), so a
// cancelled CMP study stops within one batch instead of finishing its
// full cycle budget. CMP runs do not checkpoint-suspend mid-flight —
// their completed results are amortized by the run cache instead — so a
// suspend request simply stops them via the context alongside
// cancellation.
func (s *System) RunCtx(ctx context.Context, cycles int64) error {
	const batch = 256
	sus := suspend.FromContext(ctx)
	since := int64(0)
	for i := int64(0); i < cycles; i++ {
		if err := s.Step(); err != nil {
			return fmt.Errorf("cmp: cycle %d: %w", s.now, err)
		}
		if since++; since >= batch {
			reqstat.AddCycles(ctx, since)
			since = 0
			if err := ctx.Err(); err != nil {
				return err
			}
			if sus.Requested() {
				return suspend.ErrSuspended
			}
		}
	}
	reqstat.AddCycles(ctx, since)
	return nil
}

// AvgIPC returns the mean per-core IPC.
func (s *System) AvgIPC() float64 {
	var sum float64
	for _, t := range s.Tiles {
		sum += t.Core.IPC()
	}
	return sum / float64(len(s.Tiles))
}

// MissRTT aggregates the round-trip miss latency across cores (Figure
// 13(a) measures this from request generation to response arrival).
func (s *System) MissRTT() stats.Summary {
	var out stats.Summary
	for _, t := range s.Tiles {
		out.Merge(t.Core.MissRTT)
	}
	return out
}

// NetStats exposes the network statistics.
func (s *System) NetStats() *noc.Stats { return s.Net.Stats() }
