package cache

// Checkpoint support. A cache serializes its complete replacement state —
// every valid line with tag, MESI state and LRU stamp, plus the global
// LRU tick and the cache-level counters — so a restored cache makes
// exactly the same hit/miss/victim decisions as the original. Payloads
// (directory entries on L2 banks, the prefetch tag on L1s) are delegated
// to controller-supplied codec functions.

import (
	"fmt"

	"heteronoc/internal/ckpt"
)

// EncodeState writes the cache's dynamic state. encPayload serializes a
// non-nil line payload; it may be nil when the owner never attaches one.
func (c *Cache) EncodeState(w *ckpt.Writer, encPayload func(*ckpt.Writer, any) error) error {
	w.Int(len(c.lines))
	w.I64(c.tick)
	w.I64(c.Hits)
	w.I64(c.Misses)
	w.I64(c.Evictions)
	valid := 0
	for i := range c.lines {
		if c.lines[i].State.Valid() {
			valid++
		}
	}
	w.Int(valid)
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.State.Valid() {
			continue
		}
		w.Int(i)
		w.U64(ln.Tag)
		w.U64(uint64(ln.State))
		w.I64(ln.lru)
		if ln.Payload == nil {
			w.Bool(false)
			continue
		}
		if encPayload == nil {
			return fmt.Errorf("cache: line %d carries a payload but no payload encoder was given", i)
		}
		w.Bool(true)
		if err := encPayload(w, ln.Payload); err != nil {
			return fmt.Errorf("cache: encoding payload of line %d: %w", i, err)
		}
	}
	return nil
}

// DecodeState loads state written by EncodeState into c, which must have
// the same geometry. All lines are invalidated first.
func (c *Cache) DecodeState(r *ckpt.Reader, decPayload func(*ckpt.Reader) (any, error)) error {
	if n := r.Int(); n != len(c.lines) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("cache: checkpoint has %d lines, target has %d", n, len(c.lines))
	}
	c.tick = r.I64()
	c.Hits = r.I64()
	c.Misses = r.I64()
	c.Evictions = r.I64()
	for i := range c.lines {
		c.lines[i] = Line{}
	}
	valid := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	for k := 0; k < valid; k++ {
		i := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if i < 0 || i >= len(c.lines) {
			return fmt.Errorf("cache: line index %d outside %d lines", i, len(c.lines))
		}
		ln := &c.lines[i]
		ln.Tag = r.U64()
		ln.State = State(r.U64())
		ln.lru = r.I64()
		if hasPayload := r.Bool(); hasPayload {
			if decPayload == nil {
				return fmt.Errorf("cache: line %d carries a payload but no payload decoder was given", i)
			}
			p, err := decPayload(r)
			if err != nil {
				return fmt.Errorf("cache: decoding payload of line %d: %w", i, err)
			}
			ln.Payload = p
		}
		if !ln.State.Valid() {
			return fmt.Errorf("cache: line %d serialized with invalid state", i)
		}
	}
	return r.Err()
}
