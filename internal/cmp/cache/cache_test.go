package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newSmall() *Cache {
	return New(Config{SizeBytes: 4096, Ways: 4, LineBytes: 64}) // 16 sets
}

func TestLookupMissThenHit(t *testing.T) {
	c := newSmall()
	if _, ok := c.Lookup(5); ok {
		t.Fatal("hit on empty cache")
	}
	c.Insert(5, Shared, nil)
	l, ok := c.Lookup(5)
	if !ok || l.Tag != 5 || l.State != Shared {
		t.Fatalf("lookup after insert: %+v %v", l, ok)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := newSmall()
	// Fill one set: addresses congruent mod 16.
	for i := 0; i < 4; i++ {
		c.Insert(uint64(16*i), Shared, nil)
	}
	// Touch line 0 to make it MRU; line 16 becomes LRU.
	c.Lookup(0)
	ev, had := c.Insert(64, Shared, nil)
	if !had || ev.Tag != 16 {
		t.Fatalf("evicted %+v (had=%v), want tag 16", ev, had)
	}
	if _, ok := c.Lookup(0); !ok {
		t.Error("MRU line evicted")
	}
}

func TestInsertPrefersInvalidWay(t *testing.T) {
	c := newSmall()
	c.Insert(0, Shared, nil)
	if _, had := c.Insert(16, Shared, nil); had {
		t.Error("evicted despite free ways")
	}
}

func TestInvalidate(t *testing.T) {
	c := newSmall()
	c.Insert(7, Modified, "meta")
	old, ok := c.Invalidate(7)
	if !ok || old.State != Modified || old.Payload != "meta" {
		t.Fatalf("invalidate returned %+v %v", old, ok)
	}
	if _, ok := c.Peek(7); ok {
		t.Error("line still present after invalidate")
	}
	if _, ok := c.Invalidate(7); ok {
		t.Error("double invalidate succeeded")
	}
}

func TestDoubleInsertPanics(t *testing.T) {
	c := newSmall()
	c.Insert(3, Shared, nil)
	defer func() {
		if recover() == nil {
			t.Error("double insert did not panic")
		}
	}()
	c.Insert(3, Exclusive, nil)
}

func TestLineAddr(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 128})
	if got := c.LineAddr(0x1234); got != 0x1234>>7 {
		t.Errorf("LineAddr = %#x", got)
	}
	if c.LineBytes() != 128 {
		t.Error("line bytes wrong")
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	c := newSmall()
	rng := rand.New(rand.NewSource(1))
	f := func(addr uint16) bool {
		la := uint64(addr % 512)
		if _, ok := c.Peek(la); !ok {
			c.Insert(la, Shared, nil)
		}
		return c.Occupancy() <= 64
	}
	if err := quick.Check(f, &quick.Config{Rand: rng, MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPeekDoesNotAffectStats(t *testing.T) {
	c := newSmall()
	c.Insert(1, Shared, nil)
	h, m := c.Hits, c.Misses
	c.Peek(1)
	c.Peek(2)
	if c.Hits != h || c.Misses != m {
		t.Error("peek changed statistics")
	}
}

func TestForEach(t *testing.T) {
	c := newSmall()
	for i := uint64(0); i < 10; i++ {
		c.Insert(i, Shared, nil)
	}
	n := 0
	c.ForEach(func(l *Line) { n++ })
	if n != 10 {
		t.Errorf("visited %d lines, want 10", n)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Error("state strings wrong")
	}
	if Invalid.Valid() || !Modified.Valid() {
		t.Error("validity wrong")
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{SizeBytes: 0, Ways: 4, LineBytes: 64},
		{SizeBytes: 4096, Ways: 3, LineBytes: 64},  // 64 lines not divisible by 3
		{SizeBytes: 4096, Ways: 4, LineBytes: 100}, // not a power of two
	} {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Errorf("config %+v accepted", cfg)
		}()
	}
}
