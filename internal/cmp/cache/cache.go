// Package cache implements the set-associative write-back caches of the
// CMP system model: per-core private L1s and the shared banked L2, with
// true-LRU replacement and MSHR-style miss tracking support hooks.
package cache

import "fmt"

// State is a MESI line state.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Valid reports whether the state holds data.
func (s State) Valid() bool { return s != Invalid }

// Line is one cache line. Payload carries controller-specific metadata
// (the L2 banks attach directory entries here).
type Line struct {
	Tag     uint64
	State   State
	Payload any

	lru int64
}

// Config sizes a cache.
type Config struct {
	SizeBytes int
	Ways      int
	LineBytes int
	// IndexShiftBits drops low line-address bits before set indexing.
	// Banked caches whose bank is selected by the low bits (the L2: home
	// tile = line mod 64) must skip those bits or only 1/64th of their
	// sets would ever be used.
	IndexShiftBits uint
}

// Cache is a set-associative array indexed by line address (byte address
// >> line shift happens internally). The line array is one contiguous
// set-major slice — the set count is a power of two, so indexing is a
// shift-and-mask (no divide) and a whole set sits in adjacent hardware
// cache lines, which is what keeps the lookup scan cheap on the warmup
// and coherence hot paths.
type Cache struct {
	cfg       Config
	sets      int
	setMask   uint64
	ways      uint64
	lineShift uint
	lines     []Line // sets × ways, set-major
	tick      int64

	// Statistics.
	Hits, Misses, Evictions int64
}

// New builds a cache. Sizes must divide evenly.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", cfg))
	}
	linesTotal := cfg.SizeBytes / cfg.LineBytes
	if linesTotal%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache: %d lines not divisible by %d ways", linesTotal, cfg.Ways))
	}
	sets := linesTotal / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d must be a power of two", sets))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	if 1<<shift != cfg.LineBytes {
		panic("cache: line size must be a power of two")
	}
	return &Cache{
		cfg: cfg, sets: sets, setMask: uint64(sets - 1), ways: uint64(cfg.Ways),
		lineShift: shift,
		lines:     make([]Line, sets*cfg.Ways),
	}
}

// LineAddr converts a byte address to a line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// base returns the index of lineAddr's set in the flat arrays.
func (c *Cache) base(lineAddr uint64) uint64 {
	return ((lineAddr >> c.cfg.IndexShiftBits) & c.setMask) * c.ways
}

// find returns the index of the valid line holding lineAddr, or false.
func (c *Cache) find(lineAddr uint64) (uint64, bool) {
	base := c.base(lineAddr)
	set := c.lines[base : base+c.ways]
	for i := range set {
		// Tag first: at most one way matches, so the state check (which
		// guards invalid ways, whose tags are zeroed) almost never runs.
		if set[i].Tag == lineAddr && set[i].State.Valid() {
			return base + uint64(i), true
		}
	}
	return 0, false
}

// Lookup returns the line holding lineAddr, updating LRU on hit. The
// returned pointer stays valid until the line is evicted.
func (c *Cache) Lookup(lineAddr uint64) (*Line, bool) {
	if i, ok := c.find(lineAddr); ok {
		c.tick++
		c.lines[i].lru = c.tick
		c.Hits++
		return &c.lines[i], true
	}
	c.Misses++
	return nil, false
}

// Peek is Lookup without LRU update or hit/miss accounting.
func (c *Cache) Peek(lineAddr uint64) (*Line, bool) {
	if i, ok := c.find(lineAddr); ok {
		return &c.lines[i], true
	}
	return nil, false
}

// victimIdx returns the way Insert would replace in lineAddr's set: the
// first invalid way when one exists, otherwise the LRU way (earliest way
// wins ties, matching the historical scan order).
func (c *Cache) victimIdx(lineAddr uint64) uint64 {
	base := c.base(lineAddr)
	set := c.lines[base : base+c.ways]
	vi := 0
	for i := range set {
		if !set[i].State.Valid() {
			return base + uint64(i)
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	return base + uint64(vi)
}

// Victim returns the line that Insert would replace: an invalid way when
// one exists, otherwise the LRU way. It does not modify the cache.
func (c *Cache) Victim(lineAddr uint64) *Line {
	return &c.lines[c.victimIdx(lineAddr)]
}

// VictimWhere returns the replacement candidate for lineAddr among ways
// whose tag passes the filter (invalid ways always pass): the LRU eligible
// way, or nil when every way is filtered out. Controllers use it to avoid
// evicting lines with in-flight transactions.
func (c *Cache) VictimWhere(lineAddr uint64, ok func(tag uint64) bool) *Line {
	base := c.base(lineAddr)
	set := c.lines[base : base+c.ways]
	var victim *Line
	for i := range set {
		if !set[i].State.Valid() {
			return &set[i]
		}
		if !ok(set[i].Tag) {
			continue
		}
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

// Insert places lineAddr into the cache in the given state, returning the
// evicted line (by value) when a valid line had to be replaced. The caller
// is responsible for writing back / recalling the victim first — use
// Victim to inspect it before inserting.
func (c *Cache) Insert(lineAddr uint64, st State, payload any) (evicted Line, hadVictim bool) {
	if _, ok := c.Peek(lineAddr); ok {
		panic(fmt.Sprintf("cache: double insert of line %#x", lineAddr))
	}
	i := c.victimIdx(lineAddr)
	if c.lines[i].State.Valid() {
		evicted, hadVictim = c.lines[i], true
		c.Evictions++
	}
	c.tick++
	c.lines[i] = Line{Tag: lineAddr, State: st, Payload: payload, lru: c.tick}
	return evicted, hadVictim
}

// Invalidate drops a line, returning its prior contents.
func (c *Cache) Invalidate(lineAddr uint64) (Line, bool) {
	if i, ok := c.find(lineAddr); ok {
		old := c.lines[i]
		c.lines[i] = Line{}
		return old, true
	}
	return Line{}, false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].State.Valid() {
			n++
		}
	}
	return n
}

// ForEach visits every valid line.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].State.Valid() {
			fn(&c.lines[i])
		}
	}
}
