package cmp

import (
	"bytes"
	"runtime"
	"testing"

	"heteronoc/internal/core"
	"heteronoc/internal/trace"
)

// countingChunkReader counts Next() calls while keeping the embedded
// reader's Stateful/Seeker capabilities visible — the probe that proves
// restore landed by state, not by replay.
type countingChunkReader struct {
	*trace.ChunkReader
	nexts int
}

func (c *countingChunkReader) Next() trace.Entry {
	c.nexts++
	return c.ChunkReader.Next()
}

// statelessReader hides every capability except Next, forcing the
// restore path that replays the recorded entry count — the control the
// state-restore path must match bit for bit.
type statelessReader struct{ r trace.Reader }

func (s statelessReader) Next() trace.Entry { return s.r.Next() }

// chunkBenchFiles records nEntries of each core's generator stream into
// an in-memory HNTR2 file.
func chunkBenchFiles(t *testing.T, bench string, cores, nEntries int) [][]byte {
	t.Helper()
	p, err := trace.ProfileByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, cores)
	for i := range out {
		var buf bytes.Buffer
		if err := trace.RecordChunked(&buf, trace.NewGenerator(p, i, 128), nEntries, 512); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

func openChunkTraces(t *testing.T, files [][]byte, wrap func(*trace.ChunkReader) trace.Reader) []trace.Reader {
	t.Helper()
	out := make([]trace.Reader, len(files))
	for i, data := range files {
		cr, err := trace.NewChunkReader(bytes.NewReader(data), int64(len(data)), false)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = wrap(cr)
	}
	return out
}

// TestWarmRestoreSeekableNoReplay is the streaming-pipeline acceptance
// test: with file-backed chunked traces, warm-checkpoint restore must
// reach the post-warmup position with zero Next() calls (one Seek per
// reader, not an O(warmup) replay), and the restored system must produce
// fingerprints bit-identical to a direct warmup AND to the forced-replay
// control, with sharded ticking at 0, 1 and GOMAXPROCS workers.
func TestWarmRestoreSeekableNoReplay(t *testing.T) {
	const entries, cycles = 400, 2000
	l := core.NewBaseline(8, 8)
	files := chunkBenchFiles(t, "SPECjbb", l.Mesh.NumTerminals(), 4000)

	newSys := func(traces []trace.Reader) *System {
		s, err := New(Config{Layout: l, Traces: traces})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Reference: direct warmup on file-backed traces.
	direct := newSys(openChunkTraces(t, files, func(c *trace.ChunkReader) trace.Reader { return c }))
	direct.Warmup(entries)
	snap, err := direct.WarmSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := runFingerprint(t, direct, cycles)

	workerSet := []int{0, 1, runtime.GOMAXPROCS(0)}
	for _, workers := range workerSet {
		// State-restore path: counting readers prove no replay happened.
		counters := make([]*countingChunkReader, 0, len(files))
		traces := openChunkTraces(t, files, func(c *trace.ChunkReader) trace.Reader {
			cc := &countingChunkReader{ChunkReader: c}
			counters = append(counters, cc)
			return cc
		})
		restored := newSys(traces)
		if err := restored.RestoreWarmSnapshot(snap); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, cc := range counters {
			if cc.nexts != 0 {
				t.Fatalf("workers=%d: reader %d replayed %d entries on restore", workers, i, cc.nexts)
			}
			if cc.Pos() != entries {
				t.Fatalf("workers=%d: reader %d at %d, want %d", workers, i, cc.Pos(), entries)
			}
		}
		if workers > 0 {
			restored.Net.SetShardWorkers(workers)
		}
		got := runFingerprint(t, restored, cycles)
		restored.Net.Close()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: state-restore run diverged: metric %d: got %d want %d", workers, i, got[i], want[i])
			}
		}

		// Forced-replay control: same checkpoint, readers stripped to bare
		// Next. Must land on the identical stream position and fingerprint.
		control := newSys(openChunkTraces(t, files, func(c *trace.ChunkReader) trace.Reader {
			return statelessReader{r: c}
		}))
		if err := control.RestoreWarmSnapshot(snap); err != nil {
			t.Fatalf("workers=%d control: %v", workers, err)
		}
		if workers > 0 {
			control.Net.SetShardWorkers(workers)
		}
		cgot := runFingerprint(t, control, cycles)
		control.Net.Close()
		for i := range want {
			if cgot[i] != want[i] {
				t.Fatalf("workers=%d: replay-control run diverged: metric %d: got %d want %d", workers, i, cgot[i], want[i])
			}
		}
	}
}

// TestWarmRestoreAcceptsV1Checkpoints pins backward compatibility: a
// version-1 checkpoint (no reader-state section) still restores via the
// replay path and reproduces the direct-warmup run exactly.
func TestWarmRestoreAcceptsV1Checkpoints(t *testing.T) {
	const entries, cycles = 300, 1500
	l := core.NewBaseline(4, 4)

	direct := newSystem(t, l, "ferret")
	direct.Warmup(entries)
	v1, err := direct.warmSnapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	want := runFingerprint(t, direct, cycles)

	restored := newSystem(t, l, "ferret")
	if err := restored.RestoreWarmSnapshot(v1); err != nil {
		t.Fatalf("v1 restore: %v", err)
	}
	got := runFingerprint(t, restored, cycles)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("v1 restore diverged: metric %d: got %d want %d", i, got[i], want[i])
		}
	}
}
