package cmp

import "heteronoc/internal/obs"

// RegisterMetrics registers the CMP system's counters and gauges in reg and
// delegates to the underlying network's RegisterMetrics, so one registry
// exposes the full stack: cores, caches, memory controllers and the NoC.
// All instruments are pull-based closures over live simulator state; read
// them between Steps (or serve cached expositions via obs.Snapshot).
func (s *System) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	s.Net.RegisterMetrics(reg, labels...)

	reg.RegisterGauge("cmp_cycle", "current core cycle", labels,
		func() float64 { return float64(s.now) })
	reg.RegisterGauge("cmp_avg_ipc", "mean per-core IPC", labels, s.AvgIPC)

	tileSum := func(f func(t *Tile) int64) func() float64 {
		return func() float64 {
			var sum int64
			for _, t := range s.Tiles {
				sum += f(t)
			}
			return float64(sum)
		}
	}
	reg.RegisterCounter("cmp_instructions_total", "instructions retired across cores", labels,
		tileSum(func(t *Tile) int64 { return t.Core.Insts }))
	reg.RegisterCounter("cmp_core_stall_cycles_total", "cycles cores spent stalled on misses", labels,
		tileSum(func(t *Tile) int64 { return t.Core.StallCycles }))
	reg.RegisterCounter("cmp_l1_hits_total", "L1 hits", labels,
		tileSum(func(t *Tile) int64 { return t.L1.Hits }))
	reg.RegisterCounter("cmp_l1_misses_total", "L1 misses", labels,
		tileSum(func(t *Tile) int64 { return t.L1.Misses }))
	reg.RegisterCounter("cmp_l2_hits_total", "L2 bank hits", labels,
		tileSum(func(t *Tile) int64 { return t.Home.L2Hits }))
	reg.RegisterCounter("cmp_l2_misses_total", "L2 bank misses", labels,
		tileSum(func(t *Tile) int64 { return t.Home.L2Misses }))

	mcSum := func(f func(reads, writes int64) int64) func() float64 {
		return func() float64 {
			var sum int64
			for _, t := range s.mcOrder {
				mc := s.MCs[t]
				sum += f(mc.Reads, mc.Writes)
			}
			return float64(sum)
		}
	}
	reg.RegisterCounter("cmp_mem_reads_total", "memory-controller reads", labels,
		mcSum(func(r, w int64) int64 { return r }))
	reg.RegisterCounter("cmp_mem_writes_total", "memory-controller writes", labels,
		mcSum(func(r, w int64) int64 { return w }))

	reg.RegisterGauge("cmp_miss_rtt_cycles_mean", "mean L1-miss round-trip latency", labels,
		func() float64 { rtt := s.MissRTT(); return rtt.Mean() })
	reg.RegisterGauge("cmp_mc_req_latency_cycles_mean", "mean core-to-MC network latency", labels,
		func() float64 { return s.MCReqLatency.Mean() })
}
