// Package cmp assembles the full CMP system of Table 2: 64 tiles (core +
// private L1 + shared L2 bank + router) on the HeteroNoC, a two-level MESI
// directory protocol, and memory controllers — the substrate for the
// paper's system-level evaluation (Sections 5.2-7).
package cmp

import (
	"heteronoc/internal/cmp/coherence"
	"heteronoc/internal/stats"
	"heteronoc/internal/trace"
)

// CoreConfig sizes a core model.
type CoreConfig struct {
	// Width is the issue/commit width in instructions per cycle.
	Width int
	// Window bounds how many instructions may commit past the oldest
	// outstanding miss (reorder-buffer reach).
	Window int
	// L1HitDelay stalls the pipeline on loads that hit (in-order cores
	// cannot hide the 2-cycle L1; OoO cores can).
	L1HitDelay int
}

// LargeCore is the Table 2 out-of-order core: 3-wide, 64-entry window.
func LargeCore() CoreConfig { return CoreConfig{Width: 3, Window: 64, L1HitDelay: 0} }

// SmallCore is the single-issue in-order core of the asymmetric CMP.
func SmallCore() CoreConfig { return CoreConfig{Width: 1, Window: 4, L1HitDelay: 1} }

// Core is a trace-driven processor model: it commits gap instructions at
// its width, issues memory operations against the L1, continues past
// misses up to its window, and stalls when MSHRs or the window fill up.
type Core struct {
	id   int
	cfg  CoreConfig
	tr   trace.Reader
	l1   *coherence.L1
	now  *int64 // system clock
	line func(addr uint64) uint64

	gapLeft     int
	havePending bool
	pending     trace.Entry
	outstanding []int64 // instruction positions of in-flight misses (ascending)
	hitStall    int
	cbFree      []*missCB // completion-callback pool (see issueMem)

	// Statistics.
	Insts       int64
	Cycles      int64
	StallCycles int64
	MissRTT     stats.Summary // round-trip miss latency in core cycles
}

// NewCore builds a core bound to its L1 and trace.
func NewCore(id int, cfg CoreConfig, tr trace.Reader, l1 *coherence.L1, clock *int64, line func(uint64) uint64) *Core {
	return &Core{id: id, cfg: cfg, tr: tr, l1: l1, now: clock, line: line}
}

// IPC returns committed instructions per cycle.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Insts) / float64(c.Cycles)
}

// Step advances the core by one cycle.
func (c *Core) Step() {
	c.Cycles++
	if c.hitStall > 0 {
		c.hitStall--
		c.StallCycles++
		return
	}
	budget := c.cfg.Width
	progressed := false
	for budget > 0 {
		if len(c.outstanding) > 0 && c.Insts-c.outstanding[0] >= int64(c.cfg.Window) {
			break // window full behind the oldest miss
		}
		if c.gapLeft > 0 {
			n := budget
			if c.gapLeft < n {
				n = c.gapLeft
			}
			c.gapLeft -= n
			c.Insts += int64(n)
			budget -= n
			progressed = true
			continue
		}
		if !c.havePending {
			c.pending = c.tr.Next()
			c.havePending = true
			c.gapLeft = c.pending.Gap
			if c.gapLeft > 0 {
				continue
			}
		}
		if !c.issueMem(&budget) {
			break
		}
		progressed = true
	}
	if !progressed {
		c.StallCycles++
	}
}

// missCB is a pooled completion context: it replaces the closure issueMem
// used to allocate per access. fn is the method value handed to L1.Access,
// bound once when the context is first created and reused thereafter.
type missCB struct {
	c        *Core
	issuePos int64
	issueAt  int64
	// sync is true while L1.Access is still on the stack: a hit's callback
	// runs in place and must not do miss bookkeeping.
	sync bool
	fn   func()
}

func (c *Core) getCB() *missCB {
	if n := len(c.cbFree); n > 0 {
		cb := c.cbFree[n-1]
		c.cbFree = c.cbFree[:n-1]
		return cb
	}
	cb := &missCB{c: c}
	cb.fn = cb.complete
	return cb
}

func (c *Core) putCB(cb *missCB) { c.cbFree = append(c.cbFree, cb) }

func (cb *missCB) complete() {
	c := cb.c
	c.Insts++
	if cb.sync {
		return // L1 hit: the operation committed in place; issueMem frees cb
	}
	c.MissRTT.Add(float64(*c.now - cb.issueAt))
	for i, p := range c.outstanding {
		if p == cb.issuePos {
			c.outstanding = append(c.outstanding[:i], c.outstanding[i+1:]...)
			break
		}
	}
	c.putCB(cb)
}

// issueMem tries to issue the pending memory operation. It reports whether
// the core may keep executing this cycle.
func (c *Core) issueMem(budget *int) bool {
	e := c.pending
	cb := c.getCB()
	cb.issuePos = c.Insts
	cb.issueAt = *c.now
	cb.sync = true
	res := c.l1.Access(c.line(e.Addr), e.Write, cb.fn)
	cb.sync = false
	switch res {
	case coherence.Hit:
		c.putCB(cb)
		c.havePending = false
		*budget--
		c.hitStall = c.cfg.L1HitDelay
		return c.hitStall == 0
	case coherence.MissIssued, coherence.Coalesced:
		c.havePending = false
		c.outstanding = append(c.outstanding, cb.issuePos)
		*budget--
		return true
	default: // Blocked: the L1 kept nothing; retry next cycle
		c.putCB(cb)
		return false
	}
}
