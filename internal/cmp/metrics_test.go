package cmp

import (
	"strings"
	"testing"

	"heteronoc/internal/core"
	"heteronoc/internal/obs"
)

func TestSystemRegisterMetrics(t *testing.T) {
	s := newSystem(t, core.NewBaseline(8, 8), "SPECjbb")
	if err := s.Run(2000); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	out := string(reg.Exposition())
	if _, err := obs.ValidatePrometheusText(out); err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	// The full stack must be present: CMP counters and delegated NoC series.
	for _, want := range []string{
		"cmp_cycle 2000",
		"cmp_avg_ipc ",
		"cmp_instructions_total ",
		"cmp_l1_misses_total ",
		"cmp_mem_reads_total ",
		"noc_packets_injected_total ",
		`noc_router_link_utilization{router="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Spot-check one value against the direct accessor.
	var insts int64
	for _, tile := range s.Tiles {
		insts += tile.Core.Insts
	}
	if insts == 0 {
		t.Fatal("no instructions to cross-check")
	}
}
