package coherence

import (
	"math/rand"
	"testing"

	"heteronoc/internal/cmp/cache"
)

// chaosFabric delivers messages in a randomized global order while
// preserving per-(src,dst) FIFO order — exactly the guarantee the real
// system's NI reorder buffers provide over the unordered wormhole network.
// Memory requests are also delayed randomly.
type chaosFabric struct {
	t     *testing.T
	rng   *rand.Rand
	l1s   []*L1
	homes []*Home
	mcT   int
	pairs map[[2]int][]Msg
	keys  [][2]int
}

func newChaosFabric(t *testing.T, n int, seed int64) *chaosFabric {
	f := &chaosFabric{t: t, rng: rand.New(rand.NewSource(seed)), mcT: n, pairs: map[[2]int][]Msg{}}
	homeFor := func(line uint64) int { return int(line) % n }
	mcFor := func(line uint64) int { return f.mcT }
	for i := 0; i < n; i++ {
		l1c := cache.New(cache.Config{SizeBytes: 8 * 1024, Ways: 2, LineBytes: 128})
		f.l1s = append(f.l1s, NewL1(i, l1c, f, homeFor))
		l2c := cache.New(cache.Config{SizeBytes: 64 * 1024, Ways: 4, LineBytes: 128})
		f.homes = append(f.homes, NewHome(i, l2c, f, mcFor))
	}
	return f
}

func (f *chaosFabric) Send(m Msg, after int64) {
	k := [2]int{m.Src, m.Dst}
	if len(f.pairs[k]) == 0 {
		f.keys = append(f.keys, k)
	}
	f.pairs[k] = append(f.pairs[k], m)
}

// deliverOne pops the head of a random pair queue.
func (f *chaosFabric) deliverOne() bool {
	for len(f.keys) > 0 {
		i := f.rng.Intn(len(f.keys))
		k := f.keys[i]
		q := f.pairs[k]
		if len(q) == 0 {
			f.keys[i] = f.keys[len(f.keys)-1]
			f.keys = f.keys[:len(f.keys)-1]
			continue
		}
		m := q[0]
		f.pairs[k] = q[1:]
		f.route(m)
		return true
	}
	return false
}

func (f *chaosFabric) route(m Msg) {
	switch {
	case m.Dst == f.mcT:
		if m.Type == MemRead {
			f.Send(Msg{Type: MemData, Line: m.Line, Src: f.mcT, Dst: m.Src}, 0)
		}
	case m.Type == GetS || m.Type == GetM || m.Type == PutM || m.Type == InvAck ||
		m.Type == FwdAckData || m.Type == FwdNoData || m.Type == MemData:
		f.homes[m.Dst].Handle(m)
	default:
		f.l1s[m.Dst].Handle(m)
	}
}

func (f *chaosFabric) drain(max int) {
	for i := 0; i < max; i++ {
		if !f.deliverOne() {
			return
		}
	}
	f.t.Fatal("protocol did not quiesce under chaos delivery")
}

// TestProtocolChaos drives random reads/writes through small caches (to
// force evictions, write-backs and recalls) under randomized message
// interleavings, checking the single-writer invariant continuously.
func TestProtocolChaos(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		f := newChaosFabric(t, 4, seed)
		rng := rand.New(rand.NewSource(seed * 77))
		lines := make([]uint64, 24)
		for i := range lines {
			lines[i] = uint64(i * 3) // spread over homes and sets
		}
		completed := 0
		for step := 0; step < 4000; step++ {
			tile := rng.Intn(4)
			line := lines[rng.Intn(len(lines))]
			res := f.l1s[tile].Access(line, rng.Intn(3) == 0, func() { completed++ })
			_ = res
			// Deliver a random burst, leaving messages in flight between
			// accesses to maximize overlap.
			for i := 0; i < rng.Intn(6); i++ {
				f.deliverOne()
			}
			if step%64 == 0 {
				f.drain(100000)
				f.checkInvariants(lines)
			}
		}
		f.drain(1000000)
		f.checkInvariants(lines)
		if completed == 0 {
			t.Fatal("no accesses completed")
		}
	}
}

func (f *chaosFabric) checkInvariants(lines []uint64) {
	f.t.Helper()
	for _, line := range lines {
		owners, holders := 0, 0
		for _, l1 := range f.l1s {
			if st, ok := l1.HasLine(line); ok {
				holders++
				if st == cache.Exclusive || st == cache.Modified {
					owners++
				}
			}
		}
		if owners > 1 {
			f.t.Fatalf("line %#x: %d owners", line, owners)
		}
		if owners == 1 && holders > 1 {
			f.t.Fatalf("line %#x: owned with %d holders", line, holders)
		}
	}
}
