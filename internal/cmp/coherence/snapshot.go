package coherence

// Checkpoint support for the coherence controllers. Both controllers are
// serialized only at protocol-quiescent points (no outstanding MSHRs,
// write-backs or home transactions) — the state captured is exactly what
// a cache warmup leaves behind: cache contents, directory entries and the
// counters the warmup does not reset. Mid-transaction state holds
// completion closures (MSHR callbacks) that cannot be serialized, so a
// snapshot of a busy controller is refused rather than silently lossy.

import (
	"fmt"

	"heteronoc/internal/ckpt"
)

// EncodeState writes the L1's cache contents and sticky statistics.
// The controller must be quiescent (no MSHRs, no in-flight write-backs).
func (l *L1) EncodeState(w *ckpt.Writer) error {
	if len(l.mshr) != 0 || len(l.wb) != 0 {
		return fmt.Errorf("coherence: L1 %d not quiescent (%d MSHRs, %d write-backs)", l.tile, len(l.mshr), len(l.wb))
	}
	if err := l.c.EncodeState(w, encodeL1Payload); err != nil {
		return fmt.Errorf("coherence: L1 %d: %w", l.tile, err)
	}
	w.I64(l.PrefetchesIssued)
	w.I64(l.PrefetchesUseful)
	return nil
}

// DecodeState loads state written by EncodeState.
func (l *L1) DecodeState(r *ckpt.Reader) error {
	if err := l.c.DecodeState(r, decodeL1Payload); err != nil {
		return fmt.Errorf("coherence: L1 %d: %w", l.tile, err)
	}
	l.PrefetchesIssued = r.I64()
	l.PrefetchesUseful = r.I64()
	return r.Err()
}

// The only payload an L1 line ever carries is the prefetch tag (a shared
// sentinel marking a speculative line before its first demand hit).
func encodeL1Payload(w *ckpt.Writer, p any) error {
	if p != prefetchTag {
		return fmt.Errorf("unexpected L1 line payload %T", p)
	}
	w.Bool(true)
	return nil
}

func decodeL1Payload(r *ckpt.Reader) (any, error) {
	if !r.Bool() {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("malformed L1 payload marker")
	}
	return prefetchTag, r.Err()
}

// EncodeState writes the home bank's L2 contents (directory entries
// included) and sticky statistics. The bank must be quiescent.
func (h *Home) EncodeState(w *ckpt.Writer) error {
	if len(h.busy) != 0 || len(h.waiting) != 0 {
		return fmt.Errorf("coherence: home %d not quiescent (%d busy, %d waiting)", h.tile, len(h.busy), len(h.waiting))
	}
	if err := h.l2.EncodeState(w, encodeDirPayload); err != nil {
		return fmt.Errorf("coherence: home %d: %w", h.tile, err)
	}
	return nil
}

// DecodeState loads state written by EncodeState.
func (h *Home) DecodeState(r *ckpt.Reader) error {
	if err := h.l2.DecodeState(r, decodeDirPayload); err != nil {
		return fmt.Errorf("coherence: home %d: %w", h.tile, err)
	}
	return r.Err()
}

func encodeDirPayload(w *ckpt.Writer, p any) error {
	d, ok := p.(*DirEntry)
	if !ok {
		return fmt.Errorf("unexpected L2 line payload %T, want *DirEntry", p)
	}
	w.Int(d.Owner)
	w.U64(d.Sharers)
	w.Bool(d.Dirty)
	return nil
}

func decodeDirPayload(r *ckpt.Reader) (any, error) {
	d := &DirEntry{Owner: r.Int(), Sharers: r.U64(), Dirty: r.Bool()}
	return d, r.Err()
}

// Quiescent reports whether the L1 has no in-flight transactions.
func (l *L1) Quiescent() bool { return len(l.mshr) == 0 && len(l.wb) == 0 }

// Quiescent reports whether the home bank has no in-flight transactions.
func (h *Home) Quiescent() bool { return len(h.busy) == 0 && len(h.waiting) == 0 }
