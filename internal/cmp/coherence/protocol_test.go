package coherence

import (
	"math/rand"
	"testing"

	"heteronoc/internal/cmp/cache"
)

// fabric is a zero-latency FIFO transport connecting L1s, homes and a
// perfect memory for protocol unit tests.
type fabric struct {
	t     *testing.T
	l1s   []*L1
	homes []*Home
	mcT   int // terminal id of the fake memory controller
	q     []Msg
	sent  int
}

func (f *fabric) Send(m Msg, after int64) {
	f.q = append(f.q, m)
	f.sent++
}

// run delivers messages until quiescent.
func (f *fabric) run() {
	for steps := 0; len(f.q) > 0; steps++ {
		if steps > 100000 {
			f.t.Fatal("protocol did not quiesce")
		}
		m := f.q[0]
		f.q = f.q[1:]
		switch {
		case m.Dst == f.mcT:
			if m.Type == MemRead {
				f.Send(Msg{Type: MemData, Line: m.Line, Src: f.mcT, Dst: m.Src}, 0)
			}
			// MemWrite needs no reply.
		case m.Type == GetS || m.Type == GetM || m.Type == PutM || m.Type == InvAck ||
			m.Type == FwdAckData || m.Type == FwdNoData || m.Type == MemData:
			f.homes[m.Dst].Handle(m)
		default:
			f.l1s[m.Dst].Handle(m)
		}
	}
}

// newFabric builds n tiles all homed on tile 0 for deterministic tests.
func newFabric(t *testing.T, n int) *fabric {
	f := &fabric{t: t, mcT: n}
	homeFor := func(line uint64) int { return 0 }
	mcFor := func(line uint64) int { return f.mcT }
	for i := 0; i < n; i++ {
		l1c := cache.New(cache.Config{SizeBytes: 32 * 1024, Ways: 4, LineBytes: 128})
		f.l1s = append(f.l1s, NewL1(i, l1c, f, homeFor))
		l2c := cache.New(cache.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 128})
		f.homes = append(f.homes, NewHome(i, l2c, f, mcFor))
	}
	return f
}

func (f *fabric) read(tile int, line uint64, done *bool) {
	res := f.l1s[tile].Access(line, false, func() { *done = true })
	if res == Blocked {
		f.t.Fatalf("tile %d read of %#x blocked", tile, line)
	}
	f.run()
}

func (f *fabric) write(tile int, line uint64, done *bool) {
	res := f.l1s[tile].Access(line, true, func() { *done = true })
	if res == Blocked {
		f.t.Fatalf("tile %d write of %#x blocked", tile, line)
	}
	f.run()
}

func TestReadMissGetsExclusive(t *testing.T) {
	f := newFabric(t, 2)
	var done bool
	f.read(1, 0x10, &done)
	if !done {
		t.Fatal("read did not complete")
	}
	st, ok := f.l1s[1].HasLine(0x10)
	if !ok || st != cache.Exclusive {
		t.Fatalf("first reader has %v,%v, want E", st, ok)
	}
	d, ok := f.homes[0].Directory(0x10)
	if !ok || d.Owner != 1 {
		t.Fatalf("directory %+v, want owner 1", d)
	}
}

func TestSecondReaderSharesAndDowngradesOwner(t *testing.T) {
	f := newFabric(t, 3)
	var d1, d2 bool
	f.read(1, 0x10, &d1)
	f.read(2, 0x10, &d2)
	if !d1 || !d2 {
		t.Fatal("reads incomplete")
	}
	st1, _ := f.l1s[1].HasLine(0x10)
	st2, _ := f.l1s[2].HasLine(0x10)
	if st1 != cache.Shared || st2 != cache.Shared {
		t.Fatalf("states %v/%v, want S/S", st1, st2)
	}
	dir, _ := f.homes[0].Directory(0x10)
	if dir.Owner != -1 || dir.Sharers != (1<<1)|(1<<2) {
		t.Fatalf("directory %+v", dir)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	f := newFabric(t, 4)
	var d bool
	f.read(1, 0x20, &d)
	f.read(2, 0x20, &d)
	f.read(3, 0x20, &d)
	var wd bool
	f.write(1, 0x20, &wd)
	if !wd {
		t.Fatal("write did not complete")
	}
	if st, ok := f.l1s[1].HasLine(0x20); !ok || st != cache.Modified {
		t.Fatalf("writer state %v,%v, want M", st, ok)
	}
	for _, tile := range []int{2, 3} {
		if _, ok := f.l1s[tile].HasLine(0x20); ok {
			t.Errorf("tile %d still holds an invalidated line", tile)
		}
	}
	dir, _ := f.homes[0].Directory(0x20)
	if dir.Owner != 1 || dir.Sharers != 0 {
		t.Fatalf("directory %+v, want owner=1 no sharers", dir)
	}
}

func TestWriteToOwnedLineForwards(t *testing.T) {
	f := newFabric(t, 3)
	var d bool
	f.write(1, 0x30, &d) // tile 1 becomes M owner
	var d2 bool
	f.write(2, 0x30, &d2) // tile 2 steals ownership via FwdGetM
	if !d2 {
		t.Fatal("second write incomplete")
	}
	if _, ok := f.l1s[1].HasLine(0x30); ok {
		t.Error("old owner still holds the line")
	}
	if st, _ := f.l1s[2].HasLine(0x30); st != cache.Modified {
		t.Errorf("new owner state %v, want M", st)
	}
	dir, _ := f.homes[0].Directory(0x30)
	if dir.Owner != 2 || !dir.Dirty {
		t.Fatalf("directory %+v", dir)
	}
}

func TestReadFromModifiedOwnerDowngrades(t *testing.T) {
	f := newFabric(t, 3)
	var d bool
	f.write(1, 0x40, &d)
	var d2 bool
	f.read(2, 0x40, &d2)
	if !d2 {
		t.Fatal("read incomplete")
	}
	st1, _ := f.l1s[1].HasLine(0x40)
	st2, _ := f.l1s[2].HasLine(0x40)
	if st1 != cache.Shared || st2 != cache.Shared {
		t.Fatalf("states %v/%v, want S/S", st1, st2)
	}
	dir, _ := f.homes[0].Directory(0x40)
	if !dir.Dirty {
		t.Error("dirty data not captured at home")
	}
	if dir.Sharers != (1<<1)|(1<<2) || dir.Owner != -1 {
		t.Fatalf("directory %+v", dir)
	}
}

func TestSilentEUpgradeThenRead(t *testing.T) {
	f := newFabric(t, 3)
	var d bool
	f.read(1, 0x50, &d) // E
	var wd bool
	f.write(1, 0x50, &wd) // silent E->M
	if f.l1s[1].Upgrades != 1 {
		t.Fatal("no silent upgrade recorded")
	}
	var rd bool
	f.read(2, 0x50, &rd) // must retrieve dirty data via FwdGetS
	if !rd {
		t.Fatal("read incomplete")
	}
	dir, _ := f.homes[0].Directory(0x50)
	if !dir.Dirty {
		t.Error("silently modified data lost")
	}
}

func TestL1EvictionWritesBack(t *testing.T) {
	f := newFabric(t, 2)
	// L1: 32KB/4way/128B = 64 sets. Write 5 lines mapping to set 0.
	var d bool
	for i := 0; i < 5; i++ {
		f.write(1, uint64(i*64), &d)
	}
	// First line must have been written back; directory owner cleared.
	dir, ok := f.homes[0].Directory(0)
	if !ok {
		t.Fatal("line 0 not at home")
	}
	if dir.Owner == 1 {
		t.Error("evicted line still owned")
	}
	if !dir.Dirty {
		t.Error("write-back lost dirty data")
	}
	if len(f.l1s[1].wb) != 0 {
		t.Error("write-back buffer not drained")
	}
}

func TestSingleWriterInvariant(t *testing.T) {
	// Random workload across 4 tiles and a small line pool; after every
	// quiesced step, at most one L1 may hold a line in E/M, and if one
	// does, no other L1 may hold it at all.
	f := newFabric(t, 4)
	rng := rand.New(rand.NewSource(42))
	lines := []uint64{0, 1, 2, 3, 64, 65, 128, 129}
	for step := 0; step < 3000; step++ {
		tile := rng.Intn(4)
		line := lines[rng.Intn(len(lines))]
		var d bool
		if rng.Intn(2) == 0 {
			f.read(tile, line, &d)
		} else {
			f.write(tile, line, &d)
		}
		if !d {
			t.Fatal("access incomplete after quiesce")
		}
		for _, line := range lines {
			owners, holders := 0, 0
			for _, l1 := range f.l1s {
				if st, ok := l1.HasLine(line); ok {
					holders++
					if st == cache.Exclusive || st == cache.Modified {
						owners++
					}
				}
			}
			if owners > 1 {
				t.Fatalf("step %d: line %#x has %d owners", step, line, owners)
			}
			if owners == 1 && holders > 1 {
				t.Fatalf("step %d: line %#x owned but %d holders", step, line, holders)
			}
		}
	}
}

func TestDirectoryMatchesL1s(t *testing.T) {
	// After a random quiesced workload, the directory's view must cover
	// reality: every L1 holding a line is recorded as owner or sharer.
	f := newFabric(t, 4)
	rng := rand.New(rand.NewSource(7))
	lines := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	for step := 0; step < 2000; step++ {
		tile := rng.Intn(4)
		line := lines[rng.Intn(len(lines))]
		var d bool
		if rng.Intn(3) == 0 {
			f.write(tile, line, &d)
		} else {
			f.read(tile, line, &d)
		}
	}
	for _, line := range lines {
		dir, ok := f.homes[0].Directory(line)
		if !ok {
			continue
		}
		for tile, l1 := range f.l1s {
			if _, holds := l1.HasLine(line); holds {
				recorded := dir.Owner == tile || dir.Sharers&(1<<uint(tile)) != 0
				if !recorded {
					t.Errorf("line %#x held by tile %d but directory says %+v", line, tile, dir)
				}
			}
		}
	}
}

func TestL2RecallInvalidatesL1Copies(t *testing.T) {
	f := newFabric(t, 2)
	// Tiny L2 to force recalls: 4KB/2way/128B = 16 sets, set collisions at
	// lines 16 apart.
	f.homes[0] = NewHome(0, cache.New(cache.Config{SizeBytes: 4096, Ways: 2, LineBytes: 128}),
		f, func(uint64) int { return f.mcT })
	var d bool
	f.read(1, 0, &d)  // set 0
	f.read(1, 16, &d) // set 0, second way
	f.read(1, 32, &d) // set 0 -> recall of line 0
	if f.homes[0].Recalls == 0 {
		t.Fatal("no recall happened")
	}
	if _, ok := f.l1s[1].HasLine(0); ok {
		t.Error("recalled line still cached in L1 (inclusion violated)")
	}
	if _, ok := f.homes[0].Directory(0); ok {
		t.Error("recalled line still in L2")
	}
	if st, _ := f.l1s[1].HasLine(32); st != cache.Exclusive {
		t.Error("new line not filled after recall")
	}
}

func TestDirtyRecallWritesToMemory(t *testing.T) {
	f := newFabric(t, 2)
	f.homes[0] = NewHome(0, cache.New(cache.Config{SizeBytes: 4096, Ways: 2, LineBytes: 128}),
		f, func(uint64) int { return f.mcT })
	var d bool
	f.write(1, 0, &d)
	f.read(1, 16, &d)
	before := f.homes[0].MemWrites
	f.read(1, 32, &d) // recalls dirty line 0
	if f.homes[0].MemWrites != before+1 {
		t.Errorf("dirty recall produced %d writes, want %d", f.homes[0].MemWrites, before+1)
	}
}

func TestMSHRLimitBlocks(t *testing.T) {
	f := newFabric(t, 2)
	f.l1s[1].MaxMSHR = 2
	n := 0
	// Issue without running the fabric so misses stay outstanding.
	for i := 0; i < 3; i++ {
		res := f.l1s[1].Access(uint64(i), false, func() { n++ })
		if i < 2 && res != MissIssued {
			t.Fatalf("access %d = %v, want MissIssued", i, res)
		}
		if i == 2 && res != Blocked {
			t.Fatalf("access 2 = %v, want Blocked", res)
		}
	}
	f.run()
	if n != 2 {
		t.Errorf("%d fills, want 2", n)
	}
}

func TestCoalescing(t *testing.T) {
	f := newFabric(t, 2)
	n := 0
	if res := f.l1s[1].Access(7, false, func() { n++ }); res != MissIssued {
		t.Fatal("first access should miss")
	}
	if res := f.l1s[1].Access(7, false, func() { n++ }); res != Coalesced {
		t.Fatal("second access should coalesce")
	}
	f.run()
	if n != 2 {
		t.Errorf("%d callbacks, want 2", n)
	}
	if f.l1s[1].Coalesces != 1 {
		t.Errorf("coalesce count %d", f.l1s[1].Coalesces)
	}
}

func TestUpgradeRace(t *testing.T) {
	// Two sharers upgrade simultaneously; home serializes: both complete,
	// final owner is the second writer.
	f := newFabric(t, 3)
	var d bool
	f.read(1, 0x60, &d)
	f.read(2, 0x60, &d)
	var d1, d2 bool
	r1 := f.l1s[1].Access(0x60, true, func() { d1 = true })
	r2 := f.l1s[2].Access(0x60, true, func() { d2 = true })
	if r1 == Blocked || r2 == Blocked {
		t.Fatal("upgrades blocked")
	}
	f.run()
	if !d1 || !d2 {
		t.Fatalf("upgrades incomplete: %v %v", d1, d2)
	}
	owners := 0
	for _, l1 := range f.l1s {
		if st, ok := l1.HasLine(0x60); ok && st == cache.Modified {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("%d M owners after racing upgrades, want 1", owners)
	}
}

func TestPendingQueueDrains(t *testing.T) {
	f := newFabric(t, 4)
	// Stack several requests for one line without delivering messages.
	var n int
	f.l1s[1].Access(0x70, true, func() { n++ })
	f.l1s[2].Access(0x70, true, func() { n++ })
	f.l1s[3].Access(0x70, false, func() { n++ })
	f.run()
	if n != 3 {
		t.Fatalf("%d accesses completed, want 3", n)
	}
	if f.homes[0].Pending() != 0 {
		t.Error("home still has queued requests")
	}
	if f.homes[0].Busy(0x70) {
		t.Error("line still busy")
	}
}

func TestPrefetcherIssuesAndCounts(t *testing.T) {
	f := newFabric(t, 2)
	f.l1s[1].PrefetchNextLine = true
	var d bool
	f.read(1, 0x10, &d) // demand miss -> prefetch 0x11
	if f.l1s[1].PrefetchesIssued != 1 {
		t.Fatalf("prefetches issued %d, want 1", f.l1s[1].PrefetchesIssued)
	}
	if _, ok := f.l1s[1].HasLine(0x11); !ok {
		t.Fatal("prefetched line not installed")
	}
	// Demand access to the prefetched line: a hit counted as useful.
	var d2 bool
	res := f.l1s[1].Access(0x11, false, func() { d2 = true })
	if res != Hit || !d2 {
		t.Fatalf("prefetched line access = %v", res)
	}
	if f.l1s[1].PrefetchesUseful != 1 {
		t.Errorf("useful prefetches %d, want 1", f.l1s[1].PrefetchesUseful)
	}
}

func TestPrefetcherRespectsMSHRBudget(t *testing.T) {
	f := newFabric(t, 2)
	f.l1s[1].PrefetchNextLine = true
	f.l1s[1].MaxMSHR = 2
	// Issue without draining: the demand miss takes one MSHR; the
	// prefetcher must not take the last one.
	res := f.l1s[1].Access(0x20, false, func() {})
	if res != MissIssued {
		t.Fatal("demand miss blocked")
	}
	if f.l1s[1].Outstanding() != 1 {
		t.Fatalf("outstanding %d: prefetch consumed the reserve MSHR", f.l1s[1].Outstanding())
	}
	f.run()
}

func TestPrefetchedLineCoherent(t *testing.T) {
	// A prefetched copy must still be tracked: a writer elsewhere has to
	// invalidate it.
	f := newFabric(t, 3)
	f.l1s[1].PrefetchNextLine = true
	var d bool
	f.read(1, 0x30, &d) // prefetches 0x31 into tile 1
	if _, ok := f.l1s[1].HasLine(0x31); !ok {
		t.Fatal("prefetch missing")
	}
	var wd bool
	f.write(2, 0x31, &wd)
	if _, ok := f.l1s[1].HasLine(0x31); ok {
		t.Fatal("stale prefetched copy survived a remote write")
	}
}
