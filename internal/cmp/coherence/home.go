package coherence

import (
	"fmt"

	"heteronoc/internal/cmp/cache"
)

// DirEntry is the full-map directory state embedded in each L2 line.
type DirEntry struct {
	// Owner holds the tile with an E or M copy, -1 when none.
	Owner int
	// Sharers is a bit per tile with an S copy.
	Sharers uint64
	// Dirty marks the L2 copy more recent than memory.
	Dirty bool
}

func newDir() *DirEntry { return &DirEntry{Owner: -1} }

func (d *DirEntry) hasCopies() bool { return d.Owner >= 0 || d.Sharers != 0 }

// txStage tracks a blocked home transaction.
type txStage uint8

const (
	txRecall txStage = iota // invalidating a victim's copies
	txMem                   // waiting for memory data
	txInv                   // invalidating sharers for a GetM
	txFwd                   // waiting for the owner's forward response
)

type homeTx struct {
	stage    txStage
	req      Msg
	acksLeft int
	// victim is the line being recalled to make room for req's line.
	victim      uint64
	victimDirty bool
	// filled marks that memory data already arrived (recall happening
	// after the fetch because the set refilled meanwhile).
	filled bool
	// fwdKeepS marks a FwdGetS flow (the owner stays a sharer when it
	// answers with data).
	fwdKeepS bool
}

// Home is the L2 bank + directory controller of one tile.
type Home struct {
	tile int
	l2   *cache.Cache
	tp   Transport
	// mcFor maps a line to the terminal of its memory controller.
	mcFor func(line uint64) int
	// BankLatency is charged on each message the home emits.
	BankLatency int64

	// busy maps a line to its transaction. A recall aliases the victim
	// line to the same transaction so conflicting requests queue up.
	busy    map[uint64]*homeTx
	waiting map[uint64][]Msg

	// txFree and dirFree recycle transactions and directory entries. A tx
	// returns to the pool at the end of the handler that removes its last
	// busy alias (the rare makeRoom re-queue path leaves its tx to the GC
	// rather than risk a double-free). Directory entries return when their
	// L2 line is dropped.
	txFree  []*homeTx
	dirFree []*DirEntry

	// Statistics.
	L2Hits, L2Misses, Recalls, MemReads, MemWrites int64
}

// NewHome builds the home controller for a tile.
func NewHome(tile int, l2 *cache.Cache, tp Transport, mcFor func(uint64) int) *Home {
	return &Home{
		tile: tile, l2: l2, tp: tp, mcFor: mcFor,
		BankLatency: 6,
		busy:        make(map[uint64]*homeTx),
		waiting:     make(map[uint64][]Msg),
	}
}

func (h *Home) getTx(req Msg) *homeTx {
	if n := len(h.txFree); n > 0 {
		tx := h.txFree[n-1]
		h.txFree = h.txFree[:n-1]
		*tx = homeTx{req: req}
		return tx
	}
	return &homeTx{req: req}
}

func (h *Home) putTx(tx *homeTx) { h.txFree = append(h.txFree, tx) }

func (h *Home) getDir() *DirEntry {
	if n := len(h.dirFree); n > 0 {
		d := h.dirFree[n-1]
		h.dirFree = h.dirFree[:n-1]
		*d = DirEntry{Owner: -1}
		return d
	}
	return newDir()
}

// Busy reports whether a transaction is in flight for the line (tests).
func (h *Home) Busy(line uint64) bool { return h.busy[line] != nil }

// Pending returns the number of requests queued behind busy lines.
func (h *Home) Pending() int {
	n := 0
	for _, q := range h.waiting {
		n += len(q)
	}
	return n
}

// Handle processes one protocol message addressed to this home.
func (h *Home) Handle(m Msg) {
	switch m.Type {
	case GetS, GetM:
		if h.busy[m.Line] != nil {
			h.waiting[m.Line] = append(h.waiting[m.Line], m)
			return
		}
		h.process(m)
	case PutM:
		h.handlePutM(m)
	case InvAck:
		h.handleInvAck(m)
	case FwdAckData, FwdNoData:
		h.handleFwdResp(m)
	case MemData:
		h.handleMemData(m)
	default:
		panic(fmt.Sprintf("coherence: home %d got unexpected %v", h.tile, m.Type))
	}
}

func (h *Home) send(t MsgType, line uint64, dst, reqer int, dirty bool) {
	h.tp.Send(Msg{Type: t, Line: line, Src: h.tile, Dst: dst, Reqer: reqer, Dirty: dirty}, h.BankLatency)
}

// process starts servicing a GetS/GetM whose line is not busy.
func (h *Home) process(m Msg) {
	e, hit := h.l2.Lookup(m.Line)
	if !hit {
		h.L2Misses++
		tx := h.getTx(m)
		h.busy[m.Line] = tx
		if h.makeRoom(tx) {
			h.fetch(tx)
		}
		return
	}
	h.L2Hits++
	d := e.Payload.(*DirEntry)
	switch m.Type {
	case GetS:
		if d.Owner >= 0 && d.Owner != m.Src {
			tx := h.getTx(m)
			tx.stage, tx.fwdKeepS = txFwd, true
			h.busy[m.Line] = tx
			h.send(FwdGetS, m.Line, d.Owner, m.Src, false)
			return
		}
		if !d.hasCopies() {
			// First reader gets an exclusive clean copy.
			d.Owner = m.Src
			h.send(DataE, m.Line, m.Src, m.Src, false)
			return
		}
		if d.Owner == m.Src {
			// The owner re-reads its own line (it may have silently
			// dropped a clean E copy); refresh it as exclusive again.
			h.send(DataE, m.Line, m.Src, m.Src, false)
			return
		}
		d.Sharers |= 1 << uint(m.Src)
		h.send(Data, m.Line, m.Src, m.Src, false)
	case GetM:
		if d.Owner >= 0 && d.Owner != m.Src {
			tx := h.getTx(m)
			tx.stage = txFwd
			h.busy[m.Line] = tx
			h.send(FwdGetM, m.Line, d.Owner, m.Src, false)
			return
		}
		others := d.Sharers &^ (1 << uint(m.Src))
		if others != 0 {
			tx := h.getTx(m)
			tx.stage = txInv
			for t := 0; t < 64; t++ {
				if others&(1<<uint(t)) != 0 {
					tx.acksLeft++
					h.send(Inv, m.Line, t, m.Src, false)
				}
			}
			h.busy[m.Line] = tx
			return
		}
		h.grantM(m, d)
	}
}

// grantM hands the line to a writer.
func (h *Home) grantM(m Msg, d *DirEntry) {
	d.Sharers = 0
	d.Owner = m.Src
	d.Dirty = true
	h.send(DataM, m.Line, m.Src, m.Src, false)
}

// makeRoom ensures the target set has a free way for tx.req.Line. It
// returns true when room is available now; otherwise it has started a
// recall and the transaction continues from handleInvAck.
func (h *Home) makeRoom(tx *homeTx) bool {
	v := h.l2.VictimWhere(tx.req.Line, func(tag uint64) bool { return h.busy[tag] == nil })
	if v == nil {
		// Every way is carrying a transaction (16-way sets make this
		// effectively unreachable); serialize behind the LRU one.
		anyV := h.l2.Victim(tx.req.Line)
		delete(h.busy, tx.req.Line)
		h.waiting[anyV.Tag] = append(h.waiting[anyV.Tag], tx.req)
		return false
	}
	if !v.State.Valid() {
		return true
	}
	d := v.Payload.(*DirEntry)
	if !d.hasCopies() {
		h.dropVictim(v.Tag, d.Dirty)
		return true
	}
	// Recall every cached copy before dropping the victim.
	tx.stage = txRecall
	tx.victim = v.Tag
	tx.victimDirty = d.Dirty
	h.busy[v.Tag] = tx // alias: conflicting requests queue on the victim
	h.Recalls++
	if d.Owner >= 0 {
		tx.acksLeft++
		h.send(Inv, v.Tag, d.Owner, h.tile, false)
	}
	for t := 0; t < 64; t++ {
		if d.Sharers&(1<<uint(t)) != 0 {
			tx.acksLeft++
			h.send(Inv, v.Tag, t, h.tile, false)
		}
	}
	return false
}

// dropVictim evicts a recalled or copy-free victim, writing back when
// dirty. The directory entry returns to the pool: nothing references it
// once the L2 line is invalid.
func (h *Home) dropVictim(line uint64, dirty bool) {
	if dirty {
		h.MemWrites++
		h.send(MemWrite, line, h.mcFor(line), h.tile, true)
	}
	if e, ok := h.l2.Peek(line); ok {
		if d, isDir := e.Payload.(*DirEntry); isDir {
			h.dirFree = append(h.dirFree, d)
			e.Payload = nil
		}
	}
	h.l2.Invalidate(line)
}

// fetch issues the memory read for a missing line.
func (h *Home) fetch(tx *homeTx) {
	tx.stage = txMem
	h.MemReads++
	h.send(MemRead, tx.req.Line, h.mcFor(tx.req.Line), tx.req.Src, false)
}

// install completes a fill: insert the line and serve the original
// request synchronously (the fresh directory is empty, so GetS gets E and
// GetM gets M without further blocking).
func (h *Home) install(tx *homeTx) {
	line := tx.req.Line
	h.l2.Insert(line, cache.Shared, h.getDir())
	req := tx.req
	delete(h.busy, line)
	h.process(req)
	h.drain(line)
	h.putTx(tx)
}

func (h *Home) handleMemData(m Msg) {
	tx := h.busy[m.Line]
	if tx == nil || tx.stage != txMem {
		panic(fmt.Sprintf("coherence: home %d MemData for line %#x without txMem", h.tile, m.Line))
	}
	tx.filled = true
	if !h.makeRoom(tx) {
		// The set refilled while we fetched; a second recall round is in
		// progress (or the request was re-queued entirely — in that case
		// the fetched data is dropped and refetched later, a rare and
		// harmless inefficiency).
		if h.busy[m.Line] != tx {
			return
		}
		return
	}
	h.install(tx)
}

func (h *Home) handleInvAck(m Msg) {
	tx := h.busy[m.Line]
	if tx == nil {
		panic(fmt.Sprintf("coherence: home %d stray InvAck line %#x", h.tile, m.Line))
	}
	switch {
	case tx.stage == txRecall && tx.victim == m.Line:
		if m.Dirty {
			tx.victimDirty = true
		}
		tx.acksLeft--
		if tx.acksLeft > 0 {
			return
		}
		h.dropVictim(tx.victim, tx.victimDirty)
		delete(h.busy, tx.victim)
		victim := tx.victim
		if tx.filled {
			h.install(tx)
		} else {
			h.fetch(tx)
		}
		h.drain(victim)
	case tx.stage == txInv:
		if m.Dirty {
			if e, ok := h.l2.Peek(m.Line); ok {
				e.Payload.(*DirEntry).Dirty = true
			}
		}
		tx.acksLeft--
		if tx.acksLeft > 0 {
			return
		}
		e, ok := h.l2.Peek(m.Line)
		if !ok {
			panic("coherence: invalidation target vanished from L2")
		}
		d := e.Payload.(*DirEntry)
		d.Sharers = 0
		delete(h.busy, m.Line)
		h.grantM(tx.req, d)
		h.drain(m.Line)
		h.putTx(tx)
	default:
		panic(fmt.Sprintf("coherence: home %d InvAck in stage %d", h.tile, tx.stage))
	}
}

func (h *Home) handleFwdResp(m Msg) {
	tx := h.busy[m.Line]
	if tx == nil || tx.stage != txFwd {
		panic(fmt.Sprintf("coherence: home %d stray forward response line %#x", h.tile, m.Line))
	}
	e, ok := h.l2.Peek(m.Line)
	if !ok {
		panic("coherence: forwarded line vanished from L2")
	}
	d := e.Payload.(*DirEntry)
	oldOwner := d.Owner
	if m.Dirty {
		d.Dirty = true
	}
	req := tx.req
	delete(h.busy, m.Line)
	if tx.fwdKeepS {
		// GetS flow: the owner downgraded (keeping a shared copy unless it
		// had already evicted the line).
		d.Owner = -1
		if m.Type == FwdAckData {
			d.Sharers |= 1 << uint(oldOwner)
		}
		d.Sharers |= 1 << uint(req.Src)
		h.send(Data, m.Line, req.Src, req.Src, false)
	} else {
		// GetM flow: the owner invalidated; hand ownership over.
		d.Owner = -1
		h.grantM(req, d)
	}
	h.drain(m.Line)
	h.putTx(tx)
}

func (h *Home) handlePutM(m Msg) {
	// Write-backs are acknowledged unconditionally. The directory only
	// changes when the writer is still the registered owner (a racing
	// forward may already have moved ownership).
	if e, ok := h.l2.Peek(m.Line); ok {
		d := e.Payload.(*DirEntry)
		if d.Owner == m.Src {
			d.Owner = -1
			d.Dirty = true
		}
	}
	h.send(WBAck, m.Line, m.Src, m.Src, false)
}

// drain reprocesses requests queued behind a finished transaction.
func (h *Home) drain(line uint64) {
	q := h.waiting[line]
	if len(q) == 0 {
		return
	}
	delete(h.waiting, line)
	for i, m := range q {
		if h.busy[line] != nil {
			h.waiting[line] = append(h.waiting[line], q[i:]...)
			return
		}
		h.process(m)
	}
}

// Directory exposes a line's directory entry for invariant checking.
func (h *Home) Directory(line uint64) (DirEntry, bool) {
	if e, ok := h.l2.Peek(line); ok {
		return *e.Payload.(*DirEntry), true
	}
	return DirEntry{}, false
}

// L2 exposes the bank's cache array for diagnostics and tests.
func (h *Home) L2() *cache.Cache { return h.l2 }
