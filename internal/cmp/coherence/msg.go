// Package coherence implements the two-level MESI directory protocol of the
// CMP model (Table 2): private L1 caches, a shared banked inclusive L2 with
// an embedded full-map directory, home-serialized transactions, recalls on
// L2 evictions, and write-back interaction with the memory controllers.
//
// The controllers are pure state machines over an abstract Transport so
// they can be unit tested without the network simulator; the cmp package
// binds them to the NoC.
package coherence

import "fmt"

// MsgType enumerates protocol messages.
type MsgType uint8

const (
	// Requests from L1 to the home directory.
	GetS MsgType = iota // read miss
	GetM                // write miss / upgrade
	PutM                // dirty eviction write-back (data)

	// Responses from home to L1.
	Data  // shared copy (data)
	DataE // exclusive clean copy (data)
	DataM // writable copy after invalidations (data)
	WBAck // write-back acknowledged

	// Home to remote L1s.
	Inv     // invalidate (also used for recalls)
	FwdGetS // owner must downgrade and supply data to home
	FwdGetM // owner must invalidate and supply data to home

	// Remote L1 to home.
	InvAck     // invalidation done (control; data piggybacked when dirty)
	FwdAckData // forward handled; Dirty says whether data accompanies
	FwdNoData  // forward target no longer holds the line

	// Home to memory controller and back.
	MemRead  // fetch a line (control)
	MemWrite // write back a line (data, no reply)
	MemData  // fetched line (data)
)

var msgNames = [...]string{
	"GetS", "GetM", "PutM", "Data", "DataE", "DataM", "WBAck",
	"Inv", "FwdGetS", "FwdGetM", "InvAck", "FwdAckData", "FwdNoData",
	"MemRead", "MemWrite", "MemData",
}

func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", int(t))
}

// IsData reports whether the message carries a cache line (and therefore
// travels as a multi-flit data packet).
func (t MsgType) IsData() bool {
	switch t {
	case PutM, Data, DataE, DataM, MemWrite, MemData:
		return true
	}
	return false
}

// Msg is one protocol message.
type Msg struct {
	Type MsgType
	Line uint64
	Src  int // sending terminal (tile or MC tile)
	Dst  int // receiving terminal
	// Reqer is the original requester on forwarded flows.
	Reqer int
	// Dirty marks responses that carry modified data.
	Dirty bool
	// SentAt is stamped by the transport for latency accounting.
	SentAt int64
	// Seq is a per-(Src,Dst) sequence number assigned by the transport.
	// The receiving network interface delivers messages of a pair in
	// order (an NI reorder buffer); the protocol relies on this to keep
	// a home's responses and subsequent forwards/invalidates ordered.
	Seq int64
}

// Transport delivers protocol messages between terminals. after is an
// additional processing delay in core cycles (bank access time) charged
// before the message leaves the sender.
type Transport interface {
	Send(m Msg, after int64)
}
