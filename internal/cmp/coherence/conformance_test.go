package coherence

import (
	"testing"

	"heteronoc/internal/cmp/cache"
)

// recorder captures sent messages without delivering them.
type recorder struct{ msgs []Msg }

func (r *recorder) Send(m Msg, after int64) { r.msgs = append(r.msgs, m) }

func (r *recorder) take() []Msg {
	out := r.msgs
	r.msgs = nil
	return out
}

func (r *recorder) typesOnly() []MsgType {
	out := make([]MsgType, len(r.msgs))
	for i, m := range r.msgs {
		out[i] = m.Type
	}
	return out
}

func newRecordedL1(rec *recorder) *L1 {
	c := cache.New(cache.Config{SizeBytes: 8 * 1024, Ways: 2, LineBytes: 128})
	return NewL1(1, c, rec, func(uint64) int { return 0 })
}

// install puts a line into the L1 in a given state without protocol
// traffic (test setup).
func install(l *L1, line uint64, st cache.State) {
	l.c.Insert(line, st, nil)
}

// TestL1Conformance walks the requester-side state/event table.
func TestL1Conformance(t *testing.T) {
	const line = 0x40
	cases := []struct {
		name      string
		state     cache.State // Invalid means not present
		write     bool
		event     MsgType // 0 sentinel (use access) or an incoming message
		useAccess bool
		wantRes   AccessResult
		wantSent  []MsgType
		wantState cache.State
		wantHeld  bool
	}{
		{name: "I + load -> GetS", state: cache.Invalid, useAccess: true, write: false,
			wantRes: MissIssued, wantSent: []MsgType{GetS}, wantHeld: false},
		{name: "I + store -> GetM", state: cache.Invalid, useAccess: true, write: true,
			wantRes: MissIssued, wantSent: []MsgType{GetM}, wantHeld: false},
		{name: "S + load -> hit", state: cache.Shared, useAccess: true, write: false,
			wantRes: Hit, wantSent: nil, wantState: cache.Shared, wantHeld: true},
		{name: "S + store -> GetM upgrade drops S", state: cache.Shared, useAccess: true, write: true,
			wantRes: MissIssued, wantSent: []MsgType{GetM}, wantHeld: false},
		{name: "E + load -> hit", state: cache.Exclusive, useAccess: true, write: false,
			wantRes: Hit, wantSent: nil, wantState: cache.Exclusive, wantHeld: true},
		{name: "E + store -> silent M", state: cache.Exclusive, useAccess: true, write: true,
			wantRes: Hit, wantSent: nil, wantState: cache.Modified, wantHeld: true},
		{name: "M + store -> hit", state: cache.Modified, useAccess: true, write: true,
			wantRes: Hit, wantSent: nil, wantState: cache.Modified, wantHeld: true},
		{name: "S + Inv -> clean ack", state: cache.Shared, event: Inv,
			wantSent: []MsgType{InvAck}, wantHeld: false},
		{name: "M + Inv -> dirty ack", state: cache.Modified, event: Inv,
			wantSent: []MsgType{InvAck}, wantHeld: false},
		{name: "I + Inv -> ack anyway", state: cache.Invalid, event: Inv,
			wantSent: []MsgType{InvAck}, wantHeld: false},
		{name: "M + FwdGetS -> data + downgrade", state: cache.Modified, event: FwdGetS,
			wantSent: []MsgType{FwdAckData}, wantState: cache.Shared, wantHeld: true},
		{name: "E + FwdGetS -> clean data + downgrade", state: cache.Exclusive, event: FwdGetS,
			wantSent: []MsgType{FwdAckData}, wantState: cache.Shared, wantHeld: true},
		{name: "I + FwdGetS -> no data", state: cache.Invalid, event: FwdGetS,
			wantSent: []MsgType{FwdNoData}, wantHeld: false},
		{name: "M + FwdGetM -> data + invalidate", state: cache.Modified, event: FwdGetM,
			wantSent: []MsgType{FwdAckData}, wantHeld: false},
		{name: "E + FwdGetM -> data + invalidate", state: cache.Exclusive, event: FwdGetM,
			wantSent: []MsgType{FwdAckData}, wantHeld: false},
		{name: "I + FwdGetM -> no data", state: cache.Invalid, event: FwdGetM,
			wantSent: []MsgType{FwdNoData}, wantHeld: false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := &recorder{}
			l1 := newRecordedL1(rec)
			if c.state != cache.Invalid {
				install(l1, line, c.state)
			}
			if c.useAccess {
				res := l1.Access(line, c.write, func() {})
				if res != c.wantRes {
					t.Fatalf("result %v, want %v", res, c.wantRes)
				}
			} else {
				l1.Handle(Msg{Type: c.event, Line: line, Src: 0, Dst: 1})
			}
			got := rec.typesOnly()
			if len(got) != len(c.wantSent) {
				t.Fatalf("sent %v, want %v", got, c.wantSent)
			}
			for i := range got {
				if got[i] != c.wantSent[i] {
					t.Fatalf("sent %v, want %v", got, c.wantSent)
				}
			}
			st, held := l1.HasLine(line)
			if held != c.wantHeld {
				t.Fatalf("held=%v, want %v", held, c.wantHeld)
			}
			if held && st != c.wantState {
				t.Fatalf("state %v, want %v", st, c.wantState)
			}
		})
	}
}

// TestL1DirtyBitsOnResponses pins the Dirty flag of Inv/Fwd answers.
func TestL1DirtyBitsOnResponses(t *testing.T) {
	cases := []struct {
		state     cache.State
		event     MsgType
		wantDirty bool
	}{
		{cache.Modified, Inv, true},
		{cache.Shared, Inv, false},
		{cache.Exclusive, Inv, false},
		{cache.Modified, FwdGetS, true},
		{cache.Exclusive, FwdGetS, false},
		{cache.Modified, FwdGetM, true},
		{cache.Exclusive, FwdGetM, false},
	}
	for _, c := range cases {
		rec := &recorder{}
		l1 := newRecordedL1(rec)
		install(l1, 0x80, c.state)
		l1.Handle(Msg{Type: c.event, Line: 0x80, Src: 0, Dst: 1})
		msgs := rec.take()
		if len(msgs) != 1 {
			t.Fatalf("%v+%v: sent %v", c.state, c.event, msgs)
		}
		if msgs[0].Dirty != c.wantDirty {
			t.Errorf("%v+%v: dirty=%v, want %v", c.state, c.event, msgs[0].Dirty, c.wantDirty)
		}
	}
}

func newRecordedHome(rec *recorder) *Home {
	c := cache.New(cache.Config{SizeBytes: 64 * 1024, Ways: 4, LineBytes: 128})
	return NewHome(0, c, rec, func(uint64) int { return 99 })
}

// seedHome installs a line with a given directory state.
func seedHome(h *Home, line uint64, d DirEntry) {
	e := d
	h.l2.Insert(line, cache.Shared, &e)
}

// TestHomeConformance walks the directory-side state/event table.
func TestHomeConformance(t *testing.T) {
	const line = 0x100
	mkSharers := func(tiles ...int) uint64 {
		var m uint64
		for _, t := range tiles {
			m |= 1 << uint(t)
		}
		return m
	}
	cases := []struct {
		name     string
		dir      *DirEntry // nil = line absent from L2
		req      Msg
		wantSent []MsgType
		wantBusy bool
	}{
		{name: "miss + GetS -> MemRead", dir: nil,
			req:      Msg{Type: GetS, Line: line, Src: 1},
			wantSent: []MsgType{MemRead}, wantBusy: true},
		{name: "no copies + GetS -> DataE", dir: &DirEntry{Owner: -1},
			req:      Msg{Type: GetS, Line: line, Src: 1},
			wantSent: []MsgType{DataE}},
		{name: "sharers + GetS -> Data", dir: &DirEntry{Owner: -1, Sharers: mkSharers(2)},
			req:      Msg{Type: GetS, Line: line, Src: 1},
			wantSent: []MsgType{Data}},
		{name: "owned + GetS -> FwdGetS", dir: &DirEntry{Owner: 2},
			req:      Msg{Type: GetS, Line: line, Src: 1},
			wantSent: []MsgType{FwdGetS}, wantBusy: true},
		{name: "no copies + GetM -> DataM", dir: &DirEntry{Owner: -1},
			req:      Msg{Type: GetM, Line: line, Src: 1},
			wantSent: []MsgType{DataM}},
		{name: "two sharers + GetM -> two Invs", dir: &DirEntry{Owner: -1, Sharers: mkSharers(2, 3)},
			req:      Msg{Type: GetM, Line: line, Src: 1},
			wantSent: []MsgType{Inv, Inv}, wantBusy: true},
		{name: "requester-is-sharer + GetM -> DataM (no self-inv)", dir: &DirEntry{Owner: -1, Sharers: mkSharers(1)},
			req:      Msg{Type: GetM, Line: line, Src: 1},
			wantSent: []MsgType{DataM}},
		{name: "owned + GetM -> FwdGetM", dir: &DirEntry{Owner: 2},
			req:      Msg{Type: GetM, Line: line, Src: 1},
			wantSent: []MsgType{FwdGetM}, wantBusy: true},
		{name: "owner writes back -> WBAck", dir: &DirEntry{Owner: 1},
			req:      Msg{Type: PutM, Line: line, Src: 1, Dirty: true},
			wantSent: []MsgType{WBAck}},
		{name: "stale PutM from non-owner -> WBAck only", dir: &DirEntry{Owner: 2},
			req:      Msg{Type: PutM, Line: line, Src: 1, Dirty: true},
			wantSent: []MsgType{WBAck}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := &recorder{}
			h := newRecordedHome(rec)
			if c.dir != nil {
				seedHome(h, line, *c.dir)
			}
			h.Handle(c.req)
			got := rec.typesOnly()
			if len(got) != len(c.wantSent) {
				t.Fatalf("sent %v, want %v", got, c.wantSent)
			}
			for i := range got {
				if got[i] != c.wantSent[i] {
					t.Fatalf("sent %v, want %v", got, c.wantSent)
				}
			}
			if h.Busy(line) != c.wantBusy {
				t.Fatalf("busy=%v, want %v", h.Busy(line), c.wantBusy)
			}
		})
	}
}

// TestHomeStalePutMKeepsOwner ensures a racing write-back from a previous
// owner does not clobber the new owner's registration.
func TestHomeStalePutMKeepsOwner(t *testing.T) {
	rec := &recorder{}
	h := newRecordedHome(rec)
	seedHome(h, 0x200, DirEntry{Owner: 3})
	h.Handle(Msg{Type: PutM, Line: 0x200, Src: 1, Dirty: true})
	d, ok := h.Directory(0x200)
	if !ok || d.Owner != 3 {
		t.Fatalf("directory %+v after stale PutM, want owner 3", d)
	}
}

// TestHomeRequestsQueueBehindBusyLine pins the serialization behavior.
func TestHomeRequestsQueueBehindBusyLine(t *testing.T) {
	rec := &recorder{}
	h := newRecordedHome(rec)
	seedHome(h, 0x300, DirEntry{Owner: 2})
	h.Handle(Msg{Type: GetS, Line: 0x300, Src: 1}) // busy: FwdGetS out
	rec.take()
	h.Handle(Msg{Type: GetM, Line: 0x300, Src: 4})
	if got := rec.take(); len(got) != 0 {
		t.Fatalf("request to busy line emitted %v", got)
	}
	if h.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", h.Pending())
	}
	// Owner answers; the queued GetM must then run (FwdGetM or Invs).
	h.Handle(Msg{Type: FwdAckData, Line: 0x300, Src: 2, Dirty: true})
	got := rec.take()
	if len(got) < 2 { // Data to reader + something for the queued writer
		t.Fatalf("completion emitted %v", got)
	}
	if got[0].Type != Data {
		t.Fatalf("first message %v, want Data", got[0].Type)
	}
	if h.Pending() != 0 {
		t.Error("queue not drained")
	}
}
