package coherence

import (
	"fmt"

	"heteronoc/internal/cmp/cache"
)

// AccessResult is the outcome of a core-side cache access.
type AccessResult uint8

const (
	// Hit: the access completed against the L1.
	Hit AccessResult = iota
	// MissIssued: a request went to the home; the callback fires on fill.
	MissIssued
	// Coalesced: an outstanding MSHR covers the access; the callback fires
	// when that miss fills.
	Coalesced
	// Blocked: no MSHR available (or a conflicting upgrade is in flight);
	// the core must retry later.
	Blocked
)

type l1MSHR struct {
	line      uint64
	wantM     bool
	callbacks []func()
	// prefetch marks speculative fills: they install tagged so a later
	// demand hit can be counted as a useful prefetch.
	prefetch bool
}

// L1 is the private-cache controller of one tile. It implements the
// requester side of the MESI protocol: GetS/GetM on misses, silent E->M
// upgrades, PutM write-backs with a write-back buffer that answers racing
// forwards, and Inv/Fwd servicing.
type L1 struct {
	tile int
	c    *cache.Cache
	tp   Transport
	// homeFor maps a line to its home tile.
	homeFor func(line uint64) int
	// Latency is charged on each message the L1 emits.
	Latency int64
	// MaxMSHR bounds outstanding misses (16 per core in Table 2).
	MaxMSHR int
	// PrefetchNextLine issues a GetS for line+1 on every demand miss
	// (a simple stream prefetcher; off by default, used by the
	// prefetcher ablation).
	PrefetchNextLine bool

	mshr map[uint64]*l1MSHR
	// mshrFree recycles MSHR entries (and their callback slices) between
	// misses; the fill path returns them after callbacks run.
	mshrFree []*l1MSHR
	// wb counts in-flight PutMs per line (between PutM and WBAck) so
	// racing forwards can still be answered with data.
	wb map[uint64]int

	// Statistics.
	Hits, Misses, Coalesces, Blocks, Upgrades, Invalidations int64
	PrefetchesIssued, PrefetchesUseful                       int64
}

// NewL1 builds the L1 controller for a tile.
func NewL1(tile int, c *cache.Cache, tp Transport, homeFor func(uint64) int) *L1 {
	return &L1{
		tile: tile, c: c, tp: tp, homeFor: homeFor,
		Latency: 2, MaxMSHR: 16,
		mshr: make(map[uint64]*l1MSHR),
		wb:   make(map[uint64]int),
	}
}

func (l *L1) getMSHR(line uint64, wantM, prefetch bool) *l1MSHR {
	var m *l1MSHR
	if n := len(l.mshrFree); n > 0 {
		m = l.mshrFree[n-1]
		l.mshrFree = l.mshrFree[:n-1]
	} else {
		m = &l1MSHR{}
	}
	m.line, m.wantM, m.prefetch = line, wantM, prefetch
	return m
}

func (l *L1) putMSHR(m *l1MSHR) {
	for i := range m.callbacks {
		m.callbacks[i] = nil
	}
	m.callbacks = m.callbacks[:0]
	l.mshrFree = append(l.mshrFree, m)
}

// Outstanding returns the number of in-flight misses.
func (l *L1) Outstanding() int { return len(l.mshr) }

// HasLine reports the L1 state of a line (for invariant checks).
func (l *L1) HasLine(line uint64) (cache.State, bool) {
	if e, ok := l.c.Peek(line); ok {
		return e.State, true
	}
	return cache.Invalid, false
}

func (l *L1) send(t MsgType, line uint64, dst int, dirty bool) {
	l.tp.Send(Msg{Type: t, Line: line, Src: l.tile, Dst: dst, Dirty: dirty}, l.Latency)
}

// Access performs a load (write=false) or store (write=true) against the
// line. done fires when the access is architecturally complete (immediately
// on a hit, at fill time on a miss).
func (l *L1) Access(line uint64, write bool, done func()) AccessResult {
	if e, ok := l.c.Lookup(line); ok {
		if e.Payload != nil {
			l.PrefetchesUseful++
			e.Payload = nil
		}
		switch {
		case !write:
			l.Hits++
			done()
			return Hit
		case e.State == cache.Modified:
			l.Hits++
			done()
			return Hit
		case e.State == cache.Exclusive:
			// Silent E->M upgrade.
			e.State = cache.Modified
			l.Hits++
			l.Upgrades++
			done()
			return Hit
		default: // Shared + write: upgrade through the home.
			if m, exists := l.mshr[line]; exists {
				if m.wantM {
					m.callbacks = append(m.callbacks, done)
					l.Coalesces++
					return Coalesced
				}
				l.Blocks++
				return Blocked
			}
			if len(l.mshr) >= l.MaxMSHR {
				l.Blocks++
				return Blocked
			}
			l.Misses++
			m := l.getMSHR(line, true, false)
			m.callbacks = append(m.callbacks, done)
			l.mshr[line] = m
			// Drop the S copy now: the home invalidates other sharers and
			// replies DataM (it may also Inv us first, harmlessly).
			l.c.Invalidate(line)
			l.send(GetM, line, l.homeFor(line), false)
			return MissIssued
		}
	}
	// Miss.
	if m, exists := l.mshr[line]; exists {
		if !write || m.wantM {
			m.callbacks = append(m.callbacks, done)
			l.Coalesces++
			return Coalesced
		}
		// A write behind a pending GetS: keep it simple, retry later.
		l.Blocks++
		return Blocked
	}
	if len(l.mshr) >= l.MaxMSHR {
		l.Blocks++
		return Blocked
	}
	l.Misses++
	m := l.getMSHR(line, write, false)
	m.callbacks = append(m.callbacks, done)
	l.mshr[line] = m
	if write {
		l.send(GetM, line, l.homeFor(line), false)
	} else {
		l.send(GetS, line, l.homeFor(line), false)
	}
	l.maybePrefetch(line + 1)
	return MissIssued
}

// maybePrefetch issues a low-priority GetS for a predicted line when the
// stream prefetcher is on and resources allow. Prefetch MSHRs carry no
// callbacks and never block demand traffic (they leave one MSHR free).
func (l *L1) maybePrefetch(line uint64) {
	if !l.PrefetchNextLine {
		return
	}
	if _, ok := l.c.Peek(line); ok {
		return
	}
	if l.mshr[line] != nil || len(l.mshr) >= l.MaxMSHR-1 {
		return
	}
	l.PrefetchesIssued++
	l.mshr[line] = l.getMSHR(line, false, true)
	l.send(GetS, line, l.homeFor(line), false)
}

// Handle processes a protocol message addressed to this L1.
func (l *L1) Handle(m Msg) {
	switch m.Type {
	case Data, DataE, DataM:
		l.fill(m)
	case Inv:
		l.Invalidations++
		dirty := false
		if old, ok := l.c.Invalidate(m.Line); ok {
			dirty = old.State == cache.Modified
		} else if l.wb[m.Line] > 0 {
			dirty = true
		}
		l.send(InvAck, m.Line, m.Src, dirty)
	case FwdGetS:
		if l.mshr[m.Line] != nil {
			// With ordered per-pair delivery a forward can only find an
			// open MSHR when our own re-request is still queued at the
			// home (stale ownership from a silently dropped clean line):
			// we hold nothing, so say so.
			l.send(FwdNoData, m.Line, m.Src, false)
			return
		}
		if e, ok := l.c.Peek(m.Line); ok {
			dirty := e.State == cache.Modified
			e.State = cache.Shared
			l.send(FwdAckData, m.Line, m.Src, dirty)
			return
		}
		if l.wb[m.Line] > 0 {
			l.send(FwdAckData, m.Line, m.Src, true)
			return
		}
		l.send(FwdNoData, m.Line, m.Src, false)
	case FwdGetM:
		if l.mshr[m.Line] != nil {
			l.send(FwdNoData, m.Line, m.Src, false)
			return
		}
		if old, ok := l.c.Invalidate(m.Line); ok {
			l.send(FwdAckData, m.Line, m.Src, old.State == cache.Modified)
			return
		}
		if l.wb[m.Line] > 0 {
			l.send(FwdAckData, m.Line, m.Src, true)
			return
		}
		l.send(FwdNoData, m.Line, m.Src, false)
	case WBAck:
		if l.wb[m.Line] > 1 {
			l.wb[m.Line]--
		} else {
			delete(l.wb, m.Line)
		}
	default:
		panic(fmt.Sprintf("coherence: L1 %d got unexpected %v", l.tile, m.Type))
	}
}

// fill installs a response line and completes waiting accesses.
func (l *L1) fill(m Msg) {
	mshr := l.mshr[m.Line]
	if mshr == nil {
		panic(fmt.Sprintf("coherence: L1 %d fill without MSHR line %#x", l.tile, m.Line))
	}
	st := cache.Shared
	switch m.Type {
	case DataE:
		st = cache.Exclusive
	case DataM:
		st = cache.Modified
	}
	if mshr.wantM && st != cache.Modified {
		panic(fmt.Sprintf("coherence: L1 %d GetM answered with %v", l.tile, m.Type))
	}
	// A racing Inv/FwdGetM between our GetM send and the DataM response
	// cannot target us (the home serializes per line and we were not a
	// sharer), so a plain insert is safe. Make room first.
	if v := l.c.Victim(m.Line); v.State.Valid() {
		l.evict(v)
	}
	var tag any
	if mshr.prefetch {
		tag = prefetchTag
	}
	l.c.Insert(m.Line, st, tag)
	delete(l.mshr, m.Line)
	for _, cb := range mshr.callbacks {
		cb()
	}
	l.putMSHR(mshr)
}

// prefetchTag marks speculative lines until their first demand hit.
var prefetchTag any = struct{ prefetched bool }{true}

// evict removes a victim line: dirty lines write back through the wb
// buffer, clean lines drop silently.
func (l *L1) evict(v *cache.Line) {
	line := v.Tag
	if v.State == cache.Modified {
		l.wb[line]++
		l.send(PutM, line, l.homeFor(line), true)
	}
	l.c.Invalidate(line)
}
