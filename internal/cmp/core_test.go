package cmp

import (
	"testing"

	"heteronoc/internal/cmp/cache"
	"heteronoc/internal/cmp/coherence"
	"heteronoc/internal/trace"
)

// scriptTrace replays a fixed list of entries, then repeats the last one.
type scriptTrace struct {
	entries []trace.Entry
	i       int
}

func (s *scriptTrace) Next() trace.Entry {
	if s.i < len(s.entries) {
		e := s.entries[s.i]
		s.i++
		return e
	}
	return s.entries[len(s.entries)-1]
}

// Core takes *coherence.L1 concretely, so exercise it through a real L1
// with a synchronous transport instead for hit-path tests, and through the
// system tests for miss paths. Here we focus on the gap/width mechanics
// using an always-hitting L1.
type nullTransport struct{ out []coherence.Msg }

func (n *nullTransport) Send(m coherence.Msg, after int64) { n.out = append(n.out, m) }

func alwaysHitL1(t *testing.T) *coherence.L1 {
	t.Helper()
	c := cache.New(cache.Config{SizeBytes: 64 * 1024, Ways: 4, LineBytes: 128})
	// Pre-fill lines 0..63 in Modified so loads and stores both hit.
	for l := uint64(0); l < 64; l++ {
		c.Insert(l, cache.Modified, nil)
	}
	return coherence.NewL1(0, c, &nullTransport{}, func(uint64) int { return 0 })
}

func TestCoreWidthLimitsIPC(t *testing.T) {
	// Pure compute trace (huge gaps): IPC must track the width.
	for _, width := range []int{1, 3} {
		clock := int64(0)
		tr := &scriptTrace{entries: []trace.Entry{{Gap: 1 << 20, Addr: 0}}}
		core := NewCore(0, CoreConfig{Width: width, Window: 64}, tr, alwaysHitL1(t), &clock, func(a uint64) uint64 { return a / 128 })
		for i := 0; i < 1000; i++ {
			clock++
			core.Step()
		}
		got := core.IPC()
		if got < float64(width)-0.1 || got > float64(width)+0.01 {
			t.Errorf("width %d: IPC = %.2f", width, got)
		}
	}
}

func TestCoreHitsCommitMemops(t *testing.T) {
	clock := int64(0)
	tr := &scriptTrace{entries: []trace.Entry{{Gap: 0, Addr: 0}}}
	core := NewCore(0, CoreConfig{Width: 1, Window: 8}, tr, alwaysHitL1(t), &clock, func(a uint64) uint64 { return a / 128 })
	for i := 0; i < 100; i++ {
		clock++
		core.Step()
	}
	if core.Insts == 0 {
		t.Fatal("no memops committed on hits")
	}
	if core.IPC() < 0.9 {
		t.Errorf("hit-only IPC %.2f, want ~1", core.IPC())
	}
}

func TestCoreHitDelayStallsInOrder(t *testing.T) {
	clock := int64(0)
	tr := &scriptTrace{entries: []trace.Entry{{Gap: 0, Addr: 0}}}
	core := NewCore(0, CoreConfig{Width: 1, Window: 8, L1HitDelay: 1}, tr, alwaysHitL1(t), &clock, func(a uint64) uint64 { return a / 128 })
	for i := 0; i < 100; i++ {
		clock++
		core.Step()
	}
	// Each memop costs 1 issue cycle + 1 hit-delay cycle: IPC ~0.5.
	if core.IPC() > 0.6 || core.IPC() < 0.4 {
		t.Errorf("in-order hit IPC %.2f, want ~0.5", core.IPC())
	}
}

func TestSmallVsLargeCoreConfigs(t *testing.T) {
	l := LargeCore()
	s := SmallCore()
	if l.Width <= s.Width || l.Window <= s.Window {
		t.Error("large core must be wider with a larger window")
	}
	if s.L1HitDelay == 0 {
		t.Error("small in-order core should pay L1 hit latency")
	}
}

// blackholeL1 is backed by a transport that never answers: every miss
// stays outstanding forever, exposing the window and MSHR limits.
func blackholeL1(t *testing.T) *coherence.L1 {
	t.Helper()
	c := cache.New(cache.Config{SizeBytes: 8 * 1024, Ways: 2, LineBytes: 128})
	return coherence.NewL1(0, c, &nullTransport{}, func(uint64) int { return 1 })
}

func TestCoreWindowBoundsRunahead(t *testing.T) {
	clock := int64(0)
	// Every entry is a memory op to a fresh line: all miss, none return.
	addr := uint64(0)
	tr := readerFunc(func() trace.Entry {
		addr += 128
		return trace.Entry{Gap: 2, Addr: addr}
	})
	const window = 12
	core := NewCore(0, CoreConfig{Width: 3, Window: window}, tr, blackholeL1(t), &clock, func(a uint64) uint64 { return a / 128 })
	for i := 0; i < 500; i++ {
		clock++
		core.Step()
	}
	// With no fills, the core can commit at most `window` instructions
	// past the first miss (plus the gap before it).
	if core.Insts > window+4 {
		t.Errorf("core ran %d instructions ahead of an unresolved miss (window %d)", core.Insts, window)
	}
	if len(core.outstanding) == 0 {
		t.Error("no outstanding misses recorded")
	}
	if core.StallCycles == 0 {
		t.Error("no stalls recorded despite a blocked window")
	}
}

// readerFunc adapts a closure to trace.Reader.
type readerFunc func() trace.Entry

func (f readerFunc) Next() trace.Entry { return f() }

func TestCoreMSHRLimitBoundsMisses(t *testing.T) {
	clock := int64(0)
	addr := uint64(0)
	tr := readerFunc(func() trace.Entry {
		addr += 128
		return trace.Entry{Gap: 0, Addr: addr}
	})
	l1 := blackholeL1(t)
	l1.MaxMSHR = 4
	core := NewCore(0, CoreConfig{Width: 3, Window: 1 << 20}, tr, l1, &clock, func(a uint64) uint64 { return a / 128 })
	for i := 0; i < 200; i++ {
		clock++
		core.Step()
	}
	if l1.Outstanding() > 4 {
		t.Errorf("outstanding misses %d exceed the MSHR limit", l1.Outstanding())
	}
}
