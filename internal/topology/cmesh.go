package topology

import "fmt"

// CMesh is a concentrated mesh: a W x H router grid where each router serves
// C terminals. The paper's Figure 2(a) uses a 4x4 concentrated mesh with
// concentration degree 4 (64 terminals on 16 routers). Port layout per
// router: E, W, N, S (0..3) followed by C local terminal ports (4..4+C-1).
type CMesh struct {
	mesh *Mesh
	c    int
	name string
}

// NewCMesh returns a W x H concentrated mesh with concentration degree c.
func NewCMesh(w, h, c int) *CMesh {
	if c < 1 {
		panic(fmt.Sprintf("topology: concentration degree must be positive, got %d", c))
	}
	return &CMesh{mesh: NewMesh(w, h), c: c, name: fmt.Sprintf("cmesh%dx%dc%d", w, h, c)}
}

func (m *CMesh) Name() string           { return m.name }
func (m *CMesh) NumRouters() int        { return m.mesh.NumRouters() }
func (m *CMesh) NumTerminals() int      { return m.mesh.NumRouters() * m.c }
func (m *CMesh) Radix(r int) int        { return 4 + m.c }
func (m *CMesh) Dims() (int, int)       { return m.mesh.Dims() }
func (m *CMesh) Coord(r int) (int, int) { return m.mesh.Coord(r) }
func (m *CMesh) RouterAt(x, y int) int  { return m.mesh.RouterAt(x, y) }
func (m *CMesh) Concentration() int     { return m.c }

func (m *CMesh) Neighbor(r, p int) (Link, bool) {
	if p >= PortLocal {
		return Link{}, false
	}
	return m.mesh.Neighbor(r, p)
}

func (m *CMesh) TerminalRouter(t int) (int, int) {
	return t / m.c, PortLocal + t%m.c
}

func (m *CMesh) PortTerminal(r, p int) (int, bool) {
	if p < PortLocal || p >= PortLocal+m.c {
		return 0, false
	}
	return r*m.c + (p - PortLocal), true
}
