package topology

import "sort"

// LinkState overlays a Topology with per-link and per-router liveness.
// Links are bidirectional for failure purposes: failing either direction
// marks both down, matching a fail-stop physical link. The zero state is
// fully up. LinkState is a pure bookkeeping structure — the simulator and
// the fault-aware routing algorithms consult it but it moves no flits.
type LinkState struct {
	topo Topology
	// down[r][p] marks network port p of router r dead.
	down [][]bool
	// deadRouter[r] marks router r fail-stopped.
	deadRouter []bool
	downLinks  int
}

// NewLinkState returns an all-up link state for t.
func NewLinkState(t Topology) *LinkState {
	ls := &LinkState{
		topo:       t,
		down:       make([][]bool, t.NumRouters()),
		deadRouter: make([]bool, t.NumRouters()),
	}
	for r := range ls.down {
		ls.down[r] = make([]bool, t.Radix(r))
	}
	return ls
}

// Topology returns the underlying graph.
func (ls *LinkState) Topology() Topology { return ls.topo }

// FailLink marks both directions of the network link at (r, p) down. It
// reports whether the call changed anything (false for terminal/edge ports
// and already-dead links).
func (ls *LinkState) FailLink(r, p int) bool {
	link, ok := ls.topo.Neighbor(r, p)
	if !ok || ls.down[r][p] {
		return false
	}
	ls.down[r][p] = true
	ls.down[link.Router][link.Port] = true
	ls.downLinks++
	return true
}

// FailRouter marks router r dead and fails every network link touching it.
// It reports whether the router was alive.
func (ls *LinkState) FailRouter(r int) bool {
	if ls.deadRouter[r] {
		return false
	}
	ls.deadRouter[r] = true
	for p := 0; p < ls.topo.Radix(r); p++ {
		ls.FailLink(r, p)
	}
	return true
}

// Up reports whether network port p of router r is a live network link.
// Terminal and edge ports report false; use the Topology for those.
func (ls *LinkState) Up(r, p int) bool {
	if ls.down[r][p] {
		return false
	}
	_, ok := ls.topo.Neighbor(r, p)
	return ok
}

// RouterFailed reports whether router r has fail-stopped.
func (ls *LinkState) RouterFailed(r int) bool { return ls.deadRouter[r] }

// NumDownLinks returns the number of failed bidirectional links (a failed
// router contributes each of its links once).
func (ls *LinkState) NumDownLinks() int { return ls.downLinks }

// DownDirected lists every dead directed network port as (router, port)
// pairs in ascending order. Each failed bidirectional link appears twice,
// once per direction.
func (ls *LinkState) DownDirected() [][2]int {
	var out [][2]int
	for r := range ls.down {
		for p, d := range ls.down[r] {
			if !d {
				continue
			}
			if _, ok := ls.topo.Neighbor(r, p); ok {
				out = append(out, [2]int{r, p})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns an independent copy.
func (ls *LinkState) Clone() *LinkState {
	c := &LinkState{
		topo:       ls.topo,
		down:       make([][]bool, len(ls.down)),
		deadRouter: append([]bool(nil), ls.deadRouter...),
		downLinks:  ls.downLinks,
	}
	for r := range ls.down {
		c.down[r] = append([]bool(nil), ls.down[r]...)
	}
	return c
}

// ReachableFrom returns the set of routers reachable from router `from`
// over live links (including `from` itself, unless it has fail-stopped).
func (ls *LinkState) ReachableFrom(from int) []bool {
	seen := make([]bool, ls.topo.NumRouters())
	if ls.deadRouter[from] {
		return seen
	}
	queue := []int{from}
	seen[from] = true
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for p := 0; p < ls.topo.Radix(r); p++ {
			if !ls.Up(r, p) {
				continue
			}
			link, _ := ls.topo.Neighbor(r, p)
			if !seen[link.Router] {
				seen[link.Router] = true
				queue = append(queue, link.Router)
			}
		}
	}
	return seen
}

// Connected reports whether every live router can reach every other live
// router over live links. A fully dead network counts as connected
// (vacuously).
func (ls *LinkState) Connected() bool {
	first := -1
	for r := range ls.deadRouter {
		if !ls.deadRouter[r] {
			first = r
			break
		}
	}
	if first < 0 {
		return true
	}
	seen := ls.ReachableFrom(first)
	for r := range ls.deadRouter {
		if !ls.deadRouter[r] && !seen[r] {
			return false
		}
	}
	return true
}
