package topology

import "fmt"

// FBfly is a two-dimensional flattened butterfly (Kim, Dally, Abts — ISCA'07)
// as used in the paper's Figure 2(b): routers form a W x H grid, every router
// links directly to every other router in its row and in its column, and
// each router serves C terminals. The paper's instance is 4x4 routers with
// C=4 (64 terminals, 16 routers, radix 10).
//
// Port layout per router at grid position (x, y):
//
//	ports 0 .. W-2        row links, ordered by increasing destination column
//	                      (skipping the router's own column)
//	ports W-1 .. W+H-3    column links, ordered by increasing destination row
//	ports W+H-2 ..        C terminal ports
type FBfly struct {
	w, h, c int
	name    string
}

// NewFBfly returns a W x H flattened butterfly with concentration degree c.
func NewFBfly(w, h, c int) *FBfly {
	if w < 2 || h < 2 || c < 1 {
		panic(fmt.Sprintf("topology: invalid flattened butterfly %dx%d c=%d", w, h, c))
	}
	return &FBfly{w: w, h: h, c: c, name: fmt.Sprintf("fbfly%dx%dc%d", w, h, c)}
}

func (f *FBfly) Name() string           { return f.name }
func (f *FBfly) NumRouters() int        { return f.w * f.h }
func (f *FBfly) NumTerminals() int      { return f.w * f.h * f.c }
func (f *FBfly) Radix(r int) int        { return (f.w - 1) + (f.h - 1) + f.c }
func (f *FBfly) Dims() (int, int)       { return f.w, f.h }
func (f *FBfly) Coord(r int) (int, int) { return r % f.w, r / f.w }
func (f *FBfly) RouterAt(x, y int) int  { return y*f.w + x }
func (f *FBfly) Concentration() int     { return f.c }

// RowPort returns the output port at router r that reaches column dstX in
// the same row. It panics when dstX is the router's own column.
func (f *FBfly) RowPort(r, dstX int) int {
	x, _ := f.Coord(r)
	if dstX == x {
		panic("topology: fbfly row port to own column")
	}
	if dstX < x {
		return dstX
	}
	return dstX - 1
}

// ColPort returns the output port at router r that reaches row dstY in the
// same column.
func (f *FBfly) ColPort(r, dstY int) int {
	_, y := f.Coord(r)
	if dstY == y {
		panic("topology: fbfly col port to own row")
	}
	base := f.w - 1
	if dstY < y {
		return base + dstY
	}
	return base + dstY - 1
}

func (f *FBfly) firstTerminalPort() int { return (f.w - 1) + (f.h - 1) }

func (f *FBfly) Neighbor(r, p int) (Link, bool) {
	x, y := f.Coord(r)
	switch {
	case p < f.w-1: // row link
		dstX := p
		if dstX >= x {
			dstX++
		}
		n := f.RouterAt(dstX, y)
		return Link{n, f.RowPort(n, x)}, true
	case p < f.firstTerminalPort(): // column link
		dstY := p - (f.w - 1)
		if dstY >= y {
			dstY++
		}
		n := f.RouterAt(x, dstY)
		return Link{n, f.ColPort(n, y)}, true
	default:
		return Link{}, false
	}
}

func (f *FBfly) TerminalRouter(t int) (int, int) {
	return t / f.c, f.firstTerminalPort() + t%f.c
}

func (f *FBfly) PortTerminal(r, p int) (int, bool) {
	first := f.firstTerminalPort()
	if p < first || p >= first+f.c {
		return 0, false
	}
	return r*f.c + (p - first), true
}
