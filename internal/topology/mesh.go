package topology

import "fmt"

// Mesh is a W x H 2D mesh with one terminal per router. Router IDs are
// row-major: router 0 is the north-west corner, router W-1 the north-east
// corner. Each router has four network ports (E, W, N, S in that order; edge
// ports without a neighbor still exist but are unconnected terminals of
// radix accounting — we instead omit them: edge routers have a smaller
// radix, with ports renumbered compactly) — to keep port numbering uniform
// and simple, the mesh keeps all five ports on every router and marks edge
// ports as absent.
type Mesh struct {
	w, h int
	// wrap turns the mesh into a torus.
	wrap bool
	name string
}

// NewMesh returns a W x H mesh with one terminal per router.
func NewMesh(w, h int) *Mesh {
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("topology: mesh dimensions must be at least 2x2, got %dx%d", w, h))
	}
	return &Mesh{w: w, h: h, name: fmt.Sprintf("mesh%dx%d", w, h)}
}

// NewTorus returns a W x H torus (a mesh with wraparound links) with one
// terminal per router.
func NewTorus(w, h int) *Mesh {
	m := NewMesh(w, h)
	m.wrap = true
	m.name = fmt.Sprintf("torus%dx%d", w, h)
	return m
}

func (m *Mesh) Name() string      { return m.name }
func (m *Mesh) NumRouters() int   { return m.w * m.h }
func (m *Mesh) NumTerminals() int { return m.w * m.h }
func (m *Mesh) Wrap() bool        { return m.wrap }

// Radix returns 5 for every router: E, W, N, S and the local terminal port.
// On a mesh (no wrap), edge routers report radix 5 as well; their
// edge-facing ports are simply never used because Neighbor and PortTerminal
// both return !ok for them. The simulator skips such dead ports.
func (m *Mesh) Radix(r int) int { return 5 }

func (m *Mesh) Dims() (int, int) { return m.w, m.h }

func (m *Mesh) Coord(r int) (x, y int) { return r % m.w, r / m.w }

func (m *Mesh) RouterAt(x, y int) int { return y*m.w + x }

// Neighbor resolves the mesh/torus network ports. Opposite directions pair
// up (an eastbound flit arrives on the neighbor's west port).
func (m *Mesh) Neighbor(r, p int) (Link, bool) {
	x, y := m.Coord(r)
	switch p {
	case PortEast:
		if x == m.w-1 {
			if !m.wrap {
				return Link{}, false
			}
			return Link{m.RouterAt(0, y), PortWest}, true
		}
		return Link{m.RouterAt(x+1, y), PortWest}, true
	case PortWest:
		if x == 0 {
			if !m.wrap {
				return Link{}, false
			}
			return Link{m.RouterAt(m.w-1, y), PortEast}, true
		}
		return Link{m.RouterAt(x-1, y), PortEast}, true
	case PortNorth:
		if y == 0 {
			if !m.wrap {
				return Link{}, false
			}
			return Link{m.RouterAt(x, m.h-1), PortSouth}, true
		}
		return Link{m.RouterAt(x, y-1), PortSouth}, true
	case PortSouth:
		if y == m.h-1 {
			if !m.wrap {
				return Link{}, false
			}
			return Link{m.RouterAt(x, 0), PortNorth}, true
		}
		return Link{m.RouterAt(x, y+1), PortNorth}, true
	}
	return Link{}, false
}

func (m *Mesh) TerminalRouter(t int) (int, int) { return t, PortLocal }

func (m *Mesh) PortTerminal(r, p int) (int, bool) {
	if p == PortLocal {
		return r, true
	}
	return 0, false
}

// HopsXY returns the hop count between terminals src and dst under
// dimension-ordered routing (including torus shortest wrap choices).
func (m *Mesh) HopsXY(src, dst int) int {
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)
	return m.dimDist(sx, dx, m.w) + m.dimDist(sy, dy, m.h)
}

func (m *Mesh) dimDist(a, b, size int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if m.wrap && size-d < d {
		d = size - d
	}
	return d
}

// BisectionLinks returns, for the vertical bisection cut between columns
// w/2-1 and w/2, the list of (router, outputPort) pairs whose link crosses
// the cut in the eastward direction. On a torus the wraparound links between
// column w-1 and column 0 also cross the cut region in standard accounting;
// they are included. HeteroNoC's constant-bisection constraint is checked
// against this set.
func (m *Mesh) BisectionLinks() [][2]int {
	var out [][2]int
	cut := m.w / 2
	for y := 0; y < m.h; y++ {
		out = append(out, [2]int{m.RouterAt(cut-1, y), PortEast})
		if m.wrap {
			out = append(out, [2]int{m.RouterAt(m.w-1, y), PortEast})
		}
	}
	return out
}
