package topology

import (
	"testing"
	"testing/quick"
)

func TestMeshValidate(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {4, 4}, {8, 8}, {3, 5}} {
		m := NewMesh(dims[0], dims[1])
		if err := Validate(m); err != nil {
			t.Errorf("mesh %v: %v", dims, err)
		}
	}
}

func TestTorusValidate(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {4, 4}, {8, 8}, {3, 5}} {
		m := NewTorus(dims[0], dims[1])
		if err := Validate(m); err != nil {
			t.Errorf("torus %v: %v", dims, err)
		}
	}
}

func TestCMeshValidate(t *testing.T) {
	if err := Validate(NewCMesh(4, 4, 4)); err != nil {
		t.Fatal(err)
	}
	if err := Validate(NewCMesh(2, 3, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestFBflyValidate(t *testing.T) {
	if err := Validate(NewFBfly(4, 4, 4)); err != nil {
		t.Fatal(err)
	}
	if err := Validate(NewFBfly(2, 2, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	m := NewMesh(8, 8)
	for r := 0; r < m.NumRouters(); r++ {
		x, y := m.Coord(r)
		if got := m.RouterAt(x, y); got != r {
			t.Fatalf("router %d -> (%d,%d) -> %d", r, x, y, got)
		}
	}
}

func TestMeshNeighborGeometry(t *testing.T) {
	m := NewMesh(8, 8)
	// Router 0 is the NW corner: no west, no north.
	if _, ok := m.Neighbor(0, PortWest); ok {
		t.Error("NW corner has a west neighbor")
	}
	if _, ok := m.Neighbor(0, PortNorth); ok {
		t.Error("NW corner has a north neighbor")
	}
	if l, ok := m.Neighbor(0, PortEast); !ok || l.Router != 1 || l.Port != PortWest {
		t.Errorf("east of router 0 = %+v, %v", l, ok)
	}
	if l, ok := m.Neighbor(0, PortSouth); !ok || l.Router != 8 || l.Port != PortNorth {
		t.Errorf("south of router 0 = %+v, %v", l, ok)
	}
	// Center router has all four.
	center := m.RouterAt(4, 4)
	for _, p := range []int{PortEast, PortWest, PortNorth, PortSouth} {
		if _, ok := m.Neighbor(center, p); !ok {
			t.Errorf("center router missing port %s", DirName(p))
		}
	}
}

func TestTorusWraparound(t *testing.T) {
	m := NewTorus(8, 8)
	if l, ok := m.Neighbor(0, PortWest); !ok || l.Router != 7 {
		t.Errorf("torus west wrap of router 0 = %+v, %v", l, ok)
	}
	if l, ok := m.Neighbor(0, PortNorth); !ok || l.Router != 56 {
		t.Errorf("torus north wrap of router 0 = %+v, %v", l, ok)
	}
}

func TestHopsXY(t *testing.T) {
	m := NewMesh(8, 8)
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 7, 7},
		{0, 63, 14},
		{9, 18, 2},
	}
	for _, c := range cases {
		if got := m.HopsXY(c.src, c.dst); got != c.want {
			t.Errorf("HopsXY(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
	tor := NewTorus(8, 8)
	if got := tor.HopsXY(0, 63); got != 2 {
		t.Errorf("torus HopsXY(0,63) = %d, want 2 (wraparound)", got)
	}
	if got := tor.HopsXY(0, 7); got != 1 {
		t.Errorf("torus HopsXY(0,7) = %d, want 1", got)
	}
}

func TestHopsSymmetric(t *testing.T) {
	m := NewMesh(8, 8)
	tor := NewTorus(8, 8)
	f := func(a, b uint8) bool {
		s, d := int(a)%64, int(b)%64
		return m.HopsXY(s, d) == m.HopsXY(d, s) && tor.HopsXY(s, d) == tor.HopsXY(d, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBisectionLinks(t *testing.T) {
	m := NewMesh(8, 8)
	links := m.BisectionLinks()
	if len(links) != 8 {
		t.Fatalf("mesh8x8 bisection links = %d, want 8", len(links))
	}
	for _, l := range links {
		x, _ := m.Coord(l[0])
		if x != 3 {
			t.Errorf("bisection link from column %d, want 3", x)
		}
		if l[1] != PortEast {
			t.Errorf("bisection link uses port %d, want east", l[1])
		}
	}
	tor := NewTorus(8, 8)
	if got := len(tor.BisectionLinks()); got != 16 {
		t.Errorf("torus bisection links = %d, want 16", got)
	}
}

// countLinks counts undirected router-to-router links by walking every
// (router, port) pair; each link is seen from both ends.
func countLinks(t *testing.T, m *Mesh) int {
	t.Helper()
	ends := 0
	for r := 0; r < m.NumRouters(); r++ {
		for p := 0; p < m.Radix(r); p++ {
			if p == PortLocal {
				continue
			}
			if link, ok := m.Neighbor(r, p); ok {
				// The reverse port must point straight back.
				back, ok := m.Neighbor(link.Router, link.Port)
				if !ok || back.Router != r || back.Port != p {
					t.Fatalf("link %d.%d -> %d.%d not symmetric", r, p, link.Router, link.Port)
				}
				ends++
			}
		}
	}
	if ends%2 != 0 {
		t.Fatalf("odd number of link endpoints %d", ends)
	}
	return ends / 2
}

func TestMeshTorusLinkCountsNxM(t *testing.T) {
	for _, tc := range []struct{ w, h int }{{2, 2}, {4, 8}, {8, 4}, {3, 5}, {16, 16}, {32, 32}} {
		mesh := NewMesh(tc.w, tc.h)
		// A w x h mesh has (w-1)h horizontal and w(h-1) vertical links.
		if got, want := countLinks(t, mesh), (tc.w-1)*tc.h+tc.w*(tc.h-1); got != want {
			t.Errorf("mesh%dx%d links = %d, want %d", tc.w, tc.h, got, want)
		}
		// A torus closes every row and column ring: wh + wh links.
		torus := NewTorus(tc.w, tc.h)
		if got, want := countLinks(t, torus), 2*tc.w*tc.h; got != want {
			t.Errorf("torus%dx%d links = %d, want %d", tc.w, tc.h, got, want)
		}
		// Vertical bisection: h eastward cut links on the mesh, 2h with
		// wraparound.
		if got := len(mesh.BisectionLinks()); got != tc.h {
			t.Errorf("mesh%dx%d bisection = %d, want %d", tc.w, tc.h, got, tc.h)
		}
		if got := len(torus.BisectionLinks()); got != 2*tc.h {
			t.Errorf("torus%dx%d bisection = %d, want %d", tc.w, tc.h, got, 2*tc.h)
		}
	}
}

func TestTorusWraparoundNxM(t *testing.T) {
	tor := NewTorus(4, 8)
	// East off the right edge of row 2 lands on column 0 of row 2.
	if link, ok := tor.Neighbor(tor.RouterAt(3, 2), PortEast); !ok || link.Router != tor.RouterAt(0, 2) {
		t.Errorf("4x8 torus east wrap: got %+v, %v", link, ok)
	}
	// South off the bottom of column 1 lands on row 0 of column 1.
	if link, ok := tor.Neighbor(tor.RouterAt(1, 7), PortSouth); !ok || link.Router != tor.RouterAt(1, 0) {
		t.Errorf("4x8 torus south wrap: got %+v, %v", link, ok)
	}
	// Wrap shortest-path distances on the non-square shape.
	if got := tor.HopsXY(tor.RouterAt(0, 0), tor.RouterAt(3, 7)); got != 2 {
		t.Errorf("4x8 torus corner-to-corner hops = %d, want 2", got)
	}
}

func TestCMeshTerminals(t *testing.T) {
	m := NewCMesh(4, 4, 4)
	if m.NumTerminals() != 64 {
		t.Fatalf("cmesh terminals = %d, want 64", m.NumTerminals())
	}
	if m.Radix(0) != 8 {
		t.Fatalf("cmesh radix = %d, want 8", m.Radix(0))
	}
	r, p := m.TerminalRouter(13)
	if r != 3 || p != PortLocal+1 {
		t.Errorf("terminal 13 at %d.%d, want 3.%d", r, p, PortLocal+1)
	}
	term, ok := m.PortTerminal(3, PortLocal+1)
	if !ok || term != 13 {
		t.Errorf("port terminal = %d,%v want 13", term, ok)
	}
}

func TestFBflyConnectivity(t *testing.T) {
	f := NewFBfly(4, 4, 4)
	if f.Radix(0) != 10 {
		t.Fatalf("fbfly radix = %d, want 10", f.Radix(0))
	}
	if f.NumTerminals() != 64 {
		t.Fatalf("fbfly terminals = %d, want 64", f.NumTerminals())
	}
	// Every router must reach every other router in its row and column in
	// one hop, and the row/col port helpers must agree with Neighbor.
	for r := 0; r < f.NumRouters(); r++ {
		x, y := f.Coord(r)
		for dx := 0; dx < 4; dx++ {
			if dx == x {
				continue
			}
			p := f.RowPort(r, dx)
			l, ok := f.Neighbor(r, p)
			if !ok || l.Router != f.RouterAt(dx, y) {
				t.Fatalf("router %d row port to col %d reaches %+v", r, dx, l)
			}
		}
		for dy := 0; dy < 4; dy++ {
			if dy == y {
				continue
			}
			p := f.ColPort(r, dy)
			l, ok := f.Neighbor(r, p)
			if !ok || l.Router != f.RouterAt(x, dy) {
				t.Fatalf("router %d col port to row %d reaches %+v", r, dy, l)
			}
		}
	}
}

func TestMeshPanicsOnTinyDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMesh(1,1) did not panic")
		}
	}()
	NewMesh(1, 1)
}

func TestDirName(t *testing.T) {
	if DirName(PortEast) != "E" || DirName(PortWest) != "W" || DirName(PortNorth) != "N" || DirName(PortSouth) != "S" {
		t.Error("direction names wrong")
	}
	if DirName(PortLocal) != "L0" || DirName(PortLocal+2) != "L2" {
		t.Error("local port names wrong")
	}
}
