// Package topology defines the network graphs used by the HeteroNoC study:
// 2D mesh, 2D torus, concentrated mesh, and flattened butterfly.
//
// A Topology is a directed multigraph of routers. Every router exposes a
// fixed set of numbered ports. A port is either a network port, connected to
// a specific input port of a neighboring router, or a terminal port, attached
// to exactly one terminal (a core/cache tile network interface). Terminals
// are numbered independently of routers so that concentrated topologies can
// attach several terminals to one router.
package topology

import "fmt"

// Link identifies the far side of a network port: the neighboring router and
// the input-port index on that router where flits arrive.
type Link struct {
	Router int
	Port   int
}

// Topology is the static structure of a network.
type Topology interface {
	// Name returns a short human-readable identifier such as "mesh8x8".
	Name() string
	// NumRouters returns the number of routers.
	NumRouters() int
	// NumTerminals returns the number of attached terminals (nodes).
	NumTerminals() int
	// Radix returns the total number of ports on router r, including
	// terminal ports.
	Radix(r int) int
	// Neighbor resolves network port p of router r. ok is false when p is a
	// terminal port.
	Neighbor(r, p int) (Link, bool)
	// TerminalRouter returns the router and local port that terminal t is
	// attached to.
	TerminalRouter(t int) (router, port int)
	// PortTerminal reports whether port p of router r is a terminal port and
	// if so which terminal it serves.
	PortTerminal(r, p int) (t int, ok bool)
}

// Grid is implemented by topologies laid out on a 2D grid of routers. The
// routing packages use it for dimension-ordered decisions, and the HeteroNoC
// layouts use it to place big routers geometrically.
type Grid interface {
	Topology
	// Dims returns the grid width (columns) and height (rows) in routers.
	Dims() (w, h int)
	// Coord returns the (x, y) grid position of router r, with x growing
	// east and y growing south; router 0 is the north-west corner.
	Coord(r int) (x, y int)
	// RouterAt returns the router at grid position (x, y).
	RouterAt(x, y int) int
}

// Direction constants for the four mesh/torus network ports. Terminal ports
// follow the network ports, starting at PortLocal.
const (
	PortEast = iota
	PortWest
	PortNorth
	PortSouth
	PortLocal // first terminal port on mesh/torus routers
)

// DirName returns a printable name for a mesh/torus port index.
func DirName(p int) string {
	switch p {
	case PortEast:
		return "E"
	case PortWest:
		return "W"
	case PortNorth:
		return "N"
	case PortSouth:
		return "S"
	default:
		return fmt.Sprintf("L%d", p-PortLocal)
	}
}

// Validate exhaustively checks the structural invariants of a topology:
// bidirectional link consistency, terminal attachment consistency, and port
// classification (every port is exactly one of network or terminal). It is
// used by tests and by simulator construction as a guard against malformed
// custom topologies.
func Validate(t Topology) error {
	for r := 0; r < t.NumRouters(); r++ {
		for p := 0; p < t.Radix(r); p++ {
			link, isNet := t.Neighbor(r, p)
			term, isTerm := t.PortTerminal(r, p)
			if isNet && isTerm {
				return fmt.Errorf("topology %s: router %d port %d is both network and terminal", t.Name(), r, p)
			}
			// A port that is neither is a dead edge port (mesh boundary);
			// the simulator skips those.
			if isNet {
				if link.Router < 0 || link.Router >= t.NumRouters() {
					return fmt.Errorf("topology %s: router %d port %d links to out-of-range router %d", t.Name(), r, p, link.Router)
				}
				if link.Port < 0 || link.Port >= t.Radix(link.Router) {
					return fmt.Errorf("topology %s: router %d port %d links to out-of-range port %d of router %d", t.Name(), r, p, link.Port, link.Router)
				}
				// The reverse port must point straight back for the credit
				// channel to be well defined.
				back, ok := t.Neighbor(link.Router, link.Port)
				if !ok || back.Router != r || back.Port != p {
					return fmt.Errorf("topology %s: link %d.%d -> %d.%d is not symmetric", t.Name(), r, p, link.Router, link.Port)
				}
			}
			if isTerm {
				tr, tp := t.TerminalRouter(term)
				if tr != r || tp != p {
					return fmt.Errorf("topology %s: terminal %d attachment mismatch (%d.%d vs %d.%d)", t.Name(), term, tr, tp, r, p)
				}
			}
		}
	}
	seen := make(map[[2]int]int)
	for term := 0; term < t.NumTerminals(); term++ {
		r, p := t.TerminalRouter(term)
		if r < 0 || r >= t.NumRouters() || p < 0 || p >= t.Radix(r) {
			return fmt.Errorf("topology %s: terminal %d attached out of range (%d.%d)", t.Name(), term, r, p)
		}
		if prev, dup := seen[[2]int{r, p}]; dup {
			return fmt.Errorf("topology %s: terminals %d and %d share port %d.%d", t.Name(), prev, term, r, p)
		}
		seen[[2]int{r, p}] = term
	}
	return nil
}
