package topology

import "testing"

func TestFailLinkIsSymmetric(t *testing.T) {
	m := NewMesh(4, 4)
	ls := NewLinkState(m)
	if !ls.Up(0, PortEast) {
		t.Fatal("fresh link not up")
	}
	if !ls.FailLink(0, PortEast) {
		t.Fatal("FailLink on a live link reported no change")
	}
	if ls.Up(0, PortEast) {
		t.Error("failed direction still up")
	}
	link, _ := m.Neighbor(0, PortEast)
	if ls.Up(link.Router, link.Port) {
		t.Error("reverse direction still up after symmetric failure")
	}
	if ls.FailLink(0, PortEast) {
		t.Error("re-failing a dead link reported a change")
	}
	if ls.FailLink(link.Router, link.Port) {
		t.Error("failing the reverse of a dead link reported a change")
	}
	if ls.NumDownLinks() != 1 {
		t.Errorf("NumDownLinks = %d, want 1 (bidirectional links count once)", ls.NumDownLinks())
	}
	dd := ls.DownDirected()
	if len(dd) != 2 {
		t.Fatalf("DownDirected = %v, want both directions of one link", dd)
	}
}

func TestFailLinkRejectsNonNetworkPorts(t *testing.T) {
	m := NewMesh(4, 4)
	ls := NewLinkState(m)
	// Router 0 sits in the corner: local, west and north ports have no
	// network neighbor and must not be failable.
	for _, p := range []int{PortLocal, PortWest, PortNorth} {
		if _, ok := m.Neighbor(0, p); ok {
			t.Fatalf("port %d of corner router unexpectedly has a neighbor", p)
		}
		if ls.FailLink(0, p) {
			t.Errorf("FailLink accepted non-network port %d", p)
		}
	}
	if ls.NumDownLinks() != 0 {
		t.Errorf("NumDownLinks = %d after refused failures", ls.NumDownLinks())
	}
}

func TestFailRouterKillsAllItsLinks(t *testing.T) {
	m := NewMesh(4, 4)
	ls := NewLinkState(m)
	r := m.RouterAt(1, 1) // interior: four network links
	if !ls.FailRouter(r) {
		t.Fatal("FailRouter on a live router reported no change")
	}
	if !ls.RouterFailed(r) {
		t.Error("router not marked failed")
	}
	if ls.FailRouter(r) {
		t.Error("re-failing a dead router reported a change")
	}
	for p := 0; p < m.Radix(r); p++ {
		if ls.Up(r, p) {
			t.Errorf("port %d of failed router still up", p)
		}
	}
	if ls.NumDownLinks() != 4 {
		t.Errorf("NumDownLinks = %d, want 4 for an interior router", ls.NumDownLinks())
	}
	if seen := ls.ReachableFrom(r); countTrue(seen) != 0 {
		t.Error("failed router reaches routers")
	}
}

func TestConnectedAndReachableFrom(t *testing.T) {
	m := NewMesh(4, 4)
	ls := NewLinkState(m)
	if !ls.Connected() {
		t.Fatal("fresh mesh not connected")
	}
	if countTrue(ls.ReachableFrom(0)) != 16 {
		t.Fatal("fresh mesh not fully reachable")
	}
	// Sever the corner router 0 (east and south links) without failing it.
	ls.FailLink(0, PortEast)
	ls.FailLink(0, PortSouth)
	if ls.Connected() {
		t.Error("mesh with an isolated live router reported connected")
	}
	if got := countTrue(ls.ReachableFrom(0)); got != 1 {
		t.Errorf("isolated router reaches %d routers, want 1 (itself)", got)
	}
	if got := countTrue(ls.ReachableFrom(5)); got != 15 {
		t.Errorf("main component sees %d routers, want 15", got)
	}
	// Failing the isolated router removes it from the live set entirely,
	// and the remaining component is connected again.
	ls.FailRouter(0)
	if !ls.Connected() {
		t.Error("mesh not connected after the severed router fail-stopped")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := NewMesh(4, 4)
	ls := NewLinkState(m)
	ls.FailLink(0, PortEast)
	c := ls.Clone()
	c.FailRouter(5)
	if ls.RouterFailed(5) {
		t.Error("clone mutation leaked into the original")
	}
	if !c.RouterFailed(5) || c.Up(0, PortEast) {
		t.Error("clone did not carry or extend the original state")
	}
	if ls.NumDownLinks() != 1 {
		t.Errorf("original NumDownLinks = %d, want 1", ls.NumDownLinks())
	}
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}
