// Package prof wires the standard runtime/pprof file profiles into the
// command-line tools, so kernel optimization work can profile the real
// sweep workloads (`experiments -cpuprofile ...`) instead of only the
// micro-benchmarks.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuFile is non-empty. The returned stop
// function ends the CPU profile and, when memFile is non-empty, writes a
// heap profile (after a GC, so it reflects live objects); call it once on
// the normal exit path. Either file name may be empty to skip that profile.
func Start(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}, nil
}
