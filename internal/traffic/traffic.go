// Package traffic provides the synthetic workloads of the paper's
// network-only evaluation: destination patterns (uniform random, nearest
// neighbor, transpose, bit complement) combined with injection processes
// (Bernoulli, self-similar Pareto on/off), plus a load-sweep runner with
// warmup/measurement phases matching the paper's methodology.
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"heteronoc/internal/topology"
)

// Pattern maps a source terminal to a destination terminal.
type Pattern interface {
	Name() string
	// Dst picks the destination of a packet injected at src. It must not
	// return src unless the network has a single terminal.
	Dst(src int, rng *rand.Rand) int
}

// UniformRandom sends each packet to a terminal chosen uniformly among all
// other terminals.
type UniformRandom struct{ N int }

func (u UniformRandom) Name() string { return "uniform-random" }

func (u UniformRandom) Dst(src int, rng *rand.Rand) int {
	d := rng.Intn(u.N - 1)
	if d >= src {
		d++
	}
	return d
}

// NearestNeighbor sends each packet to one of the source's grid neighbors,
// chosen uniformly.
type NearestNeighbor struct{ Grid topology.Grid }

func (n NearestNeighbor) Name() string { return "nearest-neighbor" }

func (n NearestNeighbor) Dst(src int, rng *rand.Rand) int {
	r, _ := n.Grid.TerminalRouter(src)
	x, y := n.Grid.Coord(r)
	w, h := n.Grid.Dims()
	var cands []int
	for _, d := range [][2]int{{x + 1, y}, {x - 1, y}, {x, y + 1}, {x, y - 1}} {
		if d[0] >= 0 && d[0] < w && d[1] >= 0 && d[1] < h {
			cands = append(cands, n.Grid.RouterAt(d[0], d[1]))
		}
	}
	nr := cands[rng.Intn(len(cands))]
	// One terminal per router on the plain mesh used for NN experiments.
	return nr
}

// Transpose sends (x, y) to (y, x) on a square grid; diagonal nodes fall
// back to uniform random so they still contribute load.
type Transpose struct{ Grid topology.Grid }

func (t Transpose) Name() string { return "transpose" }

func (t Transpose) Dst(src int, rng *rand.Rand) int {
	r, _ := t.Grid.TerminalRouter(src)
	x, y := t.Grid.Coord(r)
	if x == y {
		return UniformRandom{N: t.Grid.NumTerminals()}.Dst(src, rng)
	}
	return t.Grid.RouterAt(y, x)
}

// BitComplement sends terminal i to terminal (N-1)-i.
type BitComplement struct{ N int }

func (b BitComplement) Name() string { return "bit-complement" }

func (b BitComplement) Dst(src int, rng *rand.Rand) int {
	d := b.N - 1 - src
	if d == src {
		return UniformRandom{N: b.N}.Dst(src, rng)
	}
	return d
}

// Process decides when a terminal injects.
type Process interface {
	Name() string
	// Fire reports whether terminal t injects a packet this cycle.
	Fire(t int, cycle int64, rng *rand.Rand) bool
	// Rate returns the mean offered load in packets/node/cycle.
	Rate() float64
}

// Bernoulli injects independently each cycle with fixed probability.
type Bernoulli struct{ P float64 }

func (b Bernoulli) Name() string  { return fmt.Sprintf("bernoulli(%.4g)", b.P) }
func (b Bernoulli) Rate() float64 { return b.P }

func (b Bernoulli) Fire(t int, cycle int64, rng *rand.Rand) bool {
	return rng.Float64() < b.P
}

// SelfSimilar is a Pareto on/off source per terminal: during ON periods the
// terminal injects with PeakP per cycle, OFF periods are silent, and both
// period lengths are Pareto distributed with shape AlphaOn/AlphaOff, which
// produces the long-range-dependent burstiness of the paper's self-similar
// pattern.
type SelfSimilar struct {
	PeakP    float64
	AlphaOn  float64
	AlphaOff float64
	MeanOn   float64
	MeanOff  float64

	state []ssState
}

type ssState struct {
	on   bool
	left int
}

// NewSelfSimilar builds a self-similar process with mean load rate
// (packets/node/cycle) for n terminals. The ON-period peak rate is twice
// the mean; OFF periods are sized to make the time-average match.
func NewSelfSimilar(n int, rate float64) *SelfSimilar {
	s := &SelfSimilar{
		PeakP:    math.Min(2*rate, 0.9),
		AlphaOn:  1.9,
		AlphaOff: 1.25,
		MeanOn:   30,
	}
	// duty cycle = MeanOn/(MeanOn+MeanOff) must equal rate/PeakP.
	duty := rate / s.PeakP
	s.MeanOff = s.MeanOn * (1 - duty) / duty
	s.state = make([]ssState, n)
	return s
}

func (s *SelfSimilar) Name() string  { return "self-similar" }
func (s *SelfSimilar) Rate() float64 { return s.PeakP * s.MeanOn / (s.MeanOn + s.MeanOff) }

// pareto samples a Pareto variate with the given shape and mean.
func pareto(rng *rand.Rand, alpha, mean float64) int {
	// Pareto with shape a, scale xm has mean a*xm/(a-1).
	xm := mean * (alpha - 1) / alpha
	v := xm / math.Pow(rng.Float64(), 1/alpha)
	n := int(v + 0.5)
	if n < 1 {
		n = 1
	}
	if n > 100000 {
		n = 100000 // clip pathological tails so tests terminate
	}
	return n
}

func (s *SelfSimilar) Fire(t int, cycle int64, rng *rand.Rand) bool {
	st := &s.state[t]
	for st.left == 0 {
		st.on = !st.on
		if st.on {
			st.left = pareto(rng, s.AlphaOn, s.MeanOn)
		} else {
			st.left = pareto(rng, s.AlphaOff, s.MeanOff)
		}
	}
	st.left--
	return st.on && rng.Float64() < s.PeakP
}

// Hotspot sends a fraction of traffic to a single hot node and the rest
// uniformly — the classic stress pattern for centralized resources
// (memory controllers, directories).
type Hotspot struct {
	N int
	// Hot is the hot terminal.
	Hot int
	// Frac is the probability a packet targets the hot terminal.
	Frac float64
}

func (h Hotspot) Name() string { return "hotspot" }

func (h Hotspot) Dst(src int, rng *rand.Rand) int {
	if src != h.Hot && rng.Float64() < h.Frac {
		return h.Hot
	}
	return UniformRandom{N: h.N}.Dst(src, rng)
}

// Incast converges a fraction of all traffic onto a small sink set —
// the many-to-few shape memory-controller tiles see when every core
// misses at once. The generalization of Hotspot to multiple sinks.
type Incast struct {
	N int
	// Sinks are the converged-upon terminals (e.g. the MC tiles).
	Sinks []int
	// Frac is the probability a packet targets a sink (chosen uniformly
	// among sinks other than the source).
	Frac float64
}

func (in Incast) Name() string { return "incast" }

func (in Incast) Dst(src int, rng *rand.Rand) int {
	if len(in.Sinks) > 0 && rng.Float64() < in.Frac {
		d := in.Sinks[rng.Intn(len(in.Sinks))]
		if d != src {
			return d
		}
	}
	return UniformRandom{N: in.N}.Dst(src, rng)
}
