package traffic

import "math/rand"

// newRNG returns a deterministic source for a given seed so every
// experiment is reproducible run to run.
func newRNG(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 42
	}
	return rand.New(rand.NewSource(seed))
}
