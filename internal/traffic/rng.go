package traffic

import "math/rand"

// newRNG returns a deterministic source for a given seed so every
// experiment is reproducible run to run.
func newRNG(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 42
	}
	return rand.New(rand.NewSource(seed))
}

// countingSource wraps the standard source and counts Int63 draws, so a
// suspended run can record its RNG position and a resume can replay to
// it. It deliberately does NOT implement rand.Source64: rand.Rand then
// derives every variate (Float64, Intn, Uint64, ...) from Int63 alone,
// which makes "number of Int63 calls" a complete description of the
// stream position — and keeps the sequence bit-identical to the plain
// newRNG source used before suspension existed.
type countingSource struct {
	src rand.Source
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	if seed == 0 {
		seed = 42
	}
	return &countingSource{src: rand.NewSource(seed)}
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) { s.src.Seed(seed) }

// draws returns how many Int63 values have been consumed.
func (s *countingSource) draws() uint64 { return s.n }

// skip fast-forwards the source by discarding draws until n values have
// been consumed in total. Resume-time cost is linear in the recorded
// position (~100ms per hundred million draws), far below re-simulating.
func (s *countingSource) skip(n uint64) {
	for s.n < n {
		s.src.Int63()
		s.n++
	}
}
