package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"heteronoc/internal/noc"
	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

func TestUniformRandomNeverSelf(t *testing.T) {
	u := UniformRandom{N: 64}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		src := rng.Intn(64)
		d := u.Dst(src, rng)
		if d == src {
			t.Fatal("uniform random returned self")
		}
		if d < 0 || d >= 64 {
			t.Fatalf("destination %d out of range", d)
		}
	}
}

func TestUniformRandomCoversAll(t *testing.T) {
	u := UniformRandom{N: 8}
	rng := rand.New(rand.NewSource(2))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[u.Dst(0, rng)] = true
	}
	if len(seen) != 7 {
		t.Errorf("covered %d destinations, want 7", len(seen))
	}
}

func TestNearestNeighborAdjacency(t *testing.T) {
	m := topology.NewMesh(8, 8)
	nn := NearestNeighbor{Grid: m}
	rng := rand.New(rand.NewSource(3))
	f := func(s uint8) bool {
		src := int(s) % 64
		d := nn.Dst(src, rng)
		return m.HopsXY(src, d) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranspose(t *testing.T) {
	m := topology.NewMesh(8, 8)
	tr := Transpose{Grid: m}
	rng := rand.New(rand.NewSource(4))
	if d := tr.Dst(1, rng); d != 8 {
		t.Errorf("transpose(1) = %d, want 8", d)
	}
	if d := tr.Dst(26, rng); d != 19 { // (2,3) -> (3,2)
		t.Errorf("transpose(26) = %d, want 19", d)
	}
	// Diagonal falls back to some other node.
	if d := tr.Dst(9, rng); d == 9 {
		t.Error("transpose of diagonal returned self")
	}
}

func TestBitComplement(t *testing.T) {
	b := BitComplement{N: 64}
	rng := rand.New(rand.NewSource(5))
	if d := b.Dst(0, rng); d != 63 {
		t.Errorf("complement(0) = %d, want 63", d)
	}
	if d := b.Dst(10, rng); d != 53 {
		t.Errorf("complement(10) = %d, want 53", d)
	}
}

func TestBernoulliRate(t *testing.T) {
	p := Bernoulli{P: 0.1}
	rng := rand.New(rand.NewSource(6))
	fires := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if p.Fire(0, int64(i), rng) {
			fires++
		}
	}
	got := float64(fires) / trials
	if got < 0.09 || got > 0.11 {
		t.Errorf("bernoulli(0.1) measured %.4f", got)
	}
}

func TestSelfSimilarMeanRate(t *testing.T) {
	s := NewSelfSimilar(4, 0.05)
	rng := rand.New(rand.NewSource(7))
	fires := 0
	const trials = 400000
	for i := 0; i < trials; i++ {
		for term := 0; term < 4; term++ {
			if s.Fire(term, int64(i), rng) {
				fires++
			}
		}
	}
	got := float64(fires) / (4 * trials)
	if got < 0.03 || got > 0.07 {
		t.Errorf("self-similar mean rate %.4f, want ~0.05", got)
	}
}

func TestSelfSimilarBurstiness(t *testing.T) {
	// The variance of per-window packet counts must exceed a Bernoulli
	// process of the same mean (that is what bursty means).
	const rate, windows, winLen = 0.05, 400, 100
	count := func(p Process, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		out := make([]float64, windows)
		for w := 0; w < windows; w++ {
			c := 0
			for i := 0; i < winLen; i++ {
				if p.Fire(0, int64(w*winLen+i), rng) {
					c++
				}
			}
			out[w] = float64(c)
		}
		return out
	}
	varOf := func(xs []float64) float64 {
		var sum, sq float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		for _, x := range xs {
			sq += (x - mean) * (x - mean)
		}
		return sq / float64(len(xs))
	}
	vs := varOf(count(NewSelfSimilar(1, rate), 8))
	vb := varOf(count(Bernoulli{P: rate}, 8))
	if vs <= vb {
		t.Errorf("self-similar window variance %.3f not above bernoulli %.3f", vs, vb)
	}
}

func buildBaseline() (*noc.Network, error) {
	m := topology.NewMesh(8, 8)
	return noc.New(noc.Config{
		Topo:           m,
		Routing:        routing.NewXY(m),
		Routers:        []noc.RouterConfig{{VCs: 3, BufDepth: 5}},
		FlitWidthBits:  192,
		WatchdogCycles: 20000,
	})
}

func TestRunProducesStats(t *testing.T) {
	net, err := buildBaseline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, RunConfig{
		Pattern:        UniformRandom{N: 64},
		Process:        Bernoulli{P: 0.01},
		DataFlits:      6,
		WarmupPackets:  200,
		MeasurePackets: 2000,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency <= 0 {
		t.Error("no latency measured")
	}
	if res.Saturated {
		t.Error("low-load run reported saturated")
	}
	if res.AcceptedRate < 0.008 || res.AcceptedRate > 0.012 {
		t.Errorf("accepted rate %.4f, want ~0.01", res.AcceptedRate)
	}
	sum := res.QueuingLatency + res.BlockingLatency + res.TransferLatency
	if diff := sum - res.AvgLatency; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("breakdown sums to %.3f, total %.3f", sum, res.AvgLatency)
	}
}

func TestRunDetectsSaturation(t *testing.T) {
	net, err := buildBaseline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, RunConfig{
		Pattern:        UniformRandom{N: 64},
		Process:        Bernoulli{P: 0.2}, // way past saturation
		DataFlits:      6,
		WarmupPackets:  200,
		MeasurePackets: 3000,
		Seed:           1,
		MaxCycles:      5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Error("overdriven network not reported saturated")
	}
	if res.AcceptedRate >= res.OfferedRate {
		t.Error("accepted >= offered past saturation")
	}
}

func TestSweepMonotoneLatency(t *testing.T) {
	pts, err := Sweep(buildBaseline, func(n *noc.Network) Pattern { return UniformRandom{N: 64} },
		[]float64{0.005, 0.03}, 6, 100, 1500, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[1].Result.AvgLatency <= pts[0].Result.AvgLatency {
		t.Errorf("latency did not grow with load: %.2f -> %.2f",
			pts[0].Result.AvgLatency, pts[1].Result.AvgLatency)
	}
}

func TestInjectionFairnessAcrossSources(t *testing.T) {
	// Under UR Bernoulli traffic every source must receive service within
	// a reasonable band of the mean (no source starves).
	net, err := buildBaseline()
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 64)
	net.SetOnPacket(func(p *noc.Packet) { counts[p.Src]++ })
	_, err = Run(net, RunConfig{
		Pattern:        UniformRandom{N: 64},
		Process:        Bernoulli{P: 0.02},
		DataFlits:      6,
		WarmupPackets:  0,
		MeasurePackets: 12000,
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	mean := float64(total) / 64
	for src, c := range counts {
		if float64(c) < mean*0.6 || float64(c) > mean*1.4 {
			t.Errorf("source %d delivered %d packets, mean %.0f (unfair)", src, c, mean)
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	h := Hotspot{N: 64, Hot: 27, Frac: 0.3}
	rng := rand.New(rand.NewSource(11))
	hot := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		src := rng.Intn(64)
		d := h.Dst(src, rng)
		if d == src {
			t.Fatal("hotspot returned self")
		}
		if d == 27 {
			hot++
		}
	}
	frac := float64(hot) / trials
	// 30% targeted + ~1.1% of the uniform remainder.
	if frac < 0.27 || frac > 0.36 {
		t.Errorf("hot fraction %.3f, want ~0.31", frac)
	}
}
