package traffic

import (
	"context"
	"errors"
	"testing"

	"heteronoc/internal/noc"
	"heteronoc/internal/suspend"
)

// suspendAfter flips the controller to "suspend requested" once the
// network reaches the given cycle, via the network's on-cycle hook (which
// runs on the stepping goroutine, so no synchronization is needed).
func suspendAfter(net *noc.Network, c *suspend.Controller, cycle int64) {
	net.SetOnCycle(func(cyc int64) {
		if cyc >= cycle {
			c.RequestSuspend()
		}
	})
}

func suspendRunCfg(proc Process) RunConfig {
	return RunConfig{
		Pattern:        UniformRandom{N: 64},
		Process:        proc,
		DataFlits:      6,
		WarmupPackets:  200,
		MeasurePackets: 2000,
		Seed:           7,
		SuspendKey:     "suspend-test-run",
	}
}

// TestSuspendResumeByteIdentical is the core resume-equivalence property:
// a run suspended mid-flight and resumed on a fresh network produces
// exactly the RunResult of an uninterrupted run — for the stateless
// Bernoulli process and for the stateful self-similar process (whose
// per-terminal on/off state and RNG position must both survive).
func TestSuspendResumeByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name    string
		proc    func() Process
		suspend int64 // cycle at which to request suspension
	}{
		{"bernoulli-warmup", func() Process { return Bernoulli{P: 0.01} }, 100},
		{"bernoulli-measure", func() Process { return Bernoulli{P: 0.01} }, 2000},
		{"selfsimilar-measure", func() Process { return NewSelfSimilar(64, 0.01) }, 2000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Control: uninterrupted run.
			net, err := buildBaseline()
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(net, suspendRunCfg(tc.proc()))
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted run: suspend at tc.suspend cycles...
			dir := t.TempDir()
			ctrl := suspend.NewController(dir)
			ctx := suspend.WithController(context.Background(), ctrl)
			net2, err := buildBaseline()
			if err != nil {
				t.Fatal(err)
			}
			suspendAfter(net2, ctrl, tc.suspend)
			_, err = RunCtx(ctx, net2, suspendRunCfg(tc.proc()))
			if !errors.Is(err, suspend.ErrSuspended) {
				t.Fatalf("interrupted run: err = %v, want ErrSuspended", err)
			}
			if saves, _ := ctrl.Stats(); saves != 1 {
				t.Fatalf("saves = %d, want 1", saves)
			}

			// ...then resume on a fresh network with a fresh controller
			// over the same directory (a restarted server).
			ctrl2 := suspend.NewController(dir)
			ctx2 := suspend.WithController(context.Background(), ctrl2)
			net3, err := buildBaseline()
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunCtx(ctx2, net3, suspendRunCfg(tc.proc()))
			if err != nil {
				t.Fatal(err)
			}
			if _, resumes := ctrl2.Stats(); resumes != 1 {
				t.Fatalf("resumes = %d, want 1", resumes)
			}
			if !resultsEqual(got, want) {
				t.Fatalf("resumed result differs:\n got %+v\nwant %+v", got, want)
			}
			// The checkpoint must be consumed: a third run starts fresh.
			if _, ok := ctrl2.Load(suspendRunCfg(tc.proc()).SuspendKey); ok {
				t.Error("checkpoint not cleared after successful resume")
			}
		})
	}
}

func resultsEqual(a, b RunResult) bool {
	if a.Cycles != b.Cycles || a.AvgLatency != b.AvgLatency || a.AvgHops != b.AvgHops ||
		a.AcceptedRate != b.AcceptedRate || a.OfferedRate != b.OfferedRate ||
		a.CombineRate != b.CombineRate || a.Saturated != b.Saturated ||
		a.P50 != b.P50 || a.P95 != b.P95 || a.P99 != b.P99 ||
		a.QueuingLatency != b.QueuingLatency || a.BlockingLatency != b.BlockingLatency ||
		a.TransferLatency != b.TransferLatency || len(a.Activity) != len(b.Activity) {
		return false
	}
	for i := range a.Activity {
		if a.Activity[i] != b.Activity[i] {
			return false
		}
	}
	return true
}

// TestCancellationBounded pins the acceptance criterion that a cancelled
// run stops within one cycle batch: cancel at cycle 5000 and assert the
// network never advanced past 5000+CancelBatch.
func TestCancellationBounded(t *testing.T) {
	net, err := buildBaseline()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = 5000
	net.SetOnCycle(func(c int64) {
		if c == cancelAt {
			cancel()
		}
	})
	_, err = RunCtx(ctx, net, RunConfig{
		Pattern:        UniformRandom{N: 64},
		Process:        Bernoulli{P: 0.01},
		DataFlits:      6,
		WarmupPackets:  1 << 30, // never satisfied: only cancellation stops it
		MeasurePackets: 1,
		Seed:           3,
		MaxCycles:      1 << 40,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := net.Cycle(); c > cancelAt+CancelBatch {
		t.Errorf("network reached cycle %d, want <= %d (cancel + one batch)", c, cancelAt+CancelBatch)
	}
}

// TestSuspendUnsupportedProcessFallsBack: a process that cannot be
// serialized must not wedge the run — it keeps simulating and stops via
// its context instead.
type opaqueProcess struct{ Bernoulli }

func (opaqueProcess) Name() string { return "opaque" }

func TestSuspendUnsupportedProcessFallsBack(t *testing.T) {
	ctrl := suspend.NewController(t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	ctx = suspend.WithController(ctx, ctrl)
	net, err := buildBaseline()
	if err != nil {
		t.Fatal(err)
	}
	ctrl.RequestSuspend()
	net.SetOnCycle(func(c int64) {
		if c == 3*CancelBatch {
			cancel()
		}
	})
	cfg := suspendRunCfg(opaqueProcess{Bernoulli{P: 0.01}})
	_, err = RunCtx(ctx, net, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (fallback)", err)
	}
	if saves, _ := ctrl.Stats(); saves != 0 {
		t.Errorf("saves = %d, want 0 for unsupported process", saves)
	}
}

// TestResumeCorruptCheckpointStartsFresh: a corrupted checkpoint is not
// loadable (suspend.Load deletes it), so the run silently starts over and
// still matches the uninterrupted control.
func TestResumeCorruptCheckpointStartsFresh(t *testing.T) {
	net, err := buildBaseline()
	if err != nil {
		t.Fatal(err)
	}
	cfg := suspendRunCfg(Bernoulli{P: 0.01})
	want, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctrl := suspend.NewController(t.TempDir())
	if err := ctrl.Save(cfg.SuspendKey, []byte("NOCCKPT01 garbage that fails validation")); err == nil {
		// Save does not validate; Load must reject it.
		if _, ok := ctrl.Load(cfg.SuspendKey); ok {
			t.Fatal("corrupt checkpoint loaded")
		}
	}
	ctx := suspend.WithController(context.Background(), ctrl)
	net2, err := buildBaseline()
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCtx(ctx, net2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(got, want) {
		t.Fatalf("fresh-start result differs:\n got %+v\nwant %+v", got, want)
	}
}
