package traffic

import (
	"context"
	"fmt"
	"math/rand"

	"heteronoc/internal/chaos"
	"heteronoc/internal/noc"
	"heteronoc/internal/obs"
	"heteronoc/internal/reqstat"
	"heteronoc/internal/suspend"
)

// CancelBatch is the cooperative-cancellation granularity of RunCtx: the
// step loop consults its context (and the suspend controller) every this
// many cycles. The check is a handful of atomic loads, so at 256 cycles
// the overhead is unmeasurable, while a cancelled request stops consuming
// CPU within one batch — the bound the serve acceptance tests pin.
const CancelBatch = 256

// RunConfig controls one measured simulation, mirroring the paper's
// methodology: warm the network with WarmupPackets, then measure
// MeasurePackets (the paper uses 1,000 and 100,000).
type RunConfig struct {
	Pattern        Pattern
	Process        Process
	DataFlits      int // flits per injected packet
	WarmupPackets  int
	MeasurePackets int
	Seed           int64
	// MaxCycles aborts runs that cannot deliver the measurement quota
	// (deeply saturated networks); the statistics gathered so far are
	// returned. Zero means 200k cycles.
	MaxCycles int64
	// SuspendKey names this run for checkpoint-suspend — normally the
	// same content-addressed string the run is cached under. When set and
	// the context carries a suspend.Controller, a suspend request makes
	// the run checkpoint itself ("noc-run" NOCCKPT01) and return
	// ErrSuspended, and a later run with the same key resumes from the
	// recorded cycle. Empty disables suspension (cancellation still works).
	SuspendKey string
}

// RunResult summarizes one measured simulation.
type RunResult struct {
	Cycles          int64
	AvgLatency      float64 // cycles
	QueuingLatency  float64
	BlockingLatency float64
	TransferLatency float64
	AvgHops         float64
	// AcceptedRate is the delivered throughput in packets/node/cycle.
	AcceptedRate float64
	// OfferedRate is the configured injection rate in packets/node/cycle.
	OfferedRate float64
	CombineRate float64
	Saturated   bool
	Activity    []noc.RouterActivity
	// Latency percentiles in cycles (tail behavior; the jitter story of
	// Section 6 shows up here too).
	P50, P95, P99 float64
	// Attr is the mean per-packet causal latency attribution in cycles
	// over the measurement window, indexed by noc.AttrBucket order (queue,
	// vc_alloc, switch_alloc, credit, link, serialization). The buckets sum
	// to AvgLatency up to AttrResidual, which is zero whenever attribution
	// stayed enabled for the whole run.
	Attr         [noc.NumAttrBuckets]float64
	AttrResidual float64
	// RouterAttr is the per-router attribution rollup in raw cycles,
	// indexed [router][bucket] — the input of per-router-class breakdowns.
	RouterAttr [][noc.NumAttrBuckets]int64
}

// Run drives net with the configured traffic until the measurement quota is
// met, then drains in-flight measured packets.
func Run(net *noc.Network, cfg RunConfig) (RunResult, error) {
	return RunCtx(context.Background(), net, cfg)
}

// Run phases, recorded in suspend checkpoints.
const (
	phaseWarmup  = 0
	phaseMeasure = 1
)

// RunCtx is Run with cooperative cancellation and checkpoint-suspend.
// The step loop checks ctx every CancelBatch cycles; a done context stops
// the simulation within one batch and returns ctx.Err(). If the context
// carries a suspend.Controller whose suspend has been requested and
// cfg.SuspendKey is set, the run instead serializes its complete state
// (network snapshot, RNG position, injection-process state, phase) and
// returns suspend.ErrSuspended; a later RunCtx with the same key on a
// freshly built identical network resumes where it left off and produces
// a byte-identical RunResult.
func RunCtx(ctx context.Context, net *noc.Network, cfg RunConfig) (RunResult, error) {
	if cfg.DataFlits <= 0 {
		return RunResult{}, fmt.Errorf("traffic: DataFlits must be positive")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 200000
	}
	src := newCountingSource(cfg.Seed)
	rng := rand.New(src)
	terms := numTerminals(cfg.Pattern)
	if terms == 0 {
		terms = 64
	}
	sus := suspend.FromContext(ctx)
	cha := chaos.FromContext(ctx)
	span := obs.SpanFrom(ctx)

	phase := phaseWarmup
	start := net.Cycle()
	if cfg.SuspendKey != "" {
		if data, ok := sus.Load(cfg.SuspendKey); ok {
			rs := span.Child("resume")
			p, ps, err := resumeRun(net, cfg, src, data)
			rs.End()
			if err != nil {
				// The network may be partially restored and cannot be
				// stepped; drop the checkpoint so the caller's retry
				// starts clean.
				sus.Clear(cfg.SuspendKey)
				return RunResult{}, fmt.Errorf("traffic: resume: %w", err)
			}
			phase, start = p, ps
		}
	}

	inject := func() {
		for t := 0; t < terms; t++ {
			if cfg.Process.Fire(t, net.Cycle(), rng) {
				dst := cfg.Pattern.Dst(t, rng)
				// Synthetic load has no delivery obligation: traffic offered
				// to a severed destination under a fault plan is simply not
				// accepted, like a real NI refusing a send to a dead node.
				_ = net.TryInject(&noc.Packet{Src: t, Dst: dst, NumFlits: cfg.DataFlits})
			}
		}
	}

	// sinceCheck counts cycles since the last batch boundary; check
	// settles the per-request cycle account and consults the suspend and
	// cancellation signals.
	sinceCheck := 0
	check := func(ph int, phStart int64) error {
		reqstat.AddCycles(ctx, int64(sinceCheck))
		sinceCheck = 0
		if cha != nil {
			cha.Hit(chaos.PointRunStall)
		}
		// Suspend is tested before plain cancellation so a shutting-down
		// server checkpoints in-flight runs rather than discarding them.
		if cfg.SuspendKey != "" && sus.Requested() {
			ss := span.Child("suspend.save")
			if data, err := snapshotRun(net, cfg, src, ph, phStart); err == nil {
				if err := sus.Save(cfg.SuspendKey, data); err == nil {
					ss.End()
					return suspend.ErrSuspended
				}
			}
			ss.End()
			// Snapshot or store failed (unsupported process, no directory):
			// fall through — the run continues until its context stops it.
		}
		return ctx.Err()
	}
	step := func(ph int, phStart int64) error {
		if err := net.Step(); err != nil {
			return err
		}
		if sinceCheck++; sinceCheck >= CancelBatch {
			return check(ph, phStart)
		}
		return nil
	}

	// Warmup phase (skipped when resuming into measurement).
	if phase == phaseWarmup {
		ws := span.Child("warmup")
		for net.Stats().PacketsInjected < int64(cfg.WarmupPackets) && net.Cycle()-start < cfg.MaxCycles {
			inject()
			if err := step(phaseWarmup, start); err != nil {
				ws.End()
				return RunResult{}, err
			}
		}
		ws.End()
		reqstat.AddCycles(ctx, int64(sinceCheck))
		sinceCheck = 0
		net.ResetStats()
		start = net.Cycle()
	}
	// Measurement phase: keep offering load until the quota of measured
	// packets has been received or the cycle budget runs out.
	ms := span.Child("measure")
	for net.Stats().PacketsReceived < int64(cfg.MeasurePackets) && net.Cycle()-start < cfg.MaxCycles {
		inject()
		if err := step(phaseMeasure, start); err != nil {
			ms.End()
			return RunResult{}, err
		}
	}
	ms.End()
	reqstat.AddCycles(ctx, int64(sinceCheck))
	if cfg.SuspendKey != "" {
		sus.Clear(cfg.SuspendKey)
	}
	s := net.Stats()
	res := RunResult{
		Cycles:      s.Cycles,
		AvgLatency:  s.AvgLatency(),
		AvgHops:     s.AvgHops(),
		OfferedRate: cfg.Process.Rate(),
		CombineRate: net.CombineRate(),
		Activity:    net.Activity(),
	}
	res.QueuingLatency, res.BlockingLatency, res.TransferLatency = s.Breakdown()
	res.P50, res.P95, res.P99 = s.Percentile(0.50), s.Percentile(0.95), s.Percentile(0.99)
	if s.PacketsReceived > 0 {
		attr := s.Attribution()
		for b, v := range attr {
			res.Attr[b] = float64(v) / float64(s.PacketsReceived)
		}
		res.AttrResidual = float64(s.AttrResidual()) / float64(s.PacketsReceived)
	}
	res.RouterAttr = net.RouterAttribution()
	if s.Cycles > 0 {
		res.AcceptedRate = float64(s.PacketsReceived) / float64(s.Cycles) / float64(terms)
	}
	res.Saturated = s.PacketsReceived < int64(cfg.MeasurePackets) ||
		(res.OfferedRate > 0 && res.AcceptedRate < 0.85*res.OfferedRate)
	return res, nil
}

// numTerminals extracts the terminal count from the known pattern types.
func numTerminals(p Pattern) int {
	switch v := p.(type) {
	case UniformRandom:
		return v.N
	case BitComplement:
		return v.N
	case NearestNeighbor:
		return v.Grid.NumTerminals()
	case Transpose:
		return v.Grid.NumTerminals()
	case Hotspot:
		return v.N
	case Incast:
		return v.N
	}
	return 0
}

// Sweep runs a load sweep over injection rates and returns one result per
// rate. buildNet must return a fresh network for each point.
type SweepPoint struct {
	Rate   float64
	Result RunResult
}

// Sweep measures the network across the given injection rates. selfSimilar
// selects the Pareto on/off process instead of Bernoulli.
func Sweep(buildNet func() (*noc.Network, error), pattern func(n *noc.Network) Pattern,
	rates []float64, dataFlits, warmup, measure int, selfSimilar bool, seed int64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, r := range rates {
		net, err := buildNet()
		if err != nil {
			return nil, err
		}
		var proc Process
		if selfSimilar {
			proc = NewSelfSimilar(net.Config().Topo.NumTerminals(), r)
		} else {
			proc = Bernoulli{P: r}
		}
		res, err := Run(net, RunConfig{
			Pattern:        pattern(net),
			Process:        proc,
			DataFlits:      dataFlits,
			WarmupPackets:  warmup,
			MeasurePackets: measure,
			Seed:           seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Rate: r, Result: res})
	}
	return out, nil
}
