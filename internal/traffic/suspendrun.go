package traffic

// Checkpoint-suspend for a measured run. A "noc-run" NOCCKPT01 container
// wraps a full network snapshot with the runner's own position: which
// phase it was in, where that phase started, how many RNG draws have been
// consumed, and the injection process's mutable state. Together those are
// everything RunCtx needs to continue a run on a freshly built identical
// network and produce the same RunResult an uninterrupted run would —
// the RNG stream is replayed by draw count (the counting source routes
// every variate through Int63, so the count is the complete position),
// and the self-similar process's per-terminal on/off state is restored
// verbatim. Only the synthetic processes are suspendable: Bernoulli is
// stateless and SelfSimilar serializes its state slice; an unknown
// process makes snapshotRun refuse, and the run then falls back to plain
// cancellation.

import (
	"fmt"

	"heteronoc/internal/ckpt"
	"heteronoc/internal/noc"
)

const (
	runCkptKind    = "noc-run"
	runCkptVersion = 1

	procTagBernoulli   = "bernoulli"
	procTagSelfSimilar = "selfsimilar"

	// maxProcStates bounds the decoded state-slice length; anything larger
	// in a CRC-valid container means an encoder bug, not a bigger machine.
	maxProcStates = 1 << 22
)

// snapshotRun serializes the complete state of an in-flight run.
func snapshotRun(net *noc.Network, cfg RunConfig, src *countingSource, phase int, phaseStart int64) ([]byte, error) {
	tag, states, err := processState(cfg.Process)
	if err != nil {
		return nil, err
	}
	netSnap, err := net.Snapshot(nil)
	if err != nil {
		return nil, err
	}
	w := ckpt.NewWriter(ckpt.Header{
		Kind:        runCkptKind,
		Version:     runCkptVersion,
		Cycle:       net.Cycle(),
		Fingerprint: net.Fingerprint(),
	})
	w.I64(cfg.Seed)
	w.Int(phase)
	w.I64(phaseStart)
	w.U64(src.draws())
	w.Str(tag)
	w.Int(len(states))
	for _, st := range states {
		w.Bool(st.on)
		w.Int(st.left)
	}
	w.Bytes(netSnap)
	return w.Finish(), nil
}

// resumeRun restores a snapshotRun checkpoint into net (which must be a
// freshly built network of the same configuration), fast-forwards src,
// and rewrites the process state. On error the network may be partially
// restored and must be discarded.
func resumeRun(net *noc.Network, cfg RunConfig, src *countingSource, data []byte) (phase int, phaseStart int64, err error) {
	r, err := ckpt.NewReader(data)
	if err != nil {
		return 0, 0, err
	}
	h := r.Header()
	if h.Kind != runCkptKind {
		return 0, 0, fmt.Errorf("traffic: checkpoint kind %q, want %q", h.Kind, runCkptKind)
	}
	if h.Version != runCkptVersion {
		return 0, 0, fmt.Errorf("traffic: run checkpoint version %d, want %d", h.Version, runCkptVersion)
	}
	seed := r.I64()
	phase = r.Int()
	phaseStart = r.I64()
	draws := r.U64()
	tag := r.StrMax(32)
	n := r.Int()
	if r.Err() == nil && (n < 0 || n > maxProcStates) {
		return 0, 0, fmt.Errorf("%w: process state length %d", ckpt.ErrCorrupt, n)
	}
	states := make([]ssState, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		var st ssState
		st.on = r.Bool()
		st.left = r.Int()
		states = append(states, st)
	}
	netSnap := r.Bytes()
	if err := r.Done(); err != nil {
		return 0, 0, err
	}
	if seed != cfg.Seed {
		return 0, 0, fmt.Errorf("traffic: checkpoint seed %d does not match run seed %d", seed, cfg.Seed)
	}
	if phase != phaseWarmup && phase != phaseMeasure {
		return 0, 0, fmt.Errorf("%w: unknown run phase %d", ckpt.ErrCorrupt, phase)
	}
	if err := applyProcessState(cfg.Process, tag, states); err != nil {
		return 0, 0, err
	}
	if err := net.RestoreSnapshot(netSnap, nil); err != nil {
		return 0, 0, err
	}
	src.skip(draws)
	return phase, phaseStart, nil
}

// processState extracts the serializable mutable state of a process.
func processState(p Process) (tag string, states []ssState, err error) {
	switch v := p.(type) {
	case Bernoulli:
		return procTagBernoulli, nil, nil
	case *SelfSimilar:
		return procTagSelfSimilar, v.state, nil
	default:
		return "", nil, fmt.Errorf("traffic: process %q does not support suspend", p.Name())
	}
}

// applyProcessState rewrites p's mutable state from a checkpoint,
// verifying the process type matches what was suspended.
func applyProcessState(p Process, tag string, states []ssState) error {
	switch tag {
	case procTagBernoulli:
		if _, ok := p.(Bernoulli); !ok {
			return fmt.Errorf("traffic: checkpoint process %q does not match run process %q", tag, p.Name())
		}
		return nil
	case procTagSelfSimilar:
		ss, ok := p.(*SelfSimilar)
		if !ok {
			return fmt.Errorf("traffic: checkpoint process %q does not match run process %q", tag, p.Name())
		}
		if len(states) != len(ss.state) {
			return fmt.Errorf("traffic: checkpoint has %d terminal states, run has %d", len(states), len(ss.state))
		}
		copy(ss.state, states)
		return nil
	default:
		return fmt.Errorf("traffic: unknown checkpoint process tag %q", tag)
	}
}
