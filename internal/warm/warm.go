// Package warm shares CMP cache-warmup state across runs via checkpoints.
//
// Every default-trace CMP run warms its caches from the same deterministic
// per-core trace generators, and the warm state is independent of the
// layout, topology and memory-controller placement (warmup touches only
// L1s, home directories and trace positions — see cmp.WarmSnapshot). So
// every run of one benchmark at one mesh size shares a single
// (bench, tiles, entries, line size, prefetch) warmup: the first arrival
// warms a template system, snapshots it, and every run — first included —
// restores the checkpoint. The checkpoint rides the runcache, so with a
// disk tier configured, a later process skips warmup replay entirely.
//
// This began as experiments-internal machinery (PR 5); it lives in its own
// package so the design-space search can give each CMP-mode candidate
// evaluation an O(1) warm restore — one network simulation per candidate
// instead of a full warmup replay — without importing experiments.
//
// Restored and directly-warmed systems are bit-identical (pinned by the
// cmp snapshot tests and TestFigureOutputIdenticalWithWarmupSharing), so
// run output cannot depend on the sharing toggle.
package warm

import (
	"context"
	"fmt"
	"sync/atomic"

	"heteronoc/internal/cmp"
	"heteronoc/internal/core"
	"heteronoc/internal/runcache"
	"heteronoc/internal/trace"
)

var (
	sharing atomic.Bool

	// restores / fallbacks let tests assert the sharing path actually ran
	// rather than silently falling back.
	restores  atomic.Int64
	fallbacks atomic.Int64
)

func init() { sharing.Store(true) }

// SetSharing toggles checkpoint-based warmup sharing (the -nowarmshare
// flag of cmd/experiments). Output is identical either way; off means
// every run replays its own warmup trace.
func SetSharing(on bool) { sharing.Store(on) }

// Stats returns how many runs restored a shared warm checkpoint and how
// many fell back to a direct warmup.
func Stats() (restored, fellBack int64) {
	return restores.Load(), fallbacks.Load()
}

// ResetStats zeroes the restore/fallback counters (tests).
func ResetStats() {
	restores.Store(0)
	fallbacks.Store(0)
}

// Key addresses a shared warm checkpoint. Deliberately narrow: no layout,
// no MC placement, no scale name — warm state depends on none of them,
// and the narrow key is what collapses the per-layout warmups of a figure
// sweep (or a search generation) into one.
func Key(bench string, n, entries, lineBytes int, prefetch bool) string {
	return fmt.Sprintf("warm|%s|n=%d|e=%d|lb=%d|pf=%t", bench, n, entries, lineBytes, prefetch)
}

// System brings the freshly built s to its post-warmup state, via a shared
// checkpoint when sharing is enabled and applicable. Equivalent to
// s.Warmup(entries) bit for bit.
func System(ctx context.Context, s *cmp.System, l core.Layout, bench string, entries int) {
	if !sharing.Load() || !runcache.Enabled() || entries <= 0 {
		s.Warmup(entries)
		return
	}
	n := l.Mesh.NumTerminals()
	key := Key(bench, n, entries, s.LineBytes(), s.PrefetchEnabled())
	snap, err := runcache.ForCtx(ctx, key, func(context.Context) ([]byte, error) {
		t, err := template(l, bench, s.PrefetchEnabled())
		if err != nil {
			return nil, err
		}
		t.Warmup(entries)
		return t.WarmSnapshot()
	})
	if err == nil && len(snap) > 0 {
		if rerr := s.RestoreWarmSnapshot(snap); rerr == nil {
			restores.Add(1)
			return
		}
	}
	// Defensive: a failed restore degrades to the direct path, which
	// produces the identical state (just slower).
	fallbacks.Add(1)
	s.Warmup(entries)
}

// template builds a minimal system to generate a warm checkpoint: the
// baseline layout of the same size with the bench's standard trace
// generators. Its warm state equals that of any same-sized layout
// (TestWarmSnapshotSharedAcrossLayouts).
func template(l core.Layout, bench string, prefetch bool) (*cmp.System, error) {
	trs, err := trace.WorkloadTraces(bench, l.Mesh.NumTerminals(), 128)
	if err != nil {
		return nil, err
	}
	w, h := l.Mesh.Dims()
	return cmp.New(cmp.Config{Layout: core.NewBaseline(w, h), Traces: trs, Prefetch: prefetch})
}
