// Package plot renders the paper's figure types — load-latency line
// charts, improvement bar charts, utilization heat maps and
// latency-vs-jitter scatter plots — as standalone SVG documents using only
// the standard library. The experiments harness attaches these to its
// reports so `cmd/experiments -figdir` regenerates the paper's figures as
// image files.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// palette holds the categorical series colors (colorblind-safe).
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb",
}

// Color returns the i-th categorical color.
func Color(i int) string { return palette[i%len(palette)] }

// esc escapes text for SVG.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceTicks returns ~n round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		hi = lo + 1
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for span/step > float64(n)*2 {
		step *= 2
	}
	for span/step > float64(n) {
		step *= 2.5
		if span/step <= float64(n) {
			break
		}
	}
	start := math.Floor(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/2; v += step {
		if v >= lo-step/2 {
			ticks = append(ticks, v)
		}
	}
	return ticks
}

// fmtTick formats an axis value compactly.
func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// frame is the shared chart geometry.
type frame struct {
	w, h                   int
	left, right, top, bott int
}

func defaultFrame() frame { return frame{w: 640, h: 400, left: 70, right: 20, top: 40, bott: 55} }

func (f frame) plotW() int { return f.w - f.left - f.right }
func (f frame) plotH() int { return f.h - f.top - f.bott }

// header opens the SVG document.
func (f frame) header(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="Helvetica,Arial,sans-serif">`+"\n",
		f.w, f.h, f.w, f.h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", f.w, f.h)
	fmt.Fprintf(b, `<text x="%d" y="22" font-size="15" font-weight="bold" text-anchor="middle">%s</text>`+"\n",
		f.w/2, esc(title))
}

// axes draws the frame, ticks and labels for data ranges [x0,x1]x[y0,y1]
// and returns the data-to-pixel transforms.
func (f frame) axes(b *strings.Builder, x0, x1, y0, y1 float64, xlabel, ylabel string) (xf, yf func(float64) float64) {
	xf = func(v float64) float64 {
		return float64(f.left) + (v-x0)/(x1-x0)*float64(f.plotW())
	}
	yf = func(v float64) float64 {
		return float64(f.top) + (1-(v-y0)/(y1-y0))*float64(f.plotH())
	}
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333"/>`+"\n",
		f.left, f.top, f.plotW(), f.plotH())
	for _, t := range niceTicks(x0, x1, 6) {
		x := xf(t)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n",
			x, f.top+f.plotH(), x, f.top+f.plotH()+5)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, f.top+f.plotH()+18, fmtTick(t))
	}
	for _, t := range niceTicks(y0, y1, 6) {
		y := yf(t)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333"/>`+"\n",
			f.left-5, y, f.left, y)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`+"\n",
			f.left, y, f.left+f.plotW(), y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			f.left-8, y, fmtTick(t))
	}
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		f.left+f.plotW()/2, f.h-12, esc(xlabel))
	fmt.Fprintf(b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		f.top+f.plotH()/2, f.top+f.plotH()/2, esc(ylabel))
	return xf, yf
}

// Series is one line of a line chart.
type Series struct {
	Name string
	X, Y []float64
}

// LineChart is a Figure 7(a)-style multi-series plot.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// YMax optionally clips the y range (saturated points run away).
	YMax float64
}

// SVG renders the chart.
func (c *LineChart) SVG() string {
	f := defaultFrame()
	var b strings.Builder
	f.header(&b, c.Title)
	x0, x1 := math.Inf(1), math.Inf(-1)
	y0, y1 := 0.0, math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x0 = math.Min(x0, s.X[i])
			x1 = math.Max(x1, s.X[i])
			y1 = math.Max(y1, s.Y[i])
		}
	}
	if c.YMax > 0 && y1 > c.YMax {
		y1 = c.YMax
	}
	if math.IsInf(x0, 1) {
		x0, x1, y1 = 0, 1, 1
	}
	if y1 <= y0 {
		y1 = y0 + 1
	}
	xf, yf := f.axes(&b, x0, x1, y0, y1*1.05, c.XLabel, c.YLabel)
	for si, s := range c.Series {
		var pts []string
		for i := range s.X {
			y := s.Y[i]
			if y > y1 {
				y = y1
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xf(s.X[i]), yf(y)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), Color(si))
		for _, p := range pts {
			xy := strings.Split(p, ",")
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", xy[0], xy[1], Color(si))
		}
		// Legend.
		ly := f.top + 14 + 16*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			f.left+10, ly, f.left+34, ly, Color(si))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" dominant-baseline="middle">%s</text>`+"\n",
			f.left+40, ly, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// BarGroup is one cluster of bars (e.g. one benchmark).
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart is a Figure 7(b)/11/12-style grouped bar chart. With Stacked
// set, the series of each group pile on top of each other (the Figure 8
// breakdown style) instead of standing side by side; stacked values must
// be non-negative.
type BarChart struct {
	Title   string
	YLabel  string
	Series  []string // one name per bar within a group
	Groups  []BarGroup
	Stacked bool
}

// SVG renders the chart.
func (c *BarChart) SVG() string {
	f := defaultFrame()
	var b strings.Builder
	f.header(&b, c.Title)
	y0, y1 := 0.0, 0.0
	for _, g := range c.Groups {
		sum := 0.0
		for _, v := range g.Values {
			y0 = math.Min(y0, v)
			y1 = math.Max(y1, v)
			sum += v
		}
		if c.Stacked && sum > y1 {
			y1 = sum
		}
	}
	if y1 == y0 {
		y1 = y0 + 1
	}
	pad := (y1 - y0) * 0.1
	_, yf := f.axes(&b, 0, 1, y0-pad, y1+pad, "", c.YLabel)
	ng, ns := len(c.Groups), len(c.Series)
	if ng == 0 || ns == 0 {
		b.WriteString("</svg>\n")
		return b.String()
	}
	groupW := float64(f.plotW()) / float64(ng)
	barW := groupW * 0.8 / float64(ns)
	if c.Stacked {
		barW = groupW * 0.8
	}
	zero := yf(0)
	for gi, g := range c.Groups {
		gx := float64(f.left) + groupW*float64(gi) + groupW*0.1
		acc := 0.0
		for si, v := range g.Values {
			if si >= ns {
				break
			}
			if c.Stacked {
				base := yf(acc)
				top := yf(acc + v)
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					gx, top, barW, base-top, Color(si))
				acc += v
				continue
			}
			x := gx + barW*float64(si)
			y := yf(v)
			top, hgt := y, zero-y
			if hgt < 0 {
				top, hgt = zero, -hgt
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, top, barW, hgt, Color(si))
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			gx+groupW*0.4, f.top+f.plotH()+18, esc(g.Label))
	}
	for si, name := range c.Series {
		ly := f.top + 14 + 16*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="10" fill="%s"/>`+"\n",
			f.left+10, ly-8, Color(si))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" dominant-baseline="middle">%s</text>`+"\n",
			f.left+28, ly, esc(name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// HeatChart is a Figure 1/2-style utilization heat map.
type HeatChart struct {
	Title  string
	W, H   int
	Values []float64 // row-major fractions (0..1-ish)
}

// SVG renders the map with a blue-to-red scale and a legend bar.
func (c *HeatChart) SVG() string {
	const cell = 46
	w := c.W*cell + 140
	h := c.H*cell + 70
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="Helvetica,Arial,sans-serif">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="14" font-weight="bold" text-anchor="middle">%s</text>`+"\n",
		(c.W*cell+40)/2, esc(c.Title))
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range c.Values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi <= lo {
		hi = lo + 1
	}
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			v := c.Values[y*c.W+x]
			t := (v - lo) / (hi - lo)
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#fff"/>`+"\n",
				20+x*cell, 40+y*cell, cell, cell, heatColor(t))
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="middle" fill="%s">%.0f%%</text>`+"\n",
				20+x*cell+cell/2, 40+y*cell+cell/2+4, textColor(t), 100*v)
		}
	}
	// Legend bar.
	lx := 20 + c.W*cell + 20
	for i := 0; i <= 20; i++ {
		t := 1 - float64(i)/20
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="18" height="%d" fill="%s"/>`+"\n",
			lx, 40+i*(c.H*cell)/21, (c.H*cell)/21+1, heatColor(t))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%.0f%%</text>`+"\n", lx+24, 48, 100*hi)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%.0f%%</text>`+"\n", lx+24, 40+c.H*cell, 100*lo)
	b.WriteString("</svg>\n")
	return b.String()
}

// heatColor maps t in [0,1] onto a blue->yellow->red ramp.
func heatColor(t float64) string {
	t = math.Max(0, math.Min(1, t))
	var r, g, bl float64
	if t < 0.5 {
		u := t * 2
		r, g, bl = 40+u*(250-40), 70+u*(200-70), 200-u*150
	} else {
		u := (t - 0.5) * 2
		r, g, bl = 250-u*30, 200-u*160, 50-u*10
	}
	return fmt.Sprintf("#%02x%02x%02x", int(r), int(g), int(bl))
}

// textColor keeps cell labels legible on light and dark cells.
func textColor(t float64) string {
	if t > 0.25 && t < 0.75 {
		return "#222"
	}
	return "#fff"
}

// ScatterPoint is one labeled marker of a scatter plot.
type ScatterPoint struct {
	Label  string
	X, Y   float64
	Series int
}

// Scatter is a Figure 13(b)-style latency-vs-jitter plot.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	Names  []string // per-series legend names
	Points []ScatterPoint
}

// SVG renders the plot.
func (c *Scatter) SVG() string {
	f := defaultFrame()
	var b strings.Builder
	f.header(&b, c.Title)
	x0, x1 := math.Inf(1), math.Inf(-1)
	y0, y1 := math.Inf(1), math.Inf(-1)
	for _, p := range c.Points {
		x0, x1 = math.Min(x0, p.X), math.Max(x1, p.X)
		y0, y1 = math.Min(y0, p.Y), math.Max(y1, p.Y)
	}
	if math.IsInf(x0, 1) {
		x0, x1, y0, y1 = 0, 1, 0, 1
	}
	padX, padY := (x1-x0)*0.1+1e-9, (y1-y0)*0.1+1e-9
	xf, yf := f.axes(&b, x0-padX, x1+padX, y0-padY, y1+padY, c.XLabel, c.YLabel)
	for _, p := range c.Points {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s" fill-opacity="0.8"/>`+"\n",
			xf(p.X), yf(p.Y), Color(p.Series))
		if p.Label != "" {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9">%s</text>`+"\n",
				xf(p.X)+6, yf(p.Y)-4, esc(p.Label))
		}
	}
	for si, name := range c.Names {
		ly := f.top + 14 + 16*si
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="4" fill="%s"/>`+"\n", f.left+16, ly, Color(si))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" dominant-baseline="middle">%s</text>`+"\n",
			f.left+28, ly, esc(name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}
