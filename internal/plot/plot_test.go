package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// wellFormed parses the SVG as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg[:min(400, len(svg))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLineChartSVG(t *testing.T) {
	c := &LineChart{
		Title:  "Latency <vs> load & stuff",
		XLabel: "injection rate",
		YLabel: "latency (ns)",
		Series: []Series{
			{Name: "Baseline", X: []float64{0.01, 0.02, 0.03}, Y: []float64{10, 12, 30}},
			{Name: "Diagonal+BL", X: []float64{0.01, 0.02, 0.03}, Y: []float64{9, 10, 18}},
		},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	for _, want := range []string{"polyline", "Baseline", "Diagonal+BL", "injection rate", "&lt;vs&gt;"} {
		if !strings.Contains(svg, want) {
			t.Errorf("line chart missing %q", want)
		}
	}
}

func TestLineChartClipsAtYMax(t *testing.T) {
	c := &LineChart{
		Title:  "clip",
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{10, 100000}}},
		YMax:   50,
	}
	wellFormed(t, c.SVG())
}

func TestEmptyChartsDoNotPanic(t *testing.T) {
	wellFormed(t, (&LineChart{Title: "empty"}).SVG())
	wellFormed(t, (&BarChart{Title: "empty"}).SVG())
	wellFormed(t, (&Scatter{Title: "empty"}).SVG())
}

func TestBarChartSVG(t *testing.T) {
	c := &BarChart{
		Title:  "IPC improvement",
		YLabel: "%",
		Series: []string{"Center+BL", "Diagonal+BL"},
		Groups: []BarGroup{
			{Label: "SAP", Values: []float64{7, 4}},
			{Label: "TPC-C", Values: []float64{-2, 3}},
		},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Count(svg, "<rect") < 5 { // frame + 4 bars + legend boxes
		t.Error("bar chart missing bars")
	}
	if !strings.Contains(svg, "TPC-C") {
		t.Error("group label missing")
	}
}

func TestHeatChartSVG(t *testing.T) {
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i) / 15
	}
	c := &HeatChart{Title: "Buffer utilization", W: 4, H: 4, Values: vals}
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Count(svg, "<rect") < 16 {
		t.Error("heat map missing cells")
	}
}

func TestScatterSVG(t *testing.T) {
	c := &Scatter{
		Title:  "Latency vs jitter",
		XLabel: "std dev",
		YLabel: "latency",
		Names:  []string{"homo", "hetero"},
		Points: []ScatterPoint{
			{Label: "SAP", X: 0.6, Y: 20, Series: 0},
			{Label: "SAP", X: 0.4, Y: 16, Series: 1},
		},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Count(svg, "<circle") < 2 {
		t.Error("scatter missing points")
	}
}

func TestHeatColorRange(t *testing.T) {
	for _, v := range []float64{-1, 0, 0.25, 0.5, 0.75, 1, 2} {
		c := heatColor(v)
		if len(c) != 7 || c[0] != '#' {
			t.Errorf("heatColor(%v) = %q", v, c)
		}
	}
}

func TestNiceTicksProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		if math.Abs(lo) > 1e12 || math.Abs(hi) > 1e12 {
			return true
		}
		ticks := niceTicks(lo, hi, 6)
		if len(ticks) < 1 || len(ticks) > 20 {
			return false
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestColorCycles(t *testing.T) {
	if Color(0) != Color(len(palette)) {
		t.Error("palette does not cycle")
	}
}

func TestStackedBarChart(t *testing.T) {
	c := &BarChart{
		Title:   "Latency breakdown",
		YLabel:  "cycles",
		Series:  []string{"queuing", "blocking", "transfer"},
		Stacked: true,
		Groups: []BarGroup{
			{Label: "Baseline", Values: []float64{2, 18, 25}},
			{Label: "Diagonal+BL", Values: []float64{2, 9, 25}},
		},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Count(svg, "<rect") < 7 { // frame + 6 segments + legend
		t.Error("stacked chart missing segments")
	}
}
