package suspend

import "context"

type ctxKey struct{}

// WithController attaches c to the context; the traffic runner consults
// it at cycle-batch boundaries.
func WithController(ctx context.Context, c *Controller) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the attached controller, or nil (suspend disabled).
func FromContext(ctx context.Context) *Controller {
	c, _ := ctx.Value(ctxKey{}).(*Controller)
	return c
}
