// Package suspend implements cooperative checkpoint-suspend for long
// simulation runs. A graceful server shutdown cannot wait minutes for a
// full-scale sweep to finish, and killing it would forfeit the work; the
// middle path is a Controller the service layer attaches to each
// request's context. When shutdown begins the controller is flipped to
// "suspend requested"; the traffic step loop notices at its next cycle
// batch, serializes its complete run state (network snapshot plus runner
// position) as a NOCCKPT01 container, hands it to the controller's store,
// and unwinds with ErrSuspended. A restarted server that receives the
// same request finds the checkpoint under the run's content-addressed key
// and resumes from the recorded cycle — producing artifacts byte-identical
// to an uninterrupted run (pinned by the serve acceptance tests).
//
// The store is a directory of content-addressed .ckpt files with atomic
// temp+rename writes, mirroring the runcache disk tier's crash safety: a
// reader never observes a partial checkpoint, and any corrupt file is
// deleted and treated as absent (the run simply restarts from zero).
package suspend

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"

	"heteronoc/internal/ckpt"
)

// ErrSuspended is returned (possibly wrapped) by a run that checkpointed
// itself in response to a suspend request instead of completing. Cache
// layers must not memoize it and service layers translate it into a
// retryable condition, not a failure.
var ErrSuspended = errors.New("suspend: run suspended to checkpoint")

// Controller carries the suspend signal and the checkpoint store for one
// request. A nil *Controller is inert.
type Controller struct {
	dir       string
	requested atomic.Bool

	// saves / resumes count store traffic for metrics and tests.
	saves   atomic.Int64
	resumes atomic.Int64
}

// NewController returns a controller storing checkpoints under dir.
// An empty dir disables checkpointing: Requested can still be flipped
// (runs then stop via their context), but Save refuses and Load misses.
func NewController(dir string) *Controller {
	return &Controller{dir: dir}
}

// RequestSuspend flips the suspend signal. Idempotent.
func (c *Controller) RequestSuspend() {
	if c != nil {
		c.requested.Store(true)
	}
}

// Requested reports whether a suspend has been requested.
func (c *Controller) Requested() bool {
	return c != nil && c.requested.Load()
}

// Stats returns how many checkpoints this controller saved and resumed.
func (c *Controller) Stats() (saves, resumes int64) {
	if c == nil {
		return 0, 0
	}
	return c.saves.Load(), c.resumes.Load()
}

// path content-addresses a run key, like the runcache disk tier.
func (c *Controller) path(key string) string {
	sum := sha256.Sum256([]byte("heteronoc-suspend|v1|" + key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".ckpt")
}

// Save atomically stores a run checkpoint under key. data must be a
// complete NOCCKPT01 container (Load validates it on the way back in).
func (c *Controller) Save(key string, data []byte) error {
	if c == nil || c.dir == "" {
		return errors.New("suspend: no checkpoint directory configured")
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
		return err
	}
	c.saves.Add(1)
	return nil
}

// Load returns the stored checkpoint for key, validating the container's
// magic and CRC. A missing file misses; a corrupt file is deleted and
// misses — the run restarts from scratch rather than failing.
func (c *Controller) Load(key string) ([]byte, bool) {
	if c == nil || c.dir == "" {
		return nil, false
	}
	p := c.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	if _, err := ckpt.NewReader(data); err != nil {
		os.Remove(p)
		return nil, false
	}
	c.resumes.Add(1)
	return data, true
}

// Clear removes the checkpoint for key (called after the resumed run
// completes, so a crash mid-resume keeps the checkpoint).
func (c *Controller) Clear(key string) {
	if c == nil || c.dir == "" {
		return
	}
	os.Remove(c.path(key))
}

// Pending counts checkpoints in dir ("" → 0) — what a restarted server
// logs so suspended work is visible before the retries arrive.
func Pending(dir string) int {
	if dir == "" {
		return 0
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		return 0
	}
	return len(names)
}
