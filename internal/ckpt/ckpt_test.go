package ckpt

import (
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	h := Header{Kind: "test", Version: 3, Cycle: -7, Flits: 11, Queued: 2,
		NextPktID: 99, Fingerprint: 0xdeadbeefcafef00d}
	w := NewWriter(h)
	w.U64(0)
	w.U64(1 << 60)
	w.I64(-1 << 40)
	w.Int(-42)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.Bytes([]byte{1, 2, 3})
	w.Bytes(nil)
	w.Str("héllo")
	data := w.Finish()

	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Header() != h {
		t.Fatalf("header mismatch: got %+v want %+v", r.Header(), h)
	}
	if v := r.U64(); v != 0 {
		t.Errorf("U64 = %d", v)
	}
	if v := r.U64(); v != 1<<60 {
		t.Errorf("U64 = %d", v)
	}
	if v := r.I64(); v != -1<<40 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.Int(); v != -42 {
		t.Errorf("Int = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool sequence wrong")
	}
	if v := r.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if v := r.F64(); !math.IsInf(v, -1) {
		t.Errorf("F64 = %v", v)
	}
	if b := r.Bytes(); len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Errorf("Bytes = %v", b)
	}
	if b := r.Bytes(); len(b) != 0 {
		t.Errorf("empty Bytes = %v", b)
	}
	if s := r.Str(); s != "héllo" {
		t.Errorf("Str = %q", s)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	w := NewWriter(Header{Kind: "test", Version: 1})
	w.U64(12345)
	w.Str("payload")
	good := w.Finish()

	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:5],
		"badmagic":  append([]byte("XOCCKPT01"), good[9:]...),
		"truncated": good[:len(good)-6],
	}
	// One flipped byte anywhere must fail the CRC.
	for i := 0; i < len(good); i += 7 {
		b := append([]byte(nil), good...)
		b[i] ^= 0x40
		cases["flip@"+string(rune('0'+i%10))] = b
	}
	for name, data := range cases {
		if _, err := NewReader(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	w := NewWriter(Header{Kind: "test", Version: 1})
	w.U64(1)
	w.U64(2)
	data := w.Finish()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.U64() // consume only one of two fields
	if err := r.Done(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Done = %v, want ErrCorrupt", err)
	}
}

func TestStickyError(t *testing.T) {
	w := NewWriter(Header{Kind: "test", Version: 1})
	w.Bool(true)
	data := w.Finish()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Bool()
	r.U64() // past the end: sets sticky error
	if r.Err() == nil {
		t.Fatal("expected sticky error")
	}
	// Every subsequent accessor is a zero-value no-op.
	if r.U64() != 0 || r.I64() != 0 || r.Bool() || r.F64() != 0 || r.Str() != "" || r.Bytes() != nil {
		t.Error("accessors not inert after sticky error")
	}
}

func TestReadHeaderOnly(t *testing.T) {
	w := NewWriter(Header{Kind: "noc-net", Version: 1, Cycle: 500, Fingerprint: 42})
	w.U64(7)
	h, err := ReadHeader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != "noc-net" || h.Cycle != 500 || h.Fingerprint != 42 {
		t.Errorf("header = %+v", h)
	}
}
