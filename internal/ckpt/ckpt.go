// Package ckpt implements the NOCCKPT01 checkpoint container: a small,
// versioned, CRC-protected binary format used to serialize simulator
// state (noc.Network, noc.Reliable, cmp.System warm state) and cached
// experiment artifacts.
//
// Layout:
//
//	magic   "NOCCKPT01"                  (9 bytes)
//	kind    string                       (what is inside: "noc-net", ...)
//	version uvarint                      (per-kind schema version)
//	header  cycle, flits, queued, nextPktID, fingerprint
//	body    kind-specific varint-coded fields
//	crc32   IEEE, little-endian fixed32  (over everything preceding it)
//
// All integers are varints (zigzag for signed); strings and byte slices
// are length-prefixed. Readers carry a sticky error: after the first
// decode failure every subsequent call is a no-op returning zero values,
// and Err reports the failure. Any structural problem — short buffer, bad
// magic, CRC mismatch, truncation — yields an error wrapping ErrCorrupt,
// which cache layers treat as a miss rather than a failure.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic identifies a checkpoint container. The trailing "01" is the
// container version; kind payloads carry their own schema version.
const Magic = "NOCCKPT01"

// ErrCorrupt is wrapped by every decode error caused by malformed input
// (as opposed to a well-formed checkpoint for a mismatched config).
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// Header is the kind-independent prefix of every checkpoint, readable
// without the originating Config (cmd/ckpttool relies on this). Kinds
// that have no natural value for a field store zero.
type Header struct {
	Kind        string
	Version     uint64
	Cycle       int64
	Flits       int64 // flits in flight inside the network
	Queued      int64 // packets queued at NIs
	NextPktID   uint64
	Fingerprint uint64 // golden fingerprint the restored state must reproduce
}

// Writer accumulates a checkpoint body after the magic and header.
type Writer struct {
	buf []byte
}

// NewWriter starts a checkpoint with the given header already encoded.
func NewWriter(h Header) *Writer {
	w := &Writer{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, Magic...)
	w.Str(h.Kind)
	w.U64(h.Version)
	w.I64(h.Cycle)
	w.I64(h.Flits)
	w.I64(h.Queued)
	w.U64(h.NextPktID)
	w.U64(h.Fingerprint)
	return w
}

// U64 appends an unsigned varint.
func (w *Writer) U64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// I64 appends a zigzag-coded signed varint.
func (w *Writer) I64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Int appends an int as a signed varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool appends one byte, 0 or 1.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// F64 appends the IEEE-754 bits of v as a fixed 8-byte little-endian word.
func (w *Writer) F64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Str appends a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// crcLen is the CRC footer width.
const crcLen = 4

// Finish appends the CRC32 footer and returns the completed checkpoint.
// The Writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	sum := crc32.ChecksumIEEE(w.buf)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, sum)
	return w.buf
}

// Reader decodes a checkpoint produced by Writer. The magic, header and
// CRC are verified up front by NewReader; field accessors share a sticky
// error so call sites can decode a whole section and check Err once.
type Reader struct {
	data []byte // body only (header consumed, CRC stripped)
	pos  int
	hdr  Header
	err  error
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// NewReader validates the container (magic, CRC, header) and positions
// the reader at the first body field.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(Magic)+crcLen {
		return nil, corrupt("short buffer (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, corrupt("bad magic %q", data[:len(Magic)])
	}
	body := data[:len(data)-crcLen]
	want := binary.LittleEndian.Uint32(data[len(data)-crcLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, corrupt("crc mismatch: got %08x want %08x", got, want)
	}
	r := &Reader{data: body, pos: len(Magic)}
	r.hdr.Kind = r.StrMax(64)
	r.hdr.Version = r.U64()
	r.hdr.Cycle = r.I64()
	r.hdr.Flits = r.I64()
	r.hdr.Queued = r.I64()
	r.hdr.NextPktID = r.U64()
	r.hdr.Fingerprint = r.U64()
	if r.err != nil {
		return nil, r.err
	}
	return r, nil
}

// ReadHeader decodes only the header, without requiring the body to
// parse. Used by ckpttool for inspection.
func ReadHeader(data []byte) (Header, error) {
	r, err := NewReader(data)
	if err != nil {
		return Header{}, err
	}
	return r.hdr, nil
}

// Header returns the decoded container header.
func (r *Reader) Header() Header { return r.hdr }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corrupt(format, args...)
	}
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("truncated uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// I64 reads a zigzag-coded signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// Int reads a signed varint as an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads one byte; anything other than 0/1 is corruption.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.data) {
		r.fail("truncated bool at offset %d", r.pos)
		return false
	}
	b := r.data[r.pos]
	r.pos++
	if b > 1 {
		r.fail("bad bool byte %d at offset %d", b, r.pos-1)
		return false
	}
	return b == 1
}

// F64 reads a fixed 8-byte float.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.data) {
		r.fail("truncated float at offset %d", r.pos)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v
}

// Bytes reads a length-prefixed byte slice (always a fresh copy).
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.pos) {
		r.fail("byte slice length %d exceeds remaining %d", n, len(r.data)-r.pos)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return out
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string { return r.StrMax(1 << 20) }

// StrMax reads a length-prefixed string refusing lengths beyond max —
// used where a huge length would mean a corrupt stream, to avoid a large
// bogus allocation before the CRC would have caught it.
func (r *Reader) StrMax(max int) string {
	n := r.U64()
	if r.err != nil {
		return ""
	}
	if n > uint64(max) || n > uint64(len(r.data)-r.pos) {
		r.fail("string length %d exceeds remaining %d (max %d)", n, len(r.data)-r.pos, max)
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// Done verifies the whole body was consumed. Trailing garbage would mean
// an encoder/decoder schema skew, which must not pass silently.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.data) {
		return corrupt("%d trailing bytes after body", len(r.data)-r.pos)
	}
	return nil
}
