package runcache

import "heteronoc/internal/obs"

// Len returns the number of memoized entries (including entries still being
// computed by a concurrent caller).
func Len() int {
	mu.Lock()
	defer mu.Unlock()
	return len(entries)
}

// RegisterMetrics registers the process-global cache counters in reg. The
// counters are atomics, so exposition is safe even while sweeps are
// populating the cache concurrently.
func RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("runcache_hits_total",
		"Do calls that found an existing entry", nil,
		func() float64 { return float64(hits.Load()) })
	reg.RegisterCounter("runcache_misses_total",
		"Do calls that executed their function", nil,
		func() float64 { return float64(misses.Load()) })
	reg.RegisterGauge("runcache_entries",
		"memoized run results held in memory", nil,
		func() float64 { return float64(Len()) })
	reg.RegisterGauge("runcache_enabled",
		"1 when lookups are active, 0 when bypassed", nil,
		func() float64 {
			if enabled.Load() {
				return 1
			}
			return 0
		})
	reg.RegisterCounter("runcache_executions_total",
		"recipes that actually ran (no tier satisfied the key)", nil,
		func() float64 { return float64(execs.Load()) })
	reg.RegisterCounter("runcache_disk_hits_total",
		"For calls satisfied from the persistent disk tier", nil,
		func() float64 { return float64(diskHits.Load()) })
	reg.RegisterCounter("runcache_disk_misses_total",
		"disk-tier lookups that found no usable entry", nil,
		func() float64 { return float64(diskMisses.Load()) })
	reg.RegisterCounter("runcache_disk_evictions_total",
		"disk-tier entries evicted to enforce the byte cap", nil,
		func() float64 { return float64(diskEvictions.Load()) })
}
