package runcache

// Persistent disk tier. When a cache directory is configured (the
// -cachedir flag of cmd/experiments, default ~/.cache/heteronoc), memoized
// results also survive the process: a For miss consults the disk before
// running the recipe, and a computed result is written back. Keys reuse
// the same canonical strings as the in-memory tier; the file name is the
// SHA-256 of a versioned prefix plus the key, so any format change bumps
// diskVersion and old entries simply miss.
//
// The tier is strictly best-effort and corruption-tolerant: a missing,
// truncated, mis-versioned or bit-flipped file — or a value that fails to
// gob-decode — is a miss, never an error. Files carry a magic string and
// a CRC32 of the payload; writes go to a temp file and rename into place
// so readers never observe partial entries.
//
// Disk lookups and stores run inside the in-memory entry's sync.Once, so
// singleflight is preserved across tiers: concurrent callers of one key
// perform at most one disk read and one recipe execution between them.
// Disabling the cache (SetEnabled(false), i.e. -nocache) bypasses the
// disk tier entirely in both directions.
//
// A byte cap (SetMaxBytes, the -cachesize flag) is enforced after each
// store by evicting least-recently-used files — hits refresh a file's
// mtime — until the total is back under the cap.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"heteronoc/internal/chaos"
)

const (
	diskMagic = "HNOCRC1\n"
	// diskVersion is folded into every file name. Bump it whenever the
	// envelope or any cached value's encoding changes; stale entries then
	// hash to different names and age out via the LRU cap.
	diskVersion = 2 // v2: traffic.RunResult gained attribution fields
	diskExt     = ".rc"
)

var (
	diskMu  sync.Mutex
	diskDir string
	diskMax int64

	diskHits      atomic.Int64
	diskMisses    atomic.Int64
	diskEvictions atomic.Int64

	// diskChaos optionally injects faults into the tier's I/O paths
	// (slow reads/writes, corrupted payloads). The tier's contract makes
	// every injected fault a graceful miss, which is exactly what the
	// chaos suite asserts. Holds a *chaos.Chaos; nil when disarmed.
	diskChaos atomic.Pointer[chaos.Chaos]
)

// SetChaos arms (or, with nil, disarms) fault injection on the disk tier.
func SetChaos(c *chaos.Chaos) { diskChaos.Store(c) }

// SetDir configures the disk tier's directory, creating it if needed.
// An empty dir disables the tier.
func SetDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	diskMu.Lock()
	diskDir = dir
	diskMu.Unlock()
	return nil
}

// Dir returns the configured disk directory ("" when disabled).
func Dir() string {
	diskMu.Lock()
	defer diskMu.Unlock()
	return diskDir
}

// SetMaxBytes caps the disk tier's total size; 0 means unlimited.
// Least-recently-used entries are evicted after each store.
func SetMaxBytes(n int64) {
	diskMu.Lock()
	diskMax = n
	diskMu.Unlock()
}

// DiskStats returns cumulative disk-tier counters. A hit loaded a value
// from disk; a miss consulted the disk without finding a usable entry
// (absent, corrupt or undecodable all count the same).
func DiskStats() (hit, miss, evicted int64) {
	return diskHits.Load(), diskMisses.Load(), diskEvictions.Load()
}

// ResetDiskStats zeroes the disk counters (tests).
func ResetDiskStats() {
	diskHits.Store(0)
	diskMisses.Store(0)
	diskEvictions.Store(0)
}

func diskPath(dir, key string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("heteronoc-runcache|v%d|%s", diskVersion, key)))
	return filepath.Join(dir, hex.EncodeToString(sum[:])+diskExt)
}

// diskLoad returns the cached value for key if the disk tier holds a
// valid, decodable entry. Every failure mode is a miss.
func diskLoad[T any](key string) (T, bool) {
	var zero T
	dir := Dir()
	if dir == "" || !enabled.Load() {
		return zero, false
	}
	p := diskPath(dir, key)
	data, err := os.ReadFile(p)
	if err != nil {
		diskMisses.Add(1)
		return zero, false
	}
	if c := diskChaos.Load(); c != nil {
		c.Hit(chaos.PointDiskLoad)
		data = c.Mangle(chaos.PointDiskCorrupt, data)
	}
	head := len(diskMagic) + 4
	if len(data) < head || string(data[:len(diskMagic)]) != diskMagic {
		diskMisses.Add(1)
		return zero, false
	}
	want := binary.LittleEndian.Uint32(data[len(diskMagic):])
	payload := data[head:]
	if crc32.ChecksumIEEE(payload) != want {
		diskMisses.Add(1)
		return zero, false
	}
	var v T
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&v); err != nil {
		diskMisses.Add(1)
		return zero, false
	}
	now := time.Now()
	os.Chtimes(p, now, now) // refresh LRU position; failure is harmless
	diskHits.Add(1)
	return v, true
}

// diskStore writes v for key. Errors are swallowed: the disk tier never
// fails a run, it only misses next time.
func diskStore[T any](key string, v T) {
	dir := Dir()
	if dir == "" || !enabled.Load() {
		return
	}
	if c := diskChaos.Load(); c != nil {
		c.Hit(chaos.PointDiskStore)
	}
	var buf bytes.Buffer
	buf.WriteString(diskMagic)
	buf.Write(make([]byte, 4)) // CRC placeholder
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return // unserializable value: memory-only entry
	}
	b := buf.Bytes()
	binary.LittleEndian.PutUint32(b[len(diskMagic):], crc32.ChecksumIEEE(b[len(diskMagic)+4:]))
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, diskPath(dir, key)); err != nil {
		os.Remove(name)
		return
	}
	evictOverCap(dir)
}

// evictOverCap removes least-recently-used entries until the tier fits
// the byte cap.
func evictOverCap(dir string) {
	diskMu.Lock()
	max := diskMax
	diskMu.Unlock()
	if max <= 0 {
		return
	}
	names, err := filepath.Glob(filepath.Join(dir, "*"+diskExt))
	if err != nil {
		return
	}
	type fileAge struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []fileAge
	var total int64
	for _, p := range names {
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		files = append(files, fileAge{p, fi.Size(), fi.ModTime()})
		total += fi.Size()
	}
	if total <= max {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= max {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			diskEvictions.Add(1)
		}
	}
}
