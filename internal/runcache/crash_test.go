package runcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"heteronoc/internal/chaos"
)

// TestDiskStoreCrashMidWriteLeavesNoLoadablePartial simulates a process
// killed mid-store. The write protocol (temp file + rename) means a crash
// leaves either a stray temp file — which the load path never reads — or,
// on a filesystem that tore the write anyway, a prefix of the entry at
// the final path. Every such prefix must be an unloadable miss: the next
// For re-executes the recipe and repairs the entry.
func TestDiskStoreCrashMidWriteLeavesNoLoadablePartial(t *testing.T) {
	Reset()
	defer Reset()
	dir := withDiskDir(t)

	calls := 0
	fn := func() (diskVal, error) { calls++; return diskVal{"crash", []int{9, 9}}, nil }
	if _, err := For("crash-k", fn); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*"+diskExt))
	if err != nil || len(names) != 1 {
		t.Fatalf("expected one entry, got %v (%v)", names, err)
	}
	full, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}

	// A crash before rename leaves only a temp file; the tier must treat
	// the entry as absent without touching the stray file.
	stray := filepath.Join(dir, ".tmp-stray")
	if err := os.WriteFile(stray, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(names[0]); err != nil {
		t.Fatal(err)
	}
	Reset()
	if _, err := For("crash-k", fn); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("recipe ran %d times, want 2 (stray temp must not satisfy a load)", calls)
	}
	if _, err := os.Stat(stray); err != nil {
		t.Fatalf("load path disturbed the stray temp file: %v", err)
	}

	// A torn write at the final path: every strict prefix of a valid
	// entry must miss (magic too short, missing CRC, CRC mismatch over a
	// truncated gob payload).
	for _, cut := range []int{0, 1, len(diskMagic), len(diskMagic) + 4, len(full) / 2, len(full) - 1} {
		if err := os.WriteFile(names[0], full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		Reset()
		before := calls
		v, err := For("crash-k", fn)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if calls != before+1 {
			t.Fatalf("cut=%d: truncated entry satisfied a load (calls %d)", cut, calls)
		}
		if v.Name != "crash" || len(v.Xs) != 2 {
			t.Fatalf("cut=%d: recomputed value corrupted: %+v", cut, v)
		}
		// The re-execution rewrote a valid entry; confirm before moving on.
		repaired, err := os.ReadFile(names[0])
		if err != nil || len(repaired) != len(full) {
			t.Fatalf("cut=%d: entry not repaired (%v, %d bytes)", cut, err, len(repaired))
		}
	}
}

// TestDiskChaosCorruptionIsGracefulMiss drives the chaos seam: with
// corruption injected on every read, loads degrade to misses (recipes
// re-run) and nothing errors or crashes.
func TestDiskChaosCorruptionIsGracefulMiss(t *testing.T) {
	Reset()
	defer Reset()
	withDiskDir(t)

	ch := chaos.New(3)
	ch.Set(chaos.PointDiskCorrupt, chaos.Spec{Prob: 1, Corrupt: true})
	SetChaos(ch)
	defer SetChaos(nil)

	calls := 0
	fn := func() (diskVal, error) { calls++; return diskVal{"chaos", []int{1}}, nil }
	if _, err := For("chaos-k", fn); err != nil {
		t.Fatal(err)
	}
	Reset()
	if _, err := For("chaos-k", fn); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("recipe ran %d times, want 2 (corrupted read must miss)", calls)
	}
	if ch.Fired(chaos.PointDiskCorrupt) == 0 {
		t.Fatal("corruption point never fired")
	}
}

// TestDiskEvictionConcurrentWithLoads races the LRU evictor (triggered by
// stores under a tight byte cap) against concurrent loads of the same
// directory. Run under -race in CI: the property is that every For call
// still returns the correct value — an evicted entry is recomputed, a
// present one is loaded — with no errors and no data races.
func TestDiskEvictionConcurrentWithLoads(t *testing.T) {
	Reset()
	defer Reset()
	withDiskDir(t)
	SetMaxBytes(2048) // a handful of entries; stores evict constantly

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Writers churn distinct keys to force evictions.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				key := fmt.Sprintf("evict-w%d-%d", w, i)
				v, err := For(key, func() (diskVal, error) {
					return diskVal{key, []int{i}}, nil
				})
				if err != nil {
					errs <- err
					return
				}
				if v.Name != key {
					errs <- fmt.Errorf("key %s got value %q", key, v.Name)
					return
				}
			}
		}(w)
	}
	// Readers hammer a shared key set; entries may be evicted between
	// reads, so each load either hits disk or recomputes — both valid.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				key := fmt.Sprintf("evict-shared-%d", i%5)
				Reset() // drop the memory tier so the disk path is exercised
				v, err := For(key, func() (diskVal, error) {
					return diskVal{key, nil}, nil
				})
				if err != nil {
					errs <- err
					return
				}
				if v.Name != key {
					errs <- fmt.Errorf("key %s got value %q", key, v.Name)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, _, evicted := DiskStats(); evicted == 0 {
		t.Fatal("cap never triggered an eviction; the race saw no contention")
	}
}
