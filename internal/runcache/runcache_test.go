package runcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoMemoizes(t *testing.T) {
	Reset()
	defer Reset()
	calls := 0
	fn := func() (any, error) { calls++; return calls, nil }
	for i := 0; i < 3; i++ {
		v, err := Do("k", fn)
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != 1 {
			t.Fatalf("call %d: got %v, want memoized 1", i, v)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if hit, miss := Stats(); hit != 2 || miss != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2/1", hit, miss)
	}
}

func TestDoDistinctKeys(t *testing.T) {
	Reset()
	defer Reset()
	for i := 0; i < 3; i++ {
		v, _ := Do(fmt.Sprintf("k%d", i), func() (any, error) { return i, nil })
		if v.(int) != i {
			t.Fatalf("key k%d returned %v", i, v)
		}
	}
	if hit, miss := Stats(); hit != 0 || miss != 3 {
		t.Fatalf("stats = %d/%d, want 0 hits / 3 misses", hit, miss)
	}
}

func TestErrorsAreMemoized(t *testing.T) {
	Reset()
	defer Reset()
	sentinel := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := Do("bad", func() (any, error) { calls++; return nil, sentinel })
		if !errors.Is(err, sentinel) {
			t.Fatalf("call %d: err = %v, want sentinel", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing fn ran %d times, want 1 (errors are deterministic too)", calls)
	}
}

func TestDisabledBypasses(t *testing.T) {
	Reset()
	defer func() { SetEnabled(true); Reset() }()
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() = true after SetEnabled(false)")
	}
	calls := 0
	for i := 0; i < 3; i++ {
		v, _ := Do("k", func() (any, error) { calls++; return calls, nil })
		if v.(int) != i+1 {
			t.Fatalf("disabled cache returned stale value %v on call %d", v, i)
		}
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times with cache disabled, want 3", calls)
	}
	if hit, miss := Stats(); hit != 0 || miss != 3 {
		t.Fatalf("stats = %d/%d, want 0 hits / 3 misses", hit, miss)
	}
}

func TestSingleflight(t *testing.T) {
	Reset()
	defer Reset()
	const callers = 16
	var calls atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	results := make([]int, callers)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			v, err := Do("shared", func() (any, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v.(int)
		}(i)
	}
	start.Done()
	done.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times under %d concurrent callers, want 1", n, callers)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
	if hit, miss := Stats(); hit+miss != callers || miss != 1 {
		t.Fatalf("stats = %d/%d, want %d total with exactly 1 miss", hit, miss, callers)
	}
}

func TestForTyped(t *testing.T) {
	Reset()
	defer Reset()
	type result struct{ X int }
	v, err := For("typed", func() (result, error) { return result{X: 7}, nil })
	if err != nil || v.X != 7 {
		t.Fatalf("For = %+v, %v", v, err)
	}
	v, err = For("typed", func() (result, error) { return result{X: 99}, nil })
	if err != nil || v.X != 7 {
		t.Fatalf("second For = %+v, %v, want memoized X=7", v, err)
	}
	// A nil any (from an error path) must come back as the zero T, not panic.
	bad, err := For("typed-err", func() (*result, error) { return nil, errors.New("no") })
	if bad != nil || err == nil {
		t.Fatalf("For error path = %v, %v", bad, err)
	}
}

func TestReset(t *testing.T) {
	Reset()
	defer Reset()
	if _, err := Do("k", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	Reset()
	calls := 0
	if _, err := Do("k", func() (any, error) { calls++; return 2, nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatal("Reset did not drop the entry")
	}
	if hit, miss := Stats(); hit != 0 || miss != 1 {
		t.Fatalf("stats after Reset = %d/%d, want 0/1", hit, miss)
	}
}
