package runcache

import (
	"strings"
	"testing"

	"heteronoc/internal/obs"
)

func TestRegisterMetrics(t *testing.T) {
	Reset()
	defer Reset()
	run := func() { Do("k", func() (any, error) { return 1, nil }) }
	run()
	run()
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	out := string(reg.Exposition())
	if _, err := obs.ValidatePrometheusText(out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"runcache_hits_total 1",
		"runcache_misses_total 1",
		"runcache_entries 1",
		"runcache_enabled 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
