package runcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// withDiskDir points the disk tier at a fresh directory for one test and
// restores the previous configuration afterwards.
func withDiskDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := SetDir(dir); err != nil {
		t.Fatal(err)
	}
	ResetDiskStats()
	t.Cleanup(func() {
		SetDir("")
		SetMaxBytes(0)
		ResetDiskStats()
	})
	return dir
}

type diskVal struct {
	Name string
	Xs   []int
}

func TestDiskTierSurvivesMemoryReset(t *testing.T) {
	Reset()
	defer Reset()
	withDiskDir(t)

	calls := 0
	fn := func() (diskVal, error) { calls++; return diskVal{"a", []int{1, 2, 3}}, nil }

	v, err := For("disk-k1", fn)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "a" || len(v.Xs) != 3 {
		t.Fatalf("bad value %+v", v)
	}

	// Dropping the memory tier simulates a fresh process: the next For
	// must come from disk, not rerun the recipe.
	Reset()
	v2, err := For("disk-k1", fn)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("recipe ran %d times across a memory reset, want 1", calls)
	}
	if v2.Name != v.Name || len(v2.Xs) != len(v.Xs) || v2.Xs[2] != 3 {
		t.Fatalf("disk round trip changed value: %+v", v2)
	}
	if hit, _, _ := DiskStats(); hit != 1 {
		t.Fatalf("disk hits = %d, want 1", hit)
	}
}

func TestDiskTierToleratesCorruption(t *testing.T) {
	Reset()
	defer Reset()
	dir := withDiskDir(t)

	calls := 0
	fn := func() (int, error) { calls++; return 42, nil }
	if _, err := For("disk-k2", fn); err != nil {
		t.Fatal(err)
	}

	files, _ := filepath.Glob(filepath.Join(dir, "*"+diskExt))
	if len(files) != 1 {
		t.Fatalf("expected 1 cache file, found %d", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string][]byte{
		"empty":     {},
		"shortmag":  []byte("HN"),
		"badmagic":  append([]byte("XXXXXXX\n"), data[len(diskMagic):]...),
		"truncated": data[:len(data)-1],
		"bitflip": func() []byte {
			b := append([]byte(nil), data...)
			b[len(b)-1] ^= 0x40
			return b
		}(),
	}
	for name, bad := range corruptions {
		if err := os.WriteFile(files[0], bad, 0o644); err != nil {
			t.Fatal(err)
		}
		Reset() // force a disk consult
		before := calls
		v, err := For("disk-k2", fn)
		if err != nil {
			t.Fatalf("%s: corrupted entry surfaced an error: %v", name, err)
		}
		if v != 42 {
			t.Fatalf("%s: got %d", name, v)
		}
		if calls != before+1 {
			t.Fatalf("%s: corrupted entry was used instead of rerunning", name)
		}
	}
}

func TestDiskTierBypassedWhenDisabled(t *testing.T) {
	Reset()
	defer Reset()
	dir := withDiskDir(t)

	SetEnabled(false)
	defer SetEnabled(true)

	calls := 0
	if _, err := For("disk-k3", func() (int, error) { calls++; return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*"+diskExt)); len(files) != 0 {
		t.Fatalf("disabled cache still wrote %d disk entries", len(files))
	}
	if hit, miss, _ := DiskStats(); hit != 0 || miss != 0 {
		t.Fatalf("disabled cache touched the disk tier: %d/%d", hit, miss)
	}

	// Pre-seed an entry with the cache on, then verify -nocache ignores it.
	SetEnabled(true)
	if _, err := For("disk-k4", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	SetEnabled(false)
	Reset()
	ran := false
	v, err := For("disk-k4", func() (int, error) { ran = true; return 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !ran || v != 2 {
		t.Fatalf("disabled cache served a disk entry (ran=%t v=%d)", ran, v)
	}
}

func TestDiskTierEvictsLRUUnderCap(t *testing.T) {
	Reset()
	defer Reset()
	dir := withDiskDir(t)

	// Store three ~1KiB entries, then cap the tier so only ~two fit.
	payload := strings.Repeat("x", 1024)
	keys := []string{"ev-a", "ev-b", "ev-c"}
	for i, k := range keys {
		if _, err := For(k, func() (string, error) { return payload, nil }); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is well defined even on coarse
		// filesystem timestamps.
		p := diskPath(dir, k)
		mt := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	// Touch ev-a so ev-b becomes the oldest.
	Reset()
	if _, err := For("ev-a", func() (string, error) { t.Fatal("should hit disk"); return "", nil }); err != nil {
		t.Fatal(err)
	}

	SetMaxBytes(2500)
	// The next store triggers eviction of the oldest files.
	if _, err := For("ev-d", func() (string, error) { return payload, nil }); err != nil {
		t.Fatal(err)
	}

	if _, miss, evicted := DiskStats(); evicted == 0 {
		t.Fatalf("no evictions under a 2.5KiB cap with 4KiB stored (misses=%d)", miss)
	}
	if _, err := os.Stat(diskPath(dir, "ev-b")); !os.IsNotExist(err) {
		t.Fatal("LRU victim ev-b survived eviction")
	}
	if _, err := os.Stat(diskPath(dir, "ev-d")); err != nil {
		t.Fatal("freshly stored ev-d was evicted")
	}
}

func TestDiskTierSingleflightAcrossTiers(t *testing.T) {
	Reset()
	defer Reset()
	withDiskDir(t)

	var calls int
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			For("sf-k", func() (int, error) {
				calls++ // safe: the once-body runs exactly once
				time.Sleep(10 * time.Millisecond)
				return 5, nil
			})
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if calls != 1 {
		t.Fatalf("recipe ran %d times under concurrency, want 1", calls)
	}
}
