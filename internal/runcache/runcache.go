// Package runcache memoizes completed simulation runs — in memory within
// one process, and optionally across processes via a content-addressed
// disk tier (see disk.go and SetDir).
//
// Figure sweeps and the design-space exploration repeatedly evaluate the
// same (layout, traffic, seed, budget) recipe: Fig10's mesh columns are
// exactly the Fig11/Fig12 baseline and Diagonal+BL jobs, Fig13's reference
// configuration repeats Fig10's baseline runs, and a re-invoked experiment
// re-prices every point it already measured. Every run in this simulator
// is deterministic — a fixed seed and a fixed configuration produce
// bit-identical results — so a completed run can be reused wherever the
// same recipe appears.
//
// The cache is content-addressed: callers build a canonical key string
// containing every input that influences the result (the layout's full
// spec, the traffic pattern, the injection rate, flit counts, seeds and
// cycle budgets — see experiments and dse for the key formats). Entries
// are process-global and never evicted; a full `-scale full` regeneration
// holds a few hundred results, each a few kilobytes.
//
// Do has singleflight semantics: concurrent callers of the same key (the
// sweeps fan out on the par worker pool) run the recipe once and share the
// result. Cached values are returned by reference where they contain
// slices or maps; callers must treat results as immutable, which every
// experiment already does.
//
// Cancellation does not poison the cache. DoCtx runs the recipe under the
// first caller's context; if that caller is cancelled, deadlined or
// checkpoint-suspended, the failed entry is dropped rather than memoized,
// a waiter whose own context is still live retries as the new executor,
// and a waiter whose context has died stops waiting immediately instead
// of blocking on an execution it no longer wants.
//
// Disable with SetEnabled(false) (the -nocache flag of cmd/experiments):
// every Do then runs its function directly and the disk tier is bypassed
// in both directions. Because runs are
// deterministic, outputs are identical either way — a property pinned by
// TestRunCacheTransparent in the experiments package.
package runcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"heteronoc/internal/obs"
	"heteronoc/internal/reqstat"
	"heteronoc/internal/suspend"
)

// entry is one memoized run. The creating goroutine executes the recipe
// and closes done; waiters select on done against their own context.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

var (
	mu      sync.Mutex
	entries = map[string]*entry{}
	enabled atomic.Bool

	hits   atomic.Int64
	misses atomic.Int64
	execs  atomic.Int64
)

func init() { enabled.Store(true) }

// SetEnabled turns the cache on or off globally. Turning it off does not
// drop existing entries; use Reset for that.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether lookups are active.
func Enabled() bool { return enabled.Load() }

// Reset drops all entries and zeroes the hit/miss counters (tests).
func Reset() {
	mu.Lock()
	entries = map[string]*entry{}
	mu.Unlock()
	hits.Store(0)
	misses.Store(0)
	execs.Store(0)
}

// Stats returns the cumulative hit and miss counts. A hit is a Do call
// that found an existing entry (including one still being computed by a
// concurrent caller); a miss executed the function.
func Stats() (hit, miss int64) { return hits.Load(), misses.Load() }

// Execs returns how many recipes actually ran (neither tier satisfied the
// key) since the last Reset. A memory miss that the disk tier answers does
// not count, so a search re-run that touches only cached work reports a
// zero delta here — the "repeat run performs zero simulations" property
// the dse tests and CI gate assert.
func Execs() int64 { return execs.Load() }

// Do returns the memoized result for key, running fn exactly once per key
// across all goroutines. With the cache disabled it runs fn directly.
func Do(key string, fn func() (any, error)) (any, error) {
	return DoCtx(context.Background(), key, func(context.Context) (any, error) { return fn() })
}

// transient reports whether err is an outcome of this caller being
// stopped (cancelled, deadlined or suspended) rather than of the recipe
// itself — outcomes that must not be memoized, because a later caller
// with a live context would succeed.
func transient(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, suspend.ErrSuspended)
}

// DoCtx is Do with a context. The recipe runs under the first caller's
// context; see the package comment for the cancellation contract.
func DoCtx(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (any, error) {
	if !enabled.Load() {
		misses.Add(1)
		reqstat.Miss(ctx)
		return fn(ctx)
	}
	for {
		mu.Lock()
		e, ok := entries[key]
		if !ok {
			e = &entry{done: make(chan struct{})}
			entries[key] = e
		}
		mu.Unlock()
		if !ok {
			// This caller executes. A transient failure is un-memoized so
			// the key stays retryable; the entry is removed only if it is
			// still the one this execution owned.
			misses.Add(1)
			reqstat.Miss(ctx)
			e.val, e.err = fn(ctx)
			if e.err != nil && transient(e.err) {
				mu.Lock()
				if entries[key] == e {
					delete(entries, key)
				}
				mu.Unlock()
			}
			close(e.done)
			return e.val, e.err
		}
		hits.Add(1)
		reqstat.Hit(ctx)
		select {
		case <-e.done:
			if e.err != nil && transient(e.err) && ctx.Err() == nil {
				// The executor was stopped but this caller was not:
				// take over as the new executor.
				continue
			}
			return e.val, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// For runs fn through the cache with a typed result. When a disk tier is
// configured (SetDir), a memory miss consults the disk before running fn,
// and a freshly computed result is written back. Both happen inside the
// executing caller's critical section, so singleflight spans the tiers:
// one disk read and at most one execution per key, no matter how many
// goroutines race.
func For[T any](key string, fn func() (T, error)) (T, error) {
	return ForCtx(context.Background(), key, func(context.Context) (T, error) { return fn() })
}

// ForCtx is For with a context (see DoCtx for the cancellation contract).
// When the context carries a request span, the cache-miss path records
// "cache.disk" (the disk-tier probe) and "execute" (the recipe run) child
// spans, so a served request's timing decomposes into cache tiers vs
// simulation.
func ForCtx[T any](ctx context.Context, key string, fn func(ctx context.Context) (T, error)) (T, error) {
	v, err := DoCtx(ctx, key, func(ctx context.Context) (any, error) {
		span := obs.SpanFrom(ctx)
		disk := span.Child("cache.disk")
		v, ok := diskLoad[T](key)
		disk.End()
		if ok {
			return v, nil
		}
		execs.Add(1)
		reqstat.Exec(ctx)
		exec := span.Child("execute")
		v, err := fn(obs.ContextWithSpan(ctx, exec))
		exec.End()
		if err == nil {
			diskStore(key, v)
		}
		return v, err
	})
	if v == nil {
		var zero T
		return zero, err
	}
	return v.(T), err
}
