// Package runcache memoizes completed simulation runs — in memory within
// one process, and optionally across processes via a content-addressed
// disk tier (see disk.go and SetDir).
//
// Figure sweeps and the design-space exploration repeatedly evaluate the
// same (layout, traffic, seed, budget) recipe: Fig10's mesh columns are
// exactly the Fig11/Fig12 baseline and Diagonal+BL jobs, Fig13's reference
// configuration repeats Fig10's baseline runs, and a re-invoked experiment
// re-prices every point it already measured. Every run in this simulator
// is deterministic — a fixed seed and a fixed configuration produce
// bit-identical results — so a completed run can be reused wherever the
// same recipe appears.
//
// The cache is content-addressed: callers build a canonical key string
// containing every input that influences the result (the layout's full
// spec, the traffic pattern, the injection rate, flit counts, seeds and
// cycle budgets — see experiments and dse for the key formats). Entries
// are process-global and never evicted; a full `-scale full` regeneration
// holds a few hundred results, each a few kilobytes.
//
// Do has singleflight semantics: concurrent callers of the same key (the
// sweeps fan out on the par worker pool) run the recipe once and share the
// result. Cached values are returned by reference where they contain
// slices or maps; callers must treat results as immutable, which every
// experiment already does.
//
// Disable with SetEnabled(false) (the -nocache flag of cmd/experiments):
// every Do then runs its function directly and the disk tier is bypassed
// in both directions. Because runs are
// deterministic, outputs are identical either way — a property pinned by
// TestRunCacheTransparent in the experiments package.
package runcache

import (
	"sync"
	"sync/atomic"
)

// entry is one memoized run. once guards the single execution; val/err
// hold the outcome for later hitters.
type entry struct {
	once sync.Once
	val  any
	err  error
}

var (
	mu      sync.Mutex
	entries = map[string]*entry{}
	enabled atomic.Bool

	hits   atomic.Int64
	misses atomic.Int64
)

func init() { enabled.Store(true) }

// SetEnabled turns the cache on or off globally. Turning it off does not
// drop existing entries; use Reset for that.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether lookups are active.
func Enabled() bool { return enabled.Load() }

// Reset drops all entries and zeroes the hit/miss counters (tests).
func Reset() {
	mu.Lock()
	entries = map[string]*entry{}
	mu.Unlock()
	hits.Store(0)
	misses.Store(0)
}

// Stats returns the cumulative hit and miss counts. A hit is a Do call
// that found an existing entry (including one still being computed by a
// concurrent caller); a miss executed the function.
func Stats() (hit, miss int64) { return hits.Load(), misses.Load() }

// Do returns the memoized result for key, running fn exactly once per key
// across all goroutines. With the cache disabled it runs fn directly.
func Do(key string, fn func() (any, error)) (any, error) {
	if !enabled.Load() {
		misses.Add(1)
		return fn()
	}
	mu.Lock()
	e, ok := entries[key]
	if !ok {
		e = &entry{}
		entries[key] = e
	}
	mu.Unlock()
	if ok {
		hits.Add(1)
	} else {
		misses.Add(1)
	}
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// For runs fn through the cache with a typed result. When a disk tier is
// configured (SetDir), a memory miss consults the disk before running fn,
// and a freshly computed result is written back. Both happen inside the
// entry's once-body, so singleflight spans the tiers: one disk read and at
// most one execution per key, no matter how many goroutines race.
func For[T any](key string, fn func() (T, error)) (T, error) {
	v, err := Do(key, func() (any, error) {
		if v, ok := diskLoad[T](key); ok {
			return v, nil
		}
		v, err := fn()
		if err == nil {
			diskStore(key, v)
		}
		return v, err
	})
	if v == nil {
		var zero T
		return zero, err
	}
	return v.(T), err
}
