package experiments

import (
	"context"
	"reflect"
	"testing"

	"heteronoc/internal/cmp/mem"
	"heteronoc/internal/core"
	"heteronoc/internal/runcache"
	"heteronoc/internal/traffic"
)

// cacheTestScale is deliberately tiny: these tests exercise the cache
// plumbing, not simulation fidelity.
func cacheTestScale(name string) Scale {
	return Scale{
		Name:             name,
		WarmupPackets:    20,
		MeasurePackets:   200,
		SweepPoints:      2,
		CMPWarmupEntries: 500,
		CMPCycles:        300,
		DSEPackets:       50,
		DSECandidates:    2,
	}
}

// TestRunNetCached pins that repeated network probes reuse the first run
// and that the memoized result is identical to a fresh one.
func TestRunNetCached(t *testing.T) {
	runcache.Reset()
	defer runcache.Reset()
	sc := cacheTestScale("cachetest-net")
	l := core.NewBaseline(4, 4)
	pat := traffic.UniformRandom{N: 16}

	first, err := runNet(context.Background(), l, pat, 0.02, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	again, err := runNet(context.Background(), l, pat, 0.02, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("cached runNet result differs from the original")
	}
	if hit, miss := runcache.Stats(); hit != 1 || miss != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hit, miss)
	}

	// A different rate is a different recipe: no false sharing.
	if _, err := runNet(context.Background(), l, pat, 0.03, sc, false); err != nil {
		t.Fatal(err)
	}
	if hit, miss := runcache.Stats(); hit != 1 || miss != 2 {
		t.Fatalf("after new rate: stats = %d/%d, want 1 hit / 2 misses", hit, miss)
	}

	// And the memoized result matches a genuinely uncached simulation.
	runcache.SetEnabled(false)
	defer runcache.SetEnabled(true)
	fresh, err := runNet(context.Background(), l, pat, 0.02, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, fresh) {
		t.Fatal("cached result differs from a -nocache run")
	}
}

// TestRunAppCached pins CMP-run memoization, including the mcTiles
// canonicalization: a nil tile set (cmp default = corners) and an explicit
// corner set are the same recipe, which is what lets Fig13's reference
// configuration reuse Fig10/11's baseline runs.
func TestRunAppCached(t *testing.T) {
	runcache.Reset()
	defer runcache.Reset()
	sc := cacheTestScale("cachetest-app")
	l := core.NewBaseline(4, 4)

	first, err := runApp(context.Background(), l, "SPECjbb", sc, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, h := l.Mesh.Dims()
	corners := mem.Tiles(mem.PlacementCorners, w, h)
	again, err := runApp(context.Background(), l, "SPECjbb", sc, corners, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("explicit-corner run differs from default-placement run")
	}
	// Two misses: the app entry plus the shared warm checkpoint it
	// populated. The corner-canonicalized repeat is one hit and never
	// consults the warm entry.
	if hit, miss := runcache.Stats(); hit != 1 || miss != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 1/2 (corner canonicalization)", hit, miss)
	}

	// Cached result equals a fresh simulation.
	runcache.SetEnabled(false)
	defer runcache.SetEnabled(true)
	fresh, err := runApp(context.Background(), l, "SPECjbb", sc, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, fresh) {
		t.Fatal("cached runApp result differs from a -nocache run")
	}
}

// TestFigureOutputIdenticalWithAndWithoutCache is the end-to-end
// transparency gate of the acceptance criteria: a full figure regeneration
// renders byte-identical markdown whether its runs come from the cache or
// from fresh simulations.
func TestFigureOutputIdenticalWithAndWithoutCache(t *testing.T) {
	runcache.Reset()
	defer func() {
		runcache.SetEnabled(true)
		runcache.Reset()
	}()
	sc := cacheTestScale("cachetest-fig")

	cold, err := Fig1(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	_, missCold := runcache.Stats()
	if missCold == 0 {
		t.Fatal("cold figure run recorded no cache misses; runNet is not routed through runcache")
	}
	warm, err := Fig1(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	hitWarm, missWarm := runcache.Stats()
	if hitWarm == 0 || missWarm != missCold {
		t.Fatalf("warm figure run: stats = %d hits / %d misses, want hits > 0 and no new misses", hitWarm, missWarm)
	}
	runcache.SetEnabled(false)
	uncached, err := Fig1(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Markdown() != cold.Markdown() {
		t.Fatal("cache-served figure differs from the run that populated the cache")
	}
	if uncached.Markdown() != cold.Markdown() {
		t.Fatal("figure output with cache disabled differs from cached output")
	}
}
