package experiments

import (
	"context"
	"strings"
	"testing"

	"heteronoc/internal/runcache"
)

// dseSearchTiny keeps the four-part experiment to well under a couple of
// seconds: these tests pin the machinery (metrics, cache repeatability),
// not the full-scale search quality numbers.
func dseSearchTiny() Scale {
	return Scale{
		Name:            "dsesearch-tiny",
		DSEPackets:      200,
		DSESearchPop:    4,
		DSESearchGens:   1,
		DSESearchBudget: 10,
	}
}

func TestDSESearchReportsAllParts(t *testing.T) {
	runcache.Reset()
	defer runcache.Reset()
	r, err := DSESearch(context.Background(), dseSearchTiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"search4x4_evals", "search4x4_best_latency", "search4x4_evals_pct_of_space",
		"search8x8_evals", "diagonal8x8_latency", "diagonal8x8_gap_pct",
		"search16x16_evals", "repeat_search_evals", "repeat_search_executions",
	} {
		if _, ok := r.Metrics[key]; !ok {
			t.Errorf("missing metric %s", key)
		}
	}
	if r.Metrics["search4x4_evals"] == 0 {
		t.Error("4x4 search ran no evaluations")
	}
	if r.Metrics["diagonal8x8_feasible"] != 1 {
		t.Error("diagonal placement saturated under the mixed probe")
	}
	// The part-D repeat must answer every probe from cache.
	if got := r.Metrics["repeat_search_executions"]; got != 0 {
		t.Errorf("repeated search ran %.0f simulations, want 0", got)
	}
	for _, section := range []string{"### A.", "### B.", "### C.", "### D."} {
		if !strings.Contains(r.Body(), section) {
			t.Errorf("report body missing section %q", section)
		}
	}
}
