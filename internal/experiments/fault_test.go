package experiments

import (
	"context"
	"testing"

	"heteronoc/internal/core"
)

// TestReliableDeliveryAcceptance pins the PR's headline acceptance
// criterion: a seeded plan failing 4 links on the 8x8 heterogeneous mesh,
// offered 0.2 flits/node/cycle through the reliability layer, delivers
// 100% of accepted traffic exactly once — and the whole run is
// bit-identical across repeats (network and stats fingerprints).
func TestReliableDeliveryAcceptance(t *testing.T) {
	l := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	run := func() degResult {
		plan := degradationPlan(l, 4, degradationSeed+4*3)
		res, err := runReliable(context.Background(), l, plan, 0.2, 2000, 7)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if a.rs.Sent == 0 {
		t.Fatal("no traffic accepted")
	}
	if a.rs.Delivered != a.rs.Sent {
		t.Fatalf("delivered %d of %d transfers — reliability layer lost traffic on a connected degraded mesh",
			a.rs.Delivered, a.rs.Sent)
	}
	if a.rs.Abandoned != 0 || a.rs.Unreachable != 0 {
		t.Fatalf("connected plan produced abandoned=%d unreachable=%d", a.rs.Abandoned, a.rs.Unreachable)
	}
	b := run()
	if a.netFP != b.netFP || a.statsFP != b.statsFP {
		t.Fatalf("repeat run not bit-identical: net %x/%x stats %x/%x",
			a.netFP, b.netFP, a.statsFP, b.statsFP)
	}
}

// TestDegradationRetentionCriterion runs the degradation sweep at the
// quick scale and asserts the experiment's claim: from two failed links
// on, the heterogeneous design retains strictly more of its own fault-free
// saturation throughput than the homogeneous baseline retains of its.
func TestDegradationRetentionCriterion(t *testing.T) {
	if testing.Short() {
		t.Skip("full degradation sweep")
	}
	r, err := Degradation(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 8; k++ {
		for _, key := range []string{"delivered_frac_base", "delivered_frac_hetero"} {
			if got := r.Metrics[keyNameInt(key, k)]; got != 1.0 {
				t.Errorf("%s at k=%d: delivered fraction %.4f, want 1.0", key, k, got)
			}
		}
	}
	for k := 2; k <= 8; k++ {
		hetero := r.Metrics[keyNameInt("retention_hetero", k)]
		base := r.Metrics[keyNameInt("retention_base", k)]
		if hetero <= base {
			t.Errorf("k=%d: hetero retention %.3f not strictly above baseline %.3f", k, hetero, base)
		}
	}
	if len(r.Figures) != 2 {
		t.Errorf("degradation report has %d figures, want 2", len(r.Figures))
	}
}
