package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"heteronoc/internal/core"
	"heteronoc/internal/noc"
)

func TestLatencyBreakdownAccountsExactly(t *testing.T) {
	r, err := LatencyBreakdown(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []string{"baseline", "center_bl", "diagonal_bl"} {
		// The attribution is an exact account: residual must be zero.
		res, ok := r.Metrics[layout+"_attr_residual"]
		if !ok {
			t.Fatalf("missing residual metric for %s: %v", layout, r.Metrics)
		}
		if math.Abs(res) > 1e-9 {
			t.Errorf("%s attribution residual %.6f cycles, want 0", layout, res)
		}
		for _, b := range noc.AttrBucketNames() {
			v, ok := r.Metrics[layout+"_attr_"+b]
			if !ok {
				t.Fatalf("missing %s bucket for %s", b, layout)
			}
			if v < 0 {
				t.Errorf("%s %s bucket negative: %f", layout, b, v)
			}
		}
		// Hotspot traffic must actually produce contention; a run where the
		// stall buckets are all zero proves nothing about absorption.
		cont := r.Metrics[layout+"_attr_vc_alloc"] +
			r.Metrics[layout+"_attr_switch_alloc"] + r.Metrics[layout+"_attr_credit"]
		if cont <= 0 {
			t.Errorf("%s saw no contention cycles under hotspot traffic", layout)
		}
	}
	// The acceptance bar: the hot-region routers (big class on the
	// heterogeneous layouts, interior on the baseline) absorb measurably
	// more contention per router than the edge.
	for _, layout := range []string{"baseline", "center_bl", "diagonal_bl"} {
		ratio := r.Metrics[layout+"_absorber_vs_edge_contention"]
		if ratio <= 1.5 {
			t.Errorf("%s absorber/edge contention ratio %.2f, want > 1.5", layout, ratio)
		}
	}
	if !strings.Contains(r.Markdown(), "Per-packet attribution") {
		t.Error("report missing the attribution table")
	}
}

func TestClassifyRoutersPartition(t *testing.T) {
	for _, l := range []core.Layout{
		core.NewBaseline(8, 8),
		core.NewLayout(core.PlacementDiagonal, 8, 8, true),
	} {
		cls := classifyRouters(l)
		counts := map[string]int{}
		for _, c := range cls {
			counts[c]++
		}
		total := 0
		for _, c := range breakdownClasses {
			total += counts[c]
		}
		if total != 64 {
			t.Fatalf("%s: classes cover %d of 64 routers: %v", l.Name, total, counts)
		}
		if l.Name == "Baseline" && counts["big"] != 0 {
			t.Errorf("baseline has no big routers, classified %d", counts["big"])
		}
		if l.Name != "Baseline" && counts["big"] != 16 {
			t.Errorf("%s: big class has %d routers, want 16", l.Name, counts["big"])
		}
		// The corner MC tiles are their own class unless the placement made
		// them big (the diagonal's endpoints are the corners).
		wantMC := 4
		if l.Name == "Diagonal+BL" {
			wantMC = 0
		}
		if counts["mc_adjacent"] != wantMC {
			t.Errorf("%s: mc_adjacent %d, want %d", l.Name, counts["mc_adjacent"], wantMC)
		}
	}
}
