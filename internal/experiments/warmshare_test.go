package experiments

import (
	"context"
	"testing"

	"heteronoc/internal/runcache"
	"heteronoc/internal/warm"
)

// resetWarmShareStats zeroes the restore/fallback counters for one test.
func resetWarmShareStats() {
	warm.ResetStats()
}

// TestFigureOutputIdenticalWithWarmupSharing is the warmup-sharing
// transparency gate: a CMP figure renders byte-identical markdown whether
// its runs restore a shared warm checkpoint or replay their own warmups —
// and the sharing path must actually engage, not silently fall back.
func TestFigureOutputIdenticalWithWarmupSharing(t *testing.T) {
	sc := cacheTestScale("warmshare-fig")
	runcache.Reset()
	resetWarmShareStats()
	defer func() {
		SetWarmupSharing(true)
		runcache.Reset()
	}()

	shared, err := Fig10(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	restored, fellBack := WarmupSharingStats()
	if restored == 0 {
		t.Fatal("no run restored a shared warm checkpoint; sharing never engaged")
	}
	if fellBack != 0 {
		t.Fatalf("%d runs fell back to direct warmup; restores are failing", fellBack)
	}

	runcache.Reset()
	SetWarmupSharing(false)
	direct, err := Fig10(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Markdown() != direct.Markdown() {
		t.Fatal("figure output differs with warmup sharing on vs off")
	}
}

// TestFigureOutputIdenticalAcrossDiskTier pins the persistent tier:
// regenerating a figure after dropping the in-memory cache (a fresh
// process, in effect) serves runs from disk and renders byte-identical
// markdown, as does a run with caching disabled outright.
func TestFigureOutputIdenticalAcrossDiskTier(t *testing.T) {
	sc := cacheTestScale("disktier-fig")
	if err := runcache.SetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	runcache.Reset()
	runcache.ResetDiskStats()
	defer func() {
		runcache.SetEnabled(true)
		runcache.SetDir("")
		runcache.ResetDiskStats()
		runcache.Reset()
	}()

	cold, err := Fig1(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if hit, miss, _ := runcache.DiskStats(); hit != 0 || miss == 0 {
		t.Fatalf("cold run: disk stats %d hits / %d misses, want 0 hits and some misses", hit, miss)
	}

	// Drop the memory tier: the regeneration must be fed from disk.
	runcache.Reset()
	runcache.ResetDiskStats()
	warm, err := Fig1(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if hit, _, _ := runcache.DiskStats(); hit == 0 {
		t.Fatal("warm regeneration hit the disk tier zero times")
	}
	if warm.Markdown() != cold.Markdown() {
		t.Fatal("disk-served figure differs from the run that populated the cache")
	}

	// -nocache bypasses both tiers and still matches.
	runcache.SetEnabled(false)
	runcache.Reset()
	runcache.ResetDiskStats()
	off, err := Fig1(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if hit, miss, _ := runcache.DiskStats(); hit != 0 || miss != 0 {
		t.Fatalf("-nocache run touched the disk tier: %d hits / %d misses", hit, miss)
	}
	if off.Markdown() != cold.Markdown() {
		t.Fatal("figure output with caching disabled differs from cached output")
	}
}

// TestWarmCheckpointPersistsAcrossProcessBoundary pins the cross-process
// warmup story end to end: with a disk tier, a "new process" (memory tier
// dropped) restores warm checkpoints from disk instead of replaying any
// warmup trace.
func TestWarmCheckpointPersistsAcrossProcessBoundary(t *testing.T) {
	sc := cacheTestScale("warmdisk")
	if err := runcache.SetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	runcache.Reset()
	resetWarmShareStats()
	defer func() {
		runcache.SetDir("")
		runcache.ResetDiskStats()
		runcache.Reset()
	}()

	first, err := runApp(context.Background(), appLayouts()[0], "SPECjbb", sc, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	runcache.Reset() // fresh process: only the disk remains
	runcache.ResetDiskStats()
	resetWarmShareStats()
	// A different layout of the same benchmark: the app-level key misses,
	// but the warm checkpoint comes from disk.
	second, err := runApp(context.Background(), appLayouts()[5], "SPECjbb", sc, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored, fellBack := WarmupSharingStats(); restored != 1 || fellBack != 0 {
		t.Fatalf("warm sharing stats %d restored / %d fallbacks, want 1/0", restored, fellBack)
	}
	if hit, _, _ := runcache.DiskStats(); hit == 0 {
		t.Fatal("warm checkpoint was not served from disk")
	}
	if first.IPC == 0 || second.IPC == 0 {
		t.Fatal("degenerate run")
	}
}
