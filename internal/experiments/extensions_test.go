package experiments

import (
	"context"
	"testing"
)

func TestAblationRanksMechanisms(t *testing.T) {
	r, err := Ablation(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Removing everything must cost more than removing any single piece...
	none := r.Metrics["none_uniform_3vc_narrow_latency_cost_pct"]
	if none <= 0 {
		t.Errorf("removing all mechanisms cost %.1f%%, want positive", none)
	}
	for k, v := range r.Metrics {
		_ = k
		_ = v
	}
}

func TestSensitivityGuideline(t *testing.T) {
	r, err := Sensitivity(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["guideline_big_16"] != 1 {
		t.Error("16 big routers should satisfy the power guideline")
	}
	if r.Metrics["guideline_big_32"] != 0 {
		t.Error("32 big routers should violate the power guideline")
	}
	if r.Metrics["power_big_32"] <= r.Metrics["power_big_08"] {
		t.Error("power should grow with big-router count")
	}
}

func TestPatternsAllRun(t *testing.T) {
	r, err := Patterns(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"uniform-random", "transpose", "bit-complement", "self-similar"} {
		if _, ok := r.Metrics[keyName(p)+"_latency_reduction_pct"]; !ok {
			t.Errorf("missing pattern %s", p)
		}
	}
	if len(AllWithExtensions()) != 26 {
		t.Errorf("extensions list wrong: %d", len(AllWithExtensions()))
	}
}

func TestGeneralityTransfers(t *testing.T) {
	r, err := Generality(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"cmesh4x4c4_center_latency_reduction_pct",
		"cmesh4x4c4_diagonal_latency_reduction_pct",
		"fbfly4x4c4_center_latency_reduction_pct",
		"fbfly4x4c4_diagonal_latency_reduction_pct",
	} {
		v, ok := r.Metrics[k]
		if !ok {
			t.Fatalf("missing metric %s", k)
		}
		if v <= 0 {
			t.Errorf("%s = %.1f%%, want positive (generality claim)", k, v)
		}
	}
}

func TestAdaptiveKeepsHeteroAdvantage(t *testing.T) {
	r, err := Adaptive(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Metrics["wf_hetero_reduction_pct"]; v <= 0 {
		t.Errorf("hetero advantage under west-first = %.1f%%, want positive", v)
	}
	if v := r.Metrics["xy_hetero_reduction_pct"]; v <= 0 {
		t.Errorf("hetero advantage under X-Y = %.1f%%, want positive", v)
	}
}

func TestAnneal8x8Runs(t *testing.T) {
	r, err := Anneal8x8(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["annealed_latency"] > r.Metrics["random_latency"] {
		t.Error("annealing ended worse than the random start")
	}
	if r.Metrics["diagonal_latency"] <= 0 {
		t.Error("diagonal reference missing")
	}
}

func TestPrefetchHelpsStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("CMP runs")
	}
	sc := tiny()
	sc.CMPWarmupEntries = 20000
	sc.CMPCycles = 5000
	r, err := Prefetch(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	// libquantum streams sequentially: the next-line prefetcher must help
	// on at least one layout.
	a := r.Metrics["libquantum_baseline_prefetch_gain_pct"]
	b := r.Metrics["libquantum_diagonal_bl_prefetch_gain_pct"]
	if a <= 0 && b <= 0 {
		t.Errorf("prefetcher never helps libquantum: %.1f%% / %.1f%%", a, b)
	}
}

func TestTailsCompress(t *testing.T) {
	r, err := Tails(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["p99_reduction_pct"] <= 0 {
		t.Errorf("p99 reduction %.1f%%, want positive", r.Metrics["p99_reduction_pct"])
	}
	if r.Metrics["mean_reduction_pct"] <= 0 {
		t.Errorf("mean reduction %.1f%%, want positive", r.Metrics["mean_reduction_pct"])
	}
}

func TestScaleUpDeterministicAndAdvantageous(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-router sweeps")
	}
	r, err := ScaleUp(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["sharded_fingerprint_match"] != 1 {
		t.Error("sharded 32x32 run diverged from the sequential run")
	}
	for _, w := range scaleWidths {
		prefix := "mesh" + map[int]string{16: "16", 32: "32"}[w] + "_"
		for _, k := range []string{"diagonal_latency_reduction_pct", "diagonal_throughput_pct", "diagonal_zeroload_reduction_pct"} {
			if _, ok := r.Metrics[prefix+k]; !ok {
				t.Errorf("missing metric %s", prefix+k)
			}
		}
		if r.Metrics[prefix+"baseline_zeroload_ns"] <= 0 {
			t.Errorf("%dx%d baseline zero-load latency missing", w, w)
		}
	}
	// The hetero advantage needs near-saturation load to show (paper Fig 7);
	// the tiny unit budget stays deep pre-knee, so only bound the zero-load
	// cost of heterogeneity: the sparse diagonal must not be a blowup.
	for _, w := range []string{"mesh16_", "mesh32_"} {
		if v := r.Metrics[w+"diagonal_zeroload_reduction_pct"]; v < -20 {
			t.Errorf("%szero-load penalty %.1f%%, want bounded (> -20%%)", w, v)
		}
	}
}

func TestModelCrossValidates(t *testing.T) {
	r, err := Model(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if w := r.Metrics["worst_ratio"]; w > 1.25 {
		t.Errorf("worst model/simulator disagreement %.2fx, want <= 1.25x", w)
	}
	if r.Metrics["baseline_analytic_saturation"] <= 0 {
		t.Error("missing analytic saturation metric")
	}
}
