package experiments

import (
	"context"
	"runtime"
	"testing"
	"time"

	"heteronoc/internal/runcache"
)

// TestNoGoroutineLeakAfterExperimentRun audits the simulator's goroutine
// hygiene end to end: a full figure regeneration — par.Map sweep fan-out,
// CMP systems, network simulations, warm-checkpoint sharing — must leave
// no goroutines behind. par.Map joins its workers before returning and no
// experiment path arms a persistent shard pool (the only construct that
// needs an explicit Network.Close), so the count returns to baseline.
func TestNoGoroutineLeakAfterExperimentRun(t *testing.T) {
	runcache.Reset()
	defer runcache.Reset()
	before := runtime.NumGoroutine()

	sc := cacheTestScale("leaktest")
	if _, err := Fig1(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig10(context.Background(), sc); err != nil {
		t.Fatal(err)
	}

	// Worker goroutines unwind asynchronously after wg.Wait releases the
	// caller; give the scheduler a few beats before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines grew %d -> %d after experiment run\n%s", before, after, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
