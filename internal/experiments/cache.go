package experiments

import (
	"fmt"

	"heteronoc/internal/cmp/mem"
	"heteronoc/internal/core"
	"heteronoc/internal/traffic"
)

// This file builds the content-addressed keys under which completed runs
// are memoized in runcache. A key must capture every input that influences
// the run's outcome: the layout's full spec (placement, link widths,
// torus, frequency class), the traffic recipe, and the simulation budget.
// Scale.Name is included defensively — it is what lets bench_test defeat
// the cache per iteration — but the numeric budget fields are the real
// content.

// layoutKey canonicalizes a layout through its JSON spec (name, dims,
// torus flag, big-router set, link redistribution).
func layoutKey(l core.Layout) string {
	data, err := core.LayoutJSON(l)
	if err != nil {
		// Un-serializable layouts are still keyable by their printed form.
		return fmt.Sprintf("layout!%+v", l)
	}
	return string(data)
}

// patternKey canonicalizes a traffic pattern. Grid-bound patterns reduce
// to a short tag: their grid is the layout's own mesh, already covered by
// layoutKey.
func patternKey(p traffic.Pattern) string {
	switch p := p.(type) {
	case traffic.UniformRandom:
		return fmt.Sprintf("ur%d", p.N)
	case traffic.NearestNeighbor:
		return "nn"
	case traffic.Transpose:
		return "tp"
	case traffic.BitComplement:
		return fmt.Sprintf("bc%d", p.N)
	default:
		return fmt.Sprintf("%T%+v", p, p)
	}
}

// netKey addresses one runNet probe (seed and MaxCycles are derived from
// the Scale inside runNet, so the Scale fields cover them).
func netKey(l core.Layout, pattern traffic.Pattern, rate float64, sc Scale, selfSimilar bool) string {
	return fmt.Sprintf("net|%s|%s|r=%g|sc=%s/%d/%d|ss=%t",
		layoutKey(l), patternKey(pattern), rate,
		sc.Name, sc.WarmupPackets, sc.MeasurePackets, selfSimilar)
}

// mcKey canonicalizes a memory-controller tile set. nil means the cmp
// default (corner placement), spelled out so Fig13's explicit corner
// reference hits the same entries as Fig10/11's default-placement runs.
func mcKey(l core.Layout, mcTiles []int) string {
	if mcTiles == nil {
		w, h := l.Mesh.Dims()
		mcTiles = mem.Tiles(mem.PlacementCorners, w, h)
	}
	return fmt.Sprint(mcTiles)
}

// appKey addresses one runApp CMP run (default cores, default routing).
func appKey(l core.Layout, bench string, sc Scale, mcTiles []int) string {
	return fmt.Sprintf("app|%s|%s|mc=%s|sc=%s/%d/%d",
		layoutKey(l), bench, mcKey(l, mcTiles),
		sc.Name, sc.CMPWarmupEntries, sc.CMPCycles)
}

// urAppKey addresses one closed-loop UR CMP run (no warmup).
func urAppKey(l core.Layout, sc Scale, mcTiles []int) string {
	return fmt.Sprintf("urapp|%s|mc=%s|sc=%s/%d",
		layoutKey(l), mcKey(l, mcTiles), sc.Name, sc.CMPCycles)
}
