// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each experiment
// returns a Report containing a human-readable markdown rendering plus a
// metric map that the tests, benchmarks and EXPERIMENTS.md generator key
// off. Scale presets trade fidelity for runtime: Full approximates the
// paper's measurement sizes, Quick keeps CI fast.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Scale sizes the simulations.
type Scale struct {
	Name string
	// Network-only experiments.
	WarmupPackets  int
	MeasurePackets int
	// Load sweep points for Figures 7/9 (injection rates are derived).
	SweepPoints int
	// CMP experiments.
	CMPWarmupEntries int
	CMPCycles        int64
	// DSE bounds.
	DSEPackets    int
	DSECandidates int
	// Multi-objective DSE search (the dse-search extension).
	DSESearchPop    int
	DSESearchGens   int
	DSESearchBudget int
}

// Quick is the CI-sized preset.
func Quick() Scale {
	return Scale{
		Name:             "quick",
		WarmupPackets:    200,
		MeasurePackets:   3000,
		SweepPoints:      5,
		CMPWarmupEntries: 15000,
		CMPCycles:        8000,
		DSEPackets:       300,
		DSECandidates:    10,
		DSESearchPop:     12,
		DSESearchGens:    6,
		DSESearchBudget:  120,
	}
}

// Full approximates the paper's methodology (1k warmup / 100k measured
// packets; tens of thousands of CMP cycles after functional warmup).
func Full() Scale {
	return Scale{
		Name:             "full",
		WarmupPackets:    1000,
		MeasurePackets:   100000,
		SweepPoints:      10,
		CMPWarmupEntries: 40000,
		CMPCycles:        30000,
		DSEPackets:       2000,
		DSECandidates:    200,
		DSESearchPop:     24,
		DSESearchGens:    40,
		DSESearchBudget:  900,
	}
}

// Figure is one SVG rendering attached to a report.
type Figure struct {
	// Name is the file stem, e.g. "fig7a_latency".
	Name string
	// SVG is the document contents.
	SVG string
}

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	body  strings.Builder
	// Metrics holds the headline numbers, keyed by stable names used in
	// tests and EXPERIMENTS.md.
	Metrics map[string]float64
	// Figures holds the regenerated paper figures as SVG documents
	// (written by cmd/experiments -figdir).
	Figures []Figure
}

// AddFigure attaches an SVG figure.
func (r *Report) AddFigure(name, svg string) {
	r.Figures = append(r.Figures, Figure{Name: name, SVG: svg})
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Metrics: map[string]float64{}}
}

// Printf appends formatted markdown to the report body.
func (r *Report) Printf(format string, args ...any) {
	fmt.Fprintf(&r.body, format, args...)
}

// Body returns the rendered markdown.
func (r *Report) Body() string { return r.body.String() }

// Markdown renders the full report section.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	b.WriteString(r.body.String())
	if len(r.Metrics) > 0 {
		b.WriteString("\nKey metrics:\n\n")
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "- `%s` = %.4g\n", k, r.Metrics[k])
		}
	}
	b.WriteString("\n")
	return b.String()
}

// Runner names an experiment generator. Run observes its context at
// cycle-batch granularity: a cancelled context stops the underlying
// simulations within one batch, and a suspend.Controller on the context
// checkpoints in-flight network runs instead (see internal/suspend).
type Runner struct {
	ID   string
	Name string
	Run  func(ctx context.Context, sc Scale) (*Report, error)
}

// All lists every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"fig1", "Buffer and link utilization heat maps (8x8 mesh, UR)", Fig1},
		{"fig2", "Buffer utilization in concentrated mesh and flattened butterfly", Fig2},
		{"table1", "Router design points and resource accounting", func(context.Context, Scale) (*Report, error) { return Table1() }},
		{"fig7", "UR load sweep: latency, throughput, power", Fig7},
		{"fig8", "UR latency and power breakdowns", Fig8},
		{"fig9", "Nearest-neighbor anomaly", Fig9},
		{"fig10", "Mesh vs torus latency reduction", Fig10},
		{"fig11", "Application latency and power", Fig11},
		{"fig12", "IPC improvement", Fig12},
		{"fig13", "Memory-controller placement co-evaluation", Fig13},
		{"fig14", "Asymmetric CMP with table-based routing", Fig14},
		{"dse", "4x4 design-space exploration", DSE},
	}
}

// ByID finds an experiment runner among the paper experiments and the
// extensions.
func ByID(id string) (Runner, error) {
	for _, r := range AllWithExtensions() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
