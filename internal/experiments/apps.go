package experiments

import (
	"context"

	"heteronoc/internal/cmp"
	"heteronoc/internal/cmp/coherence"
	"heteronoc/internal/core"
	"heteronoc/internal/noc"
	"heteronoc/internal/par"
	"heteronoc/internal/plot"
	"heteronoc/internal/power"
	"heteronoc/internal/routing"
	"heteronoc/internal/runcache"
	"heteronoc/internal/stats"
	"heteronoc/internal/trace"
)

// appResult captures one benchmark x layout CMP run.
type appResult struct {
	IPC       float64
	NetLatNS  float64
	Queuing   float64
	Blocking  float64
	Transfer  float64
	Power     power.Breakdown
	MissRTT   stats.Summary
	MCLatency stats.Summary
	// Classes holds per-protocol-message-class packet counts and latency
	// (keyed by coherence.MsgType).
	Classes map[int]noc.ClassStats
}

// runApp executes one benchmark on one layout. Default-configuration runs
// (no per-core overrides, default routing) are memoized in runcache: the
// same (layout, bench, MC placement, budget) recipe appears across Fig10,
// Fig11/12 and Fig13, and every run is deterministic. Runs with custom
// cores or a custom routing algorithm bypass the cache — those inputs
// have no canonical key.
func runApp(ctx context.Context, l core.Layout, bench string, sc Scale, mcTiles []int, cores []cmp.CoreConfig, alg routing.Algorithm) (appResult, error) {
	if cores == nil && alg == nil {
		return runcache.ForCtx(ctx, appKey(l, bench, sc, mcTiles), func(ctx context.Context) (appResult, error) {
			return runAppUncached(ctx, l, bench, sc, mcTiles, nil, nil)
		})
	}
	return runAppUncached(ctx, l, bench, sc, mcTiles, cores, alg)
}

func runAppUncached(ctx context.Context, l core.Layout, bench string, sc Scale, mcTiles []int, cores []cmp.CoreConfig, alg routing.Algorithm) (appResult, error) {
	// bench resolves through the workload registry, so adversarial names
	// ("hotspot", "mc-incast", ...) work anywhere a profile name does.
	trs, err := trace.WorkloadTraces(bench, l.Mesh.NumTerminals(), 128)
	if err != nil {
		return appResult{}, err
	}
	s, err := cmp.New(cmp.Config{
		Layout:  l,
		Traces:  trs,
		MCTiles: mcTiles,
		Cores:   cores,
		Routing: alg,
	})
	if err != nil {
		return appResult{}, err
	}
	warmSystem(ctx, s, l, bench, sc)
	if err := s.RunCtx(ctx, sc.CMPCycles); err != nil {
		return appResult{}, err
	}
	return collect(s, l), nil
}

func collect(s *cmp.System, l core.Layout) appResult {
	res := appResult{
		IPC:       s.AvgIPC(),
		MissRTT:   s.MissRTT(),
		MCLatency: s.MCReqLatency,
	}
	ns := s.NetStats()
	res.NetLatNS = ns.AvgLatency() / l.FreqGHz()
	res.Queuing, res.Blocking, res.Transfer = ns.Breakdown()
	res.Power = power.Network(power.NewModel(), l, s.Net.Activity())
	res.Classes = map[int]noc.ClassStats{}
	for _, c := range ns.Classes() {
		res.Classes[c] = ns.Class(c)
	}
	return res
}

// appLayouts are the configurations of Figures 11-12.
func appLayouts() []core.Layout {
	return []core.Layout{
		core.NewBaseline(8, 8),
		core.NewLayout(core.PlacementCenter, 8, 8, false),
		core.NewLayout(core.PlacementDiagonal, 8, 8, false),
		core.NewLayout(core.PlacementRow25, 8, 8, false),
		core.NewLayout(core.PlacementCenter, 8, 8, true),
		core.NewLayout(core.PlacementDiagonal, 8, 8, true),
		core.NewLayout(core.PlacementRow25, 8, 8, true),
	}
}

// Fig10 compares heterogeneity on a mesh versus a torus: latency reduction
// of Diagonal+BL over the homogeneous network, per application, on both
// topologies (Section 5.1.1).
func Fig10(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("fig10", "Latency reduction: 8x8 mesh vs torus")
	benches := append(append([]string{}, trace.CommercialNames()...), trace.PARSECNames()...)
	meshBase := core.NewBaseline(8, 8)
	meshHet := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	torBase := meshBase.OnTorus()
	torHet := meshHet.OnTorus()
	r.Printf("| benchmark | mesh reduction %% | torus reduction %% |\n|---|---|---|\n")
	layouts10 := []core.Layout{meshBase, meshHet, torBase, torHet}
	var jobs []func(ctx context.Context) (appResult, error)
	for _, b := range benches {
		for _, l := range layouts10 {
			b, l := b, l
			jobs = append(jobs, func(ctx context.Context) (appResult, error) { return runApp(ctx, l, b, sc, nil, nil, nil) })
		}
	}
	flat, err := runAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	var meshSum, torSum float64
	for bi, b := range benches {
		row := flat[bi*4 : bi*4+4]
		mred := stats.PctReduction(row[1].NetLatNS, row[0].NetLatNS)
		tred := stats.PctReduction(row[3].NetLatNS, row[2].NetLatNS)
		meshSum += mred
		torSum += tred
		r.Printf("| %s | %.1f | %.1f |\n", b, mred, tred)
	}
	n := float64(len(benches))
	r.Metrics["mesh_avg_reduction_pct"] = meshSum / n
	r.Metrics["torus_avg_reduction_pct"] = torSum / n
	if meshSum != 0 {
		r.Metrics["torus_benefit_vs_mesh_pct"] = 100 * (1 - (torSum/n)/(meshSum/n))
	}
	r.Printf("\nPaper result: heterogeneity helps the edge-symmetric torus ~44%% less than the mesh. KNOWN DEVIATION: in this reproduction the torus often benefits *more*, because our torus uses dateline VC classes for deadlock freedom — the 3-VC baseline router is left with a 1+2 VC split per ring, and the 6-VC big routers relieve exactly that pressure. The paper does not describe its torus deadlock-avoidance scheme; under a scheme that does not partition VCs, its uniform-demand argument would dominate as published. See EXPERIMENTS.md.\n")
	return r, nil
}

// Fig11 reports application latency reduction/breakdown and power
// reduction/breakdown; Fig12 reports IPC improvements. Both come from the
// same set of CMP runs, executed once and shared.
func Fig11(ctx context.Context, sc Scale) (*Report, error) {
	r11, _, err := appStudy(ctx, sc)
	return r11, err
}

// Fig12 reports the per-suite IPC improvements of Figure 12.
func Fig12(ctx context.Context, sc Scale) (*Report, error) {
	_, r12, err := appStudy(ctx, sc)
	return r12, err
}

// appStudyCache avoids re-running the shared CMP sweep when both Fig11 and
// Fig12 are requested in one process.
var appStudyCache = map[string][2]*Report{}

func appStudy(ctx context.Context, sc Scale) (*Report, *Report, error) {
	if c, ok := appStudyCache[sc.Name]; ok {
		return c[0], c[1], nil
	}
	r11 := newReport("fig11", "Application latency and power")
	r12 := newReport("fig12", "IPC improvement")
	layouts := appLayouts()
	benches := append(append([]string{}, trace.CommercialNames()...), trace.PARSECNames()...)
	var jobs []func(ctx context.Context) (appResult, error)
	for _, b := range benches {
		for _, l := range layouts {
			b, l := b, l
			jobs = append(jobs, func(ctx context.Context) (appResult, error) { return runApp(ctx, l, b, sc, nil, nil, nil) })
		}
	}
	flat, err := runAll(ctx, jobs)
	if err != nil {
		return nil, nil, err
	}
	results := map[string][]appResult{}
	for bi, b := range benches {
		results[b] = flat[bi*len(layouts) : (bi+1)*len(layouts)]
	}
	// Figure 11 (a): latency reduction per config, averaged over suites.
	r11.Printf("### (a) Network latency reduction over baseline (%%)\n\n| benchmark |")
	for _, l := range layouts[1:] {
		r11.Printf(" %s |", l.Name)
	}
	r11.Printf("\n|---|%s\n", strings1(len(layouts)-1))
	sumRed := make([]float64, len(layouts))
	for _, b := range benches {
		r11.Printf("| %s |", b)
		base := results[b][0]
		for i := 1; i < len(layouts); i++ {
			red := stats.PctReduction(results[b][i].NetLatNS, base.NetLatNS)
			sumRed[i] += red
			r11.Printf(" %.1f |", red)
		}
		r11.Printf("\n")
	}
	for i := 1; i < len(layouts); i++ {
		r11.Metrics[keyName(layouts[i].Name)+"_latency_reduction_pct"] = sumRed[i] / float64(len(benches))
	}
	latBars := &plot.BarChart{Title: "Fig 11(a): network latency reduction", YLabel: "% over baseline"}
	for _, l := range layouts[1:] {
		latBars.Series = append(latBars.Series, l.Name)
	}
	for _, b := range benches {
		g := plot.BarGroup{Label: b}
		base := results[b][0]
		for i := 1; i < len(layouts); i++ {
			g.Values = append(g.Values, stats.PctReduction(results[b][i].NetLatNS, base.NetLatNS))
		}
		latBars.Groups = append(latBars.Groups, g)
	}
	r11.AddFigure("fig11a_latency_reduction", latBars.SVG())
	// Figure 11 (b): latency breakdown for the Fig11 benchmarks.
	r11.Printf("\n### (b) Latency breakdown (cycles) — Diagonal+BL vs Baseline\n\n| benchmark | base q/b/t | diag+BL q/b/t |\n|---|---|---|\n")
	diagIdx := 5 // Diagonal+BL in appLayouts
	for _, b := range trace.Fig11Names() {
		base, diag := results[b][0], results[b][diagIdx]
		r11.Printf("| %s | %.1f/%.1f/%.1f | %.1f/%.1f/%.1f |\n", b,
			base.Queuing, base.Blocking, base.Transfer,
			diag.Queuing, diag.Blocking, diag.Transfer)
	}
	// Extension to Figure 11: the protocol traffic mix on the baseline for
	// SAP — which message classes dominate and what each one pays.
	r11.Printf("\n### Protocol traffic mix (SAP, baseline)\n\n| message | packets | avg latency (cycles) |\n|---|---|---|\n")
	sap := results["SAP"][0]
	for c := 0; c < 16; c++ {
		cs, ok := sap.Classes[c]
		if !ok || cs.Packets == 0 {
			continue
		}
		r11.Printf("| %s | %d | %.1f |\n", coherence.MsgType(c), cs.Packets, cs.Avg())
	}
	// Figure 11 (c)+(d): power.
	r11.Printf("\n### (c) Network power reduction over baseline (%%)\n\n| benchmark | Center+BL | Diagonal+BL | Row2_5+BL |\n|---|---|---|---|\n")
	var powRed [3]float64
	for _, b := range benches {
		base := results[b][0].Power.Total()
		r11.Printf("| %s |", b)
		for i, li := range []int{4, 5, 6} {
			red := stats.PctReduction(results[b][li].Power.Total(), base)
			powRed[i] += red
			r11.Printf(" %.1f |", red)
		}
		r11.Printf("\n")
	}
	r11.Metrics["center_bl_power_reduction_pct"] = powRed[0] / float64(len(benches))
	r11.Metrics["diagonal_bl_power_reduction_pct"] = powRed[1] / float64(len(benches))
	r11.Metrics["row2_5_bl_power_reduction_pct"] = powRed[2] / float64(len(benches))
	r11.Printf("\n### (d) Power breakdown (W) — SAP\n\n| config | links | xbar | arb | buffers |\n|---|---|---|---|---|\n")
	for i, l := range layouts {
		if i != 0 && i != 4 && i != 5 {
			continue
		}
		pb := results["SAP"][i].Power
		r11.Printf("| %s | %.1f | %.1f | %.1f | %.1f |\n", l.Name, pb.Links, pb.Xbar, pb.Arbiters, pb.Buffers)
	}

	// Figure 12: IPC improvements per suite.
	suites := []struct {
		fig   string
		names []string
	}{
		{"(a) Commercial", trace.CommercialNames()},
		{"(b) PARSEC", trace.PARSECNames()},
	}
	for _, sdef := range suites {
		fig, suite := sdef.fig, sdef.names
		r12.Printf("### %s\n\n| benchmark |", fig)
		for _, l := range layouts[1:] {
			r12.Printf(" %s |", l.Name)
		}
		r12.Printf("\n|---|%s\n", strings1(len(layouts)-1))
		sums := make([]float64, len(layouts))
		for _, b := range suite {
			r12.Printf("| %s |", b)
			base := results[b][0].IPC
			for i := 1; i < len(layouts); i++ {
				imp := stats.PctDelta(results[b][i].IPC, base)
				sums[i] += imp
				r12.Printf(" %+.1f |", imp)
			}
			r12.Printf("\n")
		}
		r12.Printf("\n")
		suiteKey := "commercial"
		if fig[1] == 'b' {
			suiteKey = "parsec"
		}
		for i := 1; i < len(layouts); i++ {
			r12.Metrics[suiteKey+"_"+keyName(layouts[i].Name)+"_ipc_pct"] = sums[i] / float64(len(suite))
		}
		bars := &plot.BarChart{Title: "Fig 12 " + fig + ": IPC improvement", YLabel: "%"}
		for _, l := range layouts[1:] {
			bars.Series = append(bars.Series, l.Name)
		}
		for _, b := range suite {
			g := plot.BarGroup{Label: b}
			base := results[b][0].IPC
			for i := 1; i < len(layouts); i++ {
				g.Values = append(g.Values, stats.PctDelta(results[b][i].IPC, base))
			}
			bars.Groups = append(bars.Groups, g)
		}
		r12.AddFigure("fig12_"+suiteKey+"_ipc", bars.SVG())
	}
	appStudyCache[sc.Name] = [2]*Report{r11, r12}
	return r11, r12, nil
}

// runAll executes independent CMP jobs concurrently (each job builds its
// own System with fixed seeds, so parallelism cannot change any result)
// and returns results in job order.
func runAll(ctx context.Context, jobs []func(ctx context.Context) (appResult, error)) ([]appResult, error) {
	return par.MapCtx(ctx, len(jobs), func(ctx context.Context, i int) (appResult, error) {
		return jobs[i](ctx)
	})
}
