package experiments

import (
	"context"
	"math/rand"

	"heteronoc/internal/core"
	"heteronoc/internal/fault"
	"heteronoc/internal/noc"
	"heteronoc/internal/par"
	"heteronoc/internal/plot"
	"heteronoc/internal/reqstat"
	"heteronoc/internal/routing"
	"heteronoc/internal/traffic"
)

// faultNet builds a layout's network with fault-aware table routing and an
// armed fault plan. Both layouts share the 8x8 mesh, so one plan names the
// same physical links in either network.
func faultNet(l core.Layout, plan *fault.Plan) (*noc.Network, error) {
	net, err := l.NetworkWith(routing.NewFaultTable(l.Mesh, routing.FaultTableConfig{Big: l.BigSet()}))
	if err != nil {
		return nil, err
	}
	if err := net.SetFaultPlan(plan); err != nil {
		return nil, err
	}
	return net, nil
}

// degradationPlan draws the k-link failure set for one sweep point. Every
// failure strikes at cycle 1 so each point measures a steady-state degraded
// network; KeepConnected keeps all 64 terminals reachable so the
// reliability layer can deliver 100% of accepted traffic.
func degradationPlan(l core.Layout, k int, seed int64) *fault.Plan {
	p := fault.Generate(l.Mesh, seed, fault.GenConfig{
		Links:         k,
		MaxCycle:      1,
		KeepConnected: true,
	})
	p.Events() // pre-sort: the plan is shared across parallel runs
	return p
}

// degResult is one reliability-layer measurement on a degraded network.
type degResult struct {
	rs       noc.ReliableStats
	avgLat   float64
	netFP    uint64 // network fingerprint after quiescence
	statsFP  uint64 // reliability-stats fingerprint
	pktsLost int64  // packets purged by fault recovery (recovered by retry)
}

// runReliable offers uniform-random traffic at flitRate flits/node/cycle
// through the end-to-end reliability layer for injectCycles, then drains
// until every transfer is delivered or abandoned.
func runReliable(ctx context.Context, l core.Layout, plan *fault.Plan, flitRate float64, injectCycles int64, seed int64) (degResult, error) {
	net, err := faultNet(l, plan)
	if err != nil {
		return degResult{}, err
	}
	rel := noc.NewReliable(net, noc.ReliableConfig{Timeout: 512, MaxRetries: 8})
	flits := l.DataPacketFlits()
	pktRate := flitRate / float64(flits)
	n := l.Mesh.NumTerminals()
	rng := rand.New(rand.NewSource(seed))
	// Reliability runs don't checkpoint-suspend (the retry layer's state
	// has no snapshot format); they observe plain cancellation at the
	// usual cycle-batch granularity instead.
	since := 0
	batch := func() error {
		if since++; since >= traffic.CancelBatch {
			reqstat.AddCycles(ctx, int64(since))
			since = 0
			return ctx.Err()
		}
		return nil
	}
	for c := int64(0); c < injectCycles; c++ {
		for t := 0; t < n; t++ {
			if rng.Float64() < pktRate {
				// Refusals (severed destination) are counted by the layer.
				_, _ = rel.Send(t, rng.Intn(n), flits, 0, nil)
			}
		}
		if err := rel.Step(); err != nil {
			return degResult{}, err
		}
		if err := batch(); err != nil {
			return degResult{}, err
		}
	}
	// Drain: retry backoff means a quiet network can still owe deliveries.
	for i := 0; !rel.Quiesced() && i < 1<<20; i++ {
		if err := rel.Step(); err != nil {
			return degResult{}, err
		}
		if err := batch(); err != nil {
			return degResult{}, err
		}
	}
	rs := *rel.Stats()
	return degResult{
		rs:       rs,
		avgLat:   rs.AvgLatency(),
		netFP:    net.Fingerprint(),
		statsFP:  rs.Fingerprint(),
		pktsLost: net.Stats().PacketsLost,
	}, nil
}

// runSaturated measures accepted throughput on the degraded network at an
// offered load past the fault-free saturation point of both designs.
func runSaturated(ctx context.Context, l core.Layout, plan *fault.Plan, sc Scale) (traffic.RunResult, error) {
	net, err := faultNet(l, plan)
	if err != nil {
		return traffic.RunResult{}, err
	}
	return traffic.RunCtx(ctx, net, traffic.RunConfig{
		Pattern:        traffic.UniformRandom{N: l.Mesh.NumTerminals()},
		Process:        traffic.Bernoulli{P: 0.09},
		DataFlits:      l.DataPacketFlits(),
		WarmupPackets:  sc.WarmupPackets,
		MeasurePackets: sc.MeasurePackets,
		Seed:           42,
		MaxCycles:      int64(sc.MeasurePackets) * 40,
	})
}

// degradationSeed fixes the failure draw per sweep point; the acceptance
// tests replay point k=4 and expect bit-identical fingerprints.
const degradationSeed = 900

// Degradation sweeps 0..8 failed links on the 8x8 mesh and compares the
// homogeneous baseline against Diagonal+BL, both under fault-aware table
// routing with the escape-VC discipline and the NI retransmission layer.
// The heterogeneous design's claim under test: the over-provisioned
// diagonal keeps absorbing rerouted traffic, so it degrades more
// gracefully than the homogeneous mesh as links die.
func Degradation(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("degradation", "Graceful degradation under link failures (extension)")
	layouts := []core.Layout{
		core.NewBaseline(8, 8),
		core.NewLayout(core.PlacementDiagonal, 8, 8, true),
	}
	// Each sweep point averages the saturation probe over several seeded
	// failure draws: a single random k-link cut can land anywhere, and
	// which design it punishes is a coin flip; the average isolates the
	// systematic provisioning difference. The reliability run uses the
	// first draw only.
	const maxFailed = 8
	const numDraws = 3
	plans := make([][]*fault.Plan, maxFailed+1)
	for k := 0; k <= maxFailed; k++ {
		plans[k] = make([]*fault.Plan, numDraws)
		for d := 0; d < numDraws; d++ {
			plans[k][d] = degradationPlan(layouts[0], k, degradationSeed+int64(numDraws*k+d))
		}
	}
	injectCycles := int64(sc.MeasurePackets) * 2
	type point struct {
		rel degResult
		sat float64 // accepted packets/node/cycle, averaged over the draws
	}
	// The grid of (k, layout) probes is independent; fan it out.
	nl := len(layouts)
	pts, err := par.MapCtx(ctx, (maxFailed+1)*nl, func(ctx context.Context, i int) (point, error) {
		k, l := i/nl, layouts[i%nl]
		rel, err := runReliable(ctx, l, plans[k][0], 0.2, injectCycles, 7)
		if err != nil {
			return point{}, err
		}
		var sat float64
		for _, plan := range plans[k] {
			res, err := runSaturated(ctx, l, plan, sc)
			if err != nil {
				return point{}, err
			}
			sat += res.AcceptedRate
		}
		return point{rel: rel, sat: sat / numDraws}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Printf("UR at 0.2 flits/node/cycle through the NI retransmission layer (timeout 512, max 8 retries), plus a saturation probe at 0.09 packets/node/cycle. All k links fail at cycle 1; plans are seeded and keep the mesh connected. Retention is saturation throughput relative to the design's own fault-free (k=0) point — the graceful-degradation figure of merit.\n\n")
	r.Printf("| failed links | layout | delivered | recovered | retrans | avg lat (cycles) | sat throughput | retention |\n|---|---|---|---|---|---|---|---|\n")
	names := []string{"base", "hetero"}
	satFig := &plot.LineChart{Title: "Degradation: saturation throughput vs failed links",
		XLabel: "failed links", YLabel: "accepted packets/node/cycle"}
	latFig := &plot.LineChart{Title: "Degradation: delivered latency vs failed links",
		XLabel: "failed links", YLabel: "latency (cycles)"}
	series := make([]struct{ sat, lat plot.Series }, nl)
	for li, l := range layouts {
		series[li].sat.Name = l.Name
		series[li].lat.Name = l.Name
	}
	for k := 0; k <= maxFailed; k++ {
		for li, l := range layouts {
			p := pts[k*nl+li]
			frac := 0.0
			if p.rel.rs.Sent > 0 {
				frac = float64(p.rel.rs.Delivered) / float64(p.rel.rs.Sent)
			}
			retention := 0.0
			if fresh := pts[li].sat; fresh > 0 {
				retention = p.sat / fresh
			}
			r.Printf("| %d | %s | %.4f | %d | %d | %.1f | %.4f | %.2f |\n",
				k, l.Name, frac, p.rel.rs.Recovered, p.rel.rs.Retransmissions,
				p.rel.avgLat, p.sat, retention)
			key := names[li]
			r.Metrics[keyNameInt("delivered_frac_"+key, k)] = frac
			r.Metrics[keyNameInt("recovered_"+key, k)] = float64(p.rel.rs.Recovered)
			r.Metrics[keyNameInt("sat_"+key, k)] = p.sat
			r.Metrics[keyNameInt("retention_"+key, k)] = retention
			r.Metrics[keyNameInt("latency_"+key, k)] = p.rel.avgLat
			series[li].sat.X = append(series[li].sat.X, float64(k))
			series[li].sat.Y = append(series[li].sat.Y, p.sat)
			series[li].lat.X = append(series[li].lat.X, float64(k))
			series[li].lat.Y = append(series[li].lat.Y, p.rel.avgLat)
		}
	}
	for li := range layouts {
		satFig.Series = append(satFig.Series, series[li].sat)
		latFig.Series = append(latFig.Series, series[li].lat)
	}
	r.AddFigure("degradation_throughput", satFig.SVG())
	r.AddFigure("degradation_latency", latFig.SVG())
	r.Printf("\nWith connected failure sets and retransmission, both designs deliver every accepted transfer; the capacity numbers carry the signal. Fault-free, the homogeneous mesh has the edge (the escape-VC reservation costs the 2-VC small routers half their lanes), but it sheds capacity quickly as links die. The heterogeneous mesh degrades gracefully: rerouted traffic concentrates on the surviving paths through the diagonal, and the wide, deeply-buffered big routers absorb exactly that pressure, so from two failed links on it retains strictly more of its saturation throughput than the baseline retains of its own.\n")
	return r, nil
}
