package experiments

// Shared cache warmups. Every default-trace CMP run warms its caches from
// the same deterministic per-core trace generators, and the warm state is
// independent of the layout, topology and memory-controller placement
// (warmup touches only L1s, home directories and trace positions — see
// cmp.WarmSnapshot). So all seven Fig11/Fig12 layouts of one benchmark,
// Fig10's mesh/torus pairs and Fig13's prefetch-off runs share one
// (bench, tiles, entries, line size, prefetch) warmup. Instead of each run
// replaying the warmup trace, the first arrival warms a template system,
// snapshots it, and every run — first included — restores the checkpoint.
// The checkpoint rides the runcache, so with a disk tier configured, a
// later process skips warmup replay entirely.
//
// Restored and directly-warmed systems are bit-identical (pinned by the
// cmp snapshot tests and TestFigureOutputIdenticalWithWarmupSharing), so
// figure output cannot depend on this toggle.

import (
	"context"
	"fmt"
	"sync/atomic"

	"heteronoc/internal/cmp"
	"heteronoc/internal/core"
	"heteronoc/internal/runcache"
	"heteronoc/internal/trace"
)

var (
	warmupSharing atomic.Bool

	// warmRestores / warmFallbacks let tests assert the sharing path
	// actually ran rather than silently falling back.
	warmRestores  atomic.Int64
	warmFallbacks atomic.Int64
)

func init() { warmupSharing.Store(true) }

// SetWarmupSharing toggles checkpoint-based warmup sharing (the
// -nowarmshare flag of cmd/experiments). Output is identical either way;
// off means every run replays its own warmup trace.
func SetWarmupSharing(on bool) { warmupSharing.Store(on) }

// WarmupSharingStats returns how many runs restored a shared warm
// checkpoint and how many fell back to a direct warmup.
func WarmupSharingStats() (restored, fellBack int64) {
	return warmRestores.Load(), warmFallbacks.Load()
}

// warmKey addresses a shared warm checkpoint. Deliberately narrower than
// appKey: no layout, no MC placement, no scale name — warm state depends
// on none of them, and the narrow key is what collapses the per-layout
// warmups of a figure (and across figures) into one.
func warmKey(bench string, n, entries, lineBytes int, prefetch bool) string {
	return fmt.Sprintf("warm|%s|n=%d|e=%d|lb=%d|pf=%t", bench, n, entries, lineBytes, prefetch)
}

// warmSystem brings the freshly built s to its post-warmup state, via a
// shared checkpoint when sharing is enabled and applicable. Equivalent to
// s.Warmup(sc.CMPWarmupEntries) bit for bit.
func warmSystem(ctx context.Context, s *cmp.System, l core.Layout, bench string, sc Scale) {
	entries := sc.CMPWarmupEntries
	if !warmupSharing.Load() || !runcache.Enabled() || entries <= 0 {
		s.Warmup(entries)
		return
	}
	n := l.Mesh.NumTerminals()
	key := warmKey(bench, n, entries, s.LineBytes(), s.PrefetchEnabled())
	snap, err := runcache.ForCtx(ctx, key, func(context.Context) ([]byte, error) {
		t, err := warmTemplate(l, bench, s.PrefetchEnabled())
		if err != nil {
			return nil, err
		}
		t.Warmup(entries)
		return t.WarmSnapshot()
	})
	if err == nil && len(snap) > 0 {
		if rerr := s.RestoreWarmSnapshot(snap); rerr == nil {
			warmRestores.Add(1)
			return
		}
	}
	// Defensive: a failed restore degrades to the direct path, which
	// produces the identical state (just slower).
	warmFallbacks.Add(1)
	s.Warmup(entries)
}

// warmTemplate builds a minimal system to generate a warm checkpoint: the
// baseline layout of the same size with the bench's standard trace
// generators. Its warm state equals that of any same-sized layout
// (TestWarmSnapshotSharedAcrossLayouts).
func warmTemplate(l core.Layout, bench string, prefetch bool) (*cmp.System, error) {
	trs, err := trace.WorkloadTraces(bench, l.Mesh.NumTerminals(), 128)
	if err != nil {
		return nil, err
	}
	w, h := l.Mesh.Dims()
	return cmp.New(cmp.Config{Layout: core.NewBaseline(w, h), Traces: trs, Prefetch: prefetch})
}
