package experiments

// Shared cache warmups. The mechanism lives in internal/warm (it is also
// the design-space search's per-candidate warm-restore path); these
// wrappers keep the experiments-facing names and wire the Scale's warmup
// budget through. See the warm package comment for the sharing contract.

import (
	"context"

	"heteronoc/internal/cmp"
	"heteronoc/internal/core"
	"heteronoc/internal/warm"
)

// SetWarmupSharing toggles checkpoint-based warmup sharing (the
// -nowarmshare flag of cmd/experiments). Output is identical either way;
// off means every run replays its own warmup trace.
func SetWarmupSharing(on bool) { warm.SetSharing(on) }

// WarmupSharingStats returns how many runs restored a shared warm
// checkpoint and how many fell back to a direct warmup.
func WarmupSharingStats() (restored, fellBack int64) { return warm.Stats() }

// warmKey addresses a shared warm checkpoint (see warm.Key).
func warmKey(bench string, n, entries, lineBytes int, prefetch bool) string {
	return warm.Key(bench, n, entries, lineBytes, prefetch)
}

// warmSystem brings the freshly built s to its post-warmup state, via a
// shared checkpoint when sharing is enabled and applicable. Equivalent to
// s.Warmup(sc.CMPWarmupEntries) bit for bit.
func warmSystem(ctx context.Context, s *cmp.System, l core.Layout, bench string, sc Scale) {
	warm.System(ctx, s, l, bench, sc.CMPWarmupEntries)
}
