package experiments

import (
	"fmt"
	"sort"
	"strconv"

	"heteronoc/internal/obs"
)

// ConfigHash content-addresses an experiment recipe: the ordered experiment
// id list plus every Scale parameter. Two invocations with the same hash run
// the same simulations with the same seeds (seeds are derived
// deterministically from the recipe inside each experiment), so their
// results — and their manifests modulo wall time — are identical.
func ConfigHash(ids []string, sc Scale) string {
	parts := append([]string{"experiments/v1"}, ids...)
	parts = append(parts, sc.Name,
		strconv.Itoa(sc.WarmupPackets), strconv.Itoa(sc.MeasurePackets),
		strconv.Itoa(sc.SweepPoints),
		strconv.Itoa(sc.CMPWarmupEntries), strconv.FormatInt(sc.CMPCycles, 10),
		strconv.Itoa(sc.DSEPackets), strconv.Itoa(sc.DSECandidates))
	return fmt.Sprintf("%016x", obs.HashStrings(parts...))
}

// Fingerprint hashes the report's full metric map (keys and exact float
// bit patterns) into a compact result identity. Deterministic runs produce
// identical fingerprints; any metric drift changes the hash.
func (r *Report) Fingerprint() string {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, 2*len(keys)+1)
	parts = append(parts, r.ID)
	for _, k := range keys {
		parts = append(parts, k, strconv.FormatFloat(r.Metrics[k], 'x', -1, 64))
	}
	return fmt.Sprintf("%016x", obs.HashStrings(parts...))
}
