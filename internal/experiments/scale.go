package experiments

// The scale experiment takes the paper's Fig 7 methodology to CMP sizes the
// original evaluation never reaches: 16x16 (256 routers) and 32x32 (1024
// routers). Two questions drive it. Does the heterogeneous diagonal
// placement keep its latency advantage as the mesh grows (the center
// hot-spot it exploits only sharpens with scale)? And does the simulator
// itself hold up — is the sharded tick still bit-deterministic at 1024
// routers, and how much wall time does it buy?
//
// Every sweep probe goes through runNet, so completed points are memoized
// in runcache (and persist across processes with a disk tier) exactly like
// the 8x8 figures. The sharded determinism check is deliberately uncached:
// it exists to exercise the live engine, not to be remembered.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"heteronoc/internal/core"
	"heteronoc/internal/par"
	"heteronoc/internal/plot"
	"heteronoc/internal/stats"
	"heteronoc/internal/traffic"
)

// scaleWidths are the mesh edge lengths swept by ScaleUp, beyond the
// paper's 8x8.
var scaleWidths = []int{16, 32}

// scaleMaxRate returns the top of the injection-rate grid for a w-wide
// mesh. Uniform random traffic is bisection-limited: half the packets
// cross the middle cut, whose capacity grows only linearly with w while
// the number of injectors grows quadratically, so per-node saturation
// throughput falls as 1/w. Anchoring to the 8x8 sweep ceiling (0.072,
// footnote 1) keeps every mesh swept over the same fraction of its own
// saturation range.
func scaleMaxRate(w int) float64 { return 0.072 * 8 / float64(w) }

// ScaleUp sweeps uniform random load on 16x16 and 32x32 meshes, comparing
// the baseline homogeneous design against the diagonal heterogeneous
// placement, and then audits the engine itself: a 32x32 run repeated on
// the work-stealing sharded tick must reproduce the sequential run's
// fingerprint bit for bit.
func ScaleUp(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("scale", "Scaling to 16x16 and 32x32 meshes")
	for _, w := range scaleWidths {
		if err := scaleSweep(ctx, r, w, sc); err != nil {
			return nil, err
		}
	}
	if err := shardedCheck(ctx, r, sc); err != nil {
		return nil, err
	}
	return r, nil
}

// scaleSweep runs one mesh size's baseline-vs-diagonal load sweep and
// appends its table, figure and metrics to the report.
func scaleSweep(ctx context.Context, r *Report, w int, sc Scale) error {
	layouts := []core.Layout{
		core.NewBaseline(w, w),
		core.NewLayout(core.PlacementDiagonal, w, w, true),
	}
	rates := sweepRates(sc, scaleMaxRate(w))
	nr := len(rates)
	// The layouts x rates grid is a flat batch of independent probes, same
	// fan-out as Fig 7; each probe is memoized in runcache under its own key.
	pts, err := par.MapCtx(ctx, len(layouts)*nr, func(ctx context.Context, k int) (ratePoint, error) {
		return measurePoint(ctx, layouts[k/nr], traffic.UniformRandom{N: w * w}, rates[k%nr], sc, false)
	})
	if err != nil {
		return err
	}
	sums := make([]netSummary, len(layouts))
	for li, l := range layouts {
		sums[li] = summarizeSweep(l, rates, pts[li*nr:(li+1)*nr])
	}
	base, diag := sums[0], sums[1]
	// Compare average latency over the rates where the baseline is still
	// pre-knee, as in Fig 7 — a design that survives to higher loads must
	// not be judged on operating points the baseline cannot reach.
	baseKnee := 3 * base.points[0].Result.AvgLatency
	var common []int
	for i, p := range base.points {
		if p.Result.AvgLatency <= baseKnee && !p.Result.Saturated {
			common = append(common, i)
		}
	}
	if len(common) == 0 {
		common = []int{0}
	}
	for si := range sums {
		var sum float64
		for _, i := range common {
			sum += sums[si].points[i].Result.AvgLatency / sums[si].layout.FreqGHz()
		}
		sums[si].avgLatNS = sum / float64(len(common))
	}
	r.Printf("### %dx%d load-latency (ns)\n\n| inj rate | %s | %s |\n|---|---|---|\n",
		w, w, base.layout.Name, diag.layout.Name)
	for i, rate := range rates {
		r.Printf("| %.4f |", rate)
		for _, s := range sums {
			res := s.points[i].Result
			mark := ""
			if res.Saturated {
				mark = "*"
			}
			r.Printf(" %.1f%s |", res.AvgLatency/s.layout.FreqGHz(), mark)
		}
		r.Printf("\n")
	}
	r.Printf("(* = saturated)\n\n")
	prefix := fmt.Sprintf("mesh%d_", w)
	tp := stats.PctDelta(diag.satRate, base.satRate)
	lat := stats.PctReduction(diag.avgLatNS, base.avgLatNS)
	zl := stats.PctReduction(diag.zeroLoad, base.zeroLoad)
	r.Printf("Diagonal vs baseline at %dx%d: throughput %+.1f%%, avg latency %+.1f%%, zero load %+.1f%%.\n\n",
		w, w, tp, lat, zl)
	r.Metrics[prefix+"diagonal_throughput_pct"] = tp
	r.Metrics[prefix+"diagonal_latency_reduction_pct"] = lat
	r.Metrics[prefix+"diagonal_zeroload_reduction_pct"] = zl
	r.Metrics[prefix+"baseline_zeroload_ns"] = base.zeroLoad
	fig := &plot.LineChart{
		Title:  fmt.Sprintf("Scale: %dx%d load-latency", w, w),
		XLabel: "injection rate (packets/node/cycle)", YLabel: "latency (ns)",
		YMax: 6 * base.zeroLoad,
	}
	for _, s := range sums {
		ls := plot.Series{Name: s.layout.Name}
		for i, rate := range rates {
			ls.X = append(ls.X, rate)
			ls.Y = append(ls.Y, s.points[i].Result.AvgLatency/s.layout.FreqGHz())
		}
		fig.Series = append(fig.Series, ls)
	}
	r.AddFigure(fmt.Sprintf("scale_%dx%d_latency", w, w), fig.SVG())
	return nil
}

// shardedCheck replays one 32x32 run twice — sequential tick, then the
// work-stealing sharded tick — and asserts the two final network
// fingerprints are identical. The fingerprint covers every statistics
// counter, so a match certifies the parallel engine is bit-exact at 1024
// routers, not merely close. Wall-clock speedup is reported in the body
// only: it varies with the host (a single-core container reports ~1x) and
// must not perturb the deterministic metric fingerprint.
func shardedCheck(ctx context.Context, r *Report, sc Scale) error {
	const w = 32
	rate := scaleMaxRate(w) / 2 // comfortably pre-knee
	run := func(workers int) (uint64, time.Duration, error) {
		net, err := core.NewBaseline(w, w).Network()
		if err != nil {
			return 0, 0, err
		}
		defer net.Close()
		if workers > 1 {
			net.SetShardWorkers(workers)
		}
		start := time.Now()
		_, err = traffic.RunCtx(ctx, net, traffic.RunConfig{
			Pattern:        traffic.UniformRandom{N: w * w},
			Process:        traffic.Bernoulli{P: rate},
			DataFlits:      core.NewBaseline(w, w).DataPacketFlits(),
			WarmupPackets:  sc.WarmupPackets,
			MeasurePackets: sc.MeasurePackets,
			Seed:           42,
			MaxCycles:      int64(sc.MeasurePackets) * 40,
		})
		if err != nil {
			return 0, 0, err
		}
		return net.Fingerprint(), time.Since(start), nil
	}
	seqFP, seqDur, err := run(1)
	if err != nil {
		return err
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2 // still exercises the sharded code path
	}
	shFP, shDur, err := run(workers)
	if err != nil {
		return err
	}
	match := 0.0
	if seqFP == shFP {
		match = 1.0
	}
	r.Metrics["sharded_fingerprint_match"] = match
	r.Printf("### Sharded-tick determinism at 32x32\n\n")
	r.Printf("Sequential fingerprint `%016x`, sharded (%d workers) `%016x`: **%s**.\n",
		seqFP, workers, shFP, map[bool]string{true: "identical", false: "MISMATCH"}[match == 1])
	speedup := 0.0
	if shDur > 0 {
		speedup = seqDur.Seconds() / shDur.Seconds()
	}
	r.Printf("Wall clock: sequential %.2fs, sharded %.2fs (%.2fx; informational only — host-dependent, excluded from metrics).\n\n",
		seqDur.Seconds(), shDur.Seconds(), speedup)
	if match != 1 {
		return fmt.Errorf("scale: sharded 32x32 fingerprint %016x differs from sequential %016x", shFP, seqFP)
	}
	return nil
}
