package experiments

import (
	"context"

	"heteronoc/internal/analytic"
	"heteronoc/internal/cmp"
	"heteronoc/internal/core"
	"heteronoc/internal/dse"
	"heteronoc/internal/noc"
	"heteronoc/internal/power"
	"heteronoc/internal/routing"
	"heteronoc/internal/stats"
	"heteronoc/internal/topology"
	"heteronoc/internal/trace"
	"heteronoc/internal/traffic"
)

// Extensions returns the beyond-the-paper experiments: mechanism
// ablations, the big-router count sensitivity the paper leaves as future
// work, and the full synthetic-pattern table it summarizes in one
// sentence.
func Extensions() []Runner {
	return []Runner{
		{"ablation", "Mechanism ablation of Diagonal+BL", Ablation},
		{"sensitivity", "Sensitivity to the number of big routers", Sensitivity},
		{"patterns", "All synthetic traffic patterns", Patterns},
		{"generality", "HeteroNoC on other non-edge-symmetric topologies", Generality},
		{"adaptive", "X-Y vs west-first adaptive routing", Adaptive},
		{"anneal", "Simulated annealing over 8x8 placements", Anneal8x8},
		{"prefetch", "L1 next-line prefetcher", Prefetch},
		{"tails", "Latency tail behavior", Tails},
		{"model", "Analytical cross-validation", Model},
		{"degradation", "Graceful degradation under link failures", Degradation},
		{"scale", "Latency scaling to 16x16 and 32x32 meshes", ScaleUp},
		{"adversarial", "Synthesized adversarial workloads (hotspot, MC incast, ...)", Adversarial},
		{"latency-breakdown", "Causal latency attribution under hotspot traffic", LatencyBreakdown},
		{"dse-search", "Multi-objective evolutionary placement search", DSESearch},
	}
}

// AllWithExtensions returns the paper experiments plus the extensions.
func AllWithExtensions() []Runner { return append(All(), Extensions()...) }

// ablationNetwork builds Diagonal+BL with individual mechanisms disabled.
func ablationNetwork(l core.Layout, wide, split, vcs bool) (*noc.Network, error) {
	cfgs := l.RouterConfigs()
	for i := range cfgs {
		if !wide {
			cfgs[i].Wide = false
		}
		if !split {
			cfgs[i].SplitDatapath = false
			cfgs[i].ImprovedSA = false
		}
		if !vcs {
			cfgs[i].VCs = 3 // revert the buffer redistribution
		}
	}
	return noc.New(noc.Config{
		Topo:           l.Mesh,
		Routing:        routing.NewXY(l.Mesh),
		Routers:        cfgs,
		FlitWidthBits:  l.FlitWidthBits(),
		WatchdogCycles: 100000,
	})
}

// Ablation quantifies what each HeteroNoC mechanism contributes to the
// Diagonal+BL latency win: wide links (flit combining), the split-datapath
// allocator, and the VC redistribution.
func Ablation(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("ablation", "Mechanism ablation of Diagonal+BL (extension)")
	l := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	const rate = 0.048
	cases := []struct {
		name             string
		wide, split, vcs bool
	}{
		{"full Diagonal+BL", true, true, true},
		{"- wide links", false, true, true},
		{"- split datapath/SA", true, false, true},
		{"- VC redistribution", true, true, false},
		{"none (uniform 3VC narrow)", false, false, false},
	}
	r.Printf("UR at %.3f packets/node/cycle; every variant runs at the 2.07 GHz hetero clock.\n\n", rate)
	r.Printf("| variant | latency (cycles) | blocking | accepted |\n|---|---|---|---|\n")
	var full float64
	for i, c := range cases {
		net, err := ablationNetwork(l, c.wide, c.split, c.vcs)
		if err != nil {
			return nil, err
		}
		res, err := traffic.RunCtx(ctx, net, traffic.RunConfig{
			Pattern:        traffic.UniformRandom{N: 64},
			Process:        traffic.Bernoulli{P: rate},
			DataFlits:      l.DataPacketFlits(),
			WarmupPackets:  sc.WarmupPackets,
			MeasurePackets: sc.MeasurePackets,
			Seed:           42,
			MaxCycles:      int64(sc.MeasurePackets) * 40,
		})
		if err != nil {
			return nil, err
		}
		r.Printf("| %s | %.1f | %.1f | %.4f |\n", c.name, res.AvgLatency, res.BlockingLatency, res.AcceptedRate)
		if i == 0 {
			full = res.AvgLatency
		} else {
			r.Metrics[keyName(c.name)+"_latency_cost_pct"] = stats.PctDelta(res.AvgLatency, full)
		}
	}
	r.Printf("\nPositive cost = removing the mechanism makes latency worse; the split-datapath allocator and wide links carry most of the win.\n")
	return r, nil
}

// Sensitivity sweeps the number of big routers (the wide/narrow link ratio
// study the paper defers to future work): diagonal-style placements with
// 8, 16, 24 and 32 big routers, reporting performance and the power
// inequality.
func Sensitivity(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("sensitivity", "Number of big routers (extension)")
	const rate = 0.048
	pm := power.NewModel()
	r.Printf("| big routers | power guideline holds | latency (cycles) | power (W) |\n|---|---|---|---|\n")
	for _, k := range []int{8, 16, 24, 32} {
		l := core.NewCustom("diag-k", 8, 8, firstKDiagonal(k), true)
		net, err := l.Network()
		if err != nil {
			return nil, err
		}
		res, err := traffic.RunCtx(ctx, net, traffic.RunConfig{
			Pattern:        traffic.UniformRandom{N: 64},
			Process:        traffic.Bernoulli{P: rate},
			DataFlits:      l.DataPacketFlits(),
			WarmupPackets:  sc.WarmupPackets,
			MeasurePackets: sc.MeasurePackets,
			Seed:           42,
			MaxCycles:      int64(sc.MeasurePackets) * 40,
		})
		if err != nil {
			return nil, err
		}
		pw := power.Network(pm, l, res.Activity).Total()
		holds := l.PowerInequalityHolds()
		r.Printf("| %d | %v | %.1f | %.1f |\n", k, holds, res.AvgLatency, pw)
		r.Metrics[keyNameInt("latency_big", k)] = res.AvgLatency
		r.Metrics[keyNameInt("power_big", k)] = pw
		if holds {
			r.Metrics[keyNameInt("guideline_big", k)] = 1
		} else {
			r.Metrics[keyNameInt("guideline_big", k)] = 0
		}
	}
	r.Printf("\nBeyond ~16 big routers (2N) the Section 2 power guideline fails: more big routers keep buying latency but break the iso-power constraint, which is why the paper picks 2N.\n")
	return r, nil
}

// firstKDiagonal places k big routers by walking the two diagonals from
// the center outward, then thickening the diagonals.
func firstKDiagonal(k int) []int {
	m := core.NewBaseline(8, 8).Mesh
	order := []int{}
	seen := map[int]bool{}
	add := func(x, y int) {
		if x < 0 || x > 7 || y < 0 || y > 7 {
			return
		}
		r := m.RouterAt(x, y)
		if !seen[r] {
			seen[r] = true
			order = append(order, r)
		}
	}
	// Diagonals center-out.
	for d := 0; d < 4; d++ {
		for _, i := range []int{3 - d, 4 + d} {
			add(i, i)
			add(7-i, i)
		}
	}
	// Thicken: off-diagonal neighbors, center-out.
	for d := 0; d < 4; d++ {
		for _, i := range []int{3 - d, 4 + d} {
			add(i+1, i)
			add(i-1, i)
			add(7-i+1, i)
			add(7-i-1, i)
		}
	}
	if k > len(order) {
		k = len(order)
	}
	return order[:k]
}

// Patterns runs baseline vs Diagonal+BL across all five synthetic traffic
// patterns (the paper reports that transpose, bit-complement and
// self-similar "are very similar in trend" to UR without showing them).
func Patterns(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("patterns", "All synthetic traffic patterns (extension)")
	base := core.NewBaseline(8, 8)
	diag := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	type pat struct {
		name    string
		rate    float64
		selfSim bool
		make    func(l core.Layout) traffic.Pattern
	}
	pats := []pat{
		{"uniform-random", 0.048, false, func(l core.Layout) traffic.Pattern { return traffic.UniformRandom{N: 64} }},
		{"nearest-neighbor", 0.14, false, func(l core.Layout) traffic.Pattern { return traffic.NearestNeighbor{Grid: l.Mesh} }},
		{"transpose", 0.02, false, func(l core.Layout) traffic.Pattern { return traffic.Transpose{Grid: l.Mesh} }},
		{"bit-complement", 0.025, false, func(l core.Layout) traffic.Pattern { return traffic.BitComplement{N: 64} }},
		{"self-similar", 0.04, true, func(l core.Layout) traffic.Pattern { return traffic.UniformRandom{N: 64} }},
	}
	pm := power.NewModel()
	r.Printf("| pattern | base latency | diag latency | latency red %% | power red %% |\n|---|---|---|---|---|\n")
	for _, p := range pats {
		bres, err := runNet(ctx, base, p.make(base), p.rate, sc, p.selfSim)
		if err != nil {
			return nil, err
		}
		dres, err := runNet(ctx, diag, p.make(diag), p.rate, sc, p.selfSim)
		if err != nil {
			return nil, err
		}
		bPw := power.Network(pm, base, bres.Activity).Total()
		dPw := power.Network(pm, diag, dres.Activity).Total()
		latRed := stats.PctReduction(dres.AvgLatency/diag.FreqGHz(), bres.AvgLatency/base.FreqGHz())
		pwRed := stats.PctReduction(dPw, bPw)
		r.Printf("| %s | %.1f | %.1f | %+.1f | %+.1f |\n",
			p.name, bres.AvgLatency, dres.AvgLatency, latRed, pwRed)
		r.Metrics[keyName(p.name)+"_latency_reduction_pct"] = latRed
		r.Metrics[keyName(p.name)+"_power_reduction_pct"] = pwRed
	}
	return r, nil
}

// Generality evaluates the paper's closing claim — "HeteroNoC is a generic
// concept that can be exploited for improving performance and power
// savings in any non-edge symmetric NoC" — by applying the big/small
// router split to the concentrated mesh and the flattened butterfly of
// Figure 2 and measuring the uniform-random latency change.
func Generality(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("generality", "HeteroNoC on other non-edge-symmetric topologies (extension)")
	small := noc.RouterConfig{VCs: 2, BufDepth: 5, SplitDatapath: true, ImprovedSA: true}
	big := noc.RouterConfig{VCs: 6, BufDepth: 5, Wide: true, SplitDatapath: true, ImprovedSA: true}
	base := noc.RouterConfig{VCs: 3, BufDepth: 5}
	cm := topology.NewCMesh(4, 4, 4)
	fb := topology.NewFBfly(4, 4, 4)
	// 4 big routers keeps the Section 2 power inequality on a 16-router
	// network (at most 6 allowed). Center and main-diagonal placements.
	bigSets := map[string][]int{
		"center":   {5, 6, 9, 10},
		"diagonal": {0, 5, 10, 15},
	}
	cases := []struct {
		name string
		topo topology.Topology
		alg  routing.Algorithm
		rate float64
	}{
		{"cmesh4x4c4", cm, routing.NewXY(cm), 0.028},
		{"fbfly4x4c4", fb, routing.NewFBflyRC(fb), 0.05},
	}
	r.Printf("| topology | placement | baseline latency | hetero latency | reduction %% |\n|---|---|---|---|---|\n")
	for _, c := range cases {
		run := func(cfgs []noc.RouterConfig) (float64, error) {
			net, err := noc.New(noc.Config{
				Topo: c.topo, Routing: c.alg, Routers: cfgs,
				FlitWidthBits: 128, WatchdogCycles: 100000,
			})
			if err != nil {
				return 0, err
			}
			res, err := traffic.RunCtx(ctx, net, traffic.RunConfig{
				Pattern:        traffic.UniformRandom{N: c.topo.NumTerminals()},
				Process:        traffic.Bernoulli{P: c.rate},
				DataFlits:      6,
				WarmupPackets:  sc.WarmupPackets,
				MeasurePackets: sc.MeasurePackets,
				Seed:           42,
				MaxCycles:      int64(sc.MeasurePackets) * 40,
			})
			if err != nil {
				return 0, err
			}
			return res.AvgLatency, nil
		}
		baseCfg := make([]noc.RouterConfig, c.topo.NumRouters())
		for i := range baseCfg {
			baseCfg[i] = base
		}
		baseLat, err := run(baseCfg)
		if err != nil {
			return nil, err
		}
		for _, place := range []string{"center", "diagonal"} {
			set := bigSets[place]
			cfgs := make([]noc.RouterConfig, c.topo.NumRouters())
			for i := range cfgs {
				cfgs[i] = small
			}
			for _, b := range set {
				cfgs[b] = big
			}
			hetLat, err := run(cfgs)
			if err != nil {
				return nil, err
			}
			// The hetero network pays the 2.07 GHz clock; compare in ns.
			red := stats.PctReduction(hetLat/2.07, baseLat/2.20)
			r.Printf("| %s | %s | %.1f | %.1f | %+.1f |\n", c.name, place, baseLat, hetLat, red)
			r.Metrics[c.name+"_"+place+"_latency_reduction_pct"] = red
		}
	}
	r.Printf("\nThe big/small split transfers to both topologies, supporting the paper's generality claim for non-edge-symmetric networks.\n")
	return r, nil
}

// Adaptive re-runs the UR comparison under partially-adaptive west-first
// routing. The paper's claim is that HeteroNoC's benefit comes from
// resource placement "without changing the routing or the traffic flows";
// if that is right, the homo-vs-hetero gap must survive a smarter router.
func Adaptive(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("adaptive", "X-Y vs west-first adaptive routing (extension)")
	const rate = 0.048
	layouts := []core.Layout{
		core.NewBaseline(8, 8),
		core.NewLayout(core.PlacementDiagonal, 8, 8, true),
	}
	type row struct{ xy, wf float64 }
	rows := map[string]row{}
	for _, l := range layouts {
		for _, adaptive := range []bool{false, true} {
			var alg routing.Algorithm
			var wf *routing.WestFirst
			if adaptive {
				wf = routing.NewWestFirst(l.Mesh)
				alg = wf
			} else {
				alg = routing.NewXY(l.Mesh)
			}
			net, err := l.NetworkWith(alg)
			if err != nil {
				return nil, err
			}
			if wf != nil {
				wf.Congestion = net.PortCongestion
			}
			res, err := traffic.RunCtx(ctx, net, traffic.RunConfig{
				Pattern:        traffic.UniformRandom{N: 64},
				Process:        traffic.Bernoulli{P: rate},
				DataFlits:      l.DataPacketFlits(),
				WarmupPackets:  sc.WarmupPackets,
				MeasurePackets: sc.MeasurePackets,
				Seed:           42,
				MaxCycles:      int64(sc.MeasurePackets) * 40,
			})
			if err != nil {
				return nil, err
			}
			rw := rows[l.Name]
			if adaptive {
				rw.wf = res.AvgLatency
			} else {
				rw.xy = res.AvgLatency
			}
			rows[l.Name] = rw
		}
	}
	r.Printf("UR at %.3f packets/node/cycle, latency in cycles.\n\n", rate)
	r.Printf("| layout | X-Y | west-first |\n|---|---|---|\n")
	for _, l := range layouts {
		rw := rows[l.Name]
		r.Printf("| %s | %.1f | %.1f |\n", l.Name, rw.xy, rw.wf)
	}
	base, het := rows[layouts[0].Name], rows[layouts[1].Name]
	r.Metrics["xy_hetero_reduction_pct"] = stats.PctReduction(het.xy, base.xy)
	r.Metrics["wf_hetero_reduction_pct"] = stats.PctReduction(het.wf, base.wf)
	r.Printf("\nThe heterogeneous layout keeps its advantage under adaptive routing (%.1f%% vs %.1f%% with X-Y), supporting the placement-not-routing claim.\n",
		r.Metrics["wf_hetero_reduction_pct"], r.Metrics["xy_hetero_reduction_pct"])
	return r, nil
}

// Anneal8x8 attacks the placement problem the paper declares infeasible to
// sweep exhaustively (C(64,16) = 4.89e14): simulated annealing over 8x8
// placements of 16 big routers, compared against the paper's hand-designed
// diagonal layout.
func Anneal8x8(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("anneal", "Simulated annealing over 8x8 placements (extension)")
	eval := dse.EvalConfig{
		W: 8, H: 8, BigCount: 16, LinkRedist: true,
		InjectionRate: 0.05,
		Packets:       sc.DSEPackets,
		Seed:          5,
	}
	steps := sc.DSECandidates
	if steps < 8 {
		steps = 8
	}
	res, err := dse.AnnealCtx(ctx, dse.AnnealConfig{Eval: eval, Steps: steps, Seed: 11})
	if err != nil {
		return nil, err
	}
	diag, err := dse.EvaluateCtx(ctx, eval, core.BigRouters(core.PlacementDiagonal, 8, 8))
	if err != nil {
		return nil, err
	}
	r.Printf("| placement | avg latency (cycles) |\n|---|---|\n")
	r.Printf("| random start | %.1f |\n", res.Initial.AvgLatency)
	r.Printf("| annealed (%d steps, %d accepted) | %.1f |\n", res.Steps, res.Accepted, res.Best.AvgLatency)
	r.Printf("| paper diagonal | %.1f |\n\n", diag.AvgLatency)
	r.Printf("annealed big routers: %v\n", res.Best.Big)
	r.Metrics["random_latency"] = res.Initial.AvgLatency
	r.Metrics["annealed_latency"] = res.Best.AvgLatency
	r.Metrics["diagonal_latency"] = diag.AvgLatency
	r.Printf("\nThe search improves on random placements; the hand-designed diagonal stays competitive with (or ahead of) what a short automated search finds, supporting the paper's placement analysis.\n")
	return r, nil
}

// Prefetch adds an L1 next-line stream prefetcher to every core and checks
// two things: streaming workloads speed up, and the homo-vs-hetero network
// comparison is robust to the richer memory system (prefetch traffic loads
// the network more, which if anything favors the heterogeneous design).
func Prefetch(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("prefetch", "L1 next-line prefetcher (extension)")
	layouts := []core.Layout{
		core.NewBaseline(8, 8),
		core.NewLayout(core.PlacementDiagonal, 8, 8, true),
	}
	benches := []string{"libquantum", "streamcluster", "TPC-C"}
	type cell struct{ off, on float64 }
	rows := map[string]map[string]cell{}
	for _, b := range benches {
		rows[b] = map[string]cell{}
		for _, l := range layouts {
			for _, pf := range []bool{false, true} {
				res, err := runAppPrefetch(ctx, l, b, sc, pf)
				if err != nil {
					return nil, err
				}
				c := rows[b][l.Name]
				if pf {
					c.on = res.IPC
				} else {
					c.off = res.IPC
				}
				rows[b][l.Name] = c
			}
		}
	}
	r.Printf("| benchmark | layout | IPC off | IPC on | prefetch gain %% |\n|---|---|---|---|---|\n")
	for _, b := range benches {
		for _, l := range layouts {
			c := rows[b][l.Name]
			gain := stats.PctDelta(c.on, c.off)
			r.Printf("| %s | %s | %.3f | %.3f | %+.1f |\n", b, l.Name, c.off, c.on, gain)
			r.Metrics[keyName(b)+"_"+keyName(l.Name)+"_prefetch_gain_pct"] = gain
		}
	}
	// Hetero advantage with prefetching on.
	for _, b := range benches {
		base, het := rows[b][layouts[0].Name], rows[b][layouts[1].Name]
		r.Metrics[keyName(b)+"_hetero_ipc_gain_prefetch_pct"] = stats.PctDelta(het.on, base.on)
	}
	return r, nil
}

// runAppPrefetch is runApp with the prefetcher toggle.
func runAppPrefetch(ctx context.Context, l core.Layout, bench string, sc Scale, prefetch bool) (appResult, error) {
	trs, err := trace.WorkloadTraces(bench, l.Mesh.NumTerminals(), 128)
	if err != nil {
		return appResult{}, err
	}
	s, err := cmp.New(cmp.Config{Layout: l, Traces: trs, Prefetch: prefetch})
	if err != nil {
		return appResult{}, err
	}
	warmSystem(ctx, s, l, bench, sc)
	if err := s.RunCtx(ctx, sc.CMPCycles); err != nil {
		return appResult{}, err
	}
	return collect(s, l), nil
}

// Adversarial runs the trace-morphing stress workloads — a directory
// hotspot, memory-controller incast, a coherence storm and a capacity
// thrash (trace.AdversarialWorkloads) — on the baseline and Diagonal+BL.
// These are the traffic shapes a heterogeneous placement claims to
// absorb; if the big routers sit where the contention forms, the hetero
// advantage should be at least as large as on the well-behaved Table 2
// suite. The workloads resolve by name through the same path as the
// profiles, so nocserved requests and ad-hoc runs reach them too.
func Adversarial(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("adversarial", "Synthesized adversarial workloads (extension)")
	base := core.NewBaseline(8, 8)
	diag := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	r.Printf("| workload | base IPC | diag+BL IPC | IPC gain %% | net latency red %% |\n|---|---|---|---|---|\n")
	var jobs []func(ctx context.Context) (appResult, error)
	names := trace.AdversarialNames()
	for _, w := range names {
		for _, l := range []core.Layout{base, diag} {
			w, l := w, l
			jobs = append(jobs, func(ctx context.Context) (appResult, error) { return runApp(ctx, l, w, sc, nil, nil, nil) })
		}
	}
	flat, err := runAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	for i, w := range names {
		b, d := flat[i*2], flat[i*2+1]
		gain := stats.PctDelta(d.IPC, b.IPC)
		red := stats.PctReduction(d.NetLatNS, b.NetLatNS)
		r.Printf("| %s | %.3f | %.3f | %+.1f | %+.1f |\n", w, b.IPC, d.IPC, gain, red)
		r.Metrics[keyName(w)+"_ipc_gain_pct"] = gain
		r.Metrics[keyName(w)+"_latency_reduction_pct"] = red
	}
	for _, w := range trace.AdversarialWorkloads() {
		r.Printf("\n- **%s**: %s", w.Name, w.Desc)
	}
	r.Printf("\n\nAll four stream shapes are synthesized by trace.Morph from Table 2 profiles; `tracetool morph` emits the same streams as HNTR2 files for external tools.\n")
	return r, nil
}

// Tails compares latency percentiles: hotspot relief should compress the
// tail of the latency distribution even more than its mean, the same
// predictability story the paper tells for memory controllers in Figure
// 13(b), here for ordinary traffic.
func Tails(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("tails", "Latency tail behavior (extension)")
	const rate = 0.048
	base := core.NewBaseline(8, 8)
	diag := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	bres, err := runNet(ctx, base, traffic.UniformRandom{N: 64}, rate, sc, false)
	if err != nil {
		return nil, err
	}
	dres, err := runNet(ctx, diag, traffic.UniformRandom{N: 64}, rate, sc, false)
	if err != nil {
		return nil, err
	}
	r.Printf("UR at %.3f packets/node/cycle, latency in ns.\n\n", rate)
	r.Printf("| metric | Baseline | Diagonal+BL | reduction %% |\n|---|---|---|---|\n")
	rows := []struct {
		name   string
		b, d   float64
		metric string
	}{
		{"mean", bres.AvgLatency / base.FreqGHz(), dres.AvgLatency / diag.FreqGHz(), "mean"},
		{"p50", bres.P50 / base.FreqGHz(), dres.P50 / diag.FreqGHz(), "p50"},
		{"p95", bres.P95 / base.FreqGHz(), dres.P95 / diag.FreqGHz(), "p95"},
		{"p99", bres.P99 / base.FreqGHz(), dres.P99 / diag.FreqGHz(), "p99"},
	}
	for _, row := range rows {
		red := stats.PctReduction(row.d, row.b)
		r.Printf("| %s | %.1f | %.1f | %+.1f |\n", row.name, row.b, row.d, red)
		r.Metrics[row.metric+"_reduction_pct"] = red
	}
	r.Printf("\nThe tail compresses at least as much as the mean: big routers sit exactly where the worst-case contention forms.\n")
	return r, nil
}

// Model cross-validates the cycle-accurate simulator against the
// independent closed-form M/D/1 latency model in internal/analytic.
// Agreement at low/moderate load is evidence against systematic timing
// bugs in either implementation.
func Model(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("model", "Analytical cross-validation (extension)")
	layouts := []core.Layout{
		core.NewBaseline(8, 8),
		core.NewLayout(core.PlacementCenter, 8, 8, true),
	}
	rates := []float64{0.008, 0.02, 0.032, 0.044}
	r.Printf("| layout | rate | model (cycles) | simulator (cycles) | ratio |\n|---|---|---|---|---|\n")
	worst := 1.0
	for _, l := range layouts {
		am := analytic.NewMeshModel(l, l.DataPacketFlits())
		for _, rate := range rates {
			res, err := runNet(ctx, l, traffic.UniformRandom{N: 64}, rate, sc, false)
			if err != nil {
				return nil, err
			}
			pred := am.LatencyCycles(rate)
			ratio := pred / res.AvgLatency
			if ratio > worst {
				worst = ratio
			}
			if 1/ratio > worst {
				worst = 1 / ratio
			}
			r.Printf("| %s | %.3f | %.1f | %.1f | %.2f |\n", l.Name, rate, pred, res.AvgLatency, ratio)
		}
		r.Metrics[keyName(l.Name)+"_analytic_saturation"] = am.SaturationRate()
	}
	r.Metrics["worst_ratio"] = worst
	r.Printf("\nWorst-case disagreement %.0f%%. The analytic channel-load model also shows why hetero capacity stays par: the bottleneck moves to the narrow ring just outside the widened center.\n", 100*(worst-1))
	return r, nil
}
