package experiments

import (
	"context"
	"strings"
	"testing"
)

// cmpTiny is an even smaller scale for the CMP sweeps, which multiply
// benchmarks by layouts.
func cmpTiny() Scale {
	s := tiny()
	s.Name = "cmp-tiny"
	s.CMPWarmupEntries = 25000
	s.CMPCycles = 6000
	return s
}

func TestFig10TorusBenefitSmaller(t *testing.T) {
	if testing.Short() {
		t.Skip("CMP sweep")
	}
	r, err := Fig10(context.Background(), cmpTiny())
	if err != nil {
		t.Fatal(err)
	}
	mesh := r.Metrics["mesh_avg_reduction_pct"]
	torus := r.Metrics["torus_avg_reduction_pct"]
	if mesh <= 0 {
		t.Errorf("mesh latency reduction %.1f%%, want positive", mesh)
	}
	// Known deviation (see Fig10 report text and EXPERIMENTS.md): the
	// paper reports ~44% smaller torus benefit; our dateline-VC torus
	// benefits as much or more. Assert only that heterogeneity does not
	// hurt the torus and that the comparison ran on both topologies.
	if torus < -3 {
		t.Errorf("torus latency reduction %.1f%%, want not clearly negative", torus)
	}
	if _, ok := r.Metrics["torus_benefit_vs_mesh_pct"]; !ok {
		t.Error("missing torus-vs-mesh metric")
	}
}

func TestFig11And12(t *testing.T) {
	if testing.Short() {
		t.Skip("CMP sweep")
	}
	r11, err := Fig11(context.Background(), cmpTiny())
	if err != nil {
		t.Fatal(err)
	}
	r12, err := Fig12(context.Background(), cmpTiny())
	if err != nil {
		t.Fatal(err)
	}
	// Latency reduction for the best designs must be positive.
	if v := r11.Metrics["diagonal_bl_latency_reduction_pct"]; v <= 0 {
		t.Errorf("Diagonal+BL app latency reduction %.1f%%, want positive (paper 18.5%%)", v)
	}
	if v := r11.Metrics["diagonal_bl_power_reduction_pct"]; v <= 5 {
		t.Errorf("Diagonal+BL app power reduction %.1f%%, want > 5%% (paper ~22%%)", v)
	}
	// IPC: +BL designs should not lose IPC on either suite.
	for _, k := range []string{"commercial_diagonal_bl_ipc_pct", "parsec_diagonal_bl_ipc_pct"} {
		if v := r12.Metrics[k]; v < -1 {
			t.Errorf("%s = %.1f%%, want non-negative (paper +12%%/+10%%)", k, v)
		}
	}
	if !strings.Contains(r11.Markdown(), "Latency breakdown") {
		t.Error("fig11 missing breakdown section")
	}
	if !strings.Contains(r12.Markdown(), "PARSEC") {
		t.Error("fig12 missing PARSEC section")
	}
}

func TestFig13PlacementOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("CMP sweep")
	}
	r, err := Fig13(context.Background(), cmpTiny())
	if err != nil {
		t.Fatal(err)
	}
	dh := r.Metrics["diamond_homo_rtt_reduction_pct"]
	dhet := r.Metrics["diamond_hetero_rtt_reduction_pct"]
	diag := r.Metrics["diagonal_hetero_rtt_reduction_pct"]
	// Paper ordering: Diagonal_heteroNoC (28%) > Diamond_heteroNoC (22%) >
	// Diamond_homoNoC (8%). Require the qualitative ordering with slack.
	if dhet <= dh-2 {
		t.Errorf("Diamond_heteroNoC (%.1f%%) should beat Diamond_homoNoC (%.1f%%)", dhet, dh)
	}
	if diag <= dh-2 {
		t.Errorf("Diagonal_heteroNoC (%.1f%%) should beat Diamond_homoNoC (%.1f%%)", diag, dh)
	}
	// Jitter: every distributed placement must cut the CoV well below the
	// corner baseline. (The diamond-vs-diagonal ordering is within noise
	// in our runs — see EXPERIMENTS.md E10.)
	if r.Metrics["diagonal_heteronoc_mc_cov"] > r.Metrics["corners_homonoc_reference_mc_cov"] {
		t.Errorf("diagonal CoV %.3f not below the corner baseline %.3f",
			r.Metrics["diagonal_heteronoc_mc_cov"], r.Metrics["corners_homonoc_reference_mc_cov"])
	}
}

func TestFig14TableRoutingHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("CMP sweep")
	}
	r, err := Fig14(context.Background(), cmpTiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"homonoc_xy_weighted", "heteronoc_xy_weighted", "heteronoc_table_xy_weighted"} {
		v, ok := r.Metrics[k]
		if !ok || v <= 0 || v > 2.5 {
			t.Errorf("%s = %v, want in (0, 2.5]", k, v)
		}
	}
	// Table routing should not lose weighted speedup vs HomoNoC (the
	// plain HeteroNoC-XY delta is within noise; see EXPERIMENTS.md E11).
	if r.Metrics["heteronoc_table_xy_weighted"] < r.Metrics["homonoc_xy_weighted"]-0.05 {
		t.Errorf("table routing weighted speedup %.3f below homo %.3f",
			r.Metrics["heteronoc_table_xy_weighted"], r.Metrics["homonoc_xy_weighted"])
	}
}
