package experiments

import (
	"context"

	"heteronoc/internal/cmp"
	"heteronoc/internal/cmp/mem"
	"heteronoc/internal/core"
	"heteronoc/internal/dse"
	"heteronoc/internal/par"
	"heteronoc/internal/plot"
	"heteronoc/internal/routing"
	"heteronoc/internal/runcache"
	"heteronoc/internal/stats"
	"heteronoc/internal/trace"
)

// mcConfig is one scenario of the Section 6 co-evaluation.
type mcConfig struct {
	name      string
	layout    core.Layout
	placement mem.Placement
}

// fig13Configs returns the evaluated scenarios: the corner-placement
// homogeneous reference plus the three studied combinations.
func fig13Configs() []mcConfig {
	base := core.NewBaseline(8, 8)
	het := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	return []mcConfig{
		{"Corners_homoNoC (reference)", base, mem.PlacementCorners},
		{"Diamond_homoNoC", base, mem.PlacementDiamond},
		{"Diamond_heteroNoC", het, mem.PlacementDiamond},
		{"Diagonal_heteroNoC", het, mem.PlacementDiagonal},
	}
}

// urTraces builds the closed-loop uniform-random workload (every access a
// memory request, MSHR-limited).
func urTraces(n int) []trace.Reader {
	out := make([]trace.Reader, n)
	for i := range out {
		out[i] = trace.NewURGenerator(i, 128)
	}
	return out
}

// Fig13 co-evaluates memory-controller placement with HeteroNoC: round-trip
// request-response latency reductions and the latency/jitter scatter of
// requests to the controllers.
func Fig13(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("fig13", "Memory-controller placement co-evaluation")
	configs := fig13Configs()
	benches := append([]string{"UR"}, append(append([]string{},
		trace.CommercialNames()...), trace.PARSECNames()...)...)

	type cell struct {
		rtt   float64
		mcLat stats.Summary
	}
	var jobs []func(ctx context.Context) (appResult, error)
	for _, b := range benches {
		for _, cfgc := range configs {
			b, cfgc := b, cfgc
			jobs = append(jobs, func(ctx context.Context) (appResult, error) {
				w, h := cfgc.layout.Mesh.Dims()
				mcTiles := mem.Tiles(cfgc.placement, w, h)
				if b == "UR" {
					return runURApp(ctx, cfgc.layout, sc, mcTiles)
				}
				return runApp(ctx, cfgc.layout, b, sc, mcTiles, nil, nil)
			})
		}
	}
	flat, err := runAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	results := make(map[string][]cell)
	for bi, b := range benches {
		for ci := range configs {
			res := flat[bi*len(configs)+ci]
			results[b] = append(results[b], cell{rtt: res.MissRTT.Mean(), mcLat: res.MCLatency})
		}
	}
	r.Printf("### (a) Round-trip request-response latency reduction over Corners_homoNoC (%%)\n\n")
	r.Printf("| workload | Diamond_homoNoC | Diamond_heteroNoC | Diagonal_heteroNoC |\n|---|---|---|---|\n")
	var sums [3]float64
	for _, b := range benches {
		cells := results[b]
		r.Printf("| %s |", b)
		for i := 1; i < 4; i++ {
			red := stats.PctReduction(cells[i].rtt, cells[0].rtt)
			sums[i-1] += red
			r.Printf(" %.1f |", red)
		}
		r.Printf("\n")
	}
	n := float64(len(benches))
	r.Metrics["diamond_homo_rtt_reduction_pct"] = sums[0] / n
	r.Metrics["diamond_hetero_rtt_reduction_pct"] = sums[1] / n
	r.Metrics["diagonal_hetero_rtt_reduction_pct"] = sums[2] / n

	r.Printf("\n### (b) Request-to-controller latency vs jitter\n\n")
	r.Printf("| config | mean latency (cycles) | std dev | CoV |\n|---|---|---|---|\n")
	for i, cfgc := range configs {
		var agg stats.Summary
		for _, b := range benches {
			agg.Merge(results[b][i].mcLat)
		}
		r.Printf("| %s | %.1f | %.2f | %.3f |\n", cfgc.name, agg.Mean(), agg.StdDev(), agg.CoV())
		r.Metrics[keyName(cfgc.name)+"_mc_cov"] = agg.CoV()
	}
	r.Printf("\nDiagonal placement on the HeteroNoC attaches every controller to a big router: both the mean latency and its variance drop (paper: CoV 0.66 -> 0.46).\n")
	sc13 := &plot.Scatter{
		Title:  "Fig 13(b): request latency vs jitter",
		XLabel: "std dev of request-to-MC latency (cycles)",
		YLabel: "mean request-to-MC latency (cycles)",
	}
	for i, cfgc := range configs {
		sc13.Names = append(sc13.Names, cfgc.name)
		for _, b := range benches {
			mc := results[b][i].mcLat
			sc13.Points = append(sc13.Points, plot.ScatterPoint{Label: b, X: mc.StdDev(), Y: mc.Mean(), Series: i})
		}
	}
	r.AddFigure("fig13b_jitter", sc13.SVG())
	return r, nil
}

// runURApp runs the closed-loop UR workload on a layout. Deterministic,
// so memoized in runcache like runApp.
func runURApp(ctx context.Context, l core.Layout, sc Scale, mcTiles []int) (appResult, error) {
	return runcache.ForCtx(ctx, urAppKey(l, sc, mcTiles), func(ctx context.Context) (appResult, error) {
		return runURAppUncached(ctx, l, sc, mcTiles)
	})
}

func runURAppUncached(ctx context.Context, l core.Layout, sc Scale, mcTiles []int) (appResult, error) {
	n := l.Mesh.NumTerminals()
	s, err := cmp.New(cmp.Config{Layout: l, Traces: urTraces(n), MCTiles: mcTiles})
	if err != nil {
		return appResult{}, err
	}
	// No warmup: UR is all cold misses by construction (the paper's
	// closed-loop evaluation with 16 outstanding requests per node).
	if err := s.RunCtx(ctx, sc.CMPCycles); err != nil {
		return appResult{}, err
	}
	return collect(s, l), nil
}

// idleTrace effectively never issues memory operations (for alone-run
// baselines): enormous gaps, and the rare access goes to a remote unused
// region so warmup cannot alias an active core's working set.
type idleTrace struct{}

func (idleTrace) Next() trace.Entry {
	return trace.Entry{Gap: 1 << 20, Addr: 1 << 44}
}

// asymTraces builds the Section 7 workload: libquantum on the four large
// corner cores, SPECjbb threads on the 60 small cores. active selects
// which cores actually run (for alone baselines).
func asymTraces(largeTiles []int, active func(tile int) bool) ([]trace.Reader, []cmp.CoreConfig, error) {
	libq, err := trace.ProfileByName("libquantum")
	if err != nil {
		return nil, nil, err
	}
	jbb, err := trace.ProfileByName("SPECjbb")
	if err != nil {
		return nil, nil, err
	}
	isLarge := map[int]bool{}
	for _, t := range largeTiles {
		isLarge[t] = true
	}
	trs := make([]trace.Reader, 64)
	cores := make([]cmp.CoreConfig, 64)
	for i := 0; i < 64; i++ {
		switch {
		case !active(i):
			trs[i] = idleTrace{}
			cores[i] = cmp.SmallCore()
		case isLarge[i]:
			// libquantum lives in its own address-space region so its
			// private footprint cannot alias the SPECjbb regions.
			trs[i] = trace.NewGeneratorAt(libq, i, 128, 1<<26)
			cores[i] = cmp.LargeCore()
		default:
			trs[i] = trace.NewGenerator(jbb, i, 128)
			cores[i] = cmp.SmallCore()
		}
	}
	return trs, cores, nil
}

// asymConfig is one scenario of Figure 14.
type asymConfig struct {
	name   string
	layout core.Layout
	table  bool
}

// Fig14 evaluates the asymmetric CMP: 4 large cores at the corners, 60
// small cores, on the homogeneous network, the Diagonal+BL HeteroNoC with
// X-Y routing, and the HeteroNoC with table-based routing (plus escape
// VCs) for large-core flows.
func Fig14(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("fig14", "Asymmetric CMP: weighted and harmonic speedup")
	largeTiles := []int{0, 7, 56, 63}
	configs := []asymConfig{
		{"HomoNoC-XY", core.NewBaseline(8, 8), false},
		{"HeteroNoC-XY", core.NewLayout(core.PlacementDiagonal, 8, 8, true), false},
		{"HeteroNoC-Table+XY", core.NewLayout(core.PlacementDiagonal, 8, 8, true), true},
	}
	type speedups struct{ weighted, harmonic float64 }
	isLarge := func(t int) bool { return t == 0 || t == 7 || t == 56 || t == 63 }
	small := func(t int) bool { return !isLarge(t) }
	// Each config needs three independent runs (libquantum alone, SPECjbb
	// alone, together); the 3x3 grid is one flat batch on the worker pool.
	// Each job builds its own System — and its own routing table, since an
	// Algorithm must not be shared across concurrently stepping networks.
	actives := []func(int) bool{isLarge, small, func(int) bool { return true }}
	systems, err := par.MapCtx(ctx, len(configs)*len(actives), func(ctx context.Context, k int) (*cmp.System, error) {
		c := configs[k/len(actives)]
		var alg routing.Algorithm
		if c.table {
			alg = routing.NewTableXY(c.layout.Mesh, routing.TableXYConfig{
				Flagged: largeTiles,
				Big:     c.layout.BigSet(),
			})
		}
		trs, cores, err := asymTraces(largeTiles, actives[k%len(actives)])
		if err != nil {
			return nil, err
		}
		s, err := cmp.New(cmp.Config{Layout: c.layout, Traces: trs, Cores: cores, Routing: alg})
		if err != nil {
			return nil, err
		}
		s.Warmup(sc.CMPWarmupEntries)
		if err := s.RunCtx(ctx, sc.CMPCycles); err != nil {
			return nil, err
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	var outs []speedups
	r.Printf("| config | weighted speedup | harmonic speedup |\n|---|---|---|\n")
	for ci, c := range configs {
		aloneLibq, aloneJbb, together := systems[ci*3], systems[ci*3+1], systems[ci*3+2]
		libqRatio := avgIPCOf(together, isLarge) / avgIPCOf(aloneLibq, isLarge)
		jbbRatio := avgIPCOf(together, small) / avgIPCOf(aloneJbb, small)
		// Harmonic speedup uses the slowest SPECjbb thread (Section 7).
		jbbSlowest := minIPCOf(together, small) / minIPCOf(aloneJbb, small)
		ws := libqRatio + jbbRatio
		hs := 2 / (1/libqRatio + 1/jbbSlowest)
		outs = append(outs, speedups{ws, hs})
		r.Printf("| %s | %.3f | %.3f |\n", c.name, ws, hs)
		r.Metrics[keyName(c.name)+"_weighted"] = ws
		r.Metrics[keyName(c.name)+"_harmonic"] = hs
	}
	r.Metrics["table_ws_gain_pct"] = stats.PctDelta(outs[2].weighted, outs[0].weighted)
	r.Metrics["hetero_ws_gain_pct"] = stats.PctDelta(outs[1].weighted, outs[0].weighted)
	wsBars := &plot.BarChart{Title: "Fig 14(b): asymmetric-CMP speedups", YLabel: "speedup", Series: []string{"weighted", "harmonic"}}
	for i, c := range configs {
		wsBars.Groups = append(wsBars.Groups, plot.BarGroup{Label: c.name, Values: []float64{outs[i].weighted, outs[i].harmonic}})
	}
	r.AddFigure("fig14b_speedup", wsBars.SVG())
	r.Printf("\nTable-based routing expedites libquantum packets through the big routers while decongesting the small routers for SPECjbb (paper: +6%% and +11%% weighted speedup).\n")
	return r, nil
}

func avgIPCOf(s *cmp.System, sel func(int) bool) float64 {
	var sum float64
	var n int
	for _, t := range s.Tiles {
		if sel(t.ID) {
			sum += t.Core.IPC()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func minIPCOf(s *cmp.System, sel func(int) bool) float64 {
	min := -1.0
	for _, t := range s.Tiles {
		if sel(t.ID) {
			if ipc := t.Core.IPC(); min < 0 || ipc < min {
				min = ipc
			}
		}
	}
	return min
}

// DSE reproduces the footnote-4 exploration: candidate counts, a symmetry-
// reduced scored sweep on the 4x4 mesh, and the diagonal placement's rank.
func DSE(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("dse", "4x4 design-space exploration")
	r.Printf("Candidate placements on a 4x4 mesh (paper footnote 4):\n\n")
	r.Printf("| split (small, big) | candidates |\n|---|---|\n")
	for _, k := range []int{4, 6, 8} {
		c := dse.Combinations(16, k)
		r.Printf("| (%d, %d) | %s |\n", 16-k, k, c.String())
		r.Metrics[keyNameInt("candidates", k)] = float64(c.Int64())
	}
	r.Printf("| 8x8: (48, 16) | %s (infeasible to sweep) |\n\n", dse.Combinations(64, 16).String())
	res, err := dse.ExploreCtx(ctx, dse.EvalConfig{
		W: 4, H: 4, BigCount: 4, LinkRedist: true,
		InjectionRate:  0.06,
		Packets:        sc.DSEPackets,
		ReduceSymmetry: true,
		MaxCandidates:  sc.DSECandidates,
		Seed:           7,
	})
	if err != nil {
		return nil, err
	}
	r.Printf("Scored %d symmetry-reduced placements of 4 big routers (+BL, UR probe at 0.06):\n\n", len(res))
	top := 5
	if len(res) < top {
		top = len(res)
	}
	r.Printf("| rank | big routers | avg latency (cycles) |\n|---|---|---|\n")
	for i := 0; i < top; i++ {
		r.Printf("| %d | %v | %.1f |\n", i+1, res[i].Big, res[i].AvgLatency)
	}
	r.Metrics["explored"] = float64(len(res))
	r.Metrics["best_latency"] = res[0].AvgLatency
	r.Metrics["worst_latency"] = res[len(res)-1].AvgLatency
	return r, nil
}

func keyNameInt(prefix string, k int) string {
	return prefix + "_" + string(rune('0'+k/10)) + string(rune('0'+k%10))
}
