package experiments

import (
	"context"

	"heteronoc/internal/core"
	"heteronoc/internal/noc"
	"heteronoc/internal/par"
	"heteronoc/internal/plot"
	"heteronoc/internal/power"
	"heteronoc/internal/routing"
	"heteronoc/internal/runcache"
	"heteronoc/internal/stats"
	"heteronoc/internal/topology"
	"heteronoc/internal/traffic"
)

// runNet drives one network-only measurement. Runs are deterministic
// (fixed seed, fixed configuration), so completed results are memoized in
// runcache under a key covering every input; repeated probes — across
// figures or across re-invocations in one process — reuse the first run.
// The same key names the probe for checkpoint-suspend: a probe suspended
// by a server shutdown resumes under the identical key, and probes that
// completed before the shutdown are amortized by the disk cache.
func runNet(ctx context.Context, l core.Layout, pattern traffic.Pattern, rate float64, sc Scale, selfSimilar bool) (traffic.RunResult, error) {
	key := netKey(l, pattern, rate, sc, selfSimilar)
	return runcache.ForCtx(ctx, key, func(ctx context.Context) (traffic.RunResult, error) {
		return runNetUncached(ctx, key, l, pattern, rate, sc, selfSimilar)
	})
}

func runNetUncached(ctx context.Context, key string, l core.Layout, pattern traffic.Pattern, rate float64, sc Scale, selfSimilar bool) (traffic.RunResult, error) {
	net, err := l.Network()
	if err != nil {
		return traffic.RunResult{}, err
	}
	var proc traffic.Process
	if selfSimilar {
		proc = traffic.NewSelfSimilar(l.Mesh.NumTerminals(), rate)
	} else {
		proc = traffic.Bernoulli{P: rate}
	}
	return traffic.RunCtx(ctx, net, traffic.RunConfig{
		Pattern:        pattern,
		Process:        proc,
		DataFlits:      l.DataPacketFlits(),
		WarmupPackets:  sc.WarmupPackets,
		MeasurePackets: sc.MeasurePackets,
		Seed:           42,
		MaxCycles:      int64(sc.MeasurePackets) * 40,
		SuspendKey:     key,
	})
}

// Fig1 reproduces the motivating heat maps: buffer and link utilization of
// the homogeneous 8x8 mesh under uniform random traffic near saturation
// (0.06 packets/node/cycle, footnote 1).
func Fig1(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("fig1", "Buffer and link utilization heat maps")
	l := core.NewBaseline(8, 8)
	res, err := runNet(ctx, l, traffic.UniformRandom{N: 64}, 0.06, sc, false)
	if err != nil {
		return nil, err
	}
	buf := make([]float64, 64)
	link := make([]float64, 64)
	for i, a := range res.Activity {
		buf[i] = a.BufOccupancy
		link[i] = a.LinkUtil
	}
	hb := stats.NewHeatmap("(a) Buffer utilization", 8, 8, buf)
	hl := stats.NewHeatmap("(b) Link utilization", 8, 8, link)
	r.Printf("```\n%s\n%s```\n", hb.Render(), hl.Render())
	r.Metrics["buffer_center_periphery_ratio"] = hb.CenterPeripheryRatio()
	r.Metrics["link_center_periphery_ratio"] = hl.CenterPeripheryRatio()
	lo, hi := hb.Range()
	r.Metrics["buffer_util_min"] = lo
	r.Metrics["buffer_util_max"] = hi
	r.Printf("\nThe center of the mesh is far more utilized than the periphery (paper: ~75%% vs ~35%% relative occupancy), the non-uniformity HeteroNoC exploits.\n")
	r.AddFigure("fig1a_buffer_util", (&plot.HeatChart{Title: "Fig 1(a): buffer utilization", W: 8, H: 8, Values: buf}).SVG())
	r.AddFigure("fig1b_link_util", (&plot.HeatChart{Title: "Fig 1(b): link utilization", W: 8, H: 8, Values: link}).SVG())
	return r, nil
}

// Fig2 shows the same non-uniformity on two other non-edge-symmetric
// topologies: a 4x4 concentrated mesh (C=4) and a 64-node flattened
// butterfly.
func Fig2(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("fig2", "Buffer utilization in other topologies")
	type tcase struct {
		name string
		topo topology.Topology
		alg  routing.Algorithm
		w, h int
		rate float64
	}
	cm := topology.NewCMesh(4, 4, 4)
	fb := topology.NewFBfly(4, 4, 4)
	cases := []tcase{
		{"(a) Concentrated mesh", cm, routing.NewXY(cm), 4, 4, 0.04},
		{"(b) Flattened butterfly", fb, routing.NewFBflyRC(fb), 4, 4, 0.06},
	}
	for _, c := range cases {
		net, err := noc.New(noc.Config{
			Topo:           c.topo,
			Routing:        c.alg,
			Routers:        []noc.RouterConfig{{VCs: 3, BufDepth: 5}},
			FlitWidthBits:  192,
			WatchdogCycles: 100000,
		})
		if err != nil {
			return nil, err
		}
		res, err := traffic.RunCtx(ctx, net, traffic.RunConfig{
			Pattern:        traffic.UniformRandom{N: 64},
			Process:        traffic.Bernoulli{P: c.rate},
			DataFlits:      6,
			WarmupPackets:  sc.WarmupPackets,
			MeasurePackets: sc.MeasurePackets,
			Seed:           42,
			MaxCycles:      int64(sc.MeasurePackets) * 40,
		})
		if err != nil {
			return nil, err
		}
		buf := make([]float64, len(res.Activity))
		for i, a := range res.Activity {
			buf[i] = a.BufOccupancy
		}
		h := stats.NewHeatmap(c.name, c.w, c.h, buf)
		r.Printf("```\n%s```\n\n", h.Render())
		key := "cmesh"
		if c.topo == topology.Topology(fb) {
			key = "fbfly"
		}
		r.Metrics[key+"_center_periphery_ratio"] = h.CenterPeripheryRatio()
		r.AddFigure("fig2_"+key+"_buffer_util", (&plot.HeatChart{Title: "Fig 2: " + key + " buffer utilization", W: c.w, H: c.h, Values: buf}).SVG())
	}
	r.Printf("Both non-edge-symmetric topologies show the hot-center pattern under deterministic routing.\n")
	return r, nil
}

// Table1 renders the router design-point table and checks the conservation
// accounting and power-model calibration against the published numbers.
func Table1() (*Report, error) {
	r := newReport("table1", "Router design points and resource accounting")
	hetero := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	r.Printf("%s\n", core.Table1(hetero))
	base := core.NewBaseline(8, 8).Accounting()
	het := hetero.Accounting()
	r.Metrics["buffer_bits_homo"] = float64(base.BufferBits)
	r.Metrics["buffer_bits_hetero"] = float64(het.BufferBits)
	r.Metrics["buffer_bit_reduction_pct"] = stats.PctReduction(float64(het.BufferBits), float64(base.BufferBits))
	r.Metrics["total_vcs"] = float64(het.TotalVCs)
	r.Metrics["min_small_routers"] = float64(core.MinSmallRouters(8))
	m := power.NewModel()
	for cls, spec := range core.Specs() {
		var router int
		switch cls {
		case core.ClassBaseline:
			r.Metrics["cal_power_baseline"] = m.CalibrationPower(power.ParamsFor(core.NewBaseline(8, 8), 0))
			continue
		case core.ClassSmall:
			router = 1 // (1,0) is small under the diagonal layout
		case core.ClassBig:
			router = 0 // (0,0) is big
		}
		r.Metrics["cal_power_"+cls.String()] = m.CalibrationPower(power.ParamsFor(hetero, router))
		_ = spec
	}
	return r, nil
}

// sweepRates returns the injection-rate grid for a sweep up to max.
func sweepRates(sc Scale, max float64) []float64 {
	n := sc.SweepPoints
	if n < 2 {
		n = 2
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = max * float64(i+1) / float64(n)
	}
	return out
}

// netSummary holds one layout's sweep outcome.
type netSummary struct {
	layout    core.Layout
	points    []traffic.SweepPoint
	powers    []float64 // Watts per point
	zeroLoad  float64   // ns at the lightest load
	satRate   float64   // accepted packets/node/cycle at the latency knee
	avgLatNS  float64   // mean pre-knee latency in ns
	breakdown traffic.RunResult
}

// ratePoint is one measured operating point of a sweep: the run result and
// its power-model price.
type ratePoint struct {
	res traffic.RunResult
	pow float64
}

// measurePoint runs one (layout, rate) probe. Probes are independent (each
// builds its own network and a fixed-seed traffic source), so the sweeps
// fan them out on the par worker pool without changing any result.
func measurePoint(ctx context.Context, l core.Layout, pattern traffic.Pattern, rate float64, sc Scale, selfSimilar bool) (ratePoint, error) {
	res, err := runNet(ctx, l, pattern, rate, sc, selfSimilar)
	if err != nil {
		return ratePoint{}, err
	}
	return ratePoint{res: res, pow: power.Network(power.NewModel(), l, res.Activity).Total()}, nil
}

// summarizeSweep folds one layout's measured points (in rate order) into a
// netSummary.
func summarizeSweep(l core.Layout, rates []float64, pts []ratePoint) netSummary {
	s := netSummary{layout: l}
	for i, rate := range rates {
		s.points = append(s.points, traffic.SweepPoint{Rate: rate, Result: pts[i].res})
		s.powers = append(s.powers, pts[i].pow)
	}
	f := l.FreqGHz()
	s.zeroLoad = s.points[0].Result.AvgLatency / f
	knee := 3 * s.points[0].Result.AvgLatency
	var latSum float64
	var latN int
	s.satRate = s.points[0].Result.AcceptedRate
	for _, p := range s.points {
		if p.Result.AvgLatency <= knee && !p.Result.Saturated {
			if p.Result.AcceptedRate > s.satRate {
				s.satRate = p.Result.AcceptedRate
			}
			latSum += p.Result.AvgLatency / f
			latN++
		}
	}
	if latN > 0 {
		s.avgLatNS = latSum / float64(latN)
	}
	return s
}

// Fig7 sweeps uniform random traffic across the seven configurations.
func Fig7(ctx context.Context, sc Scale) (*Report, error) {
	return loadSweepReport(ctx, sc, "fig7", "UR load sweep", false)
}

// Fig9 repeats the sweep with nearest-neighbor traffic, where the paper
// reports the one anomaly (hetero saturates earlier; Center beats Diagonal).
func Fig9(ctx context.Context, sc Scale) (*Report, error) {
	return loadSweepReport(ctx, sc, "fig9", "Nearest-neighbor sweep", true)
}

func loadSweepReport(ctx context.Context, sc Scale, id, title string, nn bool) (*Report, error) {
	r := newReport(id, title)
	maxRate := 0.072
	if nn {
		maxRate = 0.24
	}
	rates := sweepRates(sc, maxRate)
	layouts := core.AllLayouts(8, 8)
	// The full layouts x rates grid is one flat batch of independent probes;
	// fanning the whole grid out (rather than layout by layout) keeps every
	// worker busy even when one layout saturates and runs long.
	nr := len(rates)
	pts, err := par.MapCtx(ctx, len(layouts)*nr, func(ctx context.Context, k int) (ratePoint, error) {
		l := layouts[k/nr]
		var pattern traffic.Pattern = traffic.UniformRandom{N: 64}
		if nn {
			pattern = traffic.NearestNeighbor{Grid: l.Mesh}
		}
		return measurePoint(ctx, l, pattern, rates[k%nr], sc, false)
	})
	if err != nil {
		return nil, err
	}
	sums := make([]netSummary, len(layouts))
	for li, l := range layouts {
		sums[li] = summarizeSweep(l, rates, pts[li*nr:(li+1)*nr])
	}
	base := sums[0]
	// Average latency is compared over a common set of rates: the points
	// where the baseline is still below its latency knee. Without a shared
	// rate set, a design that survives to higher loads would be judged on
	// harder operating points than the baseline.
	baseKnee := 3 * base.points[0].Result.AvgLatency
	var common []int
	for i, p := range base.points {
		if p.Result.AvgLatency <= baseKnee && !p.Result.Saturated {
			common = append(common, i)
		}
	}
	if len(common) == 0 {
		common = []int{0}
	}
	for si := range sums {
		var sum float64
		for _, i := range common {
			sum += sums[si].points[i].Result.AvgLatency / sums[si].layout.FreqGHz()
		}
		sums[si].avgLatNS = sum / float64(len(common))
	}
	// (a) latency curves.
	r.Printf("### (a) Load-latency (ns)\n\n| inj rate |")
	for _, s := range sums {
		r.Printf(" %s |", s.layout.Name)
	}
	r.Printf("\n|---|%s\n", strings1(len(sums)))
	for i, rate := range rates {
		r.Printf("| %.4f |", rate)
		for _, s := range sums {
			res := s.points[i].Result
			mark := ""
			if res.Saturated {
				mark = "*"
			}
			r.Printf(" %.1f%s |", res.AvgLatency/s.layout.FreqGHz(), mark)
		}
		r.Printf("\n")
	}
	r.Printf("(* = saturated)\n\n")
	// (b) summary bars.
	r.Printf("### (b) Improvement over baseline (%%)\n\n| config | throughput | avg latency | zero load |\n|---|---|---|---|\n")
	for _, s := range sums[1:] {
		tp := stats.PctDelta(s.satRate, base.satRate)
		lat := stats.PctReduction(s.avgLatNS, base.avgLatNS)
		zl := stats.PctReduction(s.zeroLoad, base.zeroLoad)
		r.Printf("| %s | %+.1f | %+.1f | %+.1f |\n", s.layout.Name, tp, lat, zl)
		key := keyName(s.layout.Name)
		r.Metrics[key+"_throughput_pct"] = tp
		r.Metrics[key+"_latency_reduction_pct"] = lat
		r.Metrics[key+"_zeroload_reduction_pct"] = zl
	}
	// (c) power at the highest common load.
	r.Printf("\n### (c) Network power (W) across load\n\n| inj rate | Baseline |")
	powerSums := []netSummary{sums[4], sums[5], sums[6]} // the +BL designs
	for _, s := range powerSums {
		r.Printf(" %s |", s.layout.Name)
	}
	r.Printf("\n|---|---|%s\n", strings1(len(powerSums)))
	for i, rate := range rates {
		r.Printf("| %.4f | %.1f |", rate, base.powers[i])
		for _, s := range powerSums {
			r.Printf(" %.1f |", s.powers[i])
		}
		r.Printf("\n")
	}
	for _, s := range powerSums {
		var redSum float64
		for i := range rates {
			redSum += stats.PctReduction(s.powers[i], base.powers[i])
		}
		r.Metrics[keyName(s.layout.Name)+"_power_reduction_pct"] = redSum / float64(len(rates))
	}
	// Energy-delay product at the highest common pre-knee load: the
	// combined power-performance figure of merit behind the paper's "best
	// configuration" claim for the diagonal placement.
	mid := common[len(common)-1]
	baseEDP := base.powers[mid] * base.points[mid].Result.AvgLatency / base.layout.FreqGHz()
	for _, s := range powerSums {
		edp := s.powers[mid] * s.points[mid].Result.AvgLatency / s.layout.FreqGHz()
		r.Metrics[keyName(s.layout.Name)+"_edp_reduction_pct"] = stats.PctReduction(edp, baseEDP)
	}
	// Figures: (a) latency curves (clipped above the knee region), (c)
	// power curves.
	lat := &plot.LineChart{Title: title + ": load-latency", XLabel: "injection rate (packets/node/cycle)", YLabel: "latency (ns)", YMax: 6 * base.zeroLoad}
	pow := &plot.LineChart{Title: title + ": network power", XLabel: "injection rate (packets/node/cycle)", YLabel: "power (W)"}
	for _, s := range sums {
		ls := plot.Series{Name: s.layout.Name}
		ps := plot.Series{Name: s.layout.Name}
		for i, rate := range rates {
			ls.X = append(ls.X, rate)
			ls.Y = append(ls.Y, s.points[i].Result.AvgLatency/s.layout.FreqGHz())
			ps.X = append(ps.X, rate)
			ps.Y = append(ps.Y, s.powers[i])
		}
		lat.Series = append(lat.Series, ls)
		pow.Series = append(pow.Series, ps)
	}
	r.AddFigure(id+"a_latency", lat.SVG())
	r.AddFigure(id+"c_power", pow.SVG())
	bars := &plot.BarChart{Title: title + ": improvement over baseline", YLabel: "%", Series: []string{"throughput", "avg latency", "zero load"}}
	for _, s := range sums[1:] {
		bars.Groups = append(bars.Groups, plot.BarGroup{Label: s.layout.Name, Values: []float64{
			stats.PctDelta(s.satRate, base.satRate),
			stats.PctReduction(s.avgLatNS, base.avgLatNS),
			stats.PctReduction(s.zeroLoad, base.zeroLoad),
		}})
	}
	r.AddFigure(id+"b_summary", bars.SVG())
	return r, nil
}

func strings1(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += "---|"
	}
	return out
}

func keyName(name string) string {
	k := []rune{}
	for _, c := range name {
		switch {
		case c >= 'A' && c <= 'Z':
			k = append(k, c+32)
		case (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'):
			k = append(k, c)
		default:
			if len(k) == 0 || k[len(k)-1] != '_' {
				k = append(k, '_')
			}
		}
	}
	for len(k) > 0 && k[len(k)-1] == '_' {
		k = k[:len(k)-1]
	}
	return string(k)
}

// Fig8 reports the latency and power breakdowns at a moderately high UR
// load (Figure 8).
func Fig8(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("fig8", "Latency and power breakdowns (UR)")
	const rate = 0.048
	layouts := []core.Layout{
		core.NewBaseline(8, 8),
		core.NewLayout(core.PlacementCenter, 8, 8, true),
		core.NewLayout(core.PlacementDiagonal, 8, 8, true),
		core.NewLayout(core.PlacementRow25, 8, 8, true),
	}
	pm := power.NewModel()
	// The four layout probes are independent; fan them out.
	ress, err := par.MapCtx(ctx, len(layouts), func(ctx context.Context, i int) (traffic.RunResult, error) {
		return runNet(ctx, layouts[i], traffic.UniformRandom{N: 64}, rate, sc, false)
	})
	if err != nil {
		return nil, err
	}
	r.Printf("### (a) Latency breakdown (cycles)\n\n| config | queuing | blocking | transfer | total |\n|---|---|---|---|---|\n")
	var basePow power.Breakdown
	var pows []power.Breakdown
	var breakdowns [][]float64
	for i, l := range layouts {
		res := ress[i]
		breakdowns = append(breakdowns, []float64{res.QueuingLatency, res.BlockingLatency, res.TransferLatency})
		r.Printf("| %s | %.1f | %.1f | %.1f | %.1f |\n", l.Name,
			res.QueuingLatency, res.BlockingLatency, res.TransferLatency, res.AvgLatency)
		key := keyName(l.Name)
		r.Metrics[key+"_blocking"] = res.BlockingLatency
		r.Metrics[key+"_queuing"] = res.QueuingLatency
		r.Metrics[key+"_transfer"] = res.TransferLatency
		pb := power.Network(pm, l, res.Activity)
		pows = append(pows, pb)
		if i == 0 {
			basePow = pb
		}
	}
	r.Printf("\n### (b) Power breakdown (W)\n\n| config | links | xbar | arbiters+logic | buffers | total |\n|---|---|---|---|---|---|\n")
	for i, l := range layouts {
		pb := pows[i]
		r.Printf("| %s | %.1f | %.1f | %.1f | %.1f | %.1f |\n", l.Name,
			pb.Links, pb.Xbar, pb.Arbiters, pb.Buffers, pb.Total())
		key := keyName(l.Name)
		r.Metrics[key+"_power_total"] = pb.Total()
		r.Metrics[key+"_power_buffers"] = pb.Buffers
	}
	r.Metrics["diagonal_bl_buffer_power_reduction_pct"] =
		stats.PctReduction(pows[2].Buffers, basePow.Buffers)
	// Figures: stacked breakdowns in the paper's Figure 8 style.
	latFig := &plot.BarChart{Title: "Fig 8(a): latency breakdown", YLabel: "cycles",
		Series: []string{"queuing", "blocking", "transfer"}, Stacked: true}
	powFig := &plot.BarChart{Title: "Fig 8(b): power breakdown", YLabel: "W",
		Series: []string{"links", "xbar", "arbiters+logic", "buffers"}, Stacked: true}
	for i, l := range layouts {
		latFig.Groups = append(latFig.Groups, plot.BarGroup{Label: l.Name, Values: breakdowns[i]})
		powFig.Groups = append(powFig.Groups, plot.BarGroup{Label: l.Name,
			Values: []float64{pows[i].Links, pows[i].Xbar, pows[i].Arbiters, pows[i].Buffers}})
	}
	r.AddFigure("fig8a_latency_breakdown", latFig.SVG())
	r.AddFigure("fig8b_power_breakdown", powFig.SVG())
	return r, nil
}
