package experiments

import (
	"context"

	"heteronoc/internal/cmp/mem"
	"heteronoc/internal/core"
	"heteronoc/internal/noc"
	"heteronoc/internal/par"
	"heteronoc/internal/plot"
	"heteronoc/internal/traffic"
)

// routerClass buckets routers for the attribution rollup: the paper's
// big/small split, refined by position — mesh-edge routers (the
// underutilized periphery of Figure 1), the corner MC-adjacent tiles
// (where the memory controllers sit in the Table 2 baseline), and the
// interior. A router belongs to exactly one class; precedence is
// big > mc_adjacent > edge > interior.
var breakdownClasses = []string{"big", "mc_adjacent", "edge", "interior"}

// classifyRouters assigns each router of l to one breakdown class.
func classifyRouters(l core.Layout) []string {
	w, h := l.Mesh.Dims()
	mc := map[int]bool{}
	for _, t := range mem.Tiles(mem.PlacementCorners, w, h) {
		mc[t] = true
	}
	out := make([]string, l.Mesh.NumRouters())
	for r := range out {
		x, y := r%w, r/w
		switch {
		case l.Class[r] == core.ClassBig:
			out[r] = "big"
		case mc[r]:
			out[r] = "mc_adjacent"
		case x == 0 || y == 0 || x == w-1 || y == h-1:
			out[r] = "edge"
		default:
			out[r] = "interior"
		}
	}
	return out
}

// contention sums the congestion-caused buckets of one rollup row: cycles
// lost to VC allocation, switch allocation and credit starvation. Queue,
// link and serialization time exist even in an empty network; these three
// only exist under contention.
func contention(row [noc.NumAttrBuckets]int64) int64 {
	return row[noc.AttrVCAlloc] + row[noc.AttrSwitchAlloc] + row[noc.AttrCredit]
}

// LatencyBreakdown reports the causal latency attribution of Section 3's
// designs under hotspot traffic: every cycle of every measured packet's
// life charged to a cause (inject queueing, VC-allocation stall,
// switch-allocation stall, credit starvation, link traversal,
// serialization), per packet and rolled up per router class. The
// per-packet buckets sum exactly to the measured average latency — the
// residual row is the proof — so the table is an account, not an estimate.
func LatencyBreakdown(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("latency-breakdown", "Causal latency attribution (hotspot)")
	// Moderate load with a hot destination near the mesh center: enough
	// contention for the stall buckets to matter, below saturation so the
	// account stays dominated by real traversal.
	const rate = 0.03
	hot := 4*8 + 4 // router (4,4): on the main diagonal, inside the center block
	pat := traffic.Hotspot{N: 64, Hot: hot, Frac: 0.20}
	layouts := []core.Layout{
		core.NewBaseline(8, 8),
		core.NewLayout(core.PlacementCenter, 8, 8, true),
		core.NewLayout(core.PlacementDiagonal, 8, 8, true),
	}
	ress, err := par.MapCtx(ctx, len(layouts), func(ctx context.Context, i int) (traffic.RunResult, error) {
		return runNet(ctx, layouts[i], pat, rate, sc, false)
	})
	if err != nil {
		return nil, err
	}

	names := noc.AttrBucketNames()
	r.Printf("### (a) Per-packet attribution (mean cycles)\n\n| config |")
	for _, n := range names {
		r.Printf(" %s |", n)
	}
	r.Printf(" residual | total |\n|---|")
	for range names {
		r.Printf("---|")
	}
	r.Printf("---|---|\n")
	fig := &plot.BarChart{Title: "Latency attribution (hotspot)", YLabel: "cycles",
		Series: names, Stacked: true}
	for i, l := range layouts {
		res := ress[i]
		key := keyName(l.Name)
		r.Printf("| %s |", l.Name)
		vals := make([]float64, noc.NumAttrBuckets)
		for b := noc.AttrBucket(0); b < noc.NumAttrBuckets; b++ {
			r.Printf(" %.1f |", res.Attr[b])
			r.Metrics[key+"_attr_"+b.String()] = res.Attr[b]
			vals[b] = res.Attr[b]
		}
		r.Printf(" %.2f | %.1f |\n", res.AttrResidual, res.AvgLatency)
		r.Metrics[key+"_attr_residual"] = res.AttrResidual
		fig.Groups = append(fig.Groups, plot.BarGroup{Label: l.Name, Values: vals})
	}
	r.AddFigure("latency_breakdown_attr", fig.SVG())

	// Per-router-class rollup: where in the mesh the contention cycles are
	// absorbed. Per-router means, because the classes differ in size.
	r.Printf("\n### (b) Contention cycles absorbed per router (by class)\n\n| config |")
	for _, c := range breakdownClasses {
		r.Printf(" %s |", c)
	}
	r.Printf(" big/edge ratio |\n|---|")
	for range breakdownClasses {
		r.Printf("---|")
	}
	r.Printf("---|\n")
	for i, l := range layouts {
		cls := classifyRouters(l)
		sum := map[string]int64{}
		cnt := map[string]int{}
		for rt, row := range ress[i].RouterAttr {
			sum[cls[rt]] += contention(row)
			cnt[cls[rt]]++
		}
		key := keyName(l.Name)
		r.Printf("| %s |", l.Name)
		mean := map[string]float64{}
		for _, c := range breakdownClasses {
			if cnt[c] > 0 {
				mean[c] = float64(sum[c]) / float64(cnt[c])
			}
			if cnt[c] == 0 {
				r.Printf(" — |")
				continue
			}
			r.Printf(" %.0f |", mean[c])
			r.Metrics[key+"_contention_per_"+c+"_router"] = mean[c]
		}
		// The headline: interior/diagonal routers absorb the hotspot's
		// contention; the periphery stays cheap. On the hetero layouts the
		// "big" class is the absorber, on the baseline the interior is.
		absorber := mean["big"]
		if cnt["big"] == 0 {
			absorber = mean["interior"]
		}
		ratio := 0.0
		if mean["edge"] > 0 {
			ratio = absorber / mean["edge"]
		}
		r.Printf(" %.1f |\n", ratio)
		r.Metrics[key+"_absorber_vs_edge_contention"] = ratio
	}
	r.Printf("\nBuckets sum to the measured latency per packet (residual column; an exact account). Hotspot traffic concentrates the vc_alloc/switch_alloc/credit cycles on the routers around the hot tile — the big routers of the hetero placements — while edge routers stay near contention-free, which is the asymmetry the heterogeneous placements exploit.\n")
	return r, nil
}
