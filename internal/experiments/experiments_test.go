package experiments

import (
	"context"
	"strings"
	"testing"
)

// tiny returns a scale small enough for unit tests.
func tiny() Scale {
	return Scale{
		Name:             "tiny",
		WarmupPackets:    100,
		MeasurePackets:   1200,
		SweepPoints:      3,
		CMPWarmupEntries: 6000,
		CMPCycles:        3000,
		DSEPackets:       200,
		DSECandidates:    5,
	}
}

func TestFig1HotCenter(t *testing.T) {
	r, err := Fig1(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["buffer_center_periphery_ratio"] <= 1.2 {
		t.Errorf("buffer center/periphery ratio %.2f, want > 1.2 (paper ~2x)",
			r.Metrics["buffer_center_periphery_ratio"])
	}
	if r.Metrics["link_center_periphery_ratio"] <= 1.2 {
		t.Errorf("link center/periphery ratio %.2f, want > 1.2",
			r.Metrics["link_center_periphery_ratio"])
	}
	if !strings.Contains(r.Markdown(), "Buffer utilization") {
		t.Error("report missing heat map")
	}
}

func TestFig2NonUniform(t *testing.T) {
	r, err := Fig2(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["cmesh_center_periphery_ratio"] <= 1.0 {
		t.Errorf("cmesh ratio %.2f, want > 1", r.Metrics["cmesh_center_periphery_ratio"])
	}
	if _, ok := r.Metrics["fbfly_center_periphery_ratio"]; !ok {
		t.Error("fbfly metric missing")
	}
}

func TestTable1ExactNumbers(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"buffer_bits_homo":         921600,
		"buffer_bits_hetero":       614400,
		"buffer_bit_reduction_pct": 100.0 / 3,
		"total_vcs":                960,
		"min_small_routers":        38,
		"cal_power_baseline":       0.67,
		"cal_power_small":          0.30,
		"cal_power_big":            1.19,
	}
	for k, want := range checks {
		got, ok := r.Metrics[k]
		if !ok {
			t.Errorf("metric %s missing", k)
			continue
		}
		if diff := got - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}
}

func TestFig7HeteroWins(t *testing.T) {
	r, err := Fig7(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The +BL designs must reduce average pre-saturation latency and
	// power versus the baseline.
	for _, cfg := range []string{"center_bl", "diagonal_bl"} {
		if v := r.Metrics[cfg+"_latency_reduction_pct"]; v <= 0 {
			t.Errorf("%s latency reduction %.1f%%, want positive (paper ~21-24%%)", cfg, v)
		}
		if v := r.Metrics[cfg+"_power_reduction_pct"]; v <= 5 {
			t.Errorf("%s power reduction %.1f%%, want > 5%% (paper ~21.5-28%%)", cfg, v)
		}
	}
}

func TestFig8BlockingReduced(t *testing.T) {
	r, err := Fig8(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["diagonal_bl_blocking"] >= r.Metrics["baseline_blocking"] {
		t.Errorf("Diagonal+BL blocking %.1f not below baseline %.1f",
			r.Metrics["diagonal_bl_blocking"], r.Metrics["baseline_blocking"])
	}
	if r.Metrics["diagonal_bl_buffer_power_reduction_pct"] <= 10 {
		t.Errorf("buffer power reduction %.1f%%, want > 10%% (paper ~33%%)",
			r.Metrics["diagonal_bl_buffer_power_reduction_pct"])
	}
}

func TestFig9CenterBeatsDiagonalOnNN(t *testing.T) {
	r, err := Fig9(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: with NN traffic Center+BL performs better than Diagonal+BL.
	c := r.Metrics["center_bl_latency_reduction_pct"]
	d := r.Metrics["diagonal_bl_latency_reduction_pct"]
	if c < d-1.0 { // allow 1pp noise at tiny scale
		t.Errorf("NN: Center+BL (%.1f%%) should be at least on par with Diagonal+BL (%.1f%%)", c, d)
	}
}

func TestDSEMatchesPaperCounts(t *testing.T) {
	r, err := DSE(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["candidates_04"] != 1820 || r.Metrics["candidates_06"] != 8008 || r.Metrics["candidates_08"] != 12870 {
		t.Errorf("candidate counts wrong: %v", r.Metrics)
	}
	if r.Metrics["explored"] < 5 {
		t.Error("too few candidates explored")
	}
	if r.Metrics["best_latency"] > r.Metrics["worst_latency"] {
		t.Error("ranking inverted")
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if len(All()) != 12 {
		t.Errorf("%d experiments, want 12", len(All()))
	}
}

func TestReportMarkdown(t *testing.T) {
	r := newReport("x", "Test")
	r.Printf("hello %d\n", 42)
	r.Metrics["m"] = 1.5
	md := r.Markdown()
	for _, want := range []string{"## x — Test", "hello 42", "`m` = 1.5"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestFiguresAttached(t *testing.T) {
	r, err := Fig1(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Figures) != 2 {
		t.Fatalf("fig1 has %d figures, want 2", len(r.Figures))
	}
	for _, f := range r.Figures {
		if !strings.Contains(f.SVG, "<svg") || !strings.Contains(f.SVG, "</svg>") {
			t.Errorf("figure %s is not an SVG document", f.Name)
		}
	}
	r7, err := Fig7(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r7.Figures) != 3 {
		t.Fatalf("fig7 has %d figures, want 3 (latency, power, summary)", len(r7.Figures))
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Two runs of the same experiment must produce identical metrics (the
	// whole stack is seeded; EXPERIMENTS.md promises byte-identical
	// reports).
	a, err := Fig1(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if a.Body() != b.Body() {
		t.Error("fig1 reports differ between runs")
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s differs: %v vs %v", k, v, b.Metrics[k])
		}
	}
}

func TestScalePresets(t *testing.T) {
	q, f := Quick(), Full()
	if q.MeasurePackets >= f.MeasurePackets {
		t.Error("quick must measure fewer packets than full")
	}
	if q.CMPCycles >= f.CMPCycles {
		t.Error("quick must run fewer CMP cycles than full")
	}
	if f.MeasurePackets != 100000 {
		t.Errorf("full preset must match the paper's 100k measured packets, got %d", f.MeasurePackets)
	}
}

func TestKeyNameNormalization(t *testing.T) {
	cases := map[string]string{
		"Diagonal+BL":                 "diagonal_bl",
		"Row2_5+B":                    "row2_5_b",
		"HeteroNoC-Table+XY":          "heteronoc_table_xy",
		"none (uniform 3VC narrow)":   "none_uniform_3vc_narrow",
		"Corners_homoNoC (reference)": "corners_homonoc_reference",
		"uniform-random":              "uniform_random",
	}
	for in, want := range cases {
		if got := keyName(in); got != want {
			t.Errorf("keyName(%q) = %q, want %q", in, got, want)
		}
	}
}
