package experiments

import (
	"context"
	"fmt"

	"heteronoc/internal/core"
	"heteronoc/internal/dse"
	"heteronoc/internal/runcache"
)

// DSESearch is the multi-objective design-space search extension: NSGA-II
// over big-router placements, minimizing {probe latency, network power,
// router area} under an area budget.
//
// Four parts:
//
//	A. The 4x4/8-big space the paper sweeps exhaustively (footnote 4:
//	   C(16,8) = 12870 placements). The search re-finds the exhaustive
//	   optimum with a small fraction of the evaluations; at full scale the
//	   report verifies that claim live against dse.Explore.
//	B. The 8x8 space the paper calls infeasible to sweep (C(64,16) =
//	   4.89e14). Under a mixed probe — bulk uniform traffic plus the
//	   hot-center and MC-incast classes the paper judges layouts on — the
//	   hand-designed Diagonal X sits within a few percent of the best
//	   placement evolution finds, and the search winners reproduce its
//	   signature: all four corners big plus center coverage.
//	C. A 16x16 probe of the same machinery at the scale ceiling.
//	D. A repeat of the part-A search: every evaluation answers from the
//	   runcache archive, zero simulations (the cross-run dedup gate).
func DSESearch(ctx context.Context, sc Scale) (*Report, error) {
	r := newReport("dse-search", "Multi-objective placement search (extension)")

	// --- Part A: re-find the exhaustively known 4x4 optimum ---
	cfgA := dse.SearchConfig{
		Eval: dse.EvalConfig{
			W: 4, H: 4, LinkRedist: true,
			InjectionRate: 0.06, Packets: sc.DSEPackets, Seed: 7,
		},
		MinBig: 8, MaxBig: 8,
		PopSize:     sc.DSESearchPop,
		Generations: sc.DSESearchGens,
		EvalBudget:  sc.DSESearchBudget,
		Seed:        1,
	}
	resA, err := dse.SearchCtx(ctx, cfgA)
	if err != nil {
		return nil, err
	}
	if len(resA.Front) == 0 {
		return nil, fmt.Errorf("dse-search: 4x4 search returned an empty front (all saturated: %v)", resA.AllSaturated)
	}
	bestA := resA.Front[0]
	space := 12870.0 // C(16,8), paper footnote 4
	evalsPct := float64(resA.Evals) / space * 100
	r.Printf("### A. 4x4, 8 big routers: search vs exhaustive sweep\n\n")
	r.Printf("The space has C(16,8) = 12870 placements. The search scored %d (%.1f%% of the space, %d archive hits) over %d generations and reports %v at %.3f cycles as latency-optimal.\n\n",
		resA.Evals, evalsPct, resA.ArchiveHits, resA.Generations, bestA.Big, bestA.AvgLatency)
	r.Metrics["search4x4_evals"] = float64(resA.Evals)
	r.Metrics["search4x4_evals_pct_of_space"] = evalsPct
	r.Metrics["search4x4_best_latency"] = bestA.AvgLatency
	r.Metrics["search4x4_front_size"] = float64(len(resA.Front))

	// At full scale, verify against the exhaustive sweep live; quick runs
	// trust the pinned full-scale result (the sweep costs more than the
	// search it validates).
	if sc.DSESearchBudget >= 900 {
		exh, err := dse.ExploreCtx(ctx, dse.EvalConfig{
			W: 4, H: 4, BigCount: 8, LinkRedist: true,
			InjectionRate: 0.06, Packets: sc.DSEPackets, Seed: 7,
			ReduceSymmetry: true,
		})
		if err != nil {
			return nil, err
		}
		exhBest := exh[0]
		match := 0.0
		if fmt.Sprint(exhBest.Big) == fmt.Sprint(bestA.Big) {
			match = 1
		}
		r.Printf("Exhaustive sweep (%d symmetry-reduced orbits): optimum %v at %.3f cycles — search found the exact optimum: %v, with %.1f%% of the evaluations.\n\n",
			len(exh), exhBest.Big, exhBest.AvgLatency, match == 1, evalsPct)
		r.Metrics["search4x4_found_exhaustive_optimum"] = match
		r.Metrics["search4x4_gap_pct"] = (bestA.AvgLatency - exhBest.AvgLatency) / exhBest.AvgLatency * 100
	}

	// --- Part B: 8x8 under the mixed probe, diagonal as near-optimum ---
	evalB := dse.EvalConfig{
		W: 8, H: 8, LinkRedist: true,
		InjectionRate: 0.05, Packets: maxInt(sc.DSEPackets, 1000), Seed: 7,
		Workload: "mixed",
	}
	cfgB := dse.SearchConfig{
		Eval:   evalB,
		MinBig: 12, MaxBig: 16,
		PopSize:     sc.DSESearchPop,
		Generations: sc.DSESearchGens,
		EvalBudget:  sc.DSESearchBudget,
		Seed:        1,
	}
	resB, err := dse.SearchCtx(ctx, cfgB)
	if err != nil {
		return nil, err
	}
	evalB.BigCount = 16
	diag, err := dse.EvaluateCtx(ctx, evalB, core.BigRouters(core.PlacementDiagonal, 8, 8))
	if err != nil {
		return nil, err
	}
	if len(resB.Front) == 0 {
		return nil, fmt.Errorf("dse-search: 8x8 search returned an empty front")
	}
	bestB := resB.Front[0]
	gap := (diag.AvgLatency - bestB.AvgLatency) / bestB.AvgLatency * 100
	// Place the diagonal relative to the search archive: is it on the
	// Pareto front of everything the search evaluated, plus itself?
	pool := append(append([]dse.Candidate(nil), resB.Front...), diag)
	budget := diag.AreaMM2 // "no more silicon than the full 16-big design"
	onFront := 0.0
	for _, i := range dse.ParetoFront(pool, budget) {
		if fmt.Sprint(pool[i].Big) == fmt.Sprint(diag.Big) {
			onFront = 1
		}
	}
	r.Printf("### B. 8x8, 12-16 big routers, mixed probe (uniform + hot-center + MC-incast)\n\n")
	r.Printf("The space is C(64,16) = 4.89e14 placements — the paper sweeps none of it and designs Diagonal X by hand. The search scored %d placements over %d generations; best found %v at %.3f cycles.\n\n",
		resB.Evals, resB.Generations, bestB.Big, bestB.AvgLatency)
	r.Printf("Diagonal X scores %.3f cycles — %.2f%% from the searched best — and %s the Pareto front of the search's archive extended with itself.\n\n",
		diag.AvgLatency, gap, map[bool]string{true: "sits on", false: "is dominated off"}[onFront == 1])
	sig := diagonalSignature(bestB.Big)
	r.Printf("Search winner signature: corners big = %v, center coverage = %v — the structural features of the hand-designed diagonal.\n\n",
		sig.corners == 4, sig.center > 0)
	r.Metrics["search8x8_evals"] = float64(resB.Evals)
	r.Metrics["search8x8_best_latency"] = bestB.AvgLatency
	r.Metrics["diagonal8x8_latency"] = diag.AvgLatency
	r.Metrics["diagonal8x8_gap_pct"] = gap
	r.Metrics["diagonal8x8_on_front"] = onFront
	r.Metrics["diagonal8x8_feasible"] = boolMetric(!diag.Saturated)
	r.Metrics["search8x8_winner_corners"] = float64(sig.corners)
	r.Metrics["search8x8_winner_center"] = float64(sig.center)

	// --- Part C: 16x16 probe at the scale ceiling ---
	cfgC := dse.SearchConfig{
		Eval: dse.EvalConfig{
			W: 16, H: 16, LinkRedist: true,
			InjectionRate: 0.03, Packets: maxInt(sc.DSEPackets, 3000), Seed: 7,
		},
		MinBig: 64, MaxBig: 64,
		PopSize:     minInt(8, sc.DSESearchPop),
		Generations: 2,
		EvalBudget:  3 * minInt(8, sc.DSESearchPop),
		Seed:        1,
	}
	resC, err := dse.SearchCtx(ctx, cfgC)
	if err != nil {
		return nil, err
	}
	r.Printf("### C. 16x16 probe (C(256,64) placements)\n\n")
	if len(resC.Front) > 0 {
		r.Printf("A short probe search (%d evaluations) stays unsaturated at rate %.2f and returns a %d-point front; best %.3f cycles.\n\n",
			resC.Evals, cfgC.Eval.InjectionRate, len(resC.Front), resC.Front[0].AvgLatency)
		r.Metrics["search16x16_best_latency"] = resC.Front[0].AvgLatency
	}
	r.Metrics["search16x16_evals"] = float64(resC.Evals)
	r.Metrics["search16x16_front_size"] = float64(len(resC.Front))

	// --- Part D: repeat part A, entirely from cache ---
	execs0 := runcache.Execs()
	resD, err := dse.SearchCtx(ctx, cfgA)
	if err != nil {
		return nil, err
	}
	repeatExecs := float64(runcache.Execs() - execs0)
	r.Printf("### D. Repeatability: the same search answered from cache\n\n")
	r.Printf("Re-running the part-A search from scratch (no frontier file, archive discarded) re-requested %d evaluations and ran %.0f simulations — every probe answered by the run cache.\n",
		resD.Evals, repeatExecs)
	r.Metrics["repeat_search_evals"] = float64(resD.Evals)
	r.Metrics["repeat_search_executions"] = repeatExecs

	r.Printf("\nThe searched optima bound how much latency the paper's hand design leaves on the table (%.2f%% on the mixed 8x8 probe), while the search budget stays below %.0f%% of one exhaustive 4x4 sweep.\n",
		gap, evalsPct+1)
	return r, nil
}

type signature struct{ corners, center int }

// diagonalSignature counts how many 8x8 grid corners and central cells
// {27, 28, 35, 36} a placement covers — the two features every strong
// mixed-probe placement shares with the paper's Diagonal X.
func diagonalSignature(big []int) signature {
	var s signature
	for _, b := range big {
		switch b {
		case 0, 7, 56, 63:
			s.corners++
		case 27, 28, 35, 36:
			s.center++
		}
	}
	return s
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
