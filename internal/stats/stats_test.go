package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.CoV()-0.4) > 1e-12 {
		t.Errorf("cov = %v, want 0.4", s.CoV())
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		var s Summary
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*100 - 50
			s.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-m2/float64(n)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPctHelpers(t *testing.T) {
	if got := PctDelta(75, 100); got != -25 {
		t.Errorf("PctDelta(75,100) = %v", got)
	}
	if got := PctReduction(75, 100); got != 25 {
		t.Errorf("PctReduction(75,100) = %v", got)
	}
	if got := PctDelta(1, 0); got != 0 {
		t.Errorf("PctDelta with zero base = %v", got)
	}
}

func TestHeatmapRender(t *testing.T) {
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i) / 15
	}
	h := NewHeatmap("test", 4, 4, vals)
	out := h.Render()
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	if lines := strings.Count(out, "\n"); lines != 5 {
		t.Errorf("render has %d lines, want 5", lines)
	}
	lo, hi := h.Range()
	if lo != 0 || hi != 1 {
		t.Errorf("range = %v..%v", lo, hi)
	}
}

func TestHeatmapCenterPeripheryRatio(t *testing.T) {
	vals := make([]float64, 64)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			// Hotter in the middle.
			d := math.Abs(float64(x)-3.5) + math.Abs(float64(y)-3.5)
			vals[y*8+x] = 1 / (1 + d)
		}
	}
	h := NewHeatmap("center", 8, 8, vals)
	if r := h.CenterPeripheryRatio(); r <= 1.5 {
		t.Errorf("center/periphery ratio %v, want > 1.5", r)
	}
}

func TestHeatmapPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for mismatched size")
		}
	}()
	NewHeatmap("bad", 4, 4, make([]float64, 5))
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.StdDev() != 0 || s.CoV() != 0 {
		t.Error("empty summary must be all zeros")
	}
	s.Add(5)
	if s.Mean() != 5 || s.Var() != 0 || s.Min() != 5 || s.Max() != 5 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, all Summary
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for i, x := range xs {
		if i < 3 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(b)
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 || math.Abs(a.Var()-all.Var()) > 1e-12 {
		t.Errorf("merge mean/var %.6f/%.6f, want %.6f/%.6f", a.Mean(), a.Var(), all.Mean(), all.Var())
	}
	if a.Min() != 1 || a.Max() != 8 || a.N() != 8 {
		t.Errorf("merge extrema wrong: %+v", a)
	}
	// Merging into an empty summary copies; merging empty is a no-op.
	var c Summary
	c.Merge(all)
	if c.N() != 8 {
		t.Error("merge into empty failed")
	}
	before := c
	c.Merge(Summary{})
	if c != before {
		t.Error("merging empty changed the summary")
	}
}

func TestHeatmapConstantValues(t *testing.T) {
	h := NewHeatmap("flat", 2, 2, []float64{0.5, 0.5, 0.5, 0.5})
	out := h.Render() // must not divide by zero
	if !strings.Contains(out, "50.0") {
		t.Errorf("flat heatmap render wrong:\n%s", out)
	}
	if r := h.CenterPeripheryRatio(); r != 1 {
		t.Errorf("flat ratio %v, want 1", r)
	}
}

func TestHeatmapZeroCorners(t *testing.T) {
	vals := make([]float64, 16)
	vals[5], vals[6], vals[9], vals[10] = 1, 1, 1, 1
	h := NewHeatmap("div0", 4, 4, vals)
	if r := h.CenterPeripheryRatio(); !math.IsInf(r, 1) {
		t.Errorf("zero corners ratio %v, want +Inf", r)
	}
}
