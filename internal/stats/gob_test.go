package stats

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestSummaryGobRoundTrip(t *testing.T) {
	var s Summary
	for _, x := range []float64{3.5, -1.25, 9, 0.001, 42} {
		s.Add(x)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip changed summary: got %+v want %+v", got, s)
	}
	// Decoded summaries keep accumulating correctly.
	s.Add(7)
	got.Add(7)
	if got != s {
		t.Fatalf("post-decode Add diverged: got %+v want %+v", got, s)
	}
}

func TestSummaryGobRejectsBadLength(t *testing.T) {
	var s Summary
	if err := s.GobDecode(make([]byte, 39)); err == nil {
		t.Fatal("decoded a 39-byte payload")
	}
}
