package stats

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Summary's fields are unexported so gob cannot serialize it directly,
// but figure results carrying summaries flow through the persistent run
// cache. These methods give it a stable binary form: five fixed-width
// big-endian words. The encoding is versionless on purpose — any change
// to the layout must instead bump the cache's key-prefix version so old
// entries miss rather than decode wrongly.

// GobEncode implements gob.GobEncoder.
func (s *Summary) GobEncode() ([]byte, error) {
	var b bytes.Buffer
	binary.Write(&b, binary.BigEndian, s.n)
	binary.Write(&b, binary.BigEndian, math.Float64bits(s.mean))
	binary.Write(&b, binary.BigEndian, math.Float64bits(s.m2))
	binary.Write(&b, binary.BigEndian, math.Float64bits(s.min))
	binary.Write(&b, binary.BigEndian, math.Float64bits(s.max))
	return b.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *Summary) GobDecode(data []byte) error {
	if len(data) != 5*8 {
		return fmt.Errorf("stats: Summary encoding is %d bytes, want 40", len(data))
	}
	s.n = int64(binary.BigEndian.Uint64(data[0:]))
	s.mean = math.Float64frombits(binary.BigEndian.Uint64(data[8:]))
	s.m2 = math.Float64frombits(binary.BigEndian.Uint64(data[16:]))
	s.min = math.Float64frombits(binary.BigEndian.Uint64(data[24:]))
	s.max = math.Float64frombits(binary.BigEndian.Uint64(data[32:]))
	return nil
}
