// Package stats provides the measurement utilities behind the paper's
// figures: grid heat maps (Figures 1-2), mean/variance summaries (Figure
// 13(b)), and percentage-delta helpers used throughout the evaluation.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Summary holds streaming mean/variance statistics (Welford).
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the sample count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the population variance.
func (s *Summary) Var() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Merge folds another summary into this one (Chan et al. parallel
// variance combination), preserving mean, variance and extrema.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.n, s.mean, s.m2 = n, mean, m2
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// CoV returns the coefficient of variation (stddev/mean), the jitter metric
// of Figure 13(b).
func (s *Summary) CoV() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.StdDev() / s.mean
}

// PctDelta returns the percentage change from base to v: negative values
// are reductions. (v=75, base=100) -> -25.
func PctDelta(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (v - base) / base
}

// PctReduction returns the percentage reduction from base to v: (v=75,
// base=100) -> 25, matching the paper's "percentage reduction over
// baseline" bars.
func PctReduction(v, base float64) float64 { return -PctDelta(v, base) }

// Heatmap is a W x H grid of values rendered like the paper's utilization
// figures.
type Heatmap struct {
	W, H   int
	Values []float64 // row-major, index = y*W + x
	Title  string
}

// NewHeatmap builds a heat map from per-router values on a grid.
func NewHeatmap(title string, w, h int, values []float64) *Heatmap {
	if len(values) != w*h {
		panic(fmt.Sprintf("stats: %d values for %dx%d heatmap", len(values), w, h))
	}
	return &Heatmap{W: w, H: h, Values: values, Title: title}
}

// Range returns the minimum and maximum values.
func (h *Heatmap) Range() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range h.Values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// shades orders the ASCII ramp used to render intensity.
var shades = []rune(" .:-=+*#%@")

// Render draws the heat map as ASCII art with a numeric legend: each cell
// prints the value (as a percentage with one decimal when values look like
// fractions) plus a shade character.
func (h *Heatmap) Render() string {
	lo, hi := h.Range()
	span := hi - lo
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [min %.1f%%, max %.1f%%]\n", h.Title, 100*lo, 100*hi)
	for y := 0; y < h.H; y++ {
		for x := 0; x < h.W; x++ {
			v := h.Values[y*h.W+x]
			level := 0
			if span > 0 {
				level = int((v - lo) / span * float64(len(shades)-1))
			}
			if level >= len(shades) {
				level = len(shades) - 1
			}
			fmt.Fprintf(&b, "%5.1f%c ", 100*v, shades[level])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CenterPeripheryRatio compares the average of the four central cells to
// the average of the four corner cells — the paper's key observation is
// that this ratio is well above 1 (hot center, cool periphery).
func (h *Heatmap) CenterPeripheryRatio() float64 {
	cx, cy := h.W/2, h.H/2
	center := (h.at(cx-1, cy-1) + h.at(cx, cy-1) + h.at(cx-1, cy) + h.at(cx, cy)) / 4
	corners := (h.at(0, 0) + h.at(h.W-1, 0) + h.at(0, h.H-1) + h.at(h.W-1, h.H-1)) / 4
	if corners == 0 {
		return math.Inf(1)
	}
	return center / corners
}

func (h *Heatmap) at(x, y int) float64 { return h.Values[y*h.W+x] }
