package par

import (
	"strings"
	"testing"

	"heteronoc/internal/obs"
)

func TestTickStats(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.ShardedTick(10, func(shard, lo, hi int) {})
	p.ShardedTick(0, func(shard, lo, hi int) {}) // no work: not a tick
	p.ShardedTick(1, func(shard, lo, hi int) {}) // single shard: inline
	st := p.TickStats()
	if st.Ticks != 2 || st.InlineTicks != 1 {
		t.Fatalf("ticks=%d inline=%d, want 2/1", st.Ticks, st.InlineTicks)
	}
	// 10 items over 2 workers oversubscribe into 8 steal chunks (two of
	// them one item heavier); the inline tick adds one more span.
	if st.Spans != 9 || st.Items != 11 {
		t.Fatalf("spans=%d items=%d, want 9/11", st.Spans, st.Items)
	}
	if st.MaxSpan != 2 || st.MinSpan != 1 {
		t.Fatalf("span extremes %d/%d, want 2/1", st.MaxSpan, st.MinSpan)
	}
}

func TestPoolRegisterMetrics(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	p.ShardedTick(9, func(shard, lo, hi int) {})
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg, obs.L("pool", "net"))
	out := string(reg.Exposition())
	if _, err := obs.ValidatePrometheusText(out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`par_pool_workers{pool="net"} 3`,
		`par_ticks_total{pool="net"} 1`,
		`par_items_total{pool="net"} 9`,
		`par_mean_items_per_span{pool="net"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
