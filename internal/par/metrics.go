package par

import "heteronoc/internal/obs"

// TickStats summarizes a pool's ShardedTick history: how many ticks ran, how
// many degenerated to the inline single-chunk path, how the work divided
// into steal chunks, and the largest/smallest chunk sizes entered into the
// steal queue. Since chunks are contiguous and differ by at most one item,
// MaxSpan-MinSpan ≤ 1 within any single tick; across ticks the range
// reflects varying n.
type TickStats struct {
	Ticks       int64 // ShardedTick calls that had work (n > 0)
	InlineTicks int64 // ticks that ran on the caller (single chunk)
	Spans       int64 // steal chunks dispatched (inline ticks count one)
	Items       int64 // total items across all ticks
	MaxSpan     int   // largest chunk size ever dispatched
	MinSpan     int   // smallest chunk size ever dispatched
}

// TickStats returns the pool's accumulated tick accounting. Read it from
// the goroutine driving ShardedTick (or after the simulation stops).
func (p *Pool) TickStats() TickStats {
	return TickStats{
		Ticks: p.ticks, InlineTicks: p.inlineTicks,
		Spans: p.spans, Items: p.items,
		MaxSpan: p.maxSpan, MinSpan: p.minSpan,
	}
}

// noteSpan folds one tick's span-size extremes into the running min/max.
func (p *Pool) noteSpan(max, min int) {
	if max > p.maxSpan {
		p.maxSpan = max
	}
	if p.minSpan == 0 || min < p.minSpan {
		p.minSpan = min
	}
}

// RegisterMetrics registers the pool's worker-balance statistics in reg.
func (p *Pool) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.RegisterGauge("par_pool_workers", "worker goroutines in the shard pool", labels,
		func() float64 { return float64(p.workers) })
	reg.RegisterCounter("par_ticks_total", "sharded ticks executed", labels,
		func() float64 { return float64(p.ticks) })
	reg.RegisterCounter("par_inline_ticks_total", "ticks run inline on a single shard", labels,
		func() float64 { return float64(p.inlineTicks) })
	reg.RegisterCounter("par_spans_total", "steal chunks dispatched", labels,
		func() float64 { return float64(p.spans) })
	reg.RegisterCounter("par_items_total", "items processed across all ticks", labels,
		func() float64 { return float64(p.items) })
	reg.RegisterGauge("par_span_items_max", "largest chunk size dispatched", labels,
		func() float64 { return float64(p.maxSpan) })
	reg.RegisterGauge("par_span_items_min", "smallest chunk size dispatched", labels,
		func() float64 { return float64(p.minSpan) })
	reg.RegisterGauge("par_mean_items_per_span", "mean chunk size (steal balance)", labels,
		func() float64 {
			if p.spans == 0 {
				return 0
			}
			return float64(p.items) / float64(p.spans)
		})
}
