package par_test

// The cross-package determinism property of the sharded tick: a real
// network driven through ShardedTick-backed intra-cycle sharding must
// produce bit-identical state at every worker count. This lives in an
// external test package because noc imports par for the worker pool.

import (
	"math/rand"
	"runtime"
	"testing"

	"heteronoc/internal/core"
	"heteronoc/internal/noc"
	"heteronoc/internal/traffic"
)

// fingerprintWorkers runs a fixed traffic scenario on the Diagonal+BL
// layout (wide links, split-datapath allocator — the kernel's hardest
// mode) with intra-cycle sharding at the given worker count and returns
// the network fingerprint. workers = 0 is the sequential kernel.
func fingerprintWorkers(t *testing.T, workers int) uint64 {
	t.Helper()
	l := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	net, err := l.Network()
	if err != nil {
		t.Fatal(err)
	}
	if workers > 0 {
		net.SetShardWorkers(workers)
		defer net.Close()
	}
	gen := traffic.UniformRandom{N: 64}
	proc := traffic.Bernoulli{P: 0.05}
	rng := rand.New(rand.NewSource(99))
	for cyc := 0; cyc < 3000; cyc++ {
		for term := 0; term < 64; term++ {
			if proc.Fire(term, net.Cycle(), rng) {
				net.Inject(&noc.Packet{Src: term, Dst: gen.Dst(term, rng), NumFlits: 8})
			}
		}
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return net.Fingerprint()
}

// TestShardedTickDeterminism: 1, 2 and GOMAXPROCS workers must all produce
// the network state the sequential kernel produces, bit for bit.
func TestShardedTickDeterminism(t *testing.T) {
	want := fingerprintWorkers(t, 0)
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		if got := fingerprintWorkers(t, w); got != want {
			t.Errorf("%d workers: fingerprint %016x, sequential %016x", w, got, want)
		}
	}
}
