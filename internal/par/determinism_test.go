package par_test

// The cross-package determinism property of the sharded tick: a real
// network driven through ShardedTick-backed intra-cycle sharding must
// produce bit-identical state at every worker count. This lives in an
// external test package because noc imports par for the worker pool.

import (
	"math/rand"
	"runtime"
	"testing"

	"heteronoc/internal/core"
	"heteronoc/internal/noc"
	"heteronoc/internal/traffic"
)

// fingerprintWorkers runs a fixed traffic scenario on the Diagonal+BL
// layout (wide links, split-datapath allocator — the kernel's hardest
// mode) with intra-cycle sharding at the given worker count and returns
// the network fingerprint. workers = 0 is the sequential kernel.
func fingerprintWorkers(t *testing.T, workers int) uint64 {
	t.Helper()
	l := core.NewLayout(core.PlacementDiagonal, 8, 8, true)
	net, err := l.Network()
	if err != nil {
		t.Fatal(err)
	}
	if workers > 0 {
		net.SetShardWorkers(workers)
		defer net.Close()
	}
	gen := traffic.UniformRandom{N: 64}
	proc := traffic.Bernoulli{P: 0.05}
	rng := rand.New(rand.NewSource(99))
	for cyc := 0; cyc < 3000; cyc++ {
		for term := 0; term < 64; term++ {
			if proc.Fire(term, net.Cycle(), rng) {
				net.Inject(&noc.Packet{Src: term, Dst: gen.Dst(term, rng), NumFlits: 8})
			}
		}
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return net.Fingerprint()
}

// TestShardedTickDeterminism: 1, 2 and GOMAXPROCS workers must all produce
// the network state the sequential kernel produces, bit for bit.
func TestShardedTickDeterminism(t *testing.T) {
	want := fingerprintWorkers(t, 0)
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		if got := fingerprintWorkers(t, w); got != want {
			t.Errorf("%d workers: fingerprint %016x, sequential %016x", w, got, want)
		}
	}
}

// fingerprintTiny runs a fixed scenario on a 2x2 mesh — fewer routers than
// any realistic worker request — and returns the network fingerprint.
func fingerprintTiny(t *testing.T, workers int) uint64 {
	t.Helper()
	l := core.NewLayout(core.PlacementDiagonal, 2, 2, true)
	net, err := l.Network()
	if err != nil {
		t.Fatal(err)
	}
	if workers > 0 {
		net.SetShardWorkers(workers)
		defer net.Close()
		if nr, got := 4, net.ShardWorkers(); workers > nr && got != nr {
			t.Fatalf("requested %d workers on %d routers: pool holds %d, want clamp to %d",
				workers, nr, got, nr)
		}
	}
	gen := traffic.UniformRandom{N: 4}
	proc := traffic.Bernoulli{P: 0.2}
	rng := rand.New(rand.NewSource(7))
	for cyc := 0; cyc < 500; cyc++ {
		for term := 0; term < 4; term++ {
			if proc.Fire(term, net.Cycle(), rng) {
				net.Inject(&noc.Packet{Src: term, Dst: gen.Dst(term, rng), NumFlits: 4})
			}
		}
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return net.Fingerprint()
}

// TestShardWorkersClampedToRouters: asking for far more workers than the
// mesh has routers must clamp the pool to the router count (no goroutines
// that could never hold a router) and still reproduce the sequential
// kernel's state byte for byte.
func TestShardWorkersClampedToRouters(t *testing.T) {
	want := fingerprintTiny(t, 0)
	for _, w := range []int{3, 16, 64} {
		if got := fingerprintTiny(t, w); got != want {
			t.Errorf("%d workers: fingerprint %016x, sequential %016x", w, got, want)
		}
	}
}
