package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestMapOrder: results land at their job index regardless of which worker
// ran them.
func TestMapOrder(t *testing.T) {
	got, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapFirstError: the reported error is the one at the lowest failing
// index, matching a sequential loop that stops at the first failure.
func TestMapFirstError(t *testing.T) {
	errLo := errors.New("lo")
	errHi := errors.New("hi")
	_, err := Map(50, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errLo
		case 31:
			return 0, errHi
		}
		return i, nil
	})
	if err != errLo {
		t.Fatalf("got %v, want %v", err, errLo)
	}
}

// TestMapRunsEveryJob: all jobs execute exactly once.
func TestMapRunsEveryJob(t *testing.T) {
	var ran int64
	if _, err := Map(137, func(int) (struct{}, error) {
		atomic.AddInt64(&ran, 1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 137 {
		t.Fatalf("ran %d jobs, want 137", ran)
	}
}

// TestMapEmpty: a zero-length map is a no-op.
func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(int) (int, error) { return 1, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want nil, nil", got, err)
	}
}
