package par

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestMapOrder: results land at their job index regardless of which worker
// ran them.
func TestMapOrder(t *testing.T) {
	got, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapFirstError: the reported error is the one at the lowest failing
// index, matching a sequential loop that stops at the first failure.
func TestMapFirstError(t *testing.T) {
	errLo := errors.New("lo")
	errHi := errors.New("hi")
	_, err := Map(50, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errLo
		case 31:
			return 0, errHi
		}
		return i, nil
	})
	if err != errLo {
		t.Fatalf("got %v, want %v", err, errLo)
	}
}

// TestMapRunsEveryJob: all jobs execute exactly once.
func TestMapRunsEveryJob(t *testing.T) {
	var ran int64
	if _, err := Map(137, func(int) (struct{}, error) {
		atomic.AddInt64(&ran, 1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 137 {
		t.Fatalf("ran %d jobs, want 137", ran)
	}
}

// TestMapEmpty: a zero-length map is a no-op.
func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(int) (int, error) { return 1, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want nil, nil", got, err)
	}
}

// TestMapErrorOrderingProperty: whatever random subset of jobs fails, Map
// reports the error of the lowest failing index — exactly what a
// sequential loop stopping at the first failure would have seen.
func TestMapErrorOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(64)
		fail := map[int]error{}
		lowest := -1
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				fail[i] = fmt.Errorf("job %d failed", i)
				if lowest < 0 {
					lowest = i
				}
			}
		}
		_, err := Map(n, func(i int) (int, error) {
			if e, ok := fail[i]; ok {
				return 0, e
			}
			return i, nil
		})
		switch {
		case lowest < 0 && err != nil:
			t.Fatalf("trial %d: no job failed but Map returned %v", trial, err)
		case lowest >= 0 && err != fail[lowest]:
			t.Fatalf("trial %d: lowest failing index %d, Map returned %v", trial, lowest, err)
		}
	}
}

// TestMapPanicRecovery: a panicking job surfaces as a *PanicError naming
// the failing index instead of killing the process.
func TestMapPanicRecovery(t *testing.T) {
	_, err := Map(16, func(i int) (int, error) {
		if i == 11 {
			panic("sweep point exploded")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Index != 11 || pe.Value != "sweep point exploded" {
		t.Fatalf("PanicError = {Index: %d, Value: %v}, want index 11", pe.Index, pe.Value)
	}
}

// TestMapPanicOrdering: panics obey the same lowest-index-wins rule as
// errors, and mixed failures compare by index, not kind.
func TestMapPanicOrdering(t *testing.T) {
	sentinel := errors.New("regular failure")
	_, err := Map(32, func(i int) (int, error) {
		switch i {
		case 9:
			panic("first failure")
		case 20:
			return 0, sentinel
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 9 {
		t.Fatalf("want panic at index 9 to win, got %v", err)
	}
}

// TestShardedTickPartition: every item of [0,n) is covered exactly once,
// shards are contiguous ascending spans, and no shard is empty.
func TestShardedTickPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 5, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 65} {
			covered := make([]int32, n)
			p.ShardedTick(n, func(shard, lo, hi int) {
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty shard %d [%d,%d)", workers, n, shard, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: item %d covered %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
		p.Close() // idempotent
	}
}

// TestShardedTickPanic: a panicking shard propagates to the caller after
// the tick joins, and the pool stays usable afterwards.
func TestShardedTickPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("shard panic did not propagate")
			}
		}()
		p.ShardedTick(8, func(shard, lo, hi int) {
			if lo == 0 {
				panic("shard blew up")
			}
		})
	}()
	var ran atomic.Int32
	p.ShardedTick(4, func(shard, lo, hi int) { ran.Add(int32(hi - lo)) })
	if ran.Load() != 4 {
		t.Fatalf("pool wedged after panic: %d/4 items ran", ran.Load())
	}
}
