// Package par provides the deterministic fan-out helpers used by the
// experiment sweeps, the design-space exploration and the sharded cycle
// kernel. Every caller follows the same contract: jobs are mutually
// independent (each builds its own simulator with fixed seeds, or touches
// only the state it owns), results come back in job order, and the reported
// error is the one the equivalent sequential loop would have hit first.
// Under that contract a parallel sweep is byte-identical to its sequential
// ancestor — only wall-clock time changes.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"heteronoc/internal/suspend"
)

// PanicError reports a job that panicked instead of returning. Map recovers
// worker panics so one bad sweep point fails the batch with its index and
// payload instead of killing the process with a bare goroutine stack.
type PanicError struct {
	Index int // the job index that panicked
	Value any // the recovered panic value
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: job %d panicked: %v", e.Index, e.Value)
}

// Map runs fn(0..n-1) on a bounded worker pool and returns the results in
// index order. The pool size is GOMAXPROCS capped at n; indices are handed
// out in order, so for n below the pool size execution degenerates to the
// obvious one-goroutine-per-job form. If any job fails, Map returns the
// error of the lowest failing index — exactly the error a sequential
// for-loop that stops at the first failure would return — and no results.
// A job that panics is reported the same way, as a *PanicError carrying the
// failing index and the panic value.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// MapCtx is Map with cooperative cancellation: once ctx is done (or the
// context's suspend controller requests a checkpoint-suspend), no further
// indices are dispatched; jobs already running finish on their own —
// each is expected to observe the same ctx at its next cycle batch. The
// error rule extends the sequential model: an index the loop never
// reached fails with ctx.Err() (or suspend.ErrSuspended), so the reported
// error is still the one the equivalent sequential loop would hit first.
func MapCtx[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = runJob(ctx, i, fn)
			}
		}()
	}
	sus := suspend.FromContext(ctx)
	dispatched := n
	for i := 0; i < n; i++ {
		if ctx.Err() != nil || sus.Requested() {
			dispatched = i
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	// Undispatched indices fail the way the sequential loop would have:
	// with the cancellation (or suspension) that stopped the dispatch.
	for i := dispatched; i < n; i++ {
		if err := ctx.Err(); err != nil {
			errs[i] = err
		} else {
			errs[i] = suspend.ErrSuspended
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runJob invokes one job with panic recovery; a panic becomes a *PanicError
// so the error-ordering rule (lowest failing index wins) covers panics too.
func runJob[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (result T, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v}
		}
	}()
	return fn(ctx, i)
}

// Pool is a persistent set of worker goroutines for per-cycle sharding.
// Unlike Map — which spawns goroutines per batch and is amortized over
// multi-millisecond sweep jobs — a Pool is built once and reused every
// simulated cycle, so a tick costs a handful of channel operations instead
// of goroutine creation. The zero Pool is not usable; call NewPool.
type Pool struct {
	workers int
	work    chan shardJob
	wg      sync.WaitGroup
	closed  bool

	// Tick accounting (see TickStats). Plain counters written by the
	// single goroutine driving ShardedTick; read them from that goroutine
	// (or after the simulation stops), not concurrently.
	ticks       int64
	inlineTicks int64
	spans       int64
	items       int64
	maxSpan     int
	minSpan     int
}

// shardJob is one worker's share of a tick: loop stealing chunk indices
// from the shared counter and run fn over each stolen chunk's span until
// the chunks are exhausted.
type shardJob struct {
	fn           func(shard, lo, hi int)
	chunks       int
	span, extra  int // chunk c covers span items, +1 for the first extra
	next         *atomic.Int64
	done         *sync.WaitGroup
	panicked     *panicBox
	panickedOnce *sync.Once
}

// panicBox carries the first panic out of a tick back to the caller.
type panicBox struct{ value any }

// NewPool starts a pool of `workers` goroutines (minimum 1; values above
// GOMAXPROCS are allowed but cannot add real parallelism). Close the pool
// when the owning simulation is done with it.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, work: make(chan shardJob)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for j := range p.work {
				j.run()
			}
		}()
	}
	return p
}

func (j shardJob) run() {
	defer func() {
		if v := recover(); v != nil {
			j.panickedOnce.Do(func() { j.panicked.value = v })
		}
		j.done.Done()
	}()
	for {
		c := int(j.next.Add(1)) - 1
		if c >= j.chunks {
			return
		}
		lo := c * j.span
		if c < j.extra {
			lo += c
		} else {
			lo += j.extra
		}
		hi := lo + j.span
		if c < j.extra {
			hi++
		}
		j.fn(c, lo, hi)
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the worker goroutines down. The pool must be idle (no
// ShardedTick in flight). Close is idempotent.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.work)
	p.wg.Wait()
}

// stealChunkFactor oversubscribes the tick partition: each worker's fair
// share is split into this many chunks so a worker that drew light spans
// (idle routers) steals the heavy tail from its neighbors instead of
// leaving the pool waiting on one straggler.
const stealChunkFactor = 4

// Shards returns the number of contiguous chunks ShardedTick partitions n
// items into — the length a caller's per-shard sink slice must have. The
// count depends only on n and the pool size.
func (p *Pool) Shards(n int) int {
	if n <= 0 {
		return 0
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		return 1
	}
	c := w * stealChunkFactor
	if c > n {
		c = n
	}
	return c
}

// ShardedTick partitions [0,n) into Shards(n) contiguous chunks and runs
// fn(shard, lo, hi) for each chunk on the pool, blocking until every chunk
// has completed. Workers steal chunk indices from a shared counter, so
// which worker runs a chunk varies — but the partition itself depends only
// on n and the pool size, and shard s always covers items before shard
// s+1, so a caller that merges per-shard effects in shard order reproduces
// ascending item order regardless of scheduling. fn must confine its
// writes to the items it was handed (plus per-shard scratch); under that
// contract the merged state is identical for every worker count, including
// 1. A panicking chunk is re-panicked on the caller's goroutine after the
// tick drains, so the pool is never left with a wedged tick.
func (p *Pool) ShardedTick(n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := p.Shards(n)
	p.ticks++
	p.items += int64(n)
	p.spans += int64(chunks)
	if chunks == 1 {
		p.inlineTicks++
		p.noteSpan(n, n)
		// Single shard: run inline, same code path as a worker would take.
		fn(0, 0, n)
		return
	}
	span := n / chunks
	extra := n % chunks // the first `extra` chunks take one more item
	if extra > 0 {
		p.noteSpan(span+1, span)
	} else {
		p.noteSpan(span, span)
	}
	workers := p.workers
	if workers > chunks {
		workers = chunks
	}
	var next atomic.Int64
	var done sync.WaitGroup
	var once sync.Once
	var pb panicBox
	done.Add(workers)
	job := shardJob{fn: fn, chunks: chunks, span: span, extra: extra,
		next: &next, done: &done, panicked: &pb, panickedOnce: &once}
	for w := 0; w < workers; w++ {
		p.work <- job
	}
	done.Wait()
	if pb.value != nil {
		panic(pb.value)
	}
}
