// Package par provides the deterministic fan-out helper used by the
// experiment sweeps and the design-space exploration. Every caller follows
// the same contract: jobs are mutually independent (each builds its own
// simulator with fixed seeds, so parallel execution cannot change any
// simulated result), results come back in job order, and the reported error
// is the one the equivalent sequential loop would have hit first. Under
// that contract a parallel sweep is byte-identical to its sequential
// ancestor — only wall-clock time changes.
package par

import (
	"runtime"
	"sync"
)

// Map runs fn(0..n-1) on a bounded worker pool and returns the results in
// index order. The pool size is GOMAXPROCS capped at n; indices are handed
// out in order, so for n below the pool size execution degenerates to the
// obvious one-goroutine-per-job form. If any job fails, Map returns the
// error of the lowest failing index — exactly the error a sequential
// for-loop that stops at the first failure would return — and no results.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
