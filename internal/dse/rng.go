package dse

// rng is a splitmix64 generator whose entire state is one uint64, so the
// frontier file can persist the exact stream position (satellite: resume
// must replay from the precise point the killed search reached, which
// math/rand's opaque state makes awkward). Determinism matters more than
// statistical strength here: the search only needs reproducible draws.
type rng struct {
	s uint64
}

func newRNG(seed int64) *rng {
	// Mix the seed once so small seeds do not start in a low-entropy state.
	r := &rng{s: uint64(seed)}
	r.next()
	return r
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a draw in [0, n). The modulo bias is irrelevant at the
// population sizes involved and keeps the draw count per decision fixed,
// which the state serialization relies on.
func (r *rng) Intn(n int) int {
	if n <= 0 {
		panic("dse: rng.Intn on non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// Float64 returns a draw in [0, 1) with 53 bits of precision.
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *rng) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// state and setState expose the stream position for the frontier file.
func (r *rng) state() uint64     { return r.s }
func (r *rng) setState(s uint64) { r.s = s }
