package dse

import (
	"context"
	"fmt"
	"sort"

	"heteronoc/internal/par"
)

// Search runs an NSGA-II-style multi-objective evolutionary search over
// big-router placements, minimizing {probe latency, network power, router
// area} under an area budget. Evaluation is deduplicated at three layers:
// canonical-symmetry keys collapse equivalent placements before any probe
// runs, a persistent archive (carried in the frontier file) answers every
// placement this search — or a resumed ancestor — already scored, and
// runcache memoizes each probe by its full recipe so concurrent searches
// and re-runs share simulations across processes via the disk tier.

// Evaluator scores a batch of canonical placements. LocalEvaluator fans
// out on the par worker pool; serve's remote evaluator POSTs the batch to
// a nocserved worker whose shared cache dedupes across searches.
type Evaluator interface {
	EvaluateBatch(ctx context.Context, cfg EvalConfig, sets [][]int) ([]Candidate, error)
}

// LocalEvaluator evaluates probes in-process on the par worker pool.
// Results are index-ordered, so the archive order — and therefore the
// frontier file — is byte-identical regardless of worker count.
type LocalEvaluator struct{}

// EvaluateBatch implements Evaluator.
func (LocalEvaluator) EvaluateBatch(ctx context.Context, cfg EvalConfig, sets [][]int) ([]Candidate, error) {
	return par.MapCtx(ctx, len(sets), func(ctx context.Context, i int) (Candidate, error) {
		return EvaluateCtx(ctx, cfg, sets[i])
	})
}

// SearchConfig controls the evolutionary search.
type SearchConfig struct {
	// Eval fixes the probe recipe (mesh size, load, packets, workload).
	// Eval.BigCount is ignored; the genome size ranges over [MinBig, MaxBig].
	Eval EvalConfig
	// MinBig / MaxBig bound the number of big routers per candidate. Both
	// default to Eval.BigCount when zero.
	MinBig, MaxBig int
	// PopSize is the population per generation (default 24).
	PopSize int
	// Generations to run (default 20). Resuming with a larger value
	// extends the search; every archived evaluation is reused.
	Generations int
	// EvalBudget caps cumulative probe requests (archive misses) across
	// the search and its resumes; 0 = unlimited. The search stops at the
	// first generation boundary at or past the budget.
	EvalBudget int
	// AreaBudget in mm² for the feasibility constraint. 0 derives the
	// budget from a MaxBig-big-router mesh, i.e. "no more silicon than the
	// largest allowed placement".
	AreaBudget float64
	// Seed drives the search RNG (selection, crossover, mutation). The
	// probe seed lives in Eval.Seed.
	Seed int64
	// FrontierPath persists the search as an HNDSE1 file after every
	// generation; if the file exists the search resumes from it.
	FrontierPath string
	// Evaluator scores candidate batches (default LocalEvaluator).
	Evaluator Evaluator
}

// SearchResult reports the outcome.
type SearchResult struct {
	// Front is the feasible non-dominated set over the whole archive,
	// sorted by ascending latency. Front[0] is the latency-optimal point
	// under the area budget.
	Front []Candidate
	// Generations completed (cumulative across resumes).
	Generations int
	// Evals is the cumulative number of probe requests (archive misses);
	// the <10%-of-exhaustive acceptance number. Probes answered by
	// runcache still count here — runcache.Execs measures simulations.
	Evals int
	// ArchiveSize is the number of distinct canonical placements scored.
	ArchiveSize int
	// ArchiveHits counts candidates this run answered from the archive.
	ArchiveHits int
	// Resumed reports whether the search continued a frontier file.
	Resumed bool
	// AllSaturated means every evaluated placement saturated at the probe
	// load: the probe is too hot for the whole space and the front is
	// empty (cmd/dse turns this into a nonzero exit).
	AllSaturated bool
}

// normalized fills defaults; configString depends on the result, so the
// frontier hash is stable whether or not callers spelled defaults out.
func (cfg SearchConfig) normalized() SearchConfig {
	if cfg.MinBig == 0 {
		cfg.MinBig = cfg.Eval.BigCount
	}
	if cfg.MaxBig == 0 {
		cfg.MaxBig = cfg.Eval.BigCount
	}
	if cfg.MaxBig < cfg.MinBig {
		cfg.MaxBig = cfg.MinBig
	}
	if cfg.PopSize <= 0 {
		cfg.PopSize = 24
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 20
	}
	if cfg.AreaBudget == 0 {
		n := cfg.Eval.W * cfg.Eval.H
		cfg.AreaBudget = areaOf(cfg.MaxBig, n)
	}
	if cfg.Evaluator == nil {
		cfg.Evaluator = LocalEvaluator{}
	}
	return cfg
}

// areaOf is the router area of a custom placement with k big and n-k small
// routers, matching power.Area on core.NewCustom layouts.
func areaOf(k, n int) float64 {
	const smallArea, bigArea = 0.235, 0.425 // core.Specs() Table 2 numbers
	return float64(k)*bigArea + float64(n-k)*smallArea
}

// configString is the canonical identity of a search for the frontier
// file. Generations, EvalBudget, FrontierPath and the evaluator are
// excluded on purpose: extending a search or moving it between local and
// remote evaluation must resume, not restart.
func (cfg SearchConfig) configString() string {
	e := cfg.Eval
	wl := e.Workload
	if wl == "" {
		wl = "uniform"
	}
	s := fmt.Sprintf("dse-search|v1|%dx%d|bl=%t|r=%g|p=%d|probeseed=%d|wl=%s|big=%d..%d|pop=%d|seed=%d|area=%.6f",
		e.W, e.H, e.LinkRedist, e.InjectionRate, e.Packets, e.Seed, wl,
		cfg.MinBig, cfg.MaxBig, cfg.PopSize, cfg.Seed, cfg.AreaBudget)
	if e.Workload == "mixed" && e.MixedAdversarialFrac > 0 {
		s += fmt.Sprintf("|mf=%g", e.MixedAdversarialFrac)
	}
	if e.Bench != "" {
		s += fmt.Sprintf("|bench=%s|cyc=%d|warm=%d", e.Bench, e.CMPCycles, e.WarmupEntries)
	}
	return s
}

// Search runs the search to completion (see SearchCtx).
func Search(cfg SearchConfig) (SearchResult, error) {
	return SearchCtx(context.Background(), cfg)
}

// SearchCtx runs the search with cooperative cancellation. The frontier
// file (when configured) is saved after every completed generation, so a
// cancelled or killed search loses at most the generation in flight — and
// even that generation's probes sit in runcache for the resume.
func SearchCtx(ctx context.Context, cfg SearchConfig) (SearchResult, error) {
	cfg = cfg.normalized()
	if cfg.Eval.W <= 0 || cfg.Eval.H <= 0 {
		return SearchResult{}, fmt.Errorf("dse: search needs positive mesh dims, got %dx%d", cfg.Eval.W, cfg.Eval.H)
	}
	n := cfg.Eval.W * cfg.Eval.H
	if cfg.MinBig < 1 || cfg.MaxBig >= n {
		return SearchResult{}, fmt.Errorf("dse: big-router bounds %d..%d invalid for %d routers", cfg.MinBig, cfg.MaxBig, n)
	}
	hash := cfg.configString()

	s := &searcher{cfg: cfg, n: n, index: map[string]int{}}
	var res SearchResult
	if cfg.FrontierPath != "" {
		st, err := loadFrontier(cfg.FrontierPath, hash)
		if err != nil {
			return SearchResult{}, err
		}
		if st != nil {
			s.restore(st)
			res.Resumed = true
		}
	}
	r := &rng{}
	if s.gen == 0 && len(s.pop) == 0 {
		r = newRNG(cfg.Seed)
		s.pop = s.initialPopulation(r)
	} else {
		r.setState(s.rngState)
	}
	if err := s.ensureEvaluated(ctx, s.pop); err != nil {
		return SearchResult{}, err
	}
	save := func() error {
		if cfg.FrontierPath == "" {
			return nil
		}
		s.rngState = r.state()
		return saveFrontier(cfg.FrontierPath, hash, s.state())
	}
	if err := save(); err != nil {
		return SearchResult{}, err
	}

	for s.gen < cfg.Generations {
		if err := ctx.Err(); err != nil {
			return SearchResult{}, err
		}
		if cfg.EvalBudget > 0 && s.evals >= cfg.EvalBudget {
			break
		}
		offspring := s.breed(r)
		if err := s.ensureEvaluated(ctx, offspring); err != nil {
			return SearchResult{}, err
		}
		s.pop = s.environmentalSelection(append(s.pop, offspring...))
		s.gen++
		if err := save(); err != nil {
			return SearchResult{}, err
		}
	}

	res.Generations = s.gen
	res.Evals = s.evals
	res.ArchiveSize = len(s.archive)
	res.ArchiveHits = s.hits
	front := paretoFront(s.archive, cfg.AreaBudget)
	for _, i := range front {
		res.Front = append(res.Front, s.archive[i])
	}
	res.AllSaturated = len(s.archive) > 0 && len(res.Front) == 0 && allSaturated(s.archive)
	return res, nil
}

func allSaturated(cands []Candidate) bool {
	for _, c := range cands {
		if !c.Saturated {
			return false
		}
	}
	return true
}

// searcher holds the loop state; pop members are canonical sorted sets.
type searcher struct {
	cfg      SearchConfig
	n        int
	pop      [][]int
	archive  []Candidate    // evaluation order (the frontier file order)
	index    map[string]int // canonical key -> archive index
	gen      int
	evals    int
	hits     int
	rngState uint64
}

func (s *searcher) restore(st *searchState) {
	s.gen = st.Generation
	s.evals = st.Evals
	s.rngState = st.RNGState
	s.pop = st.Population
	s.archive = st.Archive
	for i, c := range s.archive {
		s.index[fmt.Sprint(c.Big)] = i
	}
}

func (s *searcher) state() *searchState {
	return &searchState{
		Generation: s.gen,
		Evals:      s.evals,
		RNGState:   s.rngState,
		Population: s.pop,
		Archive:    s.archive,
		Pareto:     paretoFront(s.archive, s.cfg.AreaBudget),
	}
}

// initialPopulation draws random canonical placements with sizes spread
// across [MinBig, MaxBig].
func (s *searcher) initialPopulation(r *rng) [][]int {
	var pop [][]int
	for i := 0; i < s.cfg.PopSize; i++ {
		k := s.cfg.MinBig + r.Intn(s.cfg.MaxBig-s.cfg.MinBig+1)
		perm := r.perm(s.n)
		set := append([]int(nil), perm[:k]...)
		sort.Ints(set)
		pop = append(pop, canonicalSet(set, s.cfg.Eval.W, s.cfg.Eval.H))
	}
	return pop
}

// ensureEvaluated scores every set not yet in the archive, appending
// results in the deterministic batch order. Duplicate keys within the
// batch collapse to one probe.
func (s *searcher) ensureEvaluated(ctx context.Context, sets [][]int) error {
	var toEval [][]int
	seen := map[string]bool{}
	for _, set := range sets {
		key := fmt.Sprint(set)
		if _, ok := s.index[key]; ok {
			s.hits++
			continue
		}
		if seen[key] {
			s.hits++
			continue
		}
		seen[key] = true
		toEval = append(toEval, set)
	}
	if len(toEval) == 0 {
		return nil
	}
	cands, err := s.cfg.Evaluator.EvaluateBatch(ctx, s.cfg.Eval, toEval)
	if err != nil {
		return err
	}
	if len(cands) != len(toEval) {
		return fmt.Errorf("dse: evaluator returned %d candidates for %d sets", len(cands), len(toEval))
	}
	for i, c := range cands {
		c.Big = toEval[i] // keep the canonical set, whatever the evaluator echoed
		s.index[fmt.Sprint(c.Big)] = len(s.archive)
		s.archive = append(s.archive, c)
	}
	s.evals += len(toEval)
	return nil
}

func (s *searcher) candidates(sets [][]int) []Candidate {
	out := make([]Candidate, len(sets))
	for i, set := range sets {
		out[i] = s.archive[s.index[fmt.Sprint(set)]]
	}
	return out
}

// breed produces PopSize offspring by binary tournament on (rank,
// crowding), set-union crossover and placement mutations.
func (s *searcher) breed(r *rng) [][]int {
	pop := s.candidates(s.pop)
	fronts := nonDominatedSort(pop, s.cfg.AreaBudget)
	rank := make([]int, len(pop))
	crowd := make([]float64, len(pop))
	for fi, f := range fronts {
		d := crowdingDistance(pop, f)
		for k, i := range f {
			rank[i] = fi
			crowd[i] = d[k]
		}
	}
	tournament := func() int {
		a, b := r.Intn(len(pop)), r.Intn(len(pop))
		if rank[a] != rank[b] {
			if rank[a] < rank[b] {
				return a
			}
			return b
		}
		if crowd[a] > crowd[b] {
			return a
		}
		return b
	}
	var off [][]int
	for len(off) < s.cfg.PopSize {
		p1, p2 := s.pop[tournament()], s.pop[tournament()]
		child := s.crossover(r, p1, p2)
		child = s.mutate(r, child)
		off = append(off, canonicalSet(child, s.cfg.Eval.W, s.cfg.Eval.H))
	}
	return off
}

// crossover samples the child from the union of both parents, with a size
// drawn between the parents' sizes — placements inherit the cells their
// parents agreed on more often than either parent's extras.
func (s *searcher) crossover(r *rng, p1, p2 []int) []int {
	if r.Float64() < 0.1 { // occasional clone keeps good parents intact
		return append([]int(nil), p1...)
	}
	union := unionSets(p1, p2)
	lo, hi := len(p1), len(p2)
	if lo > hi {
		lo, hi = hi, lo
	}
	k := lo + r.Intn(hi-lo+1)
	if k > len(union) {
		k = len(union)
	}
	perm := r.perm(len(union))
	child := make([]int, 0, k)
	for _, i := range perm[:k] {
		child = append(child, union[i])
	}
	sort.Ints(child)
	return child
}

// mutate applies one of four moves: teleport a big router, slide one to a
// mesh neighbour, resize within [MinBig, MaxBig], or symmetrize — pull the
// placement toward one of its own mirror images, which is what steers the
// search into the symmetric basins the paper's diagonal layouts occupy.
func (s *searcher) mutate(r *rng, set []int) []int {
	if len(set) == 0 {
		return set
	}
	w, h := s.cfg.Eval.W, s.cfg.Eval.H
	out := append([]int(nil), set...)
	switch r.Intn(5) {
	case 0: // teleport one router to a random free cell
		i := r.Intn(len(out))
		if free, ok := s.randomFree(r, out); ok {
			out[i] = free
		}
	case 1: // slide one router to a random free neighbour
		i := r.Intn(len(out))
		x, y := out[i]%w, out[i]/w
		dirs := [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
		d := dirs[r.Intn(4)]
		nx, ny := x+d[0], y+d[1]
		if nx >= 0 && nx < w && ny >= 0 && ny < h {
			cand := ny*w + nx
			if !contains(out, cand) {
				out[i] = cand
			}
		}
	case 2: // resize: add or drop one big router within bounds
		if r.Intn(2) == 0 && len(out) < s.cfg.MaxBig {
			if free, ok := s.randomFree(r, out); ok {
				out = append(out, free)
			}
		} else if len(out) > s.cfg.MinBig {
			i := r.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		}
	case 3: // symmetrize: resample from set ∪ mirror(set)
		t := 1 + r.Intn(symmetryCount(w, h)-1)
		mirrored := make([]int, len(out))
		for i, cell := range out {
			x, y := cell%w, cell/w
			nx, ny := symmetry(t, x, y, w, h)
			mirrored[i] = ny*w + nx
		}
		sort.Ints(mirrored)
		union := unionSets(out, mirrored)
		k := len(out)
		perm := r.perm(len(union))
		out = out[:0]
		for _, i := range perm[:k] {
			out = append(out, union[i])
		}
	case 4: // no-op: pure crossover child
	}
	sort.Ints(out)
	return out
}

// randomFree picks a uniformly random cell outside set.
func (s *searcher) randomFree(r *rng, set []int) (int, bool) {
	if len(set) >= s.n {
		return 0, false
	}
	// Draw the free cell by its rank among free cells — one rng draw, no
	// rejection loop, so the draw count stays deterministic.
	rank := r.Intn(s.n - len(set))
	inSet := make(map[int]bool, len(set))
	for _, v := range set {
		inSet[v] = true
	}
	for cell := 0; cell < s.n; cell++ {
		if inSet[cell] {
			continue
		}
		if rank == 0 {
			return cell, true
		}
		rank--
	}
	return 0, false
}

// environmentalSelection dedupes the combined parent+offspring pool by
// canonical key and keeps the PopSize best by rank then crowding.
func (s *searcher) environmentalSelection(pool [][]int) [][]int {
	var unique [][]int
	seen := map[string]bool{}
	for _, set := range pool {
		key := fmt.Sprint(set)
		if !seen[key] {
			seen[key] = true
			unique = append(unique, set)
		}
	}
	cands := s.candidates(unique)
	keep := selectNSGA(cands, s.cfg.AreaBudget, s.cfg.PopSize)
	next := make([][]int, 0, len(keep))
	for _, i := range keep {
		next = append(next, unique[i])
	}
	return next
}

func unionSets(a, b []int) []int {
	seen := map[int]bool{}
	var u []int
	for _, v := range a {
		if !seen[v] {
			seen[v] = true
			u = append(u, v)
		}
	}
	for _, v := range b {
		if !seen[v] {
			seen[v] = true
			u = append(u, v)
		}
	}
	sort.Ints(u)
	return u
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
