// Package dse implements the design-space exploration of Section 2
// (footnote 4): exhaustive enumeration of big-router placements on a small
// mesh, symmetry reduction, and short-simulation scoring, which is how the
// paper selected the six 8x8 layouts from thousands of 4x4 candidates.
package dse

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"

	"heteronoc/internal/core"
	"heteronoc/internal/par"
	"heteronoc/internal/power"
	"heteronoc/internal/runcache"
	"heteronoc/internal/traffic"
)

// Candidate is one placement with its evaluation under the probe load.
// Latency is the primary objective the paper's footnote-4 sweep scored;
// the search adds the network-power and router-area objectives so the
// frontier trades performance against the paper's Table 2 budgets.
type Candidate struct {
	Big        []int
	AvgLatency float64 // cycles at the probe load
	LatencyNS  float64 // AvgLatency at the layout's network clock
	PowerW     float64 // Orion-model network power at the probe activity
	AreaMM2    float64 // total router area from the Table 2 synthesis numbers
	Saturated  bool
}

// Objectives returns the minimization vector {latency ns, power W, area mm²}.
func (c Candidate) Objectives() [3]float64 {
	return [3]float64{c.LatencyNS, c.PowerW, c.AreaMM2}
}

// Combinations returns C(n, k) — the paper quotes 1820, 8008 and 12870
// candidate counts for (4,12), (6,10) and (8,8) splits on a 4x4 mesh.
func Combinations(n, k int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(k))
}

// canonical returns the lexicographically smallest representation of a
// placement under the mesh symmetries (see canonicalSet), used to prune
// equivalent layouts.
func canonical(big []int, w, h int) string {
	return fmt.Sprint(canonicalSet(big, w, h))
}

// canonicalSet returns the symmetry-orbit representative of a placement:
// the lexicographically smallest image of the set under every valid mesh
// symmetry, as a sorted router-index slice. The search evaluates this
// representative, so any two equivalent placements share one probe.
func canonicalSet(big []int, w, h int) []int {
	var best []int
	bestKey := ""
	for s := 0; s < symmetryCount(w, h); s++ {
		mapped := make([]int, len(big))
		for i, r := range big {
			x, y := r%w, r/w
			nx, ny := symmetry(s, x, y, w, h)
			mapped[i] = ny*w + nx
		}
		sort.Ints(mapped)
		key := fmt.Sprint(mapped)
		if bestKey == "" || key < bestKey {
			bestKey, best = key, mapped
		}
	}
	return best
}

// symmetryCount is the order of the mesh's symmetry group: the full
// 8-element dihedral group for squares, but only the 4-element subgroup
// {identity, 180°, horizontal mirror, vertical mirror} for rectangles —
// a 90° rotation of a w≠h grid is not a self-map.
func symmetryCount(w, h int) int {
	if w == h {
		return 8
	}
	return 4
}

// symmetry applies the s-th valid transform to a grid coordinate. For
// square meshes s ∈ [0,8): rotate s%4 quarter turns, then mirror for
// s >= 4. For rectangular meshes s ∈ [0,4): identity, 180° rotation and
// the two axis mirrors, the only transforms that keep the grid's shape.
func symmetry(s, x, y, w, h int) (int, int) {
	if w == h {
		for i := 0; i < s%4; i++ { // rotate s%4 times by 90 degrees
			x, y = w-1-y, x
		}
		if s >= 4 { // then mirror
			x = w - 1 - x
		}
		return x, y
	}
	switch s % 4 {
	case 1: // 180° rotation
		x, y = w-1-x, h-1-y
	case 2: // horizontal mirror
		x = w - 1 - x
	case 3: // vertical mirror
		y = h - 1 - y
	}
	return x, y
}

// Enumerate yields every placement of k big routers on a W x H mesh,
// reduced by square symmetry when reduceSymmetry is set. The callback
// receives the big-router set; enumeration stops early if it returns false.
func Enumerate(w, h, k int, reduceSymmetry bool, fn func(big []int) bool) int {
	n := w * h
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	seen := map[string]bool{}
	count := 0
	for {
		if reduceSymmetry {
			key := canonical(idx, w, h)
			if !seen[key] {
				seen[key] = true
				count++
				cp := append([]int(nil), idx...)
				if !fn(cp) {
					return count
				}
			}
		} else {
			count++
			cp := append([]int(nil), idx...)
			if !fn(cp) {
				return count
			}
		}
		// Next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return count
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// EvalConfig controls the scoring simulation.
type EvalConfig struct {
	W, H int
	// BigCount big routers per layout.
	BigCount int
	// LinkRedist evaluates +BL (true) or +B (false) designs.
	LinkRedist bool
	// InjectionRate is the probe load in packets/node/cycle.
	InjectionRate float64
	// Packets to measure per candidate (short probes; the paper ran
	// thousands of these).
	Packets int
	// ReduceSymmetry prunes dihedral-equivalent placements.
	ReduceSymmetry bool
	// MaxCandidates bounds the sweep (0 = all).
	MaxCandidates int
	Seed          int64
	// Workload selects the probe's traffic shape: "" or "uniform" for the
	// default uniform-random probe, "hotspot" for center-hotspot traffic,
	// "mc-incast" for corner incast — so the search can optimize a
	// placement for the adversarial classes, not just UR. "mixed" scores
	// the mean of a uniform probe at InjectionRate plus hotspot and
	// mc-incast probes at MixedAdversarialFrac times that rate, mirroring
	// how the paper judges layouts across its uniform, hotspot and
	// memory-traffic classes: a placement has to serve the bulk load, the
	// hot center and the converging MC traffic at once.
	Workload string
	// MixedAdversarialFrac scales the hotspot and incast components of a
	// "mixed" probe relative to InjectionRate (default 0.3 — both
	// patterns saturate far earlier than UR).
	MixedAdversarialFrac float64
	// Bench switches the probe from synthetic traffic to a full CMP run
	// of the named workload (trace.WorkloadTraces). The injection-rate,
	// packet and workload knobs above are ignored; CMPCycles and
	// WarmupEntries govern the run instead. Each candidate restores the
	// layout-independent shared warm checkpoint (internal/warm), so a
	// cold evaluation costs one network simulation, not a warmup replay.
	Bench string
	// CMPCycles is the measured run length of a Bench evaluation.
	CMPCycles int
	// WarmupEntries is the per-core warmup budget of a Bench evaluation;
	// all candidates of one search share a single warm checkpoint.
	WarmupEntries int
}

// probePattern maps the Workload knob to a traffic pattern.
func probePattern(cfg EvalConfig) (traffic.Pattern, error) {
	n := cfg.W * cfg.H
	switch cfg.Workload {
	case "", "uniform":
		return traffic.UniformRandom{N: n}, nil
	case "hotspot":
		// Hot terminal at the mesh center, 30% converging traffic.
		return traffic.Hotspot{N: n, Hot: n/2 + cfg.W/2, Frac: 0.3}, nil
	case "mc-incast":
		// Traffic converges on the corner terminals where the default
		// memory placement puts its controllers.
		return traffic.Incast{N: n, Sinks: []int{0, cfg.W - 1, n - cfg.W, n - 1}, Frac: 0.6}, nil
	default:
		return nil, fmt.Errorf("dse: unknown probe workload %q", cfg.Workload)
	}
}

// Explore scores placements and returns them sorted best first. The
// enumeration order is deterministic, so the candidate list is fixed before
// any simulation runs; the probe simulations are then independent
// (fixed-seed, one network each) and fan out on the par worker pool without
// affecting any score.
func Explore(cfg EvalConfig) ([]Candidate, error) {
	return ExploreCtx(context.Background(), cfg)
}

// ExploreCtx is Explore with cooperative cancellation, observed between
// candidate probes (dispatch stops) and inside each probe's step loop.
func ExploreCtx(ctx context.Context, cfg EvalConfig) ([]Candidate, error) {
	var sets [][]int
	Enumerate(cfg.W, cfg.H, cfg.BigCount, cfg.ReduceSymmetry, func(big []int) bool {
		sets = append(sets, big)
		return cfg.MaxCandidates == 0 || len(sets) < cfg.MaxCandidates
	})
	out, err := par.MapCtx(ctx, len(sets), func(ctx context.Context, i int) (Candidate, error) {
		return EvaluateCtx(ctx, cfg, sets[i])
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Saturated != out[j].Saturated {
			return !out[i].Saturated
		}
		return out[i].AvgLatency < out[j].AvgLatency
	})
	return out, nil
}

// Evaluate scores a single placement with a short uniform-random probe.
// Probes are deterministic (fixed seed, fixed configuration), so scores
// are memoized in runcache: Anneal revisiting a placement, or an Explore
// re-run in the same process, reuses the first probe.
func Evaluate(cfg EvalConfig, bigSet []int) (Candidate, error) {
	return EvaluateCtx(context.Background(), cfg, bigSet)
}

// EvaluateCtx is Evaluate with a context; the probe's step loop observes
// it at cycle-batch granularity, and the probe checkpoint-suspends under
// its cache key like any other network run.
func EvaluateCtx(ctx context.Context, cfg EvalConfig, bigSet []int) (Candidate, error) {
	if cfg.Bench != "" {
		return evaluateCMPCached(ctx, cfg, bigSet)
	}
	if cfg.Workload == "mixed" {
		return evaluateMixed(ctx, cfg, bigSet)
	}
	// dse2: the candidate gained power/area objectives, so v1 disk entries
	// (which would gob-decode with those fields zero) must miss.
	key := fmt.Sprintf("dse2|%dx%d|big=%v|bl=%t|r=%g|p=%d|seed=%d",
		cfg.W, cfg.H, bigSet, cfg.LinkRedist, cfg.InjectionRate, cfg.Packets, cfg.Seed)
	if cfg.Workload != "" && cfg.Workload != "uniform" {
		// Appended only when set, so default-probe keys (and their disk
		// cache) stay stable across this addition.
		key += "|wl=" + cfg.Workload
	}
	return runcache.ForCtx(ctx, key, func(ctx context.Context) (Candidate, error) {
		return evaluateUncached(ctx, key, cfg, bigSet)
	})
}

// evaluateMixed scores a placement as the mean of a uniform-random probe
// and cooler hotspot and mc-incast probes — a layout must serve the bulk
// load, the hot center and the converging memory traffic at once, which is
// exactly the triple duty the paper's diagonal placements are designed
// for. Each component probe is cached under its own key, so a mixed
// search shares probes with pure-workload searches and re-runs cost zero
// simulation.
func evaluateMixed(ctx context.Context, cfg EvalConfig, bigSet []int) (Candidate, error) {
	frac := cfg.MixedAdversarialFrac
	if frac <= 0 {
		frac = 0.3
	}
	parts := make([]Candidate, 3)
	for i, wl := range []string{"uniform", "hotspot", "mc-incast"} {
		sub := cfg
		sub.Workload = wl
		sub.MixedAdversarialFrac = 0
		if wl != "uniform" {
			sub.InjectionRate = cfg.InjectionRate * frac
		}
		c, err := EvaluateCtx(ctx, sub, bigSet)
		if err != nil {
			return Candidate{}, err
		}
		parts[i] = c
	}
	out := Candidate{Big: bigSet, AreaMM2: parts[0].AreaMM2}
	for _, p := range parts {
		out.AvgLatency += p.AvgLatency / 3
		out.LatencyNS += p.LatencyNS / 3
		out.PowerW += p.PowerW / 3
		out.Saturated = out.Saturated || p.Saturated
	}
	return out, nil
}

func evaluateUncached(ctx context.Context, key string, cfg EvalConfig, bigSet []int) (Candidate, error) {
	layout := core.NewCustom(fmt.Sprintf("dse%v", bigSet), cfg.W, cfg.H, bigSet, cfg.LinkRedist)
	net, err := layout.Network()
	if err != nil {
		return Candidate{}, err
	}
	pat, err := probePattern(cfg)
	if err != nil {
		return Candidate{}, err
	}
	res, err := traffic.RunCtx(ctx, net, traffic.RunConfig{
		Pattern:        pat,
		Process:        traffic.Bernoulli{P: cfg.InjectionRate},
		DataFlits:      layout.DataPacketFlits(),
		WarmupPackets:  cfg.Packets / 10,
		MeasurePackets: cfg.Packets,
		Seed:           cfg.Seed,
		MaxCycles:      int64(cfg.Packets) * 100,
		SuspendKey:     key,
	})
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{
		Big:        bigSet,
		AvgLatency: res.AvgLatency,
		LatencyNS:  res.AvgLatency / layout.FreqGHz(),
		PowerW:     power.Network(power.NewModel(), layout, res.Activity).Total(),
		AreaMM2:    power.Area(layout),
		Saturated:  res.Saturated,
	}, nil
}

// DiagonalScore reports where the diagonal placement ranks within a result
// set (1 = best); used to confirm the paper's conclusion that diagonal
// placements score near the top.
func DiagonalScore(results []Candidate, w, h int) (rank int, found bool) {
	diag := map[int]bool{}
	for _, r := range core.BigRouters(core.PlacementDiagonal, w, h) {
		diag[r] = true
	}
	for i, c := range results {
		if len(c.Big) != len(diag) {
			continue
		}
		all := true
		for _, b := range c.Big {
			if !diag[b] {
				all = false
				break
			}
		}
		if all {
			return i + 1, true
		}
	}
	return 0, false
}

// Anneal searches the 8x8 placement space the paper calls infeasible to
// sweep (C(64,16) = 4.89e14 candidates) with simulated annealing: start
// from a random placement of BigCount big routers, propose single-router
// swaps, and accept uphill moves with a falling temperature. The returned
// history lets callers check convergence; the final candidate is the best
// placement seen.
type AnnealConfig struct {
	Eval  EvalConfig
	Steps int
	// Seed drives both the proposal chain and the acceptance draws.
	Seed int64
	// StartTemp is the initial acceptance temperature in latency cycles.
	StartTemp float64
}

// AnnealResult reports the search outcome.
type AnnealResult struct {
	Best     Candidate
	Initial  Candidate
	Accepted int
	Steps    int
}

// Anneal runs the search. It is deterministic for a given configuration.
func Anneal(cfg AnnealConfig) (AnnealResult, error) {
	return AnnealCtx(context.Background(), cfg)
}

// AnnealCtx is Anneal with cooperative cancellation between (and inside)
// the chain's probe evaluations.
func AnnealCtx(ctx context.Context, cfg AnnealConfig) (AnnealResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Eval.W * cfg.Eval.H
	k := cfg.Eval.BigCount
	if cfg.Steps <= 0 {
		cfg.Steps = 50
	}
	if cfg.StartTemp <= 0 {
		cfg.StartTemp = 5
	}
	// Random initial placement.
	perm := rng.Perm(n)
	cur := append([]int(nil), perm[:k]...)
	sort.Ints(cur)
	curCand, err := EvaluateCtx(ctx, cfg.Eval, cur)
	if err != nil {
		return AnnealResult{}, err
	}
	res := AnnealResult{Best: curCand, Initial: curCand, Steps: cfg.Steps}
	for step := 0; step < cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return AnnealResult{}, err
		}
		temp := cfg.StartTemp * (1 - float64(step)/float64(cfg.Steps))
		// Propose: swap one big router with one small position.
		next := append([]int(nil), cur...)
		inSet := map[int]bool{}
		for _, r := range next {
			inSet[r] = true
		}
		out := rng.Intn(k)
		var repl int
		for {
			repl = rng.Intn(n)
			if !inSet[repl] {
				break
			}
		}
		next[out] = repl
		sort.Ints(next)
		cand, err := EvaluateCtx(ctx, cfg.Eval, next)
		if err != nil {
			return AnnealResult{}, err
		}
		delta := cand.AvgLatency - curCand.AvgLatency
		if cand.Saturated && !curCand.Saturated {
			delta += 1000 // saturation is always a big step backwards
		}
		if delta <= 0 || (temp > 0 && rng.Float64() < math.Exp(-delta/temp)) {
			cur, curCand = next, cand
			res.Accepted++
		}
		if !curCand.Saturated && (res.Best.Saturated || curCand.AvgLatency < res.Best.AvgLatency) {
			res.Best = curCand
		}
	}
	return res, nil
}
