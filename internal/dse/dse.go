// Package dse implements the design-space exploration of Section 2
// (footnote 4): exhaustive enumeration of big-router placements on a small
// mesh, symmetry reduction, and short-simulation scoring, which is how the
// paper selected the six 8x8 layouts from thousands of 4x4 candidates.
package dse

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"

	"heteronoc/internal/core"
	"heteronoc/internal/par"
	"heteronoc/internal/runcache"
	"heteronoc/internal/traffic"
)

// Candidate is one placement with its evaluation score.
type Candidate struct {
	Big        []int
	AvgLatency float64 // cycles at the probe load
	Saturated  bool
}

// Combinations returns C(n, k) — the paper quotes 1820, 8008 and 12870
// candidate counts for (4,12), (6,10) and (8,8) splits on a 4x4 mesh.
func Combinations(n, k int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(k))
}

// canonical returns the lexicographically smallest representation of a
// placement under the 8 symmetries of the square (rotations/reflections),
// used to prune equivalent layouts.
func canonical(big []int, w, h int) string {
	best := ""
	for s := 0; s < 8; s++ {
		mapped := make([]int, len(big))
		for i, r := range big {
			x, y := r%w, r/w
			nx, ny := symmetry(s, x, y, w, h)
			mapped[i] = ny*w + nx
		}
		sort.Ints(mapped)
		key := fmt.Sprint(mapped)
		if best == "" || key < best {
			best = key
		}
	}
	return best
}

// symmetry applies the s-th dihedral transform to a grid coordinate.
func symmetry(s, x, y, w, h int) (int, int) {
	for i := 0; i < s%4; i++ { // rotate s%4 times by 90 degrees
		x, y = h-1-y, x
		w, h = h, w
	}
	if s >= 4 { // then mirror
		x = w - 1 - x
	}
	return x, y
}

// Enumerate yields every placement of k big routers on a W x H mesh,
// reduced by square symmetry when reduceSymmetry is set. The callback
// receives the big-router set; enumeration stops early if it returns false.
func Enumerate(w, h, k int, reduceSymmetry bool, fn func(big []int) bool) int {
	n := w * h
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	seen := map[string]bool{}
	count := 0
	for {
		if reduceSymmetry {
			key := canonical(idx, w, h)
			if !seen[key] {
				seen[key] = true
				count++
				cp := append([]int(nil), idx...)
				if !fn(cp) {
					return count
				}
			}
		} else {
			count++
			cp := append([]int(nil), idx...)
			if !fn(cp) {
				return count
			}
		}
		// Next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return count
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// EvalConfig controls the scoring simulation.
type EvalConfig struct {
	W, H int
	// BigCount big routers per layout.
	BigCount int
	// LinkRedist evaluates +BL (true) or +B (false) designs.
	LinkRedist bool
	// InjectionRate is the probe load in packets/node/cycle.
	InjectionRate float64
	// Packets to measure per candidate (short probes; the paper ran
	// thousands of these).
	Packets int
	// ReduceSymmetry prunes dihedral-equivalent placements.
	ReduceSymmetry bool
	// MaxCandidates bounds the sweep (0 = all).
	MaxCandidates int
	Seed          int64
	// Workload selects the probe's traffic shape: "" or "uniform" for the
	// default uniform-random probe, "hotspot" for center-hotspot traffic,
	// "mc-incast" for corner incast — so the search can optimize a
	// placement for the adversarial classes, not just UR.
	Workload string
}

// probePattern maps the Workload knob to a traffic pattern.
func probePattern(cfg EvalConfig) (traffic.Pattern, error) {
	n := cfg.W * cfg.H
	switch cfg.Workload {
	case "", "uniform":
		return traffic.UniformRandom{N: n}, nil
	case "hotspot":
		// Hot terminal at the mesh center, 30% converging traffic.
		return traffic.Hotspot{N: n, Hot: n/2 + cfg.W/2, Frac: 0.3}, nil
	case "mc-incast":
		// Traffic converges on the corner terminals where the default
		// memory placement puts its controllers.
		return traffic.Incast{N: n, Sinks: []int{0, cfg.W - 1, n - cfg.W, n - 1}, Frac: 0.6}, nil
	default:
		return nil, fmt.Errorf("dse: unknown probe workload %q", cfg.Workload)
	}
}

// Explore scores placements and returns them sorted best first. The
// enumeration order is deterministic, so the candidate list is fixed before
// any simulation runs; the probe simulations are then independent
// (fixed-seed, one network each) and fan out on the par worker pool without
// affecting any score.
func Explore(cfg EvalConfig) ([]Candidate, error) {
	return ExploreCtx(context.Background(), cfg)
}

// ExploreCtx is Explore with cooperative cancellation, observed between
// candidate probes (dispatch stops) and inside each probe's step loop.
func ExploreCtx(ctx context.Context, cfg EvalConfig) ([]Candidate, error) {
	var sets [][]int
	Enumerate(cfg.W, cfg.H, cfg.BigCount, cfg.ReduceSymmetry, func(big []int) bool {
		sets = append(sets, big)
		return cfg.MaxCandidates == 0 || len(sets) < cfg.MaxCandidates
	})
	out, err := par.MapCtx(ctx, len(sets), func(ctx context.Context, i int) (Candidate, error) {
		return EvaluateCtx(ctx, cfg, sets[i])
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Saturated != out[j].Saturated {
			return !out[i].Saturated
		}
		return out[i].AvgLatency < out[j].AvgLatency
	})
	return out, nil
}

// Evaluate scores a single placement with a short uniform-random probe.
// Probes are deterministic (fixed seed, fixed configuration), so scores
// are memoized in runcache: Anneal revisiting a placement, or an Explore
// re-run in the same process, reuses the first probe.
func Evaluate(cfg EvalConfig, bigSet []int) (Candidate, error) {
	return EvaluateCtx(context.Background(), cfg, bigSet)
}

// EvaluateCtx is Evaluate with a context; the probe's step loop observes
// it at cycle-batch granularity, and the probe checkpoint-suspends under
// its cache key like any other network run.
func EvaluateCtx(ctx context.Context, cfg EvalConfig, bigSet []int) (Candidate, error) {
	key := fmt.Sprintf("dse|%dx%d|big=%v|bl=%t|r=%g|p=%d|seed=%d",
		cfg.W, cfg.H, bigSet, cfg.LinkRedist, cfg.InjectionRate, cfg.Packets, cfg.Seed)
	if cfg.Workload != "" && cfg.Workload != "uniform" {
		// Appended only when set, so default-probe keys (and their disk
		// cache) stay stable across this addition.
		key += "|wl=" + cfg.Workload
	}
	return runcache.ForCtx(ctx, key, func(ctx context.Context) (Candidate, error) {
		return evaluateUncached(ctx, key, cfg, bigSet)
	})
}

func evaluateUncached(ctx context.Context, key string, cfg EvalConfig, bigSet []int) (Candidate, error) {
	layout := core.NewCustom(fmt.Sprintf("dse%v", bigSet), cfg.W, cfg.H, bigSet, cfg.LinkRedist)
	net, err := layout.Network()
	if err != nil {
		return Candidate{}, err
	}
	pat, err := probePattern(cfg)
	if err != nil {
		return Candidate{}, err
	}
	res, err := traffic.RunCtx(ctx, net, traffic.RunConfig{
		Pattern:        pat,
		Process:        traffic.Bernoulli{P: cfg.InjectionRate},
		DataFlits:      layout.DataPacketFlits(),
		WarmupPackets:  cfg.Packets / 10,
		MeasurePackets: cfg.Packets,
		Seed:           cfg.Seed,
		MaxCycles:      int64(cfg.Packets) * 100,
		SuspendKey:     key,
	})
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{Big: bigSet, AvgLatency: res.AvgLatency, Saturated: res.Saturated}, nil
}

// DiagonalScore reports where the diagonal placement ranks within a result
// set (1 = best); used to confirm the paper's conclusion that diagonal
// placements score near the top.
func DiagonalScore(results []Candidate, w, h int) (rank int, found bool) {
	diag := map[int]bool{}
	for _, r := range core.BigRouters(core.PlacementDiagonal, w, h) {
		diag[r] = true
	}
	for i, c := range results {
		if len(c.Big) != len(diag) {
			continue
		}
		all := true
		for _, b := range c.Big {
			if !diag[b] {
				all = false
				break
			}
		}
		if all {
			return i + 1, true
		}
	}
	return 0, false
}

// Anneal searches the 8x8 placement space the paper calls infeasible to
// sweep (C(64,16) = 4.89e14 candidates) with simulated annealing: start
// from a random placement of BigCount big routers, propose single-router
// swaps, and accept uphill moves with a falling temperature. The returned
// history lets callers check convergence; the final candidate is the best
// placement seen.
type AnnealConfig struct {
	Eval  EvalConfig
	Steps int
	// Seed drives both the proposal chain and the acceptance draws.
	Seed int64
	// StartTemp is the initial acceptance temperature in latency cycles.
	StartTemp float64
}

// AnnealResult reports the search outcome.
type AnnealResult struct {
	Best     Candidate
	Initial  Candidate
	Accepted int
	Steps    int
}

// Anneal runs the search. It is deterministic for a given configuration.
func Anneal(cfg AnnealConfig) (AnnealResult, error) {
	return AnnealCtx(context.Background(), cfg)
}

// AnnealCtx is Anneal with cooperative cancellation between (and inside)
// the chain's probe evaluations.
func AnnealCtx(ctx context.Context, cfg AnnealConfig) (AnnealResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Eval.W * cfg.Eval.H
	k := cfg.Eval.BigCount
	if cfg.Steps <= 0 {
		cfg.Steps = 50
	}
	if cfg.StartTemp <= 0 {
		cfg.StartTemp = 5
	}
	// Random initial placement.
	perm := rng.Perm(n)
	cur := append([]int(nil), perm[:k]...)
	sort.Ints(cur)
	curCand, err := EvaluateCtx(ctx, cfg.Eval, cur)
	if err != nil {
		return AnnealResult{}, err
	}
	res := AnnealResult{Best: curCand, Initial: curCand, Steps: cfg.Steps}
	for step := 0; step < cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return AnnealResult{}, err
		}
		temp := cfg.StartTemp * (1 - float64(step)/float64(cfg.Steps))
		// Propose: swap one big router with one small position.
		next := append([]int(nil), cur...)
		inSet := map[int]bool{}
		for _, r := range next {
			inSet[r] = true
		}
		out := rng.Intn(k)
		var repl int
		for {
			repl = rng.Intn(n)
			if !inSet[repl] {
				break
			}
		}
		next[out] = repl
		sort.Ints(next)
		cand, err := EvaluateCtx(ctx, cfg.Eval, next)
		if err != nil {
			return AnnealResult{}, err
		}
		delta := cand.AvgLatency - curCand.AvgLatency
		if cand.Saturated && !curCand.Saturated {
			delta += 1000 // saturation is always a big step backwards
		}
		if delta <= 0 || (temp > 0 && rng.Float64() < math.Exp(-delta/temp)) {
			cur, curCand = next, cand
			res.Accepted++
		}
		if !curCand.Saturated && (res.Best.Saturated || curCand.AvgLatency < res.Best.AvgLatency) {
			res.Best = curCand
		}
	}
	return res, nil
}
