package dse

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// The HNDSE1 frontier file persists a search mid-flight so a killed search
// resumes exactly where it stopped and an extended search (more
// generations, wider budget) reuses every prior evaluation. Layout,
// following the NOCCKPT01 container discipline (magic, uvarint-framed
// body, CRC-32/IEEE little-endian footer over everything before it):
//
//	"HNDSE1"                      6-byte magic
//	uvarint version               currently 1
//	string  config hash           canonical search-config string (see
//	                              SearchConfig.configString); generations
//	                              and eval budget are deliberately excluded
//	uvarint generation            completed generations
//	uvarint evals                 cumulative archive misses (probe requests)
//	u64     rng state             splitmix64 stream position
//	population                    count, then each member as a router set
//	archive                       count, then each evaluated candidate:
//	                              set + 4 float64 objectives + saturated
//	pareto                        count, then archive indices of the front
//	u32     CRC-32 (IEEE, LE)
//
// Sets are stored as uvarint length plus delta-encoded sorted indices.
// Writes go to a temp file in the same directory and rename into place,
// so a crash mid-save leaves the previous frontier intact.

const frontierMagic = "HNDSE1"

// ErrFrontierCorrupt wraps any structural failure loading a frontier file.
var ErrFrontierCorrupt = errors.New("dse: corrupt frontier file")

// ErrFrontierConfig reports a frontier whose config hash does not match
// the resuming search — resuming would silently mix incompatible
// objective spaces, so it is an error rather than a fresh start.
var ErrFrontierConfig = errors.New("dse: frontier config mismatch")

// searchState is everything the loop needs to continue a search.
type searchState struct {
	Generation int
	Evals      int
	RNGState   uint64
	Population [][]int
	Archive    []Candidate // evaluation order; Big sets are canonical
	Pareto     []int       // archive indices
}

type frontierEncoder struct {
	buf []byte
}

func (e *frontierEncoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *frontierEncoder) u64(v uint64)     { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *frontierEncoder) f64(v float64)    { e.u64(math.Float64bits(v)) }
func (e *frontierEncoder) boolean(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}
func (e *frontierEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *frontierEncoder) set(s []int) {
	e.uvarint(uint64(len(s)))
	prev := 0
	for _, v := range s { // sorted, so deltas are non-negative
		e.uvarint(uint64(v - prev))
		prev = v
	}
}

type frontierDecoder struct {
	buf []byte
	off int
	err error
}

func (d *frontierDecoder) fail(why string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrFrontierCorrupt, why, d.off)
	}
}
func (d *frontierDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}
func (d *frontierDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}
func (d *frontierDecoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *frontierDecoder) boolean() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("truncated bool")
		return false
	}
	v := d.buf[d.off]
	d.off++
	return v != 0
}
func (d *frontierDecoder) str(max int) string {
	n := int(d.uvarint())
	if d.err != nil {
		return ""
	}
	if n > max || d.off+n > len(d.buf) {
		d.fail("bad string length")
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}
func (d *frontierDecoder) set(maxLen int) []int {
	n := int(d.uvarint())
	if d.err != nil {
		return nil
	}
	if n > maxLen {
		d.fail("set too large")
		return nil
	}
	out := make([]int, n)
	prev := 0
	for i := range out {
		prev += int(d.uvarint())
		out[i] = prev
	}
	return out
}

// encodeFrontier serializes a search state to HNDSE1 bytes.
func encodeFrontier(configHash string, st *searchState) []byte {
	e := &frontierEncoder{buf: []byte(frontierMagic)}
	e.uvarint(1) // version
	e.str(configHash)
	e.uvarint(uint64(st.Generation))
	e.uvarint(uint64(st.Evals))
	e.u64(st.RNGState)
	e.uvarint(uint64(len(st.Population)))
	for _, p := range st.Population {
		e.set(p)
	}
	e.uvarint(uint64(len(st.Archive)))
	for _, c := range st.Archive {
		e.set(c.Big)
		e.f64(c.AvgLatency)
		e.f64(c.LatencyNS)
		e.f64(c.PowerW)
		e.f64(c.AreaMM2)
		e.boolean(c.Saturated)
	}
	e.uvarint(uint64(len(st.Pareto)))
	for _, i := range st.Pareto {
		e.uvarint(uint64(i))
	}
	crc := crc32.ChecksumIEEE(e.buf)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc)
	return e.buf
}

// decodeFrontier parses HNDSE1 bytes, checking magic, version, CRC and the
// config hash (wantHash == "" skips the config check, for inspection).
func decodeFrontier(b []byte, wantHash string) (*searchState, error) {
	if len(b) < len(frontierMagic)+4 || string(b[:len(frontierMagic)]) != frontierMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrFrontierCorrupt)
	}
	body, foot := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(foot) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrFrontierCorrupt)
	}
	d := &frontierDecoder{buf: body, off: len(frontierMagic)}
	if v := d.uvarint(); d.err == nil && v != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFrontierCorrupt, v)
	}
	hash := d.str(4096)
	if d.err == nil && wantHash != "" && hash != wantHash {
		return nil, fmt.Errorf("%w: file has %q, search wants %q", ErrFrontierConfig, hash, wantHash)
	}
	st := &searchState{
		Generation: int(d.uvarint()),
		Evals:      int(d.uvarint()),
		RNGState:   d.u64(),
	}
	const maxCount = 1 << 22 // sanity bound against corrupt counts
	np := d.uvarint()
	if np > maxCount {
		d.fail("population count")
	}
	for i := uint64(0); i < np && d.err == nil; i++ {
		st.Population = append(st.Population, d.set(1<<16))
	}
	na := d.uvarint()
	if na > maxCount {
		d.fail("archive count")
	}
	for i := uint64(0); i < na && d.err == nil; i++ {
		c := Candidate{Big: d.set(1 << 16)}
		c.AvgLatency = d.f64()
		c.LatencyNS = d.f64()
		c.PowerW = d.f64()
		c.AreaMM2 = d.f64()
		c.Saturated = d.boolean()
		st.Archive = append(st.Archive, c)
	}
	nf := d.uvarint()
	if nf > na {
		d.fail("pareto count")
	}
	for i := uint64(0); i < nf && d.err == nil; i++ {
		idx := int(d.uvarint())
		if idx >= len(st.Archive) {
			d.fail("pareto index")
			break
		}
		st.Pareto = append(st.Pareto, idx)
	}
	if d.err == nil && d.off != len(body) {
		d.fail("trailing bytes")
	}
	if d.err != nil {
		return nil, d.err
	}
	return st, nil
}

// saveFrontier writes the state atomically: temp file in the same
// directory, fsync-free rename into place.
func saveFrontier(path, configHash string, st *searchState) error {
	b := encodeFrontier(configHash, st)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".hndse-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadFrontier reads a frontier file. A missing file returns (nil, nil):
// the search starts fresh. A present-but-unreadable file is an error — a
// corrupt or mismatched frontier must not be silently discarded.
func loadFrontier(path, configHash string) (*searchState, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return decodeFrontier(b, configHash)
}
