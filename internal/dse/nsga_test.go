package dse

import (
	"math"
	"testing"
)

// cand builds a feasible candidate with the given objectives.
func cand(lat, pow, area float64) Candidate {
	return Candidate{LatencyNS: lat, PowerW: pow, AreaMM2: area}
}

func TestDominates(t *testing.T) {
	budget := 10.0
	a := cand(1, 1, 1)
	b := cand(2, 2, 2)
	if !dominates(a, b, budget) {
		t.Error("strictly better point must dominate")
	}
	if dominates(b, a, budget) {
		t.Error("strictly worse point must not dominate")
	}
	// Trade-off: better latency, worse power — neither dominates.
	c := cand(1, 3, 1)
	if dominates(c, b, budget) || dominates(b, c, budget) {
		t.Error("trade-off points must be mutually non-dominating")
	}
	if dominates(a, a, budget) {
		t.Error("a point must not dominate itself")
	}
	// Constrained domination: any feasible point beats any infeasible one.
	sat := Candidate{LatencyNS: 0.1, PowerW: 0.1, AreaMM2: 0.1, Saturated: true}
	if !dominates(b, sat, budget) {
		t.Error("feasible must dominate saturated, whatever the objectives")
	}
	// Between two infeasible points, the smaller violation wins.
	worse := Candidate{LatencyNS: 99, PowerW: 1, AreaMM2: 1, Saturated: true}
	if !dominates(sat, worse, budget) {
		t.Error("smaller constraint violation must dominate larger")
	}
	// Over-budget area is infeasible even when unsaturated.
	over := cand(0.1, 0.1, budget+1)
	if !dominates(b, over, budget) {
		t.Error("within-budget must dominate over-budget")
	}
}

func TestNonDominatedSortLayers(t *testing.T) {
	budget := 10.0
	pop := []Candidate{
		cand(1, 1, 1), // front 0
		cand(2, 2, 2), // front 1 (dominated only by pop[0])
		cand(1, 2, 1), // front 1
		cand(3, 3, 3), // front 2
		cand(2, 1, 1), // front 1? dominated by pop[0] only -> front 1
	}
	fronts := nonDominatedSort(pop, budget)
	if len(fronts) < 2 {
		t.Fatalf("expected layered fronts, got %v", fronts)
	}
	if len(fronts[0]) != 1 || fronts[0][0] != 0 {
		t.Errorf("front 0 = %v, want [0]", fronts[0])
	}
	// Every index appears exactly once.
	seen := map[int]bool{}
	total := 0
	for _, f := range fronts {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two fronts", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != len(pop) {
		t.Errorf("fronts cover %d of %d points", total, len(pop))
	}
}

func TestCrowdingDistanceBoundaries(t *testing.T) {
	pop := []Candidate{
		cand(1, 3, 1), cand(2, 2, 1), cand(3, 1, 1),
	}
	d := crowdingDistance(pop, []int{0, 1, 2})
	if !math.IsInf(d[0], 1) || !math.IsInf(d[2], 1) {
		t.Errorf("boundary points want +Inf crowding, got %v", d)
	}
	if math.IsInf(d[1], 0) {
		t.Errorf("interior point must have finite crowding, got %v", d[1])
	}
}

func TestSelectNSGATruncates(t *testing.T) {
	budget := 10.0
	var pop []Candidate
	for i := 0; i < 9; i++ {
		pop = append(pop, cand(float64(1+i%3), float64(3-i%3), 1))
	}
	keep := selectNSGA(pop, budget, 4)
	if len(keep) != 4 {
		t.Fatalf("kept %d, want 4", len(keep))
	}
	seen := map[int]bool{}
	for _, i := range keep {
		if i < 0 || i >= len(pop) || seen[i] {
			t.Fatalf("bad selection %v", keep)
		}
		seen[i] = true
	}
}

func TestParetoFrontFeasibleAndSorted(t *testing.T) {
	budget := 10.0
	pop := []Candidate{
		cand(3, 1, 1),
		cand(1, 3, 1),
		cand(2, 2, 1),
		cand(0.5, 0.5, budget+5), // infeasible: over budget
		{LatencyNS: 0.1, PowerW: 0.1, AreaMM2: 1, Saturated: true},
		cand(4, 4, 4), // dominated
	}
	front := paretoFront(pop, budget)
	if len(front) != 3 {
		t.Fatalf("front %v, want the three trade-off points", front)
	}
	for i := 1; i < len(front); i++ {
		if pop[front[i-1]].LatencyNS > pop[front[i]].LatencyNS {
			t.Error("front not latency-ascending")
		}
	}
	for _, i := range front {
		if !feasible(pop[i], budget) {
			t.Errorf("infeasible point %d on front", i)
		}
	}
}
