package dse

import (
	"fmt"
	"testing"
)

func TestCombinationsMatchPaper(t *testing.T) {
	// Footnote 4: 1820, 8008 and 12870 candidate placements on a 4x4 mesh.
	cases := []struct {
		k    int
		want int64
	}{{4, 1820}, {6, 8008}, {8, 12870}}
	for _, c := range cases {
		if got := Combinations(16, c.k).Int64(); got != c.want {
			t.Errorf("C(16,%d) = %d, want %d", c.k, got, c.want)
		}
	}
	// And the 8x8 infeasibility number: C(64,16) = 4.89e14.
	v := Combinations(64, 16)
	if v.String() != "488526937079580" {
		t.Errorf("C(64,16) = %s", v)
	}
}

func TestEnumerateCountsWithoutSymmetry(t *testing.T) {
	n := Enumerate(4, 4, 2, false, func([]int) bool { return true })
	if n != 120 { // C(16,2)
		t.Errorf("enumerated %d placements, want 120", n)
	}
}

func TestEnumerateSymmetryReduction(t *testing.T) {
	full := Enumerate(4, 4, 2, false, func([]int) bool { return true })
	reduced := Enumerate(4, 4, 2, true, func([]int) bool { return true })
	if reduced >= full {
		t.Fatalf("symmetry reduction did not reduce: %d vs %d", reduced, full)
	}
	// Burnside: orbits of 2-subsets of the 4x4 grid under D4 = 21.
	if reduced != 21 {
		t.Errorf("reduced count %d, want 21", reduced)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	calls := 0
	Enumerate(4, 4, 3, false, func([]int) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Errorf("early stop after %d calls, want 5", calls)
	}
}

func TestSymmetryIsPermutation(t *testing.T) {
	for s := 0; s < 8; s++ {
		seen := map[[2]int]bool{}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				nx, ny := symmetry(s, x, y, 4, 4)
				if nx < 0 || nx >= 4 || ny < 0 || ny >= 4 {
					t.Fatalf("symmetry %d maps (%d,%d) out of grid: (%d,%d)", s, x, y, nx, ny)
				}
				if seen[[2]int{nx, ny}] {
					t.Fatalf("symmetry %d is not injective", s)
				}
				seen[[2]int{nx, ny}] = true
			}
		}
	}
}

func TestExploreRanksCandidates(t *testing.T) {
	res, err := Explore(EvalConfig{
		W: 4, H: 4, BigCount: 4, LinkRedist: true,
		InjectionRate: 0.05, Packets: 400,
		ReduceSymmetry: true, MaxCandidates: 12, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 12 {
		t.Fatalf("got %d candidates", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Saturated == res[i].Saturated && res[i-1].AvgLatency > res[i].AvgLatency {
			t.Fatal("candidates not sorted by latency")
		}
	}
}

func TestDiagonalScore(t *testing.T) {
	results := []Candidate{
		{Big: []int{1, 2, 3, 4, 5, 6, 7, 8}},
		{Big: []int{0, 3, 5, 6, 9, 10, 12, 15}}, // 4x4 diagonals (both)
	}
	rank, found := DiagonalScore(results, 4, 4)
	if !found || rank != 2 {
		t.Errorf("diagonal rank = %d found=%v, want 2 true", rank, found)
	}
}

func TestAnnealImprovesOrMatchesRandomStart(t *testing.T) {
	cfg := AnnealConfig{
		Eval: EvalConfig{
			W: 4, H: 4, BigCount: 4, LinkRedist: true,
			InjectionRate: 0.05, Packets: 300, Seed: 3,
		},
		Steps: 12,
		Seed:  9,
	}
	res, err := Anneal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best.Big) != 4 {
		t.Fatalf("best placement %v", res.Best.Big)
	}
	if res.Best.AvgLatency > res.Initial.AvgLatency {
		t.Errorf("anneal ended worse than it started: %.1f vs %.1f",
			res.Best.AvgLatency, res.Initial.AvgLatency)
	}
	if res.Accepted == 0 {
		t.Error("no moves accepted")
	}
}

func TestAnnealDeterministic(t *testing.T) {
	cfg := AnnealConfig{
		Eval:  EvalConfig{W: 4, H: 4, BigCount: 3, LinkRedist: true, InjectionRate: 0.04, Packets: 200, Seed: 1},
		Steps: 6,
		Seed:  2,
	}
	a, err := Anneal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.AvgLatency != b.Best.AvgLatency || fmtInts(a.Best.Big) != fmtInts(b.Best.Big) {
		t.Errorf("anneal not deterministic: %+v vs %+v", a.Best, b.Best)
	}
}

func fmtInts(xs []int) string { return fmt.Sprint(xs) }
