package dse

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"heteronoc/internal/runcache"
)

// fastSearchConfig is a small 4x4 search that completes in well under a
// second per run while still exercising every search mechanism.
func fastSearchConfig() SearchConfig {
	return SearchConfig{
		Eval: EvalConfig{
			W: 4, H: 4, LinkRedist: true,
			InjectionRate: 0.05, Packets: 200, Seed: 3,
		},
		MinBig: 3, MaxBig: 5,
		PopSize:     8,
		Generations: 4,
		Seed:        17,
	}
}

// --- canonical symmetry on non-square meshes (regression) ---

// TestSymmetryNonSquareIsPermutation pins the 4x8 fix: only the 4-element
// subgroup {identity, 180°, x-mirror, y-mirror} applies when w != h, and
// each element must permute the grid (the old code applied square-only
// rotations, mapping cells out of the rectangle).
func TestSymmetryNonSquareIsPermutation(t *testing.T) {
	w, h := 4, 8
	if symmetryCount(w, h) != 4 {
		t.Fatalf("symmetryCount(%d,%d) = %d, want 4", w, h, symmetryCount(w, h))
	}
	if symmetryCount(4, 4) != 8 {
		t.Fatalf("symmetryCount(4,4) = %d, want 8", symmetryCount(4, 4))
	}
	for s := 0; s < 4; s++ {
		seen := map[[2]int]bool{}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				nx, ny := symmetry(s, x, y, w, h)
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					t.Fatalf("symmetry %d maps (%d,%d) outside the %dx%d grid: (%d,%d)", s, x, y, w, h, nx, ny)
				}
				if seen[[2]int{nx, ny}] {
					t.Fatalf("symmetry %d is not injective on %dx%d", s, w, h)
				}
				seen[[2]int{nx, ny}] = true
			}
		}
	}
}

// TestCanonicalNonSquareCollapsesOrbit checks that a 4x8 placement and each
// of its mirror/rotation images share one canonical representative.
func TestCanonicalNonSquareCollapsesOrbit(t *testing.T) {
	w, h := 4, 8
	set := []int{0, 5, 9, 14, 22, 30} // arbitrary asymmetric placement
	want := canonical(set, w, h)
	for s := 1; s < symmetryCount(w, h); s++ {
		img := make([]int, len(set))
		for i, cell := range set {
			x, y := cell%w, cell/w
			nx, ny := symmetry(s, x, y, w, h)
			img[i] = ny*w + nx
		}
		sort.Ints(img)
		if got := canonical(img, w, h); got != want {
			t.Errorf("transform %d image %v canonicalizes to %q, want %q", s, img, got, want)
		}
	}
}

// TestEnumerateNonSquareSymmetryCount cross-checks the 4x8 orbit count via
// Burnside's lemma for 1-element subsets: (32 + 0 + 0 + 0) / 4 = 8.
func TestEnumerateNonSquareSymmetryCount(t *testing.T) {
	reduced := Enumerate(4, 8, 1, true, func([]int) bool { return true })
	if reduced != 8 {
		t.Errorf("4x8 single-router orbits = %d, want 8", reduced)
	}
	// And without reduction, all 32 cells.
	full := Enumerate(4, 8, 1, false, func([]int) bool { return true })
	if full != 32 {
		t.Errorf("4x8 single-router placements = %d, want 32", full)
	}
}

// --- frontier file format ---

func testState() *searchState {
	return &searchState{
		Generation: 3,
		Evals:      41,
		RNGState:   0xdeadbeefcafef00d,
		Population: [][]int{{0, 5, 10, 15}, {1, 2, 4, 8}},
		Archive: []Candidate{
			{Big: []int{0, 5, 10, 15}, AvgLatency: 21.5, LatencyNS: 10.75, PowerW: 1.5, AreaMM2: 4.46},
			{Big: []int{1, 2, 4, 8}, AvgLatency: 23.0, LatencyNS: 11.5, PowerW: 1.6, AreaMM2: 4.46, Saturated: true},
		},
		Pareto: []int{0},
	}
}

func TestFrontierRoundTrip(t *testing.T) {
	st := testState()
	b := encodeFrontier("cfg-hash-1", st)
	got, err := decodeFrontier(b, "cfg-hash-1")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", st) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
}

func TestFrontierDetectsCorruption(t *testing.T) {
	b := encodeFrontier("cfg", testState())
	for _, pos := range []int{0, len(b) / 2, len(b) - 1} {
		mut := append([]byte(nil), b...)
		mut[pos] ^= 0x40
		if _, err := decodeFrontier(mut, "cfg"); err == nil {
			t.Errorf("flipped byte %d went undetected", pos)
		}
	}
	if _, err := decodeFrontier(b[:len(b)-3], "cfg"); !errors.Is(err, ErrFrontierCorrupt) {
		t.Errorf("truncation: got %v, want ErrFrontierCorrupt", err)
	}
	if _, err := decodeFrontier(append(append([]byte(nil), b...), 0), "cfg"); err == nil {
		t.Error("trailing garbage went undetected")
	}
}

func TestFrontierRejectsConfigMismatch(t *testing.T) {
	b := encodeFrontier("search-A", testState())
	if _, err := decodeFrontier(b, "search-B"); !errors.Is(err, ErrFrontierConfig) {
		t.Errorf("got %v, want ErrFrontierConfig", err)
	}
}

func TestFrontierMissingFileIsFreshStart(t *testing.T) {
	st, err := loadFrontier(filepath.Join(t.TempDir(), "nope.hndse"), "cfg")
	if err != nil || st != nil {
		t.Errorf("missing file: got state %v err %v, want nil/nil", st, err)
	}
}

// --- search behaviour ---

// seqEvaluator scores the batch one candidate at a time in reverse order,
// standing in for "a different worker count / scheduling": results must
// still come back index-ordered, so the frontier must not change.
type seqEvaluator struct{}

func (seqEvaluator) EvaluateBatch(ctx context.Context, cfg EvalConfig, sets [][]int) ([]Candidate, error) {
	out := make([]Candidate, len(sets))
	for i := len(sets) - 1; i >= 0; i-- {
		c, err := EvaluateCtx(ctx, cfg, sets[i])
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

func frontString(front []Candidate) string {
	var s string
	for _, c := range front {
		s += fmt.Sprintf("%v|%.9f|%.9f|%.9f\n", c.Big, c.LatencyNS, c.PowerW, c.AreaMM2)
	}
	return s
}

// TestSearchFrontierIdenticalAcrossEvaluators pins the determinism
// contract: the frontier file is byte-identical whether candidates are
// scored by the parallel pool or strictly sequentially — evaluation
// order and worker count cannot leak into the archive.
func TestSearchFrontierIdenticalAcrossEvaluators(t *testing.T) {
	dir := t.TempDir()
	runParallel := fastSearchConfig()
	runParallel.FrontierPath = filepath.Join(dir, "par.hndse")
	runSeq := fastSearchConfig()
	runSeq.FrontierPath = filepath.Join(dir, "seq.hndse")
	runSeq.Evaluator = seqEvaluator{}

	a, err := Search(runParallel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(runSeq)
	if err != nil {
		t.Fatal(err)
	}
	if frontString(a.Front) != frontString(b.Front) {
		t.Fatalf("fronts differ:\n%s\nvs\n%s", frontString(a.Front), frontString(b.Front))
	}
	fa, err := os.ReadFile(runParallel.FrontierPath)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(runSeq.FrontierPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(fa) != string(fb) {
		t.Fatal("frontier files differ between parallel and sequential evaluation")
	}
}

// TestSearchResumeMatchesUninterrupted is the kill-and-resume gate: a
// search stopped at generation k and resumed to completion produces the
// identical final Pareto set — and the identical frontier bytes — as an
// uninterrupted control run.
func TestSearchResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()

	control := fastSearchConfig()
	control.FrontierPath = filepath.Join(dir, "control.hndse")
	want, err := Search(control)
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" after generation 2 by asking for only 2 generations...
	interrupted := fastSearchConfig()
	interrupted.Generations = 2
	interrupted.FrontierPath = filepath.Join(dir, "resumed.hndse")
	if _, err := Search(interrupted); err != nil {
		t.Fatal(err)
	}
	// ...then resume to the full horizon from the frontier file.
	interrupted.Generations = control.Generations
	got, err := Search(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Resumed {
		t.Fatal("second run did not resume from the frontier file")
	}
	if got.Generations != want.Generations {
		t.Fatalf("resumed run completed %d generations, control %d", got.Generations, want.Generations)
	}
	if frontString(got.Front) != frontString(want.Front) {
		t.Fatalf("resumed front differs from control:\n%s\nvs\n%s",
			frontString(got.Front), frontString(want.Front))
	}
	fa, _ := os.ReadFile(control.FrontierPath)
	fb, _ := os.ReadFile(interrupted.FrontierPath)
	if len(fa) == 0 || string(fa) != string(fb) {
		t.Fatal("resumed frontier file differs from uninterrupted control")
	}
}

// TestSearchSecondRunAnswersFromCache pins the cross-layer dedup story:
// with the archive thrown away (no frontier), repeating a search re-requests
// every evaluation, but runcache answers all of them — zero simulations.
func TestSearchSecondRunAnswersFromCache(t *testing.T) {
	runcache.Reset()
	defer runcache.Reset()

	cfg := fastSearchConfig()
	first, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Evals == 0 {
		t.Fatal("degenerate search: no evaluations")
	}
	execsAfterFirst := runcache.Execs()
	if execsAfterFirst == 0 {
		t.Fatal("first search ran no simulations")
	}

	second, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := runcache.Execs() - execsAfterFirst; d != 0 {
		t.Fatalf("second identical search ran %d simulations, want 0 (all from cache)", d)
	}
	if frontString(first.Front) != frontString(second.Front) {
		t.Fatal("cached search produced a different front")
	}
}

// TestSearchRespectsEvalBudget stops at the first generation boundary at
// or past the budget.
func TestSearchRespectsEvalBudget(t *testing.T) {
	cfg := fastSearchConfig()
	cfg.Generations = 50
	cfg.EvalBudget = cfg.PopSize + 2 // initial population already near the cap
	res, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One overshooting generation is allowed (the boundary check runs
	// before each breed), but not two.
	if res.Evals > cfg.EvalBudget+cfg.PopSize {
		t.Fatalf("%d evaluations blew the budget of %d", res.Evals, cfg.EvalBudget)
	}
	if res.Generations >= 50 {
		t.Fatal("budget did not stop the search")
	}
}

// TestSearchReportsAllSaturated drives the probe far past saturation so no
// placement is feasible; the search must say so rather than return an
// empty front silently (cmd/dse turns this into exit 1).
func TestSearchReportsAllSaturated(t *testing.T) {
	cfg := fastSearchConfig()
	cfg.Eval.InjectionRate = 0.9
	cfg.Eval.Packets = 120
	cfg.PopSize = 4
	cfg.Generations = 1
	res, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) != 0 {
		t.Fatalf("expected empty front at rate 0.9, got %d points", len(res.Front))
	}
	if !res.AllSaturated {
		t.Fatal("AllSaturated not reported for a fully saturated space")
	}
}

// TestSearchArchiveGrowsAcrossResume extends a finished search: the resumed
// run reuses every archived evaluation and only pays for new placements.
func TestSearchArchiveGrowsAcrossResume(t *testing.T) {
	dir := t.TempDir()
	cfg := fastSearchConfig()
	cfg.Generations = 2
	cfg.FrontierPath = filepath.Join(dir, "extend.hndse")
	first, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Generations = 4
	second, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Resumed {
		t.Fatal("extension did not resume")
	}
	if second.ArchiveSize < first.ArchiveSize {
		t.Fatalf("archive shrank across resume: %d -> %d", first.ArchiveSize, second.ArchiveSize)
	}
	if second.Evals < first.Evals {
		t.Fatalf("cumulative evals went backwards: %d -> %d", first.Evals, second.Evals)
	}
}
