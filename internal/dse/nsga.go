package dse

import (
	"math"
	"sort"
)

// NSGA-II machinery: constrained dominance, fast non-dominated sorting and
// crowding distance. Everything here is deterministic — ties break on the
// candidate index — because the frontier file must come out byte-identical
// for a given seed regardless of worker count or wall-clock.

// feasible reports whether a candidate satisfies the search constraints:
// the probe must not saturate and the router area must fit the budget
// (budget <= 0 means unconstrained).
func feasible(c Candidate, areaBudget float64) bool {
	if c.Saturated {
		return false
	}
	return areaBudget <= 0 || c.AreaMM2 <= areaBudget+1e-9
}

// violation measures how badly an infeasible candidate misses the
// constraints, so infeasible candidates still order usefully (Deb's
// constrained-domination). A saturated probe keeps its measured latency as
// the graded part of the penalty: among saturated placements, less-congested
// ones order first, which is the gradient the search descends to escape an
// all-saturated region. Area overshoot adds proportionally.
func violation(c Candidate, areaBudget float64) float64 {
	v := 0.0
	if c.Saturated {
		v += 1000 + c.LatencyNS
	}
	if areaBudget > 0 && c.AreaMM2 > areaBudget {
		v += (c.AreaMM2 - areaBudget) * 100
	}
	return v
}

// dominates reports whether a constrained-dominates b: a feasible point
// beats any infeasible one; two infeasible points compare by violation;
// two feasible points compare by Pareto dominance over the minimization
// objectives {latency, power, area}.
func dominates(a, b Candidate, areaBudget float64) bool {
	af, bf := feasible(a, areaBudget), feasible(b, areaBudget)
	if af != bf {
		return af
	}
	if !af {
		return violation(a, areaBudget) < violation(b, areaBudget)
	}
	ao, bo := a.Objectives(), b.Objectives()
	better := false
	for i := range ao {
		if ao[i] > bo[i]+1e-12 {
			return false
		}
		if ao[i] < bo[i]-1e-12 {
			better = true
		}
	}
	return better
}

// nonDominatedSort partitions pop into fronts: fronts[0] is the
// non-dominated set, fronts[1] the set dominated only by fronts[0], and so
// on. Each front preserves ascending candidate index.
func nonDominatedSort(pop []Candidate, areaBudget float64) [][]int {
	n := len(pop)
	domCount := make([]int, n)    // how many candidates dominate i
	dominated := make([][]int, n) // who i dominates
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dominates(pop[i], pop[j], areaBudget) {
				dominated[i] = append(dominated[i], j)
				domCount[j]++
			} else if dominates(pop[j], pop[i], areaBudget) {
				dominated[j] = append(dominated[j], i)
				domCount[i]++
			}
		}
	}
	var fronts [][]int
	var cur []int
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			cur = append(cur, i)
		}
	}
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		sort.Ints(next)
		cur = next
	}
	return fronts
}

// crowdingDistance returns the NSGA-II crowding distance of each member of
// a front (indexed as front[i]); boundary points get +Inf so selection
// keeps the objective extremes.
func crowdingDistance(pop []Candidate, front []int) []float64 {
	d := make([]float64, len(front))
	if len(front) <= 2 {
		for i := range d {
			d[i] = math.Inf(1)
		}
		return d
	}
	order := make([]int, len(front)) // positions into front
	for m := 0; m < 3; m++ {
		for i := range order {
			order[i] = i
		}
		obj := func(p int) float64 { return pop[front[p]].Objectives()[m] }
		sort.SliceStable(order, func(a, b int) bool {
			if obj(order[a]) != obj(order[b]) {
				return obj(order[a]) < obj(order[b])
			}
			return front[order[a]] < front[order[b]]
		})
		lo, hi := obj(order[0]), obj(order[len(order)-1])
		d[order[0]] = math.Inf(1)
		d[order[len(order)-1]] = math.Inf(1)
		if span := hi - lo; span > 1e-12 {
			for k := 1; k < len(order)-1; k++ {
				d[order[k]] += (obj(order[k+1]) - obj(order[k-1])) / span
			}
		}
	}
	return d
}

// selectNSGA picks k survivors from pop by rank then crowding distance —
// the standard NSGA-II environmental selection. The returned indices are
// deterministic for a given pop.
func selectNSGA(pop []Candidate, areaBudget float64, k int) []int {
	fronts := nonDominatedSort(pop, areaBudget)
	var picked []int
	for _, f := range fronts {
		if len(picked)+len(f) <= k {
			picked = append(picked, f...)
			continue
		}
		need := k - len(picked)
		if need <= 0 {
			break
		}
		d := crowdingDistance(pop, f)
		order := make([]int, len(f))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			if d[order[a]] != d[order[b]] {
				return d[order[a]] > d[order[b]]
			}
			return f[order[a]] < f[order[b]]
		})
		for _, p := range order[:need] {
			picked = append(picked, f[p])
		}
		break
	}
	sort.Ints(picked)
	return picked
}

// paretoFront returns the indices of the feasible non-dominated members of
// pop, sorted by ascending latency (then power, then index). This is the
// "current Pareto set" the frontier file persists and the search reports.
func paretoFront(pop []Candidate, areaBudget float64) []int {
	var idx []int
	for i, c := range pop {
		if feasible(c, areaBudget) {
			idx = append(idx, i)
		}
	}
	var front []int
	for _, i := range idx {
		dominated := false
		for _, j := range idx {
			if i != j && dominates(pop[j], pop[i], areaBudget) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	sort.SliceStable(front, func(a, b int) bool {
		ca, cb := pop[front[a]], pop[front[b]]
		if ca.LatencyNS != cb.LatencyNS {
			return ca.LatencyNS < cb.LatencyNS
		}
		if ca.PowerW != cb.PowerW {
			return ca.PowerW < cb.PowerW
		}
		return front[a] < front[b]
	})
	return front
}

// ParetoFront returns the indices of the feasible non-dominated members
// of pop under the area budget, sorted by ascending latency — exported so
// experiments can place reference designs (the paper's diagonal) relative
// to a search's archive.
func ParetoFront(pop []Candidate, areaBudget float64) []int {
	return paretoFront(pop, areaBudget)
}
