package dse

import (
	"context"
	"fmt"

	"heteronoc/internal/cmp"
	"heteronoc/internal/core"
	"heteronoc/internal/power"
	"heteronoc/internal/runcache"
	"heteronoc/internal/trace"
	"heteronoc/internal/warm"
)

// CMP-mode evaluation: score a placement by running a real workload on a
// full CMP (cores, caches, coherence) instead of a synthetic probe. This
// is where PR 5's layout-independent warmup sharing pays off at search
// scale: the warm state depends only on (bench, tiles, warmup budget,
// line size, prefetch), never on the placement under test, so the first
// candidate of a search warms one template system and every other
// candidate — across generations, resumes and concurrent searches —
// restores that checkpoint in O(1). A cold evaluation is one measured
// network simulation, not a warmup replay plus a simulation.

func evaluateCMPCached(ctx context.Context, cfg EvalConfig, bigSet []int) (Candidate, error) {
	key := fmt.Sprintf("dsecmp|%dx%d|big=%v|bl=%t|bench=%s|cyc=%d|warm=%d",
		cfg.W, cfg.H, bigSet, cfg.LinkRedist, cfg.Bench, cfg.CMPCycles, cfg.WarmupEntries)
	return runcache.ForCtx(ctx, key, func(ctx context.Context) (Candidate, error) {
		return evaluateCMP(ctx, cfg, bigSet)
	})
}

func evaluateCMP(ctx context.Context, cfg EvalConfig, bigSet []int) (Candidate, error) {
	layout := core.NewCustom(fmt.Sprintf("dse%v", bigSet), cfg.W, cfg.H, bigSet, cfg.LinkRedist)
	trs, err := trace.WorkloadTraces(cfg.Bench, layout.Mesh.NumTerminals(), 128)
	if err != nil {
		return Candidate{}, err
	}
	s, err := cmp.New(cmp.Config{Layout: layout, Traces: trs})
	if err != nil {
		return Candidate{}, err
	}
	warm.System(ctx, s, layout, cfg.Bench, cfg.WarmupEntries)
	if err := s.RunCtx(ctx, int64(cfg.CMPCycles)); err != nil {
		return Candidate{}, err
	}
	ns := s.NetStats()
	lat := ns.AvgLatency()
	return Candidate{
		Big:        bigSet,
		AvgLatency: lat,
		LatencyNS:  lat / layout.FreqGHz(),
		PowerW:     power.Network(power.NewModel(), layout, s.Net.Activity()).Total(),
		AreaMM2:    power.Area(layout),
		// Closed-loop CMP runs self-throttle rather than saturate; the
		// constraint machinery only sees synthetic-probe saturation.
		Saturated: false,
	}, nil
}
