package noc

import (
	"errors"
	"math/rand"
	"testing"

	"heteronoc/internal/fault"
	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

func TestDedupeWatermark(t *testing.T) {
	d := &dedupe{}
	if !d.mark(0) || d.mark(0) {
		t.Fatal("first delivery of seq 0 must be new, the second a duplicate")
	}
	if !d.mark(2) {
		t.Fatal("out-of-order seq 2 must be new")
	}
	if d.next != 1 {
		t.Fatalf("watermark advanced past a gap: next=%d", d.next)
	}
	if !d.mark(1) {
		t.Fatal("filling the gap must be new")
	}
	if d.next != 3 {
		t.Fatalf("watermark did not absorb the sparse set: next=%d", d.next)
	}
	if len(d.seen) != 0 {
		t.Fatalf("sparse set not drained: %v", d.seen)
	}
	if d.mark(2) || d.mark(0) {
		t.Fatal("below-watermark sequences must be duplicates")
	}
}

// relNet pairs a reliability layer with a fault-armed 8x8 mesh.
func relNet(t testing.TB, plan *fault.Plan, cfg ReliableConfig) *Reliable {
	t.Helper()
	return NewReliable(faultMeshNet(t, plan), cfg)
}

func drainReliable(t testing.TB, rel *Reliable, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		if err := rel.Step(); err != nil {
			t.Fatal(err)
		}
		if rel.Quiesced() {
			return
		}
	}
	t.Fatalf("reliability layer did not quiesce in %d cycles (%d pending)", maxCycles, rel.Pending())
}

func TestReliableDeliversFaultFree(t *testing.T) {
	rel := relNet(t, nil, ReliableConfig{})
	got := map[xferKey]int{}
	rel.SetOnDeliver(func(tr *Transfer, p *Packet) { got[key(tr)]++ })
	rng := rand.New(rand.NewSource(3))
	want := 0
	for i := 0; i < 200; i++ {
		if _, err := rel.Send(rng.Intn(64), rng.Intn(64), 6, 0, nil); err != nil {
			t.Fatal(err)
		}
		want++
		if i%4 == 0 {
			if err := rel.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	drainReliable(t, rel, 100000)
	s := rel.Stats()
	if s.Sent != int64(want) || s.Delivered != int64(want) {
		t.Fatalf("sent %d delivered %d, want %d", s.Sent, s.Delivered, want)
	}
	if s.Retransmissions != 0 || s.Duplicates != 0 || s.Abandoned != 0 || s.Unreachable != 0 {
		t.Errorf("fault-free run shows recovery activity: %+v", *s)
	}
	if len(got) != want {
		t.Fatalf("app saw %d transfers, want %d", len(got), want)
	}
	for k, cnt := range got {
		if cnt != 1 {
			t.Errorf("transfer %v delivered %d times", k, cnt)
		}
	}
	if s.AvgLatency() <= 0 {
		t.Error("average latency not positive")
	}
}

func TestReliableSequenceNumbersPerPair(t *testing.T) {
	rel := relNet(t, nil, ReliableConfig{})
	a, _ := rel.Send(0, 5, 1, 0, nil)
	b, _ := rel.Send(0, 5, 1, 0, nil)
	c, _ := rel.Send(0, 6, 1, 0, nil)
	if a.Seq != 0 || b.Seq != 1 {
		t.Errorf("same-pair sequence %d,%d, want 0,1", a.Seq, b.Seq)
	}
	if c.Seq != 0 {
		t.Errorf("distinct pair started at seq %d, want 0", c.Seq)
	}
	drainReliable(t, rel, 10000)
}

func TestReliableRecoversFromTransientLoss(t *testing.T) {
	// Every copy crossing 0's east link during the first 100 cycles dies;
	// with a 32-cycle timeout the retries outlast the window and the
	// transfer completes exactly once.
	plan := (&fault.Plan{}).AddTransient(1, 0, topology.PortEast, 100, false)
	rel := relNet(t, plan, ReliableConfig{Timeout: 32, MaxRetries: 8})
	delivered := 0
	rel.SetOnDeliver(func(tr *Transfer, p *Packet) { delivered++ })
	rel.SetOnFail(func(tr *Transfer, err error) { t.Errorf("transfer abandoned: %v", err) })
	if _, err := rel.Send(0, 63, 6, 0, nil); err != nil {
		t.Fatal(err)
	}
	drainReliable(t, rel, 100000)
	s := rel.Stats()
	if delivered != 1 || s.Delivered != 1 {
		t.Fatalf("delivered %d (stats %d), want exactly 1", delivered, s.Delivered)
	}
	if s.Retransmissions == 0 || s.Recovered != 1 {
		t.Errorf("recovery not recorded: retrans %d recovered %d", s.Retransmissions, s.Recovered)
	}
	if rel.Net().Stats().FlitsDroppedFault == 0 {
		t.Error("the transient window dropped nothing — the loss was never injected")
	}
}

func TestReliableSuppressesDuplicates(t *testing.T) {
	// An aggressive 4-cycle timeout fires retries while the original is
	// still in flight on a healthy network: every copy arrives, the app
	// must see each transfer once.
	rel := relNet(t, nil, ReliableConfig{Timeout: 4, MaxRetries: 8})
	got := map[xferKey]int{}
	rel.SetOnDeliver(func(tr *Transfer, p *Packet) { got[key(tr)]++ })
	for i := 0; i < 8; i++ {
		if _, err := rel.Send(i, 63-i, 6, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	drainReliable(t, rel, 100000)
	s := rel.Stats()
	if s.Duplicates == 0 {
		t.Error("4-cycle timeout on 14-hop paths produced no duplicate deliveries")
	}
	if s.Delivered != 8 {
		t.Fatalf("delivered %d transfers, want 8", s.Delivered)
	}
	for k, cnt := range got {
		if cnt != 1 {
			t.Errorf("transfer %v reached the app %d times", k, cnt)
		}
	}
}

func TestReliableAbandonsAfterMaxRetries(t *testing.T) {
	// A drop window that outlives every retry: the link stays up so
	// routing never reroutes, and each copy dies crossing it.
	plan := (&fault.Plan{}).AddTransient(1, 0, topology.PortEast, 1<<20, false)
	rel := relNet(t, plan, ReliableConfig{Timeout: 8, MaxRetries: 3})
	var failErr error
	rel.SetOnFail(func(tr *Transfer, err error) { failErr = err })
	if _, err := rel.Send(0, 1, 2, 0, nil); err != nil {
		t.Fatal(err)
	}
	drainReliable(t, rel, 100000)
	s := rel.Stats()
	if s.Abandoned != 1 || s.Delivered != 0 {
		t.Fatalf("abandoned %d delivered %d, want 1/0", s.Abandoned, s.Delivered)
	}
	if s.Retransmissions != 3 {
		t.Errorf("retransmissions %d, want MaxRetries=3", s.Retransmissions)
	}
	if failErr == nil {
		t.Fatal("failure callback not invoked")
	}
}

func TestReliableAbandonsSeveredDestination(t *testing.T) {
	// The destination's router fail-stops while the transfer is pending;
	// the retry path must classify it unreachable, not burn the budget.
	m := topology.NewMesh(8, 8)
	victim := m.RouterAt(7, 7)
	plan := (&fault.Plan{}).FailRouter(20, victim)
	rel := relNet(t, plan, ReliableConfig{Timeout: 64, MaxRetries: 8})
	var failErr error
	rel.SetOnFail(func(tr *Transfer, err error) { failErr = err })
	if _, err := rel.Send(0, victim, 6, 0, nil); err != nil {
		t.Fatal(err)
	}
	drainReliable(t, rel, 100000)
	s := rel.Stats()
	if s.Unreachable != 1 || s.Delivered != 0 || s.Abandoned != 0 {
		t.Fatalf("unreachable %d delivered %d abandoned %d, want 1/0/0", s.Unreachable, s.Delivered, s.Abandoned)
	}
	if !errors.Is(failErr, routing.ErrUnreachable) && !errors.Is(failErr, ErrTerminalDown) {
		t.Fatalf("failure cause %v, want unreachable/terminal-down", failErr)
	}
	// New sends to the dead terminal are refused up front without
	// consuming a sequence number.
	if _, err := rel.Send(0, victim, 1, 0, nil); err == nil {
		t.Fatal("send to a dead terminal accepted")
	}
	if rel.nextSeq[pairKey{0, victim}] != 1 {
		t.Error("refused send consumed a sequence number")
	}
}

func TestReliableQuiescedWaitsForRetryTimers(t *testing.T) {
	// After the only copy dies, the network goes quiet but the transfer is
	// still owed a retry: Quiesced must stay false until it resolves.
	plan := (&fault.Plan{}).AddTransient(1, 0, topology.PortEast, 64, false)
	rel := relNet(t, plan, ReliableConfig{Timeout: 256, MaxRetries: 4})
	if _, err := rel.Send(0, 63, 6, 0, nil); err != nil {
		t.Fatal(err)
	}
	sawQuietPending := false
	for i := 0; i < 100000 && !rel.Quiesced(); i++ {
		if err := rel.Step(); err != nil {
			t.Fatal(err)
		}
		if rel.Net().Quiesced() && rel.Pending() > 0 {
			sawQuietPending = true
			if rel.Quiesced() {
				t.Fatal("Quiesced true with transfers pending")
			}
		}
	}
	if !sawQuietPending {
		t.Error("test never observed the quiet-but-pending window it exists to pin")
	}
	if rel.Stats().Delivered != 1 {
		t.Fatalf("transfer not recovered: %+v", *rel.Stats())
	}
}

func TestReliableStatsFingerprintIsDeterministic(t *testing.T) {
	m := topology.NewMesh(8, 8)
	run := func() (uint64, uint64) {
		plan := fault.Generate(m, 55, fault.GenConfig{Links: 2, Transients: 3, MaxCycle: 400, KeepConnected: true})
		rel := relNet(t, plan, ReliableConfig{Timeout: 128, MaxRetries: 6})
		rng := rand.New(rand.NewSource(9))
		for cycle := 0; cycle < 1200; cycle++ {
			for src := 0; src < 64; src++ {
				if rng.Float64() < 0.01 {
					_, _ = rel.Send(src, rng.Intn(64), 6, 0, nil)
				}
			}
			if err := rel.Step(); err != nil {
				t.Fatal(err)
			}
		}
		drainReliable(t, rel, 1<<20)
		return rel.Stats().Fingerprint(), rel.Net().Fingerprint()
	}
	s1, n1 := run()
	s2, n2 := run()
	if s1 != s2 || n1 != n2 {
		t.Fatalf("reliable run not reproducible: stats %x/%x net %x/%x", s1, s2, n1, n2)
	}
}
