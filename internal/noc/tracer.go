package noc

import (
	"fmt"
	"strings"
)

// EventKind classifies packet life-cycle events for the tracer.
type EventKind uint8

const (
	// EvInject: the head flit left the NI queue into the source router.
	EvInject EventKind = iota
	// EvHop: the head flit was delivered into a router input buffer.
	EvHop
	// EvEscape: the packet diverted to the escape sub-network.
	EvEscape
	// EvEject: the tail flit was consumed at the destination.
	EvEject

	// Detail events, emitted only when the installed tracer implements
	// DetailTracer (see flittrace.go). They expose the microarchitectural
	// pipeline the macro events skip over:

	// EvVCAlloc: a waiting head won a downstream virtual channel.
	EvVCAlloc
	// EvSwitchAlloc: a flit won switch allocation and traversed the
	// crossbar onto its output link.
	EvSwitchAlloc
	// EvCreditStall: an active VC had a flit ready but no downstream
	// credit this cycle (back-pressure; emitted once per stalled VC per
	// cycle).
	EvCreditStall
)

func (k EventKind) String() string {
	switch k {
	case EvInject:
		return "inject"
	case EvHop:
		return "hop"
	case EvEscape:
		return "escape"
	case EvEject:
		return "eject"
	case EvVCAlloc:
		return "vc_alloc"
	case EvSwitchAlloc:
		return "sw_alloc"
	case EvCreditStall:
		return "credit_stall"
	}
	return "?"
}

// Event is one tracer record.
type Event struct {
	Cycle  int64
	Kind   EventKind
	Packet uint64
	// Router is the router involved (the receiving router for hops, the
	// source router for injects, the allocating router for detail events,
	// -1 for ejects).
	Router int
	// Port and VC locate detail events in the router microarchitecture:
	// the output port / downstream VC being allocated or stalled on. They
	// are -1 on the macro events (inject/hop/escape/eject).
	Port int16
	VC   int16
}

// Tracer receives packet life-cycle events. Implementations must be fast:
// the hooks sit on the simulator's hot path when tracing is enabled.
type Tracer interface {
	PacketEvent(e Event)
}

// DetailTracer is the opt-in extension for microarchitectural events
// (EvVCAlloc, EvSwitchAlloc, EvCreditStall). Installing a Tracer that also
// implements DetailTracer arms the detail hooks; a plain Tracer never sees
// (or pays for) them.
type DetailTracer interface {
	Tracer
	DetailEvent(e Event)
}

// SetTracer installs (or removes, with nil) the event tracer. Tracing
// disables intra-cycle sharding (event order is part of the observable
// behavior), so traced runs execute on the sequential kernel.
func (n *Network) SetTracer(t Tracer) {
	n.tracer = t
	n.detail, _ = t.(DetailTracer)
}

func (n *Network) trace(kind EventKind, pkt uint64, router int) {
	if n.tracer != nil {
		n.tracer.PacketEvent(Event{Cycle: n.cycle, Kind: kind, Packet: pkt, Router: router, Port: -1, VC: -1})
	}
}

// CollectingTracer buffers macro events, optionally filtered to one packet
// ID. It is the ready-made implementation for debugging and tests; for
// microarchitectural detail and bounded memory use FlitTracer.
type CollectingTracer struct {
	// Filter enables filtering: only events of packet Only are kept.
	// (Packet IDs start at 1, but 0 is a legal value to filter for, so
	// the switch is explicit rather than a zero-value sentinel.)
	Filter bool
	Only   uint64
	Events []Event
}

// PacketEvent implements Tracer.
func (c *CollectingTracer) PacketEvent(e Event) {
	if c.Filter && e.Packet != c.Only {
		return
	}
	c.Events = append(c.Events, e)
}

// PathOf returns the router sequence a packet visited.
func (c *CollectingTracer) PathOf(pkt uint64) []int {
	var out []int
	for _, e := range c.Events {
		if e.Packet != pkt {
			continue
		}
		switch e.Kind {
		case EvInject, EvHop:
			out = append(out, e.Router)
		}
	}
	return out
}

// Dump renders the event log for one packet.
func (c *CollectingTracer) Dump(pkt uint64) string {
	var b strings.Builder
	for _, e := range c.Events {
		if e.Packet != pkt {
			continue
		}
		fmt.Fprintf(&b, "cycle %6d  %-7s router %d\n", e.Cycle, e.Kind, e.Router)
	}
	return b.String()
}
