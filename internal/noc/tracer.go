package noc

import (
	"fmt"
	"strings"
)

// EventKind classifies packet life-cycle events for the tracer.
type EventKind uint8

const (
	// EvInject: the head flit left the NI queue into the source router.
	EvInject EventKind = iota
	// EvHop: the head flit was delivered into a router input buffer.
	EvHop
	// EvEscape: the packet diverted to the escape sub-network.
	EvEscape
	// EvEject: the tail flit was consumed at the destination.
	EvEject
)

func (k EventKind) String() string {
	switch k {
	case EvInject:
		return "inject"
	case EvHop:
		return "hop"
	case EvEscape:
		return "escape"
	case EvEject:
		return "eject"
	}
	return "?"
}

// Event is one tracer record.
type Event struct {
	Cycle  int64
	Kind   EventKind
	Packet uint64
	// Router is the router involved (the receiving router for hops, the
	// source router for injects, -1 for ejects).
	Router int
}

// Tracer receives packet life-cycle events. Implementations must be fast:
// the hooks sit on the simulator's hot path when tracing is enabled.
type Tracer interface {
	PacketEvent(e Event)
}

// SetTracer installs (or removes, with nil) the event tracer.
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

func (n *Network) trace(kind EventKind, pkt uint64, router int) {
	if n.tracer != nil {
		n.tracer.PacketEvent(Event{Cycle: n.cycle, Kind: kind, Packet: pkt, Router: router})
	}
}

// CollectingTracer buffers events, optionally filtered to one packet ID
// (0 = all packets). It is the ready-made implementation for debugging and
// tests.
type CollectingTracer struct {
	// Only filters to a single packet ID when nonzero.
	Only   uint64
	Events []Event
}

// PacketEvent implements Tracer.
func (c *CollectingTracer) PacketEvent(e Event) {
	if c.Only != 0 && e.Packet != c.Only {
		return
	}
	c.Events = append(c.Events, e)
}

// PathOf returns the router sequence a packet visited.
func (c *CollectingTracer) PathOf(pkt uint64) []int {
	var out []int
	for _, e := range c.Events {
		if e.Packet != pkt {
			continue
		}
		switch e.Kind {
		case EvInject, EvHop:
			out = append(out, e.Router)
		}
	}
	return out
}

// Dump renders the event log for one packet.
func (c *CollectingTracer) Dump(pkt uint64) string {
	var b strings.Builder
	for _, e := range c.Events {
		if e.Packet != pkt {
			continue
		}
		fmt.Fprintf(&b, "cycle %6d  %-7s router %d\n", e.Cycle, e.Kind, e.Router)
	}
	return b.String()
}
