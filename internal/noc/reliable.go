package noc

import "fmt"

// Reliable is the NI-level end-to-end reliability layer: it gives every
// logical transfer a per-(src,dst) sequence number, retransmits after a
// delivery timeout with exponential backoff and a bounded retry budget,
// and suppresses duplicates at the sink so the application sees each
// transfer exactly once even when retries race a slow original.
//
// Delivery acknowledgment is implicit: the simulator observes tail-flit
// consumption directly (a zero-cost ack channel), so a transfer leaves the
// pending set the moment any copy of it is delivered. Recovery is purely
// timer driven — a purged packet is simply a copy that will never arrive,
// and its timeout fires on schedule. Everything is deterministic: retries
// fire in (deadline, send-order) order from a heap, never from map
// iteration.
type Reliable struct {
	net *Network
	cfg ReliableConfig

	nextSeq   map[pairKey]uint64
	recv      map[pairKey]*dedupe
	pending   map[xferKey]*Transfer
	timers    timerHeap
	order     uint64
	// pktFree recycles injection packets: a delivered copy is dead once
	// onPacket returns (copies lost to fault purges simply fall to the GC).
	pktFree []*Packet
	onDeliver func(*Transfer, *Packet)
	onFail    func(*Transfer, error)
	stats     ReliableStats
}

// ReliableConfig parameterizes the retry policy.
type ReliableConfig struct {
	// Timeout is the base delivery timeout in cycles; retry k waits
	// Timeout<<k (default 512).
	Timeout int64
	// MaxRetries bounds retransmissions per transfer (default 6). A
	// transfer that exhausts its budget is abandoned and reported through
	// the failure callback.
	MaxRetries int
}

// Transfer is one logical end-to-end message; retransmissions inject fresh
// packets that all point back at the same Transfer.
type Transfer struct {
	Src, Dst int
	Seq      uint64 // per-(src,dst) stream sequence number
	NumFlits int
	Class    int
	Payload  any
	Created  int64 // cycle the transfer was first sent
	Attempts int   // retransmissions so far

	deadline int64
}

// ReliableStats counts the reliability layer's activity.
type ReliableStats struct {
	Sent            int64 // transfers accepted by Send
	Delivered       int64 // transfers delivered (first copy)
	Duplicates      int64 // late copies suppressed at the sink
	Retransmissions int64 // packets re-injected after a timeout
	Recovered       int64 // delivered transfers that needed >=1 retry
	Abandoned       int64 // transfers that exhausted their retry budget
	Unreachable     int64 // transfers refused or abandoned for lack of a route
	LatencySum      int64 // create-to-deliver cycles over delivered transfers
}

// AvgLatency returns the mean end-to-end transfer latency in cycles.
func (s *ReliableStats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Delivered)
}

// Fingerprint hashes the counters for determinism regression tests.
func (s *ReliableStats) Fingerprint() uint64 {
	h := uint64(fnvOffset)
	for _, v := range []int64{
		s.Sent, s.Delivered, s.Duplicates, s.Retransmissions,
		s.Recovered, s.Abandoned, s.Unreachable, s.LatencySum,
	} {
		h = fnvMix(h, uint64(v))
	}
	return h
}

type pairKey struct{ src, dst int }

type xferKey struct {
	src, dst int
	seq      uint64
}

// dedupe tracks delivered sequence numbers per (src,dst) pair as a
// contiguous watermark plus a sparse set for out-of-order arrivals, so
// memory stays O(reordering window) rather than O(history).
type dedupe struct {
	next uint64 // every seq < next has been delivered
	seen map[uint64]bool
}

// mark records a delivery; it reports whether the sequence number was new.
func (d *dedupe) mark(s uint64) bool {
	if s < d.next || d.seen[s] {
		return false
	}
	if s != d.next {
		if d.seen == nil {
			d.seen = make(map[uint64]bool)
		}
		d.seen[s] = true
		return true
	}
	d.next++
	for d.seen[d.next] {
		delete(d.seen, d.next)
		d.next++
	}
	return true
}

type timerItem struct {
	deadline int64
	order    uint64 // send order, breaking deadline ties deterministically
	key      xferKey
}

// timerHeap is a typed min-heap on (deadline, order). It replicates
// container/heap's sift algorithm so timer fire order is unchanged, but a
// push no longer boxes a timerItem into an interface value — the
// retransmission bookkeeping path allocates nothing in steady state.
type timerHeap []timerItem

func (h timerHeap) less(i, j int) bool {
	return h[i].deadline < h[j].deadline ||
		(h[i].deadline == h[j].deadline && h[i].order < h[j].order)
}

func (h *timerHeap) push(it timerItem) {
	*h = append(*h, it)
	h.up(len(*h) - 1)
}

func (h *timerHeap) pop() timerItem {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	h.down(0, n)
	it := a[n]
	*h = a[:n]
	return it
}

func (h timerHeap) up(j int) {
	for {
		i := (j - 1) / 2
		if i == j || !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h timerHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// NewReliable wraps a network with the end-to-end reliability layer. It
// claims the network's packet-delivery callback; register application
// callbacks on the Reliable instead.
func NewReliable(n *Network, cfg ReliableConfig) *Reliable {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 512
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 6
	}
	rel := &Reliable{
		net:     n,
		cfg:     cfg,
		nextSeq: make(map[pairKey]uint64),
		recv:    make(map[pairKey]*dedupe),
		pending: make(map[xferKey]*Transfer),
	}
	n.SetOnPacket(rel.onPacket)
	return rel
}

// Net returns the wrapped network.
func (rel *Reliable) Net() *Network { return rel.net }

// Stats returns the live reliability counters.
func (rel *Reliable) Stats() *ReliableStats { return &rel.stats }

// SetOnDeliver registers the exactly-once application delivery callback.
// The *Packet argument is only valid for the duration of the callback (the
// reliability layer recycles delivered packets).
func (rel *Reliable) SetOnDeliver(fn func(*Transfer, *Packet)) { rel.onDeliver = fn }

// SetOnFail registers the callback for abandoned transfers.
func (rel *Reliable) SetOnFail(fn func(*Transfer, error)) { rel.onFail = fn }

// Send starts a new transfer. It refuses immediately — without consuming a
// sequence number — when the destination is known to be severed (an error
// wrapping routing.ErrUnreachable) or an endpoint terminal is down.
func (rel *Reliable) Send(src, dst, numFlits, class int, payload any) (*Transfer, error) {
	pk := pairKey{src, dst}
	tr := &Transfer{
		Src: src, Dst: dst,
		Seq:      rel.nextSeq[pk],
		NumFlits: numFlits,
		Class:    class,
		Payload:  payload,
		Created:  rel.net.Cycle(),
	}
	if err := rel.inject(tr); err != nil {
		rel.stats.Unreachable++
		return nil, err
	}
	rel.nextSeq[pk] = tr.Seq + 1
	rel.stats.Sent++
	rel.pending[key(tr)] = tr
	rel.arm(tr, rel.net.Cycle()+rel.cfg.Timeout)
	return tr, nil
}

func key(tr *Transfer) xferKey { return xferKey{tr.Src, tr.Dst, tr.Seq} }

func (rel *Reliable) inject(tr *Transfer) error {
	var p *Packet
	if n := len(rel.pktFree); n > 0 {
		p = rel.pktFree[n-1]
		rel.pktFree = rel.pktFree[:n-1]
	} else {
		p = &Packet{}
	}
	*p = Packet{
		Src: tr.Src, Dst: tr.Dst,
		NumFlits: tr.NumFlits,
		Class:    tr.Class,
		Payload:  tr,
	}
	if err := rel.net.TryInject(p); err != nil {
		rel.pktFree = append(rel.pktFree, p)
		return err
	}
	return nil
}

func (rel *Reliable) arm(tr *Transfer, deadline int64) {
	tr.deadline = deadline
	rel.order++
	rel.timers.push(timerItem{deadline: deadline, order: rel.order, key: key(tr)})
}

// onPacket is the network's delivery callback: the implicit ack. The
// delivered packet is recycled after the application callback returns, so
// onDeliver must not retain its *Packet argument.
func (rel *Reliable) onPacket(p *Packet) {
	tr, ok := p.Payload.(*Transfer)
	if !ok {
		return // not a reliable transfer; ignore
	}
	defer func() { rel.pktFree = append(rel.pktFree, p) }()
	delete(rel.pending, key(tr))
	d := rel.recv[pairKey{tr.Src, tr.Dst}]
	if d == nil {
		d = &dedupe{}
		rel.recv[pairKey{tr.Src, tr.Dst}] = d
	}
	if !d.mark(tr.Seq) {
		rel.stats.Duplicates++
		return
	}
	rel.stats.Delivered++
	rel.stats.LatencySum += rel.net.Cycle() - tr.Created
	if tr.Attempts > 0 {
		rel.stats.Recovered++
	}
	if rel.onDeliver != nil {
		rel.onDeliver(tr, p)
	}
}

// Step advances the network one cycle and then fires due retry timers.
// When the network watchdog trips, the error is annotated with the
// reliability layer's view so a genuine routing deadlock is
// distinguishable from a quiet network that is merely waiting out retry
// backoff (the watchdog itself only fires with flits in flight, so pending
// retry timers alone can never trip it).
func (rel *Reliable) Step() error {
	err := rel.net.Step()
	now := rel.net.Cycle()
	for len(rel.timers) > 0 && rel.timers[0].deadline <= now {
		it := rel.timers.pop()
		tr, ok := rel.pending[it.key]
		if !ok || tr.deadline != it.deadline {
			continue // delivered, abandoned, or superseded by a later retry
		}
		rel.retry(tr, now)
	}
	if err != nil && len(rel.pending) > 0 {
		err = fmt.Errorf("%w; reliability layer: %d transfers pending, next retry at cycle %d (retry waits are not deadlocks)",
			err, len(rel.pending), rel.timers[0].deadline)
	}
	return err
}

func (rel *Reliable) retry(tr *Transfer, now int64) {
	if fa := rel.net.faultAware; fa != nil {
		if routeErr := fa.RouteError(tr.Src, tr.Dst); routeErr != nil {
			rel.abandon(tr, routeErr)
			rel.stats.Unreachable++
			return
		}
	}
	if tr.Attempts >= rel.cfg.MaxRetries {
		rel.abandon(tr, fmt.Errorf("noc: transfer %d->%d seq %d abandoned after %d retries",
			tr.Src, tr.Dst, tr.Seq, tr.Attempts))
		rel.stats.Abandoned++
		return
	}
	tr.Attempts++
	if err := rel.inject(tr); err != nil {
		rel.abandon(tr, err)
		rel.stats.Unreachable++
		return
	}
	rel.stats.Retransmissions++
	shift := uint(tr.Attempts)
	if shift > 16 {
		shift = 16
	}
	rel.arm(tr, now+rel.cfg.Timeout<<shift)
}

func (rel *Reliable) abandon(tr *Transfer, cause error) {
	delete(rel.pending, key(tr))
	if rel.onFail != nil {
		rel.onFail(tr, cause)
	}
}

// Pending returns the number of transfers awaiting delivery or retry.
func (rel *Reliable) Pending() int { return len(rel.pending) }

// Quiesced reports whether the network is empty AND no transfer is still
// pending — the condition drain loops must wait for, since a quiet network
// may still owe retransmissions.
func (rel *Reliable) Quiesced() bool {
	return rel.net.Quiesced() && len(rel.pending) == 0
}
