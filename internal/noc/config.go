package noc

import (
	"fmt"

	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// RouterConfig sizes one router.
type RouterConfig struct {
	// VCs is the number of virtual channels per port.
	VCs int
	// BufDepth is the buffer depth per VC in flits.
	BufDepth int
	// Wide marks a big router: its crossbar is double width, so links that
	// touch it carry two flits per cycle (the paper's 256-bit links around
	// 128-bit flits).
	Wide bool
	// SplitDatapath models the HeteroNoC crossbar modifications of Section
	// 3 (Figures 4-6): the input DEMUX and switch MUX are split into two
	// separable halves (DSET1/DSET2) with dual parallel output arbiters, so
	// an input port can source two flits per cycle — toward one wide output
	// (flit combining) or two different outputs. The homogeneous baseline
	// router moves at most one flit per input port per cycle.
	SplitDatapath bool
	// ImprovedSA gives the router the HeteroNoC switch-arbitration upgrade
	// without the split datapath (buffer-only +B designs): when an input
	// port's first nominated VC loses its output, another VC of the port
	// may bid, instead of the nomination being lost for the cycle as in
	// the classic baseline allocator. Implied by SplitDatapath.
	ImprovedSA bool
}

// Config describes a complete network.
type Config struct {
	Topo    topology.Topology
	Routing routing.Algorithm
	// Routers holds one entry per router. A single-element slice is
	// broadcast to all routers.
	Routers []RouterConfig
	// FlitWidthBits is the flit (and buffer) width; it determines packet
	// flit counts and feeds the power model.
	FlitWidthBits int
	// EjectOnly limits terminals to consume at most link-slot flits per
	// cycle (always true in this model; field reserved for extensions).

	// WatchdogCycles aborts the simulation when no flit moves for this many
	// cycles while packets are in flight (deadlock detection). Zero
	// disables the watchdog.
	WatchdogCycles int

	// ShardWorkers enables deterministic intra-cycle sharding: the
	// allocation stages of every eligible Step run over contiguous router
	// spans on a persistent pool of this many workers, with cross-router
	// effects committed sequentially in shard order (see shard.go). Results
	// are bit-identical to the sequential kernel for every worker count.
	// Zero (the default) keeps the plain sequential kernel. Networks built
	// with ShardWorkers > 0 own a worker pool; call Network.Close to
	// release it.
	ShardWorkers int
}

// normalize validates the configuration and expands broadcast fields.
func (c *Config) normalize() error {
	if c.Topo == nil {
		return fmt.Errorf("noc: config missing topology")
	}
	if c.Routing == nil {
		return fmt.Errorf("noc: config missing routing algorithm")
	}
	n := c.Topo.NumRouters()
	switch len(c.Routers) {
	case n:
	case 1:
		rc := c.Routers[0]
		c.Routers = make([]RouterConfig, n)
		for i := range c.Routers {
			c.Routers[i] = rc
		}
	default:
		return fmt.Errorf("noc: config has %d router entries for %d routers", len(c.Routers), n)
	}
	for i, rc := range c.Routers {
		if rc.VCs < 1 || rc.BufDepth < 1 {
			return fmt.Errorf("noc: router %d has invalid VCs=%d depth=%d", i, rc.VCs, rc.BufDepth)
		}
	}
	if c.FlitWidthBits <= 0 {
		return fmt.Errorf("noc: flit width must be positive")
	}
	return topology.Validate(c.Topo)
}

// LinkSlots returns the bandwidth in flits per cycle of the link leaving
// router r through port p: 2 when either endpoint router is wide, else 1.
// Terminal ports follow the width of their router.
func (c *Config) LinkSlots(r, p int) int {
	wide := c.Routers[r].Wide
	if link, ok := c.Topo.Neighbor(r, p); ok {
		wide = wide || c.Routers[link.Router].Wide
	}
	if wide {
		return 2
	}
	return 1
}

// DataPacketFlits returns the flit count of a payload of payloadBits at this
// network's flit width (ceiling division).
func (c *Config) DataPacketFlits(payloadBits int) int {
	n := (payloadBits + c.FlitWidthBits - 1) / c.FlitWidthBits
	if n < 1 {
		n = 1
	}
	return n
}
