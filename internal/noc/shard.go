package noc

// Deterministic intra-cycle sharding. The allocation stages of Step —
// route computation / VC allocation (stage 1a) and switch allocation /
// traversal (stage 1b+2) — only read and write state owned by the router
// being visited: its input VCs, its per-router counters and its own output
// ports. Exactly three effects cross a router boundary, and all three are
// order-independent or order-normalizable:
//
//   - the credit sent upstream when a flit leaves its buffer: each output
//     port's credit queue is filled by exactly one downstream input port,
//     so the shard that owns the downstream router is the queue's only
//     writer this cycle (nothing reads credit queues until next cycle's
//     deliver);
//   - the event-mask bit telling the upstream router it has a queued
//     credit: a read-modify-write on another router's word, so shards
//     buffer (router, port) pairs and the commit phase ORs them in after
//     the join (OR is commutative — any commit order yields the same mask);
//   - the watchdog progress flag and the broken-packet queue: buffered
//     per shard and folded in shard order, which equals ascending router
//     order because shards are contiguous ascending spans.
//
// Under that discipline the merged state is byte-identical to the
// sequential kernel for every worker count, which the golden fingerprints
// and the par determinism test pin down. Sharding is only taken on cycles
// with no cross-cutting machinery active: no tracer (event order), no
// escaper (global escape stats and trace events in stage 1a), no armed
// faults (purges walk the whole network). Those runs fall back to the
// sequential path and stay bit-identical too.

import "heteronoc/internal/par"

// tickFx is the side-effect sink of one allocation pass. The sequential
// kernel uses a single direct sink that applies effects immediately; each
// shard of a parallel pass gets its own deferred sink whose buffered
// effects the commit phase folds in.
type tickFx struct {
	n      *Network
	direct bool     // apply effects immediately (sequential kernel)
	evOr   []uint32 // deferred evMask bits, packed router<<5|port
	moved  bool     // a flit moved (watchdog progress)
	broken []*Packet
	_      [40]byte // keep neighboring shard sinks off one cache line
}

// creditNotify marks the upstream output port's event mask so next cycle's
// deliver visits its freshly queued credit.
func (fx *tickFx) creditNotify(router, port int) {
	if fx.direct {
		fx.n.evMask[router] |= 1 << uint(port)
		return
	}
	fx.evOr = append(fx.evOr, uint32(router)<<5|uint32(port))
}

// progress records that a flit moved this cycle.
func (fx *tickFx) progress() {
	if fx.direct {
		fx.n.lastMove = fx.n.cycle
		return
	}
	fx.moved = true
}

// markBroken queues a packet for purging; the first cause wins. Only the
// shard holding the packet's head flit can reach it, so the flag write is
// single-writer even in a parallel pass.
func (fx *tickFx) markBroken(p *Packet, why DropReason) {
	if p == nil || p.broken {
		return
	}
	p.broken = true
	p.dropWhy = why
	if fx.direct {
		fx.n.brokenQ = append(fx.n.brokenQ, p)
		return
	}
	fx.broken = append(fx.broken, p)
}

// SetShardWorkers reconfigures intra-cycle sharding: w > 0 runs the
// allocation stages of every eligible Step on a persistent pool of w
// workers (w = 1 exercises the sharded path serially), 0 restores the
// plain sequential kernel. Requests beyond the router count are clamped —
// extra workers could never hold a router and would only idle in the pool.
// Results are bit-identical in every mode. Call Close when done with a
// sharded network to release the pool.
func (n *Network) SetShardWorkers(w int) {
	if n.pool != nil {
		n.pool.Close()
		n.pool = nil
	}
	if w <= 0 {
		n.shards = nil
		return
	}
	if nr := len(n.routers); w > nr {
		w = nr
	}
	n.pool = par.NewPool(w)
	// One sink per steal chunk, not per worker: the pool oversubscribes
	// the tick into Shards(n) chunks and hands fn the chunk index.
	n.shards = make([]tickFx, n.pool.Shards(len(n.routers)))
	for i := range n.shards {
		n.shards[i].n = n
	}
}

// ShardWorkers returns the effective (post-clamp) worker count of the
// intra-cycle sharding pool, or 0 when the sequential kernel is active.
func (n *Network) ShardWorkers() int {
	if n.pool == nil {
		return 0
	}
	return n.pool.Workers()
}

// Close releases the shard worker pool, if any. The network remains usable
// sequentially. Idempotent.
func (n *Network) Close() {
	if n.pool != nil {
		n.pool.Close()
		n.pool = nil
		n.shards = nil
	}
}

// shardable reports whether this cycle's allocation stages may run on the
// worker pool: no machinery with global side effects can be active.
func (n *Network) shardable() bool {
	return n.pool != nil && n.tracer == nil && n.escaper == nil && !n.faultsArmed
}

// allocateSharded runs stages 1a and 1b+2 over contiguous router spans on
// the worker pool, then commits the buffered cross-router effects in shard
// order.
func (n *Network) allocateSharded() {
	shards := n.shards
	n.pool.ShardedTick(len(n.routers), func(shard, lo, hi int) {
		fx := &shards[shard]
		n.routeAndAllocate(lo, hi, fx)
		n.switchAllocate(lo, hi, fx)
	})
	for i := range shards {
		fx := &shards[i]
		for _, e := range fx.evOr {
			n.evMask[e>>5] |= 1 << (e & 31)
		}
		fx.evOr = fx.evOr[:0]
		if fx.moved {
			n.lastMove = n.cycle
			fx.moved = false
		}
		if len(fx.broken) > 0 {
			n.brokenQ = append(n.brokenQ, fx.broken...)
			for j := range fx.broken {
				fx.broken[j] = nil
			}
			fx.broken = fx.broken[:0]
		}
	}
}
