package noc

import (
	"testing"

	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// buildContention sets up a 3x3 mesh where two input ports of the center
// router want different outputs, but the port scan order makes the classic
// allocator waste a cycle that the improved SA recovers. We measure the
// aggregate effect instead of a single cycle: under identical adversarial
// traffic, the ImprovedSA router must deliver no less and finish no later.
func runContention(t *testing.T, improved bool) int64 {
	t.Helper()
	m := topology.NewMesh(8, 8)
	n, err := New(Config{
		Topo:    m,
		Routing: routing.NewXY(m),
		Routers: []RouterConfig{{
			VCs: 3, BufDepth: 5, ImprovedSA: improved,
		}},
		FlitWidthBits:  192,
		WatchdogCycles: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Heavy crossing flows through the center: rows and columns all fire.
	for wave := 0; wave < 40; wave++ {
		for i := 0; i < 8; i++ {
			n.Inject(&Packet{Src: m.RouterAt(0, i), Dst: m.RouterAt(7, i), NumFlits: 6})
			n.Inject(&Packet{Src: m.RouterAt(i, 0), Dst: m.RouterAt(i, 7), NumFlits: 6})
		}
	}
	runUntilQuiesced(t, n, 1000000)
	return n.Cycle()
}

func TestImprovedSANotSlower(t *testing.T) {
	classic := runContention(t, false)
	improved := runContention(t, true)
	if improved > classic {
		t.Errorf("improved SA drained in %d cycles, classic in %d", improved, classic)
	}
}

func TestSplitDatapathMovesTwoFlitsPerInput(t *testing.T) {
	// A single small split-datapath router with a wide output can forward
	// two flits per cycle from one input port (two VCs); the classic
	// router cannot. Measure drain time of two packets sharing a source
	// port toward one wide destination.
	build := func(split bool) int64 {
		m := topology.NewMesh(2, 2)
		// Routers 0 and 1 are both wide (so every link on the path moves
		// two flits per cycle); only the datapath/allocator flexibility
		// differs between the two runs.
		cfgs := []RouterConfig{
			{VCs: 6, BufDepth: 5, Wide: true, SplitDatapath: split},
			{VCs: 6, BufDepth: 5, Wide: true, SplitDatapath: split},
			{VCs: 2, BufDepth: 5, SplitDatapath: split},
			{VCs: 2, BufDepth: 5, SplitDatapath: split},
		}
		n, err := New(Config{
			Topo:           m,
			Routing:        routing.NewXY(m),
			Routers:        cfgs,
			FlitWidthBits:  128,
			WatchdogCycles: 10000,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Two packets 0->1 on a wide local/link path: with the split
		// datapath and pairing, the shared links carry 2 flits/cycle.
		n.Inject(&Packet{Src: 0, Dst: 1, NumFlits: 8})
		n.Inject(&Packet{Src: 0, Dst: 1, NumFlits: 8})
		runUntilQuiesced(t, n, 2000)
		return n.Cycle()
	}
	withSplit := build(true)
	without := build(false)
	if withSplit >= without {
		t.Errorf("split datapath drained in %d cycles, classic in %d — expected faster", withSplit, without)
	}
}

func TestWideOutputNeverExceedsTwoFlitsPerCycle(t *testing.T) {
	// Conservation audit: on an all-wide network under saturation, each
	// output's flits-sent never exceeds 2x its busy cycles.
	m := topology.NewMesh(4, 4)
	n, err := New(Config{
		Topo:           m,
		Routing:        routing.NewXY(m),
		Routers:        []RouterConfig{{VCs: 4, BufDepth: 5, Wide: true, SplitDatapath: true}},
		FlitWidthBits:  128,
		WatchdogCycles: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for wave := 0; wave < 100; wave++ {
		for s := 0; s < 16; s++ {
			n.Inject(&Packet{Src: s, Dst: (s + 5) % 16, NumFlits: 6})
		}
	}
	runUntilQuiesced(t, n, 200000)
	for r := range n.routers {
		for p, op := range n.routers[r].out {
			if op.dead {
				continue
			}
			if op.flitsSent > 2*op.busyCycles {
				t.Fatalf("router %d port %d sent %d flits in %d busy cycles", r, p, op.flitsSent, op.busyCycles)
			}
		}
	}
}
