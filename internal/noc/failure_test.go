package noc

import (
	"math/rand"
	"strings"
	"testing"

	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// cyclicRouting is an adversarial algorithm whose four flows form the
// classic turn cycle on a 2x2 mesh (E->S, S->W, W->N, N->E), which must
// deadlock a single-VC wormhole network. It exists to prove the watchdog
// detects real deadlocks rather than merely timing out idle networks.
type cyclicRouting struct{ m *topology.Mesh }

func (c cyclicRouting) Name() string                  { return "cyclic(adversarial)" }
func (c cyclicRouting) NumVCClasses() int             { return 1 }
func (c cyclicRouting) InitialClass(src, dst int) int { return 0 }
func (c cyclicRouting) ClassVCs(_, n int) (int, int)  { return 0, n }
func (c cyclicRouting) NextHop(r, src, dst, cl int) Decision {
	// Router grid: 0 1 / 2 3. Flows: 0->3 goes E(1) then S(3);
	// 1->2 goes S(3) then W(2); 3->0 goes W(2) then N(0); 2->1 goes N(0)
	// then E(1). Every hop waits on the next link of the cycle.
	type hop = Decision
	routes := map[[2]int]int{
		{0, 3}: topology.PortEast, {1, 3}: topology.PortSouth,
		{1, 2}: topology.PortSouth, {3, 2}: topology.PortWest,
		{3, 0}: topology.PortWest, {2, 0}: topology.PortNorth,
		{2, 1}: topology.PortNorth, {0, 1}: topology.PortEast,
	}
	dstR, dstP := c.m.TerminalRouter(dst)
	if r == dstR {
		return hop{OutPort: dstP}
	}
	if p, ok := routes[[2]int{r, dst}]; ok {
		return hop{OutPort: p}
	}
	// Fallback (unused by the test flows).
	return NewXYForTest(c.m).NextHop(r, src, dst, cl)
}

// NewXYForTest re-exports routing.NewXY for the adversarial fallback.
func NewXYForTest(m *topology.Mesh) interface {
	NextHop(r, src, dst, cl int) Decision
} {
	return xyAdapter{routing.NewXY(m)}
}

type xyAdapter struct{ alg *routing.XY }

func (a xyAdapter) NextHop(r, src, dst, cl int) Decision {
	return a.alg.NextHop(r, src, dst, cl)
}

// Decision aliases routing.Decision so the adversarial algorithm can
// implement routing.Algorithm from inside this package's tests.
type Decision = routing.Decision

func TestWatchdogDetectsInjectedDeadlock(t *testing.T) {
	m := topology.NewMesh(2, 2)
	n, err := New(Config{
		Topo:           m,
		Routing:        cyclicRouting{m},
		Routers:        []RouterConfig{{VCs: 1, BufDepth: 2}},
		FlitWidthBits:  192,
		WatchdogCycles: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Long packets on all four cyclic flows: each head acquires its first
	// link while its body still occupies the previous one; the four flows
	// wait on each other forever.
	for _, f := range [][2]int{{0, 3}, {1, 2}, {3, 0}, {2, 1}} {
		for k := 0; k < 4; k++ {
			n.Inject(&Packet{Src: f[0], Dst: f[1], NumFlits: 8})
		}
	}
	var gotErr error
	for i := 0; i < 5000; i++ {
		if err := n.Step(); err != nil {
			gotErr = err
			break
		}
	}
	if gotErr == nil {
		t.Fatal("watchdog did not fire on a genuine routing deadlock")
	}
	if !strings.Contains(gotErr.Error(), "deadlock watchdog") {
		t.Fatalf("unexpected error: %v", gotErr)
	}
}

func TestEscapeVCsEngageUnderTablePressure(t *testing.T) {
	// Table-routed zig-zag paths with a tiny escape threshold: under heavy
	// contention some packets must divert to the escape network, and all
	// of them must still arrive.
	m := topology.NewMesh(8, 8)
	big := make([]bool, 64)
	routers := make([]RouterConfig, 64)
	for r := range routers {
		routers[r] = RouterConfig{VCs: 2, BufDepth: 5, SplitDatapath: true}
	}
	for i := 0; i < 8; i++ {
		for _, r := range []int{m.RouterAt(i, i), m.RouterAt(7-i, i)} {
			big[r] = true
			routers[r] = RouterConfig{VCs: 6, BufDepth: 5, Wide: true, SplitDatapath: true}
		}
	}
	alg := routing.NewTableXY(m, routing.TableXYConfig{
		Flagged:         []int{0, 7, 56, 63},
		Big:             big,
		EscapeThreshold: 4, // aggressive, to force escapes
	})
	n, err := New(Config{Topo: m, Routing: alg, Routers: routers, FlitWidthBits: 128, WatchdogCycles: 50000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	want, got := 0, 0
	n.SetOnPacket(func(p *Packet) { got++ })
	for cycle := 0; cycle < 3000; cycle++ {
		for _, lc := range []int{0, 7, 56, 63} {
			if rng.Float64() < 0.5 {
				n.Inject(&Packet{Src: lc, Dst: rng.Intn(64), NumFlits: 6})
				want++
			}
		}
		for src := 0; src < 64; src++ {
			if rng.Float64() < 0.04 {
				n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 6})
				want++
			}
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	runUntilQuiesced(t, n, 500000)
	if got != want {
		t.Fatalf("delivered %d of %d", got, want)
	}
	if n.Stats().Escapes == 0 {
		t.Error("no escapes despite a 4-cycle threshold under heavy load")
	}
}
