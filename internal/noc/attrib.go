package noc

// Causal latency attribution: every cycle of a delivered packet's life is
// accounted to exactly one cause bucket, per hop, on an always-on counter
// path that is far cheaper than the full DetailTracer event stream.
//
// The accounting is exact by construction. For a packet with H hops the
// head flit visits H+1 routers; its delivery timeline telescopes as
//
//	RecvCycle - CreateCycle =
//	    (InjectCycle - CreateCycle)        source NI queue wait
//	  + 1 + 3*(H+1)                        contention-free pipeline + links
//	  + sum over visits of stall_i         contention at each router
//	  + (RecvCycle - headRecv)             body-flit serialization/drain
//
// where stall_i = sendCycle - arriveCycle - 1 at visit i (a freshly
// buffered head becomes eligible one cycle after arrival and needs one
// eligible cycle even with zero contention — those cycles are part of the
// 3-per-visit pipeline term). Each stall cycle is further split: cycles
// where the head lost downstream VC allocation are counted incrementally
// at the allocation attempt (AttrVCAlloc), cycles where the head sat at
// the front of an allocated VC without a downstream credit are counted at
// the switch-allocator's credit check (AttrCredit), and the remainder —
// lost switch arbitration, waiting behind the predecessor worm in the
// same buffer, and credit gaps on cycles the allocator never reached the
// VC — is the switch-allocation bucket (AttrSwitchAlloc). The two counted
// sets are disjoint (a VC is either waiting for a VC or holding one) and
// neither can include the send cycle itself, so the remainder is never
// negative and the six buckets sum to the measured end-to-end latency
// exactly — the invariant TestAttributionExactSum pins.
//
// All attribution state lives on the packet whose head the visited router
// holds, plus per-router rollup counters written only at head settlement
// inside that router — the same single-writer-per-pass discipline the
// sharded tick already relies on, so attribution is race-free at any
// worker count. None of the counters feed Stats.Fingerprint or
// Network.Fingerprint: attribution is observation-only and golden
// fingerprints are byte-identical with it on or off.

import (
	"fmt"
	"io"

	"heteronoc/internal/obs"
)

// AttrBucket indexes the causal latency buckets of the attribution layer.
type AttrBucket int

const (
	// AttrQueue is residency in the source NI injection queue.
	AttrQueue AttrBucket = iota
	// AttrVCAlloc counts cycles the head flit lost downstream virtual
	// channel allocation.
	AttrVCAlloc
	// AttrSwitchAlloc counts head stall cycles charged to switch
	// allocation: lost arbitration, waiting behind the predecessor worm,
	// and credit gaps outside the allocator's visit.
	AttrSwitchAlloc
	// AttrCredit counts cycles the head sat at the front of an allocated
	// VC with no downstream credit (backpressure).
	AttrCredit
	// AttrLink is the contention-free pipeline and link traversal time:
	// one NI wire cycle plus three cycles per router visit.
	AttrLink
	// AttrSerialization is the drain time of the body flits behind the
	// head (tail arrival minus head arrival at the destination).
	AttrSerialization

	// NumAttrBuckets is the bucket count (array length of rollups).
	NumAttrBuckets
)

func (b AttrBucket) String() string {
	switch b {
	case AttrQueue:
		return "queue"
	case AttrVCAlloc:
		return "vc_alloc"
	case AttrSwitchAlloc:
		return "switch_alloc"
	case AttrCredit:
		return "credit"
	case AttrLink:
		return "link"
	case AttrSerialization:
		return "serialization"
	}
	return "?"
}

// AttrBucketNames returns the bucket names in index order.
func AttrBucketNames() []string {
	out := make([]string, NumAttrBuckets)
	for b := AttrBucket(0); b < NumAttrBuckets; b++ {
		out[b] = b.String()
	}
	return out
}

// SetAttribution toggles the always-on attribution counter path (default
// on). Turning it off mid-flight leaves packets partially attributed, so
// benchmarks flip it before the first Step. The toggle never changes
// simulated behavior or fingerprints.
func (n *Network) SetAttribution(on bool) { n.atrOn = on }

// AttributionEnabled reports whether the counter path is armed.
func (n *Network) AttributionEnabled() bool { return n.atrOn }

// Attribution returns the packet's causal latency decomposition in
// cycles. It is meaningful once the packet has been delivered (observed
// via SetOnPacket or after RecvCycle is set) on a network with
// attribution enabled for the packet's whole lifetime; the buckets then
// sum exactly to RecvCycle-CreateCycle.
func (p *Packet) Attribution() [NumAttrBuckets]int64 {
	var a [NumAttrBuckets]int64
	a[AttrQueue] = p.InjectCycle - p.CreateCycle
	a[AttrVCAlloc] = p.atrVC
	a[AttrSwitchAlloc] = p.atrSA
	a[AttrCredit] = p.atrCredit
	a[AttrLink] = int64(1 + 3*(p.Hops+1))
	a[AttrSerialization] = p.RecvCycle - p.headRecv
	return a
}

// Attribution returns the summed per-bucket cycles over packets received
// in the measurement window.
func (s *Stats) Attribution() [NumAttrBuckets]int64 { return s.attr }

// AttrResidual is TotalLatency minus the sum of the attribution buckets
// over the measurement window — zero whenever attribution was enabled for
// every measured packet's whole lifetime.
func (s *Stats) AttrResidual() int64 {
	r := s.TotalLatency
	for _, v := range s.attr {
		r -= v
	}
	return r
}

// RouterAttribution returns the per-router stall-cycle rollup since the
// last ResetStats: contention buckets at the router where the head
// stalled, queue wait and the NI wire cycle at the source router,
// serialization at the destination router. Summed over routers the
// rollup equals the per-packet attribution summed over every packet
// delivered in the window (fault-free runs).
func (n *Network) RouterAttribution() [][NumAttrBuckets]int64 {
	out := make([][NumAttrBuckets]int64, len(n.routers))
	for r := range n.routers {
		out[r] = n.routers[r].atr
	}
	return out
}

// settleAttrHop folds the per-hop scratch counters of a departing head
// flit into the packet and the router rollup. Called from sendFlit with
// the settling router; the switch-allocation bucket is the remainder of
// the measured hop stall after the incrementally counted causes.
func (n *Network) settleAttrHop(rt *router, f *Flit) {
	p := f.Pkt
	stall := n.cycle - f.arrive - 1
	sa := stall - int64(p.hopVC) - int64(p.hopCredit)
	p.atrVC += int64(p.hopVC)
	p.atrCredit += int64(p.hopCredit)
	p.atrSA += sa
	rt.atr[AttrVCAlloc] += int64(p.hopVC)
	rt.atr[AttrCredit] += int64(p.hopCredit)
	rt.atr[AttrSwitchAlloc] += sa
	rt.atr[AttrLink] += 3
	if n.attrRec != nil {
		n.attrRec.AttrHop(AttrHopRec{
			Cycle:  n.cycle,
			Packet: p.ID,
			Router: int32(rt.id),
			VC:     int32(p.hopVC),
			SA:     int32(sa),
			Credit: int32(p.hopCredit),
		})
	}
	p.hopVC, p.hopCredit = 0, 0
}

// AttrHopRec is one per-hop attribution record of the opt-in record mode:
// the head flit of Packet left Router at Cycle after VC cycles of VC
// allocation stall, SA cycles of switch-allocation stall and Credit
// cycles of credit starvation at that router.
type AttrHopRec struct {
	Cycle          int64
	Packet         uint64
	Router         int32
	VC, SA, Credit int32
}

// AttrRecorder receives per-hop attribution records. Implementations run
// inside the sharded tick and must confine writes as a DetailTracer
// would; AttrTrace below is the stock single-threaded recorder (install
// it only on unsharded networks, like the DetailTracer).
type AttrRecorder interface {
	AttrHop(AttrHopRec)
}

// SetAttrRecorder installs the opt-in per-hop record mode (nil disables).
// Records flow only while attribution itself is enabled.
func (n *Network) SetAttrRecorder(r AttrRecorder) { n.attrRec = r }

// AttrTrace is a bounded recorder of per-hop attribution records: a
// fixed-capacity overwrite ring, convertible to a Perfetto-loadable
// Chrome trace of per-router stall counters.
type AttrTrace struct {
	buf     []AttrHopRec
	head    int
	n       int
	dropped uint64
}

// NewAttrTrace builds a recorder holding up to capacity records (zero
// means 65536); the oldest records are overwritten past that.
func NewAttrTrace(capacity int) *AttrTrace {
	if capacity <= 0 {
		capacity = 65536
	}
	return &AttrTrace{buf: make([]AttrHopRec, capacity)}
}

// AttrHop implements AttrRecorder.
func (t *AttrTrace) AttrHop(rec AttrHopRec) {
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.dropped++
	}
	t.buf[t.head] = rec
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
	}
}

// Dropped returns how many records ring wrap-around overwrote.
func (t *AttrTrace) Dropped() uint64 { return t.dropped }

// Records returns the live records in capture order.
func (t *AttrTrace) Records() []AttrHopRec {
	out := make([]AttrHopRec, 0, t.n)
	start := t.head - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		j := start + i
		if j >= len(t.buf) {
			j -= len(t.buf)
		}
		out = append(out, t.buf[j])
	}
	return out
}

// AttrChromeEvents converts hop records into Chrome trace events for
// Perfetto (1 cycle = 1 µs): one process per router, an instant event per
// settled hop carrying the stall split, and running cumulative stall
// counters per router so congestion growth is visible as counter tracks.
func AttrChromeEvents(recs []AttrHopRec) []obs.ChromeEvent {
	out := make([]obs.ChromeEvent, 0, 2*len(recs))
	type tally struct{ vc, sa, credit int64 }
	seen := map[int32]*tally{}
	for i := range recs {
		rec := &recs[i]
		pid := int(rec.Router)
		tl := seen[rec.Router]
		if tl == nil {
			tl = &tally{}
			seen[rec.Router] = tl
			out = append(out, obs.ProcessName(pid, fmt.Sprintf("router %d", pid)))
			out = append(out, obs.ThreadName(pid, 0, "hops"))
		}
		tl.vc += int64(rec.VC)
		tl.sa += int64(rec.SA)
		tl.credit += int64(rec.Credit)
		out = append(out, obs.ChromeEvent{
			Name: "hop", Cat: "attr", Ph: "i", S: "t",
			TS: float64(rec.Cycle), PID: pid, TID: 0,
			Args: map[string]any{
				"packet": rec.Packet, "vc_stall": rec.VC,
				"sa_stall": rec.SA, "credit_stall": rec.Credit,
			},
		})
		out = append(out, obs.ChromeEvent{
			Name: "stall_cycles", Ph: "C", TS: float64(rec.Cycle), PID: pid,
			Args: map[string]any{
				"vc_alloc": tl.vc, "switch_alloc": tl.sa, "credit": tl.credit,
			},
		})
	}
	return out
}

// WriteChromeTrace exports the recorder's live records as Chrome
// trace-event JSON, loadable in Perfetto.
func (t *AttrTrace) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, AttrChromeEvents(t.Records()))
}
