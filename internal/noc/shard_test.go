package noc

import (
	"runtime"
	"testing"
	"time"
)

// TestCloseReleasesPoolGoroutines pins the shard pool's lifecycle: Close
// joins the worker goroutines, is idempotent, and leaves the network
// usable sequentially. This is the leak-audit companion to the
// experiments package's end-to-end goroutine test — the shard pool is the
// only construct in the simulator that outlives a Step call.
func TestCloseReleasesPoolGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	n := newMeshNet(t)
	n.SetShardWorkers(4)
	n.Inject(&Packet{Src: 0, Dst: 63, NumFlits: 4})
	for i := 0; i < 50; i++ {
		n.Step()
	}
	n.Close()
	n.Close() // idempotent

	deadline := time.Now().Add(5 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines grew %d -> %d after Close", before, after)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The closed network keeps stepping on the sequential kernel.
	cyc := n.Cycle()
	for i := 0; i < 20; i++ {
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if n.Cycle() != cyc+20 {
		t.Fatalf("network stopped advancing after Close: %d -> %d", cyc, n.Cycle())
	}

	// Re-arming sharding after Close works too.
	n.SetShardWorkers(2)
	defer n.Close()
	if err := n.Step(); err != nil {
		t.Fatal(err)
	}
}
