package noc

// Deterministic checkpointing (the NOCCKPT01 "noc-net" and "noc-rel"
// kinds). Snapshot serializes every piece of dynamic network state —
// queued and in-flight packets, VC buffers and allocation state, credits,
// wire and credit event queues, round-robin pointers, statistics, and the
// fault overlay — such that restoring into a freshly constructed Network
// with the same Config reproduces the golden fingerprint bit-for-bit and
// every subsequent Step behaves exactly as the original would have,
// including under ShardWorkers > 0 (sharding reads only committed state,
// which the snapshot captures in full).
//
// Identity-only state is deliberately not serialized: free lists and
// arena backing stores affect allocation reuse, never behavior, so a
// restored network simply starts with empty pools. Structure (topology,
// VC counts, buffer depths, link widths) is rebuilt by New(cfg) and only
// validated against a signature embedded in the checkpoint.
//
// Packets form a pointer graph (a packet is referenced from an NI queue,
// VC ownership tables, buffered flits and wire events at once). They are
// collected into a table in a deterministic walk order and all references
// are stored as table indices, so identity — which the purge and
// invariant machinery rely on — survives the round trip.

import (
	"fmt"
	"sort"

	"heteronoc/internal/ckpt"
	"heteronoc/internal/fault"
	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

const (
	// KindNetwork labels a plain Network checkpoint.
	KindNetwork = "noc-net"
	// KindReliable labels a Reliable (network + retransmission state)
	// checkpoint.
	KindReliable = "noc-rel"

	// Format v2 compacts the steady state: an idle input VC costs one
	// flag byte and a quiet output port one flag varint, so a quiesced
	// 32x32 (1024-router) checkpoint stays small instead of spelling out
	// thousands of pristine credit arrays and empty event queues.
	netSnapshotVersion = 3
	relSnapshotVersion = 3
)

// outputPort snapshot flag bits (format v2). Each bit gates a group of
// fields that is omitted entirely when the group holds its
// construction-time defaults; a fully quiet port costs a single zero
// varint.
const (
	opHasFault   = 1 << iota // dead, or a transient-fault window
	opHasCredits             // consumed credits, owners or pending frees
	opHasArb     // advanced round-robin pointers
	opHasEvents  // queued wire or credit events
	opHasStats   // nonzero traffic counters
	opFlagsAll   = opHasFault | opHasCredits | opHasArb | opHasEvents | opHasStats
)

// pristineCreditMask returns the creditMask an untouched port holds: all
// downstream VCs credited, or the all-ones sentinel of credit-less
// (terminal / dead-edge) ports.
func pristineCreditMask(op *outputPort) uint32 {
	if op.credits == nil {
		return ^uint32(0)
	}
	return uint32(1)<<op.downVCs - 1
}

// outputPortFlags computes which v2 field groups of a port differ from
// their construction-time defaults.
func outputPortFlags(op *outputPort) uint64 {
	var flags uint64
	if op.dead || op.faultUntil != 0 || op.faultCorrupt {
		flags |= opHasFault
	}
	dirty := op.creditMask != pristineCreditMask(op)
	for v := 0; !dirty && v < len(op.credits); v++ {
		dirty = op.credits[v] != op.downDepth || op.owner[v] != nil || op.pendingFree[v]
	}
	if dirty {
		flags |= opHasCredits
	}
	if op.rrVC != 0 || op.rrOut != 0 {
		flags |= opHasArb
	}
	if op.wire.len() > 0 || op.creditQ.len() > 0 {
		flags |= opHasEvents
	}
	if op.flitsSent != 0 || op.busyCycles != 0 || op.combineCycles != 0 {
		flags |= opHasStats
	}
	return flags
}

// PayloadCodec serializes opaque Packet payloads. A nil codec is valid
// for payload-free traffic (synthetic patterns); Snapshot fails if it
// meets a non-nil payload without a codec.
type PayloadCodec interface {
	EncodePayload(w *ckpt.Writer, payload any) error
	DecodePayload(r *ckpt.Reader) (any, error)
}

// Snapshot serializes the complete dynamic state of the network.
func (n *Network) Snapshot(codec PayloadCodec) ([]byte, error) {
	w := ckpt.NewWriter(ckpt.Header{
		Kind:        KindNetwork,
		Version:     netSnapshotVersion,
		Cycle:       n.cycle,
		Flits:       int64(n.flitsInNetwork),
		Queued:      int64(n.queuedPackets),
		NextPktID:   n.nextPktID,
		Fingerprint: n.Fingerprint(),
	})
	if err := n.encode(w, codec); err != nil {
		return nil, err
	}
	return w.Finish(), nil
}

// RestoreSnapshot loads a Snapshot into n, which must be a freshly
// constructed (never stepped) Network built from the same Config. After
// the restore the network's fingerprint is verified against the one
// recorded at snapshot time; a mismatch means the checkpoint and the
// target config disagree and the restore is rejected.
func (n *Network) RestoreSnapshot(data []byte, codec PayloadCodec) error {
	r, err := ckpt.NewReader(data)
	if err != nil {
		return err
	}
	h := r.Header()
	if h.Kind != KindNetwork {
		return fmt.Errorf("noc: checkpoint kind %q, want %q", h.Kind, KindNetwork)
	}
	if h.Version != netSnapshotVersion {
		return fmt.Errorf("noc: checkpoint version %d, want %d", h.Version, netSnapshotVersion)
	}
	if err := n.decode(r, codec, h); err != nil {
		return err
	}
	if err := r.Done(); err != nil {
		return err
	}
	if got := n.Fingerprint(); got != h.Fingerprint {
		return fmt.Errorf("noc: restored fingerprint %016x != checkpoint %016x (config mismatch?)", got, h.Fingerprint)
	}
	return nil
}

// encode writes everything after the container header.
func (n *Network) encode(w *ckpt.Writer, codec PayloadCodec) error {
	n.encodeSignature(w)
	w.I64(n.lastMove)

	table, index, err := n.collectPackets(w, codec)
	if err != nil {
		return err
	}
	_ = table

	// Network interfaces.
	for t := range n.nis {
		q := &n.nis[t]
		w.Int(q.queued())
		for i := q.qHead; i < len(q.queue); i++ {
			w.Int(index[q.queue[i]])
		}
		w.Int(len(q.streams))
		for i := range q.streams {
			st := &q.streams[i]
			w.Int(index[st.pkt])
			w.Int(st.nextSeq)
			w.Int(st.vc)
		}
		w.Int(q.waitVC)
		encodeOutputPort(w, &q.up, index)
	}

	// Routers.
	for ri := range n.routers {
		rt := &n.routers[ri]
		w.Int(int(n.inFlits[ri]))
		w.U64(uint64(n.portMask[ri]))
		w.U64(uint64(n.evMask[ri]))
		w.I64(rt.bufOccSum)
		w.I64(rt.bufReads)
		w.I64(rt.bufWrites)
		w.I64(rt.xbarFlits)
		w.I64(rt.arbOps)
		for _, v := range rt.atr {
			w.I64(v)
		}
		for pi := range rt.in {
			ip := &rt.in[pi]
			w.Int(ip.rr)
			w.Int(ip.flits)
			w.U64(uint64(ip.raMask))
			w.U64(uint64(ip.saMask))
			for vi := range ip.vcs {
				vc := &ip.vcs[vi]
				// Idle-VC flag byte (format v2): a VC with no buffered
				// flit and no allocation is fully described by one byte.
				// Its remaining fields are stale scratch the kernel never
				// reads in this state (outPort/class are rewritten when
				// the next head routes, headArrive when the next flit
				// lands), so restore canonicalizes them to zero.
				idle := vc.state == vcIdle && vc.buf.count == 0
				w.Bool(idle)
				if idle {
					continue
				}
				w.U64(uint64(vc.state))
				w.Int(int(vc.outPort))
				w.Int(int(vc.outVC))
				w.Int(int(vc.class))
				w.I64(int64(vc.waitCycles))
				w.Int(index[vc.cur])
				w.I64(vc.headArrive)
				w.Int(vc.buf.len())
				for i := int32(0); i < vc.buf.count; i++ {
					encodeFlit(w, *vc.buf.at(i), index)
				}
			}
		}
		for _, op := range rt.out {
			encodeOutputPort(w, op, index)
		}
	}

	n.encodeStats(w)
	n.encodeFaults(w, index)
	return nil
}

// encodeSignature writes the structural identity of the network so a
// restore into a differently shaped target fails loudly instead of
// corrupting state.
func (n *Network) encodeSignature(w *ckpt.Writer) {
	// The topology name (e.g. "mesh8x8") pins the exact shape: fixed-radix
	// topologies make same-count meshes (8x8 vs 4x16) indistinguishable by
	// the per-router counts alone.
	w.Str(n.cfg.Topo.Name())
	w.Int(len(n.routers))
	w.Int(len(n.nis))
	for ri := range n.routers {
		rt := &n.routers[ri]
		w.Int(len(rt.in))
		w.Int(rt.cfg.VCs)
		w.Int(rt.cfg.BufDepth)
		for _, op := range rt.out {
			w.Int(op.slots)
		}
	}
}

func (n *Network) checkSignature(r *ckpt.Reader) error {
	bad := func(what string, got, want int) error {
		return fmt.Errorf("noc: checkpoint %s %d, target network has %d", what, got, want)
	}
	if v := r.Str(); v != n.cfg.Topo.Name() {
		return fmt.Errorf("noc: checkpoint topology %q, target network is %q", v, n.cfg.Topo.Name())
	}
	if v := r.Int(); v != len(n.routers) {
		return bad("router count", v, len(n.routers))
	}
	if v := r.Int(); v != len(n.nis) {
		return bad("terminal count", v, len(n.nis))
	}
	for ri := range n.routers {
		rt := &n.routers[ri]
		if v := r.Int(); v != len(rt.in) {
			return bad(fmt.Sprintf("router %d radix", ri), v, len(rt.in))
		}
		if v := r.Int(); v != rt.cfg.VCs {
			return bad(fmt.Sprintf("router %d VCs", ri), v, rt.cfg.VCs)
		}
		if v := r.Int(); v != rt.cfg.BufDepth {
			return bad(fmt.Sprintf("router %d buffer depth", ri), v, rt.cfg.BufDepth)
		}
		for p, op := range rt.out {
			if v := r.Int(); v != op.slots {
				return bad(fmt.Sprintf("router %d port %d link slots", ri, p), v, op.slots)
			}
		}
	}
	return r.Err()
}

// collectPackets walks every packet reference in deterministic order,
// assigns table indices, and writes the packet table. index maps nil to
// -1 so reference sites can encode unconditionally.
func (n *Network) collectPackets(w *ckpt.Writer, codec PayloadCodec) ([]*Packet, map[*Packet]int, error) {
	var table []*Packet
	index := map[*Packet]int{nil: -1}
	add := func(p *Packet) {
		if p == nil {
			return
		}
		if _, ok := index[p]; !ok {
			index[p] = len(table)
			table = append(table, p)
		}
	}
	for t := range n.nis {
		q := &n.nis[t]
		for i := q.qHead; i < len(q.queue); i++ {
			add(q.queue[i])
		}
		for i := range q.streams {
			add(q.streams[i].pkt)
		}
		collectPortPackets(&q.up, add)
	}
	for ri := range n.routers {
		rt := &n.routers[ri]
		for pi := range rt.in {
			ip := &rt.in[pi]
			for vi := range ip.vcs {
				vc := &ip.vcs[vi]
				for i := int32(0); i < vc.buf.count; i++ {
					add(vc.buf.at(i).Pkt)
				}
				add(vc.cur)
			}
		}
		for _, op := range rt.out {
			collectPortPackets(op, add)
		}
	}
	for _, p := range n.brokenQ {
		add(p)
	}

	w.Int(len(table))
	for _, p := range table {
		w.U64(p.ID)
		w.Int(p.Src)
		w.Int(p.Dst)
		w.Int(p.NumFlits)
		w.Int(p.Class)
		w.I64(p.CreateCycle)
		w.I64(p.InjectCycle)
		w.I64(p.RecvCycle)
		w.Int(p.Hops)
		w.Int(p.MinSlots)
		w.Int(p.vcClass)
		w.Bool(p.escaped)
		w.Int(p.received)
		w.Bool(p.broken)
		w.U64(uint64(p.dropWhy))
		w.I64(p.headRecv)
		w.I64(p.atrVC)
		w.I64(p.atrSA)
		w.I64(p.atrCredit)
		w.Int(int(p.hopVC))
		w.Int(int(p.hopCredit))
		if p.Payload == nil {
			w.Bool(false)
			continue
		}
		if codec == nil {
			return nil, nil, fmt.Errorf("noc: packet %d carries a payload but no PayloadCodec was given", p.ID)
		}
		w.Bool(true)
		if err := codec.EncodePayload(w, p.Payload); err != nil {
			return nil, nil, fmt.Errorf("noc: encoding payload of packet %d: %w", p.ID, err)
		}
	}
	return table, index, nil
}

func collectPortPackets(op *outputPort, add func(*Packet)) {
	for i := 0; i < op.wire.len(); i++ {
		add(op.wire.at(i).flit.Pkt)
	}
	for _, p := range op.owner {
		add(p)
	}
}

func encodeFlit(w *ckpt.Writer, f Flit, index map[*Packet]int) {
	w.Int(index[f.Pkt])
	w.I64(f.arrive)
	w.I64(int64(f.Seq))
	w.U64(uint64(f.Kind))
	w.U64(uint64(f.Csum))
}

func decodeFlit(r *ckpt.Reader, table []*Packet) (Flit, error) {
	var f Flit
	var err error
	f.Pkt, err = pktAt(r, table)
	if err != nil {
		return f, err
	}
	f.arrive = r.I64()
	f.Seq = int32(r.I64())
	f.Kind = FlitKind(r.U64())
	f.Csum = uint16(r.U64())
	return f, nil
}

func pktAt(r *ckpt.Reader, table []*Packet) (*Packet, error) {
	i := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if i == -1 {
		return nil, nil
	}
	if i < 0 || i >= len(table) {
		return nil, fmt.Errorf("noc: packet index %d outside table of %d", i, len(table))
	}
	return table[i], nil
}

func encodeOutputPort(w *ckpt.Writer, op *outputPort, index map[*Packet]int) {
	flags := outputPortFlags(op)
	w.U64(flags)
	if flags&opHasFault != 0 {
		w.Bool(op.dead)
		w.I64(op.faultUntil)
		w.Bool(op.faultCorrupt)
	}
	if flags&opHasCredits != 0 {
		w.Bool(op.credits != nil)
		if op.credits != nil {
			w.Int(len(op.credits))
			for _, c := range op.credits {
				w.Int(c)
			}
		}
		w.U64(uint64(op.creditMask))
		w.Int(len(op.owner))
		for _, p := range op.owner {
			w.Int(index[p])
		}
		w.Int(len(op.pendingFree))
		for _, b := range op.pendingFree {
			w.Bool(b)
		}
	}
	if flags&opHasArb != 0 {
		w.Int(op.rrVC)
		w.Int(op.rrOut)
	}
	if flags&opHasEvents != 0 {
		w.Int(op.wire.len())
		for i := 0; i < op.wire.len(); i++ {
			we := op.wire.at(i)
			encodeFlit(w, we.flit, index)
			w.Int(we.outVC)
			w.I64(we.at)
		}
		w.Int(op.creditQ.len())
		for i := 0; i < op.creditQ.len(); i++ {
			ce := op.creditQ.at(i)
			w.Int(ce.vc)
			w.I64(ce.at)
		}
	}
	if flags&opHasStats != 0 {
		w.I64(op.flitsSent)
		w.I64(op.busyCycles)
		w.I64(op.combineCycles)
	}
}

func decodeOutputPort(r *ckpt.Reader, op *outputPort, table []*Packet) error {
	flags := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if flags&^uint64(opFlagsAll) != 0 {
		return fmt.Errorf("noc: unknown output-port flags %#x", flags)
	}
	if flags&opHasFault != 0 {
		op.dead = r.Bool()
		op.faultUntil = r.I64()
		op.faultCorrupt = r.Bool()
	} else {
		op.dead, op.faultUntil, op.faultCorrupt = false, 0, false
	}
	if flags&opHasCredits != 0 {
		if hasCredits := r.Bool(); hasCredits {
			cn := r.Int()
			if r.Err() != nil {
				return r.Err()
			}
			if op.credits == nil || cn != len(op.credits) {
				return fmt.Errorf("noc: credit array length %d != target %d", cn, len(op.credits))
			}
			for v := range op.credits {
				op.credits[v] = r.Int()
			}
		} else if op.credits != nil {
			return fmt.Errorf("noc: checkpoint has no credits for a credited port")
		}
		op.creditMask = uint32(r.U64())
		on := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if on != len(op.owner) {
			return fmt.Errorf("noc: owner array length %d != target %d", on, len(op.owner))
		}
		for v := range op.owner {
			p, err := pktAt(r, table)
			if err != nil {
				return err
			}
			op.owner[v] = p
		}
		pn := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if pn != len(op.pendingFree) {
			return fmt.Errorf("noc: pendingFree length %d != target %d", pn, len(op.pendingFree))
		}
		for v := range op.pendingFree {
			op.pendingFree[v] = r.Bool()
		}
	} else {
		for v := range op.credits {
			op.credits[v] = op.downDepth
		}
		op.creditMask = pristineCreditMask(op)
		for v := range op.owner {
			op.owner[v] = nil
		}
		for v := range op.pendingFree {
			op.pendingFree[v] = false
		}
	}
	if flags&opHasArb != 0 {
		op.rrVC = r.Int()
		op.rrOut = r.Int()
	} else {
		op.rrVC, op.rrOut = 0, 0
	}
	resetEvq(&op.wire)
	resetEvq(&op.creditQ)
	if flags&opHasEvents != 0 {
		wn := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		for i := 0; i < wn; i++ {
			f, err := decodeFlit(r, table)
			if err != nil {
				return err
			}
			outVC := r.Int()
			at := r.I64()
			op.wire.push(wireEvt{flit: f, outVC: outVC, at: at})
		}
		cn := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		for i := 0; i < cn; i++ {
			vc := r.Int()
			at := r.I64()
			op.creditQ.push(creditEvt{vc: vc, at: at})
		}
	}
	if flags&opHasStats != 0 {
		op.flitsSent = r.I64()
		op.busyCycles = r.I64()
		op.combineCycles = r.I64()
	} else {
		op.flitsSent, op.busyCycles, op.combineCycles = 0, 0, 0
	}
	return r.Err()
}

// resetEvq empties an event queue in place, dropping any stale references
// held by a previously used target, and rewinds it to head 0 (head
// position is identity-only: only FIFO order is observable).
func resetEvq[T any](q *evq[T]) {
	var zero T
	for i := range q.buf {
		q.buf[i] = zero
	}
	q.head, q.n = 0, 0
}

func (n *Network) encodeStats(w *ckpt.Writer) {
	s := &n.stats
	for _, v := range []int64{
		s.Cycles, s.PacketsInjected, s.FlitsInjected, s.FlitsReceived,
		s.PacketsReceived, s.Escapes, s.FlitsLost, s.FlitsDroppedFault,
		s.FlitsCorrupted, s.PacketsLost, s.PacketsUnroutable,
		s.TotalLatency, s.QueuingLatency, s.TransferLatency,
		s.BlockingLatency, s.HopsSum, s.measureStart,
	} {
		w.I64(v)
	}
	for _, v := range s.attr {
		w.I64(v)
	}
	classes := s.Classes()
	w.Int(len(classes))
	for _, c := range classes {
		cs := s.classes[c]
		w.Int(c)
		w.I64(cs.Packets)
		w.I64(cs.TotalLatency)
	}
	w.Bool(s.latHist != nil)
	if s.latHist != nil {
		var nz int
		for _, v := range s.latHist {
			if v != 0 {
				nz++
			}
		}
		w.Int(nz)
		for i, v := range s.latHist {
			if v != 0 {
				w.Int(i)
				w.I64(v)
			}
		}
	}
}

func (n *Network) decodeStats(r *ckpt.Reader) error {
	s := &n.stats
	for _, p := range []*int64{
		&s.Cycles, &s.PacketsInjected, &s.FlitsInjected, &s.FlitsReceived,
		&s.PacketsReceived, &s.Escapes, &s.FlitsLost, &s.FlitsDroppedFault,
		&s.FlitsCorrupted, &s.PacketsLost, &s.PacketsUnroutable,
		&s.TotalLatency, &s.QueuingLatency, &s.TransferLatency,
		&s.BlockingLatency, &s.HopsSum, &s.measureStart,
	} {
		*p = r.I64()
	}
	for b := range s.attr {
		s.attr[b] = r.I64()
	}
	nc := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	s.classes = nil
	if nc > 0 {
		s.classes = make(map[int]*ClassStats, nc)
		for i := 0; i < nc; i++ {
			c := r.Int()
			s.classes[c] = &ClassStats{Packets: r.I64(), TotalLatency: r.I64()}
		}
	}
	s.latHist = nil
	if r.Bool() {
		s.ensureHist()
		nz := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		for i := 0; i < nz; i++ {
			b := r.Int()
			v := r.I64()
			if r.Err() != nil {
				return r.Err()
			}
			if b < 0 || b >= len(s.latHist) {
				return fmt.Errorf("noc: latency histogram bucket %d out of range", b)
			}
			s.latHist[b] = v
		}
	}
	return r.Err()
}

func (n *Network) encodeFaults(w *ckpt.Writer, index map[*Packet]int) {
	w.Bool(n.faultsArmed)
	if !n.faultsArmed {
		return
	}
	w.Int(len(n.faultEvents))
	for _, e := range n.faultEvents {
		w.I64(e.Cycle)
		w.U64(uint64(e.Kind))
		w.Int(e.Router)
		w.Int(e.Port)
		w.I64(e.Duration)
		w.Bool(e.Corrupt)
	}
	w.Int(n.faultNext)
	for _, d := range n.niDead {
		w.Bool(d)
	}
	w.Int(len(n.brokenQ))
	for _, p := range n.brokenQ {
		w.Int(index[p])
	}
}

func (n *Network) decodeFaults(r *ckpt.Reader, table []*Packet) error {
	armed := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if !armed {
		n.faultsArmed = false
		n.faultEvents, n.faultNext = nil, 0
		n.linkState, n.faultAware = nil, nil
		n.niDead, n.brokenQ = nil, nil
		return nil
	}
	ne := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	events := make([]fault.Event, ne)
	for i := range events {
		events[i] = fault.Event{
			Cycle:    r.I64(),
			Kind:     fault.Kind(r.U64()),
			Router:   r.Int(),
			Port:     r.Int(),
			Duration: r.I64(),
			Corrupt:  r.Bool(),
		}
	}
	n.faultEvents = events
	n.faultNext = r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if n.faultNext < 0 || n.faultNext > len(events) {
		return fmt.Errorf("noc: faultNext %d outside %d events", n.faultNext, len(events))
	}
	n.faultsArmed = true
	n.niDead = make([]bool, len(n.nis))
	for t := range n.niDead {
		n.niDead[t] = r.Bool()
	}
	nb := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	n.brokenQ = nil
	for i := 0; i < nb; i++ {
		p, err := pktAt(r, table)
		if err != nil {
			return err
		}
		n.brokenQ = append(n.brokenQ, p)
	}

	// Rebuild the liveness overlay by replaying the permanent events that
	// had already struck. This reconstructs exactly the LinkState the
	// original built incrementally; the port-level kill effects (dead
	// flags, drained queues, zeroed credits) were restored directly from
	// the per-port sections above, so no kill* calls — which would mutate
	// statistics — run here.
	n.linkState = topology.NewLinkState(n.cfg.Topo)
	for _, e := range n.faultEvents[:n.faultNext] {
		switch e.Kind {
		case fault.LinkFail:
			n.linkState.FailLink(e.Router, e.Port)
		case fault.RouterFail:
			if !n.linkState.RouterFailed(e.Router) {
				n.linkState.FailRouter(e.Router)
			}
		}
	}
	n.faultAware, _ = n.alg.(routing.FaultAware)
	if n.faultAware != nil && n.linkState.NumDownLinks() > 0 {
		n.faultAware.Rebuild(n.linkState)
	}
	return r.Err()
}

func (n *Network) decode(r *ckpt.Reader, codec PayloadCodec, h ckpt.Header) error {
	if n.cycle != 0 || n.stats.PacketsInjected != 0 || n.flitsInNetwork != 0 || n.queuedPackets != 0 {
		return fmt.Errorf("noc: RestoreSnapshot target must be freshly constructed")
	}
	if err := n.checkSignature(r); err != nil {
		return err
	}
	n.lastMove = r.I64()

	// Packet table.
	np := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	table := make([]*Packet, np)
	for i := range table {
		p := &Packet{}
		p.ID = r.U64()
		p.Src = r.Int()
		p.Dst = r.Int()
		p.NumFlits = r.Int()
		p.Class = r.Int()
		p.CreateCycle = r.I64()
		p.InjectCycle = r.I64()
		p.RecvCycle = r.I64()
		p.Hops = r.Int()
		p.MinSlots = r.Int()
		p.vcClass = r.Int()
		p.escaped = r.Bool()
		p.received = r.Int()
		p.broken = r.Bool()
		p.dropWhy = DropReason(r.U64())
		p.headRecv = r.I64()
		p.atrVC = r.I64()
		p.atrSA = r.I64()
		p.atrCredit = r.I64()
		p.hopVC = int32(r.Int())
		p.hopCredit = int32(r.Int())
		if hasPayload := r.Bool(); hasPayload {
			if codec == nil {
				return fmt.Errorf("noc: checkpoint packet %d carries a payload but no PayloadCodec was given", p.ID)
			}
			payload, err := codec.DecodePayload(r)
			if err != nil {
				return fmt.Errorf("noc: decoding payload of packet %d: %w", p.ID, err)
			}
			p.Payload = payload
		}
		if r.Err() != nil {
			return r.Err()
		}
		table[i] = p
	}

	// Construction-dead ports (unwired mesh-edge stubs) keep their dead
	// flag; ports killed by faults additionally sever the downstream
	// input's credit channel, which is re-applied after decoding.
	bornDead := map[*outputPort]bool{}
	for ri := range n.routers {
		for _, op := range n.routers[ri].out {
			if op.dead {
				bornDead[op] = true
			}
		}
	}

	// Network interfaces.
	for t := range n.nis {
		q := &n.nis[t]
		qn := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		q.queue = q.queue[:0]
		q.qHead = 0
		for i := 0; i < qn; i++ {
			p, err := pktAt(r, table)
			if err != nil {
				return err
			}
			q.queue = append(q.queue, p)
		}
		sn := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		q.streams = q.streams[:0]
		for i := 0; i < sn; i++ {
			p, err := pktAt(r, table)
			if err != nil {
				return err
			}
			q.streams = append(q.streams, niStream{pkt: p, nextSeq: r.Int(), vc: r.Int()})
		}
		q.waitVC = r.Int()
		if err := decodeOutputPort(r, &q.up, table); err != nil {
			return fmt.Errorf("noc: terminal %d: %w", t, err)
		}
	}

	// Routers.
	for ri := range n.routers {
		rt := &n.routers[ri]
		n.inFlits[ri] = int32(r.Int())
		n.portMask[ri] = uint32(r.U64())
		n.evMask[ri] = uint32(r.U64())
		rt.bufOccSum = r.I64()
		rt.bufReads = r.I64()
		rt.bufWrites = r.I64()
		rt.xbarFlits = r.I64()
		rt.arbOps = r.I64()
		for b := range rt.atr {
			rt.atr[b] = r.I64()
		}
		for pi := range rt.in {
			ip := &rt.in[pi]
			ip.rr = r.Int()
			ip.flits = r.Int()
			ip.raMask = uint32(r.U64())
			ip.saMask = uint32(r.U64())
			for vi := range ip.vcs {
				vc := &ip.vcs[vi]
				if r.Bool() { // idle-VC flag: canonical empty state
					vc.state = vcIdle
					vc.outPort, vc.outVC, vc.class = 0, 0, 0
					vc.waitCycles = 0
					vc.cur = nil
					vc.headArrive = 0
					vc.buf.head, vc.buf.count = 0, 0
					for i := range vc.buf.buf {
						vc.buf.buf[i] = Flit{}
					}
					continue
				}
				vc.state = vcState(r.U64())
				vc.outPort = int16(r.Int())
				vc.outVC = int16(r.Int())
				vc.class = int16(r.Int())
				vc.waitCycles = int32(r.I64())
				cur, err := pktAt(r, table)
				if err != nil {
					return err
				}
				vc.cur = cur
				vc.headArrive = r.I64()
				bn := r.Int()
				if r.Err() != nil {
					return r.Err()
				}
				if bn > vc.buf.cap() {
					return fmt.Errorf("noc: router %d port %d vc %d: %d buffered flits exceed depth %d",
						ri, pi, vi, bn, vc.buf.cap())
				}
				vc.buf.head, vc.buf.count = 0, 0
				for i := range vc.buf.buf {
					vc.buf.buf[i] = Flit{}
				}
				for i := 0; i < bn; i++ {
					f, err := decodeFlit(r, table)
					if err != nil {
						return err
					}
					vc.buf.push(f)
				}
			}
		}
		for pi, op := range rt.out {
			if err := decodeOutputPort(r, op, table); err != nil {
				return fmt.Errorf("noc: router %d port %d: %w", ri, pi, err)
			}
		}
	}

	if err := n.decodeStats(r); err != nil {
		return err
	}
	if err := n.decodeFaults(r, table); err != nil {
		return err
	}

	// Fault-killed ports lose the downstream credit channel: the upstream
	// pointer of the input port they feed is severed, exactly as killPort
	// did in the original run.
	for ri := range n.routers {
		for _, op := range n.routers[ri].out {
			if op.dead && !op.isTerm && !bornDead[op] {
				n.routers[op.link.Router].in[op.link.Port].upstream = nil
			}
		}
	}
	for t := range n.nis {
		up := &n.nis[t].up
		if up.dead {
			n.routers[up.link.Router].in[up.link.Port].upstream = nil
		}
	}

	n.cycle = h.Cycle
	n.flitsInNetwork = int(h.Flits)
	n.queuedPackets = int(h.Queued)
	n.nextPktID = h.NextPktID
	return r.Err()
}

// sortedXferKeys orders transfer keys deterministically for encoding.
func sortedXferKeys[V any](m map[xferKey]V) []xferKey {
	keys := make([]xferKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.seq < b.seq
	})
	return keys
}

func sortedPairKeys[V any](m map[pairKey]V) []pairKey {
	keys := make([]pairKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		return a.dst < b.dst
	})
	return keys
}

// encodeValue serializes the small set of payload value types the
// reliability layer supports on Transfer.Payload.
func encodeValue(w *ckpt.Writer, v any) error {
	switch x := v.(type) {
	case nil:
		w.U64(0)
	case bool:
		w.U64(1)
		w.Bool(x)
	case int:
		w.U64(2)
		w.I64(int64(x))
	case int64:
		w.U64(3)
		w.I64(x)
	case uint64:
		w.U64(4)
		w.U64(x)
	case float64:
		w.U64(5)
		w.F64(x)
	case string:
		w.U64(6)
		w.Str(x)
	case []byte:
		w.U64(7)
		w.Bytes(x)
	default:
		return fmt.Errorf("noc: unsupported transfer payload type %T", v)
	}
	return nil
}

func decodeValue(r *ckpt.Reader) (any, error) {
	switch tag := r.U64(); tag {
	case 0:
		return nil, r.Err()
	case 1:
		return r.Bool(), r.Err()
	case 2:
		return r.Int(), r.Err()
	case 3:
		return r.I64(), r.Err()
	case 4:
		return r.U64(), r.Err()
	case 5:
		return r.F64(), r.Err()
	case 6:
		return r.Str(), r.Err()
	case 7:
		return r.Bytes(), r.Err()
	default:
		return nil, fmt.Errorf("noc: unknown transfer payload tag %d", tag)
	}
}

// relCodec maps in-flight packet payloads (*Transfer) to serialized
// transfer records. Every reliable packet's payload is the transfer it
// carries; a packet can outlive its transfer's pending entry (a late
// duplicate after delivery), so transfers are serialized in full and
// deduplicated by key on decode.
type relCodec struct {
	xfers map[xferKey]*Transfer // decode: canonical transfer per key
}

func (c *relCodec) EncodePayload(w *ckpt.Writer, payload any) error {
	tr, ok := payload.(*Transfer)
	if !ok {
		return fmt.Errorf("noc: reliable packet payload is %T, want *Transfer", payload)
	}
	return encodeTransfer(w, tr)
}

func (c *relCodec) DecodePayload(r *ckpt.Reader) (any, error) {
	tr, err := decodeTransfer(r)
	if err != nil {
		return nil, err
	}
	k := xferKey{tr.Src, tr.Dst, tr.Seq}
	if existing, ok := c.xfers[k]; ok {
		return existing, nil
	}
	c.xfers[k] = tr
	return tr, nil
}

func encodeTransfer(w *ckpt.Writer, tr *Transfer) error {
	w.Int(tr.Src)
	w.Int(tr.Dst)
	w.U64(tr.Seq)
	w.Int(tr.NumFlits)
	w.Int(tr.Class)
	w.I64(tr.Created)
	w.Int(tr.Attempts)
	w.I64(tr.deadline)
	return encodeValue(w, tr.Payload)
}

func decodeTransfer(r *ckpt.Reader) (*Transfer, error) {
	tr := &Transfer{
		Src:      r.Int(),
		Dst:      r.Int(),
		Seq:      r.U64(),
		NumFlits: r.Int(),
		Class:    r.Int(),
		Created:  r.I64(),
		Attempts: r.Int(),
		deadline: r.I64(),
	}
	payload, err := decodeValue(r)
	if err != nil {
		return nil, err
	}
	tr.Payload = payload
	return tr, r.Err()
}

// Snapshot serializes the reliability layer plus its wrapped network.
// Transfer payloads must be nil or a basic value type (bool, int, int64,
// uint64, float64, string, []byte).
func (rel *Reliable) Snapshot() ([]byte, error) {
	w := ckpt.NewWriter(ckpt.Header{
		Kind:        KindReliable,
		Version:     relSnapshotVersion,
		Cycle:       rel.net.cycle,
		Flits:       int64(rel.net.flitsInNetwork),
		Queued:      int64(rel.net.queuedPackets),
		NextPktID:   rel.net.nextPktID,
		Fingerprint: rel.net.Fingerprint(),
	})

	seqKeys := sortedPairKeys(rel.nextSeq)
	w.Int(len(seqKeys))
	for _, k := range seqKeys {
		w.Int(k.src)
		w.Int(k.dst)
		w.U64(rel.nextSeq[k])
	}

	recvKeys := sortedPairKeys(rel.recv)
	w.Int(len(recvKeys))
	for _, k := range recvKeys {
		d := rel.recv[k]
		w.Int(k.src)
		w.Int(k.dst)
		w.U64(d.next)
		seen := make([]uint64, 0, len(d.seen))
		for s := range d.seen {
			seen = append(seen, s)
		}
		sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
		w.Int(len(seen))
		for _, s := range seen {
			w.U64(s)
		}
	}

	pendKeys := sortedXferKeys(rel.pending)
	w.Int(len(pendKeys))
	for _, k := range pendKeys {
		if err := encodeTransfer(w, rel.pending[k]); err != nil {
			return nil, err
		}
	}

	// The timer heap array is serialized verbatim: it is already a valid
	// heap and its layout determines tie-break fire order.
	w.Int(len(rel.timers))
	for _, it := range rel.timers {
		w.I64(it.deadline)
		w.U64(it.order)
		w.Int(it.key.src)
		w.Int(it.key.dst)
		w.U64(it.key.seq)
	}
	w.U64(rel.order)

	s := &rel.stats
	for _, v := range []int64{s.Sent, s.Delivered, s.Duplicates, s.Retransmissions,
		s.Recovered, s.Abandoned, s.Unreachable, s.LatencySum} {
		w.I64(v)
	}

	if err := rel.net.encode(w, &relCodec{}); err != nil {
		return nil, err
	}
	return w.Finish(), nil
}

// RestoreSnapshot loads a Reliable checkpoint. rel must wrap a freshly
// constructed Network built from the same Config as the original.
func (rel *Reliable) RestoreSnapshot(data []byte) error {
	r, err := ckpt.NewReader(data)
	if err != nil {
		return err
	}
	h := r.Header()
	if h.Kind != KindReliable {
		return fmt.Errorf("noc: checkpoint kind %q, want %q", h.Kind, KindReliable)
	}
	if h.Version != relSnapshotVersion {
		return fmt.Errorf("noc: checkpoint version %d, want %d", h.Version, relSnapshotVersion)
	}

	codec := &relCodec{xfers: map[xferKey]*Transfer{}}

	ns := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	rel.nextSeq = make(map[pairKey]uint64, ns)
	for i := 0; i < ns; i++ {
		k := pairKey{src: r.Int(), dst: r.Int()}
		rel.nextSeq[k] = r.U64()
	}

	nr := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	rel.recv = make(map[pairKey]*dedupe, nr)
	for i := 0; i < nr; i++ {
		k := pairKey{src: r.Int(), dst: r.Int()}
		d := &dedupe{next: r.U64()}
		sn := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if sn > 0 {
			d.seen = make(map[uint64]bool, sn)
			for j := 0; j < sn; j++ {
				d.seen[r.U64()] = true
			}
		}
		rel.recv[k] = d
	}

	np := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	rel.pending = make(map[xferKey]*Transfer, np)
	for i := 0; i < np; i++ {
		tr, err := decodeTransfer(r)
		if err != nil {
			return err
		}
		k := xferKey{tr.Src, tr.Dst, tr.Seq}
		rel.pending[k] = tr
		codec.xfers[k] = tr
	}

	nt := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	rel.timers = make(timerHeap, nt)
	for i := range rel.timers {
		rel.timers[i] = timerItem{
			deadline: r.I64(),
			order:    r.U64(),
			key:      xferKey{src: r.Int(), dst: r.Int(), seq: r.U64()},
		}
	}
	rel.order = r.U64()

	s := &rel.stats
	for _, p := range []*int64{&s.Sent, &s.Delivered, &s.Duplicates, &s.Retransmissions,
		&s.Recovered, &s.Abandoned, &s.Unreachable, &s.LatencySum} {
		*p = r.I64()
	}
	if r.Err() != nil {
		return r.Err()
	}

	if err := rel.net.decode(r, codec, h); err != nil {
		return err
	}
	if err := r.Done(); err != nil {
		return err
	}
	if got := rel.net.Fingerprint(); got != h.Fingerprint {
		return fmt.Errorf("noc: restored fingerprint %016x != checkpoint %016x (config mismatch?)", got, h.Fingerprint)
	}
	return nil
}
