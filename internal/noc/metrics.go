package noc

import (
	"strconv"

	"heteronoc/internal/obs"
)

// latBounds are the latency-histogram bucket bounds exposed over /metrics:
// powers of two up to the internal histogram's overflow point, coarse enough
// for a readable exposition while the full 1-cycle-resolution histogram
// stays available through Stats.Percentile.
var latBounds = func() []float64 {
	var b []float64
	for v := 1; v <= latHistMax; v *= 2 {
		b = append(b, float64(v))
	}
	return b
}()

// RegisterMetrics registers the network's counters, gauges and the packet
// latency histogram in reg. All instruments are pull-based closures over
// the live simulator state: registration adds nothing to the hot path, and
// values are read at exposition time (safe only while the simulator is not
// concurrently stepping — serve cached expositions via obs.Snapshot for
// live introspection of a running simulation).
//
// labels are attached to every series, so several networks (e.g. a sweep's
// design points) can share one registry disambiguated by a label.
func (n *Network) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	s := &n.stats
	ctr := func(name, help string, v *int64) {
		reg.RegisterCounter(name, help, labels, func() float64 { return float64(*v) })
	}
	ctr("noc_cycles_total", "simulated cycles in the measurement window", &s.Cycles)
	ctr("noc_packets_injected_total", "packets accepted into NI queues", &s.PacketsInjected)
	ctr("noc_packets_received_total", "packets fully delivered", &s.PacketsReceived)
	ctr("noc_flits_injected_total", "flits launched from NI queues", &s.FlitsInjected)
	ctr("noc_flits_received_total", "flits consumed at destination terminals", &s.FlitsReceived)
	ctr("noc_escapes_total", "packets diverted to the escape network", &s.Escapes)
	ctr("noc_fault_flits_lost_total", "flits destroyed by link/router kills", &s.FlitsLost)
	ctr("noc_fault_flits_dropped_total", "flits dropped by transient fault windows", &s.FlitsDroppedFault)
	ctr("noc_fault_flits_corrupted_total", "flits dropped by the header checksum", &s.FlitsCorrupted)
	ctr("noc_fault_packets_lost_total", "packets purged after losing a flit", &s.PacketsLost)
	ctr("noc_fault_packets_unroutable_total", "packets dropped for lack of a live route", &s.PacketsUnroutable)

	reg.RegisterGauge("noc_flits_in_network", "flits currently inside the network", labels,
		func() float64 { return float64(n.flitsInNetwork) })
	reg.RegisterGauge("noc_packets_queued", "packets waiting in NI source queues", labels,
		func() float64 { return float64(n.queuedPackets) })
	reg.RegisterGauge("noc_avg_latency_cycles", "mean packet latency over the measurement window", labels,
		s.AvgLatency)
	reg.RegisterGauge("noc_combine_rate", "fraction of busy wide-link cycles carrying two flits", labels,
		n.CombineRate)
	if n.faultsArmed {
		reg.RegisterGauge("noc_fault_events_applied", "fault-plan events already struck", labels,
			func() float64 { return float64(n.faultNext) })
		reg.RegisterGauge("noc_fault_events_planned", "total events in the fault plan", labels,
			func() float64 { return float64(len(n.faultEvents)) })
	}

	reg.RegisterHistogram("noc_packet_latency_cycles", "packet latency distribution", labels,
		latBounds, func() obs.HistSnapshot {
			snap := obs.HistSnapshot{
				Buckets: make([]uint64, len(latBounds)),
				Sum:     float64(s.TotalLatency),
				Count:   uint64(s.PacketsReceived),
			}
			bi := 0
			for lat, cnt := range s.latHist {
				if cnt == 0 {
					continue
				}
				if lat >= latHistMax {
					// The internal overflow bucket counts latency >= max.
					snap.Overflow += uint64(cnt)
					continue
				}
				// lat ascends, so the bucket cursor only moves forward.
				for float64(lat) > latBounds[bi] {
					bi++
				}
				snap.Buckets[bi] += uint64(cnt)
			}
			return snap
		})

	if n.pool != nil {
		n.pool.RegisterMetrics(reg, labels...)
	}

	for r := range n.routers {
		rt := &n.routers[r]
		rl := append(append([]obs.Label(nil), labels...), obs.L("router", strconv.Itoa(r)))
		reg.RegisterGauge("noc_router_link_utilization", "mean busy fraction of live output links", rl,
			func() float64 {
				cyc := s.Cycles
				live := liveLinkCount(rt)
				if cyc == 0 || live == 0 {
					return 0
				}
				return float64(liveBusySum(rt)) / float64(cyc) / float64(live)
			})
		reg.RegisterGauge("noc_router_buffer_occupancy", "mean fraction of buffer slots occupied", rl,
			func() float64 {
				if s.Cycles == 0 || rt.bufSlots == 0 {
					return 0
				}
				return float64(rt.bufOccSum) / float64(s.Cycles) / float64(rt.bufSlots)
			})
		reg.RegisterCounter("noc_router_buf_reads_total", "buffer read operations", rl,
			func() float64 { return float64(rt.bufReads) })
		reg.RegisterCounter("noc_router_buf_writes_total", "buffer write operations", rl,
			func() float64 { return float64(rt.bufWrites) })
		reg.RegisterCounter("noc_router_xbar_flits_total", "flits through the crossbar", rl,
			func() float64 { return float64(rt.xbarFlits) })
		reg.RegisterCounter("noc_router_arb_ops_total", "arbitration operations", rl,
			func() float64 { return float64(rt.arbOps) })
	}
}
