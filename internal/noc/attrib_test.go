package noc

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// newHeteroMeshNet builds an 8x8 mesh with a diagonal of big split-datapath
// routers, exercising wide links, combining, and the improved allocator in
// the attribution tests.
func newHeteroMeshNet(t testing.TB) *Network {
	t.Helper()
	m := topology.NewMesh(8, 8)
	routers := make([]RouterConfig, 64)
	for r := range routers {
		routers[r] = RouterConfig{VCs: 2, BufDepth: 4}
		if r%8 == r/8 { // main diagonal
			routers[r] = RouterConfig{VCs: 6, BufDepth: 8, Wide: true, SplitDatapath: true, ImprovedSA: true}
		}
	}
	n, err := New(Config{
		Topo:           m,
		Routing:        routing.NewXY(m),
		Routers:        routers,
		FlitWidthBits:  128,
		WatchdogCycles: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// injectMixedLoad drives a deterministic mix of uniform and hotspot traffic
// hot enough to create real VC, switch and credit contention.
func injectMixedLoad(t testing.TB, n *Network, seed int64, cycles int, rate float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < cycles; c++ {
		for src := 0; src < 64; src++ {
			if rng.Float64() >= rate {
				continue
			}
			dst := rng.Intn(64)
			if rng.Float64() < 0.3 {
				dst = 27 // hotspot near the center
			}
			if dst == src {
				continue
			}
			flits := 6
			if rng.Float64() < 0.5 {
				flits = 1
			}
			n.Inject(&Packet{Src: src, Dst: dst, NumFlits: flits})
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAttributionExactSum pins the core invariant: for every delivered
// packet the six cause buckets sum exactly to the measured end-to-end
// latency, with no negative bucket, on both homogeneous and heterogeneous
// meshes under contention.
func TestAttributionExactSum(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(testing.TB) *Network
	}{
		{"baseline", func(tb testing.TB) *Network { return newMeshNet(tb) }},
		{"hetero-diagonal", newHeteroMeshNet},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.build(t)
			checked := 0
			n.SetOnPacket(func(p *Packet) {
				a := p.Attribution()
				var sum int64
				for b, v := range a {
					if v < 0 {
						t.Fatalf("packet %d bucket %v negative: %d", p.ID, AttrBucket(b), v)
					}
					sum += v
				}
				if total := p.RecvCycle - p.CreateCycle; sum != total {
					t.Fatalf("packet %d: attribution sums to %d, latency %d (buckets %v)", p.ID, sum, total, a)
				}
				checked++
			})
			injectMixedLoad(t, n, 11, 3000, 0.04)
			runUntilQuiesced(t, n, 200000)
			if checked < 1000 {
				t.Fatalf("only %d packets checked", checked)
			}
			// Under this load the contention buckets must actually fire, or
			// the test proves nothing about the stall accounting.
			attr := n.Stats().Attribution()
			for _, b := range []AttrBucket{AttrVCAlloc, AttrSwitchAlloc, AttrCredit} {
				if attr[b] == 0 {
					t.Errorf("bucket %v never fired under contention", b)
				}
			}
			if res := n.Stats().AttrResidual(); res != 0 {
				t.Errorf("stats residual = %d, want 0", res)
			}
		})
	}
}

// TestAttributionRouterRollupSumsToPackets checks the per-router rollup is
// a lossless redistribution: summed over routers it equals the per-packet
// buckets summed over every delivered packet.
func TestAttributionRouterRollupSumsToPackets(t *testing.T) {
	n := newHeteroMeshNet(t)
	var fromPackets [NumAttrBuckets]int64
	n.SetOnPacket(func(p *Packet) {
		a := p.Attribution()
		for b := range a {
			fromPackets[b] += a[b]
		}
	})
	injectMixedLoad(t, n, 23, 2000, 0.04)
	runUntilQuiesced(t, n, 200000)
	var fromRouters [NumAttrBuckets]int64
	for _, ra := range n.RouterAttribution() {
		for b := range ra {
			fromRouters[b] += ra[b]
		}
	}
	if fromRouters != fromPackets {
		t.Fatalf("router rollup %v != per-packet sum %v", fromRouters, fromPackets)
	}
}

// TestAttributionObservationOnly runs the same seeded simulation with the
// counter path on and off: fingerprints (packet behavior and
// microarchitectural activity) must be bit-identical.
func TestAttributionObservationOnly(t *testing.T) {
	run := func(on bool) (uint64, uint64) {
		n := newMeshNet(t)
		n.SetAttribution(on)
		injectMixedLoad(t, n, 31, 1500, 0.05)
		runUntilQuiesced(t, n, 200000)
		return n.Fingerprint(), n.Stats().Fingerprint()
	}
	onNet, onStats := run(true)
	offNet, offStats := run(false)
	if onNet != offNet || onStats != offStats {
		t.Fatalf("attribution perturbed behavior: net %x/%x stats %x/%x", onNet, offNet, onStats, offStats)
	}
}

// TestAttributionShardInvariant requires identical per-packet attribution
// at every shard worker count — the counters must obey the same
// single-writer discipline as the kernel itself.
func TestAttributionShardInvariant(t *testing.T) {
	collect := func(workers int) map[uint64][NumAttrBuckets]int64 {
		n := newHeteroMeshNet(t)
		if workers > 0 {
			n.SetShardWorkers(workers)
			defer n.Close()
		}
		out := make(map[uint64][NumAttrBuckets]int64)
		n.SetOnPacket(func(p *Packet) { out[p.ID] = p.Attribution() })
		injectMixedLoad(t, n, 7, 1200, 0.05)
		runUntilQuiesced(t, n, 200000)
		return out
	}
	want := collect(0)
	for _, w := range []int{2, 5} {
		got := collect(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d delivered %d packets, want %d", w, len(got), len(want))
		}
		for id, a := range want {
			if got[id] != a {
				t.Fatalf("workers=%d packet %d attribution %v, want %v", w, id, got[id], a)
			}
		}
	}
}

// TestAttributionSnapshotRoundTrip suspends a contended run mid-flight and
// restores it: the resumed run's attribution (including in-flight per-hop
// scratch state) must match the uninterrupted run exactly.
func TestAttributionSnapshotRoundTrip(t *testing.T) {
	finish := func(n *Network) ([NumAttrBuckets]int64, uint64) {
		runUntilQuiesced(t, n, 200000)
		return n.Stats().Attribution(), n.Fingerprint()
	}
	ref := newHeteroMeshNet(t)
	injectMixedLoad(t, ref, 53, 800, 0.05)
	wantAttr, wantFP := finish(ref)

	n := newHeteroMeshNet(t)
	injectMixedLoad(t, n, 53, 800, 0.05)
	blob, err := n.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	restored := newHeteroMeshNet(t)
	if err := restored.RestoreSnapshot(blob, nil); err != nil {
		t.Fatal(err)
	}
	gotAttr, gotFP := finish(restored)
	if gotFP != wantFP {
		t.Fatalf("restored fingerprint %x, want %x", gotFP, wantFP)
	}
	if gotAttr != wantAttr {
		t.Fatalf("restored attribution %v, want %v", gotAttr, wantAttr)
	}
	if res := restored.Stats().AttrResidual(); res != 0 {
		t.Errorf("restored residual = %d, want 0", res)
	}
}

// TestAttrTraceRecorder exercises the opt-in per-hop record mode: records
// reconcile with the packet buckets, the ring bounds memory, and the
// Chrome export is loadable JSON.
func TestAttrTraceRecorder(t *testing.T) {
	n := newMeshNet(t)
	tr := NewAttrTrace(1 << 16)
	n.SetAttrRecorder(tr)
	perPacket := map[uint64][3]int64{}
	n.SetOnPacket(func(p *Packet) {
		a := p.Attribution()
		perPacket[p.ID] = [3]int64{a[AttrVCAlloc], a[AttrSwitchAlloc], a[AttrCredit]}
	})
	injectMixedLoad(t, n, 3, 800, 0.05)
	runUntilQuiesced(t, n, 200000)
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d records; grow the test capacity", tr.Dropped())
	}
	got := map[uint64][3]int64{}
	for _, rec := range tr.Records() {
		cur := got[rec.Packet]
		cur[0] += int64(rec.VC)
		cur[1] += int64(rec.SA)
		cur[2] += int64(rec.Credit)
		got[rec.Packet] = cur
	}
	for id, want := range perPacket {
		if got[id] != want {
			t.Fatalf("packet %d hop records sum to %v, buckets say %v", id, got[id], want)
		}
	}

	small := NewAttrTrace(8)
	for i := 0; i < 20; i++ {
		small.AttrHop(AttrHopRec{Cycle: int64(i)})
	}
	if small.Dropped() != 12 || len(small.Records()) != 8 {
		t.Fatalf("ring kept %d records, dropped %d; want 8/12", len(small.Records()), small.Dropped())
	}
	if recs := small.Records(); recs[0].Cycle != 12 || recs[7].Cycle != 19 {
		t.Fatalf("ring kept wrong window: %v..%v", recs[0].Cycle, recs[7].Cycle)
	}

	var out bytes.Buffer
	if err := tr.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{`"traceEvents"`, `"stall_cycles"`, `"process_name"`} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

// TestAttributionZeroLoad pins the bucket values of a lone packet: all
// contention buckets zero, link term exactly 1+3*(hops+1), serialization
// exactly the ideal drain of the remaining flits.
func TestAttributionZeroLoad(t *testing.T) {
	n := newMeshNet(t)
	var done *Packet
	n.SetOnPacket(func(p *Packet) { done = p })
	n.Inject(&Packet{Src: 0, Dst: 63, NumFlits: 6})
	runUntilQuiesced(t, n, 500)
	if done == nil {
		t.Fatal("packet not delivered")
	}
	a := done.Attribution()
	if a[AttrVCAlloc] != 0 || a[AttrSwitchAlloc] != 0 || a[AttrCredit] != 0 {
		t.Errorf("contention at zero load: %v", a)
	}
	if want := int64(1 + 3*(done.Hops+1)); a[AttrLink] != want {
		t.Errorf("link = %d, want %d", a[AttrLink], want)
	}
	if want := int64(5); a[AttrSerialization] != want {
		t.Errorf("serialization = %d, want %d (6 flits on narrow links)", a[AttrSerialization], want)
	}
}
