package noc

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"heteronoc/internal/fault"
	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// faultMeshNet builds an 8x8 mesh with fault-aware table routing and the
// given plan armed (nil plan = armed with an empty schedule).
func faultMeshNet(t testing.TB, plan *fault.Plan) *Network {
	t.Helper()
	m := topology.NewMesh(8, 8)
	n, err := New(Config{
		Topo:           m,
		Routing:        routing.NewFaultTable(m, routing.FaultTableConfig{EscapeThreshold: 32}),
		Routers:        []RouterConfig{{VCs: 3, BufDepth: 5}},
		FlitWidthBits:  192,
		WatchdogCycles: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		plan = &fault.Plan{}
	}
	if err := n.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	return n
}

// portToward returns the port of router a that faces adjacent router b.
func portToward(t *testing.T, m *topology.Mesh, a, b int) int {
	t.Helper()
	for p := 0; p < m.Radix(a); p++ {
		if link, ok := m.Neighbor(a, p); ok && link.Router == b {
			return p
		}
	}
	t.Fatalf("routers %d and %d are not adjacent", a, b)
	return -1
}

// TestEmptyPlanMatchesUnarmedRun pins the acceptance criterion that arming
// fault machinery without injecting any fault leaves behavior bit-identical:
// same fingerprint as a run with no plan armed at all (the checksum path and
// the armed-network bookkeeping must be invisible).
func TestEmptyPlanMatchesUnarmedRun(t *testing.T) {
	run := func(arm bool) uint64 {
		m := topology.NewMesh(8, 8)
		n, err := New(Config{
			Topo:           m,
			Routing:        routing.NewFaultTable(m, routing.FaultTableConfig{}),
			Routers:        []RouterConfig{{VCs: 3, BufDepth: 5}},
			FlitWidthBits:  192,
			WatchdogCycles: 20000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if arm {
			if err := n.SetFaultPlan(&fault.Plan{}); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(41))
		for cycle := 0; cycle < 1500; cycle++ {
			for src := 0; src < 64; src++ {
				if rng.Float64() < 0.02 {
					n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 6})
				}
			}
			if err := n.Step(); err != nil {
				t.Fatal(err)
			}
		}
		runUntilQuiesced(t, n, 100000)
		return n.Fingerprint()
	}
	if armed, bare := run(true), run(false); armed != bare {
		t.Errorf("empty armed plan changed the fingerprint: %x vs %x", armed, bare)
	}
}

func TestPermanentLinkFailureReroutesOrDrops(t *testing.T) {
	m := topology.NewMesh(8, 8)
	plan := &fault.Plan{}
	// Kill four central links mid-run while traffic is in flight.
	plan.FailLink(600, m.RouterAt(3, 3), topology.PortEast)
	plan.FailLink(600, m.RouterAt(4, 4), topology.PortNorth)
	plan.FailLink(900, m.RouterAt(2, 5), topology.PortEast)
	plan.FailLink(900, m.RouterAt(5, 2), topology.PortSouth)
	n := faultMeshNet(t, plan)
	delivered := map[uint64]bool{}
	dropped := map[uint64]DropReason{}
	n.SetOnPacket(func(p *Packet) {
		if delivered[p.ID] {
			t.Errorf("packet %d delivered twice", p.ID)
		}
		delivered[p.ID] = true
	})
	n.SetOnDrop(func(p *Packet, why DropReason) {
		if _, dup := dropped[p.ID]; dup {
			t.Errorf("packet %d dropped twice", p.ID)
		}
		dropped[p.ID] = why
	})
	rng := rand.New(rand.NewSource(97))
	injected := 0
	for cycle := 0; cycle < 2000; cycle++ {
		for src := 0; src < 64; src++ {
			if rng.Float64() < 0.03 {
				if err := n.TryInject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 6}); err == nil {
					injected++
				}
			}
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
		if cycle%250 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("invariants violated at cycle %d: %v", cycle, err)
			}
		}
	}
	runUntilQuiesced(t, n, 200000)
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after quiesce: %v", err)
	}
	if len(delivered)+len(dropped) != injected {
		t.Fatalf("delivered %d + dropped %d != injected %d", len(delivered), len(dropped), injected)
	}
	for id := range delivered {
		if _, both := dropped[id]; both {
			t.Errorf("packet %d both delivered and dropped", id)
		}
	}
	if len(dropped) == 0 {
		t.Error("central link failures under load lost no packets — faults did not strike")
	}
	if n.Stats().FlitsLost == 0 {
		t.Error("FlitsLost = 0 after mid-stream link failures")
	}
	// The mesh stays connected (4 central cuts cannot partition it), so
	// every post-failure packet must still have been deliverable.
	if !n.LinkState().Connected() {
		t.Fatal("test plan unexpectedly disconnected the mesh")
	}
}

func TestRouterFailureKillsTerminal(t *testing.T) {
	m := topology.NewMesh(8, 8)
	victim := m.RouterAt(2, 2)
	plan := (&fault.Plan{}).FailRouter(5, victim)
	n := faultMeshNet(t, plan)
	for i := 0; i < 10; i++ {
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.TryInject(&Packet{Src: victim, Dst: 0, NumFlits: 1}); !errors.Is(err, ErrTerminalDown) {
		t.Errorf("inject from dead terminal: %v, want ErrTerminalDown", err)
	}
	if err := n.TryInject(&Packet{Src: 0, Dst: victim, NumFlits: 1}); !errors.Is(err, ErrTerminalDown) {
		t.Errorf("inject to dead terminal: %v, want ErrTerminalDown", err)
	}
	// Everyone else still communicates.
	got := 0
	n.SetOnPacket(func(p *Packet) { got++ })
	if err := n.TryInject(&Packet{Src: 0, Dst: 63, NumFlits: 6}); err != nil {
		t.Fatal(err)
	}
	runUntilQuiesced(t, n, 1000)
	if got != 1 {
		t.Fatalf("post-failure packet not delivered")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTryInjectRefusesSeveredDestination(t *testing.T) {
	// Cut corner router 0 off (fail both its links) without killing it.
	plan := (&fault.Plan{}).
		FailLink(5, 0, topology.PortEast).
		FailLink(5, 0, topology.PortSouth)
	n := faultMeshNet(t, plan)
	for i := 0; i < 10; i++ {
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	err := n.TryInject(&Packet{Src: 63, Dst: 0, NumFlits: 1})
	if !errors.Is(err, routing.ErrUnreachable) {
		t.Errorf("inject to severed terminal: %v, want ErrUnreachable", err)
	}
	err = n.TryInject(&Packet{Src: 0, Dst: 63, NumFlits: 1})
	if !errors.Is(err, routing.ErrUnreachable) {
		t.Errorf("inject from severed terminal: %v, want ErrUnreachable", err)
	}
	// The severed terminal can still talk to itself.
	if err := n.TryInject(&Packet{Src: 0, Dst: 0, NumFlits: 1}); err != nil {
		t.Errorf("severed terminal self-send refused: %v", err)
	}
	runUntilQuiesced(t, n, 1000)
}

func TestTransientWindowDropsFlits(t *testing.T) {
	m := topology.NewMesh(8, 8)
	// Open a long drop window on router 0's east link, the first hop of
	// the 0->63 shortest path, before the packet reaches it.
	plan := (&fault.Plan{}).AddTransient(1, 0, topology.PortEast, 300, false)
	n := faultMeshNet(t, plan)
	var why DropReason
	n.SetOnDrop(func(p *Packet, r DropReason) { why = r })
	delivered := false
	n.SetOnPacket(func(p *Packet) { delivered = true })
	if err := n.TryInject(&Packet{Src: 0, Dst: 63, NumFlits: 6}); err != nil {
		t.Fatal(err)
	}
	_ = portToward(t, m, 0, 1) // sanity: the east link exists
	runUntilQuiesced(t, n, 5000)
	if delivered {
		t.Fatal("packet crossed a fully dropped window")
	}
	if why != DropTransient {
		t.Fatalf("drop reason %v, want transient-drop", why)
	}
	if n.Stats().FlitsDroppedFault == 0 {
		t.Error("FlitsDroppedFault = 0")
	}
	if n.Stats().FlitsCorrupted != 0 {
		t.Error("drop window counted corruptions")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTransientCorruptionCaughtByChecksum(t *testing.T) {
	plan := (&fault.Plan{}).AddTransient(1, 0, topology.PortEast, 300, true)
	n := faultMeshNet(t, plan)
	var why DropReason
	n.SetOnDrop(func(p *Packet, r DropReason) { why = r })
	if err := n.TryInject(&Packet{Src: 0, Dst: 63, NumFlits: 6}); err != nil {
		t.Fatal(err)
	}
	runUntilQuiesced(t, n, 5000)
	if why != DropCorrupt {
		t.Fatalf("drop reason %v, want checksum-drop", why)
	}
	if n.Stats().FlitsCorrupted == 0 {
		t.Error("FlitsCorrupted = 0 under a corrupting window")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTransientWindowExpires(t *testing.T) {
	// A short window that ends before the packet is sent must be harmless.
	plan := (&fault.Plan{}).AddTransient(1, 0, topology.PortEast, 3, false)
	n := faultMeshNet(t, plan)
	for i := 0; i < 20; i++ {
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	delivered := false
	n.SetOnPacket(func(p *Packet) { delivered = true })
	if err := n.TryInject(&Packet{Src: 0, Dst: 63, NumFlits: 6}); err != nil {
		t.Fatal(err)
	}
	runUntilQuiesced(t, n, 5000)
	if !delivered {
		t.Fatal("packet lost after the transient window closed")
	}
}

// TestFaultRunsAreDeterministic pins the tentpole's reproducibility claim:
// identical plans and identical seeded traffic give bit-identical
// fingerprints, fault counters included.
func TestFaultRunsAreDeterministic(t *testing.T) {
	m := topology.NewMesh(8, 8)
	run := func() uint64 {
		plan := fault.Generate(m, 77, fault.GenConfig{
			Links: 3, Transients: 4, MaxCycle: 800, KeepConnected: true,
		})
		n := faultMeshNet(t, plan)
		rng := rand.New(rand.NewSource(19))
		for cycle := 0; cycle < 1500; cycle++ {
			for src := 0; src < 64; src++ {
				if rng.Float64() < 0.02 {
					_ = n.TryInject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 6})
				}
			}
			if err := n.Step(); err != nil {
				t.Fatal(err)
			}
		}
		runUntilQuiesced(t, n, 200000)
		return n.Fingerprint()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("fault run not reproducible: %x vs %x", a, b)
	}
}

// TestWatchdogErrorDumpsStalledRouters pins the diagnosability requirement:
// when the deadlock watchdog fires, the error must carry DumpRouter output
// for the routers holding the stalled flits, so the report identifies the
// cycle instead of just announcing it.
func TestWatchdogErrorDumpsStalledRouters(t *testing.T) {
	m := topology.NewMesh(2, 2)
	n, err := New(Config{
		Topo:           m,
		Routing:        cyclicRouting{m},
		Routers:        []RouterConfig{{VCs: 1, BufDepth: 2}},
		FlitWidthBits:  128,
		WatchdogCycles: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range [][2]int{{0, 3}, {1, 2}, {3, 0}, {2, 1}} {
		n.Inject(&Packet{Src: f[0], Dst: f[1], NumFlits: 8})
	}
	var werr error
	for i := 0; i < 1000 && werr == nil; i++ {
		werr = n.Step()
	}
	if werr == nil {
		t.Fatal("engineered turn cycle did not trip the watchdog")
	}
	msg := werr.Error()
	if !strings.Contains(msg, "deadlock watchdog") {
		t.Fatalf("error does not name the watchdog: %v", werr)
	}
	// The dump must include per-router state lines for stalled routers.
	if !strings.Contains(msg, "router 0 (VCs=") || !strings.Contains(msg, "in[") {
		t.Errorf("watchdog error lacks the stalled-router dump:\n%s", msg)
	}
	if !strings.Contains(msg, "flits, ") {
		t.Errorf("dump lines missing VC occupancy:\n%s", msg)
	}
}
