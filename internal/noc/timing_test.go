package noc

import (
	"testing"
)

// TestPipelineTimingDocumentation pins the cycle-exact schedule of a
// two-hop journey, doubling as executable documentation of the router
// pipeline:
//
//	cycle 1  head flit leaves the NI (inject event)
//	cycle 2  flit written into router 0's input buffer
//	cycle 3  stage 1 (RC/VA/SA) + stage 2 latch at router 0
//	cycle 5  link delivers into router 1 (hop event)
//	cycle 6  stage 1 + 2 at router 1
//	cycle 8  link delivers into router 2 (hop event)
//	cycle 9  stage 1 + 2 at router 2 (ejection port)
//	cycle 11 tail consumed at the terminal (eject event)
func TestPipelineTimingDocumentation(t *testing.T) {
	n := newMeshNet(t)
	tr := &CollectingTracer{}
	n.SetTracer(tr)
	n.Inject(&Packet{Src: 0, Dst: 2, NumFlits: 1}) // routers 0 -> 1 -> 2
	runUntilQuiesced(t, n, 100)
	want := []struct {
		kind  EventKind
		cycle int64
	}{
		{EvInject, 1},
		{EvHop, 5},
		{EvHop, 8},
		{EvEject, 11},
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("events %v", tr.Events)
	}
	for i, w := range want {
		e := tr.Events[i]
		if e.Kind != w.kind || e.Cycle != w.cycle {
			t.Fatalf("event %d = %s@%d, want %s@%d\nall: %v", i, e.Kind, e.Cycle, w.kind, w.cycle, tr.Events)
		}
	}
}
