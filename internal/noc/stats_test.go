package noc

import (
	"testing"
)

// histPacket records one synthetic delivered packet with the given total
// latency directly into s (zero hops, one flit, so transfer is the 4-cycle
// ideal and everything else lands in blocking).
func histPacket(s *Stats, latency int64) {
	s.recordPacket(&Packet{
		ID: 1, NumFlits: 1, MinSlots: 1,
		CreateCycle: 0, InjectCycle: 0, RecvCycle: latency,
	})
}

func TestPercentileEmpty(t *testing.T) {
	var s Stats
	if got := s.Percentile(0.5); got != 0 {
		t.Fatalf("empty stats percentile = %v, want 0", got)
	}
}

func TestPercentileEdges(t *testing.T) {
	var s Stats
	for i := 0; i < 100; i++ {
		histPacket(&s, 10)
	}
	for i := 0; i < 100; i++ {
		histPacket(&s, 20)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0.0001, 10}, // target clamps to the first packet: the minimum
		{0.5, 10},    // exactly the lower half
		{0.51, 20},
		{1, 20}, // the maximum
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileOverflowBucket(t *testing.T) {
	var s Stats
	histPacket(&s, 10)
	histPacket(&s, 3*latHistMax) // beyond the histogram: overflow bucket
	if got := s.Percentile(1); got != latHistMax {
		t.Fatalf("overflow percentile = %v, want %v", got, float64(latHistMax))
	}
	if got := s.Percentile(0.5); got != 10 {
		t.Fatalf("p50 = %v, want 10", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	var s Stats
	for lat := int64(1); lat <= 64; lat++ {
		histPacket(&s, lat)
	}
	prev := 0.0
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := s.Percentile(p)
		if got < prev {
			t.Fatalf("Percentile(%v) = %v < previous %v", p, got, prev)
		}
		prev = got
	}
}

func TestResetStatsExcludesEarlierPackets(t *testing.T) {
	n := newMeshNet(t)
	delivered := 0
	n.SetOnPacket(func(*Packet) { delivered++ })
	// A corner-to-corner packet takes tens of cycles; reset while it is in
	// flight, so it arrives inside the new window but was created before it.
	n.Inject(&Packet{Src: 0, Dst: 63, NumFlits: 4})
	for i := 0; i < 3; i++ {
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	n.ResetStats()
	runUntilQuiesced(t, n, 1000)
	if delivered != 1 {
		t.Fatalf("delivered %d packets, want 1", delivered)
	}
	s := n.Stats()
	if s.PacketsReceived != 0 || s.TotalLatency != 0 {
		t.Fatalf("pre-reset packet counted: received=%d totalLatency=%d",
			s.PacketsReceived, s.TotalLatency)
	}
	if s.Percentile(0.5) != 0 {
		t.Fatal("pre-reset packet reached the latency histogram")
	}
	// A packet created after the reset is measured normally.
	n.Inject(&Packet{Src: 0, Dst: 63, NumFlits: 4})
	runUntilQuiesced(t, n, 1000)
	if s.PacketsReceived != 1 || s.TotalLatency <= 0 {
		t.Fatalf("post-reset packet not counted: received=%d totalLatency=%d",
			s.PacketsReceived, s.TotalLatency)
	}
	// Router activity counters restarted with the window too.
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
