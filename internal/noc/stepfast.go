package noc

// Idle fast-forward. During a drain (no packets queued, no streams
// mid-injection) the only future work is timed events already sitting in
// the wire and credit queues — and, when faults are armed, scheduled
// fault events. Every cycle strictly before the earliest of those
// maturities is provably a no-op Step: deliver pops nothing, inject has
// no candidates, the allocation stages skip routers with inFlits == 0,
// and accumulate adds Cycles++ plus a zero occupancy sample per router.
// StepUntilQuiesced therefore jumps the clock straight to the horizon and
// pays one real Step there, gated by the golden fingerprints (skipped
// cycles still count into Stats.Cycles exactly as the spin would have).

import "fmt"

// fastForwardable reports whether the network is in a state where cycles
// up to the event horizon cannot change any observable state. It is
// deliberately conservative: any attached per-cycle observer (sampler,
// tracer) or pending purge disables the jump.
func (n *Network) fastForwardable() bool {
	if n.queuedPackets != 0 || n.onCycle != nil || n.tracer != nil || n.detail != nil {
		return false
	}
	if len(n.brokenQ) != 0 {
		return false
	}
	for t := range n.nis {
		if len(n.nis[t].streams) != 0 {
			return false
		}
	}
	for _, f := range n.inFlits {
		if f != 0 {
			return false
		}
	}
	return true
}

// eventHorizon returns the earliest future cycle at which anything can
// happen: the maturity of the oldest wire or credit event on any port
// (both queues are FIFO in maturity, so the front is the minimum), or the
// next scheduled fault event. ok is false when no future event exists.
func (n *Network) eventHorizon() (horizon int64, ok bool) {
	consider := func(at int64) {
		if !ok || at < horizon {
			horizon, ok = at, true
		}
	}
	for r := range n.routers {
		rt := &n.routers[r]
		for _, op := range rt.out {
			if op.wire.n > 0 {
				consider(op.wire.front().at)
			}
			if op.creditQ.n > 0 {
				consider(op.creditQ.front().at)
			}
		}
	}
	for t := range n.nis {
		up := &n.nis[t].up
		if up.wire.n > 0 {
			consider(up.wire.front().at)
		}
		if up.creditQ.n > 0 {
			consider(up.creditQ.front().at)
		}
	}
	if n.faultsArmed && n.faultNext < len(n.faultEvents) {
		consider(n.faultEvents[n.faultNext].Cycle)
	}
	return horizon, ok
}

// skipIdleCycles advances the clock to just before the event horizon when
// the network is provably idle, accounting the skipped cycles into the
// statistics exactly as the equivalent no-op Steps would have. It returns
// the number of cycles skipped.
func (n *Network) skipIdleCycles() int64 {
	if !n.fastForwardable() {
		return 0
	}
	horizon, ok := n.eventHorizon()
	if !ok {
		return 0
	}
	// The next Step runs at cycle+1; skip only the cycles strictly before
	// the horizon so the event-bearing cycle itself executes for real.
	skip := horizon - n.cycle - 1
	if skip <= 0 {
		return 0
	}
	n.cycle += skip
	n.stats.Cycles += skip
	return skip
}

// StepUntilQuiesced steps the network until no traffic remains, jumping
// over provably idle stretches. It is behaviorally identical to calling
// Step in a loop until Quiesced (same fingerprints, same statistics) and
// returns the number of simulated cycles advanced. An error is returned
// if the network fails to quiesce within maxCycles simulated cycles.
func (n *Network) StepUntilQuiesced(maxCycles int64) (int64, error) {
	start := n.cycle
	for !n.Quiesced() {
		if n.cycle-start >= maxCycles {
			return n.cycle - start, fmt.Errorf("noc: network did not quiesce within %d cycles (%d flits in flight, %d queued)",
				maxCycles, n.flitsInNetwork, n.queuedPackets)
		}
		n.skipIdleCycles()
		if err := n.Step(); err != nil {
			return n.cycle - start, err
		}
	}
	return n.cycle - start, nil
}

// StepUntilQuiesced steps the reliability layer until the network is
// quiet and no transfer awaits an acknowledgement, jumping over idle
// stretches — including the long waits for retransmission timers, which
// dominate wall time in recovery scenarios. Behaviorally identical to
// calling Reliable.Step in a loop.
func (rel *Reliable) StepUntilQuiesced(maxCycles int64) (int64, error) {
	n := rel.net
	start := n.cycle
	for !rel.Quiesced() {
		if n.cycle-start >= maxCycles {
			return n.cycle - start, fmt.Errorf("noc: reliable layer did not quiesce within %d cycles (%d pending transfers)",
				maxCycles, len(rel.pending))
		}
		// The retransmission timers are an extra event source: cap the
		// network's idle jump at the earliest deadline so the timer pop in
		// Reliable.Step happens on exactly the cycle it always would.
		if n.fastForwardable() {
			horizon, ok := n.eventHorizon()
			if len(rel.timers) > 0 && (!ok || rel.timers[0].deadline < horizon) {
				horizon, ok = rel.timers[0].deadline, true
			}
			if ok {
				if skip := horizon - n.cycle - 1; skip > 0 {
					n.cycle += skip
					n.stats.Cycles += skip
				}
			}
		}
		if err := rel.Step(); err != nil {
			return n.cycle - start, err
		}
	}
	return n.cycle - start, nil
}
