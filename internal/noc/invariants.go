package noc

import "fmt"

// CheckInvariants audits the network's conservation properties and returns
// the first violation found. It is O(network size) and intended for tests
// and debugging, not the hot path. Checked invariants:
//
//   - Credit conservation: for every link, the upstream credit count plus
//     credits in flight plus flits occupying (or heading to) the downstream
//     VC buffer equals the buffer depth.
//   - Buffer capacity: no VC holds more flits than its depth (the ring
//     panics earlier, but the audit double-counts independently).
//   - VC ownership: a downstream VC owned by a packet may only buffer
//     flits of compatible packets (FIFO epochs make mixed residency legal
//     only while draining, so ownership is checked for ACTIVE upstream
//     use).
//   - Active-set counters: the maintained per-router flit and pending-event
//     counts (which let the cycle kernel skip idle routers) must equal a
//     full rescan of the buffers and event queues.
func (n *Network) CheckInvariants() error {
	for r := range n.routers {
		rt := &n.routers[r]
		for p, op := range rt.out {
			if op.dead || op.isTerm {
				continue
			}
			if err := n.checkLink(op); err != nil {
				return fmt.Errorf("router %d port %d: %w", r, p, err)
			}
		}
		if err := n.checkActiveSet(r); err != nil {
			return fmt.Errorf("router %d: %w", r, err)
		}
	}
	for t := range n.nis {
		if n.nis[t].up.dead {
			continue // fail-stopped terminal: its credits died with the router
		}
		if err := n.checkLink(&n.nis[t].up); err != nil {
			return fmt.Errorf("ni %d: %w", t, err)
		}
	}
	return nil
}

// checkActiveSet audits the counters behind the event-aware scheduler
// against a ground-truth rescan.
func (n *Network) checkActiveSet(r int) error {
	rt := &n.routers[r]
	total := 0
	for pi := range rt.in {
		ip := &rt.in[pi]
		got := 0
		for vi := range ip.vcs {
			vc := &ip.vcs[vi]
			got += vc.buf.len()
			bit := uint32(1) << vi
			wantRA := vc.buf.len() > 0 && vc.state != vcActive
			wantSA := vc.buf.len() > 0 && vc.state == vcActive
			if (ip.raMask&bit != 0) != wantRA {
				return fmt.Errorf("in[%d].vc[%d]: raMask bit %v, want %v (len %d, state %d)",
					pi, vi, ip.raMask&bit != 0, wantRA, vc.buf.len(), vc.state)
			}
			if (ip.saMask&bit != 0) != wantSA {
				return fmt.Errorf("in[%d].vc[%d]: saMask bit %v, want %v (len %d, state %d)",
					pi, vi, ip.saMask&bit != 0, wantSA, vc.buf.len(), vc.state)
			}
			if head := vc.buf.peek(); head != nil && vc.headArrive != head.arrive {
				return fmt.Errorf("in[%d].vc[%d]: headArrive %d, front flit arrived %d",
					pi, vi, vc.headArrive, head.arrive)
			}
		}
		if got != ip.flits {
			return fmt.Errorf("in[%d]: flit counter %d, buffers hold %d", pi, ip.flits, got)
		}
		if (n.portMask[r]&(1<<pi) != 0) != (got > 0) {
			return fmt.Errorf("in[%d]: portMask bit %v, buffers hold %d", pi, n.portMask[r]&(1<<pi) != 0, got)
		}
		total += got
	}
	if total != int(n.inFlits[r]) {
		return fmt.Errorf("router flit counter %d, buffers hold %d", n.inFlits[r], total)
	}
	for pi, op := range rt.out {
		want := op.wire.len()+op.creditQ.len() > 0
		if (n.evMask[r]&(1<<pi) != 0) != want {
			return fmt.Errorf("out[%d]: evMask bit %v, queues hold %d events",
				pi, n.evMask[r]&(1<<pi) != 0, op.wire.len()+op.creditQ.len())
		}
		for vc := range op.credits {
			if (op.creditMask&(1<<vc) != 0) != (op.credits[vc] > 0) {
				return fmt.Errorf("out[%d]: creditMask bit %d is %v, credits %d",
					pi, vc, op.creditMask&(1<<vc) != 0, op.credits[vc])
			}
		}
	}
	return nil
}

// checkLink verifies credit conservation for one upstream endpoint.
func (n *Network) checkLink(op *outputPort) error {
	down := &n.routers[op.link.Router]
	for vc := 0; vc < op.downVCs; vc++ {
		buffered := down.in[op.link.Port].vcs[vc].buf.len()
		inFlightFlits := 0
		for i := 0; i < op.wire.len(); i++ {
			if op.wire.at(i).outVC == vc {
				inFlightFlits++
			}
		}
		inFlightCredits := 0
		for i := 0; i < op.creditQ.len(); i++ {
			if op.creditQ.at(i).vc == vc {
				inFlightCredits++
			}
		}
		total := op.credits[vc] + inFlightCredits + inFlightFlits + buffered
		if total != op.downDepth {
			return fmt.Errorf("vc %d: credits %d + credit-wire %d + flit-wire %d + buffered %d = %d, want depth %d",
				vc, op.credits[vc], inFlightCredits, inFlightFlits, buffered, total, op.downDepth)
		}
		if buffered > op.downDepth {
			return fmt.Errorf("vc %d: %d flits buffered beyond depth %d", vc, buffered, op.downDepth)
		}
	}
	return nil
}

// DumpRouter renders one router's live state — per input port, each VC's
// occupancy, state and allocation — for interactive debugging of stuck
// networks alongside CheckInvariants and the packet tracer.
func (n *Network) DumpRouter(r int) string {
	rt := &n.routers[r]
	var b []byte
	b = append(b, fmt.Sprintf("router %d (VCs=%d depth=%d wide=%v)\n",
		r, rt.cfg.VCs, rt.cfg.BufDepth, rt.cfg.Wide)...)
	states := [...]string{"idle", "waitVC", "active"}
	for pi := range rt.in {
		for vi := range rt.in[pi].vcs {
			vc := &rt.in[pi].vcs[vi]
			if vc.buf.len() == 0 && vc.state == vcIdle {
				continue
			}
			line := fmt.Sprintf("  in[%d].vc[%d]: %d flits, %s", pi, vi, vc.buf.len(), states[vc.state])
			if vc.state != vcIdle {
				line += fmt.Sprintf(" -> out[%d].vc[%d]", vc.outPort, vc.outVC)
			}
			if head := vc.buf.peek(); head != nil {
				line += fmt.Sprintf(" head=pkt%d/%s", head.Pkt.ID, head.Kind)
			}
			b = append(b, (line + "\n")...)
		}
	}
	for po, op := range rt.out {
		if op.dead || op.isTerm || op.credits == nil {
			continue
		}
		used := 0
		for vcI := 0; vcI < op.downVCs; vcI++ {
			used += op.downDepth - op.credits[vcI]
		}
		if used > 0 || op.wire.len() > 0 {
			b = append(b, fmt.Sprintf("  out[%d]: %d credits consumed, %d flits on wire\n",
				po, used, op.wire.len())...)
		}
	}
	return string(b)
}
