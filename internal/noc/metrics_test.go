package noc

import (
	"strings"
	"testing"

	"heteronoc/internal/obs"
)

func TestRegisterMetricsExposition(t *testing.T) {
	n := newMeshNet(t)
	for i := 0; i < 30; i++ {
		n.Inject(&Packet{Src: i % 64, Dst: (i*13 + 7) % 64, NumFlits: 4})
	}
	runUntilQuiesced(t, n, 10000)

	reg := obs.NewRegistry()
	n.RegisterMetrics(reg)
	out := string(reg.Exposition())
	if _, err := obs.ValidatePrometheusText(out); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, out)
	}
	for _, want := range []string{
		"noc_packets_received_total 30",
		"noc_packets_injected_total 30",
		"noc_flits_in_network 0",
		`noc_router_link_utilization{router="0"}`,
		`noc_router_buffer_occupancy{router="63"}`,
		"noc_packet_latency_cycles_count 30",
		`noc_packet_latency_cycles_bucket{le="+Inf"} 30`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestRegisterMetricsLabelsDisambiguate(t *testing.T) {
	a, b := newMeshNet(t), newMeshNet(t)
	reg := obs.NewRegistry()
	a.RegisterMetrics(reg, obs.L("net", "a"))
	b.RegisterMetrics(reg, obs.L("net", "b"))
	out := string(reg.Exposition())
	if !strings.Contains(out, `noc_cycles_total{net="a"}`) ||
		!strings.Contains(out, `noc_cycles_total{net="b"}`) {
		t.Fatalf("labeled series missing:\n%s", out)
	}
}

func TestSamplerWindows(t *testing.T) {
	n := newMeshNet(t)
	s := NewSampler(n, SampleConfig{Stride: 50, PerRouter: true})
	s.Attach()
	for cycle := 0; cycle < 400; cycle++ {
		if cycle%3 == 0 {
			n.Inject(&Packet{Src: cycle % 64, Dst: (cycle*29 + 1) % 64, NumFlits: 2})
		}
		if cycle == 200 {
			n.ResetStats() // sampler must survive the counter reset
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ts := s.Series()
	if ts.Len() != 8 {
		t.Fatalf("sampled %d windows over 400 cycles at stride 50, want 8", ts.Len())
	}
	if want := 5 + 2*64; len(ts.Columns) != want {
		t.Fatalf("%d columns, want %d", len(ts.Columns), want)
	}
	var injected, util float64
	for i, row := range ts.Rows {
		for j, v := range row {
			if v < 0 {
				t.Fatalf("negative sample %s=%v in window %d (reset handling broken)",
					ts.Columns[j], v, i)
			}
		}
		injected += row[2]
		util += row[5+64] // link_util_r0
	}
	if injected == 0 {
		t.Fatal("no flit injections sampled")
	}
	if ts.Cycles[0] != 50 || ts.Cycles[7] != 400 {
		t.Fatalf("sample cycles %v", ts.Cycles)
	}
	_ = util
}

func TestSamplerDefaultStride(t *testing.T) {
	n := newMeshNet(t)
	s := NewSampler(n, SampleConfig{})
	s.Attach()
	for cycle := 0; cycle < 2500; cycle++ {
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Series().Len(); got != 2 {
		t.Fatalf("default stride sampled %d windows over 2500 cycles, want 2", got)
	}
}
