package noc

import (
	"fmt"

	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// niStream is one packet mid-injection. A stream emits at most one flit per
// cycle: the downstream demux separates combined flits by VC ID, so two
// flits of the same VC (same packet) can never share a wide-link cycle.
type niStream struct {
	pkt     *Packet
	nextSeq int
	vc      int
}

// ni is a network interface: the injection queue and upstream-side state of
// one terminal. On a wide local link the NI drives up to two concurrent
// packet streams on distinct VCs, mirroring the router-side flit combining.
type ni struct {
	term    int
	up      outputPort
	queue   []*Packet
	qHead   int
	streams []niStream
	waitVC  int // VA starvation counter at injection
}

func (q *ni) queued() int { return len(q.queue) - q.qHead }

func (q *ni) pop() *Packet {
	p := q.queue[q.qHead]
	q.queue[q.qHead] = nil
	q.qHead++
	if q.qHead > 64 && q.qHead*2 >= len(q.queue) {
		q.queue = append(q.queue[:0], q.queue[q.qHead:]...)
		q.qHead = 0
	}
	return p
}

// Network is a running simulation instance.
type Network struct {
	cfg     Config
	alg     routing.Algorithm
	escaper routing.Escaper
	routers []router
	nis     []ni

	cycle          int64
	lastMove       int64
	flitsInNetwork int
	queuedPackets  int
	nextPktID      uint64

	onPacket func(*Packet)
	tracer   Tracer
	stats    Stats
}

// New builds and validates a network.
func New(cfg Config) (*Network, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, alg: cfg.Routing}
	n.escaper, _ = cfg.Routing.(routing.Escaper)
	topo := cfg.Topo
	n.routers = make([]router, topo.NumRouters())
	for r := range n.routers {
		rt := &n.routers[r]
		rt.id = r
		rt.cfg = cfg.Routers[r]
		radix := topo.Radix(r)
		rt.in = make([]inputPort, radix)
		rt.out = make([]*outputPort, radix)
		for p := 0; p < radix; p++ {
			rt.in[p].vcs = make([]inVC, rt.cfg.VCs)
			for v := range rt.in[p].vcs {
				rt.in[p].vcs[v].buf = newRing(rt.cfg.BufDepth)
			}
			rt.bufSlots += rt.cfg.VCs * rt.cfg.BufDepth
			op := &outputPort{router: r, port: p, slots: cfg.LinkSlots(r, p)}
			if link, ok := topo.Neighbor(r, p); ok {
				op.link = link
				down := cfg.Routers[link.Router]
				op.downVCs = down.VCs
				op.downDepth = down.BufDepth
				op.credits = make([]int, down.VCs)
				for v := range op.credits {
					op.credits[v] = down.BufDepth
				}
				op.owner = make([]*Packet, down.VCs)
				op.pendingFree = make([]bool, down.VCs)
			} else if term, ok := topo.PortTerminal(r, p); ok {
				op.isTerm = true
				op.term = term
				op.downVCs = 1
			} else {
				op.dead = true
			}
			rt.out[p] = op
		}
	}
	// Wire credit upstreams: the input port fed by output port (r,p) is
	// (link.Router, link.Port).
	for r := range n.routers {
		for _, op := range n.routers[r].out {
			if !op.dead && !op.isTerm {
				n.routers[op.link.Router].in[op.link.Port].upstream = op
			}
		}
	}
	// Network interfaces.
	n.nis = make([]ni, topo.NumTerminals())
	for t := range n.nis {
		q := &n.nis[t]
		q.term = t
		r, p := topo.TerminalRouter(t)
		down := cfg.Routers[r]
		q.up = outputPort{
			router:      -1,
			port:        -1,
			link:        topology.Link{Router: r, Port: p},
			slots:       cfg.LinkSlots(r, p),
			downVCs:     down.VCs,
			downDepth:   down.BufDepth,
			credits:     make([]int, down.VCs),
			owner:       make([]*Packet, down.VCs),
			pendingFree: make([]bool, down.VCs),
		}
		for v := range q.up.credits {
			q.up.credits[v] = down.BufDepth
		}
		n.routers[r].in[p].upstream = &q.up
	}
	n.stats.init(len(n.routers))
	return n, nil
}

// SetOnPacket registers a callback invoked when a packet's tail flit is
// consumed at its destination terminal.
func (n *Network) SetOnPacket(fn func(*Packet)) { n.onPacket = fn }

// Config returns the network configuration (read-only).
func (n *Network) Config() *Config { return &n.cfg }

// Cycle returns the current simulation cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// Inject queues a packet at its source terminal. The packet's ID and
// CreateCycle are assigned here; Src, Dst and NumFlits must be set.
func (n *Network) Inject(p *Packet) {
	if p.Src < 0 || p.Src >= len(n.nis) || p.Dst < 0 || p.Dst >= len(n.nis) {
		panic(fmt.Sprintf("noc: inject with bad endpoints %d->%d", p.Src, p.Dst))
	}
	if p.NumFlits < 1 {
		panic("noc: inject packet with no flits")
	}
	n.nextPktID++
	p.ID = n.nextPktID
	p.CreateCycle = n.cycle
	p.MinSlots = 1 << 30
	q := &n.nis[p.Src]
	q.queue = append(q.queue, p)
	n.queuedPackets++
	n.stats.PacketsInjected++
}

// Quiesced reports whether no packets are queued or in flight.
func (n *Network) Quiesced() bool { return n.queuedPackets == 0 && n.flitsInNetwork == 0 }

// InFlight returns the number of flits currently inside the network.
func (n *Network) InFlight() int { return n.flitsInNetwork }

// Step advances the simulation by one cycle. It returns an error when the
// deadlock watchdog fires.
func (n *Network) Step() error {
	n.cycle++
	n.deliver()
	n.inject()
	n.routeAndAllocate()
	n.switchAllocate()
	n.accumulate()
	if w := n.cfg.WatchdogCycles; w > 0 && n.flitsInNetwork > 0 && n.cycle-n.lastMove > int64(w) {
		return fmt.Errorf("noc: deadlock watchdog: no flit moved for %d cycles at cycle %d (%d flits in flight)",
			w, n.cycle, n.flitsInNetwork)
	}
	return nil
}

// deliver moves matured flits off link wires into downstream buffers or
// sinks, and matured credits back to upstream counters.
func (n *Network) deliver() {
	for r := range n.routers {
		for _, op := range n.routers[r].out {
			n.deliverPort(op)
		}
	}
	for t := range n.nis {
		n.deliverPort(&n.nis[t].up)
	}
}

func (n *Network) deliverPort(op *outputPort) {
	// Credits.
	k := 0
	for _, ce := range op.creditQ {
		if ce.at > n.cycle {
			op.creditQ[k] = ce
			k++
			continue
		}
		if op.credits != nil {
			op.credits[ce.vc]++
			if op.credits[ce.vc] > op.downDepth {
				panic("noc: credit overflow")
			}
			op.tryFree(ce.vc)
		}
	}
	op.creditQ = op.creditQ[:k]
	// Flits.
	k = 0
	for _, we := range op.wire {
		if we.at > n.cycle {
			op.wire[k] = we
			k++
			continue
		}
		n.lastMove = n.cycle
		if op.slots < we.flit.Pkt.MinSlots {
			we.flit.Pkt.MinSlots = op.slots
		}
		if op.isTerm {
			n.sink(we.flit)
			continue
		}
		rt := &n.routers[op.link.Router]
		vc := &rt.in[op.link.Port].vcs[we.outVC]
		f := we.flit
		f.arrive = n.cycle
		vc.buf.push(f)
		rt.bufWrites++
		if f.Kind.IsHead() && op.router >= 0 {
			f.Pkt.Hops++
			n.trace(EvHop, f.Pkt.ID, op.link.Router)
		}
	}
	op.wire = op.wire[:k]
}

// sink consumes a flit at its destination terminal.
func (n *Network) sink(f Flit) {
	n.flitsInNetwork--
	n.stats.FlitsReceived++
	p := f.Pkt
	p.received++
	if f.Kind.IsTail() {
		if p.received != p.NumFlits {
			panic(fmt.Sprintf("noc: packet %d tail with %d/%d flits received", p.ID, p.received, p.NumFlits))
		}
		p.RecvCycle = n.cycle
		n.trace(EvEject, p.ID, -1)
		n.stats.recordPacket(p)
		if n.onPacket != nil {
			n.onPacket(p)
		}
	}
}

// inject pushes flits from NI source queues into router local input ports,
// using the same VC-allocation and credit machinery as a link.
func (n *Network) inject() {
	for t := range n.nis {
		q := &n.nis[t]
		budget := q.up.slots
		// Advance the active streams, one flit each.
		live := q.streams[:0]
		for i := range q.streams {
			st := q.streams[i]
			if budget > 0 && q.up.creditOK(st.vc) {
				budget--
				n.emitFlit(q, &st)
			}
			if st.pkt != nil {
				live = append(live, st)
			}
		}
		q.streams = live
		// Open new streams for queued packets while slots and VCs allow.
		for budget > 0 && q.queued() > 0 {
			p := q.queue[q.qHead] // peek: pop only once the head flit wins a VC
			class := n.alg.InitialClass(p.Src, p.Dst)
			lo, hi := n.alg.ClassVCs(class, q.up.downVCs)
			vc, ok := q.up.allocVC(p, lo, hi)
			if !ok || !q.up.creditOK(vc) {
				if ok {
					// VC granted but no credit; release instantly (no flit
					// was sent on it yet).
					q.up.owner[vc] = nil
				}
				q.waitVC++
				break
			}
			q.waitVC = 0
			p.vcClass = class
			p.InjectCycle = n.cycle
			n.trace(EvInject, p.ID, q.up.link.Router)
			q.pop()
			n.queuedPackets--
			st := niStream{pkt: p, vc: vc}
			budget--
			n.emitFlit(q, &st)
			if st.pkt != nil {
				q.streams = append(q.streams, st)
			}
		}
		// Spend leftover wide-link slots on second flits of active streams
		// (a same-VC combined pair).
		for i := range q.streams {
			if budget == 0 {
				break
			}
			st := &q.streams[i]
			if st.pkt != nil && q.up.creditOK(st.vc) {
				budget--
				n.emitFlit(q, st)
			}
		}
		k := 0
		for _, st := range q.streams {
			if st.pkt != nil {
				q.streams[k] = st
				k++
			}
		}
		q.streams = q.streams[:k]
	}
}

// emitFlit sends the next flit of a stream and closes the stream on tail.
func (n *Network) emitFlit(q *ni, st *niStream) {
	p := st.pkt
	kind := BodyFlit
	switch {
	case p.NumFlits == 1:
		kind = SingleFlit
	case st.nextSeq == 0:
		kind = HeadFlit
	case st.nextSeq == p.NumFlits-1:
		kind = TailFlit
	}
	f := Flit{Pkt: p, Seq: st.nextSeq, Kind: kind}
	q.up.consumeCredit(st.vc)
	q.up.wire = append(q.up.wire, wireEvt{flit: f, outVC: st.vc, at: n.cycle + 1})
	n.flitsInNetwork++
	n.stats.FlitsInjected++
	n.lastMove = n.cycle
	st.nextSeq++
	if kind.IsTail() {
		q.up.releaseOnTail(st.vc)
		st.pkt = nil
	}
}

// routeAndAllocate is pipeline stage 1a: route computation for fresh heads
// and downstream VC allocation for waiting heads.
func (n *Network) routeAndAllocate() {
	for r := range n.routers {
		rt := &n.routers[r]
		radix := len(rt.in)
		for pi0 := 0; pi0 < radix; pi0++ {
			pi := (pi0 + int(n.cycle)) % radix
			ip := &rt.in[pi]
			for vi := range ip.vcs {
				vc := &ip.vcs[vi]
				if vc.state == vcIdle {
					head := vc.buf.peek()
					if head == nil || !head.Kind.IsHead() || head.arrive >= n.cycle {
						continue
					}
					p := head.Pkt
					d := n.route(r, p)
					vc.outPort, vc.class = d.OutPort, d.VCClass
					p.vcClass = d.VCClass
					vc.waitCycles = 0
					vc.state = vcWaitVC
				}
				if vc.state == vcWaitVC {
					head := vc.buf.peek()
					p := head.Pkt
					out := rt.out[vc.outPort]
					lo, hi := n.alg.ClassVCs(vc.class, out.downVCs)
					if ovc, ok := out.allocVC(p, lo, hi); ok {
						vc.outVC = ovc
						vc.state = vcActive
						vc.waitCycles = 0
						continue
					}
					vc.waitCycles++
					rt.arbOps++
					if n.escaper != nil && !p.escaped && vc.waitCycles > n.escaper.EscapeThreshold() {
						p.escaped = true
						n.trace(EvEscape, p.ID, r)
						d := n.escaper.EscapeHop(r, p.Src, p.Dst)
						vc.outPort, vc.class = d.OutPort, d.VCClass
						p.vcClass = d.VCClass
						vc.waitCycles = 0
						n.stats.Escapes++
					}
				}
			}
		}
	}
}

// route computes the next-hop decision for packet p at router r.
func (n *Network) route(r int, p *Packet) routing.Decision {
	if p.escaped && n.escaper != nil {
		return n.escaper.EscapeHop(r, p.Src, p.Dst)
	}
	return n.alg.NextHop(r, p.Src, p.Dst, p.vcClass)
}

// saIterations is the number of request/grant rounds of the separable
// switch allocator per cycle. Multiple rounds model the paper's dual
// parallel p:1 output arbiters (Figure 6(b)): they let a wide output
// collect a second flit — from a second VC of the same input port, from a
// different input port, or the next flit of the same VC — which is what
// sustains the 40%/80% low/high-load combining rates of Section 3.3.
const saIterations = 3

// switchAllocate is pipeline stage 1b plus stage 2: the separable switch
// allocator matches input VCs to output slots iteratively, then winning
// flits traverse crossbar and link. Constraints honored per cycle:
//
//   - an input port sends at most two flits, and only toward a single
//     output port (the split-datapath crossbar of Figure 4),
//   - an output port accepts at most `slots` flits (2 on wide links),
//   - every flit needs a credit on its downstream VC.
func (n *Network) switchAllocate() {
	for r := range n.routers {
		rt := &n.routers[r]
		radix := len(rt.in)
		if rt.portSent == nil {
			rt.portSent = make([]int8, radix)
			rt.outLeft = make([]int8, radix)
			rt.outSent = make([]int8, radix)
		}
		for i := 0; i < radix; i++ {
			rt.portSent[i] = 0
			rt.outLeft[i] = int8(rt.out[i].slots)
			rt.outSent[i] = 0
		}
		// Allocation fidelity differs by router class. The homogeneous
		// baseline router is the classic single-iteration separable
		// allocator: each input port's v:1 arbiter nominates its first
		// requesting VC, and the nomination is simply lost when its output
		// has already been granted. Split-datapath HeteroNoC routers
		// (Figures 4-6) run the dual parallel output arbiters over the two
		// DSET halves: up to two flits per input port, a blocked request
		// falls through to another VC, and extra rounds model the second
		// p:1 arbiter supplying a matching flit for combining.
		iters, maxPerPort, fallthru := 1, int8(1), false
		switch {
		case rt.cfg.SplitDatapath:
			iters, maxPerPort, fallthru = saIterations, 2, true
		case rt.cfg.ImprovedSA:
			iters, fallthru = 2, true
		}
		for iter := 0; iter < iters; iter++ {
			moved := false
			for pi0 := 0; pi0 < radix; pi0++ {
				pi := (pi0 + int(n.cycle)) % radix
				ip := &rt.in[pi]
				if rt.portSent[pi] >= maxPerPort {
					continue
				}
				nvc := len(ip.vcs)
				for i := 0; i < nvc; i++ {
					vi := (ip.rr + i) % nvc
					vc := &ip.vcs[vi]
					if !n.eligible(rt, vc) {
						continue
					}
					rt.arbOps++
					if rt.outLeft[vc.outPort] == 0 {
						if fallthru {
							continue // DSET halves let another VC bid
						}
						break // baseline: the nomination is lost this cycle
					}
					out := rt.out[vc.outPort]
					n.sendFlit(rt, pi, vc, out)
					rt.portSent[pi]++
					rt.outLeft[vc.outPort]--
					rt.outSent[vc.outPort]++
					ip.rr = (vi + 1) % nvc
					moved = true
					break
				}
			}
			if !moved {
				break
			}
		}
		for po := 0; po < radix; po++ {
			if rt.outSent[po] > 0 {
				out := rt.out[po]
				out.rrOut++
				out.busyCycles++
				if rt.outSent[po] == 2 {
					out.combineCycles++
				}
			}
		}
	}
}

// eligible reports whether an input VC can bid for the switch this cycle.
func (n *Network) eligible(rt *router, vc *inVC) bool {
	if vc.state != vcActive {
		return false
	}
	head := vc.buf.peek()
	if head == nil || head.arrive >= n.cycle {
		return false
	}
	return rt.out[vc.outPort].creditOK(vc.outVC)
}

// sendFlit pops a winning flit from its input VC, returns a credit
// upstream, and launches the flit onto the output link.
func (n *Network) sendFlit(rt *router, inPort int, vc *inVC, out *outputPort) {
	f := vc.buf.pop()
	rt.bufReads++
	rt.xbarFlits++
	out.flitsSent++
	n.lastMove = n.cycle
	if up := rt.in[inPort].upstream; up != nil {
		up.creditQ = append(up.creditQ, creditEvt{vc: vcIndexOf(rt, inPort, vc), at: n.cycle + 1})
	}
	out.consumeCredit(vc.outVC)
	out.wire = append(out.wire, wireEvt{flit: f, outVC: vc.outVC, at: n.cycle + 2})
	if f.Kind.IsTail() {
		out.releaseOnTail(vc.outVC)
		vc.state = vcIdle
	}
}

// vcIndexOf recovers the index of vc within its input port (the VCs slice is
// contiguous, so pointer arithmetic via comparison is safe and cheap).
func vcIndexOf(rt *router, inPort int, vc *inVC) int {
	vcs := rt.in[inPort].vcs
	for i := range vcs {
		if &vcs[i] == vc {
			return i
		}
	}
	panic("noc: vc not found in its port")
}

// accumulate gathers per-cycle occupancy statistics.
func (n *Network) accumulate() {
	n.stats.Cycles++
	for r := range n.routers {
		rt := &n.routers[r]
		rt.bufOccSum += int64(rt.occupied())
	}
}
