package noc

import (
	"fmt"
	"math/bits"

	"heteronoc/internal/fault"
	"heteronoc/internal/par"
	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// niStream is one packet mid-injection. A stream emits at most one flit per
// cycle: the downstream demux separates combined flits by VC ID, so two
// flits of the same VC (same packet) can never share a wide-link cycle.
type niStream struct {
	pkt     *Packet
	nextSeq int
	vc      int
}

// ni is a network interface: the injection queue and upstream-side state of
// one terminal. On a wide local link the NI drives up to two concurrent
// packet streams on distinct VCs, mirroring the router-side flit combining.
type ni struct {
	term    int
	up      outputPort
	queue   []*Packet
	qHead   int
	streams []niStream
	waitVC  int // VA starvation counter at injection
}

func (q *ni) queued() int { return len(q.queue) - q.qHead }

func (q *ni) pop() *Packet {
	p := q.queue[q.qHead]
	q.queue[q.qHead] = nil
	q.qHead++
	if q.qHead > 64 && q.qHead*2 >= len(q.queue) {
		q.queue = append(q.queue[:0], q.queue[q.qHead:]...)
		q.qHead = 0
	}
	return p
}

// Network is a running simulation instance.
type Network struct {
	cfg     Config
	alg     routing.Algorithm
	escaper routing.Escaper
	routers []router
	nis     []ni

	// Active-set scheduling state in structure-of-arrays form, one element
	// per router. inFlits counts flits buffered across a router's input
	// VCs; the allocation stages and the occupancy accumulator skip routers
	// holding nothing. portMask has a bit set for every input port with
	// buffered flits, so those stages iterate set bits instead of probing
	// every port. evMask has a bit set for every output port with queued
	// wire or credit events; deliver visits only those ports and clears the
	// bit once a port's queues drain. Hoisted out of the router structs so
	// scanning a mostly-idle 1024-router mesh touches a few cache lines of
	// dense counters instead of a thousand scattered structs. All three are
	// live state, not statistics: they survive ResetStats. Neighboring
	// elements share cache lines across shard boundaries, but each element
	// has a single writer per pass, so sharded ticks stay race free.
	inFlits  []int32
	portMask []uint32
	evMask   []uint32

	cycle          int64
	lastMove       int64
	flitsInNetwork int
	queuedPackets  int
	nextPktID      uint64

	// Fault-injection state; all nil/false on fault-free networks, and the
	// hot path only pays a single faultsArmed branch per touch point.
	faultsArmed bool
	faultEvents []fault.Event
	faultNext   int
	linkState   *topology.LinkState
	faultAware  routing.FaultAware
	niDead      []bool
	brokenQ     []*Packet

	onPacket func(*Packet)
	onDrop   func(*Packet, DropReason)
	onCycle  func(cycle int64)
	tracer   Tracer
	detail   DetailTracer
	stats    Stats

	// Causal latency attribution (attrib.go): the always-on counter path
	// toggle, the opt-in per-hop recorder, and the terminal→router map used
	// to charge queue/serialization cycles to endpoint routers at sink time.
	atrOn      bool
	attrRec    AttrRecorder
	termRouter []int32

	// Intra-cycle sharding (see shard.go). directFx is the always-present
	// sequential effect sink; pool and shards exist only when sharding is
	// enabled via Config.ShardWorkers or SetShardWorkers.
	directFx tickFx
	pool     *par.Pool
	shards   []tickFx
}

// New builds and validates a network.
func New(cfg Config) (*Network, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, alg: cfg.Routing}
	n.escaper, _ = cfg.Routing.(routing.Escaper)
	topo := cfg.Topo
	n.routers = make([]router, topo.NumRouters())
	n.inFlits = make([]int32, topo.NumRouters())
	n.portMask = make([]uint32, topo.NumRouters())
	n.evMask = make([]uint32, topo.NumRouters())
	for r := range n.routers {
		rt := &n.routers[r]
		rt.id = r
		rt.cfg = cfg.Routers[r]
		radix := topo.Radix(r)
		if radix > 31 || rt.cfg.VCs > 31 {
			return nil, fmt.Errorf("noc: router %d radix %d / VCs %d exceed the 31-wide active-set masks", r, radix, rt.cfg.VCs)
		}
		rt.in = make([]inputPort, radix)
		rt.out = make([]*outputPort, radix)
		rt.portSent = make([]int8, radix)
		rt.outLeft = make([]int8, radix)
		rt.outSent = make([]int8, radix)
		rt.outSlots = make([]int8, radix)
		// Contiguous backing stores: a router's output ports, input VCs,
		// buffer slots and event queues each live in one allocation, so the
		// per-cycle stages walk dense memory instead of chasing per-port
		// allocations. The event arenas hold each queue's steady-state
		// maximum (links add at most two flits per cycle with a two-cycle
		// delay, credits mature in one); evq grows past the arena on its own
		// if that bound is ever exceeded.
		ops := make([]outputPort, radix)
		vcs := make([]inVC, radix*rt.cfg.VCs)
		slots := make([]Flit, radix*rt.cfg.VCs*rt.cfg.BufDepth)
		wireArena := make([]wireEvt, radix*4)
		creditArena := make([]creditEvt, radix*4)
		// The downstream-VC bookkeeping (credits, owners, pending frees) of
		// all the router's network ports shares three arenas, sliced per
		// port below, instead of three allocations per port.
		totalDownVCs := 0
		for p := 0; p < radix; p++ {
			if link, ok := topo.Neighbor(r, p); ok {
				totalDownVCs += cfg.Routers[link.Router].VCs
			}
		}
		credArena := make([]int, totalDownVCs)
		ownerArena := make([]*Packet, totalDownVCs)
		freeArena := make([]bool, totalDownVCs)
		credOff := 0
		for p := 0; p < radix; p++ {
			rt.in[p].vcs = vcs[p*rt.cfg.VCs : (p+1)*rt.cfg.VCs]
			for v := range rt.in[p].vcs {
				off := (p*rt.cfg.VCs + v) * rt.cfg.BufDepth
				rt.in[p].vcs[v].buf = ring{buf: slots[off : off+rt.cfg.BufDepth]}
				rt.in[p].vcs[v].idx = uint8(v)
			}
			rt.bufSlots += rt.cfg.VCs * rt.cfg.BufDepth
			op := &ops[p]
			op.router, op.port, op.slots = r, p, cfg.LinkSlots(r, p)
			op.wire.buf = wireArena[p*4 : (p+1)*4]
			op.creditQ.buf = creditArena[p*4 : (p+1)*4]
			rt.outSlots[p] = int8(op.slots)
			rt.outLeft[p] = int8(op.slots) // rest value; see switchAllocate
			if link, ok := topo.Neighbor(r, p); ok {
				op.link = link
				down := cfg.Routers[link.Router]
				op.downVCs = down.VCs
				op.downDepth = down.BufDepth
				end := credOff + down.VCs
				op.credits = credArena[credOff:end:end]
				for v := range op.credits {
					op.credits[v] = down.BufDepth
				}
				op.creditMask = uint32(1)<<down.VCs - 1
				op.owner = ownerArena[credOff:end:end]
				op.pendingFree = freeArena[credOff:end:end]
				credOff = end
			} else if term, ok := topo.PortTerminal(r, p); ok {
				op.isTerm = true
				op.term = term
				op.downVCs = 1
				op.creditMask = ^uint32(0) // sinks consume unconditionally
			} else {
				op.dead = true
				op.creditMask = ^uint32(0) // mirror nil-credits semantics
			}
			rt.out[p] = op
		}
	}
	// Wire credit upstreams: the input port fed by output port (r,p) is
	// (link.Router, link.Port).
	for r := range n.routers {
		for _, op := range n.routers[r].out {
			if !op.dead && !op.isTerm {
				n.routers[op.link.Router].in[op.link.Port].upstream = op
			}
		}
	}
	// Network interfaces.
	n.nis = make([]ni, topo.NumTerminals())
	n.termRouter = make([]int32, topo.NumTerminals())
	n.atrOn = true
	for t := range n.nis {
		q := &n.nis[t]
		q.term = t
		r, p := topo.TerminalRouter(t)
		n.termRouter[t] = int32(r)
		down := cfg.Routers[r]
		q.up = outputPort{
			router:      -1,
			port:        -1,
			link:        topology.Link{Router: r, Port: p},
			slots:       cfg.LinkSlots(r, p),
			downVCs:     down.VCs,
			downDepth:   down.BufDepth,
			credits:     make([]int, down.VCs),
			owner:       make([]*Packet, down.VCs),
			pendingFree: make([]bool, down.VCs),
		}
		for v := range q.up.credits {
			q.up.credits[v] = down.BufDepth
		}
		q.up.creditMask = uint32(1)<<down.VCs - 1
		q.up.wire.buf = make([]wireEvt, 4)
		q.up.creditQ.buf = make([]creditEvt, 4)
		n.routers[r].in[p].upstream = &q.up
	}
	n.directFx = tickFx{n: n, direct: true}
	if cfg.ShardWorkers > 0 {
		n.SetShardWorkers(cfg.ShardWorkers)
	}
	return n, nil
}

// SetOnPacket registers a callback invoked when a packet's tail flit is
// consumed at its destination terminal.
func (n *Network) SetOnPacket(fn func(*Packet)) { n.onPacket = fn }

// SetOnDrop registers a callback invoked when a packet is purged from the
// network after a fault destroyed one of its flits or severed its route.
// The reliability layer uses it for accounting; recovery is timer driven.
func (n *Network) SetOnDrop(fn func(*Packet, DropReason)) { n.onDrop = fn }

// SetOnCycle registers a callback invoked at the end of every successful
// Step, after all per-cycle statistics have been accumulated. The sampler
// (sample.go) and live-introspection snapshots hang off this hook; when nil
// the hot path pays one branch per cycle.
func (n *Network) SetOnCycle(fn func(cycle int64)) { n.onCycle = fn }

// Config returns the network configuration (read-only).
func (n *Network) Config() *Config { return &n.cfg }

// Cycle returns the current simulation cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// Inject queues a packet at its source terminal. The packet's ID and
// CreateCycle are assigned here; Src, Dst and NumFlits must be set.
// Injection bugs panic; callers that want errors use TryInject.
func (n *Network) Inject(p *Packet) {
	if err := n.TryInject(p); err != nil {
		panic(err)
	}
}

// TryInject is Inject with error returns instead of panics, so traffic
// generators and the CMP layer surface bad endpoints as test failures
// rather than crashes. On fault-injected networks it additionally refuses
// packets from a fail-stopped terminal (ErrTerminalDown) and, when the
// routing algorithm is fault aware, packets to destinations severed from
// the source (wrapping routing.ErrUnreachable).
func (n *Network) TryInject(p *Packet) error {
	if p.Src < 0 || p.Src >= len(n.nis) || p.Dst < 0 || p.Dst >= len(n.nis) {
		return fmt.Errorf("noc: inject with bad endpoints %d->%d", p.Src, p.Dst)
	}
	if p.NumFlits < 1 {
		return fmt.Errorf("noc: inject packet %d->%d with no flits", p.Src, p.Dst)
	}
	if n.faultsArmed {
		if n.niDead[p.Src] {
			return fmt.Errorf("noc: source terminal %d: %w", p.Src, ErrTerminalDown)
		}
		if n.niDead[p.Dst] {
			return fmt.Errorf("noc: destination terminal %d: %w", p.Dst, ErrTerminalDown)
		}
		if n.faultAware != nil {
			if err := n.faultAware.RouteError(p.Src, p.Dst); err != nil {
				return err
			}
		}
	}
	n.nextPktID++
	p.ID = n.nextPktID
	p.CreateCycle = n.cycle
	p.MinSlots = 1 << 30
	q := &n.nis[p.Src]
	q.queue = append(q.queue, p)
	n.queuedPackets++
	n.stats.PacketsInjected++
	return nil
}

// Quiesced reports whether no packets are queued or in flight.
func (n *Network) Quiesced() bool { return n.queuedPackets == 0 && n.flitsInNetwork == 0 }

// InFlight returns the number of flits currently inside the network.
func (n *Network) InFlight() int { return n.flitsInNetwork }

// Step advances the simulation by one cycle. It returns an error when the
// deadlock watchdog fires.
func (n *Network) Step() error {
	n.cycle++
	// Purge packets marked broken late last cycle (route-time losses),
	// then strike any faults due this cycle before flits move.
	n.purgeBroken()
	if n.faultsArmed {
		n.applyFaults()
	}
	n.deliver()
	n.purgeBroken() // packets that lost a flit in this cycle's deliveries
	n.inject()
	if n.shardable() {
		n.allocateSharded()
	} else {
		n.routeAndAllocate(0, len(n.routers), &n.directFx)
		n.switchAllocate(0, len(n.routers), &n.directFx)
	}
	n.accumulate()
	if n.onCycle != nil {
		n.onCycle(n.cycle)
	}
	if w := n.cfg.WatchdogCycles; w > 0 && n.flitsInNetwork > 0 && n.cycle-n.lastMove > int64(w) {
		return fmt.Errorf("noc: deadlock watchdog: no flit moved for %d cycles at cycle %d (%d flits in flight)\n%s",
			w, n.cycle, n.flitsInNetwork, n.stalledDump(4))
	}
	return nil
}

// deliver moves matured flits off link wires into downstream buffers or
// sinks, and matured credits back to upstream counters. Only routers with
// queued events are visited (in ascending router order, so arrival order is
// identical to a full scan); idle routers cost one counter check.
func (n *Network) deliver() {
	for r, m := range n.evMask {
		if m == 0 {
			continue // dense scan: an idle router costs one word read
		}
		rt := &n.routers[r]
		for ; m != 0; m &= m - 1 {
			pi := bits.TrailingZeros32(m)
			op := rt.out[pi]
			n.deliverPort(op)
			if op.creditQ.n == 0 && op.wire.n == 0 {
				n.evMask[r] &^= 1 << pi
			}
		}
	}
	for t := range n.nis {
		up := &n.nis[t].up
		if up.wire.n > 0 || up.creditQ.n > 0 {
			n.deliverPort(up)
		}
	}
}

// deliverPort pops matured events off one output port's FIFO queues.
// Events mature in enqueue order (fixed +1/+2 delays), so the matured set
// is always a prefix of each queue. The credit loop indexes the queue
// directly with local cursors and writes back once: nothing reached from
// here (credit bookkeeping, sink callbacks) ever pushes onto this port's
// queues, so the cursors cannot go stale.
func (n *Network) deliverPort(op *outputPort) {
	cyc := n.cycle
	if cq := &op.creditQ; cq.n > 0 {
		head, cnt, nb := cq.head, cq.n, len(cq.buf)
		for cnt > 0 && cq.buf[head].at <= cyc {
			vc := cq.buf[head].vc
			head++
			if head == nb {
				head = 0
			}
			cnt--
			if op.credits != nil {
				op.credits[vc]++
				if op.credits[vc] > op.downDepth {
					panic("noc: credit overflow")
				}
				op.creditMask |= 1 << vc
			}
		}
		cq.head, cq.n = head, cnt
	}
	for op.wire.n > 0 && op.wire.front().at <= cyc {
		we := op.wire.pop()
		n.lastMove = cyc
		if n.faultsArmed {
			if op.faultUntil >= cyc {
				if !op.faultCorrupt {
					n.dropWireFlit(op, we, DropTransient)
					continue
				}
				we.flit.Csum ^= csumFlip // bit error in flight
			}
			if we.flit.Csum != headerChecksum(&we.flit) {
				n.dropWireFlit(op, we, DropCorrupt)
				continue
			}
		}
		if op.slots < we.flit.Pkt.MinSlots {
			we.flit.Pkt.MinSlots = op.slots
		}
		if op.isTerm {
			n.sink(we.flit)
			continue
		}
		dr := op.link.Router
		rt := &n.routers[dr]
		ip := &rt.in[op.link.Port]
		f := we.flit
		f.arrive = cyc
		vc := &ip.vcs[we.outVC]
		if vc.buf.count == 0 {
			vc.headArrive = f.arrive
		}
		vc.buf.push(f)
		if vc.state == vcActive {
			ip.saMask |= 1 << we.outVC
		} else {
			ip.raMask |= 1 << we.outVC
		}
		ip.flits++
		n.inFlits[dr]++
		n.portMask[dr] |= 1 << op.link.Port
		rt.bufWrites++
		if f.Kind.IsHead() && op.router >= 0 {
			f.Pkt.Hops++
			n.trace(EvHop, f.Pkt.ID, op.link.Router)
		}
	}
}

// sink consumes a flit at its destination terminal.
func (n *Network) sink(f Flit) {
	n.flitsInNetwork--
	n.stats.FlitsReceived++
	p := f.Pkt
	p.received++
	if n.atrOn && f.Kind.IsHead() {
		p.headRecv = n.cycle
	}
	if f.Kind.IsTail() {
		if p.received != p.NumFlits {
			panic(fmt.Sprintf("noc: packet %d tail with %d/%d flits received", p.ID, p.received, p.NumFlits))
		}
		p.RecvCycle = n.cycle
		if n.atrOn && p.headRecv > 0 {
			// Endpoint rollups: NI queue wait plus the NI wire cycle charge
			// to the source router, body-drain serialization to the
			// destination router. sink runs in the sequential deliver phase,
			// so these cross-router writes are race free under sharding.
			src := &n.routers[n.termRouter[p.Src]]
			src.atr[AttrQueue] += p.InjectCycle - p.CreateCycle
			src.atr[AttrLink]++
			dst := &n.routers[n.termRouter[p.Dst]]
			dst.atr[AttrSerialization] += n.cycle - p.headRecv
		}
		n.trace(EvEject, p.ID, -1)
		n.stats.recordPacket(p)
		if n.onPacket != nil {
			n.onPacket(p)
		}
	}
}

// inject pushes flits from NI source queues into router local input ports,
// using the same VC-allocation and credit machinery as a link.
func (n *Network) inject() {
	for t := range n.nis {
		q := &n.nis[t]
		if len(q.streams) == 0 && q.queued() == 0 {
			continue // nothing queued, nothing mid-injection
		}
		budget := q.up.slots
		// Advance the active streams, one flit each.
		live := q.streams[:0]
		for i := range q.streams {
			st := q.streams[i]
			if budget > 0 && q.up.creditOK(st.vc) {
				budget--
				n.emitFlit(q, &st)
			}
			if st.pkt != nil {
				live = append(live, st)
			}
		}
		q.streams = live
		// Open new streams for queued packets while slots and VCs allow.
		for budget > 0 && q.queued() > 0 {
			p := q.queue[q.qHead] // peek: pop only once the head flit wins a VC
			class := n.alg.InitialClass(p.Src, p.Dst)
			lo, hi := n.alg.ClassVCs(class, q.up.downVCs)
			vc, ok := q.up.allocVC(p, lo, hi)
			if !ok || !q.up.creditOK(vc) {
				if ok {
					// VC granted but no credit; release instantly (no flit
					// was sent on it yet).
					q.up.owner[vc] = nil
				}
				q.waitVC++
				break
			}
			q.waitVC = 0
			p.vcClass = class
			p.InjectCycle = n.cycle
			n.trace(EvInject, p.ID, q.up.link.Router)
			q.pop()
			n.queuedPackets--
			st := niStream{pkt: p, vc: vc}
			budget--
			n.emitFlit(q, &st)
			if st.pkt != nil {
				q.streams = append(q.streams, st)
			}
		}
		// Spend leftover wide-link slots on second flits of active streams
		// (a same-VC combined pair).
		for i := range q.streams {
			if budget == 0 {
				break
			}
			st := &q.streams[i]
			if st.pkt != nil && q.up.creditOK(st.vc) {
				budget--
				n.emitFlit(q, st)
			}
		}
		k := 0
		for _, st := range q.streams {
			if st.pkt != nil {
				q.streams[k] = st
				k++
			}
		}
		q.streams = q.streams[:k]
	}
}

// emitFlit sends the next flit of a stream and closes the stream on tail.
func (n *Network) emitFlit(q *ni, st *niStream) {
	p := st.pkt
	kind := BodyFlit
	switch {
	case p.NumFlits == 1:
		kind = SingleFlit
	case st.nextSeq == 0:
		kind = HeadFlit
	case st.nextSeq == p.NumFlits-1:
		kind = TailFlit
	}
	f := Flit{Pkt: p, Seq: int32(st.nextSeq), Kind: kind}
	if n.faultsArmed {
		f.Csum = headerChecksum(&f)
	}
	q.up.consumeCredit(st.vc)
	q.up.wire.push(wireEvt{flit: f, outVC: st.vc, at: n.cycle + 1})
	n.flitsInNetwork++
	n.stats.FlitsInjected++
	n.lastMove = n.cycle
	st.nextSeq++
	if kind.IsTail() {
		q.up.releaseOnTail(st.vc)
		st.pkt = nil
	}
}

// routeAndAllocate is pipeline stage 1a: route computation for fresh heads
// and downstream VC allocation for waiting heads, over routers [lo,hi).
// All writes stay inside the visited router (and the packet whose head it
// holds) except the effects routed through fx, so disjoint spans may run
// concurrently (see shard.go).
func (n *Network) routeAndAllocate(lo, hi int, fx *tickFx) {
	// The port-fairness rotation offset is cycle%radix; routers share a
	// handful of radix values, so memoize the division across the scan.
	lastRadix, cycOff := 0, 0
	for r := lo; r < hi; r++ {
		if n.inFlits[r] == 0 {
			continue // no buffered flit anywhere: no VC has work
		}
		rt := &n.routers[r]
		radix := len(rt.in)
		if radix != lastRadix {
			lastRadix = radix
			cycOff = int(n.cycle % int64(radix))
		}
		// Visit occupied ports in rotated order (cycOff first, wrapping),
		// then only the VCs with stage-1 work, in ascending VC order —
		// exactly the order of a full scan with the no-op visits removed.
		for m := rotMask(n.portMask[r], cycOff, radix); m != 0; m &= m - 1 {
			pi := bits.TrailingZeros32(m) + cycOff
			if pi >= radix {
				pi -= radix
			}
			ip := &rt.in[pi]
			for vm := ip.raMask; vm != 0; vm &= vm - 1 {
				vi := bits.TrailingZeros32(vm)
				vc := &ip.vcs[vi]
				if vc.state == vcIdle {
					if vc.headArrive >= n.cycle {
						continue // buffered this cycle; eligible next
					}
					head := vc.buf.peek()
					if !head.Kind.IsHead() {
						continue
					}
					p := head.Pkt
					d := n.route(r, p)
					if d.OutPort < 0 || rt.out[d.OutPort].dead {
						// No live route (severed destination, or a
						// non-fault-aware algorithm pointing at a dead
						// link): drop the packet rather than wedge.
						fx.markBroken(p, DropUnroutable)
						continue
					}
					vc.outPort, vc.class = int16(d.OutPort), int16(d.VCClass)
					vc.cur = p
					p.vcClass = d.VCClass
					vc.waitCycles = 0
					vc.state = vcWaitVC
				}
				{
					head := vc.buf.peek()
					p := head.Pkt
					out := rt.out[vc.outPort]
					lo, hi := n.alg.ClassVCs(int(vc.class), out.downVCs)
					if ovc, ok := out.allocVC(p, lo, hi); ok {
						vc.outVC = int16(ovc)
						vc.state = vcActive
						vc.waitCycles = 0
						ip.raMask &^= 1 << vi
						ip.saMask |= 1 << vi
						if n.detail != nil {
							n.detail.DetailEvent(Event{Cycle: n.cycle, Kind: EvVCAlloc,
								Packet: p.ID, Router: r, Port: vc.outPort, VC: int16(ovc)})
						}
						continue
					}
					vc.waitCycles++
					rt.arbOps++
					if n.atrOn {
						p.hopVC++ // one lost VC-allocation cycle at this hop
					}
					if n.escaper != nil && !p.escaped && int(vc.waitCycles) > n.escaper.EscapeThreshold() {
						p.escaped = true
						n.trace(EvEscape, p.ID, r)
						d := n.escaper.EscapeHop(r, p.Src, p.Dst)
						if d.OutPort < 0 || rt.out[d.OutPort].dead {
							fx.markBroken(p, DropUnroutable)
							continue
						}
						vc.outPort, vc.class = int16(d.OutPort), int16(d.VCClass)
						p.vcClass = d.VCClass
						vc.waitCycles = 0
						n.stats.Escapes++
					}
				}
			}
			if n.escaper == nil {
				continue
			}
			// Deadlock rescue for allocated-but-unstarted worms: a head that
			// won a downstream VC but has been credit-starved ever since can
			// still be diverted — no flit has left, so the downstream VC is
			// handed back and the packet re-routed onto the escape network.
			// Every blocked dependency cycle contains at least one such head
			// (or one still in vcWaitVC, rescued above), so rescuing heads
			// before their first flit moves keeps table routing deadlock
			// free.
			for vm := ip.saMask; vm != 0; vm &= vm - 1 {
				vi := bits.TrailingZeros32(vm)
				vc := &ip.vcs[vi]
				head := vc.buf.peek()
				if !head.Kind.IsHead() || head.Pkt != vc.cur {
					continue // worm is streaming; it drains with its head
				}
				out := rt.out[vc.outPort]
				if out.creditOK(int(vc.outVC)) {
					vc.waitCycles = 0
					continue // movable: any stall is just switch contention
				}
				vc.waitCycles++
				p := head.Pkt
				if p.escaped || int(vc.waitCycles) <= n.escaper.EscapeThreshold() {
					continue
				}
				out.releaseOnTail(int(vc.outVC))
				d := n.escaper.EscapeHop(r, p.Src, p.Dst)
				if d.OutPort < 0 || rt.out[d.OutPort].dead {
					fx.markBroken(p, DropUnroutable)
					continue
				}
				p.escaped = true
				n.trace(EvEscape, p.ID, r)
				n.stats.Escapes++
				vc.outPort, vc.class = int16(d.OutPort), int16(d.VCClass)
				p.vcClass = d.VCClass
				vc.waitCycles = 0
				vc.state = vcWaitVC
				ip.saMask &^= 1 << vi
				ip.raMask |= 1 << vi
			}
		}
	}
}

// rotMask rotates an n-bit mask right by s: bit s of m becomes bit 0 of the
// result. Used to start mask iteration at a round-robin offset while
// preserving the wrap-around visit order of a scalar scan.
func rotMask(m uint32, s, n int) uint32 {
	return (m>>s | m<<(n-s)) & (uint32(1)<<n - 1)
}

// route computes the next-hop decision for packet p at router r.
func (n *Network) route(r int, p *Packet) routing.Decision {
	if p.escaped && n.escaper != nil {
		return n.escaper.EscapeHop(r, p.Src, p.Dst)
	}
	return n.alg.NextHop(r, p.Src, p.Dst, p.vcClass)
}

// saIterations is the number of request/grant rounds of the separable
// switch allocator per cycle. Multiple rounds model the paper's dual
// parallel p:1 output arbiters (Figure 6(b)): they let a wide output
// collect a second flit — from a second VC of the same input port, from a
// different input port, or the next flit of the same VC — which is what
// sustains the 40%/80% low/high-load combining rates of Section 3.3.
const saIterations = 3

// switchAllocate is pipeline stage 1b plus stage 2: the separable switch
// allocator matches input VCs to output slots iteratively, then winning
// flits traverse crossbar and link. Constraints honored per cycle:
//
//   - an input port sends at most two flits, and only toward a single
//     output port (the split-datapath crossbar of Figure 4),
//   - an output port accepts at most `slots` flits (2 on wide links),
//   - every flit needs a credit on its downstream VC.
func (n *Network) switchAllocate(lo, hi int, fx *tickFx) {
	lastRadix, cycOff := 0, 0 // cycle%radix memo, as in routeAndAllocate
	for r := lo; r < hi; r++ {
		if n.inFlits[r] == 0 {
			continue // nothing buffered: no VC can bid, no output can send
		}
		rt := &n.routers[r]
		radix := len(rt.in)
		if radix != lastRadix {
			lastRadix = radix
			cycOff = int(n.cycle % int64(radix))
		}
		// portSent/outSent/outLeft are maintained lazily: they hold their
		// rest values (zero / zero / outSlots) on entry, and the grant masks
		// accumulated below restore exactly the entries a grant disturbed.
		var inSent, outSent uint32
		// Allocation fidelity differs by router class. The homogeneous
		// baseline router is the classic single-iteration separable
		// allocator: each input port's v:1 arbiter nominates its first
		// requesting VC, and the nomination is simply lost when its output
		// has already been granted. Split-datapath HeteroNoC routers
		// (Figures 4-6) run the dual parallel output arbiters over the two
		// DSET halves: up to two flits per input port, a blocked request
		// falls through to another VC, and extra rounds model the second
		// p:1 arbiter supplying a matching flit for combining.
		iters, maxPerPort, fallthru := 1, int8(1), false
		switch {
		case rt.cfg.SplitDatapath:
			iters, maxPerPort, fallthru = saIterations, 2, true
		case rt.cfg.ImprovedSA:
			iters, fallthru = 2, true
		}
		for iter := 0; iter < iters; iter++ {
			moved := false
			// Occupied ports in rotated order; within a port, switch
			// candidates (saMask) starting at the v:1 round-robin pointer.
			// Skipped ports and VCs are exactly the visits a full scan
			// rejects without side effects, so grant order is unchanged.
			for m := rotMask(n.portMask[r], cycOff, radix); m != 0; m &= m - 1 {
				pi := bits.TrailingZeros32(m) + cycOff
				if pi >= radix {
					pi -= radix
				}
				if rt.portSent[pi] >= maxPerPort {
					continue
				}
				ip := &rt.in[pi]
				nvc := len(ip.vcs)
				rr := ip.rr
				for vm := rotMask(ip.saMask, rr, nvc); vm != 0; vm &= vm - 1 {
					vi := bits.TrailingZeros32(vm) + rr
					if vi >= nvc {
						vi -= nvc
					}
					vc := &ip.vcs[vi]
					// saMask guarantees an active VC with a buffered flit;
					// only maturity and credit remain to check.
					if vc.headArrive >= n.cycle {
						continue
					}
					if !rt.out[vc.outPort].creditOK(int(vc.outVC)) {
						if iter == 0 {
							// Credits only decrease within switchAllocate, so
							// an iteration-0 failure means no iteration can
							// send this VC this cycle: count the backpressure
							// cycle exactly once, and only against a head at
							// the buffer front (body flits stall with their
							// head's hop accounting).
							if n.atrOn {
								if hf := vc.buf.peek(); hf.Kind.IsHead() {
									hf.Pkt.hopCredit++
								}
							}
							if n.detail != nil {
								n.detail.DetailEvent(Event{Cycle: n.cycle, Kind: EvCreditStall,
									Packet: vc.cur.ID, Router: r, Port: vc.outPort, VC: vc.outVC})
							}
						}
						continue
					}
					rt.arbOps++
					if rt.outLeft[vc.outPort] == 0 {
						if fallthru {
							continue // DSET halves let another VC bid
						}
						break // baseline: the nomination is lost this cycle
					}
					out := rt.out[vc.outPort]
					n.sendFlit(rt, pi, vc, out, fx)
					rt.portSent[pi]++
					rt.outLeft[vc.outPort]--
					rt.outSent[vc.outPort]++
					inSent |= 1 << pi
					outSent |= 1 << vc.outPort
					next := vi + 1
					if next == nvc {
						next = 0
					}
					ip.rr = next
					moved = true
					break
				}
			}
			if !moved {
				break
			}
		}
		for m := outSent; m != 0; m &= m - 1 {
			po := bits.TrailingZeros32(m)
			out := rt.out[po]
			out.rrOut++
			out.busyCycles++
			if rt.outSent[po] == 2 {
				out.combineCycles++
			}
			rt.outSent[po] = 0
			rt.outLeft[po] = rt.outSlots[po]
		}
		for m := inSent; m != 0; m &= m - 1 {
			rt.portSent[bits.TrailingZeros32(m)] = 0
		}
	}
}

// sendFlit pops a winning flit from its input VC, returns a credit
// upstream, and launches the flit onto the output link. out must belong to
// rt (its queued wire event counts against rt's pending events). The
// upstream credit push is safe in a parallel pass — this router is the
// credit queue's only writer — but the upstream event-mask bit and the
// progress flag go through fx.
func (n *Network) sendFlit(rt *router, inPort int, vc *inVC, out *outputPort, fx *tickFx) {
	f := vc.buf.pop()
	if vc.buf.count > 0 {
		vc.headArrive = vc.buf.buf[vc.buf.head].arrive
	}
	if n.atrOn && f.Kind.IsHead() {
		n.settleAttrHop(rt, &f)
	}
	ip := &rt.in[inPort]
	ip.flits--
	n.inFlits[rt.id]--
	rt.bufReads++
	rt.xbarFlits++
	out.flitsSent++
	fx.progress()
	if n.detail != nil {
		n.detail.DetailEvent(Event{Cycle: n.cycle, Kind: EvSwitchAlloc,
			Packet: f.Pkt.ID, Router: rt.id, Port: int16(out.port), VC: vc.outVC})
	}
	if up := ip.upstream; up != nil {
		up.creditQ.push(creditEvt{vc: int(vc.idx), at: n.cycle + 1})
		if up.router >= 0 {
			fx.creditNotify(up.router, up.port)
		}
	}
	out.consumeCredit(int(vc.outVC))
	out.wire.push(wireEvt{flit: f, outVC: int(vc.outVC), at: n.cycle + 2})
	n.evMask[rt.id] |= 1 << out.port
	bit := uint32(1) << vc.idx
	if f.Kind.IsTail() {
		out.releaseOnTail(int(vc.outVC))
		vc.state = vcIdle
		vc.cur = nil
		ip.saMask &^= bit
		if vc.buf.count > 0 {
			ip.raMask |= bit // next packet's head is already buffered
		}
	} else if vc.buf.count == 0 {
		ip.saMask &^= bit // drained mid-packet; rearm on the next arrival
	}
	if ip.flits == 0 {
		n.portMask[rt.id] &^= 1 << inPort
	}
}

// accumulate gathers per-cycle occupancy statistics from the maintained
// flit counters (occupied() rescans the buffers and is kept for audits).
func (n *Network) accumulate() {
	n.stats.Cycles++
	for r, f := range n.inFlits {
		if f != 0 {
			n.routers[r].bufOccSum += int64(f)
		}
	}
}
