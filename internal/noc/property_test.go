package noc

import (
	"testing"
	"testing/quick"

	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// TestZeroLoadLatencyProperty: for any (src, dst, size), a lone packet's
// latency equals the ideal pipeline formula — blocking is exactly zero at
// zero load. This pins every stage of the router pipeline at once.
func TestZeroLoadLatencyProperty(t *testing.T) {
	m := topology.NewMesh(8, 8)
	f := func(a, b, c uint8) bool {
		src, dst := int(a)%64, int(b)%64
		flits := 1 + int(c)%8
		n, err := New(Config{
			Topo:           m,
			Routing:        routing.NewXY(m),
			Routers:        []RouterConfig{{VCs: 3, BufDepth: 5}},
			FlitWidthBits:  192,
			WatchdogCycles: 5000,
		})
		if err != nil {
			return false
		}
		var done *Packet
		n.SetOnPacket(func(p *Packet) { done = p })
		n.Inject(&Packet{Src: src, Dst: dst, NumFlits: flits})
		for i := 0; i < 300 && !n.Quiesced(); i++ {
			if err := n.Step(); err != nil {
				return false
			}
		}
		if done == nil {
			return false
		}
		total := done.RecvCycle - done.CreateCycle
		queuing := done.InjectCycle - done.CreateCycle
		return total == IdealTransferCycles(done.Hops, flits, done.MinSlots)+queuing
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHopCountProperty: delivered hop counts always equal the X-Y
// distance, for any packet mix on the heterogeneous network.
func TestHopCountProperty(t *testing.T) {
	n := heteroDiagonalNet(t)
	m := topology.NewMesh(8, 8)
	bad := 0
	n.SetOnPacket(func(p *Packet) {
		if p.Hops != m.HopsXY(p.Src, p.Dst) {
			bad++
		}
	})
	f := func(a, b uint8) bool {
		n.Inject(&Packet{Src: int(a) % 64, Dst: int(b) % 64, NumFlits: 6})
		for i := 0; i < 5; i++ {
			if err := n.Step(); err != nil {
				return false
			}
		}
		return bad == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	runUntilQuiesced(t, n, 100000)
	if bad != 0 {
		t.Fatalf("%d packets took non-minimal paths", bad)
	}
}

// TestRingProperty exercises the flit FIFO against a model queue.
func TestRingProperty(t *testing.T) {
	r := newRing(5)
	var model []int32
	seq := int32(0)
	f := func(op uint8) bool {
		if op%2 == 0 && !r.full() {
			p := &Packet{NumFlits: 1}
			r.push(Flit{Pkt: p, Seq: seq})
			model = append(model, seq)
			seq++
		} else if r.len() > 0 {
			got := r.pop()
			want := model[0]
			model = model[1:]
			if got.Seq != want {
				return false
			}
		}
		if r.len() != len(model) {
			return false
		}
		if head := r.peek(); head != nil && head.Seq != model[0] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRingOverflowPanics pins the defensive capacity check.
func TestRingOverflowPanics(t *testing.T) {
	r := newRing(2)
	p := &Packet{}
	r.push(Flit{Pkt: p})
	r.push(Flit{Pkt: p})
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	r.push(Flit{Pkt: p})
}

// TestPopEmptyPanics pins the defensive underflow check.
func TestPopEmptyPanics(t *testing.T) {
	r := newRing(2)
	defer func() {
		if recover() == nil {
			t.Error("underflow did not panic")
		}
	}()
	r.pop()
}
