package noc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"heteronoc/internal/fault"
	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// TestZeroLoadLatencyProperty: for any (src, dst, size), a lone packet's
// latency equals the ideal pipeline formula — blocking is exactly zero at
// zero load. This pins every stage of the router pipeline at once.
func TestZeroLoadLatencyProperty(t *testing.T) {
	m := topology.NewMesh(8, 8)
	f := func(a, b, c uint8) bool {
		src, dst := int(a)%64, int(b)%64
		flits := 1 + int(c)%8
		n, err := New(Config{
			Topo:           m,
			Routing:        routing.NewXY(m),
			Routers:        []RouterConfig{{VCs: 3, BufDepth: 5}},
			FlitWidthBits:  192,
			WatchdogCycles: 5000,
		})
		if err != nil {
			return false
		}
		var done *Packet
		n.SetOnPacket(func(p *Packet) { done = p })
		n.Inject(&Packet{Src: src, Dst: dst, NumFlits: flits})
		for i := 0; i < 300 && !n.Quiesced(); i++ {
			if err := n.Step(); err != nil {
				return false
			}
		}
		if done == nil {
			return false
		}
		total := done.RecvCycle - done.CreateCycle
		queuing := done.InjectCycle - done.CreateCycle
		return total == IdealTransferCycles(done.Hops, flits, done.MinSlots)+queuing
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHopCountProperty: delivered hop counts always equal the X-Y
// distance, for any packet mix on the heterogeneous network.
func TestHopCountProperty(t *testing.T) {
	n := heteroDiagonalNet(t)
	m := topology.NewMesh(8, 8)
	bad := 0
	n.SetOnPacket(func(p *Packet) {
		if p.Hops != m.HopsXY(p.Src, p.Dst) {
			bad++
		}
	})
	f := func(a, b uint8) bool {
		n.Inject(&Packet{Src: int(a) % 64, Dst: int(b) % 64, NumFlits: 6})
		for i := 0; i < 5; i++ {
			if err := n.Step(); err != nil {
				return false
			}
		}
		return bad == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	runUntilQuiesced(t, n, 100000)
	if bad != 0 {
		t.Fatalf("%d packets took non-minimal paths", bad)
	}
}

// TestFaultPlanPathsAvoidDeadLinks is the fault-injection property test:
// for every seeded fault plan (all failures striking at cycle 1, before
// any flit moves), every packet the network delivers must have traversed
// live links only, and every transfer to a reachable destination must
// reach the application exactly once — rerouting may detour but never
// crosses a dead link, and recovery never duplicates or loses a message.
func TestFaultPlanPathsAvoidDeadLinks(t *testing.T) {
	m := topology.NewMesh(8, 8)
	for seed := int64(1); seed <= 6; seed++ {
		plan := fault.Generate(m, seed, fault.GenConfig{
			Links: 2 + int(seed)%5, Routers: int(seed) % 2,
			MaxCycle: 1, KeepConnected: true,
		})
		n := faultMeshNet(t, plan)
		tr := &CollectingTracer{}
		n.SetTracer(tr)
		rel := NewReliable(n, ReliableConfig{Timeout: 256, MaxRetries: 8})
		delivered := map[xferKey]int{}
		var deliveredIDs []uint64
		rel.SetOnDeliver(func(x *Transfer, p *Packet) {
			delivered[key(x)]++
			deliveredIDs = append(deliveredIDs, p.ID)
		})
		rel.SetOnFail(func(x *Transfer, err error) {
			t.Errorf("seed %d: transfer %d->%d abandoned: %v", seed, x.Src, x.Dst, err)
		})
		rng := rand.New(rand.NewSource(seed * 101))
		sent := 0
		for cycle := 0; cycle < 600; cycle++ {
			for src := 0; src < 64; src++ {
				if rng.Float64() < 0.01 {
					if _, err := rel.Send(src, rng.Intn(64), 6, 0, nil); err == nil {
						sent++
					}
				}
			}
			if err := rel.Step(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		for i := 0; !rel.Quiesced() && i < 1<<20; i++ {
			if err := rel.Step(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if !rel.Quiesced() {
			t.Fatalf("seed %d: did not quiesce", seed)
		}
		// Exactly once: KeepConnected means every accepted transfer has a
		// live destination throughout, so all of them must arrive.
		if len(delivered) != sent {
			t.Fatalf("seed %d: %d of %d transfers delivered", seed, len(delivered), sent)
		}
		for k, cnt := range delivered {
			if cnt != 1 {
				t.Errorf("seed %d: transfer %v delivered %d times", seed, k, cnt)
			}
		}
		// Path property: every delivered copy's traced route crosses live
		// links only (the failures all predate injection, so "live" is
		// unambiguous for the whole run).
		ls := n.LinkState()
		for _, id := range deliveredIDs {
			path := tr.PathOf(id)
			for i := 1; i < len(path); i++ {
				p := -1
				for q := 0; q < m.Radix(path[i-1]); q++ {
					if link, ok := m.Neighbor(path[i-1], q); ok && link.Router == path[i] {
						p = q
						break
					}
				}
				if p < 0 {
					t.Fatalf("seed %d: packet %d path %v jumps non-adjacent routers", seed, id, path)
				}
				if !ls.Up(path[i-1], p) {
					t.Fatalf("seed %d: packet %d path %v crosses dead link %d.%d",
						seed, id, path, path[i-1], p)
				}
			}
		}
	}
}

// TestRingProperty exercises the flit FIFO against a model queue.
func TestRingProperty(t *testing.T) {
	r := newRing(5)
	var model []int32
	seq := int32(0)
	f := func(op uint8) bool {
		if op%2 == 0 && !r.full() {
			p := &Packet{NumFlits: 1}
			r.push(Flit{Pkt: p, Seq: seq})
			model = append(model, seq)
			seq++
		} else if r.len() > 0 {
			got := r.pop()
			want := model[0]
			model = model[1:]
			if got.Seq != want {
				return false
			}
		}
		if r.len() != len(model) {
			return false
		}
		if head := r.peek(); head != nil && head.Seq != model[0] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRingOverflowPanics pins the defensive capacity check.
func TestRingOverflowPanics(t *testing.T) {
	r := newRing(2)
	p := &Packet{}
	r.push(Flit{Pkt: p})
	r.push(Flit{Pkt: p})
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	r.push(Flit{Pkt: p})
}

// TestPopEmptyPanics pins the defensive underflow check.
func TestPopEmptyPanics(t *testing.T) {
	r := newRing(2)
	defer func() {
		if recover() == nil {
			t.Error("underflow did not panic")
		}
	}()
	r.pop()
}
