package noc

import (
	"bytes"
	"testing"

	"heteronoc/internal/obs"
)

func TestCollectingTracerFilterZero(t *testing.T) {
	// Packet ID 0 must be filterable: the switch is explicit, not a
	// zero-value sentinel.
	c := &CollectingTracer{Filter: true, Only: 0}
	c.PacketEvent(Event{Kind: EvInject, Packet: 0, Router: 1})
	c.PacketEvent(Event{Kind: EvInject, Packet: 7, Router: 2})
	if len(c.Events) != 1 || c.Events[0].Packet != 0 {
		t.Fatalf("filter for packet 0 kept %v", c.Events)
	}
	// And the zero value (Filter false) collects everything.
	all := &CollectingTracer{}
	all.PacketEvent(Event{Kind: EvInject, Packet: 0})
	all.PacketEvent(Event{Kind: EvInject, Packet: 7})
	if len(all.Events) != 2 {
		t.Fatalf("unfiltered tracer kept %d events, want 2", len(all.Events))
	}
}

func TestCollectingTracerPathOfAndDump(t *testing.T) {
	c := &CollectingTracer{}
	for _, e := range []Event{
		{Cycle: 1, Kind: EvInject, Packet: 5, Router: 0},
		{Cycle: 4, Kind: EvHop, Packet: 5, Router: 1},
		{Cycle: 5, Kind: EvHop, Packet: 9, Router: 3}, // other packet
		{Cycle: 7, Kind: EvHop, Packet: 5, Router: 2},
		{Cycle: 9, Kind: EvEject, Packet: 5, Router: -1},
	} {
		c.PacketEvent(e)
	}
	path := c.PathOf(5)
	want := []int{0, 1, 2}
	if len(path) != len(want) {
		t.Fatalf("PathOf = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("PathOf = %v, want %v", path, want)
		}
	}
	dump := c.Dump(5)
	for _, sub := range []string{"inject", "hop", "eject"} {
		if !bytes.Contains([]byte(dump), []byte(sub)) {
			t.Errorf("Dump missing %q:\n%s", sub, dump)
		}
	}
	if c.Dump(42) != "" {
		t.Error("Dump of unknown packet not empty")
	}
}

// tracedMeshRun drives a loaded mesh with ft installed and returns the
// network.
func tracedMeshRun(t *testing.T, ft *FlitTracer) *Network {
	t.Helper()
	n := newMeshNet(t)
	n.SetTracer(ft)
	for i := 0; i < 40; i++ {
		n.Inject(&Packet{Src: i % 64, Dst: (i*17 + 5) % 64, NumFlits: 4})
	}
	runUntilQuiesced(t, n, 10000)
	return n
}

func TestFlitTracerCapturesDetail(t *testing.T) {
	ft := NewFlitTracer(64, FlitTracerConfig{})
	tracedMeshRun(t, ft)
	recs := ft.Records()
	if len(recs) == 0 {
		t.Fatal("no records captured")
	}
	seen := map[EventKind]int{}
	for _, r := range recs {
		seen[r.Kind]++
	}
	for _, k := range []EventKind{EvInject, EvHop, EvEject, EvVCAlloc, EvSwitchAlloc} {
		if seen[k] == 0 {
			t.Errorf("no %v records (saw %v)", k, seen)
		}
	}
	// Capture order: seq strictly increasing implies cycles nondecreasing.
	for i := 1; i < len(recs); i++ {
		if recs[i].Cycle < recs[i-1].Cycle {
			t.Fatal("records out of capture order")
		}
	}
}

func TestFlitTracerMacroOnly(t *testing.T) {
	ft := NewFlitTracer(64, FlitTracerConfig{MacroOnly: true})
	tracedMeshRun(t, ft)
	for _, r := range ft.Records() {
		switch r.Kind {
		case EvVCAlloc, EvSwitchAlloc, EvCreditStall:
			t.Fatalf("macro-only tracer captured %v", r.Kind)
		}
	}
}

func TestFlitTracerRingBound(t *testing.T) {
	const per = 8
	ft := NewFlitTracer(64, FlitTracerConfig{PerRouter: per})
	tracedMeshRun(t, ft)
	if got, max := ft.Len(), (64+1)*per; got > max {
		t.Fatalf("tracer holds %d records, cap is %d", got, max)
	}
	if ft.Dropped() == 0 {
		t.Fatal("tiny rings dropped nothing under load")
	}
}

func TestFlitTraceBinaryRoundTrip(t *testing.T) {
	ft := NewFlitTracer(64, FlitTracerConfig{})
	tracedMeshRun(t, ft)
	var buf bytes.Buffer
	if err := ft.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	want := ft.Records()
	if got := buf.Len(); got != flitTraceHeaderSize+flitRecordSize*len(want) {
		t.Fatalf("encoded %d bytes for %d records", got, len(want))
	}
	tr, err := ReadFlitTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRouters != 64 || len(tr.Records) != len(want) {
		t.Fatalf("decoded %d routers / %d records, want 64 / %d",
			tr.NumRouters, len(tr.Records), len(want))
	}
	for i := range want {
		g, w := tr.Records[i], want[i]
		g.seq, w.seq = 0, 0
		if g != w {
			t.Fatalf("record %d: %+v != %+v", i, g, w)
		}
	}
}

func TestReadFlitTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadFlitTrace(bytes.NewReader([]byte("BADMAGIC\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadFlitTrace(bytes.NewReader([]byte("NOCFLT01"))); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestFlitTraceChromeExport(t *testing.T) {
	ft := NewFlitTracer(64, FlitTracerConfig{})
	tracedMeshRun(t, ft)
	var buf bytes.Buffer
	if err := ft.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	nEvents, err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if nEvents <= ft.Len() {
		t.Fatalf("chrome trace has %d events for %d records (missing metadata/counters?)",
			nEvents, ft.Len())
	}
}
