package noc

import "sort"

// Stats aggregates network-level counters and per-packet latency samples.
// Latency components follow the paper's Figure 8(a) decomposition:
//
//	queuing  — residency in the source NI queue,
//	transfer — the ideal pipeline plus serialization time for the path,
//	blocking — everything else (contention inside the network).
type Stats struct {
	Cycles int64

	PacketsInjected int64
	FlitsInjected   int64
	FlitsReceived   int64
	PacketsReceived int64
	Escapes         int64

	// Fault counters, all zero on fault-free runs (and then excluded from
	// the fingerprint, keeping fault-free golden hashes unchanged).
	FlitsLost         int64 // flits destroyed by link/router kills and purges
	FlitsDroppedFault int64 // flits dropped by transient drop windows
	FlitsCorrupted    int64 // flits dropped by the header-checksum check
	PacketsLost       int64 // packets purged after losing a flit
	PacketsUnroutable int64 // packets dropped for lack of a live route/terminal

	// Sum of per-packet cycle counts over received packets created after
	// the most recent ResetStats.
	TotalLatency    int64
	QueuingLatency  int64
	TransferLatency int64
	BlockingLatency int64
	HopsSum         int64

	// classes accumulates per-Packet.Class latency (the CMP simulator tags
	// packets with the protocol message type).
	classes map[int]*ClassStats

	// latHist is a 1-cycle-resolution latency histogram feeding Percentile.
	latHist []int64

	// attr sums the causal attribution buckets (attrib.go) over measured
	// packets. Observation-only: excluded from Fingerprint.
	attr [NumAttrBuckets]int64

	measureStart int64
}

// ClassStats is the per-traffic-class latency aggregate.
type ClassStats struct {
	Packets      int64
	TotalLatency int64
}

// Avg returns the class's mean latency in cycles.
func (c *ClassStats) Avg() float64 {
	if c.Packets == 0 {
		return 0
	}
	return float64(c.TotalLatency) / float64(c.Packets)
}

// IdealTransferCycles is the contention-free latency of a packet: one cycle
// NI-to-router plus pipeline eligibility, three cycles per hop (two router
// stages + link), the final ejection wire, and serialization of the
// remaining flits over the narrowest link on the path.
func IdealTransferCycles(hops, flits, minSlots int) int64 {
	if minSlots < 1 {
		minSlots = 1
	}
	ser := (flits - 1 + minSlots - 1) / minSlots
	return int64(1 + 3*(hops+1) + ser)
}

func (s *Stats) recordPacket(p *Packet) {
	if p.CreateCycle < s.measureStart {
		return
	}
	s.PacketsReceived++
	total := p.RecvCycle - p.CreateCycle
	queuing := p.InjectCycle - p.CreateCycle
	transfer := IdealTransferCycles(p.Hops, p.NumFlits, p.MinSlots)
	blocking := total - queuing - transfer
	if blocking < 0 {
		// The ideal formula is exact at zero load; tiny negative residues
		// would indicate a formula error, so fold them into transfer and
		// keep totals exact.
		transfer += blocking
		blocking = 0
	}
	s.TotalLatency += total
	s.QueuingLatency += queuing
	s.TransferLatency += transfer
	s.BlockingLatency += blocking
	s.HopsSum += int64(p.Hops)
	if p.headRecv > 0 {
		// headRecv is only stamped while attribution is enabled, so this
		// gate keeps the bucket sums exact when it was toggled mid-run.
		a := p.Attribution()
		for b := AttrBucket(0); b < NumAttrBuckets; b++ {
			s.attr[b] += a[b]
		}
	}
	if s.classes == nil {
		s.classes = make(map[int]*ClassStats)
	}
	cs := s.classes[p.Class]
	if cs == nil {
		cs = &ClassStats{}
		s.classes[p.Class] = cs
	}
	cs.Packets++
	cs.TotalLatency += total
	s.ensureHist()
	b := total
	if b > latHistMax {
		b = latHistMax
	}
	s.latHist[b]++
}

// Class returns the aggregate for one traffic class (zero value when the
// class saw no packets).
func (s *Stats) Class(class int) ClassStats {
	if cs, ok := s.classes[class]; ok {
		return *cs
	}
	return ClassStats{}
}

// Classes lists the traffic classes observed, in ascending order.
func (s *Stats) Classes() []int {
	out := make([]int, 0, len(s.classes))
	for c := range s.classes {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// AvgLatency returns the mean packet latency in cycles over the measurement
// window.
func (s *Stats) AvgLatency() float64 {
	if s.PacketsReceived == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.PacketsReceived)
}

// AvgHops returns the mean hop count.
func (s *Stats) AvgHops() float64 {
	if s.PacketsReceived == 0 {
		return 0
	}
	return float64(s.HopsSum) / float64(s.PacketsReceived)
}

// Breakdown returns the average queuing, blocking and transfer latency in
// cycles.
func (s *Stats) Breakdown() (queuing, blocking, transfer float64) {
	if s.PacketsReceived == 0 {
		return 0, 0, 0
	}
	n := float64(s.PacketsReceived)
	return float64(s.QueuingLatency) / n, float64(s.BlockingLatency) / n, float64(s.TransferLatency) / n
}

// Stats returns the live network statistics.
func (n *Network) Stats() *Stats { return &n.stats }

// ResetStats clears all counters, starting a fresh measurement window.
// Packets injected before the reset are excluded from latency samples when
// they later arrive. Router activity counters restart too.
func (n *Network) ResetStats() {
	start := n.cycle
	n.stats = Stats{measureStart: start}
	for r := range n.routers {
		rt := &n.routers[r]
		rt.bufOccSum, rt.bufReads, rt.bufWrites, rt.xbarFlits, rt.arbOps = 0, 0, 0, 0, 0
		rt.atr = [NumAttrBuckets]int64{}
		for _, op := range rt.out {
			op.flitsSent, op.busyCycles, op.combineCycles = 0, 0, 0
		}
	}
}

// RouterActivity is the per-router activity snapshot consumed by the power
// model and the utilization heat maps.
type RouterActivity struct {
	Router       int
	BufReads     int64
	BufWrites    int64
	XbarFlits    int64
	ArbOps       int64
	LinkFlits    int64   // flits sent on network (non-terminal) links
	BufOccupancy float64 // mean fraction of buffer slots occupied
	LinkUtil     float64 // mean busy fraction of live network output links
	CombineFrac  float64 // fraction of busy wide-link cycles sending 2 flits
	Cycles       int64
}

// Activity returns per-router activity over the current measurement window.
func (n *Network) Activity() []RouterActivity {
	out := make([]RouterActivity, len(n.routers))
	cyc := n.stats.Cycles
	for r := range n.routers {
		rt := &n.routers[r]
		a := RouterActivity{
			Router:    r,
			BufReads:  rt.bufReads,
			BufWrites: rt.bufWrites,
			XbarFlits: rt.xbarFlits,
			ArbOps:    rt.arbOps,
			Cycles:    cyc,
		}
		if cyc > 0 && rt.bufSlots > 0 {
			a.BufOccupancy = float64(rt.bufOccSum) / float64(cyc) / float64(rt.bufSlots)
		}
		var live, busy, sent, wideBusy, combined int64
		for _, op := range rt.out {
			if op.dead || op.isTerm {
				continue
			}
			live++
			busy += op.busyCycles
			sent += op.flitsSent
			if op.slots > 1 {
				wideBusy += op.busyCycles
				combined += op.combineCycles
			}
		}
		a.LinkFlits = sent
		if cyc > 0 && live > 0 {
			a.LinkUtil = float64(busy) / float64(cyc) / float64(live)
		}
		if wideBusy > 0 {
			a.CombineFrac = float64(combined) / float64(wideBusy)
		}
		out[r] = a
	}
	return out
}

// CombineRate returns the network-wide fraction of busy wide-link cycles in
// which two flits were transmitted together (the paper reports ~40% at low
// load and ~80% at high load).
func (n *Network) CombineRate() float64 {
	var wideBusy, combined int64
	for r := range n.routers {
		for _, op := range n.routers[r].out {
			if op.dead || op.slots < 2 {
				continue
			}
			wideBusy += op.busyCycles
			combined += op.combineCycles
		}
	}
	if wideBusy == 0 {
		return 0
	}
	return float64(combined) / float64(wideBusy)
}

// PortCongestion scores output port p of router r by downstream buffer
// fullness (0 = all credits free, 1 = full) averaged over the port's VCs.
// Adaptive routing algorithms use it as their selection signal.
func (n *Network) PortCongestion(r, p int) float64 {
	op := n.routers[r].out[p]
	if op.dead || op.isTerm || op.credits == nil || op.downVCs == 0 {
		return 0
	}
	used := 0
	for vc := 0; vc < op.downVCs; vc++ {
		used += op.downDepth - op.credits[vc]
	}
	return float64(used) / float64(op.downVCs*op.downDepth)
}

// latHistMax bounds the latency histogram; slower packets land in the
// overflow bucket and report as ">= latHistMax".
const latHistMax = 4096

// ensureHist lazily allocates the latency histogram.
func (s *Stats) ensureHist() {
	if s.latHist == nil {
		s.latHist = make([]int64, latHistMax+1)
	}
}

// fnvOffset and fnvPrime are the 64-bit FNV-1a parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a running hash.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// Fingerprint hashes every packet-level counter, the per-class aggregates
// and the full 1-cycle-resolution latency histogram into one 64-bit value.
// Two simulations with identical behavior produce identical fingerprints;
// the golden determinism tests use this as the regression gate for kernel
// optimizations (same seeds must keep the fingerprint bit-identical).
func (s *Stats) Fingerprint() uint64 {
	h := uint64(fnvOffset)
	for _, v := range []int64{
		s.Cycles, s.PacketsInjected, s.FlitsInjected, s.FlitsReceived,
		s.PacketsReceived, s.Escapes, s.TotalLatency, s.QueuingLatency,
		s.TransferLatency, s.BlockingLatency, s.HopsSum,
	} {
		h = fnvMix(h, uint64(v))
	}
	// Fault counters are mixed only when nonzero, tagged by position, so
	// fault-free fingerprints are byte-identical to the pre-fault-support
	// goldens while any fault activity still perturbs the hash.
	for i, v := range []int64{
		s.FlitsLost, s.FlitsDroppedFault, s.FlitsCorrupted,
		s.PacketsLost, s.PacketsUnroutable,
	} {
		if v != 0 {
			h = fnvMix(h, uint64(0xFA0+i))
			h = fnvMix(h, uint64(v))
		}
	}
	for _, c := range s.Classes() {
		cs := s.classes[c]
		h = fnvMix(h, uint64(c))
		h = fnvMix(h, uint64(cs.Packets))
		h = fnvMix(h, uint64(cs.TotalLatency))
	}
	for b, cnt := range s.latHist {
		if cnt != 0 {
			h = fnvMix(h, uint64(b))
			h = fnvMix(h, uint64(cnt))
		}
	}
	return h
}

// Fingerprint extends Stats.Fingerprint with the live network state and the
// per-router activity counters (buffer reads/writes, crossbar and arbiter
// activity, per-link flit/busy/combining counts), so any divergence in
// microarchitectural behavior — not just in delivered packets — changes the
// hash.
func (n *Network) Fingerprint() uint64 {
	h := n.stats.Fingerprint()
	h = fnvMix(h, uint64(n.cycle))
	h = fnvMix(h, uint64(n.flitsInNetwork))
	h = fnvMix(h, uint64(n.queuedPackets))
	for r := range n.routers {
		rt := &n.routers[r]
		h = fnvMix(h, uint64(rt.bufOccSum))
		h = fnvMix(h, uint64(rt.bufReads))
		h = fnvMix(h, uint64(rt.bufWrites))
		h = fnvMix(h, uint64(rt.xbarFlits))
		h = fnvMix(h, uint64(rt.arbOps))
		for _, op := range rt.out {
			h = fnvMix(h, uint64(op.flitsSent))
			h = fnvMix(h, uint64(op.busyCycles))
			h = fnvMix(h, uint64(op.combineCycles))
		}
	}
	return h
}

// Percentile returns the p-quantile (0 < p <= 1) of packet latency in
// cycles, from a 1-cycle-resolution histogram. The overflow bucket returns
// latHistMax.
func (s *Stats) Percentile(p float64) float64 {
	if s.PacketsReceived == 0 || s.latHist == nil {
		return 0
	}
	target := int64(p * float64(s.PacketsReceived))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.latHist {
		cum += c
		if cum >= target {
			return float64(i)
		}
	}
	return latHistMax
}
