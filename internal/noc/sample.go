package noc

import (
	"fmt"

	"heteronoc/internal/obs"
)

// SampleConfig configures the time-series sampler.
type SampleConfig struct {
	// Stride is the sampling period in cycles (default 1000). A sample is
	// captured on every cycle divisible by Stride.
	Stride int64
	// PerRouter adds per-router buffer-occupancy and link-utilization
	// columns (buf_occ_r<i>, link_util_r<i>) to the global columns.
	PerRouter bool
}

// Sampler captures a cycle-windowed time series from a running network:
// each sample is the state (in-flight flits, queued packets) and windowed
// rates (flit injection/delivery, wide-link combining, per-router occupancy
// and utilization) since the previous sample. Wire its Tick into the
// network's per-cycle hook (Attach does this), then export Series as JSON
// or CSV for heat-map animation.
//
// Window deltas are computed against the cumulative simulator counters and
// survive ResetStats: a counter that moved backwards is treated as freshly
// reset, so the window contribution restarts from zero instead of going
// negative.
type Sampler struct {
	n      *Network
	stride int64
	perR   bool
	series *obs.TimeSeries

	lastCycle    int64
	prevInjected int64
	prevReceived int64
	prevWideBusy int64
	prevCombined int64
	prevBufOcc   []int64
	prevBusy     []int64
	row          []float64
}

// NewSampler builds a sampler for n. Call Attach (or wire Tick into
// SetOnCycle yourself, composing with other per-cycle work).
func NewSampler(n *Network, cfg SampleConfig) *Sampler {
	stride := cfg.Stride
	if stride <= 0 {
		stride = 1000
	}
	s := &Sampler{n: n, stride: stride, perR: cfg.PerRouter, lastCycle: n.cycle}
	cols := []string{"inflight_flits", "queued_packets", "flits_injected", "flits_received", "combine_rate"}
	if cfg.PerRouter {
		for r := range n.routers {
			cols = append(cols, fmt.Sprintf("buf_occ_r%d", r))
		}
		for r := range n.routers {
			cols = append(cols, fmt.Sprintf("link_util_r%d", r))
		}
		s.prevBufOcc = make([]int64, len(n.routers))
		s.prevBusy = make([]int64, len(n.routers))
	}
	s.series = obs.NewTimeSeries(cols...)
	s.row = make([]float64, len(cols))
	s.resync()
	return s
}

// Attach installs Tick as the network's per-cycle hook.
func (s *Sampler) Attach() { s.n.SetOnCycle(s.Tick) }

// Series returns the captured time series (live; keeps growing while the
// sampler is attached).
func (s *Sampler) Series() *obs.TimeSeries { return s.series }

// delta returns cur-prev with counter-reset handling: a backwards move
// means the counter was zeroed (ResetStats), so the window restarts at cur.
func delta(cur, prev int64) int64 {
	d := cur - prev
	if d < 0 {
		return cur
	}
	return d
}

// resync re-reads all baselines without emitting a sample.
func (s *Sampler) resync() {
	n := s.n
	s.prevInjected = n.stats.FlitsInjected
	s.prevReceived = n.stats.FlitsReceived
	s.prevWideBusy, s.prevCombined = n.wideLinkCounters()
	if s.perR {
		for r := range n.routers {
			rt := &n.routers[r]
			s.prevBufOcc[r] = rt.bufOccSum
			s.prevBusy[r] = liveBusySum(rt)
		}
	}
}

// wideLinkCounters sums busy and combined cycle counts over wide links.
func (n *Network) wideLinkCounters() (wideBusy, combined int64) {
	for r := range n.routers {
		for _, op := range n.routers[r].out {
			if op.dead || op.slots < 2 {
				continue
			}
			wideBusy += op.busyCycles
			combined += op.combineCycles
		}
	}
	return wideBusy, combined
}

// liveBusySum sums busyCycles over a router's live network links.
func liveBusySum(rt *router) int64 {
	var busy int64
	for _, op := range rt.out {
		if op.dead || op.isTerm {
			continue
		}
		busy += op.busyCycles
	}
	return busy
}

func liveLinkCount(rt *router) int {
	live := 0
	for _, op := range rt.out {
		if op.dead || op.isTerm {
			continue
		}
		live++
	}
	return live
}

// Tick is the per-cycle hook; it captures a sample on stride boundaries.
// A tick at or before the last sampled cycle (a re-attached or restored
// hook replaying a boundary) is ignored, so each window edge is attributed
// exactly once.
func (s *Sampler) Tick(cycle int64) {
	if cycle%s.stride != 0 || cycle <= s.lastCycle {
		return
	}
	n := s.n
	window := cycle - s.lastCycle
	if window <= 0 {
		window = s.stride
	}
	s.lastCycle = cycle

	row := s.row
	row[0] = float64(n.flitsInNetwork)
	row[1] = float64(n.queuedPackets)
	row[2] = float64(delta(n.stats.FlitsInjected, s.prevInjected))
	row[3] = float64(delta(n.stats.FlitsReceived, s.prevReceived))
	s.prevInjected = n.stats.FlitsInjected
	s.prevReceived = n.stats.FlitsReceived
	wideBusy, combined := n.wideLinkCounters()
	dBusy, dComb := delta(wideBusy, s.prevWideBusy), delta(combined, s.prevCombined)
	s.prevWideBusy, s.prevCombined = wideBusy, combined
	row[4] = 0
	if dBusy > 0 {
		row[4] = float64(dComb) / float64(dBusy)
	}
	if s.perR {
		nr := len(n.routers)
		for r := range n.routers {
			rt := &n.routers[r]
			dOcc := delta(rt.bufOccSum, s.prevBufOcc[r])
			s.prevBufOcc[r] = rt.bufOccSum
			occ := 0.0
			if rt.bufSlots > 0 {
				occ = float64(dOcc) / float64(window) / float64(rt.bufSlots)
			}
			row[5+r] = occ
			busy := liveBusySum(rt)
			dB := delta(busy, s.prevBusy[r])
			s.prevBusy[r] = busy
			util := 0.0
			if live := liveLinkCount(rt); live > 0 {
				util = float64(dB) / float64(window) / float64(live)
			}
			row[5+nr+r] = util
		}
	}
	s.series.Append(cycle, row)
}
