package noc

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"heteronoc/internal/obs"
)

// FlitRecord is one compact trace record: a macro packet event or a
// microarchitectural detail event (see EventKind). Router is -1 for ejects;
// Port/VC are -1 where not applicable.
type FlitRecord struct {
	Cycle  int64
	Packet uint64
	Kind   EventKind
	Router int16
	Port   int16
	VC     int16

	seq uint64 // global capture order; in-memory only, implied by file order
}

// FlitTracerConfig sizes the flit tracer.
type FlitTracerConfig struct {
	// PerRouter is the ring capacity (records) of each per-router arena.
	// Zero means 4096. When an arena fills, the oldest records in it are
	// overwritten and counted in Dropped.
	PerRouter int
	// MacroOnly restricts capture to packet life-cycle events, suppressing
	// the VC-allocation / switch-allocation / credit-stall detail stream.
	MacroOnly bool
}

// flitArena is one fixed-capacity overwrite ring of records.
type flitArena struct {
	buf  []FlitRecord
	head int // next write slot
	n    int // live records (≤ cap)
}

func (a *flitArena) push(rec FlitRecord) (overwrote bool) {
	if a.n < len(a.buf) {
		a.n++
	} else {
		overwrote = true
	}
	a.buf[a.head] = rec
	a.head++
	if a.head == len(a.buf) {
		a.head = 0
	}
	return overwrote
}

// records appends the arena's live records in capture order.
func (a *flitArena) records(out []FlitRecord) []FlitRecord {
	start := a.head - a.n
	if start < 0 {
		start += len(a.buf)
	}
	for i := 0; i < a.n; i++ {
		j := start + i
		if j >= len(a.buf) {
			j -= len(a.buf)
		}
		out = append(out, a.buf[j])
	}
	return out
}

// FlitTracer captures flit/packet events into per-router ring arenas with a
// bounded memory footprint, for export to the binary trace format or a
// Perfetto-loadable Chrome trace. It implements DetailTracer, so installing
// it via SetTracer arms the microarchitectural hooks (unless MacroOnly).
//
// Per-router rings (rather than one global ring) keep a congested hot spot
// from evicting the history of quiet routers, so a post-mortem still shows
// every router's recent activity.
type FlitTracer struct {
	numRouters int
	macroOnly  bool
	arenas     []flitArena // one per router + one sink arena for ejects
	seq        uint64
	dropped    uint64
}

// NewFlitTracer builds a tracer for a network with numRouters routers.
func NewFlitTracer(numRouters int, cfg FlitTracerConfig) *FlitTracer {
	if numRouters < 1 {
		panic("noc: NewFlitTracer with no routers")
	}
	per := cfg.PerRouter
	if per <= 0 {
		per = 4096
	}
	ft := &FlitTracer{numRouters: numRouters, macroOnly: cfg.MacroOnly}
	ft.arenas = make([]flitArena, numRouters+1)
	backing := make([]FlitRecord, (numRouters+1)*per)
	for i := range ft.arenas {
		ft.arenas[i].buf = backing[i*per : (i+1)*per]
	}
	return ft
}

// NewNetworkFlitTracer is NewFlitTracer sized for n, but not yet installed
// (call n.SetTracer with the result).
func NewNetworkFlitTracer(n *Network, cfg FlitTracerConfig) *FlitTracer {
	return NewFlitTracer(len(n.routers), cfg)
}

func (ft *FlitTracer) record(e Event) {
	idx := e.Router
	if idx < 0 || idx >= ft.numRouters {
		idx = ft.numRouters // sink arena: ejects and anything off-mesh
	}
	rec := FlitRecord{
		Cycle: e.Cycle, Packet: e.Packet, Kind: e.Kind,
		Router: int16(e.Router), Port: e.Port, VC: e.VC,
		seq: ft.seq,
	}
	ft.seq++
	if ft.arenas[idx].push(rec) {
		ft.dropped++
	}
}

// PacketEvent implements Tracer.
func (ft *FlitTracer) PacketEvent(e Event) { ft.record(e) }

// DetailEvent implements DetailTracer.
func (ft *FlitTracer) DetailEvent(e Event) {
	if ft.macroOnly {
		return
	}
	ft.record(e)
}

// Dropped returns how many records were overwritten by ring wrap-around.
func (ft *FlitTracer) Dropped() uint64 { return ft.dropped }

// Len returns the number of live records across all arenas.
func (ft *FlitTracer) Len() int {
	total := 0
	for i := range ft.arenas {
		total += ft.arenas[i].n
	}
	return total
}

// Records returns all live records merged into global capture order.
func (ft *FlitTracer) Records() []FlitRecord {
	out := make([]FlitRecord, 0, ft.Len())
	for i := range ft.arenas {
		out = ft.arenas[i].records(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Binary flit-trace file format (little-endian):
//
//	offset  size  field
//	0       8     magic "NOCFLT01"
//	8       4     uint32 number of routers
//	12      4     uint32 reserved (zero)
//	16      8     uint64 record count
//	24      24*N  records, in capture order:
//	              int64 cycle, uint64 packet,
//	              int16 router, int16 port, int16 vc,
//	              uint8 kind, uint8 reserved (zero)
const (
	flitTraceMagic      = "NOCFLT01"
	flitTraceHeaderSize = 24
	flitRecordSize      = 24
)

// FlitTrace is a decoded binary flit trace.
type FlitTrace struct {
	NumRouters int
	Records    []FlitRecord // capture order
}

func putFlitRecord(b []byte, rec *FlitRecord) {
	binary.LittleEndian.PutUint64(b[0:], uint64(rec.Cycle))
	binary.LittleEndian.PutUint64(b[8:], rec.Packet)
	binary.LittleEndian.PutUint16(b[16:], uint16(rec.Router))
	binary.LittleEndian.PutUint16(b[18:], uint16(rec.Port))
	binary.LittleEndian.PutUint16(b[20:], uint16(rec.VC))
	b[22] = byte(rec.Kind)
	b[23] = 0
}

func writeFlitTrace(w io.Writer, numRouters int, recs []FlitRecord) error {
	hdr := make([]byte, flitTraceHeaderSize)
	copy(hdr, flitTraceMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(numRouters))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(recs)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 0, 64*flitRecordSize)
	var rec [flitRecordSize]byte
	for i := range recs {
		putFlitRecord(rec[:], &recs[i])
		buf = append(buf, rec[:]...)
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteBinary writes the tracer's live records in the binary trace format.
func (ft *FlitTracer) WriteBinary(w io.Writer) error {
	return writeFlitTrace(w, ft.numRouters, ft.Records())
}

// WriteBinary re-encodes a decoded trace.
func (tr *FlitTrace) WriteBinary(w io.Writer) error {
	return writeFlitTrace(w, tr.NumRouters, tr.Records)
}

// ReadFlitTrace decodes a binary flit trace.
func ReadFlitTrace(r io.Reader) (*FlitTrace, error) {
	hdr := make([]byte, flitTraceHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("noc: flit trace header: %w", err)
	}
	if string(hdr[:8]) != flitTraceMagic {
		return nil, fmt.Errorf("noc: not a flit trace (magic %q)", hdr[:8])
	}
	tr := &FlitTrace{NumRouters: int(binary.LittleEndian.Uint32(hdr[8:]))}
	count := binary.LittleEndian.Uint64(hdr[16:])
	if count > 1<<32 {
		return nil, fmt.Errorf("noc: flit trace claims %d records", count)
	}
	tr.Records = make([]FlitRecord, count)
	rec := make([]byte, flitRecordSize)
	for i := range tr.Records {
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, fmt.Errorf("noc: flit trace record %d: %w", i, err)
		}
		tr.Records[i] = FlitRecord{
			Cycle:  int64(binary.LittleEndian.Uint64(rec[0:])),
			Packet: binary.LittleEndian.Uint64(rec[8:]),
			Router: int16(binary.LittleEndian.Uint16(rec[16:])),
			Port:   int16(binary.LittleEndian.Uint16(rec[18:])),
			VC:     int16(binary.LittleEndian.Uint16(rec[20:])),
			Kind:   EventKind(rec[22]),
			seq:    uint64(i),
		}
	}
	return tr, nil
}

// ChromeTraceEvents converts flit records into Chrome trace events laid out
// for Perfetto: one process per router (plus a "network" process for NI
// injects/ejects), one thread per output port, one instant event per record
// (1 cycle = 1 µs), and a running packets-in-flight counter derived from
// inject/eject pairs. recs must be in capture order.
func ChromeTraceEvents(numRouters int, recs []FlitRecord) []obs.ChromeEvent {
	netPID := numRouters
	out := make([]obs.ChromeEvent, 0, len(recs)+numRouters+8)
	pidSeen := make([]bool, numRouters+1)
	type tidKey struct{ pid, tid int }
	tidSeen := map[tidKey]bool{}
	meta := func(pid, tid int) {
		if !pidSeen[pid] {
			pidSeen[pid] = true
			name := fmt.Sprintf("router %d", pid)
			if pid == netPID {
				name = "network"
			}
			out = append(out, obs.ProcessName(pid, name))
		}
		k := tidKey{pid, tid}
		if !tidSeen[k] {
			tidSeen[k] = true
			name := fmt.Sprintf("port %d", tid-1)
			if tid == 0 {
				name = "packets"
			}
			out = append(out, obs.ThreadName(pid, tid, name))
		}
	}
	inflight := 0
	for i := range recs {
		rec := &recs[i]
		pid := int(rec.Router)
		if pid < 0 || pid > numRouters {
			pid = netPID
		}
		tid := int(rec.Port) + 1 // port -1 (macro events) → thread 0
		meta(pid, tid)
		args := map[string]any{"packet": rec.Packet}
		if rec.VC >= 0 {
			args["vc"] = rec.VC
		}
		out = append(out, obs.ChromeEvent{
			Name: rec.Kind.String(), Cat: "noc", Ph: "i", S: "t",
			TS: float64(rec.Cycle), PID: pid, TID: tid, Args: args,
		})
		switch rec.Kind {
		case EvInject:
			inflight++
		case EvEject:
			inflight--
		default:
			continue
		}
		meta(netPID, 0)
		out = append(out, obs.ChromeEvent{
			Name: "packets_inflight", Ph: "C", TS: float64(rec.Cycle),
			PID: netPID, Args: map[string]any{"packets": inflight},
		})
	}
	return out
}

// WriteChromeTrace exports the tracer's live records as Chrome trace-event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (ft *FlitTracer) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, ChromeTraceEvents(ft.numRouters, ft.Records()))
}

// WriteChromeTrace exports a decoded binary trace as Chrome trace-event JSON.
func (tr *FlitTrace) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, ChromeTraceEvents(tr.NumRouters, tr.Records))
}
