package noc

import "heteronoc/internal/topology"

type vcState uint8

const (
	vcIdle   vcState = iota // no packet; waiting for a head flit
	vcWaitVC                // head routed, waiting for a downstream VC
	vcActive                // downstream VC held; flits flow
)

// inVC is one virtual channel of an input port.
type inVC struct {
	buf        ring
	state      vcState
	outPort    int
	outVC      int
	class      int
	waitCycles int // consecutive cycles of failed VC allocation
}

// inputPort is the buffered side of a link.
type inputPort struct {
	vcs []inVC
	rr  int // round-robin pointer of the input-stage (v:1) arbiter
	// upstream is the output port (router or NI) feeding this input; credits
	// travel back to it. nil for dead edge ports.
	upstream *outputPort
}

type wireEvt struct {
	flit  Flit
	outVC int
	at    int64
}

type creditEvt struct {
	vc int
	at int64
}

// outputPort is the sending side of a link plus the upstream-resident state
// of the downstream input port: per-VC credits and VC ownership.
type outputPort struct {
	router int // owning router, -1 when the "output" is an NI injection port
	port   int
	link   topology.Link
	isTerm bool
	term   int
	dead   bool
	slots  int // flits per cycle: 2 on wide links

	// Downstream VC bookkeeping. credits is nil for terminal (ejection)
	// ports, which consume flits unconditionally.
	downVCs     int
	downDepth   int
	credits     []int
	owner       []*Packet
	pendingFree []bool
	rrVC        int // VC allocation round-robin pointer
	rrOut       int // output-stage (p:1) arbiter round-robin pointer

	wire    []wireEvt
	creditQ []creditEvt

	// Statistics.
	flitsSent     int64
	busyCycles    int64
	combineCycles int64
}

// creditOK reports whether a flit can be sent on downstream VC vc.
func (o *outputPort) creditOK(vc int) bool {
	return o.credits == nil || o.credits[vc] > 0
}

// consumeCredit charges one buffer slot downstream.
func (o *outputPort) consumeCredit(vc int) {
	if o.credits != nil {
		o.credits[vc]--
		if o.credits[vc] < 0 {
			panic("noc: negative credit count")
		}
	}
}

// allocVC tries to allocate a free downstream VC in [lo, hi) for pkt,
// starting the scan at the round-robin pointer. Terminal ports always grant
// VC 0 (the sink consumes flits unconditionally).
func (o *outputPort) allocVC(pkt *Packet, lo, hi int) (int, bool) {
	if o.isTerm {
		return 0, true
	}
	if lo >= hi {
		return 0, false
	}
	n := hi - lo
	start := o.rrVC % n
	for i := 0; i < n; i++ {
		c := lo + (start+i)%n
		if o.owner[c] == nil && !o.pendingFree[c] {
			o.owner[c] = pkt
			o.rrVC++
			return c, true
		}
	}
	return 0, false
}

// releaseOnTail frees the downstream VC as soon as the tail flit has been
// sent (non-atomic VC reuse). This is safe because each VC is a strict
// FIFO: a new packet's head can only be processed downstream after the old
// packet's tail has drained past it, and credits bound total occupancy.
func (o *outputPort) releaseOnTail(vc int) {
	if o.isTerm {
		return
	}
	o.owner[vc] = nil
}

func (o *outputPort) tryFree(vc int) {}

// router is one switch node.
type router struct {
	id  int
	cfg RouterConfig
	in  []inputPort
	out []*outputPort

	// Per-cycle scratch state of the iterative separable allocator,
	// reused across cycles: flits sent per input port, slot budget left
	// per output, and flits sent per output.
	portSent []int8
	outLeft  []int8
	outSent  []int8

	// Statistics.
	bufOccSum int64 // sum over cycles of occupied buffer slots
	bufSlots  int   // total buffer slots (for utilization normalization)
	bufReads  int64
	bufWrites int64
	xbarFlits int64
	arbOps    int64
}

// occupied returns the number of buffered flits across all input VCs.
func (r *router) occupied() int {
	n := 0
	for pi := range r.in {
		for vi := range r.in[pi].vcs {
			n += r.in[pi].vcs[vi].buf.len()
		}
	}
	return n
}
