package noc

import "heteronoc/internal/topology"

type vcState uint8

const (
	vcIdle   vcState = iota // no packet; waiting for a head flit
	vcWaitVC                // head routed, waiting for a downstream VC
	vcActive                // downstream VC held; flits flow
)

// inVC is one virtual channel of an input port. The allocation stages scan
// these linearly every cycle, so the struct is packed into 48 bytes (narrow
// index fields, int32 counters) to keep a port's VCs within two cache
// lines; router radix and VC counts are far below the int16 range.
type inVC struct {
	buf   ring
	state vcState
	// idx is this VC's position within its input port, fixed at
	// construction so the credit path never has to search for it.
	idx        uint8
	outPort    int16
	outVC      int16
	class      int16
	waitCycles int32 // consecutive cycles of failed VC allocation
	// cur is the packet the VC is currently routing or sending (nil when
	// idle). The fault-recovery purge uses it to find and reset VCs whose
	// packet lost a flit, including VCs whose buffer has drained
	// mid-packet.
	cur *Packet
	// headArrive mirrors the front flit's arrive cycle (undefined when the
	// buffer is empty), so the switch-allocation eligibility check reads
	// this struct instead of touching the buffer slot array.
	headArrive int64
}

// inputPort is the buffered side of a link.
type inputPort struct {
	vcs []inVC
	rr  int // round-robin pointer of the input-stage (v:1) arbiter
	// flits counts buffered flits across the port's VCs; the allocator
	// stages skip ports with zero occupancy without touching their VCs.
	flits int
	// Candidate masks over the port's VCs, maintained at every buffer or
	// state mutation so the allocation stages iterate set bits instead of
	// scanning every VC:
	//
	//	raMask bit v set <=> vcs[v] buffers a flit and is not yet active
	//	       (stage-1 work: route compute or downstream VC allocation)
	//	saMask bit v set <=> vcs[v] buffers a flit and holds a downstream
	//	       VC (a switch-allocation candidate)
	//
	// The union is exactly the non-empty VCs, so flits > 0 iff a mask bit
	// is set. CheckInvariants audits both against a rescan.
	raMask uint32
	saMask uint32
	// upstream is the output port (router or NI) feeding this input; credits
	// travel back to it. nil for dead edge ports.
	upstream *outputPort
}

type wireEvt struct {
	flit  Flit
	outVC int
	at    int64
}

type creditEvt struct {
	vc int
	at int64
}

// outputPort is the sending side of a link plus the upstream-resident state
// of the downstream input port: per-VC credits and VC ownership.
type outputPort struct {
	router int // owning router, -1 when the "output" is an NI injection port
	port   int
	link   topology.Link
	isTerm bool
	term   int
	dead   bool
	slots  int // flits per cycle: 2 on wide links

	// Transient-fault window: while cycle <= faultUntil, flits delivered
	// across this link are corrupted (faultCorrupt, caught by the checksum
	// downstream) or dropped outright. Zero means no window.
	faultUntil   int64
	faultCorrupt bool

	// Downstream VC bookkeeping. credits is nil for terminal (ejection)
	// ports, which consume flits unconditionally. creditMask mirrors it —
	// bit v set iff VC v has a credit (all ones when credits is nil) — so
	// the eligibility check costs one field read instead of a slice chase.
	downVCs     int
	downDepth   int
	credits     []int
	creditMask  uint32
	owner       []*Packet
	pendingFree []bool
	rrVC        int // VC allocation round-robin pointer
	rrOut       int // output-stage (p:1) arbiter round-robin pointer

	// In-flight events toward the downstream side. Both queues are strict
	// FIFOs in maturity time (wires are enqueued at a fixed +1 or +2 delay,
	// credits always at +1), so deliver pops matured events from the front.
	wire    evq[wireEvt]
	creditQ evq[creditEvt]

	// Statistics.
	flitsSent     int64
	busyCycles    int64
	combineCycles int64
}

// creditOK reports whether a flit can be sent on downstream VC vc.
func (o *outputPort) creditOK(vc int) bool {
	return o.creditMask&(1<<vc) != 0
}

// consumeCredit charges one buffer slot downstream.
func (o *outputPort) consumeCredit(vc int) {
	if o.credits != nil {
		o.credits[vc]--
		if o.credits[vc] < 0 {
			panic("noc: negative credit count")
		}
		if o.credits[vc] == 0 {
			o.creditMask &^= 1 << vc
		}
	}
}

// allocVC tries to allocate a free downstream VC in [lo, hi) for pkt,
// starting the scan at the round-robin pointer. Terminal ports always grant
// VC 0 (the sink consumes flits unconditionally).
func (o *outputPort) allocVC(pkt *Packet, lo, hi int) (int, bool) {
	if o.dead {
		return 0, false
	}
	if o.isTerm {
		return 0, true
	}
	if lo >= hi {
		return 0, false
	}
	n := hi - lo
	start := o.rrVC % n
	for i := 0; i < n; i++ {
		c := lo + (start+i)%n
		if o.owner[c] == nil && !o.pendingFree[c] {
			o.owner[c] = pkt
			o.rrVC++
			return c, true
		}
	}
	return 0, false
}

// releaseOnTail frees the downstream VC as soon as the tail flit has been
// sent (non-atomic VC reuse). This is safe because each VC is a strict
// FIFO: a new packet's head can only be processed downstream after the old
// packet's tail has drained past it, and credits bound total occupancy.
func (o *outputPort) releaseOnTail(vc int) {
	if o.isTerm {
		return
	}
	o.owner[vc] = nil
}

// router is one switch node.
type router struct {
	id  int
	cfg RouterConfig
	in  []inputPort
	out []*outputPort

	// Per-cycle scratch state of the iterative separable allocator,
	// allocated once at construction and reused across cycles: flits sent
	// per input port, slot budget left per output, and flits sent per
	// output. outSlots caches each output's link bandwidth so the per-cycle
	// budget reset never dereferences the output ports.
	portSent []int8
	outLeft  []int8
	outSent  []int8
	outSlots []int8

	// The active-set scheduling state (flit counts, occupied-port masks,
	// pending-event masks) lives in structure-of-arrays form on the Network
	// (inFlits/portMask/evMask, indexed by router ID) so the per-cycle scans
	// over mostly-idle large meshes walk dense arrays instead of striding
	// through router structs.

	// Statistics.
	bufOccSum int64 // sum over cycles of occupied buffer slots
	bufSlots  int   // total buffer slots (for utilization normalization)
	bufReads  int64
	bufWrites int64
	xbarFlits int64
	arbOps    int64
	// atr rolls up attribution cycles charged to this router (attrib.go):
	// contention buckets where the head stalled here, queue wait and the NI
	// wire at the source router, serialization at the destination router.
	atr [NumAttrBuckets]int64
}

// occupied returns the number of buffered flits across all input VCs.
func (r *router) occupied() int {
	n := 0
	for pi := range r.in {
		for vi := range r.in[pi].vcs {
			n += r.in[pi].vcs[vi].buf.len()
		}
	}
	return n
}
