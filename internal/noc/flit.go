// Package noc is a cycle-accurate simulator for virtual-channel wormhole
// networks with credit-based flow control and a two-stage router pipeline
// (route compute / VC allocation / switch allocation, then switch traversal)
// followed by a one-cycle link traversal, per the Peh-Dally router the paper
// bases its design on. Routers are individually configurable: per-router VC
// counts and a wide (double-width) crossbar/link option let a single network
// mix the paper's small, baseline and big routers. Wide links transport two
// flits per cycle; the separable switch allocator combines two flits from
// one or two input ports toward the same wide output, exactly the paper's
// flit-combining mechanism (Section 3), charging two credits downstream.
package noc

// FlitKind distinguishes the phases of a wormhole packet.
type FlitKind uint8

const (
	// HeadFlit opens a packet: it carries the route and allocates VCs.
	HeadFlit FlitKind = iota
	// BodyFlit follows the head on the allocated path.
	BodyFlit
	// TailFlit closes the packet and releases its VCs.
	TailFlit
	// SingleFlit is a one-flit packet (head and tail at once), used for
	// address/control packets.
	SingleFlit
)

func (k FlitKind) String() string {
	switch k {
	case HeadFlit:
		return "head"
	case BodyFlit:
		return "body"
	case TailFlit:
		return "tail"
	case SingleFlit:
		return "single"
	}
	return "?"
}

// IsHead reports whether the flit opens a packet.
func (k FlitKind) IsHead() bool { return k == HeadFlit || k == SingleFlit }

// IsTail reports whether the flit closes a packet.
func (k FlitKind) IsTail() bool { return k == TailFlit || k == SingleFlit }

// Packet is the unit of injection. Src and Dst are terminal IDs. NumFlits
// depends on the packet class and the network flit width: the paper's
// 1024-bit data packets are 6 flits at 192 bits (homogeneous) or 8 flits at
// 128 bits (HeteroNoC); address packets are a single flit in both.
type Packet struct {
	ID       uint64
	Src, Dst int
	NumFlits int
	// Class is an application-level tag carried through the network
	// untouched (e.g. request vs response vs coherence); the CMP simulator
	// dispatches on it.
	Class int
	// Payload carries an opaque reference for the CMP simulator.
	Payload any

	// CreateCycle is when the packet entered its source queue.
	CreateCycle int64
	// InjectCycle is when the head flit entered the source router.
	InjectCycle int64
	// RecvCycle is when the tail flit was consumed at the destination.
	RecvCycle int64
	// Hops counts router-to-router link traversals.
	Hops int
	// MinSlots is the narrowest link bandwidth (flits/cycle) on the path
	// taken, used for the ideal-serialization term of the latency breakdown.
	MinSlots int

	vcClass  int  // current routing VC class
	escaped  bool // diverted to the escape sub-network (table routing)
	received int  // flits consumed at destination

	// Attribution state (see attrib.go). headRecv is the cycle the head
	// flit was consumed at the destination; hopVC/hopCredit are per-hop
	// scratch counters settled into the atr* lifetime buckets when the
	// head leaves each router.
	headRecv         int64
	atrVC            int64
	atrSA            int64
	atrCredit        int64
	hopVC, hopCredit int32

	// broken marks a packet that lost a flit to a fault (or lost its route)
	// and is queued for purging; dropWhy records the first cause.
	broken  bool
	dropWhy DropReason
}

// Flit is the unit of flow control. Flits are copied by value through VC
// buffers and link-event queues every cycle, so the struct is packed into
// 24 bytes (Seq as int32; packet flit counts are far below that range).
type Flit struct {
	Pkt *Packet
	// arrive is the cycle the flit was written into its current input
	// buffer; the flit becomes eligible for stage-1 arbitration on the next
	// cycle (one-cycle buffer write / pipeline stage boundary).
	arrive int64
	Seq    int32
	Kind   FlitKind
	// Csum is the header checksum, computed at emission and verified at
	// every link delivery — but only on networks with a fault plan armed,
	// so fault-free runs skip both hashes. A transient corrupt fault flips
	// checksum bits in flight; the receiving router detects the mismatch
	// and drops the flit.
	Csum uint16
}

// makeFlits is a helper for tests: it expands a packet into its flit
// sequence.
func makeFlits(p *Packet) []Flit {
	if p.NumFlits == 1 {
		return []Flit{{Pkt: p, Seq: 0, Kind: SingleFlit}}
	}
	fs := make([]Flit, p.NumFlits)
	for i := range fs {
		k := BodyFlit
		switch i {
		case 0:
			k = HeadFlit
		case p.NumFlits - 1:
			k = TailFlit
		}
		fs[i] = Flit{Pkt: p, Seq: int32(i), Kind: k}
	}
	return fs
}
