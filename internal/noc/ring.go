package noc

// ring is a fixed-capacity FIFO of flits, sized to the VC buffer depth.
// Indexing wraps by conditional subtraction rather than modulo: the ring is
// touched on every buffer write/read of the cycle kernel.
type ring struct {
	buf   []Flit
	head  int32
	count int32
}

func newRing(capacity int) ring { return ring{buf: make([]Flit, capacity)} }

func (r *ring) len() int   { return int(r.count) }
func (r *ring) cap() int   { return len(r.buf) }
func (r *ring) full() bool { return int(r.count) == len(r.buf) }

func (r *ring) push(f Flit) {
	if r.full() {
		panic("noc: VC buffer overflow (credit accounting broken)")
	}
	i := int(r.head) + int(r.count)
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = f
	r.count++
}

// at returns the i-th buffered flit (0 = front) for audits and the fault
// purge; i must be < count.
func (r *ring) at(i int32) *Flit {
	j := int(r.head) + int(i)
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return &r.buf[j]
}

func (r *ring) peek() *Flit {
	if r.count == 0 {
		return nil
	}
	return &r.buf[r.head]
}

func (r *ring) pop() Flit {
	if r.count == 0 {
		panic("noc: pop from empty VC buffer")
	}
	f := r.buf[r.head]
	r.buf[r.head].Pkt = nil // drop reference for GC
	r.head++
	if int(r.head) == len(r.buf) {
		r.head = 0
	}
	r.count--
	return f
}

// removePacket deletes every flit of packet p from the ring, preserving
// the order of the remaining flits, and returns the number removed. Only
// the fault-recovery purge calls it; the hot path never removes from the
// middle of a buffer.
func (r *ring) removePacket(p *Packet) int {
	if r.count == 0 {
		return 0
	}
	w := int32(0)
	n := len(r.buf)
	for i := int32(0); i < r.count; i++ {
		j := int(r.head) + int(i)
		if j >= n {
			j -= n
		}
		if r.buf[j].Pkt == p {
			continue
		}
		k := int(r.head) + int(w)
		if k >= n {
			k -= n
		}
		r.buf[k] = r.buf[j]
		w++
	}
	removed := int(r.count - w)
	for i := w; i < r.count; i++ {
		k := int(r.head) + int(i)
		if k >= n {
			k -= n
		}
		r.buf[k].Pkt = nil // drop reference for GC
	}
	r.count = w
	return removed
}

// evq is a growable FIFO ring of timed events (link wires and credit
// returns). Both event kinds are appended with a fixed delay from the
// current cycle, so maturity times are nondecreasing within a queue and
// deliver can pop matured events from the front instead of scanning and
// compacting a slice each cycle. The zero value is ready to use.
type evq[T any] struct {
	buf  []T
	head int
	n    int
}

func (q *evq[T]) len() int { return q.n }

func (q *evq[T]) push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = v
	q.n++
}

// front returns the oldest event; the queue must be non-empty.
func (q *evq[T]) front() *T { return &q.buf[q.head] }

func (q *evq[T]) pop() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // drop packet references for GC
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return v
}

// at returns the i-th queued event (0 = oldest) for audits and debugging.
func (q *evq[T]) at(i int) T {
	j := q.head + i
	if j >= len(q.buf) {
		j -= len(q.buf)
	}
	return q.buf[j]
}

func (q *evq[T]) grow() {
	nb := make([]T, max(2*len(q.buf), 8))
	for i := 0; i < q.n; i++ {
		nb[i] = q.at(i)
	}
	q.buf, q.head = nb, 0
}
