package noc

// ring is a fixed-capacity FIFO of flits, sized to the VC buffer depth.
type ring struct {
	buf   []Flit
	head  int
	count int
}

func newRing(capacity int) ring { return ring{buf: make([]Flit, capacity)} }

func (r *ring) len() int   { return r.count }
func (r *ring) cap() int   { return len(r.buf) }
func (r *ring) full() bool { return r.count == len(r.buf) }

func (r *ring) push(f Flit) {
	if r.full() {
		panic("noc: VC buffer overflow (credit accounting broken)")
	}
	r.buf[(r.head+r.count)%len(r.buf)] = f
	r.count++
}

func (r *ring) peek() *Flit {
	if r.count == 0 {
		return nil
	}
	return &r.buf[r.head]
}

func (r *ring) pop() Flit {
	if r.count == 0 {
		panic("noc: pop from empty VC buffer")
	}
	f := r.buf[r.head]
	r.buf[r.head].Pkt = nil // drop reference for GC
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return f
}
