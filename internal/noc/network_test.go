package noc

import (
	"math/rand"
	"testing"

	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// newMeshNet builds a homogeneous 8x8 mesh network with the paper's
// baseline parameters (3 VCs, 5-deep buffers, 192-bit flits).
func newMeshNet(t testing.TB) *Network {
	t.Helper()
	m := topology.NewMesh(8, 8)
	n, err := New(Config{
		Topo:           m,
		Routing:        routing.NewXY(m),
		Routers:        []RouterConfig{{VCs: 3, BufDepth: 5}},
		FlitWidthBits:  192,
		WatchdogCycles: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// runUntilQuiesced steps the network until no traffic remains, using the
// idle fast-forward (StepUntilQuiesced) instead of a bare Step spin; the
// two are behaviorally identical (gated by the golden fingerprints and
// TestStepUntilQuiescedMatchesStepLoop).
func runUntilQuiesced(t testing.TB, n *Network, maxCycles int) {
	t.Helper()
	if _, err := n.StepUntilQuiesced(int64(maxCycles)); err != nil {
		t.Fatal(err)
	}
}

func TestSinglePacketZeroLoad(t *testing.T) {
	n := newMeshNet(t)
	var done *Packet
	n.SetOnPacket(func(p *Packet) { done = p })
	n.Inject(&Packet{Src: 0, Dst: 0, NumFlits: 1})
	runUntilQuiesced(t, n, 100)
	if done == nil {
		t.Fatal("packet not delivered")
	}
	if done.Hops != 0 {
		t.Errorf("hops = %d, want 0", done.Hops)
	}
	total := done.RecvCycle - done.CreateCycle
	queuing := done.InjectCycle - done.CreateCycle
	want := IdealTransferCycles(0, 1, done.MinSlots) + queuing
	if total != want {
		t.Errorf("latency = %d, want %d (queuing %d)", total, want, queuing)
	}
}

func TestZeroLoadLatencyMatchesIdeal(t *testing.T) {
	// Every (src, dst, size) combination at zero load must exactly match
	// the ideal transfer formula plus one cycle of injection alignment, so
	// blocking is zero. This pins the pipeline depth.
	for _, flits := range []int{1, 6, 8} {
		for _, pair := range [][2]int{{0, 63}, {5, 40}, {9, 10}, {63, 0}, {7, 56}} {
			n := newMeshNet(t)
			var done *Packet
			n.SetOnPacket(func(p *Packet) { done = p })
			n.Inject(&Packet{Src: pair[0], Dst: pair[1], NumFlits: flits})
			runUntilQuiesced(t, n, 500)
			if done == nil {
				t.Fatalf("packet %v not delivered", pair)
			}
			m := topology.NewMesh(8, 8)
			if done.Hops != m.HopsXY(pair[0], pair[1]) {
				t.Errorf("%v hops = %d, want %d", pair, done.Hops, m.HopsXY(pair[0], pair[1]))
			}
			total := done.RecvCycle - done.CreateCycle
			queuing := done.InjectCycle - done.CreateCycle
			want := IdealTransferCycles(done.Hops, flits, done.MinSlots) + queuing
			if total != want {
				t.Errorf("%v x%d flits: latency %d, want %d", pair, flits, total, want)
			}
		}
	}
}

func TestStatsBreakdownZeroBlockingAtZeroLoad(t *testing.T) {
	n := newMeshNet(t)
	n.Inject(&Packet{Src: 3, Dst: 60, NumFlits: 6})
	runUntilQuiesced(t, n, 500)
	q, b, tr := n.Stats().Breakdown()
	if b != 0 {
		t.Errorf("blocking = %v, want 0 at zero load", b)
	}
	if q <= 0 || tr <= 0 {
		t.Errorf("queuing %v transfer %v must be positive", q, tr)
	}
	if got := n.Stats().AvgLatency(); got != q+b+tr {
		t.Errorf("breakdown does not sum to total: %v vs %v", q+b+tr, got)
	}
}

func TestAllPacketsDeliveredUR(t *testing.T) {
	n := newMeshNet(t)
	rng := rand.New(rand.NewSource(1))
	want := 0
	received := make(map[uint64]bool)
	n.SetOnPacket(func(p *Packet) {
		if received[p.ID] {
			t.Errorf("packet %d delivered twice", p.ID)
		}
		received[p.ID] = true
	})
	for cycle := 0; cycle < 2000; cycle++ {
		for src := 0; src < 64; src++ {
			if rng.Float64() < 0.02 {
				dst := rng.Intn(64)
				n.Inject(&Packet{Src: src, Dst: dst, NumFlits: 6})
				want++
			}
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	runUntilQuiesced(t, n, 200000)
	if len(received) != want {
		t.Fatalf("delivered %d of %d packets", len(received), want)
	}
	if got := n.Stats().PacketsReceived; got != int64(want) {
		t.Errorf("stats received %d, want %d", got, want)
	}
	if got := n.Stats().FlitsReceived; got != int64(want*6) {
		t.Errorf("stats flits %d, want %d", got, want*6)
	}
}

func TestPacketsArriveAtCorrectDestination(t *testing.T) {
	n := newMeshNet(t)
	rng := rand.New(rand.NewSource(7))
	// The sink callback does not tell us the consuming terminal directly,
	// so we verify via hop counts: delivered hops must equal XY distance.
	m := topology.NewMesh(8, 8)
	n.SetOnPacket(func(p *Packet) {
		if p.Hops != m.HopsXY(p.Src, p.Dst) {
			t.Errorf("packet %d->%d took %d hops, want %d", p.Src, p.Dst, p.Hops, m.HopsXY(p.Src, p.Dst))
		}
	})
	for i := 0; i < 300; i++ {
		n.Inject(&Packet{Src: rng.Intn(64), Dst: rng.Intn(64), NumFlits: 1 + rng.Intn(8)})
	}
	runUntilQuiesced(t, n, 100000)
}

// heteroDiagonalNet builds the Diagonal+BL HeteroNoC of the paper: 16 big
// routers (6 VCs, wide) on the diagonals, 48 small routers (2 VCs), 128-bit
// flits.
func heteroDiagonalNet(t testing.TB) *Network {
	t.Helper()
	m := topology.NewMesh(8, 8)
	routers := make([]RouterConfig, 64)
	for r := range routers {
		routers[r] = RouterConfig{VCs: 2, BufDepth: 5, SplitDatapath: true}
	}
	for i := 0; i < 8; i++ {
		routers[m.RouterAt(i, i)] = RouterConfig{VCs: 6, BufDepth: 5, Wide: true, SplitDatapath: true}
		routers[m.RouterAt(7-i, i)] = RouterConfig{VCs: 6, BufDepth: 5, Wide: true, SplitDatapath: true}
	}
	n, err := New(Config{
		Topo:           m,
		Routing:        routing.NewXY(m),
		Routers:        routers,
		FlitWidthBits:  128,
		WatchdogCycles: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestHeteroDelivery(t *testing.T) {
	n := heteroDiagonalNet(t)
	rng := rand.New(rand.NewSource(3))
	want := 0
	got := 0
	n.SetOnPacket(func(p *Packet) { got++ })
	for cycle := 0; cycle < 2000; cycle++ {
		for src := 0; src < 64; src++ {
			if rng.Float64() < 0.02 {
				n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 8})
				want++
			}
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	runUntilQuiesced(t, n, 200000)
	if got != want {
		t.Fatalf("delivered %d of %d packets", got, want)
	}
}

func TestWideLinkCombining(t *testing.T) {
	// Two big routers adjacent on the diagonal: traffic between terminals 0
	// and 9 (routers 0 and 9 both big) flows over wide links only, so a
	// multi-flit packet must be delivered faster than flit-per-cycle
	// serialization would allow.
	n := heteroDiagonalNet(t)
	var done *Packet
	n.SetOnPacket(func(p *Packet) { done = p })
	n.Inject(&Packet{Src: 0, Dst: 9, NumFlits: 8})
	runUntilQuiesced(t, n, 500)
	if done == nil {
		t.Fatal("packet not delivered")
	}
	if done.MinSlots != 2 {
		t.Fatalf("min slots on all-big path = %d, want 2", done.MinSlots)
	}
	total := done.RecvCycle - done.CreateCycle
	queuing := done.InjectCycle - done.CreateCycle
	// Ideal with pairing: serialization ceil(7/2)=4 instead of 7. The
	// 5-deep VC buffers stall the 2-flit/cycle fill briefly before the
	// drain catches up, so allow a small finite-buffer slack — but the
	// result must stay well below the narrow-path serialization (+7).
	ideal := IdealTransferCycles(done.Hops, 8, 2) + queuing
	narrow := IdealTransferCycles(done.Hops, 8, 1) + queuing
	if total < ideal || total > ideal+3 || total >= narrow {
		t.Errorf("wide-path latency %d, want in [%d,%d] and below narrow %d", total, ideal, ideal+3, narrow)
	}
	if n.CombineRate() == 0 {
		t.Error("no combined flit pairs recorded on an all-wide path")
	}
}

func TestCombineRateGrowsWithLoad(t *testing.T) {
	rate := func(inj float64) float64 {
		n := heteroDiagonalNet(t)
		rng := rand.New(rand.NewSource(11))
		for cycle := 0; cycle < 3000; cycle++ {
			for src := 0; src < 64; src++ {
				if rng.Float64() < inj {
					n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 8})
				}
			}
			if err := n.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return n.CombineRate()
	}
	low, high := rate(0.002), rate(0.04)
	if high <= low {
		t.Errorf("combine rate did not grow with load: low=%.3f high=%.3f", low, high)
	}
	// On Diagonal+BL most wide links hang off 2-VC small routers whose
	// narrow feeders limit pairing opportunities; an all-wide network
	// reaches ~0.68 (near the paper's 0.8), the diagonal layout less.
	if high < 0.15 {
		t.Errorf("combine rate at high load = %.3f, expected > 0.15", high)
	}
}

func TestTorusDatelineNoDeadlock(t *testing.T) {
	m := topology.NewTorus(8, 8)
	n, err := New(Config{
		Topo:           m,
		Routing:        routing.NewTorusXY(m),
		Routers:        []RouterConfig{{VCs: 3, BufDepth: 5}},
		FlitWidthBits:  192,
		WatchdogCycles: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	want, got := 0, 0
	n.SetOnPacket(func(p *Packet) { got++ })
	for cycle := 0; cycle < 3000; cycle++ {
		for src := 0; src < 64; src++ {
			if rng.Float64() < 0.03 {
				n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 6})
				want++
			}
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	runUntilQuiesced(t, n, 400000)
	if got != want {
		t.Fatalf("torus delivered %d of %d", got, want)
	}
}

func TestCMeshAndFBflyDelivery(t *testing.T) {
	cm := topology.NewCMesh(4, 4, 4)
	fb := topology.NewFBfly(4, 4, 4)
	nets := []*Network{}
	for _, c := range []Config{
		{Topo: cm, Routing: routing.NewXY(cm), Routers: []RouterConfig{{VCs: 3, BufDepth: 5}}, FlitWidthBits: 192, WatchdogCycles: 10000},
		{Topo: fb, Routing: routing.NewFBflyRC(fb), Routers: []RouterConfig{{VCs: 3, BufDepth: 5}}, FlitWidthBits: 192, WatchdogCycles: 10000},
	} {
		n, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, n)
	}
	for _, n := range nets {
		rng := rand.New(rand.NewSource(9))
		want, got := 0, 0
		n.SetOnPacket(func(p *Packet) { got++ })
		for cycle := 0; cycle < 1500; cycle++ {
			for src := 0; src < 64; src++ {
				if rng.Float64() < 0.02 {
					n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 6})
					want++
				}
			}
			if err := n.Step(); err != nil {
				t.Fatal(err)
			}
		}
		runUntilQuiesced(t, n, 200000)
		if got != want {
			t.Fatalf("%s delivered %d of %d", n.Config().Topo.Name(), got, want)
		}
	}
}

func TestTableRoutingWithEscapeDelivers(t *testing.T) {
	m := topology.NewMesh(8, 8)
	big := make([]bool, 64)
	routers := make([]RouterConfig, 64)
	for r := range routers {
		routers[r] = RouterConfig{VCs: 2, BufDepth: 5}
	}
	for i := 0; i < 8; i++ {
		for _, r := range []int{m.RouterAt(i, i), m.RouterAt(7-i, i)} {
			big[r] = true
			routers[r] = RouterConfig{VCs: 6, BufDepth: 5, Wide: true}
		}
	}
	alg := routing.NewTableXY(m, routing.TableXYConfig{Flagged: []int{0, 7, 56, 63}, Big: big, EscapeThreshold: 32})
	n, err := New(Config{Topo: m, Routing: alg, Routers: routers, FlitWidthBits: 128, WatchdogCycles: 30000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	want, got := 0, 0
	n.SetOnPacket(func(p *Packet) { got++ })
	for cycle := 0; cycle < 4000; cycle++ {
		for src := 0; src < 64; src++ {
			if rng.Float64() < 0.03 {
				n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 8})
				want++
			}
		}
		// Large cores blast extra traffic so table paths see contention.
		for _, lc := range []int{0, 7, 56, 63} {
			if rng.Float64() < 0.2 {
				n.Inject(&Packet{Src: lc, Dst: rng.Intn(64), NumFlits: 8})
				want++
			}
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	runUntilQuiesced(t, n, 500000)
	if got != want {
		t.Fatalf("table routing delivered %d of %d", got, want)
	}
}

func TestResetStatsExcludesWarmup(t *testing.T) {
	n := newMeshNet(t)
	n.Inject(&Packet{Src: 0, Dst: 63, NumFlits: 6})
	runUntilQuiesced(t, n, 500)
	if n.Stats().PacketsReceived != 1 {
		t.Fatal("warmup packet not counted before reset")
	}
	n.ResetStats()
	if n.Stats().PacketsReceived != 0 {
		t.Fatal("reset did not clear packet count")
	}
	n.Inject(&Packet{Src: 0, Dst: 63, NumFlits: 6})
	runUntilQuiesced(t, n, 500)
	if n.Stats().PacketsReceived != 1 {
		t.Fatal("post-reset packet not counted")
	}
}

func TestUtilizationHotCenter(t *testing.T) {
	// The paper's Figure 1: under uniform random traffic near saturation,
	// central routers utilize their buffers and links far more than corner
	// routers. This is the observation motivating HeteroNoC.
	n := newMeshNet(t)
	rng := rand.New(rand.NewSource(17))
	for cycle := 0; cycle < 6000; cycle++ {
		for src := 0; src < 64; src++ {
			if rng.Float64() < 0.04 {
				n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 6})
			}
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	act := n.Activity()
	m := topology.NewMesh(8, 8)
	center := (act[m.RouterAt(3, 3)].LinkUtil + act[m.RouterAt(4, 3)].LinkUtil +
		act[m.RouterAt(3, 4)].LinkUtil + act[m.RouterAt(4, 4)].LinkUtil) / 4
	corner := (act[m.RouterAt(0, 0)].LinkUtil + act[m.RouterAt(7, 0)].LinkUtil +
		act[m.RouterAt(0, 7)].LinkUtil + act[m.RouterAt(7, 7)].LinkUtil) / 4
	if center <= corner {
		t.Errorf("center link util %.3f not above corner %.3f", center, corner)
	}
	cBuf := (act[m.RouterAt(3, 3)].BufOccupancy + act[m.RouterAt(4, 4)].BufOccupancy) / 2
	cornBuf := (act[m.RouterAt(0, 0)].BufOccupancy + act[m.RouterAt(7, 7)].BufOccupancy) / 2
	if cBuf <= cornBuf {
		t.Errorf("center buffer occupancy %.3f not above corner %.3f", cBuf, cornBuf)
	}
}

func TestWatchdogDisabledByDefault(t *testing.T) {
	m := topology.NewMesh(4, 4)
	n, err := New(Config{Topo: m, Routing: routing.NewXY(m), Routers: []RouterConfig{{VCs: 2, BufDepth: 2}}, FlitWidthBits: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := n.Step(); err != nil {
			t.Fatalf("idle network reported error: %v", err)
		}
	}
}

func TestInjectValidation(t *testing.T) {
	n := newMeshNet(t)
	for _, p := range []*Packet{
		{Src: -1, Dst: 0, NumFlits: 1},
		{Src: 0, Dst: 64, NumFlits: 1},
		{Src: 0, Dst: 0, NumFlits: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Inject(%+v) did not panic", p)
				}
			}()
			n.Inject(p)
		}()
	}
}

func TestConfigValidation(t *testing.T) {
	m := topology.NewMesh(4, 4)
	bad := []Config{
		{Routing: routing.NewXY(m), Routers: []RouterConfig{{VCs: 1, BufDepth: 1}}, FlitWidthBits: 64},
		{Topo: m, Routers: []RouterConfig{{VCs: 1, BufDepth: 1}}, FlitWidthBits: 64},
		{Topo: m, Routing: routing.NewXY(m), Routers: []RouterConfig{{VCs: 0, BufDepth: 1}}, FlitWidthBits: 64},
		{Topo: m, Routing: routing.NewXY(m), Routers: make([]RouterConfig, 3), FlitWidthBits: 64},
		{Topo: m, Routing: routing.NewXY(m), Routers: []RouterConfig{{VCs: 1, BufDepth: 1}}},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestDataPacketFlits(t *testing.T) {
	c := Config{FlitWidthBits: 192}
	if got := c.DataPacketFlits(1024); got != 6 {
		t.Errorf("1024b at 192b = %d flits, want 6", got)
	}
	c.FlitWidthBits = 128
	if got := c.DataPacketFlits(1024); got != 8 {
		t.Errorf("1024b at 128b = %d flits, want 8", got)
	}
	if got := c.DataPacketFlits(64); got != 1 {
		t.Errorf("64b at 128b = %d flits, want 1", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		n := newMeshNet(t)
		rng := rand.New(rand.NewSource(23))
		for cycle := 0; cycle < 1000; cycle++ {
			for src := 0; src < 64; src++ {
				if rng.Float64() < 0.03 {
					n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 6})
				}
			}
			if err := n.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return n.Stats().TotalLatency, n.Stats().PacketsReceived
	}
	l1, p1 := run()
	l2, p2 := run()
	if l1 != l2 || p1 != p2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", l1, p1, l2, p2)
	}
}

func TestPerClassStats(t *testing.T) {
	n := newMeshNet(t)
	for i := 0; i < 30; i++ {
		n.Inject(&Packet{Src: i % 64, Dst: (i + 9) % 64, NumFlits: 1, Class: 1})
		n.Inject(&Packet{Src: (i + 3) % 64, Dst: (i + 40) % 64, NumFlits: 6, Class: 2})
	}
	runUntilQuiesced(t, n, 100000)
	s := n.Stats()
	c1, c2 := s.Class(1), s.Class(2)
	if c1.Packets != 30 || c2.Packets != 30 {
		t.Fatalf("class packets %d/%d, want 30/30", c1.Packets, c2.Packets)
	}
	if c2.Avg() <= c1.Avg() {
		t.Errorf("6-flit class latency %.1f not above 1-flit class %.1f", c2.Avg(), c1.Avg())
	}
	if got := s.Classes(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("classes = %v", got)
	}
	if s.Class(99).Packets != 0 {
		t.Error("unknown class not empty")
	}
}

func TestTracerRecordsPath(t *testing.T) {
	n := newMeshNet(t)
	tr := &CollectingTracer{}
	n.SetTracer(tr)
	n.Inject(&Packet{Src: 0, Dst: 10, NumFlits: 2}) // (0,0) -> (2,1): E,E,S
	var id uint64
	n.SetOnPacket(func(p *Packet) { id = p.ID })
	runUntilQuiesced(t, n, 500)
	if id == 0 {
		t.Fatal("packet not delivered")
	}
	path := tr.PathOf(id)
	want := []int{0, 1, 2, 10}
	if len(path) != len(want) {
		t.Fatalf("traced path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("traced path %v, want %v", path, want)
		}
	}
	// Last event must be an eject, cycles must be nondecreasing.
	evs := tr.Events
	if evs[len(evs)-1].Kind != EvEject {
		t.Error("missing eject event")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Error("events out of order")
		}
	}
	if tr.Dump(id) == "" {
		t.Error("dump empty")
	}
}

func TestTracerFilter(t *testing.T) {
	n := newMeshNet(t)
	tr := &CollectingTracer{Filter: true, Only: 2}
	n.SetTracer(tr)
	n.Inject(&Packet{Src: 0, Dst: 5, NumFlits: 1}) // ID 1
	n.Inject(&Packet{Src: 8, Dst: 9, NumFlits: 1}) // ID 2
	runUntilQuiesced(t, n, 500)
	for _, e := range tr.Events {
		if e.Packet != 2 {
			t.Fatalf("filter leaked packet %d", e.Packet)
		}
	}
	if len(tr.Events) == 0 {
		t.Fatal("filtered packet has no events")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	n := newMeshNet(t)
	rng := rand.New(rand.NewSource(77))
	for cycle := 0; cycle < 2500; cycle++ {
		for src := 0; src < 64; src++ {
			if rng.Float64() < 0.03 {
				n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 6})
			}
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	runUntilQuiesced(t, n, 200000)
	s := n.Stats()
	p50, p95, p99 := s.Percentile(0.5), s.Percentile(0.95), s.Percentile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("percentiles not monotone: %v %v %v", p50, p95, p99)
	}
	if p50 <= 0 {
		t.Fatal("p50 zero")
	}
	mean := s.AvgLatency()
	if p99 < mean {
		t.Errorf("p99 %.0f below mean %.1f", p99, mean)
	}
	// Empty stats: percentile must be safe.
	var empty Stats
	if empty.Percentile(0.9) != 0 {
		t.Error("empty percentile not zero")
	}
}
