package noc

import (
	"math/rand"
	"strings"
	"testing"

	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// TestCreditConservationUnderLoad audits the conservation invariants every
// few cycles while a loaded heterogeneous network runs — the strongest
// whole-simulator property check we have.
func TestCreditConservationUnderLoad(t *testing.T) {
	n := heteroDiagonalNet(t)
	rng := rand.New(rand.NewSource(99))
	for cycle := 0; cycle < 4000; cycle++ {
		for src := 0; src < 64; src++ {
			if rng.Float64() < 0.04 {
				n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 6})
			}
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
		if cycle%25 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
	}
	runUntilQuiesced(t, n, 200000)
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

func TestCreditConservationOnTorus(t *testing.T) {
	m := topology.NewTorus(8, 8)
	n, err := New(Config{
		Topo:           m,
		Routing:        routing.NewTorusXY(m),
		Routers:        []RouterConfig{{VCs: 3, BufDepth: 5}},
		FlitWidthBits:  192,
		WatchdogCycles: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for cycle := 0; cycle < 2500; cycle++ {
		for src := 0; src < 64; src++ {
			if rng.Float64() < 0.05 {
				n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: 6})
			}
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
		if cycle%50 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
	}
}

// TestFlitConservation checks that every injected flit is eventually
// consumed exactly once across a randomized workload mix of packet sizes.
func TestFlitConservation(t *testing.T) {
	n := newMeshNet(t)
	rng := rand.New(rand.NewSource(123))
	var injected, sizes int64
	n.SetOnPacket(func(p *Packet) { sizes += int64(p.NumFlits) })
	for cycle := 0; cycle < 2500; cycle++ {
		for src := 0; src < 64; src++ {
			if rng.Float64() < 0.03 {
				f := 1 + rng.Intn(8)
				n.Inject(&Packet{Src: src, Dst: rng.Intn(64), NumFlits: f})
				injected += int64(f)
			}
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	runUntilQuiesced(t, n, 300000)
	if sizes != injected {
		t.Fatalf("consumed %d flits of %d injected", sizes, injected)
	}
	if got := n.Stats().FlitsReceived; got != injected {
		t.Fatalf("stats flits %d, want %d", got, injected)
	}
	if n.InFlight() != 0 {
		t.Fatalf("%d flits still in flight after drain", n.InFlight())
	}
}

func TestDumpRouterShowsOccupancy(t *testing.T) {
	n := newMeshNet(t)
	n.Inject(&Packet{Src: 0, Dst: 7, NumFlits: 6})
	for i := 0; i < 6; i++ {
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	out := n.DumpRouter(0)
	if !strings.Contains(out, "router 0") {
		t.Fatalf("dump:\n%s", out)
	}
	if !strings.Contains(out, "flits") {
		t.Fatalf("dump shows no occupancy while a packet transits:\n%s", out)
	}
	runUntilQuiesced(t, n, 500)
	// Drained: dump shows only the header.
	out = n.DumpRouter(0)
	if strings.Contains(out, "head=") {
		t.Fatalf("dump shows residue after drain:\n%s", out)
	}
}
