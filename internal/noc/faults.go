package noc

// Fault injection and recovery. A fault.Plan armed via SetFaultPlan is
// applied at exact cycles at the top of Step, before any flit moves:
//
//   - Permanent link failures kill both directed endpoints: queued wire
//     flits and credits are destroyed, the ports refuse all future VC and
//     switch allocation, and the downstream input port loses its credit
//     channel. A fault-aware routing algorithm is rebuilt around the dead
//     links; packets that had not yet sent their head across the dead link
//     re-route, packets caught mid-flit are purged.
//   - Permanent router failures kill every link touching the router, purge
//     everything buffered inside it, and fail-stop the attached terminals.
//   - Transient faults open a window on one link direction during which
//     crossing flits are dropped outright or corrupted in flight; a header
//     checksum (computed at emission, verified at every delivery while
//     faults are armed) catches the corruption and the receiver drops the
//     flit.
//
// Any lost flit breaks its packet: the purge removes every remaining trace
// of the packet — NI streams, wire events, buffered flits, VC allocations —
// returning the freed buffer credits on live links so the credit-
// conservation invariant holds, and reports the loss through the OnDrop
// callback for the end-to-end reliability layer to recover.

import (
	"errors"
	"fmt"

	"heteronoc/internal/fault"
	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// ErrTerminalDown reports injection at (or to) a terminal whose router has
// fail-stopped.
var ErrTerminalDown = errors.New("noc: terminal attached to a failed router")

// DropReason classifies why a packet was purged from the network.
type DropReason uint8

const (
	DropNone       DropReason = iota
	DropLinkFail              // a flit was destroyed by a permanent link failure
	DropRouterFail            // the packet was buffered inside a failed router
	DropTransient             // a flit was dropped by a transient fault window
	DropCorrupt               // a flit failed the header-checksum check
	DropUnroutable            // no live route to the destination exists
	DropTermDown              // the source or destination terminal fail-stopped
)

func (d DropReason) String() string {
	switch d {
	case DropLinkFail:
		return "link-fail"
	case DropRouterFail:
		return "router-fail"
	case DropTransient:
		return "transient-drop"
	case DropCorrupt:
		return "checksum-drop"
	case DropUnroutable:
		return "unroutable"
	case DropTermDown:
		return "terminal-down"
	}
	return "none"
}

// SetFaultPlan arms a fault schedule. Events strike at the top of their
// cycle, before any flit moves, so seeded runs are exactly reproducible.
// Must be called before the first Step; the plan is validated against the
// network's topology. If the routing algorithm implements
// routing.FaultAware it is rebuilt after every permanent failure.
func (n *Network) SetFaultPlan(p *fault.Plan) error {
	if err := p.Validate(n.cfg.Topo); err != nil {
		return err
	}
	n.faultEvents = append([]fault.Event(nil), p.Events()...)
	n.faultNext = 0
	n.faultsArmed = true
	if n.linkState == nil {
		n.linkState = topology.NewLinkState(n.cfg.Topo)
	}
	if n.niDead == nil {
		n.niDead = make([]bool, len(n.nis))
	}
	n.faultAware, _ = n.alg.(routing.FaultAware)
	return nil
}

// LinkState returns the live link-state overlay, or nil when no fault plan
// is armed.
func (n *Network) LinkState() *topology.LinkState { return n.linkState }

// applyFaults strikes every event due at the current cycle.
func (n *Network) applyFaults() {
	permanent := false
	for n.faultNext < len(n.faultEvents) && n.faultEvents[n.faultNext].Cycle <= n.cycle {
		e := n.faultEvents[n.faultNext]
		n.faultNext++
		switch e.Kind {
		case fault.Transient:
			op := n.routers[e.Router].out[e.Port]
			if op.dead {
				continue // the link died first; nothing left to disturb
			}
			if until := e.Cycle + e.Duration - 1; until > op.faultUntil {
				op.faultUntil = until
			}
			op.faultCorrupt = e.Corrupt // on overlap the later event's mode wins
		case fault.LinkFail:
			if n.linkState.FailLink(e.Router, e.Port) {
				n.killLink(e.Router, e.Port)
				permanent = true
			}
		case fault.RouterFail:
			if !n.linkState.RouterFailed(e.Router) {
				n.killRouter(e.Router)
				permanent = true
			}
		}
	}
	if permanent {
		if n.faultAware != nil {
			n.faultAware.Rebuild(n.linkState)
		}
		n.sweepDeadVCs()
		n.purgeBroken()
	}
}

// killLink fail-stops both directions of the link at (r, p).
func (n *Network) killLink(r, p int) {
	op := n.routers[r].out[p]
	rev := n.routers[op.link.Router].out[op.link.Port]
	n.killPort(op, DropLinkFail)
	n.killPort(rev, DropLinkFail)
}

// killRouter fail-stops router r: every buffered packet is lost, every
// touching link dies, and the attached terminals go down with it.
func (n *Network) killRouter(r int) {
	n.linkState.FailRouter(r)
	rt := &n.routers[r]
	// Everything buffered inside the router is lost with it.
	for pi := range rt.in {
		ip := &rt.in[pi]
		for vi := range ip.vcs {
			vc := &ip.vcs[vi]
			n.markBroken(vc.cur, DropRouterFail)
			for i := int32(0); i < vc.buf.count; i++ {
				n.markBroken(vc.buf.at(i).Pkt, DropRouterFail)
			}
		}
	}
	for _, op := range rt.out {
		if op.isTerm {
			n.killPort(op, DropRouterFail) // flits on the ejection wire are lost
			continue
		}
		if op.dead {
			continue
		}
		rev := n.routers[op.link.Router].out[op.link.Port]
		n.killPort(op, DropRouterFail)
		n.killPort(rev, DropRouterFail)
	}
	for t := range n.nis {
		if n.nis[t].up.link.Router == r {
			n.killNI(t)
		}
	}
}

// killPort fail-stops one directed link endpoint: queued events are
// destroyed (flits on a dead wire are lost), all allocation is refused
// from now on, and the downstream input port loses its credit channel.
func (n *Network) killPort(op *outputPort, why DropReason) {
	if op.dead {
		return
	}
	op.dead = true
	for op.wire.n > 0 {
		we := op.wire.pop()
		n.flitsInNetwork--
		n.stats.FlitsLost++
		n.markBroken(we.flit.Pkt, why)
	}
	for op.creditQ.n > 0 {
		op.creditQ.pop()
	}
	for v := range op.credits {
		op.credits[v] = 0
	}
	op.creditMask = 0
	for v := range op.owner {
		op.owner[v] = nil
	}
	if op.router >= 0 {
		n.evMask[op.router] &^= 1 << uint(op.port)
	}
	if !op.isTerm {
		n.routers[op.link.Router].in[op.link.Port].upstream = nil
	}
}

// killNI fail-stops a terminal whose router died: in-flight streams lose
// their packets, queued packets are refused, and injection is rejected
// from now on (TryInject returns ErrTerminalDown).
func (n *Network) killNI(t int) {
	q := &n.nis[t]
	if q.up.dead {
		return
	}
	n.niDead[t] = true
	for i := range q.streams {
		n.markBroken(q.streams[i].pkt, DropTermDown)
	}
	n.killPort(&q.up, DropTermDown)
	for q.queued() > 0 {
		p := q.pop()
		n.queuedPackets--
		n.stats.PacketsUnroutable++
		if n.onDrop != nil {
			n.onDrop(p, DropTermDown)
		}
	}
}

// sweepDeadVCs visits every input VC routed toward a now-dead output port.
// A VC that has not yet sent its head flit is reset to idle so the packet
// re-routes over the rebuilt tables; a VC caught mid-packet has lost flits
// to the dead wire, so its packet is broken.
func (n *Network) sweepDeadVCs() {
	for r := range n.routers {
		rt := &n.routers[r]
		for pi := range rt.in {
			ip := &rt.in[pi]
			for vi := range ip.vcs {
				vc := &ip.vcs[vi]
				if vc.state == vcIdle || !rt.out[vc.outPort].dead {
					continue
				}
				front := vc.buf.peek()
				if front != nil && front.Pkt == vc.cur && front.Kind.IsHead() {
					// Nothing has crossed the dead link yet: re-route.
					// Ownership on the dead port was already cleared by
					// killPort.
					vc.cur = nil
					vc.state = vcIdle
					vc.waitCycles = 0
					bit := uint32(1) << uint(vi)
					ip.saMask &^= bit
					ip.raMask |= bit
					continue
				}
				n.markBroken(vc.cur, DropLinkFail)
			}
		}
	}
}

// markBroken queues a packet for purging; the first cause wins.
func (n *Network) markBroken(p *Packet, why DropReason) {
	if p == nil || p.broken {
		return
	}
	p.broken = true
	p.dropWhy = why
	n.brokenQ = append(n.brokenQ, p)
}

// purgeBroken removes every marked packet from the network.
func (n *Network) purgeBroken() {
	if len(n.brokenQ) == 0 {
		return
	}
	for i := 0; i < len(n.brokenQ); i++ {
		n.purgePacket(n.brokenQ[i])
	}
	n.brokenQ = n.brokenQ[:0]
}

// purgePacket removes every remaining trace of a broken packet: its NI
// stream, its wire events, its buffered flits and its VC allocations.
// Buffer slots freed downstream return their credits to upstream feeders
// whose link is still alive, preserving credit conservation; credits of
// dead links died with them.
func (n *Network) purgePacket(p *Packet) {
	q := &n.nis[p.Src]
	k := 0
	for i := range q.streams {
		st := q.streams[i]
		if st.pkt == p {
			if st.vc < len(q.up.owner) && q.up.owner[st.vc] == p {
				q.up.owner[st.vc] = nil
			}
			continue
		}
		q.streams[k] = st
		k++
	}
	q.streams = q.streams[:k]
	n.filterWire(&q.up, p)
	for r := range n.routers {
		rt := &n.routers[r]
		for pi := range rt.in {
			n.purgeInputPort(rt, pi, p)
		}
		for _, op := range rt.out {
			n.filterWire(op, p)
		}
	}
	if p.dropWhy == DropUnroutable || p.dropWhy == DropTermDown {
		n.stats.PacketsUnroutable++
	} else {
		n.stats.PacketsLost++
	}
	if n.onDrop != nil {
		n.onDrop(p, p.dropWhy)
	}
}

// purgeInputPort removes p's flits from one input port and repairs the
// VC states, candidate masks and flit counters.
func (n *Network) purgeInputPort(rt *router, pi int, p *Packet) {
	ip := &rt.in[pi]
	for vi := range ip.vcs {
		vc := &ip.vcs[vi]
		removed := 0
		if vc.buf.count > 0 {
			removed = vc.buf.removePacket(p)
		}
		if removed == 0 && vc.cur != p {
			continue
		}
		if removed > 0 {
			ip.flits -= removed
			n.inFlits[rt.id] -= int32(removed)
			n.flitsInNetwork -= removed
			n.stats.FlitsLost += int64(removed)
			// The freed buffer slots return their credits to the feeder,
			// unless the feeding link died (its credits died with it).
			if up := ip.upstream; up != nil && !up.dead {
				for i := 0; i < removed; i++ {
					up.creditQ.push(creditEvt{vc: vi, at: n.cycle + 1})
				}
				if up.router >= 0 {
					n.evMask[up.router] |= 1 << uint(up.port)
				}
			}
		}
		if vc.cur == p {
			out := rt.out[vc.outPort]
			if vc.state == vcActive && int(vc.outVC) < len(out.owner) && out.owner[vc.outVC] == p {
				out.owner[vc.outVC] = nil
			}
			vc.cur = nil
			vc.state = vcIdle
			vc.waitCycles = 0
		}
		bit := uint32(1) << uint(vi)
		if vc.buf.count > 0 {
			vc.headArrive = vc.buf.buf[vc.buf.head].arrive
			if vc.state == vcActive {
				ip.saMask |= bit
				ip.raMask &^= bit
			} else {
				ip.raMask |= bit
				ip.saMask &^= bit
			}
		} else {
			ip.raMask &^= bit
			ip.saMask &^= bit
		}
	}
	if ip.flits == 0 {
		n.portMask[rt.id] &^= 1 << uint(pi)
	}
}

// filterWire removes p's flits from an output port's wire queue,
// returning their buffer credits immediately (the flits never reach the
// downstream buffer). Order of the surviving events is preserved.
func (n *Network) filterWire(op *outputPort, p *Packet) {
	if op.wire.n == 0 {
		return
	}
	hit := false
	for i := 0; i < op.wire.n; i++ {
		if op.wire.at(i).flit.Pkt == p {
			hit = true
			break
		}
	}
	if !hit {
		return
	}
	keep := make([]wireEvt, 0, op.wire.n)
	for op.wire.n > 0 {
		we := op.wire.pop()
		if we.flit.Pkt != p {
			keep = append(keep, we)
			continue
		}
		n.flitsInNetwork--
		n.stats.FlitsLost++
		if op.credits != nil {
			op.credits[we.outVC]++
			op.creditMask |= 1 << uint(we.outVC)
		}
	}
	for _, we := range keep {
		op.wire.push(we)
	}
	if op.router >= 0 && op.wire.n == 0 && op.creditQ.n == 0 {
		n.evMask[op.router] &^= 1 << uint(op.port)
	}
}

// dropWireFlit destroys a flit at the moment of link delivery (transient
// drop or checksum-detected corruption). The buffer slot it reserved is
// credited back immediately; the packet is broken and will be purged.
func (n *Network) dropWireFlit(op *outputPort, we wireEvt, why DropReason) {
	n.flitsInNetwork--
	if why == DropCorrupt {
		n.stats.FlitsCorrupted++
	} else {
		n.stats.FlitsDroppedFault++
	}
	if op.credits != nil {
		op.credits[we.outVC]++
		op.creditMask |= 1 << uint(we.outVC)
	}
	n.markBroken(we.flit.Pkt, why)
}

// csumFlip is the bit pattern a corrupting transient fault XORs into a
// crossing flit's checksum, modeling an in-flight header bit error.
const csumFlip = 0xA5A5

// headerChecksum hashes the flit header fields (packet ID, endpoints,
// sequence number, kind) into 16 bits. Only fault-armed networks compute
// and verify it, so fault-free runs pay nothing.
func headerChecksum(f *Flit) uint16 {
	h := f.Pkt.ID*0x9E3779B97F4A7C15 ^
		uint64(uint32(f.Seq))<<32 ^ uint64(f.Kind)<<24 ^
		uint64(uint32(f.Pkt.Src))<<8 ^ uint64(uint32(f.Pkt.Dst))
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 29
	return uint16(h ^ h>>16 ^ h>>32 ^ h>>48)
}

// StalledDump renders the state of up to maxRouters routers still holding
// flits. It backs the deadlock watchdog's error message and the /healthz
// stall report of the live-introspection server.
func (n *Network) StalledDump(maxRouters int) string { return n.stalledDump(maxRouters) }

// stalledDump renders the state of up to maxRouters routers still holding
// flits, for the deadlock watchdog's error message.
func (n *Network) stalledDump(maxRouters int) string {
	var b []byte
	more := 0
	for r := range n.routers {
		if n.inFlits[r] == 0 {
			continue
		}
		if maxRouters == 0 {
			more++
			continue
		}
		maxRouters--
		b = append(b, n.DumpRouter(r)...)
	}
	if more > 0 {
		b = append(b, fmt.Sprintf("... and %d more routers holding flits\n", more)...)
	}
	return string(b)
}
