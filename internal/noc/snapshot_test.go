package noc

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"heteronoc/internal/ckpt"
	"heteronoc/internal/fault"
	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// injEvent is one scheduled injection. Snapshot tests drive traffic from
// precomputed schedules so the exact same packets arrive in both the
// straight-through and the checkpoint-restored run (the RNG itself lives
// outside the Network and is not checkpointed).
type injEvent struct {
	cycle    int64
	src, dst int
	flits    int
}

func makeSchedule(seed int64, terminals int, cycles int64, rate float64, flits int) []injEvent {
	rng := rand.New(rand.NewSource(seed))
	var evs []injEvent
	for c := int64(1); c <= cycles; c++ {
		for s := 0; s < terminals; s++ {
			if rng.Float64() < rate {
				evs = append(evs, injEvent{cycle: c, src: s, dst: rng.Intn(terminals), flits: flits})
			}
		}
	}
	return evs
}

// playSchedule advances net to endCycle, injecting due events. Injection
// errors (dead terminals, unroutable destinations) are expected during
// fault runs and are skipped identically on every replay.
func playSchedule(t testing.TB, n *Network, evs []injEvent, next int, endCycle int64) int {
	t.Helper()
	for n.Cycle() < endCycle {
		at := n.Cycle() + 1 // packets created at the top of the next cycle
		for next < len(evs) && evs[next].cycle <= at {
			e := evs[next]
			next++
			_ = n.TryInject(&Packet{Src: e.src, Dst: e.dst, NumFlits: e.flits})
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return next
}

type snapCase struct {
	name    string
	build   func(t testing.TB) *Network
	seed    int64
	rate    float64
	flits   int
	mid     int64 // checkpoint cycle
	end     int64
	workers int
}

func snapCases() []snapCase {
	mk := func(workers int) func(t testing.TB) *Network {
		return func(t testing.TB) *Network {
			n := newMeshNet(t)
			if workers > 0 {
				n.SetShardWorkers(workers)
				t.Cleanup(n.Close)
			}
			return n
		}
	}
	faulty := func(t testing.TB) *Network {
		m := topology.NewMesh(8, 8)
		plan := &fault.Plan{}
		plan.FailLink(400, m.RouterAt(3, 3), topology.PortEast)
		plan.FailRouter(700, m.RouterAt(5, 5))
		// Transient window straddling the checkpoint cycle (600): the
		// snapshot is taken mid-window with the drop mode active.
		plan.AddTransient(550, m.RouterAt(2, 2), topology.PortEast, 120, false)
		plan.AddTransient(590, m.RouterAt(4, 1), topology.PortNorth, 80, true)
		return faultMeshNet(t, plan)
	}
	return []snapCase{
		{name: "mesh_low", build: mk(0), seed: 11, rate: 0.02, flits: 6, mid: 500, end: 1500},
		{name: "mesh_high", build: mk(0), seed: 12, rate: 0.06, flits: 6, mid: 777, end: 1600},
		{name: "sharded2", build: mk(2), seed: 13, rate: 0.05, flits: 6, mid: 640, end: 1500, workers: 2},
		{name: "faults_midwindow", build: faulty, seed: 14, rate: 0.04, flits: 6, mid: 600, end: 2000},
	}
}

// TestSnapshotRoundTripMidRun checkpoints at an arbitrary mid-run cycle,
// restores into a fresh network, finishes the run, and requires the final
// fingerprint to be bit-identical to the straight-through run — including
// mid-fault-window and with the restored network running sharded.
func TestSnapshotRoundTripMidRun(t *testing.T) {
	for _, tc := range snapCases() {
		t.Run(tc.name, func(t *testing.T) {
			evs := makeSchedule(tc.seed, 64, tc.end, tc.rate, tc.flits)

			straight := tc.build(t)
			playSchedule(t, straight, evs, 0, tc.end)
			want := straight.Fingerprint()

			orig := tc.build(t)
			next := playSchedule(t, orig, evs, 0, tc.mid)
			midFP := orig.Fingerprint()
			data, err := orig.Snapshot(nil)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}

			// The snapshot itself records the mid-run fingerprint.
			h, err := ckpt.ReadHeader(data)
			if err != nil {
				t.Fatal(err)
			}
			if h.Fingerprint != midFP || h.Cycle != tc.mid {
				t.Fatalf("header (cycle %d, fp %016x) != live (cycle %d, fp %016x)",
					h.Cycle, h.Fingerprint, tc.mid, midFP)
			}

			restored := tc.build(t)
			if err := restored.RestoreSnapshot(data, nil); err != nil {
				t.Fatalf("RestoreSnapshot: %v", err)
			}
			if err := restored.CheckInvariants(); err != nil {
				t.Fatalf("restored network invariants: %v", err)
			}
			playSchedule(t, restored, evs, next, tc.end)
			if got := restored.Fingerprint(); got != want {
				t.Errorf("restored run fingerprint %016x != straight-through %016x", got, want)
			}

			// The original, uninterrupted by the snapshot, must also finish
			// identically: Snapshot is observation-only.
			playSchedule(t, orig, evs, next, tc.end)
			if got := orig.Fingerprint(); got != want {
				t.Errorf("snapshotted-then-continued fingerprint %016x != straight-through %016x", got, want)
			}
		})
	}
}

// TestSnapshotRestoreAcrossWorkerCounts restores one checkpoint into
// networks running with 1, 2 and GOMAXPROCS shard workers; all must
// finish bit-identical to the sequential straight-through run.
func TestSnapshotRestoreAcrossWorkerCounts(t *testing.T) {
	const seed, mid, end = 21, 600, 1500
	evs := makeSchedule(seed, 64, end, 0.05, 6)

	straight := newMeshNet(t)
	playSchedule(t, straight, evs, 0, end)
	want := straight.Fingerprint()

	orig := newMeshNet(t)
	next := playSchedule(t, orig, evs, 0, mid)
	data, err := orig.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		restored := newMeshNet(t)
		restored.SetShardWorkers(workers)
		t.Cleanup(restored.Close)
		if err := restored.RestoreSnapshot(data, nil); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		playSchedule(t, restored, evs, next, end)
		if got := restored.Fingerprint(); got != want {
			t.Errorf("workers=%d: fingerprint %016x != sequential %016x", workers, got, want)
		}
	}
}

// TestSnapshotRejectsMismatchedTarget verifies a checkpoint refuses to
// load into a differently shaped network instead of corrupting it.
func TestSnapshotRejectsMismatchedTarget(t *testing.T) {
	n := newMeshNet(t)
	data, err := n.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}

	// A smaller mesh differs in router count; a 4x16 mesh has the same 64
	// routers and terminals as the 8x8 source but a different corner/edge
	// radix pattern, so only the per-router signature catches it. The error
	// must name the mismatched dimension, not just fail opaquely.
	for _, tc := range []struct{ w, h int }{{4, 4}, {4, 16}} {
		m := topology.NewMesh(tc.w, tc.h)
		target, err := New(Config{
			Topo:          m,
			Routing:       routing.NewXY(m),
			Routers:       []RouterConfig{{VCs: 3, BufDepth: 5}},
			FlitWidthBits: 192,
		})
		if err != nil {
			t.Fatal(err)
		}
		err = target.RestoreSnapshot(data, nil)
		if err == nil {
			t.Fatalf("restore into a %dx%d mesh accepted an 8x8 checkpoint", tc.w, tc.h)
		}
		if !strings.Contains(err.Error(), "count") && !strings.Contains(err.Error(), "topology") {
			t.Errorf("%dx%d mismatch error does not name the dimension: %v", tc.w, tc.h, err)
		}
	}

	// A stepped target is not fresh.
	stepped := newMeshNet(t)
	if err := stepped.Step(); err != nil {
		t.Fatal(err)
	}
	if err := stepped.RestoreSnapshot(data, nil); err == nil {
		t.Fatal("restore into a stepped network was accepted")
	}
}

// TestSnapshotCompactQuiesced pins down the v2 steady-state compaction: a
// quiesced 32x32 (1024-router) network — idle VCs one flag byte, quiet
// output ports one flag varint — must checkpoint into a few bytes per
// router rather than spelling out pristine credit arrays and empty event
// queues, and the compact checkpoint must still restore bit-identically.
func TestSnapshotCompactQuiesced(t *testing.T) {
	build := func() *Network {
		m := topology.NewMesh(32, 32)
		n, err := New(Config{
			Topo:           m,
			Routing:        routing.NewXY(m),
			Routers:        []RouterConfig{{VCs: 3, BufDepth: 5}},
			FlitWidthBits:  192,
			WatchdogCycles: 20000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n := build()
	evs := makeSchedule(71, 1024, 60, 0.02, 6)
	playSchedule(t, n, evs, 0, 60)
	runUntilQuiesced(t, n, 1<<20)
	data, err := n.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	// ~5 ports x (1-byte flag + occasional arb/stats group) + 3 idle-VC
	// bytes per port per router, plus per-router stat varints: well under
	// 128 bytes/router. The pre-compaction format needed several hundred.
	if max := 128 * 1024; len(data) > max {
		t.Errorf("quiesced 32x32 checkpoint is %d bytes, want <= %d", len(data), max)
	}
	restored := build()
	if err := restored.RestoreSnapshot(data, nil); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatalf("restored network invariants: %v", err)
	}
	// Re-snapshotting the restored network must reproduce the checkpoint
	// byte for byte: the compact form never encodes stale scratch fields,
	// so canonicalization is idempotent.
	again, err := restored.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Errorf("restore-then-snapshot differs from original checkpoint (%d vs %d bytes)", len(again), len(data))
	}
}

// TestSnapshotCorruptionIsRejected flips bytes across the checkpoint and
// requires every corruption to be caught (by CRC) rather than restored.
func TestSnapshotCorruptionIsRejected(t *testing.T) {
	n := newMeshNet(t)
	evs := makeSchedule(31, 64, 300, 0.05, 6)
	playSchedule(t, n, evs, 0, 300)
	data, err := n.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i += len(data)/64 + 1 {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x20
		target := newMeshNet(t)
		if err := target.RestoreSnapshot(bad, nil); err == nil {
			t.Fatalf("corrupted byte %d restored without error", i)
		}
	}
	if err := newMeshNet(t).RestoreSnapshot(data[:len(data)/2], nil); err == nil {
		t.Fatal("truncated checkpoint restored without error")
	}
}

// TestReliableSnapshotWithPendingTimers checkpoints the reliability layer
// while transfers are pending retransmission (a fault plan guarantees
// losses) and requires the restored run to finish with identical network
// and reliability fingerprints.
func TestReliableSnapshotWithPendingTimers(t *testing.T) {
	m := topology.NewMesh(8, 8)
	newPlan := func() *fault.Plan {
		plan := &fault.Plan{}
		plan.FailLink(200, m.RouterAt(3, 3), topology.PortEast)
		plan.AddTransient(150, m.RouterAt(4, 4), topology.PortNorth, 100, false)
		return plan
	}
	build := func() *Reliable {
		return NewReliable(faultMeshNet(t, newPlan()), ReliableConfig{Timeout: 256, MaxRetries: 6})
	}

	const terminals, end = 64, 6000
	sends := makeSchedule(41, terminals, 400, 0.03, 6)

	run := func(rel *Reliable, next int, endCycle int64, snapshotAt int64) (int, []byte) {
		var snap []byte
		for rel.net.Cycle() < endCycle {
			if snapshotAt > 0 && rel.net.Cycle() == snapshotAt {
				var err error
				if snap, err = rel.Snapshot(); err != nil {
					t.Fatalf("Reliable.Snapshot: %v", err)
				}
				if rel.Pending() == 0 {
					t.Fatal("test expected pending transfers at the snapshot point")
				}
				return next, snap
			}
			at := rel.net.Cycle() + 1
			for next < len(sends) && sends[next].cycle <= at {
				e := sends[next]
				next++
				_, _ = rel.Send(e.src, e.dst, e.flits, 0, int64(e.src)<<32|int64(e.dst))
			}
			if err := rel.Step(); err != nil {
				t.Fatal(err)
			}
			if rel.Quiesced() && next >= len(sends) {
				break
			}
		}
		return next, nil
	}

	straight := build()
	run(straight, 0, end, 0)
	wantNet := straight.net.Fingerprint()
	wantRel := straight.Stats().Fingerprint()

	orig := build()
	next, snap := run(orig, 0, end, 300) // mid transient window, retries pending
	if snap == nil {
		t.Fatal("no snapshot taken")
	}

	restored := build()
	if err := restored.RestoreSnapshot(snap); err != nil {
		t.Fatalf("Reliable.RestoreSnapshot: %v", err)
	}
	if err := restored.net.CheckInvariants(); err != nil {
		t.Fatalf("restored invariants: %v", err)
	}
	run(restored, next, end, 0)
	if got := restored.net.Fingerprint(); got != wantNet {
		t.Errorf("restored network fingerprint %016x != straight-through %016x", got, wantNet)
	}
	if got := restored.Stats().Fingerprint(); got != wantRel {
		t.Errorf("restored reliable fingerprint %016x != straight-through %016x", got, wantRel)
	}

	// The snapshotted original finishes identically too.
	run(orig, next, end, 0)
	if got := orig.net.Fingerprint(); got != wantNet {
		t.Errorf("continued network fingerprint %016x != straight-through %016x", got, wantNet)
	}
}

// TestStepUntilQuiescedMatchesStepLoop pins the idle fast-forward against
// the plain Step spin: identical fingerprints (cycle count included) on a
// drain from a loaded state.
func TestStepUntilQuiescedMatchesStepLoop(t *testing.T) {
	load := func(n *Network) {
		rng := rand.New(rand.NewSource(51))
		for c := 0; c < 200; c++ {
			for s := 0; s < 64; s++ {
				if rng.Float64() < 0.05 {
					n.Inject(&Packet{Src: s, Dst: rng.Intn(64), NumFlits: 6})
				}
			}
			if err := n.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}

	spin := newMeshNet(t)
	load(spin)
	for !spin.Quiesced() {
		if err := spin.Step(); err != nil {
			t.Fatal(err)
		}
	}

	fast := newMeshNet(t)
	load(fast)
	if _, err := fast.StepUntilQuiesced(100000); err != nil {
		t.Fatal(err)
	}

	if a, b := spin.Fingerprint(), fast.Fingerprint(); a != b {
		t.Errorf("fast-forward fingerprint %016x != spin %016x", b, a)
	}
	if spin.Cycle() != fast.Cycle() {
		t.Errorf("fast-forward stopped at cycle %d, spin at %d", fast.Cycle(), spin.Cycle())
	}
}

// TestReliableStepUntilQuiescedMatchesStepLoop pins the timer-aware
// fast-forward: a lossy run whose tail is dominated by retransmission
// timeouts must finish at the same cycle with the same fingerprints.
func TestReliableStepUntilQuiescedMatchesStepLoop(t *testing.T) {
	m := topology.NewMesh(8, 8)
	newPlan := func() *fault.Plan {
		plan := &fault.Plan{}
		plan.AddTransient(50, m.RouterAt(3, 3), topology.PortEast, 200, false)
		return plan
	}
	load := func(rel *Reliable) {
		rng := rand.New(rand.NewSource(61))
		for c := 0; c < 120; c++ {
			for s := 0; s < 64; s++ {
				if rng.Float64() < 0.02 {
					_, _ = rel.Send(s, rng.Intn(64), 6, 0, nil)
				}
			}
			if err := rel.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}

	spin := NewReliable(faultMeshNet(t, newPlan()), ReliableConfig{Timeout: 512})
	load(spin)
	for !spin.Quiesced() {
		if err := spin.Step(); err != nil {
			t.Fatal(err)
		}
	}

	fast := NewReliable(faultMeshNet(t, newPlan()), ReliableConfig{Timeout: 512})
	load(fast)
	if _, err := fast.StepUntilQuiesced(1 << 20); err != nil {
		t.Fatal(err)
	}

	if a, b := spin.net.Fingerprint(), fast.net.Fingerprint(); a != b {
		t.Errorf("fast-forward net fingerprint %016x != spin %016x", b, a)
	}
	if a, b := spin.Stats().Fingerprint(), fast.Stats().Fingerprint(); a != b {
		t.Errorf("fast-forward reliable fingerprint %016x != spin %016x", b, a)
	}
	if spin.net.Cycle() != fast.net.Cycle() {
		t.Errorf("fast-forward stopped at cycle %d, spin at %d", fast.net.Cycle(), spin.net.Cycle())
	}
}
