package routing

import (
	"errors"
	"testing"

	"heteronoc/internal/topology"
)

// portBetween finds the output port of router a that reaches router b, or
// -1 when they are not adjacent.
func portBetween(t topology.Topology, a, b int) int {
	for p := 0; p < t.Radix(a); p++ {
		if link, ok := t.Neighbor(a, p); ok && link.Router == b {
			return p
		}
	}
	return -1
}

// walkLive verifies a router path steps only across live links and
// returns false on any dead or missing edge.
func walkLive(ls *topology.LinkState, path []int) bool {
	for i := 1; i < len(path); i++ {
		p := portBetween(ls.Topology(), path[i-1], path[i])
		if p < 0 || !ls.Up(path[i-1], p) {
			return false
		}
	}
	return true
}

func TestFaultTableFaultFreePathsAreMinimal(t *testing.T) {
	m := topology.NewMesh(8, 8)
	ft := NewFaultTable(m, FaultTableConfig{})
	for src := 0; src < 64; src += 3 {
		for dst := 0; dst < 64; dst += 5 {
			path := ft.PathRouters(src, dst)
			if len(path)-1 != m.HopsXY(src, dst) {
				t.Fatalf("%d->%d path %v has %d hops, want %d",
					src, dst, path, len(path)-1, m.HopsXY(src, dst))
			}
		}
	}
}

func TestBigRoutersBreakTiesWithoutLengthening(t *testing.T) {
	m := topology.NewMesh(8, 8)
	big := diagonalBig(m)
	plain := NewFaultTable(m, FaultTableConfig{})
	biased := NewFaultTable(m, FaultTableConfig{Big: big})
	countBig := func(path []int) int {
		n := 0
		for _, r := range path {
			if big[r] {
				n++
			}
		}
		return n
	}
	plainBig, biasedBig := 0, 0
	for src := 0; src < 64; src++ {
		for dst := 0; dst < 64; dst++ {
			bp := biased.PathRouters(src, dst)
			// The bias must never pay an extra hop: every biased path is
			// still a shortest path.
			if len(bp)-1 != m.HopsXY(src, dst) {
				t.Fatalf("%d->%d biased path %v has %d hops, want %d",
					src, dst, bp, len(bp)-1, m.HopsXY(src, dst))
			}
			plainBig += countBig(plain.PathRouters(src, dst))
			biasedBig += countBig(bp)
		}
	}
	if biasedBig <= plainBig {
		t.Errorf("bias routed through %d big-router visits vs %d unbiased — tie-break has no effect",
			biasedBig, plainBig)
	}
}

func TestRebuildRoutesAroundDeadLinks(t *testing.T) {
	m := topology.NewMesh(8, 8)
	ft := NewFaultTable(m, FaultTableConfig{Big: diagonalBig(m)})
	ls := topology.NewLinkState(m)
	// Cut a vertical slice of the mesh except one row: columns 3|4
	// connect only through row 7.
	for y := 0; y < 7; y++ {
		ls.FailLink(m.RouterAt(3, y), topology.PortEast)
	}
	ft.Rebuild(ls)
	for src := 0; src < 64; src += 7 {
		for dst := 0; dst < 64; dst += 3 {
			if !ft.Reachable(src, dst) {
				t.Fatalf("%d->%d unreachable on a connected graph", src, dst)
			}
			if err := ft.RouteError(src, dst); err != nil {
				t.Fatalf("RouteError(%d,%d) = %v on a connected graph", src, dst, err)
			}
			path := ft.PathRouters(src, dst)
			if !walkLive(ls, path) {
				t.Fatalf("%d->%d path %v crosses a dead link", src, dst, path)
			}
		}
	}
	// A flow across the cut must detour through row 7.
	path := ft.PathRouters(m.RouterAt(3, 0), m.RouterAt(4, 0))
	if len(path)-1 <= 1 {
		t.Fatalf("cross-cut path %v did not detour", path)
	}
	// Restoring a nil link state restores minimal routes.
	ft.Rebuild(nil)
	if got := ft.PathRouters(m.RouterAt(3, 0), m.RouterAt(4, 0)); len(got)-1 != 1 {
		t.Errorf("fault-free rebuild path %v, want direct hop", got)
	}
}

func TestUnreachableIsReportedNotHung(t *testing.T) {
	m := topology.NewMesh(8, 8)
	ft := NewFaultTable(m, FaultTableConfig{})
	ls := topology.NewLinkState(m)
	// Isolate corner router 0 without fail-stopping it.
	ls.FailLink(0, topology.PortEast)
	ls.FailLink(0, topology.PortSouth)
	ft.Rebuild(ls)
	if ft.Reachable(0, 63) || ft.Reachable(63, 0) {
		t.Fatal("severed terminal reported reachable")
	}
	err := ft.RouteError(0, 63)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("RouteError = %v, want ErrUnreachable", err)
	}
	if d := ft.NextHop(5, 63, 0, classTable); d.OutPort >= 0 {
		t.Errorf("NextHop toward severed terminal returned live port %d", d.OutPort)
	}
	if p := ft.PathRouters(63, 0); p != nil {
		t.Errorf("PathRouters to severed terminal = %v, want nil", p)
	}
	// The terminal still reaches itself.
	if !ft.Reachable(0, 0) {
		t.Error("severed terminal cannot reach itself")
	}
}

func TestFailedRouterIsUnreachable(t *testing.T) {
	m := topology.NewMesh(8, 8)
	ft := NewFaultTable(m, FaultTableConfig{})
	ls := topology.NewLinkState(m)
	ls.FailRouter(27)
	ft.Rebuild(ls)
	if ft.Reachable(0, 27) || ft.Reachable(27, 0) || ft.Reachable(27, 27) {
		t.Error("fail-stopped router reported reachable")
	}
	if d := ft.NextHop(26, 0, 27, classTable); d.OutPort >= 0 {
		t.Errorf("NextHop toward failed router returned port %d", d.OutPort)
	}
	if d := ft.EscapeHop(26, 0, 27); d.OutPort >= 0 {
		t.Errorf("EscapeHop toward failed router returned port %d", d.OutPort)
	}
}

// TestEscapeForestReachesEverywhere follows the escape-VC tree hop by hop:
// from every router to every reachable destination the chain must arrive
// within NumRouters steps, using only live links.
func TestEscapeForestReachesEverywhere(t *testing.T) {
	m := topology.NewMesh(8, 8)
	ft := NewFaultTable(m, FaultTableConfig{})
	ls := topology.NewLinkState(m)
	for _, cut := range [][2]int{
		{m.RouterAt(2, 2), topology.PortEast},
		{m.RouterAt(5, 1), topology.PortSouth},
		{m.RouterAt(0, 4), topology.PortEast},
		{m.RouterAt(6, 6), topology.PortSouth},
	} {
		ls.FailLink(cut[0], cut[1])
	}
	ft.Rebuild(ls)
	n := m.NumRouters()
	for dst := 0; dst < 64; dst++ {
		dstR, _ := m.TerminalRouter(dst)
		for r := 0; r < n; r++ {
			if !ft.Reachable(r, dst) {
				continue
			}
			at := r
			for steps := 0; at != dstR; steps++ {
				if steps > n {
					t.Fatalf("escape chain from %d to %d loops", r, dstR)
				}
				d := ft.EscapeHop(at, r, dst)
				if d.VCClass != classEscape {
					t.Fatalf("escape hop returned class %d", d.VCClass)
				}
				link, ok := m.Neighbor(at, d.OutPort)
				if !ok || !ls.Up(at, d.OutPort) {
					t.Fatalf("escape chain from %d to %d crosses dead port %d.%d", r, dstR, at, d.OutPort)
				}
				at = link.Router
			}
		}
	}
}

func TestRebuildIsDeterministic(t *testing.T) {
	m := topology.NewMesh(8, 8)
	build := func() *FaultTable {
		ft := NewFaultTable(m, FaultTableConfig{Big: diagonalBig(m)})
		ls := topology.NewLinkState(m)
		ls.FailLink(m.RouterAt(1, 1), topology.PortEast)
		ls.FailRouter(m.RouterAt(6, 2))
		ft.Rebuild(ls)
		return ft
	}
	a, b := build(), build()
	for src := 0; src < 64; src += 2 {
		for dst := 0; dst < 64; dst += 3 {
			pa, pb := a.PathRouters(src, dst), b.PathRouters(src, dst)
			if len(pa) != len(pb) {
				t.Fatalf("%d->%d differs across identical rebuilds: %v vs %v", src, dst, pa, pb)
			}
			for i := range pa {
				if pa[i] != pb[i] {
					t.Fatalf("%d->%d differs across identical rebuilds: %v vs %v", src, dst, pa, pb)
				}
			}
		}
	}
}

func TestFaultTableVCClasses(t *testing.T) {
	m := topology.NewMesh(8, 8)
	ft := NewFaultTable(m, FaultTableConfig{})
	if ft.NumVCClasses() != 2 {
		t.Fatalf("NumVCClasses = %d, want 2 (table + escape)", ft.NumVCClasses())
	}
	if lo, hi := ft.ClassVCs(classEscape, 4); lo != 0 || hi != 1 {
		t.Errorf("escape class VCs [%d,%d), want [0,1)", lo, hi)
	}
	if lo, hi := ft.ClassVCs(classTable, 4); lo != 1 || hi != 4 {
		t.Errorf("table class VCs [%d,%d), want [1,4)", lo, hi)
	}
	// Degenerate single-VC routers share VC 0 between classes.
	if lo, hi := ft.ClassVCs(classTable, 1); lo != 0 || hi != 1 {
		t.Errorf("single-VC table class VCs [%d,%d), want [0,1)", lo, hi)
	}
}
