package routing

import (
	"container/heap"

	"heteronoc/internal/topology"
)

// VC class conventions for TableXY (see the package comment): escape
// packets drain on the reserved VC 0 under X-Y routing; table-routed
// packets are confined to the non-escape VCs; background X-Y packets may
// use any VC because dimension-ordered routing cannot deadlock.
const (
	classEscape = 0
	classTable  = 1
	classAnyXY  = 2
)

// TableXY implements the asymmetric-CMP routing of Section 7: packets whose
// source or destination terminal is flagged (attached to a large core)
// follow precomputed minimal zig-zag paths that maximize the number of big
// routers visited, while all other packets use plain X-Y. Because the
// zig-zag paths take turns in both orders they are not deadlock free on
// their own; a reserved escape VC (VC 0, X-Y routed) provides the
// deadlock-free drain required by the paper's "reserved escape VCs in the
// big routers".
type TableXY struct {
	topo    *topology.Mesh
	xy      *XY
	flagged []bool
	big     []bool
	// next[dst][router] is the output port toward terminal dst on the
	// zig-zag network.
	next [][]int
	// escapeAfter is the VC-allocation starvation threshold in cycles.
	escapeAfter int
}

// TableXYConfig parameterizes table construction.
type TableXYConfig struct {
	// Flagged marks the terminals whose flows are table routed.
	Flagged []int
	// Big marks big routers by router ID; links arriving at a big router
	// are discounted so minimal paths prefer them.
	Big []bool
	// EscapeThreshold is the VA starvation limit in cycles before a packet
	// is diverted to the escape network (default 64).
	EscapeThreshold int
}

// NewTableXY builds the routing tables with a Dijkstra pass per destination
// over minimal-direction edges, where a hop costs less when it lands on a
// big router. Ties break deterministically by port order, yielding the
// X-Y-X-Y staircases of the paper's Figure 14(a).
func NewTableXY(t *topology.Mesh, cfg TableXYConfig) *TableXY {
	if t.Wrap() {
		panic("routing: TableXY requires a mesh, not a torus")
	}
	ta := &TableXY{
		topo:        t,
		xy:          NewXY(t),
		flagged:     make([]bool, t.NumTerminals()),
		big:         cfg.Big,
		escapeAfter: cfg.EscapeThreshold,
	}
	if ta.escapeAfter <= 0 {
		ta.escapeAfter = 64
	}
	if ta.big == nil {
		ta.big = make([]bool, t.NumRouters())
	}
	for _, f := range cfg.Flagged {
		ta.flagged[f] = true
	}
	ta.next = make([][]int, t.NumTerminals())
	for dst := 0; dst < t.NumTerminals(); dst++ {
		ta.next[dst] = ta.buildDst(dst)
	}
	return ta
}

const (
	hopCost     = 10
	bigDiscount = 4 // a hop landing on a big router costs hopCost-bigDiscount
)

// buildDst runs Dijkstra from the destination router backwards over the
// reversed minimal-direction graph, producing next[router] = output port.
// Restricting edges to minimal directions keeps every table path minimal in
// hops while the cost discount steers paths across big routers.
func (ta *TableXY) buildDst(dst int) []int {
	dstR, _ := ta.topo.TerminalRouter(dst)
	n := ta.topo.NumRouters()
	dist := make([]int, n)
	next := make([]int, n)
	for i := range dist {
		dist[i] = 1 << 30
		next[i] = -1
	}
	dist[dstR] = 0
	pq := &intHeap{{0, dstR}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.prio > dist[it.v] {
			continue
		}
		r := it.v
		// Relax predecessors: routers u with a minimal-direction edge u->r.
		for p := topology.PortEast; p <= topology.PortSouth; p++ {
			link, ok := ta.topo.Neighbor(r, p)
			if !ok {
				continue
			}
			u := link.Router
			if !ta.minimalToward(u, r, dstR) {
				continue
			}
			c := hopCost
			if ta.big[r] {
				c -= bigDiscount
			}
			if nd := dist[r] + c; nd < dist[u] {
				dist[u] = nd
				// The edge u->r leaves u on the port opposite to p.
				next[u] = opposite(p)
				heap.Push(pq, heapItem{nd, u})
			}
		}
	}
	return next
}

// minimalToward reports whether moving from router u to adjacent router v
// reduces the Manhattan distance to dstR.
func (ta *TableXY) minimalToward(u, v, dstR int) bool {
	ux, uy := ta.topo.Coord(u)
	vx, vy := ta.topo.Coord(v)
	dx, dy := ta.topo.Coord(dstR)
	return abs(vx-dx)+abs(vy-dy) < abs(ux-dx)+abs(uy-dy)
}

func opposite(p int) int {
	switch p {
	case topology.PortEast:
		return topology.PortWest
	case topology.PortWest:
		return topology.PortEast
	case topology.PortNorth:
		return topology.PortSouth
	case topology.PortSouth:
		return topology.PortNorth
	}
	panic("routing: opposite of non-direction port")
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func (ta *TableXY) Name() string      { return "table+xy" }
func (ta *TableXY) NumVCClasses() int { return 3 }

func (ta *TableXY) InitialClass(src, dst int) int {
	if ta.flagged[src] || ta.flagged[dst] {
		return classTable
	}
	return classAnyXY
}

func (ta *TableXY) ClassVCs(class, numVCs int) (int, int) {
	switch class {
	case classEscape:
		return 0, 1
	case classTable:
		if numVCs == 1 {
			return 0, 1
		}
		return 1, numVCs
	default:
		return 0, numVCs
	}
}

func (ta *TableXY) NextHop(r, src, dst, class int) Decision {
	if class != classTable {
		d := ta.xy.NextHop(r, src, dst, 0)
		d.VCClass = class
		return d
	}
	dstR, dstP := ta.topo.TerminalRouter(dst)
	if r == dstR {
		return Decision{OutPort: dstP, VCClass: classTable}
	}
	port := ta.next[dst][r]
	if port < 0 {
		// Unreachable via minimal graph (cannot happen on a mesh); fall
		// back to X-Y to stay safe.
		d := ta.xy.NextHop(r, src, dst, 0)
		d.VCClass = classTable
		return d
	}
	return Decision{OutPort: port, VCClass: classTable}
}

// EscapeHop diverts a starved packet to the X-Y-routed escape VC.
func (ta *TableXY) EscapeHop(r, src, dst int) Decision {
	d := ta.xy.NextHop(r, src, dst, 0)
	d.VCClass = classEscape
	return d
}

// EscapeThreshold returns the VA starvation limit in cycles.
func (ta *TableXY) EscapeThreshold() int { return ta.escapeAfter }

// PathRouters returns the sequence of routers a table-routed packet visits
// from terminal src to terminal dst, for tests and path diagnostics.
func (ta *TableXY) PathRouters(src, dst int) []int {
	r, _ := ta.topo.TerminalRouter(src)
	dstR, _ := ta.topo.TerminalRouter(dst)
	path := []int{r}
	for r != dstR {
		d := ta.NextHop(r, src, dst, classTable)
		link, ok := ta.topo.Neighbor(r, d.OutPort)
		if !ok {
			break
		}
		r = link.Router
		path = append(path, r)
		if len(path) > ta.topo.NumRouters() {
			break // defensive: malformed table
		}
	}
	return path
}

type heapItem struct {
	prio int
	v    int
}

type intHeap []heapItem

func (h intHeap) Len() int { return len(h) }
func (h intHeap) Less(i, j int) bool {
	return h[i].prio < h[j].prio || (h[i].prio == h[j].prio && h[i].v < h[j].v)
}
func (h intHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *intHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
