package routing

import (
	"heteronoc/internal/topology"
)

// VC class conventions for TableXY (see the package comment): escape
// packets drain on the reserved VC 0 under X-Y routing; table-routed
// packets are confined to the non-escape VCs; background X-Y packets may
// use any VC because dimension-ordered routing cannot deadlock.
const (
	classEscape = 0
	classTable  = 1
	classAnyXY  = 2
)

// TableXY implements the asymmetric-CMP routing of Section 7: packets whose
// source or destination terminal is flagged (attached to a large core)
// follow precomputed minimal zig-zag paths that maximize the number of big
// routers visited, while all other packets use plain X-Y. Because the
// zig-zag paths take turns in both orders they are not deadlock free on
// their own; a reserved escape VC (VC 0, X-Y routed) provides the
// deadlock-free drain required by the paper's "reserved escape VCs in the
// big routers".
type TableXY struct {
	topo    *topology.Mesh
	xy      *XY
	flagged []bool
	big     []bool
	// next[dst][router] is the output port toward terminal dst on the
	// zig-zag network.
	next [][]int
	// escapeAfter is the VC-allocation starvation threshold in cycles.
	escapeAfter int
}

// TableXYConfig parameterizes table construction.
type TableXYConfig struct {
	// Flagged marks the terminals whose flows are table routed.
	Flagged []int
	// Big marks big routers by router ID; links arriving at a big router
	// are discounted so minimal paths prefer them.
	Big []bool
	// EscapeThreshold is the VA starvation limit in cycles before a packet
	// is diverted to the escape network (default 64).
	EscapeThreshold int
}

// NewTableXY builds the routing tables with one analytic pass per
// destination over minimal-direction edges: hop layers are Manhattan
// distances, and among minimal paths ties resolve toward big routers
// (deterministically, matching the Dijkstra construction this replaces),
// yielding the X-Y-X-Y staircases of the paper's Figure 14(a). The whole
// build is O(V) per destination with no per-destination allocations — all
// tables share one arena and the layer scratch is reused across passes.
func NewTableXY(t *topology.Mesh, cfg TableXYConfig) *TableXY {
	if t.Wrap() {
		panic("routing: TableXY requires a mesh, not a torus")
	}
	ta := &TableXY{
		topo:        t,
		xy:          NewXY(t),
		flagged:     make([]bool, t.NumTerminals()),
		big:         cfg.Big,
		escapeAfter: cfg.EscapeThreshold,
	}
	if ta.escapeAfter <= 0 {
		ta.escapeAfter = 64
	}
	if ta.big == nil {
		ta.big = make([]bool, t.NumRouters())
	}
	for _, f := range cfg.Flagged {
		ta.flagged[f] = true
	}
	n := t.NumRouters()
	terms := t.NumTerminals()
	arena := make([]int, n*terms)
	ta.next = make([][]int, terms)
	scratch := newMinimalScratch(t)
	for dst := 0; dst < terms; dst++ {
		ta.next[dst] = arena[dst*n : (dst+1)*n : (dst+1)*n]
		scratch.buildDst(ta.big, dst, ta.next[dst])
	}
	return ta
}

const (
	hopCost     = 10
	bigDiscount = 4 // a hop landing on a big router costs hopCost-bigDiscount
)

// minimalScratch holds the reusable per-destination state for the analytic
// minimal-path table construction. One Dijkstra per destination over the
// minimal-direction graph is equivalent to, and replaced by, two O(V)
// passes:
//
//  1. Every minimal-direction path from u to dstR has exactly
//     Manhattan(u, dstR) hops, so the hop layer h(u) is known in closed
//     form and a counting sort orders routers by layer.
//  2. With edge cost hopCost - bigDiscount*big[r], the Dijkstra distance is
//     hopCost*h(u) - bigDiscount*b(u), where b(u) is the maximum number of
//     big routers on any minimal path after u (including the destination).
//     b satisfies the layer-ordered recurrence b(u) = max over minimal
//     out-edges u->r of b(r)+big(r), and the port Dijkstra would record is
//     the argmax with ties broken by smaller b(r), then smaller router ID —
//     exactly the order the heap pops equal-distance entries.
type minimalScratch struct {
	mesh  *topology.Mesh
	w, ht int
	h     []int32 // hop layer per router (Manhattan distance to dstR)
	b     []int32 // max big-routers-after count over minimal paths
	order []int32 // routers sorted by layer (counting sort)
	cnt   []int32 // per-layer counters for the sort
}

func newMinimalScratch(t *topology.Mesh) *minimalScratch {
	w, ht := t.Dims()
	n := t.NumRouters()
	return &minimalScratch{
		mesh:  t,
		w:     w,
		ht:    ht,
		h:     make([]int32, n),
		b:     make([]int32, n),
		order: make([]int32, n),
		cnt:   make([]int32, w+ht),
	}
}

// buildDst fills next[u] with the output port toward terminal dst for every
// router u (-1 at the destination router itself), bit-identical to the
// Dijkstra construction it replaces.
func (ms *minimalScratch) buildDst(big []bool, dst int, next []int) {
	dstR, _ := ms.mesh.TerminalRouter(dst)
	dx, dy := dstR%ms.w, dstR/ms.w
	n := len(next)
	// Layer assignment + counting sort by layer.
	for i := range ms.cnt {
		ms.cnt[i] = 0
	}
	for u := 0; u < n; u++ {
		d := absInt32(int32(u%ms.w - dx)) + absInt32(int32(u/ms.w - dy))
		ms.h[u] = d
		ms.cnt[d]++
	}
	pos := int32(0)
	for i := range ms.cnt {
		c := ms.cnt[i]
		ms.cnt[i] = pos
		pos += c
	}
	for u := 0; u < n; u++ {
		ms.order[ms.cnt[ms.h[u]]] = int32(u)
		ms.cnt[ms.h[u]]++
	}
	// Layer-ordered DP: each router picks the best minimal-direction
	// neighbor one layer in. At most two candidates exist (one per
	// dimension still unresolved).
	next[dstR] = -1
	ms.b[dstR] = 0
	for qi := 1; qi < n; qi++ {
		u := int(ms.order[qi])
		ux, uy := u%ms.w, u/ms.w
		bestKey, bestB := int32(-1), int32(-1)
		bestR, bestPort := n, -1
		try := func(r, port int) {
			kb := ms.b[r]
			if big[r] {
				kb++
			}
			if kb > bestKey || (kb == bestKey && (ms.b[r] > bestB || (ms.b[r] == bestB && r < bestR))) {
				bestKey, bestB, bestR, bestPort = kb, ms.b[r], r, port
			}
		}
		if ux < dx {
			try(u+1, topology.PortEast)
		} else if ux > dx {
			try(u-1, topology.PortWest)
		}
		if uy < dy {
			try(u+ms.w, topology.PortSouth)
		} else if uy > dy {
			try(u-ms.w, topology.PortNorth)
		}
		ms.b[u] = bestKey
		next[u] = bestPort
	}
}

func absInt32(a int32) int32 {
	if a < 0 {
		return -a
	}
	return a
}

// minimalToward reports whether moving from router u to adjacent router v
// reduces the Manhattan distance to dstR.
func (ta *TableXY) minimalToward(u, v, dstR int) bool {
	ux, uy := ta.topo.Coord(u)
	vx, vy := ta.topo.Coord(v)
	dx, dy := ta.topo.Coord(dstR)
	return abs(vx-dx)+abs(vy-dy) < abs(ux-dx)+abs(uy-dy)
}

func opposite(p int) int {
	switch p {
	case topology.PortEast:
		return topology.PortWest
	case topology.PortWest:
		return topology.PortEast
	case topology.PortNorth:
		return topology.PortSouth
	case topology.PortSouth:
		return topology.PortNorth
	}
	panic("routing: opposite of non-direction port")
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func (ta *TableXY) Name() string      { return "table+xy" }
func (ta *TableXY) NumVCClasses() int { return 3 }

func (ta *TableXY) InitialClass(src, dst int) int {
	if ta.flagged[src] || ta.flagged[dst] {
		return classTable
	}
	return classAnyXY
}

func (ta *TableXY) ClassVCs(class, numVCs int) (int, int) {
	switch class {
	case classEscape:
		return 0, 1
	case classTable:
		if numVCs == 1 {
			return 0, 1
		}
		return 1, numVCs
	default:
		return 0, numVCs
	}
}

func (ta *TableXY) NextHop(r, src, dst, class int) Decision {
	if class != classTable {
		d := ta.xy.NextHop(r, src, dst, 0)
		d.VCClass = class
		return d
	}
	dstR, dstP := ta.topo.TerminalRouter(dst)
	if r == dstR {
		return Decision{OutPort: dstP, VCClass: classTable}
	}
	port := ta.next[dst][r]
	if port < 0 {
		// Unreachable via minimal graph (cannot happen on a mesh); fall
		// back to X-Y to stay safe.
		d := ta.xy.NextHop(r, src, dst, 0)
		d.VCClass = classTable
		return d
	}
	return Decision{OutPort: port, VCClass: classTable}
}

// EscapeHop diverts a starved packet to the X-Y-routed escape VC.
func (ta *TableXY) EscapeHop(r, src, dst int) Decision {
	d := ta.xy.NextHop(r, src, dst, 0)
	d.VCClass = classEscape
	return d
}

// EscapeThreshold returns the VA starvation limit in cycles.
func (ta *TableXY) EscapeThreshold() int { return ta.escapeAfter }

// PathRouters returns the sequence of routers a table-routed packet visits
// from terminal src to terminal dst, for tests and path diagnostics.
func (ta *TableXY) PathRouters(src, dst int) []int {
	r, _ := ta.topo.TerminalRouter(src)
	dstR, _ := ta.topo.TerminalRouter(dst)
	path := []int{r}
	for r != dstR {
		d := ta.NextHop(r, src, dst, classTable)
		link, ok := ta.topo.Neighbor(r, d.OutPort)
		if !ok {
			break
		}
		r = link.Router
		path = append(path, r)
		if len(path) > ta.topo.NumRouters() {
			break // defensive: malformed table
		}
	}
	return path
}
