package routing

import (
	"testing"
	"testing/quick"

	"heteronoc/internal/topology"
)

// walk follows an algorithm from src to dst and returns the router path and
// the number of hops, failing the test on livelock (path longer than the
// router count times four).
func walk(t *testing.T, topo topology.Topology, alg Algorithm, src, dst int) []int {
	t.Helper()
	r, _ := topo.TerminalRouter(src)
	dstR, dstP := topo.TerminalRouter(dst)
	class := alg.InitialClass(src, dst)
	path := []int{r}
	for {
		d := alg.NextHop(r, src, dst, class)
		if r == dstR {
			if d.OutPort != dstP {
				t.Fatalf("%s: at destination router %d, out port %d want terminal port %d", alg.Name(), r, d.OutPort, dstP)
			}
			return path
		}
		link, ok := topo.Neighbor(r, d.OutPort)
		if !ok {
			t.Fatalf("%s: router %d emitted dead port %d for %d->%d", alg.Name(), r, d.OutPort, src, dst)
		}
		r = link.Router
		class = d.VCClass
		path = append(path, r)
		if len(path) > 4*topo.NumRouters() {
			t.Fatalf("%s: livelock routing %d->%d", alg.Name(), src, dst)
		}
	}
}

func TestXYAllPairsMinimal(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := NewXY(m)
	for src := 0; src < 64; src++ {
		for dst := 0; dst < 64; dst++ {
			path := walk(t, m, alg, src, dst)
			if got, want := len(path)-1, m.HopsXY(src, dst); got != want {
				t.Fatalf("xy %d->%d took %d hops, want %d", src, dst, got, want)
			}
		}
	}
}

func TestXYOrderXBeforeY(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := NewXY(m)
	// 0 -> 63 must go fully east along row 0, then south down column 7.
	path := walk(t, m, alg, 0, 63)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 15, 23, 31, 39, 47, 55, 63}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
}

func TestTorusXYAllPairsMinimal(t *testing.T) {
	m := topology.NewTorus(8, 8)
	alg := NewTorusXY(m)
	for src := 0; src < 64; src++ {
		for dst := 0; dst < 64; dst++ {
			path := walk(t, m, alg, src, dst)
			if got, want := len(path)-1, m.HopsXY(src, dst); got != want {
				t.Fatalf("torus-xy %d->%d took %d hops, want %d", src, dst, got, want)
			}
		}
	}
}

func TestTorusXYDatelineClass(t *testing.T) {
	m := topology.NewTorus(8, 8)
	alg := NewTorusXY(m)
	// Router 6 -> router 1 goes east through the wrap between x=7 and x=0,
	// so the class must switch to 1 on the dateline hop.
	r := 6
	class := alg.InitialClass(6, 1)
	if class != 0 {
		t.Fatalf("initial class %d, want 0", class)
	}
	d := alg.NextHop(r, 6, 1, class) // 6 -> 7, no dateline yet
	if d.VCClass != 0 {
		t.Fatalf("class after first hop %d, want 0", d.VCClass)
	}
	d = alg.NextHop(7, 6, 1, d.VCClass) // 7 -> 0 crosses the dateline
	if d.VCClass != 1 {
		t.Fatalf("class on dateline hop %d, want 1", d.VCClass)
	}
}

func TestTorusXYClassResetsForY(t *testing.T) {
	m := topology.NewTorus(8, 8)
	alg := NewTorusXY(m)
	// 6 -> 9 (router (1,1)): east across dateline (class 1), then south in
	// a fresh Y ring (class resets to 0).
	class := alg.InitialClass(6, 9)
	r := 6
	for _, want := range []struct{ router, class int }{{7, 0}, {0, 1}, {1, 1}} {
		d := alg.NextHop(r, 6, 9, class)
		link, ok := m.Neighbor(r, d.OutPort)
		if !ok {
			t.Fatalf("dead port at %d", r)
		}
		if link.Router != want.router {
			t.Fatalf("hop from %d to %d, want %d", r, link.Router, want.router)
		}
		r, class = link.Router, d.VCClass
	}
	// Now at router 1 heading to router 9: Y hop in fresh ring.
	d := alg.NextHop(1, 6, 9, class)
	if d.VCClass != 0 {
		t.Fatalf("class entering Y ring = %d, want 0", d.VCClass)
	}
}

func TestTorusClassVCs(t *testing.T) {
	alg := NewTorusXY(topology.NewTorus(4, 4))
	lo, hi := alg.ClassVCs(0, 3)
	if lo != 0 || hi != 1 {
		t.Errorf("class 0 of 3 VCs = [%d,%d), want [0,1)", lo, hi)
	}
	lo, hi = alg.ClassVCs(1, 3)
	if lo != 2 || hi != 3 {
		t.Errorf("class 1 of 3 VCs = [%d,%d), want [2,3)", lo, hi)
	}
	lo, hi = alg.ClassVCs(0, 1)
	if lo != 0 || hi != 1 {
		t.Errorf("class 0 of 1 VC = [%d,%d), want [0,1)", lo, hi)
	}
}

func TestFBflyTwoHopMax(t *testing.T) {
	f := topology.NewFBfly(4, 4, 4)
	alg := NewFBflyRC(f)
	for src := 0; src < f.NumTerminals(); src++ {
		for dst := 0; dst < f.NumTerminals(); dst++ {
			path := walk(t, f, alg, src, dst)
			if hops := len(path) - 1; hops > 2 {
				t.Fatalf("fbfly %d->%d took %d router hops, want <=2", src, dst, hops)
			}
		}
	}
}

func TestCMeshXY(t *testing.T) {
	m := topology.NewCMesh(4, 4, 4)
	alg := NewXY(m)
	for src := 0; src < 64; src += 3 {
		for dst := 0; dst < 64; dst += 5 {
			walk(t, m, alg, src, dst)
		}
	}
	// Same-router pair: zero network hops.
	path := walk(t, m, alg, 0, 1)
	if len(path) != 1 {
		t.Errorf("cmesh 0->1 path %v, want single router", path)
	}
}

func diagonalBig(m *topology.Mesh) []bool {
	w, h := m.Dims()
	big := make([]bool, m.NumRouters())
	for i := 0; i < w && i < h; i++ {
		big[m.RouterAt(i, i)] = true
		big[m.RouterAt(w-1-i, i)] = true
	}
	return big
}

func TestTableXYMinimalAndDelivers(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := NewTableXY(m, TableXYConfig{Flagged: []int{0, 7, 56, 63}, Big: diagonalBig(m)})
	for src := 0; src < 64; src++ {
		for dst := 0; dst < 64; dst++ {
			path := walk(t, m, alg, src, dst)
			if got, want := len(path)-1, m.HopsXY(src, dst); got != want {
				t.Fatalf("table %d->%d took %d hops, want %d (minimal)", src, dst, got, want)
			}
		}
	}
}

func TestTableXYZigZagUsesBigRouters(t *testing.T) {
	m := topology.NewMesh(8, 8)
	big := diagonalBig(m)
	alg := NewTableXY(m, TableXYConfig{Flagged: []int{0, 7, 56, 63}, Big: big})
	countBig := func(path []int) int {
		n := 0
		for _, r := range path {
			if big[r] {
				n++
			}
		}
		return n
	}
	// Flow 0 -> 55 (paper's example): the zig-zag path must touch more big
	// routers than the plain X-Y staircase corner path.
	xy := NewXY(m)
	tablePath := alg.PathRouters(0, 55)
	xyPath := walk(t, m, xy, 0, 55)
	if countBig(tablePath) <= countBig(xyPath) {
		t.Errorf("table path %v (big=%d) does not use more big routers than xy %v (big=%d)",
			tablePath, countBig(tablePath), xyPath, countBig(xyPath))
	}
}

func TestTableXYClasses(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := NewTableXY(m, TableXYConfig{Flagged: []int{0}, Big: diagonalBig(m)})
	if got := alg.InitialClass(0, 30); got != classTable {
		t.Errorf("flow from flagged terminal class %d, want table", got)
	}
	if got := alg.InitialClass(30, 0); got != classTable {
		t.Errorf("flow to flagged terminal class %d, want table", got)
	}
	if got := alg.InitialClass(30, 31); got != classAnyXY {
		t.Errorf("background flow class %d, want any-xy", got)
	}
	lo, hi := alg.ClassVCs(classEscape, 6)
	if lo != 0 || hi != 1 {
		t.Errorf("escape VCs [%d,%d), want [0,1)", lo, hi)
	}
	lo, hi = alg.ClassVCs(classTable, 6)
	if lo != 1 || hi != 6 {
		t.Errorf("table VCs [%d,%d), want [1,6)", lo, hi)
	}
	lo, hi = alg.ClassVCs(classAnyXY, 2)
	if lo != 0 || hi != 2 {
		t.Errorf("any-xy VCs [%d,%d), want [0,2)", lo, hi)
	}
}

func TestTableXYEscapeHopIsXY(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := NewTableXY(m, TableXYConfig{Flagged: []int{0}, Big: diagonalBig(m)})
	xy := NewXY(m)
	for r := 0; r < 64; r += 7 {
		for dst := 0; dst < 64; dst += 11 {
			got := alg.EscapeHop(r, 0, dst)
			want := xy.NextHop(r, 0, dst, 0)
			if got.OutPort != want.OutPort {
				t.Fatalf("escape hop at %d for dst %d = port %d, want xy port %d", r, dst, got.OutPort, want.OutPort)
			}
			if got.VCClass != classEscape {
				t.Fatalf("escape hop class %d, want %d", got.VCClass, classEscape)
			}
		}
	}
	if alg.EscapeThreshold() <= 0 {
		t.Error("escape threshold must be positive")
	}
}

func TestTableXYPropertyDelivery(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := NewTableXY(m, TableXYConfig{Flagged: []int{0, 7, 56, 63}, Big: diagonalBig(m)})
	f := func(a, b uint8) bool {
		src, dst := int(a)%64, int(b)%64
		if src == dst {
			return true
		}
		p := alg.PathRouters(src, dst)
		return p[len(p)-1] == dst // one terminal per router on a plain mesh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWestFirstAllPairsMinimalAndLegal(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := NewWestFirst(m)
	for src := 0; src < 64; src++ {
		for dst := 0; dst < 64; dst++ {
			path := walk(t, m, alg, src, dst)
			if got, want := len(path)-1, m.HopsXY(src, dst); got != want {
				t.Fatalf("west-first %d->%d took %d hops, want %d", src, dst, got, want)
			}
			// Turn-model legality: once a non-west hop happens, no west hop
			// may follow.
			sawNonWest := false
			for i := 1; i < len(path); i++ {
				dx := path[i]%8 - path[i-1]%8
				if dx < 0 && sawNonWest {
					t.Fatalf("illegal turn into west on path %v", path)
				}
				if dx >= 0 {
					sawNonWest = true
				}
			}
		}
	}
}

func TestWestFirstAdaptsToCongestion(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := NewWestFirst(m)
	// From (0,0) to (2,2): both East and South are productive. Make East
	// look congested; the router must pick South, and vice versa.
	alg.Congestion = func(r, p int) float64 {
		if p == topology.PortEast {
			return 1
		}
		return 0
	}
	d := alg.NextHop(0, 0, 18, 0)
	if d.OutPort != topology.PortSouth {
		t.Errorf("with East congested, chose port %d, want South", d.OutPort)
	}
	alg.Congestion = func(r, p int) float64 {
		if p == topology.PortSouth {
			return 1
		}
		return 0
	}
	d = alg.NextHop(0, 0, 18, 0)
	if d.OutPort != topology.PortEast {
		t.Errorf("with South congested, chose port %d, want East", d.OutPort)
	}
}

func TestWestFirstRejectsTorus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("torus accepted")
		}
	}()
	NewWestFirst(topology.NewTorus(4, 4))
}
